// Command reproduce runs every experiment in the paper end to end and prints
// a paper-vs-measured report for each table and figure. Its output is the
// source of EXPERIMENTS.md.
//
// Usage:
//
//	reproduce [-fast]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"text/tabwriter"

	"repro/internal/apidb"
	"repro/internal/cliopts"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cpg"
	"repro/internal/gitlog"
	"repro/internal/mine"
	"repro/internal/study"
	"repro/internal/word2vec"
)

func main() {
	var opts cliopts.Opts
	opts.Register(flag.CommandLine, cliopts.Workers|cliopts.Checkers|cliopts.Cache|cliopts.Stats)
	fast := flag.Bool("fast", false, "smaller background history (quicker word2vec)")
	flag.Parse()

	selected, err := opts.Selected()
	if err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		os.Exit(2)
	}

	background := 0
	if *fast {
		background = 4000
	}

	fmt.Println("# Reproduction run: One Simple API Can Cause Hundreds of Bugs (SOSP'23)")
	fmt.Println()

	// ---------- historical study ----------
	h := gitlog.Generate(corpus.Spec{Seed: 1, Background: background})
	res := mine.Mine(h, apidb.New())
	s := study.New(h, res)

	fmt.Println("## Dataset construction (§3.1)")
	fmt.Printf("paper:    >1M commits, 753 releases -> 1,825 candidates -> 1,033 bugs\n")
	fmt.Printf("measured: %d commits, %d releases -> %d candidates -> %d bugs (%d wrong patches removed by the Fixes-tag filter)\n\n",
		len(h.Commits), len(h.Versions), len(res.Candidates), len(res.Dataset),
		len(res.RemovedWrongPatches))

	acc := s.ClassifierAccuracy()
	fmt.Printf("classifier agreement with ground truth: %d/%d categories, %d/%d UAD flags\n\n",
		acc.Correct, acc.Total, acc.UADCorrect, acc.UADTotal)

	fmt.Println("## Findings 1-5 (§4)")
	for _, f := range s.Findings() {
		status := "HOLDS"
		if !f.Holds {
			status = "FAILS"
		}
		fmt.Printf("Finding %d [%s]  paper: %s\n              measured: %s\n", f.ID, status, f.Statement, f.Measured)
	}
	fmt.Println()

	fmt.Println("## Figure 1: growth trend (paper: monotone growth 2005->2022, ~6/yr to ~140/yr)")
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, yc := range s.GrowthTrend() {
		fmt.Fprintf(w, "%d\t%d\t%d cumulative\n", yc.Year, yc.Count, yc.Cumulative)
	}
	w.Flush()
	fmt.Println()

	fmt.Println("## Table 2: classification (paper percentages in parentheses)")
	t2 := s.Classification()
	paperPct := map[string]string{
		"1.1 Missing-Decreasing (Intra-Unpaired)": "57.1",
		"1.2 Missing-Decreasing (Inter-Unpaired)": "10.1",
		"2.  Others (Leak)":                       "4.5",
		"3.1 Misplacing-Refcounting (Decreasing)": "11.5",
		"3.2 Misplacing-Refcounting (Increasing)": "2.4",
		"4.1 Missing-Increasing (Intra-Unpaired)": "5.1",
		"4.2 Missing-Increasing (Inter-Unpaired)": "2.1",
		"5.  Others (UAF)":                        "7.2",
	}
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, row := range t2.Rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%.1f%%\t(paper %s%%)\n",
			row.Impact, row.Label, row.Count, row.Percent, paperPct[row.Label])
	}
	fmt.Fprintf(w, "\tUAD subset\t%d\t%.1f%%\t(paper 9.1%%)\n",
		t2.UADCount, 100*float64(t2.UADCount)/float64(t2.Total))
	w.Flush()
	fmt.Println()

	fmt.Println("## Figure 2: distribution + density (paper: drivers 588; drivers+net+fs 82.4%; block densest at 18/65KLOC)")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	for _, d := range s.Distribution() {
		fmt.Fprintf(w, "%s\t%d bugs\t%.0f KLOC\t%.3f bugs/KLOC\n", d.Subsystem, d.Bugs, d.KLOC, d.Density)
	}
	w.Flush()
	fmt.Println()

	lt := s.Lifetimes()
	fmt.Println("## Figure 3: lifetimes")
	fmt.Printf("paper:    567 tagged; 75.7%% >1yr; 19 >10yr (7 UAF); 23 full-span v2.6->v5/6; ~135 v4.x->v5.x\n")
	fmt.Printf("measured: %d tagged; %.1f%% >1yr; %d >10yr (%d UAF); %d full-span; %d v4.x->v5.x; %d within v5.x\n\n",
		lt.Tagged, 100*float64(lt.OverOneYear)/float64(lt.Tagged),
		lt.OverDecade, lt.DecadeUAF, lt.FullSpan,
		lt.MajorSpans["v4.x->v5.x"], lt.SameMajorV5)

	fmt.Println("## Table 3: word2vec keyword similarities (paper: find~get 0.73 peak; unhold lowest; all bug-caused keywords far from 'refcount')")
	t3 := study.ComputeTable3(h, word2vec.Config{Dim: 32, Epochs: 2, Seed: 5})
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintf(w, "keyword")
	for _, c := range t3.Cols {
		fmt.Fprintf(w, "\t%s", c)
	}
	fmt.Fprintln(w)
	for r, rk := range t3.Rows {
		fmt.Fprintf(w, "%s", rk)
		for c := range t3.Cols {
			fmt.Fprintf(w, "\t%.2f", t3.Sim[r][c])
		}
		fmt.Fprintln(w)
	}
	w.Flush()
	fmt.Println()

	// ---------- new-bug detection ----------
	c := corpus.Generate(corpus.Spec{Seed: 1})
	var sources []cpg.Source
	for _, f := range c.Files {
		sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
	}
	opt := core.Options{Workers: opts.Workers, Checkers: selected}
	cache, err := opts.OpenCache()
	if err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		os.Exit(1)
	}
	opt.Cache = cache
	tr := opts.Trace("reproduce")
	run, err := core.Analyze(context.Background(), core.Request{
		Sources: sources, Headers: c.Headers, Options: opt, Trace: tr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "reproduce: %v\n", err)
		os.Exit(1)
	}
	opts.Export("reproduce", tr)
	reports := run.Reports
	if cache != nil {
		if err := cache.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "reproduce: cache flush: %v\n", err)
		}
	}
	nb := study.EvaluateNewBugsWorkers(c, reports, opts.Workers)

	fmt.Println("## Table 4: new bugs (paper: arch 156, drivers 182, include 2, net 2, sound 9; 296 leak / 48 UAF / 7 NPD; 240 CFM, 3 PR, 5 FP)")
	rows := nb.Table4()
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "subsystem\tnew bugs\tleak\tuaf\tnpd\tcfm\tpr\tnr\tfp")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Subsystem, r.NewBugs, r.Leak, r.UAF, r.NPD, r.CFM, r.PR, r.NR, r.FP)
	}
	tot := study.Total(rows)
	fmt.Fprintf(w, "Total\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
		tot.NewBugs, tot.Leak, tot.UAF, tot.NPD, tot.CFM, tot.PR, tot.NR, tot.FP)
	w.Flush()
	fmt.Printf("missed planned bugs: %d; corpus: %.1f KLOC, %d files\n\n",
		len(nb.Missed), c.KLOC(), len(c.Files))

	fmt.Println("## Table 5: per-module detail (top-2 bug-caused APIs, anti-pattern instances)")
	w = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "subsystem\tmodule\ttop APIs\tpatterns\tbugs\tcfm")
	for _, r := range nb.Table5() {
		var apis []string
		for _, ac := range r.TopAPIs {
			apis = append(apis, fmt.Sprintf("%s[%d]", ac.API, ac.Count))
		}
		var pats []string
		for p := range r.Patterns {
			pats = append(pats, fmt.Sprintf("%s[%d]", p, r.Patterns[p]))
		}
		sort.Strings(pats)
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%d\t%d\n",
			r.Subsystem, r.Module, join(apis), join(pats), r.Bugs, r.Confirmed)
	}
	w.Flush()
	fmt.Println()

	l := nb.LessonSummary()
	fmt.Println("## §7 Lessons From New Bugs (root-cause families)")
	fmt.Printf("implementation deviation: %d (return-NULL %d; paper: 1 new pm_runtime bug, 7 return-NULL)\n", l.Deviation, l.ReturnNull)
	fmt.Printf("hidden refcounting: smartloop breaks %d + hidden inc/dec %d (missing-increase subset %d; paper: 39 + 23, 16 missing-inc)\n",
		l.SmartLoop, l.HiddenAPI, l.MissingInc)
	fmt.Printf("overlooked locations: error-path %d, inter-paired %d, direct-free %d (paper: 9, 13, 3)\n",
		l.ErrorPath, l.InterPair, l.DirectFree)
	fmt.Printf("future risks: UAD %d, escapes %d (paper: 5, 17)\n\n", l.UAD, l.Escape)

	fmt.Println("## Table 6: error-prone APIs (Appendix A)")
	for _, row := range apidb.Table6() {
		fmt.Printf("%-2s %-18s %d APIs\n", row.Category, row.BugType, len(row.APIs))
	}
	db := apidb.New()
	fmt.Printf("knowledge base: %d APIs, %d smartloops, %d callback pairs\n",
		len(db.APIs()), len(db.Loops()), len(db.Callbacks()))
}

func join(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += x
	}
	return out
}
