// Command refgen writes the synthetic kernel corpus to disk so external
// tools (or refcheck without -demo) can consume it.
//
// Usage:
//
//	refgen -out DIR [-seed N] [-scale N] [-releases N]
//
// With -releases 1 (the default) the tree is written directly under -out,
// exactly as previous versions did. With -releases N > 1 the corpus evolves
// across N release snapshots named after the calibrated kernel timeline
// (gitlog.ReleaseTags): each release's tree is written under
// DIR/<tag>/, bug lifetimes span release ranges, and a single cross-release
// GROUND_TRUTH.tsv at the top level records every bug with its intro/fix
// release. -scale multiplies the workload (every plan module emitted N
// times), so `refgen -scale 100 -releases 5` is a kernel-scale multi-release
// corpus.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/cliopts"
	"repro/internal/corpus"
	"repro/internal/cpg"
	"repro/internal/gitlog"
	"repro/internal/loader"
)

func main() {
	var opts cliopts.Opts
	opts.Register(flag.CommandLine, cliopts.Scale)
	out := flag.String("out", "", "output directory (required)")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: refgen -out DIR [-seed N] [-scale N] [-releases N]")
		os.Exit(2)
	}

	spec := corpus.Spec{Seed: *seed, Scale: opts.ScaleN, Releases: opts.Releases}

	if opts.Releases <= 1 {
		c := corpus.Generate(spec)
		if err := writeCorpus(*out, c); err != nil {
			fmt.Fprintf(os.Stderr, "refgen: %v\n", err)
			os.Exit(1)
		}
		if err := writeTruth(filepath.Join(*out, "GROUND_TRUTH.tsv"), c.Planned, c.Baits, nil, nil); err != nil {
			fmt.Fprintf(os.Stderr, "refgen: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d files (%.1f KLOC), %d planned bugs, %d baits to %s\n",
			len(c.Files)+len(c.Headers), c.KLOC(), len(c.Planned), len(c.Baits), *out)
		return
	}

	rs := corpus.GenerateReleases(spec, gitlog.ReleaseTags(opts.Releases))
	truth := rs.Truth()
	totalFiles := 0
	// One release at a time: At(r) regenerates the snapshot on demand, so a
	// 100×-scaled 5-release corpus never needs every tree in memory.
	for r, tag := range rs.Tags {
		c := rs.At(r)
		if err := writeCorpus(filepath.Join(*out, tag), c); err != nil {
			fmt.Fprintf(os.Stderr, "refgen: %v\n", err)
			os.Exit(1)
		}
		totalFiles += len(c.Files) + len(c.Headers)
		fmt.Printf("release %-8s %d files, %d live bugs, %d baits\n",
			tag, len(c.Files), len(c.Planned), len(c.Baits))
	}
	// The cross-release manifest: every seeded bug once, with its lifetime.
	last := rs.At(len(rs.Tags) - 1)
	if err := writeTruth(filepath.Join(*out, "GROUND_TRUTH.tsv"), nil, last.Baits, truth, rs.Tags); err != nil {
		fmt.Fprintf(os.Stderr, "refgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d releases (%d files total), %d seeded bugs to %s\n",
		len(rs.Tags), totalFiles, len(truth), *out)
}

func writeCorpus(dir string, c *corpus.Corpus) error {
	sources := make([]cpg.Source, 0, len(c.Files))
	for _, f := range c.Files {
		sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
	}
	return loader.WriteTree(dir, sources, c.Headers)
}

// writeTruth writes the ground-truth manifest. In single-release mode
// (releaseBugs nil) the format is unchanged from previous refgen versions.
// In multi-release mode two columns are appended — the tag of the release
// that introduced the bug and of the one that fixed it ("-" when the fix
// falls outside the window) — and each bug's file path is relative to its
// release directory (paths are release-invariant).
func writeTruth(path string, bugs []corpus.PlannedBug, baits []corpus.FalsePositiveBait, releaseBugs []corpus.ReleaseBug, tags []string) error {
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	if releaseBugs == nil {
		fmt.Fprintln(fh, "pattern\tkind\timpact\tsubsystem\tmodule\tfile\tfunction\tapi")
		for _, b := range bugs {
			fmt.Fprintf(fh, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
				b.Pattern, b.Kind, b.Impact, b.Subsystem, b.Module, b.File, b.Function, b.API)
		}
	} else {
		fmt.Fprintln(fh, "pattern\tkind\timpact\tsubsystem\tmodule\tfile\tfunction\tapi\tintro\tfix")
		for _, b := range releaseBugs {
			fix := "-"
			if b.Fix < len(tags) {
				fix = tags[b.Fix]
			}
			fmt.Fprintf(fh, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
				b.Pattern, b.Kind, b.Impact, b.Subsystem, b.Module, b.File, b.Function, b.API,
				tags[b.Intro], fix)
		}
	}
	for _, bait := range baits {
		fmt.Fprintf(fh, "FP-bait\t\t\t%s\t%s\t%s\t%s\t\n",
			bait.Subsystem, bait.Module, bait.File, bait.Function)
	}
	return nil
}
