// Command refgen writes the synthetic kernel corpus to disk so external
// tools (or refcheck without -demo) can consume it.
//
// Usage:
//
//	refgen -out DIR [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/corpus"
	"repro/internal/cpg"
	"repro/internal/loader"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	seed := flag.Int64("seed", 1, "generation seed")
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "usage: refgen -out DIR [-seed N]")
		os.Exit(2)
	}

	c := corpus.Generate(corpus.Spec{Seed: *seed})
	var sources []cpg.Source
	for _, f := range c.Files {
		sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
	}
	if err := loader.WriteTree(*out, sources, c.Headers); err != nil {
		fmt.Fprintf(os.Stderr, "refgen: %v\n", err)
		os.Exit(1)
	}

	// Ground truth manifest for external scoring.
	manifest := filepath.Join(*out, "GROUND_TRUTH.tsv")
	fh, err := os.Create(manifest)
	if err != nil {
		fmt.Fprintf(os.Stderr, "refgen: %v\n", err)
		os.Exit(1)
	}
	defer fh.Close()
	fmt.Fprintln(fh, "pattern\tkind\timpact\tsubsystem\tmodule\tfile\tfunction\tapi")
	for _, b := range c.Planned {
		fmt.Fprintf(fh, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\n",
			b.Pattern, b.Kind, b.Impact, b.Subsystem, b.Module, b.File, b.Function, b.API)
	}
	for _, bait := range c.Baits {
		fmt.Fprintf(fh, "FP-bait\t\t\t%s\t%s\t%s\t%s\t\n",
			bait.Subsystem, bait.Module, bait.File, bait.Function)
	}

	fmt.Printf("wrote %d files (%.1f KLOC), %d planned bugs, %d baits to %s\n",
		len(c.Files)+len(c.Headers), c.KLOC(), len(c.Planned), len(c.Baits), *out)
}
