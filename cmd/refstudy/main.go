// Command refstudy mines the (synthetic) kernel history and prints the
// paper's characteristic study: Findings 1–5, the growth trend (Figure 1),
// the classification table (Table 2), the subsystem distribution and density
// (Figure 2), lifetimes (Figure 3), and optionally the word2vec similarity
// matrix (Table 3).
//
// Usage:
//
//	refstudy [-seed N] [-background N] [-table3] [-format text|markdown|csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/apidb"
	"repro/internal/corpus"
	"repro/internal/gitlog"
	"repro/internal/mine"
	"repro/internal/render"
	"repro/internal/study"
	"repro/internal/word2vec"
)

func main() {
	seed := flag.Int64("seed", 1, "history seed")
	background := flag.Int("background", 0, "background commit count (0 = calibrated default)")
	table3 := flag.Bool("table3", false, "also train word2vec and print Table 3")
	formatFlag := flag.String("format", "text", "output format: text, markdown or csv")
	flag.Parse()

	format, err := render.ParseFormat(*formatFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "refstudy: %v\n", err)
		os.Exit(2)
	}

	h := gitlog.Generate(corpus.Spec{Seed: *seed, Background: *background})
	res := mine.Mine(h, apidb.New())
	s := study.New(h, res)

	if format == render.Text {
		fmt.Printf("history: %d commits across %d releases; mining: %d candidates -> %d confirmed -> %d after Fixes-tag filter (%d wrong patches removed)\n\n",
			len(h.Commits), len(h.Versions), len(res.Candidates), len(res.Confirmed),
			len(res.Dataset), len(res.RemovedWrongPatches))

		fmt.Println("== Findings ==")
		for _, f := range s.Findings() {
			status := "HOLDS"
			if !f.Holds {
				status = "FAILS"
			}
			fmt.Printf("Finding %d [%s]: %s\n    measured: %s\n", f.ID, status, f.Statement, f.Measured)
		}
		fmt.Println()
	}

	// Figure 1.
	trend := s.GrowthTrend()
	fig1 := render.Series{
		Title:  "Figure 1: refcounting bug growth 2005-2022",
		XLabel: "year", YLabel: "fixes",
	}
	for _, yc := range trend {
		fig1.X = append(fig1.X, fmt.Sprint(yc.Year))
		fig1.Y = append(fig1.Y, float64(yc.Count))
	}
	fmt.Println(fig1.Render(format))

	// Table 2.
	t2 := s.Classification()
	tab2 := render.Table{
		Title:  "Table 2: classification",
		Header: []string{"impact", "category", "count", "percent"},
	}
	for _, row := range t2.Rows {
		tab2.AddRow(row.Impact, row.Label, row.Count, fmt.Sprintf("%.1f%%", row.Percent))
	}
	tab2.AddRow("", "UAD subset of 3.1", t2.UADCount,
		fmt.Sprintf("%.1f%%", 100*float64(t2.UADCount)/float64(t2.Total)))
	fmt.Println(tab2.Render(format))

	// Figure 2.
	tab3 := render.Table{
		Title:  "Figure 2: distribution and density",
		Header: []string{"subsystem", "bugs", "KLOC", "bugs/KLOC"},
	}
	for _, d := range s.Distribution() {
		tab3.AddRow(d.Subsystem, d.Bugs, d.KLOC, d.Density)
	}
	fmt.Println(tab3.Render(format))

	// Figure 3.
	lt := s.Lifetimes()
	life := render.Table{
		Title:  "Figure 3: lifetimes (Fixes-tagged subset)",
		Header: []string{"metric", "value"},
	}
	life.AddRow("tagged bugs", lt.Tagged)
	life.AddRow(">1 year", fmt.Sprintf("%d (%.1f%%)", lt.OverOneYear,
		100*float64(lt.OverOneYear)/float64(lt.Tagged)))
	life.AddRow(">10 years", fmt.Sprintf("%d (%d UAF)", lt.OverDecade, lt.DecadeUAF))
	life.AddRow("full span v2.6 -> v5/v6", lt.FullSpan)
	var spans []string
	for k := range lt.MajorSpans {
		spans = append(spans, k)
	}
	sort.Strings(spans)
	for _, k := range spans {
		life.AddRow("span "+k, lt.MajorSpans[k])
	}
	fmt.Println(life.Render(format))

	if *table3 {
		t3 := study.ComputeTable3(h, word2vec.Config{Dim: 32, Epochs: 2, Seed: 5})
		mat := render.Table{
			Title:  "Table 3: keyword similarities (word2vec CBOW)",
			Header: append([]string{"RC keyword"}, t3.Cols...),
		}
		for r, rk := range t3.Rows {
			cells := []any{rk}
			for c := range t3.Cols {
				cells = append(cells, fmt.Sprintf("%.2f", t3.Sim[r][c]))
			}
			mat.AddRow(cells...)
		}
		fmt.Println(mat.Render(format))
		if format == render.Text {
			fmt.Printf("(vocabulary: %d words)\n", t3.Model.VocabSize())
		}
	}
}
