// Command refcheck-manager runs the refcheck analysis across multiple worker
// processes and prints exactly what a single-process `refcheck` run would —
// byte-identical reports and summary at any -shards count, even when workers
// die mid-shard (their work is re-queued; see internal/manager).
//
// Usage:
//
//	refcheck-manager [-shards N] [-json] [-pattern P4] DIR...
//	refcheck-manager [-shards N] -demo
//
// With no DIR arguments, -demo is implied. Workers are spawned by
// re-executing this binary with -worker (override the executable with
// -worker-bin, e.g. to point at a `refcheck` build — both speak the same
// pipe protocol). With -cache, every worker opens the shared tiered cache
// and serves per-file front-end entries from it, so a second manager run
// over the same tree skips preprocessing shard by shard.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cliopts"
	"repro/internal/core"
	"repro/internal/manager"
	"repro/internal/render"
)

func main() {
	var opts cliopts.Opts
	opts.Register(flag.CommandLine, cliopts.Demo|cliopts.Render|cliopts.Workers|cliopts.Checkers|cliopts.Cache|cliopts.Verbose)
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "number of worker processes; output is identical at any setting")
	workerBin := flag.String("worker-bin", "", "worker executable (default: this binary); it is invoked with -worker")
	killAfter := flag.Int("kill-worker-after", 0, "fault injection: make the first worker crash after receiving its Nth shard (output must be unchanged)")
	workerMode := flag.Bool("worker", false, "run as an analysis worker on stdin/stdout")
	workerExitAfter := flag.Int("worker-exit-after", 0, "with -worker: crash after receiving the Nth shard")
	flag.Parse()

	if *workerMode {
		err := manager.Worker(os.Stdin, os.Stdout, manager.WorkerOpts{ExitAfterShards: *workerExitAfter})
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck-manager: worker: %v\n", err)
			os.Exit(1)
		}
		return
	}

	sources, headers, err := opts.Sources(flag.Args(), true)
	if err != nil {
		fmt.Fprintf(os.Stderr, "refcheck-manager: %v\n", err)
		os.Exit(1)
	}

	selected, err := opts.Selected()
	if err != nil {
		fmt.Fprintf(os.Stderr, "refcheck-manager: %v\n", err)
		fmt.Fprintln(os.Stderr, "usage: refcheck-manager -checkers P1,P4 ...")
		os.Exit(2)
	}

	bin := *workerBin
	if bin == "" {
		self, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck-manager: %v\n", err)
			os.Exit(1)
		}
		bin = self
	}
	cfg := manager.Config{
		Procs:     *shards,
		WorkerCmd: []string{bin, "-worker"},
		Workers:   opts.Workers,
		CacheDir:  opts.CacheDir,
		CacheMem:  opts.CacheMem,
		Options:   core.Options{Workers: opts.Workers, Checkers: selected},
	}
	if *killAfter > 0 {
		dying := []string{bin, "-worker", "-worker-exit-after", fmt.Sprint(*killAfter)}
		cfg.WorkerCmdFor = func(slot int) []string {
			if slot == 0 {
				return dying
			}
			return cfg.WorkerCmd
		}
	}
	tr := opts.Trace("refcheck-manager")
	cfg.Trace = tr

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	run, err := manager.Run(ctx, cfg, sources, headers)
	elapsed := time.Since(start)
	tr.Done()
	if err != nil {
		switch {
		case errors.Is(err, core.ErrUnknownPattern):
			fmt.Fprintf(os.Stderr, "refcheck-manager: %v\n", err)
			fmt.Fprintln(os.Stderr, "usage: refcheck-manager -checkers P1,P4 ...")
			os.Exit(2)
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "refcheck-manager: interrupted")
			os.Exit(130)
		default:
			fmt.Fprintf(os.Stderr, "refcheck-manager: %v\n", err)
			os.Exit(1)
		}
	}

	if opts.Verbose {
		stats := tr.Reg().Snapshot()
		fmt.Fprintf(os.Stderr, "refcheck-manager: analyzed %d files in %v (%.1f files/sec, shards=%d)\n",
			len(sources), elapsed.Round(time.Millisecond),
			float64(len(sources))/elapsed.Seconds(), *shards)
		fmt.Fprintf(os.Stderr, "refcheck-manager: workers: %d deaths, %d shards re-queued, %d drained inline\n",
			stats.Counters["manager.worker.deaths"], stats.Counters["manager.shard.requeues"],
			stats.Counters["manager.shard.inline"])
		if opts.CacheDir != "" {
			fmt.Fprintf(os.Stderr, "refcheck-manager: front-end cache: %d hits, %d misses across workers\n",
				stats.Counters["manager.frontend.hit"], stats.Counters["manager.frontend.miss"])
		}
	}

	reports := render.FilterPattern(run.Reports, opts.Pattern)
	if opts.JSON {
		if err := render.WriteJSON(os.Stdout, reports); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck-manager: %v\n", err)
			os.Exit(1)
		}
		return
	}
	render.WriteReports(os.Stdout, reports)
	render.WriteSummary(os.Stdout, reports, run.Summary)
}
