// Command refcheck-manager runs the refcheck analysis across multiple worker
// processes and prints exactly what a single-process `refcheck` run would —
// byte-identical reports and summary at any -shards count, even when workers
// die mid-shard (their work is re-queued; see internal/manager).
//
// Usage:
//
//	refcheck-manager [-shards N] [-json] [-pattern P4] DIR...
//	refcheck-manager [-shards N] -demo
//
// With no DIR arguments, -demo is implied. Workers are spawned by
// re-executing this binary with -worker (override the executable with
// -worker-bin, e.g. to point at a `refcheck` build — both speak the same
// pipe protocol).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cpg"
	"repro/internal/loader"
	"repro/internal/manager"
	"repro/internal/obs"
	"repro/internal/render"
)

func main() {
	demo := flag.Bool("demo", false, "check the built-in synthetic kernel corpus")
	asJSON := flag.Bool("json", false, "emit reports as JSON")
	pattern := flag.String("pattern", "", "only report this anti-pattern (P1..P9)")
	seed := flag.Int64("seed", 1, "corpus seed for -demo")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "number of worker processes; output is identical at any setting")
	workers := flag.Int("workers", 0, "per-process pipeline parallelism (0 = GOMAXPROCS)")
	checkersFlag := flag.String("checkers", "", "comma-separated checker subset to run (e.g. P1,P4); default: all registered checkers")
	workerBin := flag.String("worker-bin", "", "worker executable (default: this binary); it is invoked with -worker")
	killAfter := flag.Int("kill-worker-after", 0, "fault injection: make the first worker crash after receiving its Nth shard (output must be unchanged)")
	verbose := flag.Bool("v", false, "print elapsed wall time and worker statistics to stderr")
	workerMode := flag.Bool("worker", false, "run as an analysis worker on stdin/stdout")
	workerExitAfter := flag.Int("worker-exit-after", 0, "with -worker: crash after receiving the Nth shard")
	flag.Parse()

	if *workerMode {
		err := manager.Worker(os.Stdin, os.Stdout, manager.WorkerOpts{ExitAfterShards: *workerExitAfter})
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck-manager: worker: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var sources []cpg.Source
	headers := map[string]string{}
	if *demo || flag.NArg() == 0 {
		c := corpus.Generate(corpus.Spec{Seed: *seed})
		for _, f := range c.Files {
			sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
		}
		for p, s := range c.Headers {
			headers[p] = s
		}
	} else {
		tree, err := loader.LoadDirs(flag.Args()...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck-manager: %v\n", err)
			os.Exit(1)
		}
		sources = tree.Sources
		headers = tree.Headers
	}

	selected, err := core.ParsePatterns(*checkersFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "refcheck-manager: %v\n", err)
		fmt.Fprintln(os.Stderr, "usage: refcheck-manager -checkers P1,P4 ...")
		os.Exit(2)
	}

	bin := *workerBin
	if bin == "" {
		self, err := os.Executable()
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck-manager: %v\n", err)
			os.Exit(1)
		}
		bin = self
	}
	cfg := manager.Config{
		Procs:     *shards,
		WorkerCmd: []string{bin, "-worker"},
		Workers:   *workers,
		Options:   core.Options{Workers: *workers, Checkers: selected},
	}
	if *killAfter > 0 {
		dying := []string{bin, "-worker", "-worker-exit-after", fmt.Sprint(*killAfter)}
		cfg.WorkerCmdFor = func(slot int) []string {
			if slot == 0 {
				return dying
			}
			return cfg.WorkerCmd
		}
	}
	tr := obs.Nop()
	if *verbose {
		tr = obs.New("refcheck-manager")
	}
	cfg.Trace = tr

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	run, err := manager.Run(ctx, cfg, sources, headers)
	elapsed := time.Since(start)
	tr.Done()
	if err != nil {
		switch {
		case errors.Is(err, core.ErrUnknownPattern):
			fmt.Fprintf(os.Stderr, "refcheck-manager: %v\n", err)
			fmt.Fprintln(os.Stderr, "usage: refcheck-manager -checkers P1,P4 ...")
			os.Exit(2)
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "refcheck-manager: interrupted")
			os.Exit(130)
		default:
			fmt.Fprintf(os.Stderr, "refcheck-manager: %v\n", err)
			os.Exit(1)
		}
	}

	if *verbose {
		stats := tr.Reg().Snapshot()
		fmt.Fprintf(os.Stderr, "refcheck-manager: analyzed %d files in %v (%.1f files/sec, shards=%d)\n",
			len(sources), elapsed.Round(time.Millisecond),
			float64(len(sources))/elapsed.Seconds(), *shards)
		fmt.Fprintf(os.Stderr, "refcheck-manager: workers: %d deaths, %d shards re-queued, %d drained inline\n",
			stats.Counters["manager.worker.deaths"], stats.Counters["manager.shard.requeues"],
			stats.Counters["manager.shard.inline"])
	}

	reports := render.FilterPattern(run.Reports, *pattern)
	if *asJSON {
		if err := render.WriteJSON(os.Stdout, reports); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck-manager: %v\n", err)
			os.Exit(1)
		}
		return
	}
	render.WriteReports(os.Stdout, reports)
	render.WriteSummary(os.Stdout, reports, run.Summary)
}
