// Command refcheck runs the nine anti-pattern checkers over a C source tree
// and prints the detected refcounting bugs.
//
// Usage:
//
//	refcheck [-json] [-pattern P4] DIR...
//	refcheck -demo
//	refcheck -worker
//
// DIR arguments are scanned recursively for .c and .h files; -demo checks
// the built-in synthetic kernel corpus instead. -worker turns the process
// into a shard-analysis worker speaking the refcheck-manager pipe protocol
// on stdin/stdout (see cmd/refcheck-manager).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysiscache"
	"repro/internal/apidb"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cpg"
	"repro/internal/difftest"
	"repro/internal/loader"
	"repro/internal/manager"
	"repro/internal/obs"
	"repro/internal/patch"
	"repro/internal/poc"
	"repro/internal/render"
)

func main() {
	demo := flag.Bool("demo", false, "check the built-in synthetic kernel corpus")
	asJSON := flag.Bool("json", false, "emit reports as JSON")
	pattern := flag.String("pattern", "", "only report this anti-pattern (P1..P9)")
	seed := flag.Int64("seed", 1, "corpus seed for -demo")
	fixDir := flag.String("fix", "", "write generated fix patches (unified diffs) into this directory")
	pocDir := flag.String("poc", "", "write use-after-decrease proof-of-concept harnesses into this directory")
	apidbPath := flag.String("apidb", "", "JSON knowledge-base extension file (see `refcheck -dump-apidb`)")
	dumpAPIDB := flag.Bool("dump-apidb", false, "print the seeded knowledge base as JSON and exit")
	selftest := flag.Bool("selftest", false, "re-analyze the golden corpus and verify reports and scores against the copies embedded at build time")
	workers := flag.Int("workers", 0, "pipeline parallelism (0 = GOMAXPROCS, 1 = sequential); output is identical at any setting")
	checkersFlag := flag.String("checkers", "", "comma-separated checker subset to run (e.g. P1,P4); default: all registered checkers")
	verbose := flag.Bool("v", false, "print elapsed wall time, files/sec and cache statistics to stderr")
	cacheDir := flag.String("cache", "", "incremental analysis cache directory (reports are identical with or without it)")
	cacheMem := flag.Int("cache-mem", 64, "in-memory cache tier budget in MB for -cache (0 disables the memory tier)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the analysis to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after analysis) to this file")
	statsJSON := flag.String("stats-json", "", "write the run's span/counter statistics as JSON to this file")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON of the run to this file (load in Perfetto or chrome://tracing)")
	pprofHTTP := flag.String("pprof-http", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the lifetime of the run")
	workerMode := flag.Bool("worker", false, "run as a refcheck-manager analysis worker on stdin/stdout")
	workerExitAfter := flag.Int("worker-exit-after", 0, "with -worker: crash after receiving the Nth shard (recovery-gate fault injection)")
	flag.Parse()

	if *workerMode {
		err := manager.Worker(os.Stdin, os.Stdout, manager.WorkerOpts{ExitAfterShards: *workerExitAfter})
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: worker: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *pprofHTTP != "" {
		go func() {
			if err := http.ListenAndServe(*pprofHTTP, nil); err != nil {
				fmt.Fprintf(os.Stderr, "refcheck: pprof server: %v\n", err)
			}
		}()
	}

	if *dumpAPIDB {
		if err := apidb.New().SaveExtensions(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *selftest {
		// With -json the recomputed scores are printed as the
		// machine-readable quality ledger (scripts/difftest.sh captures it
		// as BENCH_quality.json); either way drift from the embedded golden
		// artifacts is a non-zero exit. A trace may be attached, proving
		// the golden artifacts are identical with observability enabled.
		tr := obs.Nop()
		if *traceOut != "" || *statsJSON != "" || *verbose {
			tr = obs.New("refcheck-selftest")
		}
		err := difftest.SelftestTrace(os.Stdout, *asJSON, tr)
		exportObs(tr, *verbose, *statsJSON, *traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var sources []cpg.Source
	headers := map[string]string{}

	if *demo {
		c := corpus.Generate(corpus.Spec{Seed: *seed})
		for _, f := range c.Files {
			sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
		}
		for p, s := range c.Headers {
			headers[p] = s
		}
	} else {
		if flag.NArg() == 0 {
			fmt.Fprintln(os.Stderr, "usage: refcheck [-json] [-pattern Pn] DIR... | refcheck -demo")
			os.Exit(2)
		}
		tree, err := loader.LoadDirs(flag.Args()...)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		sources = tree.Sources
		headers = tree.Headers
	}

	db := apidb.New()
	configFP := ""
	if *apidbPath != "" {
		// The extension file changes what the checkers look for, so its
		// content is folded into every cache key.
		data, err := os.ReadFile(*apidbPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		configFP = analysiscache.KeyOf("apidb-ext", string(data))
		if err := db.LoadExtensions(strings.NewReader(string(data))); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
	}

	selected, err := core.ParsePatterns(*checkersFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
		fmt.Fprintln(os.Stderr, "usage: refcheck -checkers P1,P4 ...")
		os.Exit(2)
	}

	opt := core.Options{Workers: *workers, DB: db, ConfigFP: configFP, Checkers: selected}
	if *cacheDir != "" {
		c, err := analysiscache.Open(*cacheDir, analysiscache.WithMemory(int64(*cacheMem)<<20))
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		opt.Cache = c
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
	}

	// Observability costs nothing when disabled, so the trace is created
	// only when some consumer (-v, -stats-json, -trace-out) wants it.
	tr := obs.Nop()
	if *verbose || *statsJSON != "" || *traceOut != "" {
		tr = obs.New("refcheck")
	}

	// Interrupts cancel the pipeline at the next phase or work-queue
	// boundary: the workers drain, and the partial run is discarded.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	run, err := core.Analyze(ctx, core.Request{
		Sources: sources, Headers: headers, Options: opt, Trace: tr,
	})
	elapsed := time.Since(start)
	tr.Done()
	if err != nil {
		switch {
		case errors.Is(err, core.ErrUnknownPattern):
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			fmt.Fprintln(os.Stderr, "usage: refcheck -checkers P1,P4 ...")
			os.Exit(2)
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "refcheck: interrupted")
			os.Exit(130)
		default:
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
	}
	reports := run.Reports
	if opt.Cache != nil {
		// Analyze already flushed its own writes; Close catches anything
		// still pending and surfaces disk-tier failures that silently
		// degraded to misses during the run.
		if err := opt.Cache.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: cache flush: %v\n", err)
		}
	}

	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}

	if *verbose {
		fmt.Fprintf(os.Stderr, "refcheck: analyzed %d files in %v (%.1f files/sec, workers=%d)\n",
			len(sources), elapsed.Round(time.Millisecond),
			float64(len(sources))/elapsed.Seconds(), *workers)
		if opt.Cache != nil {
			if run.Metric("cache.unit.hit") > 0 {
				fmt.Fprintf(os.Stderr, "refcheck: cache: unit hit — skipped analysis of all %d files\n",
					run.Metric("pipeline.files_skipped"))
			} else {
				factsState := "miss"
				if run.Metric("cache.facts.hit") > 0 {
					factsState = "hit"
				}
				fmt.Fprintf(os.Stderr, "refcheck: cache: unit miss; facts %s; front end: %d hits, %d misses (%d files skipped preprocessing)\n",
					factsState, run.Metric("frontend.cache.hit"), run.Metric("frontend.cache.miss"),
					run.Metric("frontend.cache.hit"))
			}
			st := opt.Cache.Stats()
			fmt.Fprintf(os.Stderr, "refcheck: cache: L1 %d hits, %d misses, %d evictions (%d entries, %.1f MB resident); L2 %d batch flushes (%d entries); single-flight %d led, %d waited\n",
				run.Metric("cache.l1.hit"), run.Metric("cache.l1.miss"), run.Metric("cache.l1.evict"),
				st.L1Entries, float64(st.L1Bytes)/(1<<20),
				run.Metric("cache.l2.batch.flushes"), run.Metric("cache.l2.batch.entries"),
				run.Metric("cache.singleflight.leader"), run.Metric("cache.singleflight.wait"))
		}
	}
	exportObs(tr, *verbose, *statsJSON, *traceOut)

	reports = render.FilterPattern(reports, *pattern)

	if *asJSON {
		if err := render.WriteJSON(os.Stdout, reports); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}

	render.WriteReports(os.Stdout, reports)

	if *fixDir != "" {
		contentOf := map[string]string{}
		for _, src := range sources {
			contentOf[src.Path] = src.Content
		}
		if err := os.MkdirAll(*fixDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		written, manual := 0, 0
		for i, r := range reports {
			fx := patch.Generate(contentOf[r.File], r)
			if !fx.OK {
				manual++
				continue
			}
			name := fmt.Sprintf("%04d-%s-%s.patch", i, r.Pattern, r.Function)
			if err := os.WriteFile(filepath.Join(*fixDir, name), []byte(fx.Diff), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
				os.Exit(1)
			}
			written++
		}
		fmt.Printf("\nwrote %d patches to %s (%d reports need manual fixes)\n", written, *fixDir, manual)
	}

	if *pocDir != "" {
		if err := os.MkdirAll(*pocDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		written := 0
		for i, r := range reports {
			if r.Pattern != core.P8 {
				continue
			}
			px := poc.Generate(r)
			if !px.OK {
				fmt.Printf("poc: %s: %s\n", r.Function, px.Reason)
				continue
			}
			name := fmt.Sprintf("%04d-poc-%s.c", i, r.Function)
			if err := os.WriteFile(filepath.Join(*pocDir, name), []byte(px.Harness), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
				os.Exit(1)
			}
			written++
		}
		fmt.Printf("wrote %d PoC harnesses to %s\n", written, *pocDir)
	}

	render.WriteSummary(os.Stdout, reports, run.Summary)
}

// exportObs drains a finished trace to the configured sinks: a human phase +
// metric summary on stderr (-v), span/counter statistics as JSON
// (-stats-json), and a Chrome trace-event file (-trace-out). All three are
// no-ops on an obs.Nop() trace.
func exportObs(tr *obs.Trace, verbose bool, statsJSON, traceOut string) {
	tr.Done()
	if verbose {
		obs.WriteSummary(os.Stderr, tr)
	}
	if statsJSON != "" {
		f, err := os.Create(statsJSON)
		if err == nil {
			err = obs.WriteStatsJSON(f, tr)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: stats-json: %v\n", err)
			os.Exit(1)
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err == nil {
			err = obs.WriteChromeTrace(f, tr)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: trace-out: %v\n", err)
			os.Exit(1)
		}
	}
}
