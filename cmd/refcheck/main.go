// Command refcheck runs the nine anti-pattern checkers over a C source tree
// and prints the detected refcounting bugs.
//
// Usage:
//
//	refcheck [-json] [-pattern P4] DIR...
//	refcheck -demo
//	refcheck -watch DIR...
//	refcheck -worker
//
// DIR arguments are scanned recursively for .c and .h files; -demo checks
// the built-in synthetic kernel corpus instead. -watch re-analyzes the
// directories whenever a source file changes (mtime polling), reusing the
// warm tiered cache so an edit loop costs one file's recompute. -worker
// turns the process into a shard-analysis worker speaking the
// refcheck-manager pipe protocol on stdin/stdout (see cmd/refcheck-manager).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysiscache"
	"repro/internal/apidb"
	"repro/internal/cliopts"
	"repro/internal/core"
	"repro/internal/difftest"
	"repro/internal/manager"
	"repro/internal/patch"
	"repro/internal/poc"
	"repro/internal/render"
)

func main() {
	var opts cliopts.Opts
	opts.Register(flag.CommandLine, cliopts.Analysis)
	fixDir := flag.String("fix", "", "write generated fix patches (unified diffs) into this directory")
	pocDir := flag.String("poc", "", "write use-after-decrease proof-of-concept harnesses into this directory")
	apidbPath := flag.String("apidb", "", "JSON knowledge-base extension file (see `refcheck -dump-apidb`)")
	dumpAPIDB := flag.Bool("dump-apidb", false, "print the seeded knowledge base as JSON and exit")
	selftest := flag.Bool("selftest", false, "re-analyze the golden corpus and verify reports and scores against the copies embedded at build time")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the analysis to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken after analysis) to this file")
	pprofHTTP := flag.String("pprof-http", "", "serve net/http/pprof on this address (e.g. localhost:6060) for the lifetime of the run")
	workerMode := flag.Bool("worker", false, "run as a refcheck-manager analysis worker on stdin/stdout")
	workerExitAfter := flag.Int("worker-exit-after", 0, "with -worker: crash after receiving the Nth shard (recovery-gate fault injection)")
	watchMode := flag.Bool("watch", false, "poll DIR... for changes and re-analyze on edit (pairs with -cache for incremental runs)")
	watchInterval := flag.Duration("watch-interval", time.Second, "with -watch: polling interval")
	watchRuns := flag.Int("watch-runs", 0, "with -watch: exit after N analysis runs (0 = run until interrupted)")
	watchOut := flag.String("watch-out", "", "with -watch: write each run's reports atomically to this file instead of stdout")
	flag.Parse()

	if *workerMode {
		err := manager.Worker(os.Stdin, os.Stdout, manager.WorkerOpts{ExitAfterShards: *workerExitAfter})
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: worker: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *pprofHTTP != "" {
		go func() {
			if err := http.ListenAndServe(*pprofHTTP, nil); err != nil {
				fmt.Fprintf(os.Stderr, "refcheck: pprof server: %v\n", err)
			}
		}()
	}

	if *dumpAPIDB {
		if err := apidb.New().SaveExtensions(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *selftest {
		// With -json the recomputed scores are printed as the
		// machine-readable quality ledger (scripts/difftest.sh captures it
		// as BENCH_quality.json); either way drift from the embedded golden
		// artifacts is a non-zero exit. A trace may be attached, proving
		// the golden artifacts are identical with observability enabled.
		tr := opts.Trace("refcheck-selftest")
		err := difftest.SelftestTrace(os.Stdout, opts.JSON, tr)
		opts.Export("refcheck", tr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *watchMode {
		code := runWatch(&opts, flag.Args(), *apidbPath, *watchInterval, *watchRuns, *watchOut)
		os.Exit(code)
	}

	if !opts.Demo && flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: refcheck [-json] [-pattern Pn] DIR... | refcheck -demo")
		os.Exit(2)
	}
	req, cache, err := opts.ToRequest("refcheck", flag.Args(), false)
	if err != nil {
		if errors.Is(err, core.ErrUnknownPattern) {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			fmt.Fprintln(os.Stderr, "usage: refcheck -checkers P1,P4 ...")
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
		os.Exit(1)
	}

	db, configFP, err := loadAPIDB(*apidbPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
		os.Exit(1)
	}
	req.Options.DB = db
	req.Options.ConfigFP = configFP

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
	}

	// Interrupts cancel the pipeline at the next phase or work-queue
	// boundary: the workers drain, and the partial run is discarded.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	run, err := core.Analyze(ctx, req)
	elapsed := time.Since(start)
	req.Trace.Done()
	if err != nil {
		switch {
		case errors.Is(err, core.ErrUnknownPattern):
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			fmt.Fprintln(os.Stderr, "usage: refcheck -checkers P1,P4 ...")
			os.Exit(2)
		case errors.Is(err, context.Canceled):
			fmt.Fprintln(os.Stderr, "refcheck: interrupted")
			os.Exit(130)
		default:
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
	}
	reports := run.Reports
	if cache != nil {
		// Analyze already flushed its own writes; Close catches anything
		// still pending and surfaces disk-tier failures that silently
		// degraded to misses during the run.
		if err := cache.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: cache flush: %v\n", err)
		}
	}

	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		f.Close()
	}

	if opts.Verbose {
		fmt.Fprintf(os.Stderr, "refcheck: analyzed %d files in %v (%.1f files/sec, workers=%d)\n",
			len(req.Sources), elapsed.Round(time.Millisecond),
			float64(len(req.Sources))/elapsed.Seconds(), opts.Workers)
		if cache != nil {
			printCacheStats(run, cache)
		}
	}
	opts.Export("refcheck", req.Trace)

	reports = render.FilterPattern(reports, opts.Pattern)

	if opts.JSON {
		if err := render.WriteJSON(os.Stdout, reports); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		return
	}

	render.WriteReports(os.Stdout, reports)

	if *fixDir != "" {
		contentOf := map[string]string{}
		for _, src := range req.Sources {
			contentOf[src.Path] = src.Content
		}
		if err := os.MkdirAll(*fixDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		written, manual := 0, 0
		for i, r := range reports {
			fx := patch.Generate(contentOf[r.File], r)
			if !fx.OK {
				manual++
				continue
			}
			name := fmt.Sprintf("%04d-%s-%s.patch", i, r.Pattern, r.Function)
			if err := os.WriteFile(filepath.Join(*fixDir, name), []byte(fx.Diff), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
				os.Exit(1)
			}
			written++
		}
		fmt.Printf("\nwrote %d patches to %s (%d reports need manual fixes)\n", written, *fixDir, manual)
	}

	if *pocDir != "" {
		if err := os.MkdirAll(*pocDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
			os.Exit(1)
		}
		written := 0
		for i, r := range reports {
			if r.Pattern != core.P8 {
				continue
			}
			px := poc.Generate(r)
			if !px.OK {
				fmt.Printf("poc: %s: %s\n", r.Function, px.Reason)
				continue
			}
			name := fmt.Sprintf("%04d-poc-%s.c", i, r.Function)
			if err := os.WriteFile(filepath.Join(*pocDir, name), []byte(px.Harness), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
				os.Exit(1)
			}
			written++
		}
		fmt.Printf("wrote %d PoC harnesses to %s\n", written, *pocDir)
	}

	render.WriteSummary(os.Stdout, reports, run.Summary)
}

// loadAPIDB builds the knowledge base, folding an optional -apidb extension
// file into the returned config fingerprint (the extension changes what the
// checkers look for, so it must key the cache).
func loadAPIDB(path string) (*apidb.DB, string, error) {
	db := apidb.New()
	if path == "" {
		return db, "", nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	if err := db.LoadExtensions(strings.NewReader(string(data))); err != nil {
		return nil, "", err
	}
	return db, analysiscache.KeyOf("apidb-ext", string(data)), nil
}

// printCacheStats renders the tiered-cache statistics block of -v.
func printCacheStats(run *core.Run, cache *analysiscache.Cache) {
	if run.Metric("cache.unit.hit") > 0 {
		fmt.Fprintf(os.Stderr, "refcheck: cache: unit hit — skipped analysis of all %d files\n",
			run.Metric("pipeline.files_skipped"))
	} else {
		factsState := "miss"
		if run.Metric("cache.facts.hit") > 0 {
			factsState = "hit"
		}
		fmt.Fprintf(os.Stderr, "refcheck: cache: unit miss; facts %s; front end: %d hits, %d misses (%d files skipped preprocessing)\n",
			factsState, run.Metric("frontend.cache.hit"), run.Metric("frontend.cache.miss"),
			run.Metric("frontend.cache.hit"))
	}
	st := cache.Stats()
	fmt.Fprintf(os.Stderr, "refcheck: cache: L1 %d hits, %d misses, %d evictions (%d entries, %.1f MB resident); L2 %d batch flushes (%d entries); single-flight %d led, %d waited\n",
		run.Metric("cache.l1.hit"), run.Metric("cache.l1.miss"), run.Metric("cache.l1.evict"),
		st.L1Entries, float64(st.L1Bytes)/(1<<20),
		run.Metric("cache.l2.batch.flushes"), run.Metric("cache.l2.batch.entries"),
		run.Metric("cache.singleflight.leader"), run.Metric("cache.singleflight.wait"))
}
