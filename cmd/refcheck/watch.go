package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/cliopts"
	"repro/internal/core"
	"repro/internal/loader"
	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/watch"
)

// runWatch is the -watch mode: poll the directories for source changes and
// re-analyze on every edit. The tiered cache handle (when -cache is set)
// stays open across runs, so after the first analysis an edit re-runs the
// front end for exactly the changed files — while the rendered output of
// every run is byte-identical to a fresh cold run over the same tree.
func runWatch(opts *cliopts.Opts, dirs []string, apidbPath string, interval time.Duration, maxRuns int, outFile string) int {
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: refcheck -watch DIR...")
		return 2
	}
	selected, err := opts.Selected()
	if err != nil {
		fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
		return 2
	}
	cache, err := opts.OpenCache()
	if err != nil {
		fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
		return 1
	}
	defer func() {
		if cache != nil {
			if err := cache.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "refcheck: cache flush: %v\n", err)
			}
		}
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	runs := 0
	runOnce := func(changed []string) error {
		tree, err := loader.LoadDirs(dirs...)
		if err != nil {
			return err
		}
		// Discovery extends the knowledge base in place, so every run gets
		// a fresh DB — identical inputs must render identical bytes whether
		// this is run 1 or run 100.
		db, configFP, err := loadAPIDB(apidbPath)
		if err != nil {
			return err
		}
		req := core.Request{
			Sources: tree.Sources,
			Headers: tree.Headers,
			Options: core.Options{
				Workers: opts.Workers, Checkers: selected,
				Cache: cache, DB: db, ConfigFP: configFP,
			},
			// Always a real trace (not opts.Trace's conditional): the status
			// line below reads the front-end hit/miss counters from it.
			Trace: obs.New("refcheck-watch"),
		}
		start := time.Now()
		run, err := core.Analyze(ctx, req)
		elapsed := time.Since(start)
		if err != nil {
			return err
		}
		runs++

		var buf bytes.Buffer
		reports := render.FilterPattern(run.Reports, opts.Pattern)
		if opts.JSON {
			if err := render.WriteJSON(&buf, reports); err != nil {
				return err
			}
		} else {
			render.WriteReports(&buf, reports)
			render.WriteSummary(&buf, reports, run.Summary)
		}
		if outFile != "" {
			if err := writeAtomic(outFile, buf.Bytes()); err != nil {
				return err
			}
		} else {
			os.Stdout.Write(buf.Bytes())
		}

		what := "initial scan"
		if changed != nil {
			what = fmt.Sprintf("%d files changed", len(changed))
		}
		fmt.Fprintf(os.Stderr, "refcheck: watch: run %d (%s): %d files, %d reports in %v (front end: %d hits, %d misses)\n",
			runs, what, len(tree.Sources), len(reports), elapsed.Round(time.Millisecond),
			run.Metric("frontend.cache.hit"), run.Metric("frontend.cache.miss"))
		opts.Export("refcheck", req.Trace)
		return nil
	}

	err = watch.Watch(ctx, watch.Config{
		Roots:    dirs,
		Interval: interval,
		MaxRuns:  maxRuns,
		Run:      runOnce,
	})
	switch {
	case err == nil, errors.Is(err, context.Canceled):
		fmt.Fprintf(os.Stderr, "refcheck: watch: done after %d runs\n", runs)
		return 0
	default:
		fmt.Fprintf(os.Stderr, "refcheck: %v\n", err)
		return 1
	}
}

// writeAtomic writes data to path via a same-directory temp file + rename,
// so readers of -watch-out never observe a torn report.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".refcheck-watch-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return werr
	}
	return os.Rename(tmp.Name(), path)
}
