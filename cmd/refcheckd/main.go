// Command refcheckd runs the nine anti-pattern checkers as a long-lived
// analysis server: one warm tiered cache shared across concurrent HTTP
// requests, bounded-queue admission with backpressure, per-request
// deadlines, cancellation on client disconnect, and graceful drain on
// SIGTERM.
//
// Server mode:
//
//	refcheckd [-addr 127.0.0.1:8347] [-cache DIR] [-cache-mem MB] ...
//
// The API is POST /v1/analyze (sources or the demo corpus in, the exact
// refcheck stdout bytes out), GET /stats, GET /trace/{id}, GET /healthz —
// see internal/serve.
//
// Client mode (used by scripts/verify.sh's smoke leg; any HTTP client
// works):
//
//	refcheckd -post http://HOST:PORT/v1/analyze -demo            # demo corpus
//	refcheckd -post http://HOST:PORT/v1/analyze DIR...           # local sources
//	refcheckd -get  http://HOST:PORT/stats
//
// -post prints the response's Output field — the CLI-identical report
// bytes — to stdout, so `refcheckd -post … -demo | cmp - <(refcheck -demo)`
// is the serving layer's correctness smoke test.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cliopts"
	"repro/internal/loader"
	"repro/internal/serve"
)

func main() {
	// The shared flag surface covers both roles: Workers/Cache configure
	// the server's pipeline and tiered cache, Demo/Render/Checkers shape a
	// client-mode analyze request.
	var opts cliopts.Opts
	opts.Register(flag.CommandLine, cliopts.Demo|cliopts.Render|cliopts.Workers|cliopts.Checkers|cliopts.Cache)
	addr := flag.String("addr", "127.0.0.1:8347", "listen address (host:port; port 0 picks a free port)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file once listening (for harnesses that pass port 0)")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrently computing requests (0 = GOMAXPROCS); cache hits are unbounded")
	queue := flag.Int("queue", serve.DefaultQueue, "max computations waiting for a slot before 429s")
	timeout := flag.Duration("timeout", 0, "default per-request deadline when the request sets none (0 = none)")
	maxTimeout := flag.Duration("max-timeout", serve.DefaultMaxTimeout, "cap on any per-request deadline")
	drain := flag.Duration("drain", 30*time.Second, "how long to wait for in-flight requests on SIGTERM before giving up")

	post := flag.String("post", "", "client mode: POST an analyze request to this URL and print the response output")
	get := flag.String("get", "", "client mode: GET this URL and print the body")
	confirm := flag.Bool("confirm", false, "client mode: replay witnesses through refsim")
	reqTimeout := flag.Int64("timeout-ms", 0, "client mode: per-request deadline in milliseconds")
	flag.Parse()

	if *get != "" {
		clientGet(*get)
		return
	}
	if *post != "" {
		clientPost(*post, opts.Demo, opts.Seed, opts.JSON, opts.Checkers, opts.Pattern, *confirm, *reqTimeout, flag.Args())
		return
	}

	cfg := serve.Config{
		Workers:        opts.Workers,
		MaxConcurrent:  *maxConcurrent,
		Queue:          *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
	}
	cache, err := opts.OpenCache()
	if err != nil {
		fatalf("%v", err)
	}
	cfg.Cache = cache
	srv := serve.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatalf("%v", err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fatalf("addr-file: %v", err)
		}
	}
	fmt.Fprintf(os.Stderr, "refcheckd: listening on http://%s\n", bound)

	hs := &http.Server{Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- hs.Serve(ln) }()

	// SIGTERM/SIGINT start the drain: stop accepting, finish in-flight
	// requests (up to -drain), release the cache reference (flushing the
	// disk tier), exit 0.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		// Serve only returns on listener failure (Shutdown isn't in play
		// yet on this path).
		fatalf("%v", err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "refcheckd: draining")
	srv.Drain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintf(os.Stderr, "refcheckd: drain: %v\n", err)
	}
	if cache != nil {
		// The daemon's own reference: under the refcount model this is the
		// last owner, so the disk tier flushes exactly once, here.
		if err := cache.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "refcheckd: cache flush: %v\n", err)
		}
	}
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "refcheckd: close: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "refcheckd: drained, exiting")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "refcheckd: "+format+"\n", args...)
	os.Exit(1)
}

func clientGet(url string) {
	resp, err := http.Get(url)
	if err != nil {
		fatalf("%v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fatalf("GET %s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	os.Stdout.Write(body)
}

func clientPost(url string, demo bool, seed int64, asJSON bool, checkers, pattern string, confirm bool, timeoutMS int64, dirs []string) {
	req := serve.AnalyzeRequest{
		Demo: demo, Seed: seed, JSON: asJSON,
		Checkers: checkers, Pattern: pattern, Confirm: confirm,
		TimeoutMS: timeoutMS,
	}
	if !demo {
		if len(dirs) == 0 {
			fmt.Fprintln(os.Stderr, "usage: refcheckd -post URL -demo | refcheckd -post URL DIR...")
			os.Exit(2)
		}
		tree, err := loader.LoadDirs(dirs...)
		if err != nil {
			fatalf("%v", err)
		}
		for _, s := range tree.Sources {
			req.Sources = append(req.Sources, serve.SourceFile{Path: s.Path, Content: s.Content})
		}
		req.Headers = tree.Headers
	}
	payload, err := json.Marshal(req)
	if err != nil {
		fatalf("%v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		fatalf("%v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		fatalf("POST %s: %s: %s", url, resp.Status, bytes.TrimSpace(body))
	}
	var out serve.AnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		fatalf("bad response: %v", err)
	}
	fmt.Fprintf(os.Stderr, "refcheckd: run %s: %d reports in %.1fms\n", out.ID, out.Reports, out.WallMS)
	os.Stdout.WriteString(out.Output)
}
