package repro

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/analysiscache"
	"repro/internal/core"
	"repro/internal/loader"
	"repro/internal/obs"
	"repro/internal/render"
	"repro/internal/watch"
)

// renderCLI renders a run exactly as the refcheck CLI (and -watch mode) does,
// so equality here is byte-identity of the user-visible report.
func renderCLI(run *core.Run) string {
	var b bytes.Buffer
	render.WriteReports(&b, run.Reports)
	render.WriteSummary(&b, run.Reports, run.Summary)
	return b.String()
}

// TestWatchIncrementalRerun is the watch-mode guarantee end to end: a watch
// loop over an on-disk tree with a persistent cache handle re-analyzes after
// a one-file edit by recomputing exactly that file's front end (every other
// file is an L1 hit), and the incremental report is byte-identical to a cold
// run over the edited tree.
func TestWatchIncrementalRerun(t *testing.T) {
	dir := t.TempDir()
	c, sources := kernelCorpus()
	if err := loader.WriteTree(dir, sources, c.Headers); err != nil {
		t.Fatal(err)
	}
	target := filepath.Join(dir, filepath.FromSlash(sources[0].Path))

	cache, err := analysiscache.Open(filepath.Join(t.TempDir(), "cache"))
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()

	// The refcheck -watch analysis closure: reload the tree, analyze with
	// the shared cache handle, render as the CLI would.
	var outputs []string
	var runs []*core.Run
	analyze := func() error {
		tree, err := loader.LoadDirs(dir)
		if err != nil {
			return err
		}
		run, err := core.Analyze(context.Background(), core.Request{
			Sources: tree.Sources, Headers: tree.Headers,
			Options: core.Options{Cache: cache},
			Trace:   obs.New("watch-test"),
		})
		if err != nil {
			return err
		}
		outputs = append(outputs, renderCLI(run))
		runs = append(runs, run)
		return nil
	}

	err = watch.Watch(context.Background(), watch.Config{
		Roots:    []string{dir},
		Interval: 10 * time.Millisecond,
		MaxRuns:  2,
		Run: func(changed []string) error {
			if err := analyze(); err != nil {
				return err
			}
			if len(outputs) == 1 {
				// The synthetic edit stream: append a comment to one file.
				// Appending at EOF shifts no report line numbers, so the
				// rendered output must not change at all.
				f, err := os.OpenFile(target, os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					return err
				}
				if _, err := f.WriteString("/* watch edit */\n"); err != nil {
					return err
				}
				return f.Close()
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("watch performed %d runs, want 2", len(runs))
	}

	// Exactly-one-file recompute: on the re-run every unedited file's front
	// end comes from the warm cache; only the edited file misses.
	n := int64(len(sources))
	if hits := runs[1].Metric("frontend.cache.hit"); hits != n-1 {
		t.Errorf("re-run frontend hits = %d, want %d (all but the edited file)", hits, n-1)
	}
	if misses := runs[1].Metric("frontend.cache.miss"); misses != 1 {
		t.Errorf("re-run frontend misses = %d, want exactly 1 (the edited file)", misses)
	}
	if cold := runs[0].Metric("frontend.cache.miss"); cold != n {
		t.Errorf("cold run frontend misses = %d, want %d", cold, n)
	}

	// Byte-identity against a cold, cache-free run over the edited tree.
	tree, err := loader.LoadDirs(dir)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.Analyze(context.Background(), core.Request{
		Sources: tree.Sources, Headers: tree.Headers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if outputs[1] != renderCLI(fresh) {
		t.Error("incremental watch output differs from a cold run over the edited tree")
	}
	// And the EOF comment edit must not have changed any diagnostics.
	if outputs[1] != outputs[0] {
		t.Error("EOF comment edit changed the rendered report")
	}
}
