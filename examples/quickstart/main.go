// Quickstart: run the nine refcounting checkers on a single buggy C snippet
// (the paper's Listing 1, the NVMEM missing-refcounting bug) and print what
// they find.
package main

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cpg"
)

// listing1 is the shape of the paper's Listing 1: bus_find_device embeds a
// hidden get; the error path returns without the paired put_device.
const listing1 = `
struct nvmem_device *__nvmem_device_get(void *data)
{
	int err;
	struct device *dev = bus_find_device(nvmem_bus_type, data);
	if (!dev)
		return 0;
	err = nvmem_validate(dev);
	if (err)
		return 0;
	return to_nvmem_device(dev);
}
`

func main() {
	sources := []cpg.Source{{Path: "drivers/nvmem/core.c", Content: listing1}}
	run, err := core.Analyze(context.Background(), core.Request{Sources: sources})
	if err != nil {
		panic(err)
	}

	fmt.Printf("analyzed %d function(s); %d report(s):\n\n", len(run.Unit.Functions), len(run.Reports))
	for _, r := range run.Reports {
		fmt.Printf("%s\n", r.String())
		fmt.Printf("  anti-pattern: %s   impact: %s   object: %s\n", r.Pattern, r.Impact, r.Object)
		fmt.Printf("  suggestion:   %s\n\n", strings.ReplaceAll(r.Suggestion, "\n", " "))
	}
}
