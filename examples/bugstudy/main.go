// Bugstudy: the §3–§4 characteristic study — generate a calibrated kernel
// commit history, mine the refcounting bug dataset with the two-level filter
// and the Fixes-tag cleanup, and print the five findings.
package main

import (
	"fmt"

	"repro/internal/apidb"
	"repro/internal/corpus"
	"repro/internal/gitlog"
	"repro/internal/mine"
	"repro/internal/study"
)

func main() {
	h := gitlog.Generate(corpus.Spec{Seed: 1, Background: 4000})
	fmt.Printf("history: %d commits across %d releases (2005-2022)\n", len(h.Commits), len(h.Versions))

	res := mine.Mine(h, apidb.New())
	fmt.Printf("mining: %d keyword candidates -> %d confirmed refcounting patches -> %d dataset bugs\n",
		len(res.Candidates), len(res.Confirmed), len(res.Dataset))
	fmt.Printf("        %d wrong patches removed via Fixes-tag reverse lookup\n\n", len(res.RemovedWrongPatches))

	s := study.New(h, res)
	for _, f := range s.Findings() {
		status := "HOLDS"
		if !f.Holds {
			status = "FAILS"
		}
		fmt.Printf("Finding %d [%s]\n  paper:    %s\n  measured: %s\n\n", f.ID, status, f.Statement, f.Measured)
	}

	t2 := s.Classification()
	fmt.Printf("classification: %d bugs, %d leak (%.1f%%), %d UAF, %d UAD\n",
		t2.Total, t2.LeakCount, 100*float64(t2.LeakCount)/float64(t2.Total),
		t2.UAFCount, t2.UADCount)

	dist := s.Distribution()
	fmt.Printf("top subsystems: %s(%d), %s(%d), %s(%d)\n",
		dist[0].Subsystem, dist[0].Bugs, dist[1].Subsystem, dist[1].Bugs,
		dist[2].Subsystem, dist[2].Bugs)
}
