// Kernelaudit: the full §6 pipeline over the synthetic kernel tree —
// generate the corpus, build the code property graphs (with lexer-parsing
// discovery), run all nine checkers, confirm each report dynamically with
// refsim, and print the Table 4 summary.
package main

import (
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cpg"
	"repro/internal/cpp"
	"repro/internal/study"
)

func main() {
	c := corpus.Generate(corpus.Spec{Seed: 1})
	fmt.Printf("generated synthetic kernel: %d files, %.1f KLOC, %d planned bugs, %d FP baits\n",
		len(c.Files), c.KLOC(), len(c.Planned), len(c.Baits))

	var sources []cpg.Source
	for _, f := range c.Files {
		sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
	}
	unit := (&cpg.Builder{Headers: cpp.MapFiles(c.Headers)}).Build(sources)
	fmt.Printf("lexer parsing discovered %d refcounted structs, %d wrapper APIs, %d smartloops\n",
		len(unit.DiscoveredStructs), len(unit.DiscoveredAPIs), len(unit.DiscoveredLoops))

	reports := core.NewEngine().CheckUnit(unit)
	fmt.Printf("checkers produced %d reports\n\n", len(reports))

	nb := study.EvaluateNewBugs(c, reports)
	rows := nb.Table4()
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "subsystem\tnew bugs\tleak\tuaf\tnpd\tcfm\tpr\tnr\tfp")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Subsystem, r.NewBugs, r.Leak, r.UAF, r.NPD, r.CFM, r.PR, r.NR, r.FP)
	}
	t := study.Total(rows)
	fmt.Fprintf(w, "Total\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
		t.NewBugs, t.Leak, t.UAF, t.NPD, t.CFM, t.PR, t.NR, t.FP)
	w.Flush()

	if len(nb.Missed) > 0 {
		fmt.Printf("\nWARNING: %d planned bugs were missed\n", len(nb.Missed))
	}
	fmt.Println("\nsample confirmed reports:")
	shown := 0
	for _, b := range nb.Bugs {
		if b.Status != study.CFM || shown >= 3 {
			continue
		}
		shown++
		fmt.Printf("  [%s] %s\n      oracle: %s\n", b.Status, b.Report.String(), b.Verdict.Detail)
	}
	fmt.Println("\nsample rejected (pinned UAD) reports:")
	for _, b := range nb.Bugs {
		if b.Status != study.PR {
			continue
		}
		fmt.Printf("  [%s] %s\n      oracle: %s\n", b.Status, b.Report.String(), b.Verdict.Detail)
	}
}
