// Uafsim: dynamic demonstration of the paper's Listing 2 (the USB-serial
// misplacing bug) and Listing 6 (the ping_unhash UAD that developers
// rejected): the checkers find both, and the refsim oracle shows why one is
// an exploitable use-after-free while the "pinned" variant survives — the
// exact future-risk argument of §5.4.1.
package main

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpg"
	"repro/internal/poc"
	"repro/internal/refsim"
)

const buggy = `
static int usb_console_setup(struct usb_serial *serial)
{
	usb_serial_put(serial);
	mutex_unlock(&serial->disc_mutex);
	return 0;
}
`

const pinned = `
void ping_unhash(struct sock *sk)
{
	sock_hold(sk);
	sock_put(sk);
	sk->inet_num = 0;
	sock_prot_inuse_add(net, sk->sk_prot, -1);
}
`

func demo(title, src string) {
	fmt.Printf("== %s ==\n", title)
	run, err := core.Analyze(context.Background(), core.Request{
		Sources: []cpg.Source{{Path: "demo.c", Content: src}},
	})
	if err != nil {
		panic(err)
	}
	for _, r := range run.Reports {
		if r.Pattern != core.P8 {
			continue
		}
		fmt.Printf("static checker: %s\n", r.String())
		v, transcript := refsim.ReplayTrace(r.Witness, refsim.Claim{Impact: r.Impact.String(), Object: r.Object})
		if v.Confirmed {
			fmt.Printf("dynamic oracle: CONFIRMED — %s\n", v.Detail)
		} else {
			fmt.Printf("dynamic oracle: not reproducible — %s\n", v.Detail)
			fmt.Println("                (this is the patch-reject case: another reference pins the")
			fmt.Println("                 object *today*; the paper warns a future caller removes it)")
		}
		for _, step := range transcript {
			fmt.Printf("    sim: %s\n", step)
		}
		if p := poc.Generate(r); p.OK {
			fmt.Println("\ngenerated proof-of-concept harness:")
			fmt.Println(p.Harness)
		}
	}
	fmt.Println()
}

func main() {
	demo("Listing 2: use-after-decrease in usb_console_setup", buggy)
	demo("Listing 6 (pinned): ping_unhash with an extra hold", pinned)
}
