package repro

import (
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/manager"
	"repro/internal/obs"
)

// TestMain doubles as the manager's worker executable: the benchmark
// re-executes this test binary with the "repro-worker" argv and the shim
// runs the pipe-protocol worker loop instead of the suite, so the
// multi-process benchmark needs no separately built binary.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "repro-worker" {
		if err := manager.Worker(os.Stdin, os.Stdout, manager.WorkerOpts{}); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// BenchmarkManagerShards sweeps the worker-process count over the
// partition-then-exchange pipeline (real subprocesses, artifacts over
// pipes), the multi-process counterpart of BenchmarkPipelineParallel's
// in-process Workers sweep. Output is byte-identical at every shard count;
// the benchmark tracks what process fan-out costs (spawn, serialization,
// reparse-on-assembly) against the single-process baseline in
// BENCH_pipeline.json.
func BenchmarkManagerShards(b *testing.B) {
	c, sources := kernelCorpus()
	bytes := 0
	for _, f := range c.Files {
		bytes += len(f.Content)
	}
	headers := map[string]string{}
	for p, s := range c.Headers {
		headers[p] = s
	}
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.SetBytes(int64(bytes))
			b.ReportAllocs()
			var reports []core.Report
			for i := 0; i < b.N; i++ {
				run, err := manager.Run(context.Background(), manager.Config{
					Procs:     shards,
					WorkerCmd: []string{os.Args[0], "repro-worker"},
					Options:   core.Options{Confirm: true},
					Trace:     obs.New("bench-manager"),
				}, sources, headers)
				if err != nil {
					b.Fatal(err)
				}
				reports = run.Reports
			}
			b.ReportMetric(float64(len(reports)), "reports")
			b.ReportMetric(float64(shards), "shards")
		})
	}
}
