package repro

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysiscache"
	"repro/internal/core"
	"repro/internal/cpg"
	"repro/internal/obs"
)

// renderRun canonicalizes everything a run reports — rendered diagnostics,
// suggestions, confirmation verdicts, and the full witness event stream — so
// two runs can be compared byte for byte. (reflect.DeepEqual is deliberately
// not used: cached reports legitimately drop witness CFG block pointers,
// which no consumer reads.)
func renderRun(run *core.Run) string {
	var b strings.Builder
	fmt.Fprintf(&b, "summary %+v\n", run.Summary)
	for _, r := range run.Reports {
		fmt.Fprintf(&b, "%s | confirmed=%v | suggestion=%q\n", r.String(), r.Confirmed, r.Suggestion)
		for _, ev := range r.Witness {
			fmt.Fprintf(&b, "  ev %v obj=%q api=%q assign=%q esc=%q pos=%s macro=%q",
				ev.Op, ev.Obj, ev.API, ev.AssignTarget, ev.EscapesVia, ev.Pos, ev.FromMacro)
			if ev.Info != nil {
				fmt.Fprintf(&b, " info=%+v", *ev.Info)
			}
			fmt.Fprintf(&b, " nnT=%v nnF=%v\n", ev.NonNullTrue, ev.NonNullFalse)
		}
	}
	return b.String()
}

func corpusInputs() ([]cpg.Source, map[string]string) {
	c, sources := kernelCorpus()
	headers := map[string]string{}
	for p, s := range c.Headers {
		headers[p] = s
	}
	return sources, headers
}

func runWithCache(t *testing.T, sources []cpg.Source, headers map[string]string, workers int, dir string) *core.Run {
	t.Helper()
	opt := core.Options{Workers: workers, Confirm: true}
	if dir != "" {
		c, err := analysiscache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		opt.Cache = c
	}
	run, err := core.Analyze(context.Background(), core.Request{
		Sources: sources, Headers: headers, Options: opt, Trace: obs.New("cache-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// TestCacheDeterminismMatrix is the PR's central guarantee: rendered reports
// are byte-identical across {workers 1, workers 8} × {no cache, cold cache,
// warm cache, one-file-invalidated cache}.
func TestCacheDeterminismMatrix(t *testing.T) {
	sources, headers := corpusInputs()

	base := renderRun(runWithCache(t, sources, headers, 1, ""))
	if !strings.Contains(base, "confirmed=true") {
		t.Fatal("baseline run produced no confirmed reports; corpus broken?")
	}

	for _, workers := range []int{1, 8} {
		if got := renderRun(runWithCache(t, sources, headers, workers, "")); got != base {
			t.Errorf("workers=%d no-cache differs from baseline", workers)
		}
		dir := t.TempDir()
		cold := runWithCache(t, sources, headers, workers, dir)
		if cold.Metric("cache.unit.hit") != 0 {
			t.Errorf("workers=%d: cold run claims a unit hit", workers)
		}
		if got := renderRun(cold); got != base {
			t.Errorf("workers=%d cold-cache differs from baseline", workers)
		}
		warm := runWithCache(t, sources, headers, workers, dir)
		if warm.Metric("cache.unit.hit") != 1 || warm.Metric("pipeline.files_skipped") != int64(len(sources)) {
			t.Errorf("workers=%d: warm run hit=%d skipped=%d, want a full unit hit over %d files",
				workers, warm.Metric("cache.unit.hit"), warm.Metric("pipeline.files_skipped"), len(sources))
		}
		if got := renderRun(warm); got != base {
			t.Errorf("workers=%d warm-cache differs from baseline", workers)
		}
	}
}

// TestCacheOneFileInvalidation edits a single source on a warm cache: only
// that file may re-preprocess, and the reports must match an uncached run
// over the edited corpus exactly.
func TestCacheOneFileInvalidation(t *testing.T) {
	sources, headers := corpusInputs()
	dir := t.TempDir()
	runWithCache(t, sources, headers, 8, dir) // populate

	edited := append([]cpg.Source(nil), sources...)
	edited[0] = cpg.Source{
		Path:    edited[0].Path,
		Content: edited[0].Content + "\nvoid cache_probe_added(void) { }\n",
	}

	want := renderRun(runWithCache(t, edited, headers, 1, ""))
	got := runWithCache(t, edited, headers, 8, dir)
	if got.Metric("cache.unit.hit") != 0 {
		t.Fatal("edited corpus must miss the unit cache")
	}
	if got.Metric("frontend.cache.miss") != 1 || got.Metric("frontend.cache.hit") != int64(len(sources)-1) {
		t.Errorf("front-end stats hit=%d miss=%d, want exactly 1 miss and %d hits",
			got.Metric("frontend.cache.hit"), got.Metric("frontend.cache.miss"), len(sources)-1)
	}
	if renderRun(got) != want {
		t.Error("partially-invalidated cached run differs from uncached run over the edited corpus")
	}

	// The edited corpus is now cached too; the original corpus entry must
	// still be intact (keys are content-addressed, not per-path slots).
	if again := runWithCache(t, sources, headers, 8, dir); again.Metric("cache.unit.hit") != 1 {
		t.Error("original corpus entry was clobbered by the edited run")
	}
}

// TestCacheCorruptionFallsBack truncates every cache entry on disk; the next
// run must silently fall back to full re-analysis with identical output.
func TestCacheCorruptionFallsBack(t *testing.T) {
	sources, headers := corpusInputs()
	base := renderRun(runWithCache(t, sources, headers, 1, ""))

	dir := t.TempDir()
	runWithCache(t, sources, headers, 8, dir) // populate
	n := 0
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		n++
		return os.WriteFile(path, data[:len(data)/3], 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("cache directory holds no entries after a cold run")
	}

	run := runWithCache(t, sources, headers, 8, dir)
	if run.Metric("cache.unit.hit") != 0 || run.Metric("frontend.cache.hit") != 0 {
		t.Errorf("corrupt cache produced hits: unit=%d frontend=%d",
			run.Metric("cache.unit.hit"), run.Metric("frontend.cache.hit"))
	}
	if run.Metric("cache.read.corrupt") == 0 {
		t.Error("corrupt entries were read but cache.read.corrupt is zero")
	}
	if renderRun(run) != base {
		t.Error("corrupt-cache run differs from baseline")
	}

	// The rewritten entries must be valid again.
	if again := runWithCache(t, sources, headers, 8, dir); again.Metric("cache.unit.hit") != 1 {
		t.Error("cache did not repair itself after corruption")
	}
}

// TestConcurrentAnalyzeSingleFlight: N concurrent identical requests against
// one shared cold cache must perform exactly one computation — the others
// either wait on the in-flight leader or hit the entry it just published —
// and every run must render byte-identically to the uncached baseline.
func TestConcurrentAnalyzeSingleFlight(t *testing.T) {
	sources, headers := corpusInputs()
	base := renderRun(runWithCache(t, sources, headers, 1, ""))

	cache, err := analysiscache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	runs := make([]*core.Run, n)
	errs := make([]error, n)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			runs[i], errs[i] = core.Analyze(context.Background(), core.Request{
				Sources: sources, Headers: headers,
				Options: core.Options{Workers: 2, Confirm: true, Cache: cache},
				Trace:   obs.New("cache-test"),
			})
		}(i)
	}
	close(start)
	wg.Wait()

	var leaders, served int64
	for i, run := range runs {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if got := renderRun(run); got != base {
			t.Errorf("concurrent run %d differs from baseline", i)
		}
		leaders += run.Metric("cache.singleflight.leader")
		served += run.Metric("cache.singleflight.wait") + run.Metric("cache.unit.hit")
	}
	if leaders != 1 {
		t.Errorf("concurrent identical requests performed %d computations, want exactly 1", leaders)
	}
	if served != n-1 {
		t.Errorf("%d runs were served from the leader's result, want %d", served, n-1)
	}
}

// TestCacheConfigFingerprint: two runs differing only in ConfigFP must not
// share unit-cache entries.
func TestCacheConfigFingerprint(t *testing.T) {
	sources, headers := corpusInputs()
	dir := t.TempDir()
	cache, err := analysiscache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	runFP := func(fp string) *core.Run {
		run, err := core.Analyze(context.Background(), core.Request{
			Sources: sources, Headers: headers,
			Options: core.Options{Workers: 8, Cache: cache, ConfigFP: fp},
			Trace:   obs.New("cache-test"),
		})
		if err != nil {
			t.Fatal(err)
		}
		return run
	}
	if a := runFP("cfg-a"); a.Metric("cache.unit.hit") != 0 {
		t.Fatal("first run cannot hit")
	}
	if b := runFP("cfg-b"); b.Metric("cache.unit.hit") != 0 {
		t.Error("different ConfigFP must not share unit entries")
	}
	if c := runFP("cfg-a"); c.Metric("cache.unit.hit") != 1 {
		t.Error("same ConfigFP must hit the warm entry")
	}
}
