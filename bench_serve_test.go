package repro

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/analysiscache"
	"repro/internal/serve"
)

// BenchmarkServeHTTP measures the refcheckd serving path end to end over a
// real HTTP round trip: JSON decode, admission, core.Analyze against the
// shared tiered cache, CLI-identical rendering, JSON encode. The warm row
// is the daemon's steady state — every request is an L1 unit hit — so its
// reqs/s metric is the serving-throughput headline tracked in
// BENCH_pipeline.json.
func BenchmarkServeHTTP(b *testing.B) {
	b.Run("warm", func(b *testing.B) {
		cache, err := analysiscache.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		srv := serve.New(serve.Config{Cache: cache})
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			srv.Close()
			cache.Close()
		}()
		payload, err := json.Marshal(serve.AnalyzeRequest{Demo: true})
		if err != nil {
			b.Fatal(err)
		}
		post := func() serve.AnalyzeResponse {
			resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", bytes.NewReader(payload))
			if err != nil {
				b.Fatal(err)
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				b.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d: %s", resp.StatusCode, body)
			}
			var out serve.AnalyzeResponse
			if err := json.Unmarshal(body, &out); err != nil {
				b.Fatal(err)
			}
			return out
		}

		baseline := post() // the one real computation; everything after is warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if out := post(); out.Output != baseline.Output {
				b.Fatal("warm served output drifted from the computed output")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reqs/s")
		b.ReportMetric(float64(len(baseline.Output)), "output_bytes")
	})
}
