// Package repro holds the benchmark harness: one benchmark per table and
// figure in the paper's evaluation, plus the ablations called out in
// DESIGN.md. Each benchmark runs the full pipeline for its experiment and
// reports the headline quantities via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates every row the paper reports
// (EXPERIMENTS.md records the paper-vs-measured comparison).
package repro

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysiscache"
	"repro/internal/apidb"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cpg"
	"repro/internal/cpp"
	"repro/internal/facts"
	"repro/internal/gitlog"
	"repro/internal/mine"
	"repro/internal/obs"
	"repro/internal/refsim"
	"repro/internal/study"
	"repro/internal/word2vec"
)

// benchAnalyze runs the pipeline with a trace attached (so cache benchmarks
// can read hit metrics), failing the benchmark on error.
func benchAnalyze(b *testing.B, sources []cpg.Source, headers map[string]string, opt core.Options) *core.Run {
	run, err := core.Analyze(context.Background(), core.Request{
		Sources: sources, Headers: headers, Options: opt, Trace: obs.New("bench"),
	})
	if err != nil {
		b.Fatal(err)
	}
	return run
}

// Shared fixtures: the benchmarked pipelines are deterministic, so heavyweight
// inputs are built once and reused across iterations; per-iteration work is
// the experiment computation itself.
var (
	histOnce sync.Once
	hist     *gitlog.History

	corpOnce    sync.Once
	corp        *corpus.Corpus
	corpSources []cpg.Source
)

func history() *gitlog.History {
	histOnce.Do(func() {
		hist = gitlog.Generate(corpus.Spec{Seed: 1, Background: 6000})
	})
	return hist
}

func kernelCorpus() (*corpus.Corpus, []cpg.Source) {
	corpOnce.Do(func() {
		corp = corpus.Generate(corpus.Spec{Seed: 1})
		for _, f := range corp.Files {
			corpSources = append(corpSources, cpg.Source{Path: f.Path, Content: f.Content})
		}
	})
	return corp, corpSources
}

func buildUnit() *cpg.Unit {
	return buildUnitWorkers(0)
}

func buildUnitWorkers(workers int) *cpg.Unit {
	c, sources := kernelCorpus()
	return (&cpg.Builder{Headers: cpp.NewIndexedFiles(c.Headers), Workers: workers}).Build(sources)
}

// BenchmarkFigure1GrowthTrend mines the history and computes the per-year
// growth trend (Figure 1). Paper shape: single digits in 2005 rising to
// >100/year in the 5.x era, 1,033 total.
func BenchmarkFigure1GrowthTrend(b *testing.B) {
	h := history()
	var last []study.YearCount
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mine.Mine(h, apidb.New())
		last = study.New(h, res).GrowthTrend()
	}
	b.ReportMetric(float64(last[len(last)-1].Cumulative), "total_bugs")
	b.ReportMetric(float64(last[0].Count), "bugs_2005")
	b.ReportMetric(float64(last[len(last)-2].Count), "bugs_2021")
}

// BenchmarkTable2Classification computes the Table 2 taxonomy shares. Paper:
// leak 71.7%, missing-dec 67.2%, intra 57.1%, UAD 9.1%.
func BenchmarkTable2Classification(b *testing.B) {
	h := history()
	var t2 study.Table2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mine.Mine(h, apidb.New())
		t2 = study.New(h, res).Classification()
	}
	b.ReportMetric(100*float64(t2.LeakCount)/float64(t2.Total), "leak_pct")
	b.ReportMetric(100*float64(t2.IntraDec)/float64(t2.Total), "intra_pct")
	b.ReportMetric(100*float64(t2.UADCount)/float64(t2.Total), "uad_pct")
}

// BenchmarkFigure2Distribution computes the subsystem distribution and bug
// density. Paper: drivers 588 bugs; block densest (18 bugs / 65 KLOC).
func BenchmarkFigure2Distribution(b *testing.B) {
	h := history()
	var dist []study.SubsystemStat
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mine.Mine(h, apidb.New())
		dist = study.New(h, res).Distribution()
	}
	var drivers, blockDensity float64
	for _, d := range dist {
		if d.Subsystem == "drivers" {
			drivers = float64(d.Bugs)
		}
		if d.Subsystem == "block" {
			blockDensity = d.Density
		}
	}
	b.ReportMetric(drivers, "drivers_bugs")
	b.ReportMetric(blockDensity*1000, "block_bugs_per_MLOC")
}

// BenchmarkFigure3Lifetimes computes the lifetime statistics. Paper: 567
// tagged, 75.7% >1yr, 19 >10yr, 23 full-span.
func BenchmarkFigure3Lifetimes(b *testing.B) {
	h := history()
	var lt study.LifetimeStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := mine.Mine(h, apidb.New())
		lt = study.New(h, res).Lifetimes()
	}
	b.ReportMetric(float64(lt.Tagged), "tagged")
	b.ReportMetric(100*float64(lt.OverOneYear)/float64(lt.Tagged), "over_1y_pct")
	b.ReportMetric(float64(lt.OverDecade), "over_10y")
	b.ReportMetric(float64(lt.FullSpan), "full_span")
}

// BenchmarkTable3Word2Vec trains the CBOW model on the commit corpus and
// measures the keyword similarities. Paper: find~get 0.73 is the peak;
// unhold bottoms out.
func BenchmarkTable3Word2Vec(b *testing.B) {
	h := history()
	var t3 study.Table3
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t3 = study.ComputeTable3(h, word2vec.Config{Dim: 32, Epochs: 2, Seed: 5})
	}
	b.ReportMetric(t3.At("get", "find"), "sim_find_get")
	b.ReportMetric(t3.At("put", "find"), "sim_find_put")
	b.ReportMetric(t3.At("get", "foreach"), "sim_foreach_get")
	b.ReportMetric(t3.At("unhold", "find"), "sim_find_unhold")
}

// BenchmarkTable4NewBugs runs the full §6 pipeline — corpus → CPG → nine
// checkers → dynamic confirmation — and reports the Table 4 totals. Paper:
// 351 new bugs (296/48/7 leak/UAF/NPD), 240 confirmed, 3 rejected, 5 FP.
func BenchmarkTable4NewBugs(b *testing.B) {
	c, _ := kernelCorpus()
	var tot study.Table4Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unit := buildUnit()
		reports := core.NewEngine().CheckUnit(unit)
		nb := study.EvaluateNewBugs(c, reports)
		tot = study.Total(nb.Table4())
	}
	b.ReportMetric(float64(tot.NewBugs), "new_bugs")
	b.ReportMetric(float64(tot.Leak), "leak")
	b.ReportMetric(float64(tot.UAF), "uaf")
	b.ReportMetric(float64(tot.NPD), "npd")
	b.ReportMetric(float64(tot.CFM), "confirmed")
	b.ReportMetric(float64(tot.PR), "rejected")
	b.ReportMetric(float64(tot.FP), "false_positives")
}

// BenchmarkTable5ModuleDetail reproduces the per-module detail. Paper spot
// checks: arch/arm 50 bugs with P4[42]; drivers/clk 37; drivers/mfd P1[1].
func BenchmarkTable5ModuleDetail(b *testing.B) {
	c, _ := kernelCorpus()
	var rows []study.Table5Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unit := buildUnit()
		reports := core.NewEngine().CheckUnit(unit)
		rows = study.EvaluateNewBugs(c, reports).Table5()
	}
	var arm, clk float64
	for _, r := range rows {
		if r.Subsystem == "arch" && r.Module == "arm" {
			arm = float64(r.Bugs)
		}
		if r.Subsystem == "drivers" && r.Module == "clk" {
			clk = float64(r.Bugs)
		}
	}
	b.ReportMetric(float64(len(rows)), "modules")
	b.ReportMetric(arm, "arch_arm_bugs")
	b.ReportMetric(clk, "drivers_clk_bugs")
}

// BenchmarkTable6ErrorProneAPIs verifies the Appendix A inventory against
// the knowledge base and measures how many inventory APIs actually caused
// detections in the corpus run.
func BenchmarkTable6ErrorProneAPIs(b *testing.B) {
	c, _ := kernelCorpus()
	var inventory, caused float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := apidb.New()
		listed := map[string]bool{}
		n := 0
		for _, row := range apidb.Table6() {
			for _, api := range row.APIs {
				n++
				listed[api] = true
				if db.Lookup(api) == nil && db.Loop(api) == nil {
					b.Fatalf("inventory API %s missing from knowledge base", api)
				}
			}
		}
		inventory = float64(n)
		hit := map[string]bool{}
		for _, pb := range c.Planned {
			if listed[pb.API] {
				hit[pb.API] = true
			}
		}
		caused = float64(len(hit))
	}
	b.ReportMetric(inventory, "inventory_apis")
	b.ReportMetric(caused, "apis_causing_bugs")
}

// BenchmarkAblationMiningStages compares keyword-only mining with the full
// two-level pipeline (paper: 1,825 candidates shrink to 1,033 confirmed
// bugs — keyword matching alone over-reports by ~77%).
func BenchmarkAblationMiningStages(b *testing.B) {
	h := history()
	var res *mine.Result
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = mine.Mine(h, apidb.New())
	}
	b.ReportMetric(float64(len(res.Candidates)), "stage1_keyword_only")
	b.ReportMetric(float64(len(res.Confirmed)), "stage2_impl_check")
	b.ReportMetric(float64(len(res.Dataset)), "final_dataset")
	b.ReportMetric(float64(len(res.RemovedWrongPatches)), "wrong_patches_removed")
}

// BenchmarkAblationSmartLoopRegistry removes the smartloop knowledge
// (registry + discovery results) after graph construction and measures the
// damage: P3 recall collapses and the loop-injected references start
// polluting the other checkers (this is why §6.1 builds a dedicated lexer
// parser for M_SL).
func BenchmarkAblationSmartLoopRegistry(b *testing.B) {
	c, _ := kernelCorpus()
	plannedP3 := 0
	for _, pb := range c.Planned {
		if pb.Pattern == "P3" {
			plannedP3++
		}
	}
	var withP3, withoutP3, extraWithout float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unit := buildUnit()
		full := core.NewEngine().CheckUnit(unit)
		n := 0
		for _, r := range full {
			if r.Pattern == core.P3 {
				n++
			}
		}
		withP3 = float64(n)

		for _, l := range unit.DB.Loops() {
			unit.DB.DeleteLoop(l.Name)
		}
		ablated := core.NewEngine().CheckUnit(unit)
		n = 0
		for _, r := range ablated {
			if r.Pattern == core.P3 {
				n++
			}
		}
		withoutP3 = float64(n)
		extraWithout = float64(len(ablated) - len(full))
	}
	b.ReportMetric(float64(plannedP3), "planned_p3")
	b.ReportMetric(withP3, "p3_with_registry")
	b.ReportMetric(withoutP3, "p3_without_registry")
	b.ReportMetric(extraWithout, "report_delta_without")
}

// BenchmarkAblationConfirmation measures what dynamic confirmation adds:
// with refsim, the pinned-UAD reports are separated from real UAFs; without
// it every report would count as confirmed.
func BenchmarkAblationConfirmation(b *testing.B) {
	c, _ := kernelCorpus()
	var confirmed, rejected, naive float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unit := buildUnit()
		reports := core.NewEngine().CheckUnit(unit)
		nb := study.EvaluateNewBugs(c, reports)
		tot := study.Total(nb.Table4())
		confirmed = float64(tot.CFM)
		rejected = float64(tot.PR)
		naive = float64(tot.NewBugs)
	}
	b.ReportMetric(naive, "naive_all_confirmed")
	b.ReportMetric(confirmed, "refsim_confirmed")
	b.ReportMetric(rejected, "refsim_rejected")
}

// BenchmarkCheckerPipeline measures the raw analysis throughput: source
// bytes through cpp → parse → CFG → CPG → nine checkers.
func BenchmarkCheckerPipeline(b *testing.B) {
	c, sources := kernelCorpus()
	bytes := 0
	for _, f := range c.Files {
		bytes += len(f.Content)
	}
	b.SetBytes(int64(bytes))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		unit := (&cpg.Builder{Headers: cpp.NewIndexedFiles(c.Headers)}).Build(sources)
		core.NewEngine().CheckUnit(unit)
	}
}

// BenchmarkPipelineParallel sweeps the Workers knob over the full pipeline —
// sharded preprocess+parse, CPG assembly, nine checkers, batched refsim
// confirmation — so the perf trajectory of the parallel path is tracked
// release over release (scripts/bench_pipeline.sh emits BENCH_pipeline.json
// from this benchmark). Output is byte-identical at every worker count; only
// wall time may differ.
func BenchmarkPipelineParallel(b *testing.B) {
	c, sources := kernelCorpus()
	bytes := 0
	for _, f := range c.Files {
		bytes += len(f.Content)
	}
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 2 && n != 4 {
		counts = append(counts, n)
	}
	headers := map[string]string{}
	for p, s := range c.Headers {
		headers[p] = s
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(bytes))
			b.ReportAllocs()
			var reports []core.Report
			for i := 0; i < b.N; i++ {
				run := benchAnalyze(b, sources, headers, core.Options{
					Workers: workers,
					Confirm: true,
				})
				reports = run.Reports
			}
			b.ReportMetric(float64(len(reports)), "reports")
			b.ReportMetric(float64(workers), "workers")
		})
	}
}

// BenchmarkPipelineLarge runs the uncached pipeline over a Scale-6 corpus
// (~1800 files, ~50 KLOC — the same shape `refgen -scale` emits, just small
// enough for a benchmark loop) and reports peak_heap_mb, the maximum heap
// in use sampled during the run. This is the number the streaming front end
// bounds: tokens are released per translation unit as ASTs replace them, so
// peak memory tracks per-TU working set plus ASTs, not whole-corpus token
// streams. BENCH_pipeline.json records it so a regression back to
// whole-corpus retention is loud.
func BenchmarkPipelineLarge(b *testing.B) {
	c := corpus.Generate(corpus.Spec{Seed: 1, Scale: 6})
	sources := make([]cpg.Source, len(c.Files))
	bytes := 0
	for i, f := range c.Files {
		sources[i] = cpg.Source{Path: f.Path, Content: f.Content}
		bytes += len(f.Content)
	}
	headers := map[string]string{}
	for p, s := range c.Headers {
		headers[p] = s
	}

	// Peak-heap sampler: poll HeapInuse while the pipeline runs. Sampling
	// (vs a single post-run read) catches the mid-run maximum, which is the
	// quantity streaming is supposed to bound.
	var peak atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			runtime.ReadMemStats(&ms)
			for {
				cur := peak.Load()
				if ms.HeapInuse <= cur || peak.CompareAndSwap(cur, ms.HeapInuse) {
					break
				}
			}
		}
	}()

	b.SetBytes(int64(bytes))
	b.ReportAllocs()
	b.ResetTimer()
	var reports []core.Report
	for i := 0; i < b.N; i++ {
		run := benchAnalyze(b, sources, headers, core.Options{Confirm: true})
		reports = run.Reports
	}
	b.StopTimer()
	close(stop)
	wg.Wait()
	b.ReportMetric(float64(peak.Load())/(1<<20), "peak_heap_mb")
	b.ReportMetric(float64(len(reports)), "reports")
	b.ReportMetric(float64(len(sources)), "files")
}

// BenchmarkPipelineCache measures the tiered analysis cache end to end:
// "cold" runs the full pipeline into a fresh cache directory every iteration
// (the write-through overhead, now batched into per-shard pack files);
// "warm" reopens a populated directory with a fresh handle every iteration
// (the disk tier — pack index load plus entry decode, with a cold L1);
// "l1-warm" re-runs on one long-lived handle (the in-memory tier — decoded
// entries served straight from L1, no disk I/O and no decode); and
// "concurrent-dedup" issues four identical requests at once against a cold
// cache (single-flight: one computation, three runs served from the
// leader's result). All report the unit-cache hit rate so
// BENCH_pipeline.json tracks it across PRs.
func BenchmarkPipelineCache(b *testing.B) {
	c, sources := kernelCorpus()
	bytes := 0
	for _, f := range c.Files {
		bytes += len(f.Content)
	}
	headers := map[string]string{}
	for p, s := range c.Headers {
		headers[p] = s
	}

	b.Run("cold", func(b *testing.B) {
		b.SetBytes(int64(bytes))
		b.ReportAllocs()
		hits := 0
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "bench-cache-")
			if err != nil {
				b.Fatal(err)
			}
			cache, err := analysiscache.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			run := benchAnalyze(b, sources, headers, core.Options{Cache: cache, Confirm: true})
			b.StopTimer()
			if run.Metric("cache.unit.hit") > 0 {
				hits++
			}
			os.RemoveAll(dir)
			b.StartTimer()
		}
		b.ReportMetric(float64(hits)/float64(b.N), "unit_hit_rate")
	})

	b.Run("warm", func(b *testing.B) {
		dir, err := os.MkdirTemp("", "bench-cache-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		populate, err := analysiscache.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		benchAnalyze(b, sources, headers, core.Options{Cache: populate, Confirm: true})
		b.SetBytes(int64(bytes))
		b.ReportAllocs()
		b.ResetTimer()
		hits := 0
		var reports []core.Report
		for i := 0; i < b.N; i++ {
			// A fresh handle per iteration keeps this row honest about the
			// disk tier: the pack index is re-read and the entry re-decoded
			// every time, with an empty L1.
			b.StopTimer()
			cache, err := analysiscache.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			run := benchAnalyze(b, sources, headers, core.Options{Cache: cache, Confirm: true})
			if run.Metric("cache.unit.hit") > 0 {
				hits++
			}
			reports = run.Reports
		}
		b.ReportMetric(float64(hits)/float64(b.N), "unit_hit_rate")
		b.ReportMetric(float64(len(reports)), "reports")
	})

	b.Run("l1-warm", func(b *testing.B) {
		dir, err := os.MkdirTemp("", "bench-cache-")
		if err != nil {
			b.Fatal(err)
		}
		defer os.RemoveAll(dir)
		cache, err := analysiscache.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		benchAnalyze(b, sources, headers, core.Options{Cache: cache, Confirm: true}) // populate both tiers
		b.SetBytes(int64(bytes))
		b.ReportAllocs()
		b.ResetTimer()
		hits := 0
		var reports []core.Report
		for i := 0; i < b.N; i++ {
			run := benchAnalyze(b, sources, headers, core.Options{Cache: cache, Confirm: true})
			if run.Metric("cache.unit.hit") > 0 {
				hits++
			}
			reports = run.Reports
		}
		b.ReportMetric(float64(hits)/float64(b.N), "unit_hit_rate")
		b.ReportMetric(float64(len(reports)), "reports")
	})

	b.Run("concurrent-dedup", func(b *testing.B) {
		const callers = 4
		b.SetBytes(int64(bytes))
		b.ReportAllocs()
		leaders := int64(0)
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			dir, err := os.MkdirTemp("", "bench-cache-")
			if err != nil {
				b.Fatal(err)
			}
			cache, err := analysiscache.Open(dir)
			if err != nil {
				b.Fatal(err)
			}
			runs := make([]*core.Run, callers)
			start := make(chan struct{})
			var wg sync.WaitGroup
			b.StartTimer()
			for j := 0; j < callers; j++ {
				wg.Add(1)
				go func(j int) {
					defer wg.Done()
					<-start
					runs[j] = benchAnalyze(b, sources, headers, core.Options{Cache: cache, Confirm: true})
				}(j)
			}
			close(start)
			wg.Wait()
			b.StopTimer()
			for _, run := range runs {
				leaders += run.Metric("cache.singleflight.leader")
			}
			os.RemoveAll(dir)
			b.StartTimer()
		}
		b.ReportMetric(float64(leaders)/float64(b.N), "computes_per_4_reqs")
	})
}

// BenchmarkPipelineObs measures the observability tax on the full pipeline:
// "off" runs untraced (obs.Nop(); every span/counter call is a nil-receiver
// no-op), "on" runs with a live trace recording every span and counter in
// the catalog. The PR-5 budget is <5% overhead for "off" relative to the
// pre-obs pipeline and the on/off gap stays small because span creation is
// per-TU/per-function, not per-token. scripts/bench_pipeline.sh records both
// in BENCH_pipeline.json so the tax is tracked release over release.
func BenchmarkPipelineObs(b *testing.B) {
	c, sources := kernelCorpus()
	bytes := 0
	for _, f := range c.Files {
		bytes += len(f.Content)
	}
	headers := map[string]string{}
	for p, s := range c.Headers {
		headers[p] = s
	}
	opt := core.Options{Confirm: true}

	run := func(b *testing.B, tr func() *obs.Trace) {
		b.SetBytes(int64(bytes))
		b.ReportAllocs()
		var reports []core.Report
		for i := 0; i < b.N; i++ {
			r, err := core.Analyze(context.Background(), core.Request{
				Sources: sources, Headers: headers, Options: opt, Trace: tr(),
			})
			if err != nil {
				b.Fatal(err)
			}
			reports = r.Reports
		}
		b.ReportMetric(float64(len(reports)), "reports")
	}

	b.Run("off", func(b *testing.B) { run(b, obs.Nop) })
	b.Run("on", func(b *testing.B) { run(b, func() *obs.Trace { return obs.New("bench") }) })
}

// BenchmarkCheckerPhase isolates the checking phase from the front end on a
// prebuilt unit, in the two states the facts layer creates: "facts-cold"
// computes every function's facts and runs the nine pattern queries
// (CheckUnit on a fresh UnitFacts each iteration); "facts-warm" reuses a
// fully memoized UnitFacts, so each iteration is the pattern queries alone —
// the work a -checkers run pays after a facts-cache hit. The gap between the
// two is the cost the shared facts layer computes exactly once.
// scripts/bench_pipeline.sh records both in BENCH_pipeline.json as the
// checker-phase timing.
func BenchmarkCheckerPhase(b *testing.B) {
	unit := buildUnit()

	b.Run("facts-cold", func(b *testing.B) {
		b.ReportAllocs()
		var reports []core.Report
		for i := 0; i < b.N; i++ {
			reports = core.NewEngine().CheckUnit(unit)
		}
		b.ReportMetric(float64(len(reports)), "reports")
	})

	b.Run("facts-warm", func(b *testing.B) {
		uf := facts.NewUnit(unit)
		core.NewEngine().CheckUnitFacts(uf) // memoize every function's facts
		b.ReportAllocs()
		b.ResetTimer()
		var reports []core.Report
		for i := 0; i < b.N; i++ {
			reports = core.NewEngine().CheckUnitFacts(uf)
		}
		b.ReportMetric(float64(len(reports)), "reports")
	})
}

// BenchmarkRefsimReplay measures the dynamic oracle in isolation.
func BenchmarkRefsimReplay(b *testing.B) {
	c, _ := kernelCorpus()
	unit := buildUnit()
	reports := core.NewEngine().CheckUnit(unit)
	_ = c
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range reports {
			refsim.Replay(r.Witness, refsim.Claim{Impact: r.Impact.String(), Object: r.Object})
		}
	}
	b.ReportMetric(float64(len(reports)), "replays_per_op")
}

// BenchmarkCheckerScaling sweeps the corpus size (clean functions per
// module) and reports throughput, showing how analysis cost scales with the
// amount of non-buggy code around the same bug population.
func BenchmarkCheckerScaling(b *testing.B) {
	for _, clean := range []int{2, 8, 16} {
		c := corpus.Generate(corpus.Spec{Seed: 1, CleanPerModule: clean})
		var sources []cpg.Source
		bytes := 0
		for _, f := range c.Files {
			sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
			bytes += len(f.Content)
		}
		b.Run(fmt.Sprintf("clean=%d", clean), func(b *testing.B) {
			b.SetBytes(int64(bytes))
			var n int
			for i := 0; i < b.N; i++ {
				unit := (&cpg.Builder{Headers: cpp.NewIndexedFiles(c.Headers)}).Build(sources)
				n = len(core.NewEngine().CheckUnit(unit))
			}
			b.ReportMetric(c.KLOC(), "kloc")
			b.ReportMetric(float64(n), "reports")
		})
	}
}

// BenchmarkWord2VecScaling sweeps the training-corpus size, showing how the
// Table 3 signal strengthens (and costs grow) with more commit text.
func BenchmarkWord2VecScaling(b *testing.B) {
	for _, bg := range []int{1000, 4000} {
		h := gitlog.Generate(corpus.Spec{Seed: 1, Background: bg})
		b.Run(fmt.Sprintf("background=%d", bg), func(b *testing.B) {
			var t3 study.Table3
			for i := 0; i < b.N; i++ {
				t3 = study.ComputeTable3(h, word2vec.Config{Dim: 32, Epochs: 2, Seed: 5})
			}
			b.ReportMetric(t3.At("get", "find"), "sim_find_get")
			b.ReportMetric(float64(t3.Model.VocabSize()), "vocab")
		})
	}
}
