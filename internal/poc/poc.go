// Package poc generates proof-of-concept harnesses for use-after-decrease
// reports.
//
// §5.4.3 and §6.4 of the paper single out PoC generation for UAD bugs as an
// open research direction: developers reject UAD patches when they believe
// another reference pins the object ("only not read correctly"), and only a
// crashing PoC settles the argument. This package renders, for a P8 report:
//
//   - a C harness that drives the buggy function with an object whose
//     refcount is exactly one — the state in which the decrement frees the
//     object and the subsequent access is a use-after-free; and
//   - the simulated execution transcript from the refsim oracle, showing
//     the step at which the count hits zero and the access that follows.
//
// When the oracle cannot make the bug manifest (the pinned case), Generate
// says so instead of emitting a misleading harness — mirroring the
// developer-reject outcome.
package poc

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/refsim"
	"repro/internal/semantics"
)

// PoC is a generated proof of concept.
type PoC struct {
	Report     core.Report
	OK         bool
	Reason     string   // when !OK
	Harness    string   // C source of the driver
	Transcript []string // simulated execution log
}

// Generate builds a PoC for a use-after-decrease (P8) report.
func Generate(r core.Report) PoC {
	if r.Pattern != core.P8 {
		return PoC{Report: r, Reason: fmt.Sprintf("PoC generation targets P8 (use-after-decrease); got %s", r.Pattern)}
	}
	verdict, transcript := refsim.ReplayTrace(r.Witness, refsim.Claim{
		Impact: r.Impact.String(), Object: r.Object,
	})
	if !verdict.Confirmed {
		return PoC{
			Report: r, Transcript: transcript,
			Reason: "the object is pinned by another reference on this path; a PoC would not crash (developer-reject case)",
		}
	}
	return PoC{
		Report: r, OK: true,
		Harness:    renderHarness(r),
		Transcript: transcript,
	}
}

// renderHarness emits a C driver that calls the buggy function with a
// last-reference object.
func renderHarness(r core.Report) string {
	obj := semantics.BaseOf(r.Object)
	typ := harnessType(r)
	var b strings.Builder
	fmt.Fprintf(&b, "/*\n")
	fmt.Fprintf(&b, " * PoC: use-after-decrease in %s (%s)\n", r.Function, r.Pos)
	fmt.Fprintf(&b, " * %s\n", r.Message)
	fmt.Fprintf(&b, " *\n")
	fmt.Fprintf(&b, " * Precondition: %s holds the LAST reference when %s runs.\n", obj, r.Function)
	fmt.Fprintf(&b, " * %s drops it via %s and then touches the freed object;\n", r.Function, r.API)
	fmt.Fprintf(&b, " * run under KASAN to observe the use-after-free.\n")
	fmt.Fprintf(&b, " */\n")
	fmt.Fprintf(&b, "static int poc_%s(void)\n{\n", r.Function)
	fmt.Fprintf(&b, "\t%s%s = alloc_counted_object(); /* refcount = 1 */\n", typ, obj)
	fmt.Fprintf(&b, "\n\t/* Drain every other reference so the callee's %s\n", r.API)
	fmt.Fprintf(&b, "\t * is the final decrement. */\n")
	fmt.Fprintf(&b, "\tdrain_secondary_references(%s);\n\n", obj)
	fmt.Fprintf(&b, "\t%s(%s); /* frees %s, then dereferences it */\n", r.Function, obj, obj)
	fmt.Fprintf(&b, "\treturn 0; /* unreachable under KASAN: the access above faults */\n")
	fmt.Fprintf(&b, "}\n")
	return b.String()
}

// harnessType guesses a plausible C declaration for the object from the
// decrement API family.
func harnessType(r core.Report) string {
	switch {
	case strings.Contains(r.API, "sock"):
		return "struct sock *"
	case strings.Contains(r.API, "usb_serial"):
		return "struct usb_serial *"
	case strings.Contains(r.API, "nvmet"):
		return "struct nvmet_fc_tgt_queue *"
	case strings.Contains(r.API, "of_node"):
		return "struct device_node *"
	default:
		return "struct kref_object *"
	}
}
