package poc

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpg"
)

func reportFor(t *testing.T, src string, pattern core.Pattern) core.Report {
	t.Helper()
	run, err := core.Analyze(context.Background(), core.Request{
		Sources: []cpg.Source{{Path: "p.c", Content: src}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range run.Reports {
		if r.Pattern == pattern {
			return r
		}
	}
	t.Fatalf("no %s report", pattern)
	return core.Report{}
}

func TestGenerateUADPoC(t *testing.T) {
	r := reportFor(t, `
void ping_unhash(struct sock *sk)
{
	sock_put(sk);
	sk->inet_num = 0;
}`, core.P8)
	p := Generate(r)
	if !p.OK {
		t.Fatalf("PoC not generated: %s", p.Reason)
	}
	for _, want := range []string{
		"use-after-decrease in ping_unhash",
		"struct sock *sk = alloc_counted_object(); /* refcount = 1 */",
		"ping_unhash(sk);",
		"KASAN",
	} {
		if !strings.Contains(p.Harness, want) {
			t.Errorf("harness missing %q:\n%s", want, p.Harness)
		}
	}
	// Transcript shows the free and the faulting access.
	joined := strings.Join(p.Transcript, "\n")
	if !strings.Contains(joined, "OBJECT FREED") {
		t.Errorf("transcript missing free step:\n%s", joined)
	}
	if !strings.Contains(joined, "USE-AFTER-FREE") {
		t.Errorf("transcript missing faulting access:\n%s", joined)
	}
}

func TestPinnedUADRefusesPoC(t *testing.T) {
	r := reportFor(t, `
void ping_unhash(struct sock *sk)
{
	sock_hold(sk);
	sock_put(sk);
	sk->inet_num = 0;
}`, core.P8)
	p := Generate(r)
	if p.OK {
		t.Fatalf("pinned case produced a harness:\n%s", p.Harness)
	}
	if !strings.Contains(p.Reason, "pinned") {
		t.Errorf("reason = %q", p.Reason)
	}
	if len(p.Transcript) == 0 {
		t.Error("transcript missing for the pinned case")
	}
}

func TestNonP8Rejected(t *testing.T) {
	r := reportFor(t, `
static void poke(void)
{
	of_find_node_by_path("/soc");
}`, core.P4)
	p := Generate(r)
	if p.OK {
		t.Fatal("P4 should not produce a UAD PoC")
	}
}

func TestHarnessTypes(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`void f(struct usb_serial *serial)
{
	usb_serial_put(serial);
	mutex_unlock(&serial->disc_mutex);
}`, "struct usb_serial *"},
		{`void f(struct sock *sk)
{
	sock_put(sk);
	sk->x = 0;
}`, "struct sock *"},
	}
	for _, c := range cases {
		r := reportFor(t, c.src, core.P8)
		p := Generate(r)
		if !p.OK || !strings.Contains(p.Harness, c.want) {
			t.Errorf("want type %q in harness:\n%s", c.want, p.Harness)
		}
	}
}
