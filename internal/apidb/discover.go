package apidb

import (
	"repro/internal/cast"
	"repro/internal/cpp"
)

// counterFieldTypes are the base types whose presence makes a structure
// refcounted.
var counterFieldTypes = map[string]bool{
	"refcount_t": true, "atomic_t": true, "kref": true, "kobject": true,
}

// NestingThreshold bounds how deep struct containment is followed when
// classifying refcounted structures (§6.1: "the structure parser relies on a
// threshold to control the parsing levels as a refcounted object can be used
// in another structures, which can be nested defined").
const NestingThreshold = 3

// The Discover* entry points below are AST-facing conveniences: they extract
// per-file observations (ObserveFile) and replay them through the same
// deterministic apply stages the distributed exchange uses, so a whole-corpus
// in-process scan and a shard-merged scan produce identical databases by
// construction. See observe.go for the observation schema and the apply
// stages themselves.

// DiscoverStructs scans struct declarations and registers refcounted
// structures: those containing a counter field directly, or containing an
// already-refcounted struct within NestingThreshold levels. It returns the
// names it added, sorted.
func (db *DB) DiscoverStructs(files []*cast.File) []string {
	return db.applyStructs(observeDecls(files))
}

// DiscoverAPIs scans function definitions and registers wrappers around
// known refcounting APIs: a function that (transitively, one level) calls a
// known inc or dec API on one of its parameters, or on a field of a
// parameter, is itself a refcounting API of the same direction. This is the
// confirmation step behind the paper's second-level patch filter and the
// "checking if the functions containing the structure instances and
// operating the refcounters" lexer parser. Returns the names added, in scan
// order.
func (db *DB) DiscoverAPIs(files []*cast.File) []string {
	return db.applyAPIs(observeDecls(files))
}

// DiscoverLoops registers smartloops from a preprocessor macro table: a
// function-like loop macro whose body calls a known embedded (returns-ref)
// API becomes a SmartLoop; the iteration variable is the macro parameter
// assigned in the loop header. Returns the names added, sorted.
func (db *DB) DiscoverLoops(macros map[string]*cpp.Macro) []string {
	return db.applyLoops(ObserveMacros(macros))
}

// observeDecls extracts declaration observations (structs and functions)
// from parsed files, preserving file order. Macro tables are handled
// separately by DiscoverLoops, so they are not observed here.
func observeDecls(files []*cast.File) []FileObs {
	out := make([]FileObs, 0, len(files))
	for _, f := range files {
		if f == nil {
			continue
		}
		out = append(out, ObserveFile(f.Name, f, nil))
	}
	return out
}

func isCounterField(name string) bool {
	switch name {
	case "refcount", "refcnt", "ref", "count", "usage", "users", "kref":
		return true
	}
	return false
}

// returnsNullOnSomePath reports whether any return statement yields NULL/0
// for a pointer-returning function.
func returnsNullOnSomePath(fd *cast.FuncDef) bool {
	var sawNull bool
	cast.Walk(fd.Body, func(n cast.Node) bool {
		if r, ok := n.(*cast.ReturnStmt); ok && r.Value != nil {
			switch v := r.Value.(type) {
			case *cast.Lit:
				if v.Text == "0" {
					sawNull = true
				}
			case *cast.Ident:
				if v.Name == "NULL" {
					sawNull = true
				}
			}
		}
		return true
	})
	return sawNull
}

// inferPairs links newly discovered APIs with opposite-direction entries on
// the same struct when the match is unambiguous.
func (db *DB) inferPairs(names []string) {
	for _, n := range names {
		a := db.apis[n]
		if a.Pair != "" || a.Struct == "" {
			continue
		}
		var match *API
		count := 0
		for _, b := range db.apis {
			if b.Struct == a.Struct && b.Op != a.Op && b.Op != OpNone {
				match = b
				count++
			}
		}
		if count == 1 {
			a.Pair = match.Name
			if match.Pair == "" {
				match.Pair = a.Name
			}
		}
	}
}
