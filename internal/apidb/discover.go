package apidb

import (
	"sort"

	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/cpp"
)

// counterFieldTypes are the base types whose presence makes a structure
// refcounted.
var counterFieldTypes = map[string]bool{
	"refcount_t": true, "atomic_t": true, "kref": true, "kobject": true,
}

// NestingThreshold bounds how deep struct containment is followed when
// classifying refcounted structures (§6.1: "the structure parser relies on a
// threshold to control the parsing levels as a refcounted object can be used
// in another structures, which can be nested defined").
const NestingThreshold = 3

// DiscoverStructs scans struct declarations and registers refcounted
// structures: those containing a counter field directly, or containing an
// already-refcounted struct within NestingThreshold levels. It returns the
// names it added.
func (db *DB) DiscoverStructs(files []*cast.File) []string {
	decls := map[string]*cast.StructDecl{}
	for _, f := range files {
		for _, d := range f.Decls {
			if sd, ok := d.(*cast.StructDecl); ok && sd.Name != "" {
				decls[sd.Name] = sd
			}
		}
	}
	// Depth is computed against the pre-call seed set so results do not
	// depend on map iteration order.
	seeded := make(map[string]bool, len(db.refStructs))
	for k := range db.refStructs {
		seeded[k] = true
	}
	const inf = NestingThreshold + 100
	var depthOf func(name string, seen map[string]bool) int
	depthOf = func(name string, seen map[string]bool) int {
		if seeded[name] || counterFieldTypes[name] {
			return 0
		}
		if seen[name] {
			return inf
		}
		seen[name] = true
		defer delete(seen, name)
		sd := decls[name]
		if sd == nil {
			return inf
		}
		best := inf
		for _, fld := range sd.Fields {
			if counterFieldTypes[fld.Type.Base] {
				return 0
			}
			if inner := fld.Type.StructName(); inner != "" {
				if d := depthOf(inner, seen) + 1; d < best {
					best = d
				}
			}
		}
		return best
	}
	var added []string
	for name := range decls {
		if db.refStructs[name] {
			continue
		}
		if depthOf(name, map[string]bool{}) <= NestingThreshold {
			db.refStructs[name] = true
			added = append(added, name)
		}
	}
	sort.Strings(added)
	return added
}

// DiscoverAPIs scans function definitions and registers wrappers around
// known refcounting APIs: a function that (transitively, one level) calls a
// known inc or dec API on one of its parameters, or on a field of a
// parameter, is itself a refcounting API of the same direction. This is the
// confirmation step behind the paper's second-level patch filter and the
// "checking if the functions containing the structure instances and
// operating the refcounters" lexer parser. Returns the names added.
func (db *DB) DiscoverAPIs(files []*cast.File) []string {
	var added []string
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*cast.FuncDef)
			if !ok || fd.Body == nil {
				continue
			}
			if db.apis[fd.Name] != nil {
				continue
			}
			op, objArg, inner := db.classifyWrapper(fd)
			if op == OpNone {
				continue
			}
			a := &API{
				Name: fd.Name, Op: op, Class: Specific, ObjArg: objArg,
				Discovered: true, MayFree: op == OpDec,
			}
			if inner != nil {
				a.Struct = inner.Struct
			}
			// Returns-ref detection: inc API returning a pointer.
			if op == OpInc && fd.Ret.IsPointer() {
				a.ReturnsRef = true
				a.ObjArg = -1
				a.Class = Embedded
				a.MayReturnNull = returnsNullOnSomePath(fd)
			}
			db.apis[fd.Name] = a
			added = append(added, fd.Name)
		}
	}
	// Second pass: fill in pairs by struct + opposite op where unambiguous.
	db.inferPairs(added)
	return added
}

// classifyWrapper reports whether fd wraps a known refcounting API, the
// parameter index it forwards (or -1), and the wrapped entry.
func (db *DB) classifyWrapper(fd *cast.FuncDef) (Op, int, *API) {
	paramIdx := map[string]int{}
	for i, p := range fd.Params {
		paramIdx[p.Name] = i
	}
	// A true wrapper moves the counter in one net direction; functions that
	// both take and drop a reference on the same parameter are *users* of
	// the API, not refcounting APIs themselves.
	var incs, decs int
	objArg := -1
	var inner *API
	var op Op
	for _, call := range cast.Calls(fd.Body) {
		a := db.apis[call.Callee()]
		if a == nil || a.Op == OpNone {
			continue
		}
		// Which argument does the wrapped call receive?
		argPos := a.ObjArg
		if argPos < 0 || argPos >= len(call.Args) {
			argPos = 0
		}
		if argPos >= len(call.Args) {
			continue
		}
		base := cast.BaseIdent(call.Args[argPos])
		if base == nil {
			continue
		}
		idx, isParam := paramIdx[base.Name]
		if !isParam {
			continue
		}
		switch a.Op {
		case OpInc:
			incs++
		case OpDec:
			decs++
		}
		op = a.Op
		objArg = idx
		inner = a
	}
	if incs > 0 && decs > 0 {
		return OpNone, -1, nil // balanced: a user, not a wrapper
	}
	if op != OpNone {
		return op, objArg, inner
	}
	objArg = -1
	// Direct counter manipulation: ++/-- or +=/-= on a member chain ending
	// in a counter-ish field of a parameter.
	var found Op
	cast.Walk(fd.Body, func(n cast.Node) bool {
		u, ok := n.(*cast.UnaryExpr)
		if !ok || (u.Op != clex.Inc && u.Op != clex.Dec) {
			return true
		}
		m, ok := u.X.(*cast.MemberExpr)
		if !ok || !isCounterField(m.Name) {
			return true
		}
		base := cast.BaseIdent(m)
		if base == nil {
			return true
		}
		if idx, isParam := paramIdx[base.Name]; isParam {
			if u.Op == clex.Inc {
				found = OpInc
			} else {
				found = OpDec
			}
			objArg = idx
		}
		return true
	})
	return found, objArg, nil
}

func isCounterField(name string) bool {
	switch name {
	case "refcount", "refcnt", "ref", "count", "usage", "users", "kref":
		return true
	}
	return false
}

// returnsNullOnSomePath reports whether any return statement yields NULL/0
// for a pointer-returning function.
func returnsNullOnSomePath(fd *cast.FuncDef) bool {
	var sawNull bool
	cast.Walk(fd.Body, func(n cast.Node) bool {
		if r, ok := n.(*cast.ReturnStmt); ok && r.Value != nil {
			switch v := r.Value.(type) {
			case *cast.Lit:
				if v.Text == "0" {
					sawNull = true
				}
			case *cast.Ident:
				if v.Name == "NULL" {
					sawNull = true
				}
			}
		}
		return true
	})
	return sawNull
}

// inferPairs links newly discovered APIs with opposite-direction entries on
// the same struct when the match is unambiguous.
func (db *DB) inferPairs(names []string) {
	for _, n := range names {
		a := db.apis[n]
		if a.Pair != "" || a.Struct == "" {
			continue
		}
		var match *API
		count := 0
		for _, b := range db.apis {
			if b.Struct == a.Struct && b.Op != a.Op && b.Op != OpNone {
				match = b
				count++
			}
		}
		if count == 1 {
			a.Pair = match.Name
			if match.Pair == "" {
				match.Pair = a.Name
			}
		}
	}
}

// DiscoverLoops registers smartloops from a preprocessor macro table: a
// function-like loop macro whose body calls a known embedded (returns-ref)
// API becomes a SmartLoop; the iteration variable is the macro parameter
// assigned in the loop header. Returns the names added.
func (db *DB) DiscoverLoops(macros map[string]*cpp.Macro) []string {
	var added []string
	for name, m := range macros {
		if db.loops[name] != nil || !m.FuncLike || !m.IsLoopMacro() {
			continue
		}
		paramIdx := map[string]int{}
		for i, p := range m.Params {
			paramIdx[p] = i
		}
		var embedded *API
		iterArg := -1
		for i, t := range m.Body {
			if t.Kind != clex.Ident {
				continue
			}
			if a := db.apis[t.Text]; a != nil && a.Op == OpInc && a.ReturnsRef {
				embedded = a
			}
			// `param =` inside the body marks the loop variable.
			if idx, ok := paramIdx[t.Text]; ok && i+1 < len(m.Body) && m.Body[i+1].Kind == clex.Assign {
				if iterArg == -1 {
					iterArg = idx
				}
			}
		}
		if embedded == nil || iterArg == -1 {
			continue
		}
		l := &SmartLoop{
			Name: name, IterArg: iterArg, PutAPI: embedded.Pair,
			EmbeddedAPI: embedded.Name, Discovered: true,
		}
		db.loops[name] = l
		added = append(added, name)
	}
	return added
}
