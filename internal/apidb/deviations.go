package apidb

import (
	"sort"
	"strings"

	"repro/internal/cast"
)

// DiscoverDeviations implements the proactive deviation detection the paper
// calls for in §5.1.3 ("Another way is to proactively detect such
// deviations, as an important future work"): it analyzes the *implementation*
// of increment APIs and flags the two deviation classes behind anti-patterns
// P1 and P2.
//
//   - IncOnError (the pm_runtime_get_sync shape, Listing 3): the function
//     increments a counter unconditionally but can still return an error
//     code, so callers must put even on failure.
//   - MayReturnNull (the mdesc_grab shape): the function returns the counted
//     pointer, and some path returns NULL.
//
// It returns the names of APIs whose entries were annotated.
func (db *DB) DiscoverDeviations(files []*cast.File) []string {
	fns := map[string]*cast.FuncDef{}
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*cast.FuncDef); ok && fd.Body != nil {
				fns[fd.Name] = fd
			}
		}
	}
	var annotated []string
	for name, fd := range fns {
		a := db.apis[name]
		if a == nil || a.Op != OpInc {
			continue
		}
		changed := false
		if !a.IncOnError && incrementsButReturnsError(db, fd, fns) {
			a.IncOnError = true
			changed = true
		}
		if !a.MayReturnNull && a.ReturnsRef && returnsNullOnSomePath(fd) {
			a.MayReturnNull = true
			changed = true
		}
		if changed {
			annotated = append(annotated, name)
		}
	}
	sort.Strings(annotated)
	return annotated
}

// incrementsButReturnsError reports the Listing 3 deviation: the body (or a
// one-level callee, matching pm_runtime_get_sync wrapping
// __pm_runtime_suspend) performs an unconditional-looking increment and also
// returns a non-zero error value.
func incrementsButReturnsError(db *DB, fd *cast.FuncDef, fns map[string]*cast.FuncDef) bool {
	if returnsErrorCode(fd) && bodyIncrements(db, fd.Body) {
		return true
	}
	// One-level inlining: `return __helper(...)` where the helper both
	// increments and returns an error code (pm_runtime_get_sync wrapping
	// __pm_runtime_suspend in Listing 3).
	found := false
	cast.Walk(fd.Body, func(n cast.Node) bool {
		r, ok := n.(*cast.ReturnStmt)
		if !ok || r.Value == nil {
			return true
		}
		call, ok := r.Value.(*cast.CallExpr)
		if !ok {
			return true
		}
		callee := fns[call.Callee()]
		if callee == nil || callee.Body == nil {
			return true
		}
		if bodyIncrements(db, callee.Body) && returnsErrorCode(callee) {
			found = true
		}
		return true
	})
	return found
}

// bodyIncrements reports whether the body calls a known increment API or
// bumps a counter field directly.
func bodyIncrements(db *DB, body *cast.CompoundStmt) bool {
	found := false
	cast.Walk(body, func(n cast.Node) bool {
		switch v := n.(type) {
		case *cast.CallExpr:
			if a := db.apis[v.Callee()]; a != nil && a.Op == OpInc {
				found = true
			}
			if v.Callee() == "atomic_inc" {
				found = true
			}
		case *cast.UnaryExpr:
			if m, ok := v.X.(*cast.MemberExpr); ok && isCounterField(m.Name) &&
				v.Op.String() == "++" {
				found = true
			}
		}
		return true
	})
	return found
}

// returnsErrorCode reports whether the function has an int-ish return type
// and some return of a negative constant or an error-named variable.
func returnsErrorCode(fd *cast.FuncDef) bool {
	if fd.Ret.IsPointer() || fd.Ret.Base == "void" {
		return false
	}
	found := false
	cast.Walk(fd.Body, func(n cast.Node) bool {
		r, ok := n.(*cast.ReturnStmt)
		if !ok || r.Value == nil {
			return true
		}
		switch v := r.Value.(type) {
		case *cast.UnaryExpr:
			if v.Op.String() == "-" {
				found = true
			}
		case *cast.Ident:
			lower := strings.ToLower(v.Name)
			if lower == "retval" || lower == "ret" || lower == "err" ||
				lower == "error" || lower == "rc" ||
				strings.HasPrefix(v.Name, "-E") || strings.HasPrefix(v.Name, "E") && v.Name == strings.ToUpper(v.Name) {
				found = true
			}
		}
		return true
	})
	return found
}
