package apidb

import (
	"strings"

	"repro/internal/cast"
)

// DiscoverDeviations implements the proactive deviation detection the paper
// calls for in §5.1.3 ("Another way is to proactively detect such
// deviations, as an important future work"): it analyzes the *implementation*
// of increment APIs and flags the two deviation classes behind anti-patterns
// P1 and P2.
//
//   - IncOnError (the pm_runtime_get_sync shape, Listing 3): the function
//     increments a counter unconditionally but can still return an error
//     code, so callers must put even on failure.
//   - MayReturnNull (the mdesc_grab shape): the function returns the counted
//     pointer, and some path returns NULL.
//
// It returns the names of APIs whose entries were annotated, sorted. Like
// the other Discover* entry points it routes through the observation layer
// (observe.go), so shard-merged replay annotates identically.
func (db *DB) DiscoverDeviations(files []*cast.File) []string {
	return db.applyDeviations(observeDecls(files))
}

// returnsErrorCode reports whether the function has an int-ish return type
// and some return of a negative constant or an error-named variable.
func returnsErrorCode(fd *cast.FuncDef) bool {
	if fd.Ret.IsPointer() || fd.Ret.Base == "void" {
		return false
	}
	found := false
	cast.Walk(fd.Body, func(n cast.Node) bool {
		r, ok := n.(*cast.ReturnStmt)
		if !ok || r.Value == nil {
			return true
		}
		switch v := r.Value.(type) {
		case *cast.UnaryExpr:
			if v.Op.String() == "-" {
				found = true
			}
		case *cast.Ident:
			lower := strings.ToLower(v.Name)
			if lower == "retval" || lower == "ret" || lower == "err" ||
				lower == "error" || lower == "rc" ||
				strings.HasPrefix(v.Name, "-E") || strings.HasPrefix(v.Name, "E") && v.Name == strings.ToUpper(v.Name) {
				found = true
			}
		}
		return true
	})
	return found
}
