package apidb

import (
	"encoding/json"
	"fmt"
	"io"
)

// fileFormat is the JSON shape of a knowledge-base extension file.
type fileFormat struct {
	// APIs, Loops and Callbacks extend (or override, by name) the seeded
	// knowledge base.
	APIs      []apiJSON      `json:"apis,omitempty"`
	Loops     []loopJSON     `json:"smartloops,omitempty"`
	Callbacks []callbackJSON `json:"callback_pairs,omitempty"`
	Structs   []string       `json:"refcounted_structs,omitempty"`
}

type apiJSON struct {
	Name          string `json:"name"`
	Op            string `json:"op"` // "inc" | "dec"
	Class         string `json:"class,omitempty"`
	ObjArg        *int   `json:"obj_arg,omitempty"` // omitted = return-carried
	ReturnsRef    bool   `json:"returns_ref,omitempty"`
	Pair          string `json:"pair,omitempty"`
	IncOnError    bool   `json:"inc_on_error,omitempty"`
	MayReturnNull bool   `json:"may_return_null,omitempty"`
	CursorArg     *int   `json:"cursor_arg,omitempty"`
	MayFree       bool   `json:"may_free,omitempty"`
	Struct        string `json:"struct,omitempty"`
}

type loopJSON struct {
	Name        string `json:"name"`
	IterArg     int    `json:"iter_arg"`
	PutAPI      string `json:"put_api"`
	EmbeddedAPI string `json:"embedded_api,omitempty"`
}

type callbackJSON struct {
	Struct  string `json:"struct"`
	Acquire string `json:"acquire"`
	Release string `json:"release"`
}

// LoadExtensions reads a JSON extension file and merges it into the DB.
// Entries override seeded ones with the same name, so a deployment can both
// add site-specific APIs and correct the defaults.
func (db *DB) LoadExtensions(r io.Reader) error {
	var f fileFormat
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("apidb: %w", err)
	}
	for _, a := range f.APIs {
		entry, err := a.toAPI()
		if err != nil {
			return err
		}
		db.AddAPI(entry)
	}
	for _, l := range f.Loops {
		if l.Name == "" || l.PutAPI == "" {
			return fmt.Errorf("apidb: smartloop needs name and put_api")
		}
		db.AddLoop(&SmartLoop{
			Name: l.Name, IterArg: l.IterArg,
			PutAPI: l.PutAPI, EmbeddedAPI: l.EmbeddedAPI,
		})
	}
	for _, cb := range f.Callbacks {
		if cb.Struct == "" || cb.Acquire == "" || cb.Release == "" {
			return fmt.Errorf("apidb: callback pair needs struct, acquire and release")
		}
		db.callbacks = append(db.callbacks, CallbackPair(cb))
	}
	for _, s := range f.Structs {
		db.AddRefStruct(s)
	}
	return nil
}

func (a apiJSON) toAPI() (*API, error) {
	if a.Name == "" {
		return nil, fmt.Errorf("apidb: API entry without a name")
	}
	entry := &API{
		Name: a.Name, ReturnsRef: a.ReturnsRef, Pair: a.Pair,
		IncOnError: a.IncOnError, MayReturnNull: a.MayReturnNull,
		MayFree: a.MayFree, Struct: a.Struct, ObjArg: -1, DecArgObj: -1,
	}
	switch a.Op {
	case "inc":
		entry.Op = OpInc
	case "dec":
		entry.Op = OpDec
	default:
		return nil, fmt.Errorf("apidb: API %s has op %q (want inc or dec)", a.Name, a.Op)
	}
	switch a.Class {
	case "", "specific":
		entry.Class = Specific
	case "general":
		entry.Class = General
	case "embedded", "refcounting-embedded":
		entry.Class = Embedded
	default:
		return nil, fmt.Errorf("apidb: API %s has class %q", a.Name, a.Class)
	}
	if a.ObjArg != nil {
		entry.ObjArg = *a.ObjArg
	}
	if a.CursorArg != nil {
		entry.HasDecArg = true
		entry.DecArgObj = *a.CursorArg
	}
	return entry, nil
}

// SaveExtensions writes the complete current knowledge base as an extension
// file (useful to dump the defaults as a starting point for editing).
func (db *DB) SaveExtensions(w io.Writer) error {
	var f fileFormat
	for _, a := range db.APIs() {
		j := apiJSON{
			Name: a.Name, ReturnsRef: a.ReturnsRef, Pair: a.Pair,
			IncOnError: a.IncOnError, MayReturnNull: a.MayReturnNull,
			MayFree: a.MayFree, Struct: a.Struct,
		}
		switch a.Op {
		case OpInc:
			j.Op = "inc"
		case OpDec:
			j.Op = "dec"
		default:
			continue
		}
		switch a.Class {
		case General:
			j.Class = "general"
		case Embedded:
			j.Class = "embedded"
		default:
			j.Class = "specific"
		}
		if a.ObjArg >= 0 {
			v := a.ObjArg
			j.ObjArg = &v
		}
		if a.HasDecArg {
			v := a.DecArgObj
			j.CursorArg = &v
		}
		f.APIs = append(f.APIs, j)
	}
	for _, l := range db.Loops() {
		f.Loops = append(f.Loops, loopJSON{
			Name: l.Name, IterArg: l.IterArg,
			PutAPI: l.PutAPI, EmbeddedAPI: l.EmbeddedAPI,
		})
	}
	for _, cb := range db.Callbacks() {
		f.Callbacks = append(f.Callbacks, callbackJSON(cb))
	}
	for s := range db.refStructs {
		f.Structs = append(f.Structs, s)
	}
	sortStrings(f.Structs)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
