package apidb

import (
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/cpp"
)

func TestSeededLookups(t *testing.T) {
	db := New()
	cases := []struct {
		name  string
		op    Op
		class Class
	}{
		{"kref_get", OpInc, General},
		{"kref_put", OpDec, General},
		{"of_node_get", OpInc, Specific},
		{"of_node_put", OpDec, Specific},
		{"of_find_matching_node", OpInc, Embedded},
		{"pm_runtime_get_sync", OpInc, Embedded},
		{"bus_find_device", OpInc, Embedded},
	}
	for _, c := range cases {
		a := db.Lookup(c.name)
		if a == nil {
			t.Errorf("%s: not found", c.name)
			continue
		}
		if a.Op != c.op || a.Class != c.class {
			t.Errorf("%s: op=%v class=%v, want %v %v", c.name, a.Op, a.Class, c.op, c.class)
		}
	}
	if db.Lookup("not_an_api") != nil {
		t.Error("unexpected hit for unknown name")
	}
}

func TestDeviationFlags(t *testing.T) {
	db := New()
	if a := db.Lookup("pm_runtime_get_sync"); !a.IncOnError {
		t.Error("pm_runtime_get_sync must be IncOnError")
	}
	if a := db.Lookup("kobject_init_and_add"); !a.IncOnError {
		t.Error("kobject_init_and_add must be IncOnError")
	}
	if a := db.Lookup("mdesc_grab"); !a.MayReturnNull || !a.ReturnsRef {
		t.Error("mdesc_grab must be MayReturnNull + ReturnsRef")
	}
	if a := db.Lookup("of_find_matching_node"); !a.HasDecArg || a.DecArgObj != 0 {
		t.Errorf("of_find_matching_node cursor = %v/%d, want arg 0 (puts its from cursor)", a.HasDecArg, a.DecArgObj)
	}
	if a := db.Lookup("of_find_node_by_path"); a.HasDecArg {
		t.Error("of_find_node_by_path must not have a cursor dec")
	}
}

func TestPairing(t *testing.T) {
	db := New()
	g := db.Lookup("of_node_get")
	p := db.PairFor(g)
	if p == nil || p.Name != "of_node_put" {
		t.Fatalf("pair of of_node_get = %v", p)
	}
	if db.PairFor(nil) != nil {
		t.Error("PairFor(nil) should be nil")
	}
	find := db.Lookup("of_find_compatible_node")
	if pp := db.PairFor(find); pp == nil || pp.Name != "of_node_put" {
		t.Fatalf("pair of of_find_compatible_node = %v", pp)
	}
}

func TestSmartLoops(t *testing.T) {
	db := New()
	l := db.Loop("for_each_child_of_node")
	if l == nil {
		t.Fatal("for_each_child_of_node missing")
	}
	if l.IterArg != 1 || l.PutAPI != "of_node_put" {
		t.Errorf("loop = %+v", l)
	}
	if db.Loop("for_each_matching_node").IterArg != 0 {
		t.Error("for_each_matching_node iter arg")
	}
	if db.Loop("not_a_loop") != nil {
		t.Error("unknown loop should be nil")
	}
}

func TestCallbackPairs(t *testing.T) {
	db := New()
	var found bool
	for _, cb := range db.Callbacks() {
		if cb.Struct == "platform_driver" && cb.Acquire == "probe" && cb.Release == "remove" {
			found = true
		}
	}
	if !found {
		t.Error("platform_driver probe/remove pair missing")
	}
}

func TestKeywordOp(t *testing.T) {
	cases := map[string]Op{
		"of_node_get":    OpInc,
		"of_node_put":    OpDec,
		"dev_hold":       OpInc,
		"mdesc_grab":     OpInc,
		"sock_put":       OpDec,
		"mdesc_release":  OpDec,
		"netdev_drop":    OpDec,
		"plain_function": OpNone,
		"getter_thing":   OpNone, // "getter" is not the keyword "get"
		"usb_serial_put": OpDec,
		// dec keywords win when both appear ("get... put" helpers).
		"get_put_helper": OpDec,
	}
	for name, want := range cases {
		if got := KeywordOp(name); got != want {
			t.Errorf("KeywordOp(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestTable6Consistency(t *testing.T) {
	db := New()
	for _, row := range Table6() {
		for _, name := range row.APIs {
			switch row.BugType {
			case "Return-Error":
				a := db.Lookup(name)
				if a == nil || !a.IncOnError {
					t.Errorf("%s: want IncOnError entry", name)
				}
			case "Return-NULL":
				a := db.Lookup(name)
				if a == nil || !a.MayReturnNull {
					t.Errorf("%s: want MayReturnNull entry", name)
				}
			case "Complete-Hidden":
				if db.Loop(name) == nil {
					t.Errorf("%s: want smartloop entry", name)
				}
			case "Inc./Dec.-Hidden":
				a := db.Lookup(name)
				if a == nil || a.Op == OpNone {
					t.Errorf("%s: want hidden refcounting entry", name)
				}
			}
		}
	}
}

func parseFiles(t *testing.T, srcs ...string) []*cast.File {
	t.Helper()
	var out []*cast.File
	for i, src := range srcs {
		pp := cpp.New(nil)
		res := pp.Process("t.c", src)
		f, errs := cparse.ParseFile("t.c", res.Tokens)
		for _, e := range errs {
			t.Fatalf("src %d parse: %v", i, e)
		}
		out = append(out, f)
	}
	return out
}

func TestDiscoverStructs(t *testing.T) {
	files := parseFiles(t, `
struct my_obj { refcount_t refs; int data; };
struct wrapper { struct my_obj obj; };
struct deep { struct wrapper w; };
struct unrelated { int x; };
`)
	db := New()
	added := db.DiscoverStructs(files)
	if len(added) != 3 {
		t.Fatalf("added = %v", added)
	}
	for _, want := range []string{"my_obj", "wrapper", "deep"} {
		if !db.IsRefStruct(want) {
			t.Errorf("%s should be refcounted", want)
		}
	}
	if db.IsRefStruct("unrelated") {
		t.Error("unrelated should not be refcounted")
	}
}

func TestDiscoverStructsThreshold(t *testing.T) {
	// Chain deeper than NestingThreshold stops propagating.
	files := parseFiles(t, `
struct l0 { refcount_t refs; };
struct l1 { struct l0 a; };
struct l2 { struct l1 a; };
struct l3 { struct l2 a; };
struct l4 { struct l3 a; };
struct l5 { struct l4 a; };
`)
	db := New()
	db.DiscoverStructs(files)
	if !db.IsRefStruct("l0") || !db.IsRefStruct("l1") {
		t.Error("shallow levels should be refcounted")
	}
	if db.IsRefStruct("l5") {
		t.Error("l5 exceeds the nesting threshold")
	}
}

func TestDiscoverWrapperAPIs(t *testing.T) {
	files := parseFiles(t, `
struct foo_dev { struct kref ref; };
void foo_get(struct foo_dev *d)
{
	kref_get(&d->ref);
}
void foo_put(struct foo_dev *d)
{
	kref_put(&d->ref);
}
int unrelated(int x) { return x + 1; }
`)
	db := New()
	db.DiscoverStructs(files)
	added := db.DiscoverAPIs(files)
	if len(added) != 2 {
		t.Fatalf("added = %v", added)
	}
	g := db.Lookup("foo_get")
	if g == nil || g.Op != OpInc || !g.Discovered {
		t.Fatalf("foo_get = %+v", g)
	}
	p := db.Lookup("foo_put")
	if p == nil || p.Op != OpDec {
		t.Fatalf("foo_put = %+v", p)
	}
	if db.Lookup("unrelated") != nil {
		t.Error("unrelated must not be classified")
	}
}

func TestDiscoverDirectCounterManipulation(t *testing.T) {
	files := parseFiles(t, `
struct raw_obj { int refcount; };
void raw_hold(struct raw_obj *o) { o->refcount++; }
void raw_drop(struct raw_obj *o) { o->refcount--; }
`)
	db := New()
	db.DiscoverAPIs(files)
	if a := db.Lookup("raw_hold"); a == nil || a.Op != OpInc {
		t.Errorf("raw_hold = %+v", a)
	}
	if a := db.Lookup("raw_drop"); a == nil || a.Op != OpDec {
		t.Errorf("raw_drop = %+v", a)
	}
}

func TestDiscoverFindLike(t *testing.T) {
	files := parseFiles(t, `
struct bar { struct kref ref; };
struct bar *bar_find(int id)
{
	struct bar *b = table_lookup(id);
	if (!b)
		return 0;
	kref_get(&b->ref);
	return b;
}
`)
	db := New()
	// bar_find gets a kref_get but not on a parameter, so the wrapper rule
	// does not fire; that conservatism is intentional (no false APIs).
	added := db.DiscoverAPIs(files)
	if len(added) != 0 {
		t.Errorf("added = %v (expected conservative no-op)", added)
	}
}

func TestDiscoverLoops(t *testing.T) {
	pp := cpp.New(nil)
	res := pp.Process("t.c", `
#define my_for_each_widget(w) \
	for (w = widget_find_next(0); w; w = widget_find_next(w))
#define NOT_A_LOOP(x) ((x)+1)
int dummy;
`)
	db := New()
	db.AddAPI(&API{Name: "widget_find_next", Op: OpInc, Class: Embedded,
		ObjArg: -1, ReturnsRef: true, Pair: "widget_put"})
	added := db.DiscoverLoops(res.Macros)
	if len(added) != 1 || added[0] != "my_for_each_widget" {
		t.Fatalf("added = %v", added)
	}
	l := db.Loop("my_for_each_widget")
	if l.IterArg != 0 || l.PutAPI != "widget_put" || l.EmbeddedAPI != "widget_find_next" {
		t.Errorf("loop = %+v", l)
	}
	if db.Loop("NOT_A_LOOP") != nil {
		t.Error("NOT_A_LOOP misclassified")
	}
}

func TestAPIsSortedStable(t *testing.T) {
	db := New()
	apis := db.APIs()
	for i := 1; i < len(apis); i++ {
		if apis[i-1].Name >= apis[i].Name {
			t.Fatalf("APIs not sorted at %d: %s >= %s", i, apis[i-1].Name, apis[i].Name)
		}
	}
	loops := db.Loops()
	for i := 1; i < len(loops); i++ {
		if loops[i-1].Name >= loops[i].Name {
			t.Fatalf("Loops not sorted at %d", i)
		}
	}
}

func TestOpAndClassStrings(t *testing.T) {
	if OpInc.String() != "inc" || OpDec.String() != "dec" || OpNone.String() != "none" {
		t.Error("Op strings")
	}
	if General.String() != "general" || Specific.String() != "specific" ||
		Embedded.String() != "refcounting-embedded" {
		t.Error("Class strings")
	}
}
