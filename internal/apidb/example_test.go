package apidb_test

import (
	"fmt"

	"repro/internal/apidb"
)

// ExampleKeywordOp shows the §3.1 first-level keyword filter.
func ExampleKeywordOp() {
	for _, name := range []string{"of_node_get", "sock_put", "dev_hold", "regmap_read"} {
		fmt.Printf("%s -> %s\n", name, apidb.KeywordOp(name))
	}
	// Output:
	// of_node_get -> inc
	// sock_put -> dec
	// dev_hold -> inc
	// regmap_read -> none
}

// ExampleDB_Lookup queries the deviation flags behind anti-patterns P1/P2.
func ExampleDB_Lookup() {
	db := apidb.New()
	a := db.Lookup("pm_runtime_get_sync")
	fmt.Printf("%s: class=%s inc-on-error=%v pair=%s\n", a.Name, a.Class, a.IncOnError, a.Pair)
	// Output:
	// pm_runtime_get_sync: class=refcounting-embedded inc-on-error=true pair=pm_runtime_put_noidle
}
