package apidb

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/cpp"
)

// obsCorpus is a corpus crafted to exercise every order-sensitive discovery
// decision: cross-file wrapper chains in both path directions, a wrapper
// whose target sorts *after* it (so classification must miss, in both
// modes), direct counter manipulation, loop macros (including a shadowing
// redefinition), and both deviation classes with a tail-call helper.
var obsCorpus = map[string]string{
	"a_base.c": `
struct obj { refcount_t refcount; };
struct obj *obj_get(struct obj *o) { o->refcount++; return o; }
void obj_put(struct obj *o) { o->refcount--; }
`,
	"b_wrap.c": `
void obj_hold(struct obj *o) { obj_get(o); }
void obj_drop(struct obj *o) { obj_put(o); }
int obj_hold_err(struct obj *o) { obj_get(o); return -EBUSY; }
`,
	"c_finder.c": `
struct obj *obj_find(int id)
{
	struct obj *o = table_lookup(id);
	if (!o)
		return 0;
	obj_get(o);
	return o;
}
struct obj *obj_find_ref(struct obj *from)
{
	obj_get(from);
	return from;
}
`,
	"d_tail.c": `
int helper_inc_err(struct obj *o) { obj_get(o); return err; }
int outer_get(struct obj *o) { return helper_inc_err(o); }
`,
	// Wrapper around a function that only appears in a later-sorted file:
	// the whole-corpus scan reaches e_early.c before z_late.c defines
	// late_get, so early_hold is NOT classified. Replay must miss it too.
	"e_early.c": `
void early_hold(struct zobj *z) { late_get(z); }
`,
	"z_late.c": `
struct zobj { struct kref kref; };
void late_get(struct zobj *z) { kref_get(&z->kref); }
`,
}

var obsMacroSrc = `
#define my_for_each_obj(o) \
	for (o = obj_find_ref(0); o; o = obj_find_ref(o))
#define NOT_A_LOOP(x) ((x)+1)
int dummy;
`

type obsParsed struct {
	path   string
	file   *cast.File
	macros map[string]*cpp.Macro
}

func parseCorpus(t *testing.T) []obsParsed {
	t.Helper()
	paths := make([]string, 0, len(obsCorpus))
	for p := range obsCorpus {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var out []obsParsed
	for _, p := range paths {
		pp := cpp.New(nil)
		src := obsCorpus[p]
		if p == "a_base.c" {
			src = obsMacroSrc + src
		}
		res := pp.Process(p, src)
		f, errs := cparse.ParseFile(p, res.Tokens)
		for _, e := range errs {
			t.Fatalf("%s: parse: %v", p, e)
		}
		out = append(out, obsParsed{path: p, file: f, macros: res.Macros})
	}
	return out
}

// dumpDB renders the complete discovery-relevant DB state canonically.
func dumpDB(db *DB) string {
	var b strings.Builder
	apis := db.APIs()
	sort.Slice(apis, func(i, j int) bool { return apis[i].Name < apis[j].Name })
	for _, a := range apis {
		fmt.Fprintf(&b, "api %+v\n", *a)
	}
	loops := db.Loops()
	sort.Slice(loops, func(i, j int) bool { return loops[i].Name < loops[j].Name })
	for _, l := range loops {
		fmt.Fprintf(&b, "loop %+v\n", *l)
	}
	var structs []string
	for s := range db.refStructs {
		structs = append(structs, s)
	}
	sort.Strings(structs)
	fmt.Fprintf(&b, "structs %v\n", structs)
	return b.String()
}

// TestApplyMatchesDiscover is the exchange-determinism pin at the apidb
// layer: extracting per-file observations independently and replaying them
// once through Apply must leave the DB in exactly the state the legacy
// whole-corpus Discover* sequence produces, and report the same added names.
func TestApplyMatchesDiscover(t *testing.T) {
	parsed := parseCorpus(t)

	// Path A: the whole-corpus scan (as BuildContext historically ran it).
	dbA := New()
	var files []*cast.File
	macros := map[string]*cpp.Macro{}
	for _, p := range parsed {
		files = append(files, p.file)
		for k, v := range p.macros {
			macros[k] = v
		}
	}
	wantStructs := dbA.DiscoverStructs(files)
	wantAPIs := dbA.DiscoverAPIs(files)
	wantLoops := dbA.DiscoverLoops(macros)
	wantDevs := dbA.DiscoverDeviations(files)

	// Path B: per-file observation (as shard workers run it) + one replay.
	dbB := New()
	var obs []FileObs
	for _, p := range parsed {
		obs = append(obs, ObserveFile(p.path, p.file, p.macros))
	}
	disc := dbB.Apply(obs)

	if got, want := dumpDB(dbB), dumpDB(dbA); got != want {
		t.Errorf("replayed DB differs from scanned DB:\n--- scan ---\n%s--- replay ---\n%s", want, got)
	}
	checkSame := func(what string, got, want []string) {
		t.Helper()
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Errorf("%s: replay added %v, scan added %v", what, got, want)
		}
	}
	checkSame("structs", disc.Structs, wantStructs)
	checkSame("apis", disc.APIs, wantAPIs)
	checkSame("loops", disc.Loops, wantLoops)
	checkSame("deviations", disc.Deviations, wantDevs)

	// The corpus must actually exercise the interesting cases, or the
	// equivalence above proves nothing.
	if a := dbB.Lookup("obj_hold"); a == nil || a.Op != OpInc {
		t.Errorf("obj_hold should be a discovered inc wrapper, got %+v", a)
	}
	if a := dbB.Lookup("obj_hold_err"); a == nil || !a.IncOnError {
		t.Errorf("obj_hold_err should be IncOnError, got %+v", a)
	}
	if a := dbB.Lookup("outer_get"); a == nil || !a.IncOnError {
		t.Errorf("outer_get should be IncOnError via tail-call helper, got %+v", a)
	}
	if a := dbB.Lookup("obj_find"); a != nil {
		t.Errorf("obj_find works on a local, must stay unclassified, got %+v", a)
	}
	if a := dbB.Lookup("obj_find_ref"); a == nil || !a.ReturnsRef {
		t.Errorf("obj_find_ref should be a returns-ref inc, got %+v", a)
	}
	if dbB.Lookup("early_hold") != nil {
		t.Error("early_hold's target sorts later; the scan misses it and so must the replay")
	}
	if dbB.Loop("my_for_each_obj") == nil {
		t.Error("my_for_each_obj smartloop missing")
	}
}

// TestApplyShardInvariant: observations may be *extracted* in any sharding,
// but once concatenated in sorted path order the replay is a pure function
// of that sequence — shard count cannot change the result.
func TestApplyShardInvariant(t *testing.T) {
	parsed := parseCorpus(t)
	var whole []FileObs
	for _, p := range parsed {
		whole = append(whole, ObserveFile(p.path, p.file, p.macros))
	}
	dbWhole := New()
	discWhole := dbWhole.Apply(whole)
	want := dumpDB(dbWhole)

	for _, shards := range []int{2, 3, len(parsed)} {
		// Round-robin partition, then merge shard outputs back in path order
		// — exactly what the manager's exchange step does.
		parts := make([][]FileObs, shards)
		for i, p := range parsed {
			parts[i%shards] = append(parts[i%shards],
				ObserveFile(p.path, p.file, p.macros))
		}
		var merged []FileObs
		for _, part := range parts {
			merged = append(merged, part...)
		}
		sort.Slice(merged, func(i, j int) bool { return merged[i].Path < merged[j].Path })
		db := New()
		disc := db.Apply(merged)
		if got := dumpDB(db); got != want {
			t.Errorf("shards=%d: DB differs:\n--- want ---\n%s--- got ---\n%s", shards, want, got)
		}
		if fmt.Sprint(disc) != fmt.Sprint(discWhole) {
			t.Errorf("shards=%d: discovery %v != %v", shards, disc, discWhole)
		}
	}
}
