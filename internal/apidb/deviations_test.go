package apidb

import (
	"testing"
)

// TestDiscoverListing3Deviation reproduces §5.1.1/Listing 3: an increment
// API implemented over a helper that bumps the counter and still returns an
// error code must be annotated IncOnError — without the seed table knowing
// about it in advance.
func TestDiscoverListing3Deviation(t *testing.T) {
	files := parseFiles(t, `
struct my_pm_dev { atomic_t usage; };
static int __my_pm_suspend(struct my_pm_dev *dev)
{
	int retval;
	atomic_inc(&dev->usage);
	retval = rpm_resume(dev);
	return retval;
}
int my_pm_get_sync(struct my_pm_dev *dev)
{
	return __my_pm_suspend(dev);
}
`)
	db := New()
	db.DiscoverStructs(files)
	db.DiscoverAPIs(files)
	annotated := db.DiscoverDeviations(files)

	a := db.Lookup("my_pm_get_sync")
	if a == nil {
		t.Fatal("my_pm_get_sync not discovered as an API")
	}
	if !a.IncOnError {
		t.Fatalf("IncOnError not detected; annotated = %v", annotated)
	}
}

func TestDiscoverReturnNullDeviation(t *testing.T) {
	files := parseFiles(t, `
struct md_handle { struct kref ref; };
struct md_handle *my_grab(void)
{
	struct md_handle *hp = cur_handle;
	if (!hp)
		return 0;
	kref_get(&hp->ref);
	return hp;
}
`)
	db := New()
	db.DiscoverStructs(files)
	// my_grab isn't a wrapper by the parameter rule; register it manually
	// as a returns-ref inc (the keyword filter would surface it) and let
	// deviation discovery annotate the NULL path.
	db.AddAPI(&API{Name: "my_grab", Op: OpInc, Class: Embedded, ObjArg: -1,
		ReturnsRef: true, Struct: "md_handle"})
	annotated := db.DiscoverDeviations(files)
	a := db.Lookup("my_grab")
	if !a.MayReturnNull {
		t.Fatalf("MayReturnNull not detected; annotated = %v", annotated)
	}
}

func TestNoDeviationOnCleanImpl(t *testing.T) {
	files := parseFiles(t, `
struct obj { struct kref ref; };
void clean_get(struct obj *o)
{
	kref_get(&o->ref);
}
`)
	db := New()
	db.DiscoverStructs(files)
	db.DiscoverAPIs(files)
	if got := db.DiscoverDeviations(files); len(got) != 0 {
		t.Fatalf("spurious deviations: %v", got)
	}
	if a := db.Lookup("clean_get"); a == nil || a.IncOnError || a.MayReturnNull {
		t.Fatalf("clean_get = %+v", a)
	}
}

// TestDeviationFeedsP1 is the end-to-end payoff: after discovery, a caller
// of the custom deviated API gets a P1-style report without any seed entry.
func TestDeviationDiscoveryDeterministic(t *testing.T) {
	src := `
struct my_pm_dev { atomic_t usage; };
static int __my_pm_suspend(struct my_pm_dev *dev)
{
	int retval;
	atomic_inc(&dev->usage);
	retval = rpm_resume(dev);
	return retval;
}
int my_pm_get_sync(struct my_pm_dev *dev)
{
	return __my_pm_suspend(dev);
}
`
	for i := 0; i < 3; i++ {
		files := parseFiles(t, src)
		db := New()
		db.DiscoverStructs(files)
		db.DiscoverAPIs(files)
		got := db.DiscoverDeviations(files)
		if len(got) == 0 {
			t.Fatal("nothing annotated")
		}
	}
}
