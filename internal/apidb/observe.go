package apidb

import (
	"sort"

	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/cpp"
)

// Observation types: the serializable raw material of API discovery.
//
// Discovery (§5 of the paper, plus the §5.1.3 deviation analysis) is
// cross-file: classifying one function as a refcounting wrapper depends on
// which APIs were already known when the scan reached it, so the legacy
// mutate-in-place Discover* passes only produce the right database when they
// see the whole corpus in one process. To shard the front-end across worker
// processes, each worker instead *observes* its files — a pure, per-file
// extraction with no DB dependency — and the manager replays all
// observations through DB.Apply in sorted path order. Apply reproduces the
// exact decisions (including their order sensitivity) the in-process scan
// makes, so both paths build byte-identical databases; the in-process build
// itself now goes through the same observe→apply route, making the
// equivalence hold by construction rather than by parallel maintenance.

// FieldObs is one struct field: its base type name and, when the type names
// a struct, that struct's name. This is all DiscoverStructs's nesting-depth
// walk consults.
type FieldObs struct {
	Base   string
	Struct string
}

// StructObs is a named struct declaration.
type StructObs struct {
	Name   string
	Fields []FieldObs
}

// CallObs is one call expression inside a function body, in AST walk order.
// ArgBases holds, per argument, the base identifier of the member chain
// ("" when the argument has none) — exactly what wrapper classification
// matches against parameter names.
type CallObs struct {
	Callee   string
	ArgBases []string
}

// CounterOpObs is one ++/-- on a counter-named member field, in walk order.
// Base is the member chain's base identifier ("" when none).
type CounterOpObs struct {
	Base string
	Inc  bool
}

// FuncObs captures everything discovery reads out of one function
// definition. RetPointer/ReturnsNull/ErrorCode are DB-independent predicates
// precomputed at observe time; Calls/CounterOps/TailCallees are the raw
// events whose classification depends on the DB and so must be replayed.
type FuncObs struct {
	Name        string
	Params      []string
	RetPointer  bool
	ReturnsNull bool
	ErrorCode   bool
	Calls       []CallObs
	CounterOps  []CounterOpObs
	TailCallees []string
}

// LoopIdentObs is one identifier token in a loop-macro body, with whether
// the next token is `=` (the iteration-variable marker).
type LoopIdentObs struct {
	Name       string
	NextAssign bool
}

// MacroObs is one preprocessor macro. All macros are recorded by name so
// that a later non-loop redefinition correctly shadows an earlier loop macro
// under last-wins merging; Params/Idents are populated only for smartloop
// candidates (function-like macros whose body is a for(...) header).
type MacroObs struct {
	Name   string
	Loop   bool
	Params []string
	Idents []LoopIdentObs
}

// FileObs is the discovery observation for one translation unit.
type FileObs struct {
	Path    string
	Structs []StructObs
	Funcs   []FuncObs
	Macros  []MacroObs
}

// Discovery is what Apply added to the DB, mirroring the four Discover*
// return values. Only the lengths are rendered; the name lists feed tests.
type Discovery struct {
	Structs    []string
	APIs       []string
	Loops      []string
	Deviations []string
}

// ObserveFile extracts the discovery observation for one parsed TU. It is
// pure: no DB access, no dependence on other files, safe to run in parallel
// workers.
func ObserveFile(path string, f *cast.File, macros map[string]*cpp.Macro) FileObs {
	obs := FileObs{Path: path}
	if f != nil {
		for _, d := range f.Decls {
			switch v := d.(type) {
			case *cast.StructDecl:
				if v.Name == "" {
					continue
				}
				so := StructObs{Name: v.Name}
				if len(v.Fields) > 0 {
					so.Fields = make([]FieldObs, len(v.Fields))
					for i, fld := range v.Fields {
						so.Fields[i] = FieldObs{
							Base:   fld.Type.Base,
							Struct: fld.Type.StructName(),
						}
					}
				}
				obs.Structs = append(obs.Structs, so)
			case *cast.FuncDef:
				if v.Body == nil {
					continue
				}
				obs.Funcs = append(obs.Funcs, observeFunc(v))
			}
		}
	}
	obs.Macros = ObserveMacros(macros)
	return obs
}

func observeFunc(fd *cast.FuncDef) FuncObs {
	fo := FuncObs{
		Name:        fd.Name,
		RetPointer:  fd.Ret.IsPointer(),
		ReturnsNull: returnsNullOnSomePath(fd),
		ErrorCode:   returnsErrorCode(fd),
	}
	if len(fd.Params) > 0 {
		fo.Params = make([]string, len(fd.Params))
		for i, p := range fd.Params {
			fo.Params[i] = p.Name
		}
	}
	for _, call := range cast.Calls(fd.Body) {
		co := CallObs{Callee: call.Callee()}
		if len(call.Args) > 0 {
			co.ArgBases = make([]string, len(call.Args))
			for i, a := range call.Args {
				if b := cast.BaseIdent(a); b != nil {
					co.ArgBases[i] = b.Name
				}
			}
		}
		fo.Calls = append(fo.Calls, co)
	}
	cast.Walk(fd.Body, func(n cast.Node) bool {
		switch v := n.(type) {
		case *cast.UnaryExpr:
			if v.Op != clex.Inc && v.Op != clex.Dec {
				return true
			}
			m, ok := v.X.(*cast.MemberExpr)
			if !ok || !isCounterField(m.Name) {
				return true
			}
			op := CounterOpObs{Inc: v.Op == clex.Inc}
			if b := cast.BaseIdent(m); b != nil {
				op.Base = b.Name
			}
			fo.CounterOps = append(fo.CounterOps, op)
		case *cast.ReturnStmt:
			if v.Value == nil {
				return true
			}
			if call, ok := v.Value.(*cast.CallExpr); ok {
				fo.TailCallees = append(fo.TailCallees, call.Callee())
			}
		}
		return true
	})
	return fo
}

// ObserveMacros converts a preprocessor macro table into observations,
// sorted by name so the per-file list is deterministic.
func ObserveMacros(macros map[string]*cpp.Macro) []MacroObs {
	if len(macros) == 0 {
		return nil
	}
	names := make([]string, 0, len(macros))
	for name := range macros {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]MacroObs, 0, len(names))
	for _, name := range names {
		m := macros[name]
		mo := MacroObs{Name: name}
		if m.FuncLike && m.IsLoopMacro() {
			mo.Loop = true
			mo.Params = append([]string(nil), m.Params...)
			for i, t := range m.Body {
				if t.Kind != clex.Ident {
					continue
				}
				mo.Idents = append(mo.Idents, LoopIdentObs{
					Name:       t.Text,
					NextAssign: i+1 < len(m.Body) && m.Body[i+1].Kind == clex.Assign,
				})
			}
		}
		out = append(out, mo)
	}
	return out
}

// Apply replays discovery observations against the DB in the order given
// (callers pass files in sorted path order — the same order the merged unit
// presents them — so the resulting DB matches a whole-corpus scan exactly).
// The four stages run in pipeline order: structs, then API wrappers, then
// smartloops, then deviation annotation.
func (db *DB) Apply(files []FileObs) Discovery {
	return Discovery{
		Structs:    db.applyStructs(files),
		APIs:       db.applyAPIs(files),
		Loops:      db.applyLoops(mergeMacroObs(files)),
		Deviations: db.applyDeviations(files),
	}
}

func (db *DB) applyStructs(files []FileObs) []string {
	decls := map[string]*StructObs{}
	var names []string
	for fi := range files {
		for si := range files[fi].Structs {
			so := &files[fi].Structs[si]
			if decls[so.Name] == nil {
				names = append(names, so.Name)
			}
			decls[so.Name] = so
		}
	}
	// Depth is computed against the pre-call seed set so results do not
	// depend on registration order.
	seeded := make(map[string]bool, len(db.refStructs))
	for k := range db.refStructs {
		seeded[k] = true
	}
	const inf = NestingThreshold + 100
	var depthOf func(name string, seen map[string]bool) int
	depthOf = func(name string, seen map[string]bool) int {
		if seeded[name] || counterFieldTypes[name] {
			return 0
		}
		if seen[name] {
			return inf
		}
		seen[name] = true
		defer delete(seen, name)
		sd := decls[name]
		if sd == nil {
			return inf
		}
		best := inf
		for _, fld := range sd.Fields {
			if counterFieldTypes[fld.Base] {
				return 0
			}
			if fld.Struct != "" {
				if d := depthOf(fld.Struct, seen) + 1; d < best {
					best = d
				}
			}
		}
		return best
	}
	var added []string
	for _, name := range names {
		if db.refStructs[name] {
			continue
		}
		if depthOf(name, map[string]bool{}) <= NestingThreshold {
			db.refStructs[name] = true
			added = append(added, name)
		}
	}
	sort.Strings(added)
	return added
}

func (db *DB) applyAPIs(files []FileObs) []string {
	var added []string
	for fi := range files {
		for gi := range files[fi].Funcs {
			fn := &files[fi].Funcs[gi]
			if db.apis[fn.Name] != nil {
				continue
			}
			op, objArg, inner := db.classifyObs(fn)
			if op == OpNone {
				continue
			}
			a := &API{
				Name: fn.Name, Op: op, Class: Specific, ObjArg: objArg,
				Discovered: true, MayFree: op == OpDec,
			}
			if inner != nil {
				a.Struct = inner.Struct
			}
			// Returns-ref detection: inc API returning a pointer.
			if op == OpInc && fn.RetPointer {
				a.ReturnsRef = true
				a.ObjArg = -1
				a.Class = Embedded
				a.MayReturnNull = fn.ReturnsNull
			}
			db.apis[fn.Name] = a
			added = append(added, fn.Name)
		}
	}
	// Second pass: fill in pairs by struct + opposite op where unambiguous.
	db.inferPairs(added)
	return added
}

// classifyObs reports whether fn wraps a known refcounting API, the
// parameter index it forwards (or -1), and the wrapped entry. It replays
// classifyWrapper's decision procedure over observations.
func (db *DB) classifyObs(fn *FuncObs) (Op, int, *API) {
	paramIdx := map[string]int{}
	for i, p := range fn.Params {
		paramIdx[p] = i
	}
	// A true wrapper moves the counter in one net direction; functions that
	// both take and drop a reference on the same parameter are *users* of
	// the API, not refcounting APIs themselves.
	var incs, decs int
	objArg := -1
	var inner *API
	var op Op
	for ci := range fn.Calls {
		call := &fn.Calls[ci]
		a := db.apis[call.Callee]
		if a == nil || a.Op == OpNone {
			continue
		}
		// Which argument does the wrapped call receive?
		argPos := a.ObjArg
		if argPos < 0 || argPos >= len(call.ArgBases) {
			argPos = 0
		}
		if argPos >= len(call.ArgBases) {
			continue
		}
		base := call.ArgBases[argPos]
		if base == "" {
			continue
		}
		idx, isParam := paramIdx[base]
		if !isParam {
			continue
		}
		switch a.Op {
		case OpInc:
			incs++
		case OpDec:
			decs++
		}
		op = a.Op
		objArg = idx
		inner = a
	}
	if incs > 0 && decs > 0 {
		return OpNone, -1, nil // balanced: a user, not a wrapper
	}
	if op != OpNone {
		return op, objArg, inner
	}
	objArg = -1
	// Direct counter manipulation: ++/-- on a member chain ending in a
	// counter-ish field of a parameter. Last parameter-based op wins,
	// matching the AST walk.
	var found Op
	for _, c := range fn.CounterOps {
		if c.Base == "" {
			continue
		}
		if idx, isParam := paramIdx[c.Base]; isParam {
			if c.Inc {
				found = OpInc
			} else {
				found = OpDec
			}
			objArg = idx
		}
	}
	return found, objArg, nil
}

// mergeMacroObs merges per-file macro observations last-wins in file order,
// mirroring how the unit build merges per-TU macro tables, and returns them
// sorted by name.
func mergeMacroObs(files []FileObs) []MacroObs {
	merged := map[string]*MacroObs{}
	var names []string
	for fi := range files {
		for mi := range files[fi].Macros {
			mo := &files[fi].Macros[mi]
			if merged[mo.Name] == nil {
				names = append(names, mo.Name)
			}
			merged[mo.Name] = mo
		}
	}
	sort.Strings(names)
	out := make([]MacroObs, 0, len(names))
	for _, n := range names {
		out = append(out, *merged[n])
	}
	return out
}

func (db *DB) applyLoops(macros []MacroObs) []string {
	var added []string
	for i := range macros {
		m := &macros[i]
		if !m.Loop || db.loops[m.Name] != nil {
			continue
		}
		paramIdx := map[string]int{}
		for pi, p := range m.Params {
			paramIdx[p] = pi
		}
		var embedded *API
		iterArg := -1
		for _, id := range m.Idents {
			if a := db.apis[id.Name]; a != nil && a.Op == OpInc && a.ReturnsRef {
				embedded = a
			}
			// `param =` inside the body marks the loop variable.
			if idx, ok := paramIdx[id.Name]; ok && id.NextAssign && iterArg == -1 {
				iterArg = idx
			}
		}
		if embedded == nil || iterArg == -1 {
			continue
		}
		db.loops[m.Name] = &SmartLoop{
			Name: m.Name, IterArg: iterArg, PutAPI: embedded.Pair,
			EmbeddedAPI: embedded.Name, Discovered: true,
		}
		added = append(added, m.Name)
	}
	return added
}

func (db *DB) applyDeviations(files []FileObs) []string {
	fns := map[string]*FuncObs{}
	var names []string
	for fi := range files {
		for gi := range files[fi].Funcs {
			fn := &files[fi].Funcs[gi]
			if fns[fn.Name] == nil {
				names = append(names, fn.Name)
			}
			fns[fn.Name] = fn
		}
	}
	sort.Strings(names)
	var annotated []string
	for _, name := range names {
		fn := fns[name]
		a := db.apis[name]
		if a == nil || a.Op != OpInc {
			continue
		}
		changed := false
		if !a.IncOnError && db.incErrObs(fn, fns) {
			a.IncOnError = true
			changed = true
		}
		if !a.MayReturnNull && a.ReturnsRef && fn.ReturnsNull {
			a.MayReturnNull = true
			changed = true
		}
		if changed {
			annotated = append(annotated, name)
		}
	}
	return annotated
}

// incErrObs replays incrementsButReturnsError: the body (or a one-level
// tail-called helper) performs an increment and also returns an error code.
func (db *DB) incErrObs(fn *FuncObs, fns map[string]*FuncObs) bool {
	if fn.ErrorCode && db.bodyIncrementsObs(fn) {
		return true
	}
	for _, t := range fn.TailCallees {
		callee := fns[t]
		if callee == nil {
			continue
		}
		if db.bodyIncrementsObs(callee) && callee.ErrorCode {
			return true
		}
	}
	return false
}

// bodyIncrementsObs replays bodyIncrements: the body calls a known increment
// API (or atomic_inc) or bumps a counter field directly.
func (db *DB) bodyIncrementsObs(fn *FuncObs) bool {
	for ci := range fn.Calls {
		if a := db.apis[fn.Calls[ci].Callee]; a != nil && a.Op == OpInc {
			return true
		}
		if fn.Calls[ci].Callee == "atomic_inc" {
			return true
		}
	}
	for _, c := range fn.CounterOps {
		if c.Inc {
			return true
		}
	}
	return false
}
