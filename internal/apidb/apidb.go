// Package apidb is the refcounting-API knowledge base used by the checkers.
//
// It encodes the paper's three API categories (§5):
//
//   - General refcounting APIs operate directly on basic counted structures
//     (refcount_t, kref, kobject): refcount_inc/dec, kref_get/put,
//     kobject_get/put.
//   - Specific refcounting APIs wrap general ones for one object type and are
//     used inside one subsystem: of_node_get/put, get_device/put_device,
//     sock_hold/sock_put, ...
//   - Refcounting-embedded APIs exist for non-refcounting tasks (find, parse,
//     open, probe, register, ...) but embed refcounting operations; the
//     find-like members of this family caused hundreds of bugs.
//
// It also records the deviation flags behind anti-patterns P1/P2
// (increments-on-error, may-return-NULL), the smartloop registry behind P3,
// the get→put pairing used everywhere, and the inter-paired callback table
// behind P6 (probe/remove, open/release, ...). Appendix A's error-prone API
// inventory (Table 6) is reproduced by Table6 in table6.go.
//
// Beyond the static seed, Discover implements the paper's "lexer parsing"
// stage (§6.1): it scans parsed sources for refcounted structures (those
// containing refcount_t/kref/kobject/atomic_t fields), classifies functions
// that operate on them as refcounting APIs, and registers loop macros whose
// bodies call embedded refcounting APIs as smartloops.
package apidb

import (
	"sort"
	"strings"
)

// Op says which way an API moves a refcounter.
type Op int

// Operations.
const (
	OpNone Op = iota
	OpInc
	OpDec
)

// String returns "inc"/"dec"/"none".
func (o Op) String() string {
	switch o {
	case OpInc:
		return "inc"
	case OpDec:
		return "dec"
	}
	return "none"
}

// Class is the paper's API category.
type Class int

// Categories (§5).
const (
	General Class = iota
	Specific
	Embedded
)

// String names the class as in the paper.
func (c Class) String() string {
	switch c {
	case General:
		return "general"
	case Specific:
		return "specific"
	default:
		return "refcounting-embedded"
	}
}

// API describes one refcounting (or refcounting-embedded) function.
type API struct {
	Name  string
	Op    Op
	Class Class

	// ObjArg is the index of the argument holding the counted object;
	// -1 when the object is carried by the return value instead.
	ObjArg int

	// ReturnsRef is set when the function returns a (new) counted
	// reference the caller must eventually put (find-like APIs).
	ReturnsRef bool

	// Pair names the decrement API that balances this increment (or the
	// increment that balances this decrement).
	Pair string

	// IncOnError (deviation, P1): increments even when returning an error
	// code, so every path — including error paths — needs the put.
	IncOnError bool

	// MayReturnNull (deviation, P2): the returned pointer may be NULL and
	// must be checked before use.
	MayReturnNull bool

	// HasDecArg/DecArgObj (hidden-put, P4-UAF side): the API *decrements*
	// the refcount of the DecArgObj-th argument in addition to its main job
	// (of_find_matching_node puts its `from` cursor argument).
	HasDecArg bool
	DecArgObj int

	// MayFree is set for decrement APIs that can free the object (and its
	// attached resources) when the count reaches zero — i.e. every proper
	// put. Used by P7 (direct-free) and P8 (UAD).
	MayFree bool

	// Struct is the counted structure's name, when known ("device_node").
	Struct string

	// Discovered is set for APIs found by Discover rather than seeded.
	Discovered bool
}

// SmartLoop describes a macro-defined iteration helper that hides
// refcounting (§5.2.1).
type SmartLoop struct {
	Name string
	// IterArg is the macro-argument index of the loop variable.
	IterArg int
	// PutAPI must be called on the loop variable when leaving the loop
	// early (break/return/goto out of the loop body).
	PutAPI string
	// EmbeddedAPI is the find-like API invoked by the loop header.
	EmbeddedAPI string
	// Discovered is set for loops found by Discover.
	Discovered bool
}

// CallbackPair is one inter-paired callback convention (§5.3.2): a get in
// the acquire callback must be balanced by a put in the release callback of
// the same driver-ops structure.
type CallbackPair struct {
	Struct  string // "platform_driver"
	Acquire string // field name: "probe"
	Release string // field name: "remove"
}

// DB is the queryable knowledge base.
type DB struct {
	apis      map[string]*API
	loops     map[string]*SmartLoop
	callbacks []CallbackPair
	// refStructs: struct name → true for structures that embed a counter.
	refStructs map[string]bool
}

// New returns a DB seeded with the kernel API surface from the paper
// (Appendix A plus the general/specific APIs named in §5).
func New() *DB {
	db := &DB{
		apis:       map[string]*API{},
		loops:      map[string]*SmartLoop{},
		refStructs: map[string]bool{},
	}
	db.seed()
	return db
}

// Lookup returns the API entry for name, or nil.
func (db *DB) Lookup(name string) *API { return db.apis[name] }

// Loop returns the smartloop entry for the macro name, or nil.
func (db *DB) Loop(name string) *SmartLoop { return db.loops[name] }

// Callbacks returns the inter-paired callback conventions.
func (db *DB) Callbacks() []CallbackPair { return db.callbacks }

// IsRefStruct reports whether the named struct is refcounted (directly or by
// embedding a counted structure).
func (db *DB) IsRefStruct(name string) bool { return db.refStructs[name] }

// AddAPI registers (or overrides) an API entry.
func (db *DB) AddAPI(a *API) { db.apis[a.Name] = a }

// AddLoop registers a smartloop.
func (db *DB) AddLoop(l *SmartLoop) { db.loops[l.Name] = l }

// DeleteLoop removes a smartloop; the ablation benchmarks use it to measure
// how much the smartloop registry (backed by macro provenance) contributes
// to recall.
func (db *DB) DeleteLoop(name string) { delete(db.loops, name) }

// AddRefStruct marks a struct as refcounted.
func (db *DB) AddRefStruct(name string) { db.refStructs[name] = true }

// APIs returns all entries sorted by name (stable iteration for reports).
func (db *DB) APIs() []*API {
	out := make([]*API, 0, len(db.apis))
	for _, a := range db.apis {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Loops returns all smartloops sorted by name.
func (db *DB) Loops() []*SmartLoop {
	out := make([]*SmartLoop, 0, len(db.loops))
	for _, l := range db.loops {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// PairFor returns the balancing API entry for a, when known.
func (db *DB) PairFor(a *API) *API {
	if a == nil || a.Pair == "" {
		return nil
	}
	return db.apis[a.Pair]
}

// incKeywords / decKeywords are the name keywords from the paper's mining
// methodology (§3.1): "get", "take", "hold", "grab" for increment and "put",
// "drop", "unhold", "release" for decrement.
var incKeywords = []string{"get", "take", "hold", "grab", "ref", "retain"}
var decKeywords = []string{"put", "drop", "unhold", "release", "unref", "free"}

// KeywordOp guesses the operation from an API name using the paper's keyword
// lists. This is the *first-level* filter only; Lookup/Discover confirm.
func KeywordOp(name string) Op {
	lower := strings.ToLower(name)
	parts := strings.Split(lower, "_")
	for _, p := range parts {
		for _, k := range decKeywords {
			if p == k {
				return OpDec
			}
		}
	}
	for _, p := range parts {
		for _, k := range incKeywords {
			if p == k {
				return OpInc
			}
		}
	}
	return OpNone
}

func (db *DB) seed() {
	add := func(a API) { db.apis[a.Name] = &a }

	// --- general refcounting APIs (§5, "General Refcounting APIs") ---
	gens := []struct{ inc, dec, strct string }{
		{"refcount_inc", "refcount_dec", "refcount_struct"},
		{"kref_get", "kref_put", "kref"},
		{"kobject_get", "kobject_put", "kobject"},
		{"atomic_inc", "atomic_dec", ""},
	}
	for _, g := range gens {
		add(API{Name: g.inc, Op: OpInc, Class: General, ObjArg: 0, Pair: g.dec, Struct: g.strct})
		add(API{Name: g.dec, Op: OpDec, Class: General, ObjArg: 0, Pair: g.inc, Struct: g.strct, MayFree: g.inc != "atomic_inc"})
	}

	// --- specific refcounting APIs ---
	specs := []struct{ inc, dec, strct string }{
		{"of_node_get", "of_node_put", "device_node"},
		{"get_device", "put_device", "device"},
		{"usb_serial_get", "usb_serial_put", "usb_serial"},
		{"sock_hold", "sock_put", "sock"},
		{"dev_hold", "dev_put", "net_device"},
		{"fwnode_handle_get", "fwnode_handle_put", "fwnode_handle"},
		{"pci_dev_get", "pci_dev_put", "pci_dev"},
		{"get_task_struct", "put_task_struct", "task_struct"},
		{"mdesc_hold", "mdesc_release", "mdesc_handle"},
		{"nvmem_device_get_ref", "nvmem_device_put", "nvmem_device"},
		{"lpfc_bsg_event_ref", "lpfc_bsg_event_unref", "lpfc_bsg_event"},
	}
	for _, s := range specs {
		add(API{Name: s.inc, Op: OpInc, Class: Specific, ObjArg: 0, Pair: s.dec, Struct: s.strct})
		add(API{Name: s.dec, Op: OpDec, Class: Specific, ObjArg: 0, Pair: s.inc, Struct: s.strct, MayFree: true})
	}

	// --- refcounting-embedded APIs: deviations (Table 6, "ID" rows) ---
	// Return-Error: increments no matter what, returns an error code.
	add(API{Name: "pm_runtime_get_sync", Op: OpInc, Class: Embedded, ObjArg: 0,
		Pair: "pm_runtime_put_noidle", IncOnError: true})
	add(API{Name: "pm_runtime_put_noidle", Op: OpDec, Class: Embedded, ObjArg: 0,
		Pair: "pm_runtime_get_sync", MayFree: false})
	add(API{Name: "pm_runtime_put", Op: OpDec, Class: Embedded, ObjArg: 0,
		Pair: "pm_runtime_get_sync", MayFree: false})
	add(API{Name: "kobject_init_and_add", Op: OpInc, Class: Embedded, ObjArg: 0,
		Pair: "kobject_put", IncOnError: true})

	// Return-NULL: returns a counted reference that may be NULL.
	add(API{Name: "mdesc_grab", Op: OpInc, Class: Embedded, ObjArg: -1,
		ReturnsRef: true, MayReturnNull: true, Pair: "mdesc_release", Struct: "mdesc_handle"})
	add(API{Name: "amdgpu_device_ip_init", Op: OpInc, Class: Embedded, ObjArg: -1,
		ReturnsRef: true, MayReturnNull: true, Pair: "amdgpu_device_ip_fini"})
	add(API{Name: "amdgpu_device_ip_fini", Op: OpDec, Class: Embedded, ObjArg: 0,
		Pair: "amdgpu_device_ip_init", MayFree: true})

	// --- refcounting-embedded APIs: hidden get/put (Table 6, "H" rows) ---
	// of_find_* family: return a counted device_node; of_find_* that take a
	// `from` cursor also *put* the cursor (hidden dec of arg 0).
	finders := []struct {
		name   string
		decArg int
	}{
		{"of_find_compatible_node", 0},
		{"of_find_matching_node", 0},
		{"of_find_matching_node_and_match", 0},
		{"of_find_node_by_name", 0},
		{"of_find_node_by_type", 0},
		{"of_find_node_by_path", -1},
		{"of_find_node_by_phandle", -1},
		{"of_get_next_child", 1},
		{"of_get_next_available_child", 1},
	}
	for _, f := range finders {
		add(API{Name: f.name, Op: OpInc, Class: Embedded, ObjArg: -1,
			ReturnsRef: true, MayReturnNull: true, Pair: "of_node_put",
			HasDecArg: f.decArg >= 0, DecArgObj: f.decArg, Struct: "device_node"})
	}
	moreHidden := []struct {
		name, pair, strct string
	}{
		{"of_parse_phandle", "of_node_put", "device_node"},
		{"of_get_parent", "of_node_put", "device_node"},
		{"of_get_child_by_name", "of_node_put", "device_node"},
		{"of_get_node", "of_node_put", "device_node"},
		{"of_graph_get_port_by_id", "of_node_put", "device_node"},
		{"of_graph_get_port_parent", "of_node_put", "device_node"},
		{"of_graph_get_remote_node", "of_node_put", "device_node"},
		{"bus_find_device", "put_device", "device"},
		{"class_find_device", "put_device", "device"},
		{"device_find_child", "put_device", "device"},
		{"driver_find_device", "put_device", "device"},
		{"ip_dev_find", "dev_put", "net_device"},
		{"dev_get_by_name", "dev_put", "net_device"},
		{"dev_get_by_index", "dev_put", "net_device"},
		{"tipc_node_find", "tipc_node_put", "tipc_node"},
		{"sockfd_lookup", "sockfd_put", "socket"},
		{"fc_rport_lookup", "fc_rport_put", "fc_rport"},
		{"rxrpc_lookup_peer", "rxrpc_put_peer", "rxrpc_peer"},
		{"lookup_bdev", "bdput", "block_device"},
		{"tcp_ulp_find_autoload", "tcp_ulp_put", "tcp_ulp_ops"},
		{"ipv4_neigh_lookup", "neigh_release", "neighbour"},
		{"mpol_shared_policy_lookup", "mpol_cond_put", "mempolicy"},
		{"setup_find_cpu_node", "of_node_put", "device_node"},
		{"perf_cpu_map__new", "perf_cpu_map__put", "perf_cpu_map"},
		{"afs_alloc_read", "afs_put_read", "afs_read"},
		{"gfs2_glock_nq_init", "gfs2_glock_dq_uninit", "gfs2_holder"},
	}
	for _, h := range moreHidden {
		add(API{Name: h.name, Op: OpInc, Class: Embedded, ObjArg: -1,
			ReturnsRef: true, MayReturnNull: true, Pair: h.pair,
			Struct: h.strct})
	}
	// Paired puts for the embedded family that don't exist yet.
	for _, h := range moreHidden {
		if db.apis[h.pair] == nil {
			add(API{Name: h.pair, Op: OpDec, Class: Specific, ObjArg: 0,
				Pair: h.name, MayFree: true, Struct: h.strct})
		}
	}
	// Hidden-inc APIs used as examples in §5.2.2: device_initialize,
	// usb_anchor_urb, tomoyo_mount_acl hold references on their argument.
	for _, n := range []string{"device_initialize", "usb_anchor_urb", "tomoyo_mount_acl"} {
		add(API{Name: n, Op: OpInc, Class: Embedded, ObjArg: 0, Pair: ""})
	}
	// nvmet_fc_tgt_q_get/put pin the queue passed as their argument.
	add(API{Name: "nvmet_fc_tgt_q_get", Op: OpInc, Class: Specific, ObjArg: 0,
		Pair: "nvmet_fc_tgt_q_put", Struct: "nvmet_fc_tgt_queue"})
	add(API{Name: "nvmet_fc_tgt_q_put", Op: OpDec, Class: Specific, ObjArg: 0,
		Pair: "nvmet_fc_tgt_q_get", MayFree: true, Struct: "nvmet_fc_tgt_queue"})

	// --- smartloops (§5.2.1, §7) ---
	loops := []SmartLoop{
		{Name: "for_each_matching_node", IterArg: 0, PutAPI: "of_node_put", EmbeddedAPI: "of_find_matching_node"},
		{Name: "for_each_child_of_node", IterArg: 1, PutAPI: "of_node_put", EmbeddedAPI: "of_get_next_child"},
		{Name: "for_each_available_child_of_node", IterArg: 1, PutAPI: "of_node_put", EmbeddedAPI: "of_get_next_available_child"},
		{Name: "for_each_node_by_name", IterArg: 0, PutAPI: "of_node_put", EmbeddedAPI: "of_find_node_by_name"},
		{Name: "for_each_node_by_type", IterArg: 0, PutAPI: "of_node_put", EmbeddedAPI: "of_find_node_by_type"},
		{Name: "for_each_compatible_node", IterArg: 0, PutAPI: "of_node_put", EmbeddedAPI: "of_find_compatible_node"},
		{Name: "for_each_endpoint_of_node", IterArg: 1, PutAPI: "of_node_put", EmbeddedAPI: "of_graph_get_next_endpoint"},
		{Name: "device_for_each_child_node", IterArg: 1, PutAPI: "fwnode_handle_put", EmbeddedAPI: "device_get_next_child_node"},
		{Name: "fwnode_for_each_child_node", IterArg: 1, PutAPI: "fwnode_handle_put", EmbeddedAPI: "fwnode_get_next_child_node"},
		{Name: "fwnode_for_each_parent_node", IterArg: 1, PutAPI: "fwnode_handle_put", EmbeddedAPI: "fwnode_get_parent"},
		{Name: "for_each_cpu_node", IterArg: 0, PutAPI: "of_node_put", EmbeddedAPI: "of_get_next_cpu_node"},
	}
	for i := range loops {
		l := loops[i]
		db.loops[l.Name] = &l
		if db.apis[l.EmbeddedAPI] == nil {
			add(API{Name: l.EmbeddedAPI, Op: OpInc, Class: Embedded, ObjArg: -1,
				ReturnsRef: true, MayReturnNull: true, Pair: l.PutAPI})
		}
	}

	// --- inter-paired callbacks (§5.3.2) ---
	db.callbacks = []CallbackPair{
		{Struct: "platform_driver", Acquire: "probe", Release: "remove"},
		{Struct: "usb_driver", Acquire: "probe", Release: "disconnect"},
		{Struct: "proto_ops", Acquire: "connect", Release: "shutdown"},
		{Struct: "file_operations", Acquire: "open", Release: "release"},
		{Struct: "i2c_driver", Acquire: "probe", Release: "remove"},
		{Struct: "pci_driver", Acquire: "probe", Release: "remove"},
	}

	// --- refcounted structures ---
	for _, s := range []string{
		"kref", "kobject", "device_node", "device", "sock", "net_device",
		"usb_serial", "fwnode_handle", "pci_dev", "task_struct",
		"mdesc_handle", "nvmem_device", "lpfc_bsg_event",
	} {
		db.refStructs[s] = true
	}
}
