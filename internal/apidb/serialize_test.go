package apidb

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadExtensions(t *testing.T) {
	db := New()
	ext := `{
  "apis": [
    {"name": "acme_widget_find", "op": "inc", "class": "embedded",
     "returns_ref": true, "may_return_null": true,
     "pair": "acme_widget_put", "struct": "acme_widget"},
    {"name": "acme_widget_put", "op": "dec", "obj_arg": 0,
     "pair": "acme_widget_find", "may_free": true, "struct": "acme_widget"}
  ],
  "smartloops": [
    {"name": "for_each_acme_widget", "iter_arg": 0,
     "put_api": "acme_widget_put", "embedded_api": "acme_widget_find"}
  ],
  "callback_pairs": [
    {"struct": "acme_driver", "acquire": "attach", "release": "detach"}
  ],
  "refcounted_structs": ["acme_widget"]
}`
	if err := db.LoadExtensions(strings.NewReader(ext)); err != nil {
		t.Fatal(err)
	}
	a := db.Lookup("acme_widget_find")
	if a == nil || a.Op != OpInc || !a.ReturnsRef || !a.MayReturnNull ||
		a.Class != Embedded || a.ObjArg != -1 {
		t.Fatalf("find = %+v", a)
	}
	p := db.Lookup("acme_widget_put")
	if p == nil || p.Op != OpDec || p.ObjArg != 0 || !p.MayFree {
		t.Fatalf("put = %+v", p)
	}
	if l := db.Loop("for_each_acme_widget"); l == nil || l.PutAPI != "acme_widget_put" {
		t.Fatalf("loop = %+v", l)
	}
	found := false
	for _, cb := range db.Callbacks() {
		if cb.Struct == "acme_driver" && cb.Acquire == "attach" {
			found = true
		}
	}
	if !found {
		t.Error("callback pair missing")
	}
	if !db.IsRefStruct("acme_widget") {
		t.Error("struct not registered")
	}
}

func TestLoadExtensionsOverridesSeed(t *testing.T) {
	db := New()
	ext := `{"apis": [{"name": "pm_runtime_get_sync", "op": "inc", "obj_arg": 0}]}`
	if err := db.LoadExtensions(strings.NewReader(ext)); err != nil {
		t.Fatal(err)
	}
	// Override clears the deviation flag (the file owns the entry now).
	if a := db.Lookup("pm_runtime_get_sync"); a.IncOnError {
		t.Error("override did not replace the seed entry")
	}
}

func TestLoadExtensionsValidation(t *testing.T) {
	cases := []string{
		`{"apis": [{"op": "inc"}]}`,                                // missing name
		`{"apis": [{"name": "x", "op": "sideways"}]}`,              // bad op
		`{"apis": [{"name": "x", "op": "inc", "class": "weird"}]}`, // bad class
		`{"smartloops": [{"name": "l"}]}`,                          // missing put_api
		`{"callback_pairs": [{"struct": "s"}]}`,                    // incomplete pair
		`{"unknown_field": 1}`,                                     // strict decoding
		`{`,                                                        // malformed JSON
	}
	for _, c := range cases {
		db := New()
		if err := db.LoadExtensions(strings.NewReader(c)); err == nil {
			t.Errorf("accepted invalid extension %q", c)
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := New()
	var buf bytes.Buffer
	if err := db.SaveExtensions(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := &DB{apis: map[string]*API{}, loops: map[string]*SmartLoop{}, refStructs: map[string]bool{}}
	if err := fresh.LoadExtensions(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	for _, a := range db.APIs() {
		b := fresh.Lookup(a.Name)
		if b == nil {
			t.Fatalf("%s lost in round trip", a.Name)
		}
		if b.Op != a.Op || b.IncOnError != a.IncOnError ||
			b.MayReturnNull != a.MayReturnNull || b.ReturnsRef != a.ReturnsRef ||
			b.ObjArg != a.ObjArg || b.HasDecArg != a.HasDecArg ||
			b.Pair != a.Pair {
			t.Errorf("%s differs: %+v vs %+v", a.Name, a, b)
		}
		if a.HasDecArg && b.DecArgObj != a.DecArgObj {
			t.Errorf("%s cursor arg differs: %d vs %d", a.Name, a.DecArgObj, b.DecArgObj)
		}
	}
	if len(fresh.Loops()) != len(db.Loops()) {
		t.Errorf("loops: %d vs %d", len(fresh.Loops()), len(db.Loops()))
	}
	if len(fresh.Callbacks()) != len(db.Callbacks()) {
		t.Errorf("callbacks: %d vs %d", len(fresh.Callbacks()), len(db.Callbacks()))
	}
}
