package apidb

// Table6Row is one row of the paper's Appendix A inventory of error-prone
// APIs.
type Table6Row struct {
	Category string // "ID" (implementation deviation) or "H" (hidden)
	BugType  string // "Return-Error", "Return-NULL", "Complete-Hidden", "Inc./Dec.-Hidden"
	APIs     []string
}

// Table6 reproduces Appendix A, Table 6: the error-prone API inventory. The
// checker suite treats this as ground truth for its deviation and hidden
// flags; TestTable6Consistency verifies every listed API carries the matching
// flag in the seeded DB.
func Table6() []Table6Row {
	return []Table6Row{
		{
			Category: "ID", BugType: "Return-Error",
			APIs: []string{"pm_runtime_get_sync", "kobject_init_and_add"},
		},
		{
			Category: "ID", BugType: "Return-NULL",
			APIs: []string{"mdesc_grab", "amdgpu_device_ip_init"},
		},
		{
			Category: "H", BugType: "Complete-Hidden",
			APIs: []string{
				"for_each_child_of_node", "for_each_available_child_of_node",
				"for_each_endpoint_of_node", "for_each_node_by_name",
				"for_each_compatible_node", "device_for_each_child_node",
				"fwnode_for_each_parent_node",
			},
		},
		{
			Category: "H", BugType: "Inc./Dec.-Hidden",
			APIs: []string{
				"of_parse_phandle", "of_get_parent", "of_get_child_by_name",
				"of_find_compatible_node", "of_find_matching_node",
				"of_find_node_by_name", "of_find_node_by_path",
				"of_find_node_by_phandle", "of_find_node_by_type",
				"device_initialize", "ip_dev_find", "afs_alloc_read",
				"perf_cpu_map__new", "setup_find_cpu_node",
				"gfs2_glock_nq_init", "tipc_node_find", "sockfd_lookup",
				"fc_rport_lookup", "rxrpc_lookup_peer", "lookup_bdev",
				"tcp_ulp_find_autoload", "ipv4_neigh_lookup",
				"class_find_device", "mpol_shared_policy_lookup",
				"usb_anchor_urb", "tomoyo_mount_acl",
			},
		},
	}
}
