package arena

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestArenaReleaseExactlyOnce drives many arenas through concurrent workers
// (run under -race by the tier-1 suite): every arena's hooks run exactly
// once, and the Released counter matches the arena count at any worker
// count.
func TestArenaReleaseExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 8} {
		st := &Stats{}
		const arenas = 64
		var ran atomic.Int64
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range jobs {
					a := New(st)
					a.OnRelease(func() { ran.Add(1) })
					a.OnRelease(func() { ran.Add(1) })
					a.Release()
					if !a.Released() {
						t.Error("Released() false after Release")
					}
				}
			}()
		}
		for i := 0; i < arenas; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		if got := ran.Load(); got != 2*arenas {
			t.Errorf("workers=%d: %d hook runs, want %d", workers, got, 2*arenas)
		}
		if got := st.Released.Load(); got != arenas {
			t.Errorf("workers=%d: Released=%d, want %d", workers, got, arenas)
		}
	}
}

func TestArenaDoubleReleasePanics(t *testing.T) {
	a := New(nil)
	a.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("second Release did not panic")
		}
	}()
	a.Release()
}

func TestArenaOnReleaseAfterReleasePanics(t *testing.T) {
	a := New(nil)
	a.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("OnRelease after Release did not panic")
		}
	}()
	a.OnRelease(func() {})
}

// TestSlabAllocationIsPerChunk is the TestNopZeroAllocation analog for the
// arena fast path: allocating N nodes must cost O(N/chunk) heap
// allocations, not O(N).
func TestSlabAllocationIsPerChunk(t *testing.T) {
	type node struct{ a, b, c int }
	const n = 10 * defaultChunk
	var s *Slab[node]
	allocs := testing.AllocsPerRun(10, func() {
		s = &Slab[node]{}
		for i := 0; i < n; i++ {
			s.New(node{a: i})
		}
	})
	// n/defaultChunk chunks plus the slab itself, with slack for the
	// runtime; far below one alloc per node.
	if allocs > float64(n/defaultChunk)+4 {
		t.Errorf("slab cost %.0f allocs for %d nodes; want ~%d (per chunk)", allocs, n, n/defaultChunk)
	}
}

func TestSlabPointerStabilityAndStats(t *testing.T) {
	st := &Stats{}
	s := &Slab[int]{Stats: st}
	var ptrs []*int
	for i := 0; i < 3*defaultChunk; i++ {
		ptrs = append(ptrs, s.New(i))
	}
	for i, p := range ptrs {
		if *p != i {
			t.Fatalf("slab value %d = %d after later allocations", i, *p)
		}
	}
	if st.Chunks.Load() != 3 {
		t.Errorf("Chunks=%d, want 3", st.Chunks.Load())
	}
	if st.Bytes.Load() == 0 {
		t.Error("Bytes counter did not advance")
	}
}

func TestPoolReuse(t *testing.T) {
	st := &Stats{}
	p := &Pool[byte]{Stats: st}
	b := p.Get(128)
	if cap(b) < 128 {
		t.Fatalf("fresh buffer cap %d < hint", cap(b))
	}
	// Under the race detector sync.Pool intentionally drops items at
	// random, so a single Put/Get round trip is not guaranteed to recycle.
	// Retry until a reuse is observed; each round's recycled buffer must
	// come back empty either way.
	for i := 0; i < 100 && st.Reused.Load() == 0; i++ {
		b = append(b[:0], 1, 2, 3)
		p.Put(b)
		b = p.Get(8)
		if len(b) != 0 {
			t.Fatalf("recycled buffer has len %d", len(b))
		}
	}
	if st.Reused.Load() == 0 {
		t.Error("Reused counter did not advance on recycled Get")
	}
}
