//go:build arenadebug

package arena

// debugPoison enables the reuse-after-release checks: pooled buffers are
// cleared on Put (stale aliases read zeros, not plausible stale tokens) and
// poisoned slabs panic on New.
const debugPoison = true
