//go:build !arenadebug

package arena

// debugPoison gates the reuse-after-release checks. In the default build it
// is a compile-time false so the checks cost nothing; `go test -tags
// arenadebug` turns them on.
const debugPoison = false
