//go:build arenadebug

package arena

import "testing"

// The reuse-after-release guards only exist under -tags arenadebug; this
// file exercises them (run with `go test -tags arenadebug ./internal/arena`).

func TestSlabPoisonPanicsOnReuse(t *testing.T) {
	s := &Slab[int]{}
	s.New(1)
	s.Poison()
	defer func() {
		if recover() == nil {
			t.Fatal("New on a poisoned slab did not panic under arenadebug")
		}
	}()
	s.New(2)
}

func TestPoolPutPoisonsContents(t *testing.T) {
	p := &Pool[int]{}
	b := p.Get(4)
	b = append(b, 7, 8, 9)
	stale := b // alias that survives the Put — the bug the poisoning catches
	p.Put(b)
	if stale[:3][0] == 7 {
		t.Fatal("pooled buffer contents survived Put under arenadebug")
	}
}
