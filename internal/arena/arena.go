// Package arena provides the per-translation-unit allocation substrate for
// the front end: chunked bump allocation for nodes that live exactly as long
// as their owning structure (AST nodes, CFG blocks), and capacity-retaining
// buffer pooling for scratch storage that dies at the end of a TU's front
// end (the preprocessor's expanded token stream).
//
// Two ownership regimes, one package:
//
//   - Slab[T] hands out pointers into large chunks, so allocating N nodes
//     costs O(N/chunk) heap allocations instead of O(N). Slab memory is
//     never recycled: the nodes it backs are retained by the Unit, so the
//     chunks simply ride along and are collected with it.
//
//   - Pool[T] recycles whole []T buffers through a sync.Pool. Pool memory is
//     recycled wholesale: the caller must guarantee nothing retains the
//     buffer past Put (see internal/cpg for the token-buffer lifetime
//     argument).
//
// An Arena ties per-TU releases together with exactly-once semantics:
// release hooks (typically Pool.Put calls) run exactly once, and a second
// Release panics — the lifecycle tests run this under -race at several
// worker counts. Building with -tags arenadebug additionally poisons pooled
// buffers on release so reuse-after-release reads trip loudly instead of
// silently aliasing.
//
// Stats is an atomic counter sink shared by every allocator of a build; the
// cpg builder feeds it into the obs registry (arena.bytes, arena.chunks,
// arena.reused, arena.released) so the allocation win is visible in
// -stats-json.
package arena

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

// Stats aggregates allocator counters. All fields are atomic so one Stats
// can be shared by every worker of a parallel build; totals are
// deterministic at any worker count because the set of allocations is.
type Stats struct {
	// Bytes counts bytes of fresh chunk/buffer capacity allocated.
	Bytes atomic.Int64
	// Chunks counts fresh chunk/buffer allocations.
	Chunks atomic.Int64
	// Reused counts buffers served from a pool instead of allocated.
	Reused atomic.Int64
	// Released counts Arena.Release calls that ran their hooks.
	Released atomic.Int64
}

func (st *Stats) addAlloc(bytes int) {
	if st != nil {
		st.Bytes.Add(int64(bytes))
		st.Chunks.Add(1)
	}
}

// Arena owns the scratch allocations of one translation unit and releases
// them wholesale, exactly once. The zero value is not useful; use New.
type Arena struct {
	stats    *Stats
	released atomic.Bool
	hooks    []func()
}

// New returns an arena reporting into st (which may be nil).
func New(st *Stats) *Arena {
	return &Arena{stats: st}
}

// OnRelease registers f to run when the arena is released. Hooks run in
// registration order. Registering on a released arena panics: the resource
// being registered would leak silently otherwise.
func (a *Arena) OnRelease(f func()) {
	if a.released.Load() {
		panic("arena: OnRelease after Release")
	}
	a.hooks = append(a.hooks, f)
}

// Release runs the release hooks exactly once. A second Release panics —
// double release means two owners both believed they held the arena's
// buffers, which is exactly the aliasing bug the arena exists to prevent.
func (a *Arena) Release() {
	if !a.released.CompareAndSwap(false, true) {
		panic("arena: double Release")
	}
	for _, f := range a.hooks {
		f()
	}
	a.hooks = nil
	if a.stats != nil {
		a.stats.Released.Add(1)
	}
}

// Released reports whether Release has run.
func (a *Arena) Released() bool { return a.released.Load() }

// Slab is a chunked bump allocator for values of type T. New returns
// pointers into chunks of chunkSize values, so the pointer cost of a parse
// is O(chunks), not O(nodes). Pointers stay valid forever — chunks are never
// recycled — and the zero Slab is ready to use. A Slab is single-goroutine;
// share the Stats, not the Slab.
type Slab[T any] struct {
	// Stats, when set, receives the chunk allocation counters.
	Stats *Stats

	cur      []T
	poisoned bool
}

const defaultChunk = 64

// New copies v into the slab and returns a stable pointer to the copy.
func (s *Slab[T]) New(v T) *T {
	if debugPoison && s.poisoned {
		panic("arena: Slab.New after release (arenadebug)")
	}
	if len(s.cur) == cap(s.cur) {
		var t T
		s.cur = make([]T, 0, defaultChunk)
		s.Stats.addAlloc(defaultChunk * int(unsafe.Sizeof(t)))
	}
	s.cur = append(s.cur, v)
	return &s.cur[len(s.cur)-1]
}

// Poison marks the slab released for the arenadebug build: any later New
// panics. Without the tag it only drops the current chunk reference.
func (s *Slab[T]) Poison() {
	s.poisoned = true
	s.cur = nil
}

// Pool recycles []T scratch buffers with retained capacity. Get either
// serves a recycled buffer (counted as Reused) or allocates a fresh one
// (counted as Bytes/Chunks). The caller must guarantee nothing retains a
// buffer after Put — under -tags arenadebug, Put poisons the contents so a
// stale alias reads zero values instead of plausible stale data.
type Pool[T any] struct {
	// Stats, when set, receives the buffer allocation counters.
	Stats *Stats

	p sync.Pool
}

// Get returns an empty buffer with at least capHint capacity when freshly
// allocated (recycled buffers keep whatever capacity they grew to).
func (p *Pool[T]) Get(capHint int) []T {
	if v := p.p.Get(); v != nil {
		if p.Stats != nil {
			p.Stats.Reused.Add(1)
		}
		return (*(v.(*[]T)))[:0]
	}
	var t T
	p.Stats.addAlloc(capHint * int(unsafe.Sizeof(t)))
	return make([]T, 0, capHint)
}

// Put recycles buf for a later Get. Put of a nil buffer is a no-op.
func (p *Pool[T]) Put(buf []T) {
	if cap(buf) == 0 {
		return
	}
	if debugPoison {
		clear(buf[:cap(buf)])
	}
	buf = buf[:0]
	p.p.Put(&buf)
}
