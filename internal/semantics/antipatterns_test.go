package semantics

import (
	"testing"

	"repro/internal/apidb"
)

// exemplars pairs each single-function anti-pattern with a buggy and a fixed
// C snippet; the template must match the former and reject the latter.
var exemplars = map[string]struct{ buggy, fixed, fn string }{
	"P1": {
		buggy: `
static int f(struct my_dev *crc)
{
	int ret = pm_runtime_get_sync(crc->dev);
	if (ret < 0)
		return ret;
	pm_runtime_put_noidle(crc->dev);
	return 0;
}`,
		fixed: `
static int f(struct my_dev *crc)
{
	int ret = pm_runtime_get_sync(crc->dev);
	if (ret < 0) {
		pm_runtime_put_noidle(crc->dev);
		return ret;
	}
	pm_runtime_put_noidle(crc->dev);
	return 0;
}`,
		fn: "f",
	},
	"P2": {
		buggy: `
static int f(void)
{
	struct mdesc_handle *hp = mdesc_grab();
	int n = hp->num_nodes;
	mdesc_release(hp);
	return n;
}`,
		// Note: the raw template has no branch awareness; "fixed" for the
		// template means no dereference at all after the grab.
		fixed: `
static int f(void)
{
	struct mdesc_handle *hp = mdesc_grab();
	mdesc_release(hp);
	return 0;
}`,
		fn: "f",
	},
	"P3": {
		buggy: `
#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
static int f(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (want(dn))
			break;
	}
	return 0;
}`,
		fixed: `
#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
static int f(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (want(dn)) {
			of_node_put(dn);
			break;
		}
	}
	return 0;
}`,
		fn: "f",
	},
	"P5": {
		buggy: `
static int f(struct device_node *np)
{
	int err;
	of_node_get(np);
	err = reg(np);
	if (err)
		goto fail;
	of_node_put(np);
	return 0;
fail:
	return err;
}`,
		fixed: `
static int f(struct device_node *np)
{
	int err;
	of_node_get(np);
	err = reg(np);
	if (err)
		goto fail;
	of_node_put(np);
	return 0;
fail:
	of_node_put(np);
	return err;
}`,
		fn: "f",
	},
	"P7": {
		buggy: `
static void f(struct widget *w)
{
	kref_get(&w->ref);
	kfree(w);
}`,
		fixed: `
static void f(struct widget *w)
{
	kref_get(&w->ref);
	kref_put(&w->ref);
}`,
		fn: "f",
	},
	"P8": {
		buggy: `
static void f(struct sock *sk)
{
	sock_put(sk);
	sk->sk_err = 0;
}`,
		fixed: `
static void f(struct sock *sk)
{
	sk->sk_err = 0;
	sock_put(sk);
}`,
		fn: "f",
	},
	"P9": {
		buggy: `
static struct sock *mon;
static void f(struct sock *sk)
{
	mon = sk;
}`,
		fixed: `
static struct sock *mon;
static void f(struct sock *sk)
{
	sock_hold(sk);
	mon = sk;
}`,
		fn: "f",
	},
}

func TestAntiPatternTemplatesMatchExemplars(t *testing.T) {
	db := apidb.New()
	templates := AntiPatterns(db)
	for id, ex := range exemplars {
		tpl := templates[id]
		if tpl == nil {
			t.Fatalf("%s: template missing", id)
		}
		fe := extract(t, ex.buggy, ex.fn)
		if got := MatchTemplate(fe, tpl, 0); len(got) == 0 {
			t.Errorf("%s: buggy exemplar not matched (%s)", id, tpl)
		}
		fe = extract(t, ex.fixed, ex.fn)
		if got := MatchTemplate(fe, tpl, 0); len(got) != 0 {
			t.Errorf("%s: fixed exemplar matched %d times", id, len(got))
		}
	}
}

func TestAntiPatternsComplete(t *testing.T) {
	templates := AntiPatterns(apidb.New())
	for _, id := range []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9"} {
		if _, ok := templates[id]; !ok {
			t.Errorf("%s missing from the registry", id)
		}
	}
	if templates["P6"] != nil {
		t.Error("P6 must be nil (two-function pattern)")
	}
	// Every non-nil template renders in arrow notation.
	for id, tpl := range templates {
		if tpl == nil {
			continue
		}
		if s := tpl.String(); len(s) < len("F_start -> F_end") {
			t.Errorf("%s renders as %q", id, s)
		}
	}
}

func TestP4TemplateOnListing1(t *testing.T) {
	tpl := AntiPatterns(apidb.New())["P4"]
	fe := extract(t, `
static void f(void)
{
	struct device *dev = bus_find_device(bus);
	use(dev);
}`, "f")
	if got := MatchTemplate(fe, tpl, 0); len(got) != 1 {
		t.Fatalf("matches = %d", len(got))
	}
	fe = extract(t, `
static void f(void)
{
	struct device *dev = bus_find_device(bus);
	use(dev);
	put_device(dev);
}`, "f")
	if got := MatchTemplate(fe, tpl, 0); len(got) != 0 {
		t.Fatalf("fixed matches = %d", len(got))
	}
}
