package semantics

import (
	"sync"

	"repro/internal/apidb"
	"repro/internal/bincodec"
	"repro/internal/clex"
)

// Binary codec for cached events (the facts and unit-report cache entries).
// Events are encoded blocks-stripped: every cached form already clears the
// CFG block pointer (facts normalization, stripWitnessBlocks), so the codec
// neither writes nor restores it. Decoding validates every enum against its
// range and fails the reader on anything impossible, so a corrupted entry
// degrades to a counted cache miss instead of smuggling garbage into a
// checker.

// EncodePos appends a source position.
func EncodePos(w *bincodec.Writer, p clex.Pos) {
	w.String(p.File)
	w.U32(uint32(p.Line))
	w.U32(uint32(p.Col))
}

// DecodePos reads a position written by EncodePos.
func DecodePos(r *bincodec.Reader) clex.Pos {
	return clex.Pos{File: r.InternString(), Line: int(r.U32()), Col: int(r.U32())}
}

// encodeAPI appends an apidb entry (presence flag first: Info is nil for
// non-refcounting calls).
func encodeAPI(w *bincodec.Writer, a *apidb.API) {
	if a == nil {
		w.Bool(false)
		return
	}
	w.Bool(true)
	w.String(a.Name)
	w.U8(uint8(a.Op))
	w.U8(uint8(a.Class))
	w.Int(a.ObjArg)
	w.Bool(a.ReturnsRef)
	w.String(a.Pair)
	w.Bool(a.IncOnError)
	w.Bool(a.MayReturnNull)
	w.Bool(a.HasDecArg)
	w.Int(a.DecArgObj)
	w.Bool(a.MayFree)
	w.String(a.Struct)
	w.Bool(a.Discovered)
}

func decodeAPI(r *bincodec.Reader) *apidb.API {
	if !r.Bool() {
		return nil
	}
	a := apidb.API{
		Name:          r.InternString(),
		Op:            apidb.Op(r.U8()),
		Class:         apidb.Class(r.U8()),
		ObjArg:        r.Int(),
		ReturnsRef:    r.Bool(),
		Pair:          r.InternString(),
		IncOnError:    r.Bool(),
		MayReturnNull: r.Bool(),
		HasDecArg:     r.Bool(),
		DecArgObj:     r.Int(),
		MayFree:       r.Bool(),
		Struct:        r.InternString(),
		Discovered:    r.Bool(),
	}
	if a.Op > apidb.OpDec || a.Class > apidb.Embedded {
		r.Fail()
		return nil
	}
	return internAPI(a)
}

// apiIntern shares one *apidb.API per distinct decoded value. Consumers
// treat Event.Info as immutable database metadata, and a unit's events
// repeat a handful of APIs thousands of times, so decoding a fresh struct
// per event was pure allocation churn. The table is process-lifetime and
// bounded by the number of distinct API entries ever decoded.
var apiIntern = struct {
	sync.RWMutex
	m map[apidb.API]*apidb.API
}{m: map[apidb.API]*apidb.API{}}

func internAPI(a apidb.API) *apidb.API {
	apiIntern.RLock()
	p := apiIntern.m[a]
	apiIntern.RUnlock()
	if p != nil {
		return p
	}
	apiIntern.Lock()
	if p = apiIntern.m[a]; p == nil {
		p = &a
		apiIntern.m[a] = p
	}
	apiIntern.Unlock()
	return p
}

// EncodeEvent appends one event (Block excluded by design).
func EncodeEvent(w *bincodec.Writer, ev *Event) {
	w.U8(uint8(ev.Op))
	w.String(ev.Obj)
	w.String(ev.API)
	encodeAPI(w, ev.Info)
	w.String(ev.AssignTarget)
	w.String(ev.EscapesVia)
	w.Strings(ev.NonNullTrue)
	w.Strings(ev.NonNullFalse)
	EncodePos(w, ev.Pos)
	w.String(ev.FromMacro)
}

// DecodeEvent reads an event written by EncodeEvent (Block stays nil).
func DecodeEvent(r *bincodec.Reader) Event {
	ev := Event{
		Op:           OpKind(r.U8()),
		Obj:          r.InternString(),
		API:          r.InternString(),
		Info:         decodeAPI(r),
		AssignTarget: r.InternString(),
		EscapesVia:   r.InternString(),
		NonNullTrue:  r.Strings(),
		NonNullFalse: r.Strings(),
		Pos:          DecodePos(r),
		FromMacro:    r.InternString(),
	}
	if ev.Op > OpCond {
		r.Fail()
	}
	return ev
}

// EncodeEvents appends a count-prefixed event slice.
func EncodeEvents(w *bincodec.Writer, evs []Event) {
	w.U32(uint32(len(evs)))
	for i := range evs {
		EncodeEvent(w, &evs[i])
	}
}

// DecodeEvents reads a slice written by EncodeEvents, nil when empty.
func DecodeEvents(r *bincodec.Reader) []Event {
	n := r.Count()
	if n == 0 {
		return nil
	}
	out := make([]Event, n)
	for i := range out {
		out[i] = DecodeEvent(r)
	}
	return out
}
