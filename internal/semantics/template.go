package semantics

import (
	"strings"

	"repro/internal/apidb"
	"repro/internal/cfg"
)

// Binding carries the object variable shared by a template's steps (the
// paper's p0 in S_P(p0) → S_D(p0)).
type Binding struct {
	Obj string
}

// Step is one element of a path template: either an event matcher or a block
// (context) matcher such as B_error.
type Step struct {
	Name string
	// Event matches one event; at most one of Event/Block is set. bind is
	// shared along the whole match attempt.
	Event func(ev Event, bind *Binding) bool
	// Block matches a basic block on the path (a context like B_error).
	Block func(b *cfg.Block) bool
}

// Template is an anti-pattern written as an ordered path template
// F_start → step₁ → … → stepₙ → F_end, optionally with a forbidden event
// class: a candidate path is a match only if no event matching Forbidden
// occurs after step ForbiddenAfter (0-based step index).
type Template struct {
	Name           string
	Steps          []Step
	Forbidden      func(ev Event, bind *Binding) bool
	ForbiddenAfter int
}

// Match is one instance of a template on one path.
type Match struct {
	Template *Template
	Path     cfg.Path
	Events   []Event // the event matched by each event-step, in order
	Binding  Binding
}

// String renders the template in the paper's arrow notation.
func (t *Template) String() string {
	parts := []string{"F_start"}
	for _, s := range t.Steps {
		parts = append(parts, s.Name)
	}
	parts = append(parts, "F_end")
	return strings.Join(parts, " -> ")
}

// pathItem linearizes a path: block boundaries interleaved with events.
type pathItem struct {
	block *cfg.Block // non-nil for block items
	event *Event     // non-nil for event items
}

func linearize(fe *FuncEvents, p cfg.Path) []pathItem {
	var items []pathItem
	for _, b := range p {
		items = append(items, pathItem{block: b})
		evs := fe.ByBlok[b]
		for i := range evs {
			items = append(items, pathItem{event: &evs[i]})
		}
	}
	return items
}

// MatchTemplate finds instances of t in the function's bounded path set.
// Matches with identical (first event position, binding) pairs are deduped
// across paths. maxPaths <= 0 uses the cfg default.
func MatchTemplate(fe *FuncEvents, t *Template, maxPaths int) []Match {
	var out []Match
	seen := map[string]bool{}
	for _, p := range fe.Graph.Paths(maxPaths) {
		items := linearize(fe, p)
		var results []matchState
		match(items, t, 0, 0, Binding{}, nil, &results)
		for _, st := range results {
			if t.Forbidden != nil && violates(items, t, st) {
				continue
			}
			key := matchKey(st)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, Match{
				Template: t, Path: p, Events: st.events, Binding: st.bind,
			})
		}
	}
	return out
}

type matchState struct {
	events    []Event
	bind      Binding
	stepEnds  []int // item index right after each matched step
	itemCount int
}

func matchKey(st matchState) string {
	var b strings.Builder
	for _, ev := range st.events {
		b.WriteString(ev.Pos.String())
		b.WriteByte('|')
	}
	b.WriteString(st.bind.Obj)
	return b.String()
}

// match explores item/step alignments with backtracking; every complete
// alignment is recorded (bounded: one result per distinct first alignment is
// enough, but full enumeration stays cheap on block-sized paths).
func match(items []pathItem, t *Template, item, step int, bind Binding, evs []Event, results *[]matchState) {
	if step == len(t.Steps) {
		*results = append(*results, matchState{
			events: append([]Event(nil), evs...), bind: bind,
			stepEnds: nil, itemCount: item,
		})
		return
	}
	if len(*results) >= 64 { // plenty for checker purposes
		return
	}
	s := t.Steps[step]
	for i := item; i < len(items); i++ {
		it := items[i]
		if s.Block != nil && it.block != nil && s.Block(it.block) {
			match(items, t, i+1, step+1, bind, evs, results)
		}
		if s.Event != nil && it.event != nil {
			b2 := bind
			if s.Event(*it.event, &b2) {
				match(items, t, i+1, step+1, b2, append(evs, *it.event), results)
			}
		}
	}
}

// violates reports whether a forbidden event occurs after the configured
// step on the matched path. Because match does not retain per-step item
// indexes (kept lean), the forbidden scan runs over the whole item list when
// ForbiddenAfter == 0, else from the position of the N-th matched event.
func violates(items []pathItem, t *Template, st matchState) bool {
	startPos := 0
	if t.ForbiddenAfter > 0 && t.ForbiddenAfter <= len(st.events) {
		// Find the item index of the ForbiddenAfter-th matched event.
		target := st.events[t.ForbiddenAfter-1]
		for i, it := range items {
			if it.event != nil && it.event.Pos == target.Pos && it.event.Op == target.Op {
				startPos = i + 1
				break
			}
		}
	}
	for _, it := range items[startPos:] {
		if it.event != nil && t.Forbidden(*it.event, &st.bind) {
			return true
		}
	}
	return false
}

// --- step constructors (the paper's operator/context vocabulary) ---

// IncStep matches 𝒢 events, optionally filtered by API properties, binding
// the object when bind is set.
func IncStep(name string, filter func(*apidb.API) bool, bind bool) Step {
	return Step{Name: name, Event: func(ev Event, b *Binding) bool {
		if ev.Op != OpInc {
			return false
		}
		if filter != nil && !filter(ev.Info) {
			return false
		}
		if bind {
			if b.Obj == "" {
				b.Obj = ev.Obj
			} else if b.Obj != ev.Obj {
				return false
			}
		}
		return true
	}}
}

// DecStep matches 𝒫 events, binding/checking the shared object when bind is
// set.
func DecStep(name string, bind bool) Step {
	return Step{Name: name, Event: func(ev Event, b *Binding) bool {
		if ev.Op != OpDec {
			return false
		}
		if bind {
			if b.Obj == "" {
				b.Obj = ev.Obj
			} else if b.Obj != ev.Obj {
				return false
			}
		}
		return true
	}}
}

// DerefStep matches 𝒟 events on the bound object (comparing against the
// object key's base identifier).
func DerefStep(name string) Step {
	return Step{Name: name, Event: func(ev Event, b *Binding) bool {
		if ev.Op != OpDeref {
			return false
		}
		return b.Obj != "" && BaseOf(b.Obj) == ev.Obj
	}}
}

// FreeStep matches a direct kfree-family call on the bound object (𝒮_free).
func FreeStep(name string) Step {
	return Step{Name: name, Event: func(ev Event, b *Binding) bool {
		if ev.Op != OpFree {
			return false
		}
		return b.Obj != "" && (ev.Obj == b.Obj || BaseOf(ev.Obj) == BaseOf(b.Obj))
	}}
}

// BreakStep matches a break statement not injected by a macro (user-written
// early exit, P3).
func BreakStep(name string) Step {
	return Step{Name: name, Event: func(ev Event, b *Binding) bool {
		return ev.Op == OpBreak && ev.FromMacro == ""
	}}
}

// ErrorBlockStep matches the B_error context.
func ErrorBlockStep() Step {
	return Step{Name: "B_error", Block: func(b *cfg.Block) bool { return b.IsError }}
}

// SmartLoopStep matches a loop-head block generated by the named macro class
// (M_SL); any registered smartloop matches when loops is nil.
func SmartLoopStep(isLoop func(macro string) bool) Step {
	return Step{Name: "M_SL", Block: func(b *cfg.Block) bool {
		return b.LoopHead && b.FromMacro != "" && (isLoop == nil || isLoop(b.FromMacro))
	}}
}

// ForbidDecOf returns a Forbidden matcher rejecting paths that decrement the
// bound object (used by leak templates: the bug is the *absence* of 𝒫).
func ForbidDecOf() func(Event, *Binding) bool {
	return func(ev Event, b *Binding) bool {
		if ev.Op != OpDec {
			return false
		}
		if b.Obj == "" {
			// Unbound object (dropped reference): any put of the same API
			// family would be coincidental; only an explicit put of an
			// empty key matches.
			return ev.Obj == ""
		}
		return ev.Obj == b.Obj || BaseOf(ev.Obj) == BaseOf(b.Obj)
	}
}
