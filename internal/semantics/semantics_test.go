package semantics

import (
	"strings"
	"testing"

	"repro/internal/apidb"
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/cparse"
	"repro/internal/cpp"
)

func extract(t *testing.T, src, fn string) *FuncEvents {
	t.Helper()
	pp := cpp.New(nil)
	res := pp.Process("t.c", src)
	for _, e := range res.Errors {
		t.Fatalf("cpp: %v", e)
	}
	f, errs := cparse.ParseFile("t.c", res.Tokens)
	for _, e := range errs {
		t.Fatalf("parse: %v", e)
	}
	globals := map[string]bool{}
	for _, d := range f.Decls {
		if vd, ok := d.(*cast.VarDecl); ok {
			globals[vd.Name] = true
		}
	}
	x := &Extractor{DB: apidb.New(), GlobalNames: globals}
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDef); ok && fd.Name == fn {
			g := cfg.Build(fd)
			if g == nil {
				t.Fatalf("no body for %s", fn)
			}
			return x.Extract(g)
		}
	}
	t.Fatalf("function %s not found", fn)
	return nil
}

func allEvents(fe *FuncEvents) []Event {
	var out []Event
	for _, b := range fe.Graph.Blocks {
		out = append(out, fe.ByBlok[b]...)
	}
	return out
}

func countOp(evs []Event, op OpKind) int {
	n := 0
	for _, e := range evs {
		if e.Op == op {
			n++
		}
	}
	return n
}

func findOp(evs []Event, op OpKind) *Event {
	for i := range evs {
		if evs[i].Op == op {
			return &evs[i]
		}
	}
	return nil
}

func TestIncDecEvents(t *testing.T) {
	fe := extract(t, `
void f(struct device_node *np)
{
	of_node_get(np);
	of_node_put(np);
}`, "f")
	evs := allEvents(fe)
	if countOp(evs, OpInc) != 1 || countOp(evs, OpDec) != 1 {
		t.Fatalf("events = %s", EventsString(evs))
	}
	inc := findOp(evs, OpInc)
	if inc.Obj != "np" || inc.API != "of_node_get" {
		t.Errorf("inc = %+v", inc)
	}
}

func TestReturnsRefBindsToTarget(t *testing.T) {
	fe := extract(t, `
void f(void)
{
	struct device_node *np = of_find_node_by_path("/cpus");
	of_node_put(np);
}`, "f")
	evs := allEvents(fe)
	inc := findOp(evs, OpInc)
	if inc == nil || inc.Obj != "np" || inc.API != "of_find_node_by_path" {
		t.Fatalf("inc = %+v, events = %s", inc, EventsString(evs))
	}
	if countOp(evs, OpInc) != 1 {
		t.Fatalf("double-counted inc: %s", EventsString(evs))
	}
}

func TestAssignmentBindInsideCondition(t *testing.T) {
	fe := extract(t, `
void f(void)
{
	struct device_node *np;
	if ((np = of_get_parent(root)))
		of_node_put(np);
}`, "f")
	evs := allEvents(fe)
	inc := findOp(evs, OpInc)
	if inc == nil || inc.Obj != "np" {
		t.Fatalf("inc = %+v events=%s", inc, EventsString(evs))
	}
}

func TestDiscardedRefEvent(t *testing.T) {
	fe := extract(t, `
void f(void)
{
	of_find_node_by_path("/x");
}`, "f")
	evs := allEvents(fe)
	inc := findOp(evs, OpInc)
	if inc == nil || inc.Obj != "" {
		t.Fatalf("inc = %+v", inc)
	}
}

func TestHiddenCursorPut(t *testing.T) {
	// of_find_matching_node puts its from argument (hidden 𝒫).
	fe := extract(t, `
void f(struct device_node *from)
{
	struct device_node *np = of_find_matching_node(from, matches);
	of_node_put(np);
}`, "f")
	evs := allEvents(fe)
	dec := findOp(evs, OpDec)
	if dec == nil || dec.Obj != "from" || dec.API != "of_find_matching_node" {
		t.Fatalf("hidden dec = %+v events=%s", dec, EventsString(evs))
	}
	if countOp(evs, OpDec) != 2 { // hidden + explicit put
		t.Fatalf("events = %s", EventsString(evs))
	}
}

func TestHiddenCursorPutSkipsNull(t *testing.T) {
	fe := extract(t, `
void f(void)
{
	struct device_node *np = of_find_matching_node(NULL, matches);
	of_node_put(np);
}`, "f")
	evs := allEvents(fe)
	// Only the explicit of_node_put counts; NULL cursor is not decremented.
	if countOp(evs, OpDec) != 1 {
		t.Fatalf("events = %s", EventsString(evs))
	}
}

func TestDerefEvents(t *testing.T) {
	fe := extract(t, `
void f(struct sock *sk)
{
	sock_put(sk);
	sk->inet_num = 0;
	use(*sk);
}`, "f")
	evs := allEvents(fe)
	if countOp(evs, OpDeref) < 2 {
		t.Fatalf("events = %s", EventsString(evs))
	}
	d := findOp(evs, OpDeref)
	if d.Obj != "sk" {
		t.Errorf("deref obj = %q", d.Obj)
	}
}

func TestLockUnlockEvents(t *testing.T) {
	fe := extract(t, `
void f(struct usb_serial *serial)
{
	mutex_lock(&serial->disc_mutex);
	usb_serial_put(serial);
	mutex_unlock(&serial->disc_mutex);
}`, "f")
	evs := allEvents(fe)
	if countOp(evs, OpLock) != 1 || countOp(evs, OpUnlock) != 1 {
		t.Fatalf("events = %s", EventsString(evs))
	}
	l := findOp(evs, OpLock)
	if l.Obj != "serial->disc_mutex" {
		t.Errorf("lock obj = %q", l.Obj)
	}
}

func TestFreeEvents(t *testing.T) {
	fe := extract(t, `
void f(struct foo *p)
{
	kfree(p);
	kmem_cache_free(cache, p);
}`, "f")
	evs := allEvents(fe)
	if countOp(evs, OpFree) != 2 {
		t.Fatalf("events = %s", EventsString(evs))
	}
	for _, ev := range evs {
		if ev.Op == OpFree && ev.Obj != "p" {
			t.Errorf("free obj = %q", ev.Obj)
		}
	}
}

func TestKeyCanonicalization(t *testing.T) {
	fe := extract(t, `
void f(struct foo_dev *d)
{
	kref_get(&d->ref);
	kref_put(&d->ref);
}`, "f")
	evs := allEvents(fe)
	inc, dec := findOp(evs, OpInc), findOp(evs, OpDec)
	if inc.Obj != "d->ref" || dec.Obj != "d->ref" {
		t.Fatalf("keys: inc=%q dec=%q", inc.Obj, dec.Obj)
	}
}

func TestEscapeClassification(t *testing.T) {
	fe := extract(t, `
struct foo *global_ref;
void f(struct bar *out, struct foo *p)
{
	struct foo *local;
	local = p;
	global_ref = p;
	out->ref = p;
}`, "f")
	evs := allEvents(fe)
	var classes []string
	for _, ev := range evs {
		if ev.Op == OpAssign {
			classes = append(classes, ev.EscapesVia)
		}
	}
	want := []string{"", "global", "outparam"}
	if strings.Join(classes, ",") != strings.Join(want, ",") {
		t.Fatalf("classes = %v, want %v (events %s)", classes, want, EventsString(evs))
	}
}

func TestCondEventNullFacts(t *testing.T) {
	fe := extract(t, `
void f(void)
{
	struct mdesc_handle *hp = mdesc_grab();
	if (!hp)
		return;
	use(hp->node);
}`, "f")
	evs := allEvents(fe)
	var cond *Event
	for i := range evs {
		if evs[i].Op == OpCond {
			cond = &evs[i]
		}
	}
	if cond == nil {
		t.Fatalf("no cond event: %s", EventsString(evs))
	}
	if len(cond.NonNullFalse) != 1 || cond.NonNullFalse[0] != "hp" {
		t.Errorf("cond facts = %+v", cond)
	}
}

func TestBaseOf(t *testing.T) {
	cases := map[string]string{
		"np": "np", "crc->dev": "crc", "a.b": "a", "arr[0]": "arr",
		"d->ref": "d",
	}
	for k, want := range cases {
		if got := BaseOf(k); got != want {
			t.Errorf("BaseOf(%q) = %q, want %q", k, got, want)
		}
	}
}

// --- template matching (Table 1) ---

func TestTemplateListing1(t *testing.T) {
	// F_start → S_G → B_error → F_end with no balancing 𝒫: the paper's
	// description of Listing 1.
	tpl := &Template{
		Name: "listing1",
		Steps: []Step{
			IncStep("S_G", func(a *apidb.API) bool { return a != nil && a.ReturnsRef }, true),
			ErrorBlockStep(),
		},
		Forbidden: ForbidDecOf(),
	}
	buggy := `
void f(void)
{
	int err;
	struct device *dev = bus_find_device(bus);
	err = check(dev);
	if (err)
		return;
	put_device(dev);
}`
	fe := extract(t, buggy, "f")
	matches := MatchTemplate(fe, tpl, 0)
	if len(matches) != 1 {
		t.Fatalf("buggy: matches = %d", len(matches))
	}
	if matches[0].Binding.Obj != "dev" {
		t.Errorf("binding = %+v", matches[0].Binding)
	}

	fixed := `
void f(void)
{
	int err;
	struct device *dev = bus_find_device(bus);
	err = check(dev);
	if (err) {
		put_device(dev);
		return;
	}
	put_device(dev);
}`
	fe = extract(t, fixed, "f")
	if got := MatchTemplate(fe, tpl, 0); len(got) != 0 {
		t.Fatalf("fixed: matches = %d", len(got))
	}
}

func TestTemplateListing2UAD(t *testing.T) {
	// F_start → S_P(p0) → S_{U∘D(p0)} → F_end: dereference after put.
	tpl := &Template{
		Name: "listing2",
		Steps: []Step{
			DecStep("S_P(p0)", true),
			DerefStep("S_D(p0)"),
		},
	}
	buggy := `
void usb_console_setup(struct usb_serial *serial)
{
	usb_serial_put(serial);
	mutex_unlock(&serial->disc_mutex);
}`
	fe := extract(t, buggy, "usb_console_setup")
	matches := MatchTemplate(fe, tpl, 0)
	if len(matches) == 0 {
		t.Fatal("UAD not matched")
	}
	if matches[0].Binding.Obj != "serial" {
		t.Errorf("binding = %+v", matches[0].Binding)
	}

	fixed := `
void usb_console_setup(struct usb_serial *serial)
{
	mutex_unlock(&serial->disc_mutex);
	usb_serial_put(serial);
}`
	fe = extract(t, fixed, "usb_console_setup")
	if got := MatchTemplate(fe, tpl, 0); len(got) != 0 {
		t.Fatalf("fixed: matches = %d", len(got))
	}
}

func TestTemplateSmartLoopBreak(t *testing.T) {
	// F_start → M_SL → S_break → F_end (P3), forbidding a put of the loop
	// variable after the break.
	src := `
#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
int probe(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (cond)
			break;
	}
	return 0;
}`
	tpl := &Template{
		Name: "P3",
		Steps: []Step{
			SmartLoopStep(nil),
			BreakStep("S_break"),
		},
		Forbidden: func(ev Event, b *Binding) bool { return ev.Op == OpDec },
	}
	fe := extract(t, src, "probe")
	matches := MatchTemplate(fe, tpl, 0)
	if len(matches) == 0 {
		t.Fatal("smartloop break not matched")
	}

	fixedSrc := strings.Replace(src, "break;", "{ of_node_put(dn); break; }", 1)
	// Note: replacing inside the if shorthand requires braces; rebuild.
	fixedSrc = strings.Replace(`
#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
int probe(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (cond) {
			of_node_put(dn);
			break;
		}
	}
	return 0;
}`, "@", "", 1)
	fe = extract(t, fixedSrc, "probe")
	if got := MatchTemplate(fe, tpl, 0); len(got) != 0 {
		t.Fatalf("fixed: matches = %d", len(got))
	}
}

func TestTemplateString(t *testing.T) {
	tpl := &Template{Name: "x", Steps: []Step{
		IncStep("S_G", nil, false), ErrorBlockStep(),
	}}
	if got := tpl.String(); got != "F_start -> S_G -> B_error -> F_end" {
		t.Errorf("String = %q", got)
	}
}

func TestTemplateFreeStep(t *testing.T) {
	tpl := &Template{
		Name: "P7",
		Steps: []Step{
			IncStep("S_G", nil, true),
			FreeStep("S_free"),
		},
	}
	fe := extract(t, `
void f(struct foo_dev *d)
{
	kref_get(&d->ref);
	kfree(d);
}`, "f")
	if got := MatchTemplate(fe, tpl, 0); len(got) != 1 {
		t.Fatalf("matches = %d", len(got))
	}
}

func TestMatchDedupAcrossPaths(t *testing.T) {
	// The same inc flows into two paths; the match must be reported once.
	tpl := &Template{
		Name:  "inc",
		Steps: []Step{IncStep("S_G", nil, true)},
	}
	fe := extract(t, `
void f(struct device_node *np, int x)
{
	of_node_get(np);
	if (x)
		a();
	else
		b();
}`, "f")
	if got := MatchTemplate(fe, tpl, 0); len(got) != 1 {
		t.Fatalf("matches = %d", len(got))
	}
}
