package semantics

import "repro/internal/apidb"

// AntiPatterns returns the paper's nine anti-patterns expressed in the
// semantic-template language, keyed by their identifier ("P1".."P9").
//
// The production checkers in internal/core add flow-sensitive refinements
// (balance counting, branch-direction NULL facts, innermost-loop
// attribution) on top of these path shapes; the templates here are the
// faithful §5 formulations, used for documentation, tests, and quick
// template-only scans. P6 is inherently two-function (F⊤ ∧ F⊥) and cannot
// be a single-path template; its entry is nil by design.
func AntiPatterns(db *apidb.DB) map[string]*Template {
	isLoop := func(macro string) bool { return db.Loop(macro) != nil }
	return map[string]*Template{
		// P1: F_start → S_{G_E} → B_error → F_end
		"P1": {
			Name: "P1 return-error deviation",
			Steps: []Step{
				IncStep("S_G_E", func(a *apidb.API) bool { return a != nil && a.IncOnError }, true),
				ErrorBlockStep(),
			},
			Forbidden:      ForbidDecOf(),
			ForbiddenAfter: 1,
		},
		// P2: F_start → S_{G_N} → S_{D_N} → F_end
		"P2": {
			Name: "P2 return-NULL deviation",
			Steps: []Step{
				IncStep("S_G_N", func(a *apidb.API) bool { return a != nil && a.MayReturnNull }, true),
				DerefStep("S_D_N"),
			},
		},
		// P3: F_start → M_SL → S_break → F_end
		"P3": {
			Name: "P3 smartloop break",
			Steps: []Step{
				SmartLoopStep(isLoop),
				BreakStep("S_break"),
			},
			Forbidden: func(ev Event, b *Binding) bool { return ev.Op == OpDec },
		},
		// P4: F_start → S_{G_H|P_H} → F_end
		"P4": {
			Name: "P4 hidden refcounting",
			Steps: []Step{
				IncStep("S_G_H", func(a *apidb.API) bool {
					return a != nil && a.ReturnsRef && a.Class == apidb.Embedded
				}, true),
			},
			Forbidden:      ForbidDecOf(),
			ForbiddenAfter: 1,
		},
		// P5: F_start → S_G → S_P|B_error → F_end (the buggy instance is
		// the error-block path without the put).
		"P5": {
			Name: "P5 overlooked error path",
			Steps: []Step{
				IncStep("S_G", func(a *apidb.API) bool { return a != nil && !a.IncOnError }, true),
				ErrorBlockStep(),
			},
			Forbidden:      ForbidDecOf(),
			ForbiddenAfter: 1,
		},
		// P6 spans two functions; see core.InterPairedChecker.
		"P6": nil,
		// P7: F_start → S_G → S_free → F_end
		"P7": {
			Name: "P7 direct free",
			Steps: []Step{
				IncStep("S_G", nil, true),
				FreeStep("S_free"),
			},
		},
		// P8: F_start → S_{P(p0)} → S_{D(p0)} → F_end
		"P8": {
			Name: "P8 use-after-decrease",
			Steps: []Step{
				DecStep("S_P(p0)", true),
				DerefStep("S_D(p0)"),
			},
		},
		// P9: F_start → S_{A_{G|O}} → F_end
		"P9": {
			Name: "P9 reference escape",
			Steps: []Step{
				{Name: "S_A_G|O", Event: func(ev Event, b *Binding) bool {
					if ev.Op != OpAssign || ev.EscapesVia == "" {
						return false
					}
					if b.Obj == "" {
						b.Obj = ev.Obj
					}
					return true
				}},
			},
			Forbidden: func(ev Event, b *Binding) bool {
				return ev.Op == OpInc && ev.Obj != "" && b.Obj != "" &&
					BaseOf(ev.Obj) == BaseOf(b.Obj)
			},
		},
	}
}
