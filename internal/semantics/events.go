// Package semantics implements the paper's semantic-template layer (§3.2).
//
// It projects each function's CFG into a stream of semantic events — the
// paper's operators 𝒢 (increment), 𝒫 (decrement), 𝒜 (assignment),
// 𝒟 (dereference), ℒ/𝒰 (lock/unlock) plus Free, Return, Break and branch
// conditions — and provides a path-template matcher so anti-patterns can be
// written exactly as in Table 1, e.g.
//
//	F_start → S_G → B_error → F_end
//
// The event extractor is shared by every checker in internal/core.
package semantics

import (
	"strings"

	"repro/internal/apidb"
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/clex"
)

// OpKind is the semantic operator of an event.
type OpKind int

// Operators. Inc/Dec are 𝒢/𝒫; Assign is 𝒜; Deref is 𝒟; Lock/Unlock are
// ℒ/𝒰. The remainder give templates access to control context.
const (
	OpInc OpKind = iota
	OpDec
	OpAssign
	OpDeref
	OpLock
	OpUnlock
	OpFree
	OpCall // any other call, for completeness
	OpReturn
	OpBreak
	OpCond
)

var opNames = map[OpKind]string{
	OpInc: "G", OpDec: "P", OpAssign: "A", OpDeref: "D",
	OpLock: "L", OpUnlock: "U", OpFree: "Free", OpCall: "Call",
	OpReturn: "Return", OpBreak: "Break", OpCond: "Cond",
}

// String returns the paper's operator letter where one exists.
func (k OpKind) String() string { return opNames[k] }

// Event is one semantic operation observed in a function.
type Event struct {
	Op  OpKind
	Obj string // canonical object key ("" when not object-directed)

	// API is the callee name for call-derived events; the apidb entry is
	// attached for refcounting calls.
	API  string
	Info *apidb.API

	// Assignment metadata (escape analysis, P9).
	AssignTarget string // canonical key of the assignment target
	EscapesVia   string // "global", "outparam" or "" for local assigns

	// Cond metadata (P2): names known non-NULL on the true / false branch.
	NonNullTrue  []string
	NonNullFalse []string

	Pos       clex.Pos
	Block     *cfg.Block
	FromMacro string // outermost macro that injected the event, or ""
}

// FuncEvents is the event view of one function.
type FuncEvents struct {
	Graph  *cfg.Graph
	ByBlok map[*cfg.Block][]Event
}

// Extractor converts CFGs into events using an API knowledge base.
type Extractor struct {
	DB *apidb.DB
	// GlobalNames are file/global-scope variable names (escape targets).
	GlobalNames map[string]bool
}

// lockAPIs maps lock/unlock callees to their operator.
var lockAPIs = map[string]OpKind{
	"mutex_lock": OpLock, "mutex_unlock": OpUnlock,
	"mutex_lock_interruptible": OpLock,
	"spin_lock":                OpLock, "spin_unlock": OpUnlock,
	"spin_lock_irq": OpLock, "spin_unlock_irq": OpUnlock,
	"spin_lock_irqsave": OpLock, "spin_unlock_irqrestore": OpUnlock,
	"read_lock": OpLock, "read_unlock": OpUnlock,
	"write_lock": OpLock, "write_unlock": OpUnlock,
	"rcu_read_lock": OpLock, "rcu_read_unlock": OpUnlock,
	"down": OpLock, "up": OpUnlock,
}

// freeAPIs are direct deallocation functions (𝒮_free in P7). The value is
// the argument index holding the freed object.
var freeAPIs = map[string]int{
	"kfree": 0, "kvfree": 0, "vfree": 0, "kfree_sensitive": 0,
	"kzfree": 0, "kmem_cache_free": 1, "devm_kfree": 1,
}

// Extract computes the event view of g.
func (x *Extractor) Extract(g *cfg.Graph) *FuncEvents {
	fe := &FuncEvents{
		Graph:  g,
		ByBlok: make(map[*cfg.Block][]Event, len(g.Blocks)),
	}
	// Per-block event slices are carved as capacity-bounded windows of a
	// call-local chunk (the Extractor itself is shared across workers, so
	// the scratch cannot live on it). A block that outgrows its window
	// migrates to its own heap slice via the ordinary append realloc; the
	// window bytes it abandoned are wasted, not corrupted, because a window
	// can never grow past its own capacity in place.
	const evWindowCap, evChunkLen = 4, 16
	var chunk []Event
	for _, b := range g.Blocks {
		if cap(chunk)-len(chunk) < evWindowCap {
			chunk = make([]Event, 0, evChunkLen)
		}
		off := len(chunk)
		evs := chunk[off : off : off+evWindowCap]
		for _, s := range b.Stmts {
			evs = x.stmtEvents(evs, fe, b, s)
		}
		if len(evs) > 0 {
			fe.ByBlok[b] = evs
			if len(evs) <= evWindowCap {
				chunk = chunk[:off+len(evs)]
			}
		}
	}
	return fe
}

// Key canonicalizes an object expression: parens and a leading & are
// stripped so kref_put(&d->ref) and d->ref agree.
func Key(e cast.Expr) string {
	for {
		switch v := e.(type) {
		case *cast.ParenExpr:
			e = v.X
			continue
		case *cast.UnaryExpr:
			if v.Op == clex.Amp {
				e = v.X
				continue
			}
		case *cast.CastExpr:
			e = v.X
			continue
		}
		break
	}
	return cast.ExprString(e)
}

// BaseOf returns the root identifier name of an object key's expression, or
// the key itself when it is a bare name.
func BaseOf(key string) string {
	for i := 0; i < len(key); i++ {
		switch key[i] {
		case '-', '.', '[', '(':
			return key[:i]
		}
	}
	return key
}

// BranchTaken resolves a condition event against the successor block a path
// actually takes: +1 when the path follows the true branch, -1 for the false
// branch, 0 when unresolvable (path ends at the block, or it has no
// successors). next is the block following the event's block on the path
// (nil at path end), and the event must still carry its Block pointer —
// internal/facts resolves branches at compute time, before it strips blocks
// from the normalized traces. The NULL-duality (`if (!p)` puts p in
// NonNullFalse, so the true branch means p is NULL) is applied by the
// facts-layer accessors over the resolved direction.
func BranchTaken(ev Event, next *cfg.Block) int {
	if next == nil || ev.Block == nil || len(ev.Block.Succs) == 0 {
		return 0
	}
	if next == ev.Block.Succs[0] {
		return 1
	}
	return -1
}

// stmtEvents appends s's events to dst and returns the extended slice. The
// whole extractor family threads one destination buffer this way — the
// per-statement/per-expression intermediate slices used to dominate the
// extraction phase's allocation profile.
func (x *Extractor) stmtEvents(dst []Event, fe *FuncEvents, b *cfg.Block, s cast.Stmt) []Event {
	evs := dst
	origin := s.MacroOrigin()
	fromMacro := ""
	if len(origin) > 0 {
		fromMacro = origin[0]
	}

	switch st := s.(type) {
	case *cast.DeclStmt:
		if st.Init != nil {
			evs = x.exprEvents(evs, fe, b, st.Init, fromMacro)
			evs = x.bindEvents(evs, fe, b, st.Name, st.Init, st.Pos(), fromMacro, true)
		}
		return evs
	case *cast.ExprStmt:
		evs = x.exprEvents(evs, fe, b, st.X, fromMacro)
		evs = x.stmtBindEvents(evs, fe, b, st.X, fromMacro)
		// A ref-returning call whose result is discarded: the reference
		// is produced and immediately dropped (P4 flags it).
		if c, ok := unparen(st.X).(*cast.CallExpr); ok {
			if a := x.DB.Lookup(c.Callee()); a != nil && a.Op == apidb.OpInc && a.ReturnsRef {
				ev := Event{Op: OpInc, Obj: "", API: c.Callee(), Info: a,
					Pos: c.Pos(), Block: b, FromMacro: fromMacro}
				if fm := outermost(c.Origin); fm != "" {
					ev.FromMacro = fm
				}
				evs = append(evs, ev)
			}
		}
		return evs
	case *cast.ReturnStmt:
		if st.Value != nil {
			evs = x.exprEvents(evs, fe, b, st.Value, fromMacro)
		}
		obj := ""
		if st.Value != nil {
			obj = Key(st.Value)
		}
		evs = append(evs, Event{Op: OpReturn, Obj: obj, Pos: st.Pos(), Block: b, FromMacro: fromMacro})
		return evs
	case *cast.BreakStmt:
		return append(evs, Event{Op: OpBreak, Pos: st.Pos(), Block: b, FromMacro: fromMacro})
	case *cast.CondStmt:
		evs = x.exprEvents(evs, fe, b, st.X, fromMacro)
		evs = x.stmtBindEvents(evs, fe, b, st.X, fromMacro)
		tr, fa := cfg.NullCheckedIdents(st.X)
		evs = append(evs, Event{
			Op: OpCond, Pos: st.Pos(), Block: b, FromMacro: fromMacro,
			NonNullTrue: tr, NonNullFalse: fa,
		})
		return evs
	default:
		return evs
	}
}

// bindEvents classifies `target = rhs`: reference-producing calls become
// Inc events bound to the target; plain pointer copies become Assign events
// with escape classification (P9).
func (x *Extractor) bindEvents(dst []Event, fe *FuncEvents, b *cfg.Block, target string, rhs cast.Expr, pos clex.Pos, fromMacro string, isDecl bool) []Event {
	evs := dst
	switch r := unparen(rhs).(type) {
	case *cast.CallExpr:
		if a := x.DB.Lookup(r.Callee()); a != nil && a.Op == apidb.OpInc && a.ReturnsRef {
			ev := Event{
				Op: OpInc, Obj: target, API: r.Callee(), Info: a,
				Pos: pos, Block: b, FromMacro: fromMacro,
			}
			if fm := outermost(r.Origin); fm != "" {
				ev.FromMacro = fm
			}
			if !isDecl {
				// Binding the new reference straight into a global or an
				// out-parameter stores it in long-lived state.
				ev.EscapesVia = x.escapeClass(fe, target)
			}
			evs = append(evs, ev)
		}
	case *cast.Ident, *cast.MemberExpr, *cast.UnaryExpr, *cast.CastExpr:
		if !isObjExpr(rhs) {
			break // literals and arithmetic are not reference copies
		}
		src := Key(rhs)
		ev := Event{
			Op: OpAssign, Obj: src, AssignTarget: target,
			Pos: pos, Block: b, FromMacro: fromMacro,
		}
		if !isDecl {
			ev.EscapesVia = x.escapeClass(fe, target)
		}
		evs = append(evs, ev)
	}
	return evs
}

// isObjExpr reports whether the expression denotes an object reference (an
// identifier-rooted lvalue, possibly through &, * or casts) rather than a
// literal or arithmetic value.
func isObjExpr(e cast.Expr) bool {
	switch v := e.(type) {
	case *cast.Ident:
		return v.Name != "NULL"
	case *cast.MemberExpr, *cast.IndexExpr:
		return cast.BaseIdent(e) != nil
	case *cast.ParenExpr:
		return isObjExpr(v.X)
	case *cast.CastExpr:
		return isObjExpr(v.X)
	case *cast.UnaryExpr:
		if v.Op == clex.Amp || v.Op == clex.Star {
			return isObjExpr(v.X)
		}
	}
	return false
}

// stmtBindEvents finds assignments at any depth of a statement expression
// (including inside conditions, `if ((np = of_find(...)))`) and classifies
// each via bindEvents.
func (x *Extractor) stmtBindEvents(dst []Event, fe *FuncEvents, b *cfg.Block, e cast.Expr, fromMacro string) []Event {
	evs := dst
	cast.Walk(e, func(n cast.Node) bool {
		if a, ok := n.(*cast.AssignExpr); ok && a.Op == clex.Assign {
			evs = x.bindEvents(evs, fe, b, Key(a.LHS), a.RHS, a.Pos(), fromMacro, false)
		}
		return true
	})
	return evs
}

// escapeClass classifies an assignment target: writing through a global or
// an output parameter lets the reference escape the function (P9).
func (x *Extractor) escapeClass(fe *FuncEvents, target string) string {
	base := BaseOf(target)
	if x.GlobalNames[base] {
		return "global"
	}
	for _, p := range fe.Graph.Fn.Params {
		if p.Name == base && base != target {
			// Writing through a parameter (param->field = p, *out = p):
			// the reference escapes to the caller.
			return "outparam"
		}
	}
	return ""
}

// exprEvents walks an expression tree in *evaluation order*, yielding call
// events (Inc/Dec/Lock/Unlock/Free/Call) and dereference events. Evaluation
// order matters: the dereference inside kref_put(&d->ref)'s own argument
// happens before the put and must not read as a use-after-decrease (P8).
func (x *Extractor) exprEvents(dst []Event, fe *FuncEvents, b *cfg.Block, e cast.Expr, fromMacro string) []Event {
	evs := dst
	deref := func(inner cast.Expr, pos clex.Pos) {
		if base := cast.BaseIdent(inner); base != nil {
			evs = append(evs, Event{
				Op: OpDeref, Obj: base.Name, Pos: pos, Block: b,
				FromMacro: fromMacro,
			})
		}
	}
	var walk func(n cast.Expr)
	walk = func(n cast.Expr) {
		switch v := n.(type) {
		case nil:
		case *cast.CallExpr:
			for _, a := range v.Args {
				walk(a)
			}
			evs = x.callEvents(evs, b, v, fromMacro)
		case *cast.MemberExpr:
			walk(v.X)
			if v.Arrow {
				deref(v.X, v.Pos())
			}
		case *cast.UnaryExpr:
			walk(v.X)
			if v.Op == clex.Star {
				deref(v.X, v.Pos())
			}
		case *cast.BinaryExpr:
			walk(v.X)
			walk(v.Y)
		case *cast.AssignExpr:
			walk(v.RHS)
			walk(v.LHS)
		case *cast.ParenExpr:
			walk(v.X)
		case *cast.IndexExpr:
			walk(v.X)
			walk(v.Index)
		case *cast.CondExpr:
			walk(v.Cond)
			walk(v.Then)
			walk(v.Else)
		case *cast.CastExpr:
			walk(v.X)
		case *cast.CommaExpr:
			walk(v.X)
			walk(v.Y)
		case *cast.SizeofExpr:
			// sizeof does not evaluate its operand.
		case *cast.InitListExpr:
			for _, el := range v.Elems {
				walk(el)
			}
			for _, fi := range v.Fields {
				walk(fi.Value)
			}
		}
	}
	walk(e)
	return evs
}

func (x *Extractor) callEvents(dst []Event, b *cfg.Block, c *cast.CallExpr, fromMacro string) []Event {
	name := c.Callee()
	if name == "" {
		return dst
	}
	if fm := outermost(c.Origin); fm != "" {
		fromMacro = fm
	}
	mk := func(op OpKind, obj string, info *apidb.API) Event {
		return Event{
			Op: op, Obj: obj, API: name, Info: info,
			Pos: c.Pos(), Block: b, FromMacro: fromMacro,
		}
	}
	if op, ok := lockAPIs[name]; ok {
		obj := ""
		if len(c.Args) > 0 {
			obj = Key(c.Args[0])
		}
		return append(dst, mk(op, obj, nil))
	}
	if idx, ok := freeAPIs[name]; ok {
		obj := ""
		if idx < len(c.Args) {
			obj = Key(c.Args[idx])
		}
		return append(dst, mk(OpFree, obj, nil))
	}
	a := x.DB.Lookup(name)
	if a == nil {
		return append(dst, mk(OpCall, "", nil))
	}
	evs := dst
	switch a.Op {
	case apidb.OpInc:
		if a.ObjArg >= 0 && a.ObjArg < len(c.Args) {
			evs = append(evs, mk(OpInc, Key(c.Args[a.ObjArg]), a))
		} else if !a.ReturnsRef {
			evs = append(evs, mk(OpInc, "", a))
		}
		// ReturnsRef increments are bound at statement level (see
		// bindEvents/stmtBindEvents) so the target variable is known.
		// Hidden put of a cursor argument (of_find_*'s `from`).
		if a.HasDecArg && a.DecArgObj >= 0 && a.DecArgObj < len(c.Args) {
			if !isNullArg(c.Args[a.DecArgObj]) {
				dec := mk(OpDec, Key(c.Args[a.DecArgObj]), a)
				dec.API = name
				evs = append(evs, dec)
			}
		}
	case apidb.OpDec:
		obj := ""
		if a.ObjArg >= 0 && a.ObjArg < len(c.Args) {
			obj = Key(c.Args[a.ObjArg])
		} else if len(c.Args) > 0 {
			obj = Key(c.Args[0])
		}
		evs = append(evs, mk(OpDec, obj, a))
	default:
		evs = append(evs, mk(OpCall, "", a))
	}
	return evs
}

func isNullArg(e cast.Expr) bool {
	switch v := unparen(e).(type) {
	case *cast.Lit:
		return v.Text == "0"
	case *cast.Ident:
		return v.Name == "NULL"
	}
	return false
}

func unparen(e cast.Expr) cast.Expr {
	for {
		if p, ok := e.(*cast.ParenExpr); ok {
			e = p.X
			continue
		}
		return e
	}
}

func outermost(origin []string) string {
	if len(origin) == 0 {
		return ""
	}
	return origin[0]
}

// EventsString renders events compactly for tests and debugging:
// "G(np):of_find_matching_node P(from) D(sk) ...".
func EventsString(evs []Event) string {
	parts := make([]string, 0, len(evs))
	for _, ev := range evs {
		s := ev.Op.String()
		if ev.Obj != "" {
			s += "(" + ev.Obj + ")"
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, " ")
}
