package core

import (
	"context"
	"sort"

	"repro/internal/apidb"
	"repro/internal/cpg"
	"repro/internal/facts"
)

// The distributed phase API: Analyze split at its natural barrier.
//
// The pipeline's cross-file dependencies (API discovery, the inter-paired
// callback checker P6, the facts layer) all live *after* the per-file front
// end, so the split is: Partition the corpus, run a DB-independent LocalPass
// per shard in any process, Exchange the shards' discovery observations into
// one global apidb, then run the GlobalPass (assembly + facts + checkers +
// confirmation) against the merged view. Running the four phases in order in
// one process is exactly Analyze's uncached pipeline — BuildContext is
// itself LocalPass+Exchange+Assemble on shared state — so output is
// byte-identical at any shard count. internal/manager drives these phases
// across worker processes.

// Partition splits sources into at most `shards` deterministic, disjoint,
// non-empty shards: sources are sorted by path and dealt round-robin, so the
// partition depends only on the corpus and the shard count, never on
// discovery order or process scheduling. Fewer sources than shards yields
// one shard per source; an empty corpus yields no shards.
func Partition(sources []cpg.Source, shards int) [][]cpg.Source {
	sorted := append([]cpg.Source(nil), sources...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	if shards < 1 {
		shards = 1
	}
	if shards > len(sorted) {
		shards = len(sorted)
	}
	if shards == 0 {
		return nil
	}
	out := make([][]cpg.Source, shards)
	for i, s := range sorted {
		out[i%shards] = append(out[i%shards], s)
	}
	return out
}

// LocalPass runs the shard-local half of the pipeline on one shard:
// preprocess, parse, and extract discovery observations, producing a
// serializable artifact. It is deliberately DB-independent — workers carry
// no discovery state, so they are stateless and interchangeable (any worker
// may process any shard, and a re-queued shard lands wherever). Only
// req.Headers, req.Options.Workers, req.Options.Cache and req.Trace are
// consulted; the cache serves per-file front-end entries (preprocessed
// token streams keyed by content), which is exactly the shard-local,
// DB-independent portion of the tiered cache.
func LocalPass(ctx context.Context, req Request, shard []cpg.Source) (*cpg.ShardArtifact, error) {
	sp := req.Trace.Root().Child("phase:local")
	b := &cpg.Builder{Workers: req.Options.Workers, Cache: req.Options.Cache, Obs: sp}
	if req.Headers != nil {
		b.Headers = newHeaderProvider(req.Headers)
	}
	art := b.BuildArtifactContext(ctx, shard, true)
	sp.End()
	return art, ctx.Err()
}

// Exchange is the manager-side barrier between the local and global halves:
// shard artifacts are merged back into global sorted path order and their
// discovery observations replayed into db, which afterward holds exactly the
// entries a single-process whole-corpus scan would have built (the replay is
// a pure function of the ordered observation sequence; see apidb.Apply). The
// returned artifact and discovery feed GlobalPass, whose Options.DB must be
// this same db.
func Exchange(db *apidb.DB, arts []*cpg.ShardArtifact) (*cpg.ShardArtifact, apidb.Discovery) {
	merged := cpg.MergeShardArtifacts(arts...)
	return merged, db.Apply(merged.Observations())
}

// GlobalPass runs everything after the exchange: assemble the merged
// artifact into a unit (reparsing files that crossed a process boundary),
// compute facts, run the checkers (including cross-file P6), and optionally
// confirm — mirroring Analyze's uncached pipeline phase for phase.
// req.Options.DB must be the DB that Exchange populated; the unit-level
// cache is not consulted (the manager path always computes).
func GlobalPass(ctx context.Context, req Request, merged *cpg.ShardArtifact, disc apidb.Discovery) (*Run, error) {
	opt := req.Options
	engine, err := NewEngineFor(opt.Checkers)
	if err != nil {
		return nil, err
	}
	engine.Workers = opt.Workers

	tr := req.Trace
	root := tr.Root()
	reg := tr.Reg()
	run := &Run{Trace: tr}

	bsp := root.Child("phase:assemble")
	b := &cpg.Builder{DB: opt.DB, Workers: opt.Workers, Obs: bsp}
	u := b.AssembleContext(ctx, merged, &disc)
	bsp.End()
	run.Unit = u
	run.Summary = summarize(u)
	if err := ctx.Err(); err != nil {
		return run, err
	}

	uf := facts.NewUnit(u)
	csp := root.Child("phase:check")
	engine.Obs = csp
	run.Reports = engine.CheckUnitFactsContext(ctx, uf)
	csp.End()
	uf.Observe(reg)
	if err := ctx.Err(); err != nil {
		return run, err
	}
	if opt.Confirm {
		fsp := root.Child("phase:confirm")
		ConfirmReportsSpan(run.Reports, opt.Workers, fsp)
		fsp.End()
	}
	return run, ctx.Err()
}
