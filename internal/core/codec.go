package core

import (
	"repro/internal/bincodec"
	"repro/internal/semantics"
)

// Binary codec for the unit-level cache entry (unitEntry): the run summary
// plus the pre-confirmation report list. Witness events are stored
// blocks-stripped (stripWitnessBlocks runs before Put), so the shared event
// codec applies directly. The impact enum is validated on decode; anything
// out of range degrades the entry to a counted corrupt miss.

// unitFormat versions the unit entry encoding; bump on any layout change.
const unitFormat = 1

func encodeReport(w *bincodec.Writer, r *Report) {
	w.String(string(r.Pattern))
	w.U8(uint8(r.Impact))
	w.String(r.Function)
	w.String(r.File)
	semantics.EncodePos(w, r.Pos)
	w.String(r.Object)
	w.String(r.API)
	w.String(r.Message)
	w.String(r.Suggestion)
	semantics.EncodeEvents(w, r.Witness)
	w.Bool(r.Confirmed)
	w.String(string(r.Deferred))
}

func decodeReport(r *bincodec.Reader) Report {
	rep := Report{
		Pattern:    Pattern(r.String()),
		Impact:     Impact(r.U8()),
		Function:   r.String(),
		File:       r.String(),
		Pos:        semantics.DecodePos(r),
		Object:     r.String(),
		API:        r.String(),
		Message:    r.String(),
		Suggestion: r.String(),
		Witness:    semantics.DecodeEvents(r),
		Confirmed:  r.Bool(),
		Deferred:   DeferralReason(r.String()),
	}
	if rep.Impact > NPD {
		r.Fail()
	}
	return rep
}

func encodeUnitEntry(ent *unitEntry) []byte {
	w := bincodec.NewWriter(1 << 10)
	w.U8(unitFormat)
	w.Int(ent.Summary.Files)
	w.Int(ent.Summary.Functions)
	w.Int(ent.Summary.DiscoveredStructs)
	w.Int(ent.Summary.DiscoveredAPIs)
	w.Int(ent.Summary.DiscoveredLoops)
	w.Int(ent.Summary.DiscoveredDeviations)
	w.U32(uint32(len(ent.Reports)))
	for i := range ent.Reports {
		encodeReport(w, &ent.Reports[i])
	}
	return w.Bytes()
}

func decodeUnitEntry(data []byte, ent *unitEntry) error {
	r := bincodec.NewReader(data)
	if r.U8() != unitFormat {
		r.Fail()
		return r.Err()
	}
	ent.Summary = UnitSummary{
		Files:                r.Int(),
		Functions:            r.Int(),
		DiscoveredStructs:    r.Int(),
		DiscoveredAPIs:       r.Int(),
		DiscoveredLoops:      r.Int(),
		DiscoveredDeviations: r.Int(),
	}
	n := r.Count()
	for i := 0; i < n; i++ {
		rep := decodeReport(r)
		if r.Err() != nil {
			break
		}
		ent.Reports = append(ent.Reports, rep)
	}
	return r.Done()
}
