package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/apidb"
	"repro/internal/cpg"
	"repro/internal/facts"
	"repro/internal/semantics"
)

func init() {
	Register(P5, func() Checker { return &ErrorHandleChecker{} })
	Register(P6, func() Checker { return &InterPairedChecker{} })
	Register(P7, func() Checker { return &DirectFreeChecker{} })
}

// ErrorHandleChecker implements anti-pattern P5 (§5.3.1):
//
//	F_start → S_G → S_P | B_error → F_end
//
// The developer paired the put on the normal paths but overlooked the
// error-handling paths: some path through B_error reaches F_end without the
// decrement.
type ErrorHandleChecker struct{}

// ID returns P5.
func (*ErrorHandleChecker) ID() Pattern { return P5 }

// Check reports increments that are balanced on at least one path (showing
// developer intent) but unbalanced on a path through an error block.
// Increments another pattern owns — increments-on-error APIs (P1) and
// smartloop iterations (P3) — are emitted as tagged candidates for the
// engine's deferral table instead of being skipped inline.
func (*ErrorHandleChecker) Check(ff *facts.FunctionFacts) []Report {
	fn := ff.Fn
	type state struct {
		ev              semantics.Event
		why             DeferralReason
		balancedPath    bool
		errorLeakEvents []semantics.Event
	}
	incs := map[dedupKey]*state{}
	for ti := range ff.Data.Traces {
		tr := &ff.Data.Traces[ti]
		evs := tr.Events
		for i, ev := range evs {
			if ev.Op != semantics.OpInc || ev.Obj == "" || ev.Info == nil {
				continue
			}
			var why DeferralReason
			switch {
			case ev.Info.IncOnError:
				why = DeferIncOnError
			case ff.SmartLoop(ev):
				why = DeferSmartLoop
			}
			st := incs[dk(ev.Pos, ev.Obj, "")]
			if st == nil {
				st = &state{ev: ev, why: why}
				incs[dk(ev.Pos, ev.Obj, "")] = st
			}
			balanced := false
			transferred := false
			nullOnPath := false
			for j := i + 1; j < len(evs); j++ {
				switch evs[j].Op {
				case semantics.OpDec:
					if decBalances(evs[j], ev) {
						balanced = true
					}
				case semantics.OpReturn, semantics.OpAssign:
					if evs[j].Obj != "" && sameObj(evs[j].Obj, ev.Obj) {
						transferred = true
					}
				case semantics.OpCond:
					// On the branch where the object is known NULL there is
					// no reference to balance.
					for _, name := range tr.BranchNull(j) {
						if name == semantics.BaseOf(ev.Obj) {
							nullOnPath = true
						}
					}
				}
			}
			if balanced {
				st.balancedPath = true
				continue
			}
			if transferred || nullOnPath {
				continue
			}
			// Unbalanced: does the path run through an error block after
			// the increment?
			if tr.ErrorAfter(i) {
				st.errorLeakEvents = evs
			}
		}
	}
	emit := false
	for _, st := range incs {
		if st.balancedPath && st.errorLeakEvents != nil {
			emit = true
			break
		}
	}
	if !emit {
		return nil
	}
	// Deterministic emission order: sort by the rendered position|object
	// string. The strings are built only on this rare emitting path; the
	// per-event hot loop above keys the map by value.
	type entry struct {
		key string
		st  *state
	}
	entries := make([]entry, 0, len(incs))
	for _, st := range incs {
		entries = append(entries, entry{st.ev.Pos.String() + "|" + st.ev.Obj, st})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	var out []Report
	for _, e := range entries {
		st := e.st
		if !st.balancedPath || st.errorLeakEvents == nil {
			continue
		}
		pair := "the paired put"
		if st.ev.Info.Pair != "" {
			pair = st.ev.Info.Pair
		}
		out = append(out, Report{
			Pattern: P5, Impact: Leak,
			Function: fn.Def.Name, File: fn.File, Pos: st.ev.Pos,
			Object: st.ev.Obj, API: st.ev.API,
			Message:    fmt.Sprintf("%s on %s is balanced on the normal path but leaks through an error-handling path", st.ev.API, st.ev.Obj),
			Suggestion: fmt.Sprintf("add %s(%s) to the error-handling path", pair, st.ev.Obj),
			Witness:    st.errorLeakEvents,
			Deferred:   st.why,
		})
	}
	return out
}

// InterPairedChecker implements anti-pattern P6 (§5.3.2):
//
//	F⊤_start → S_G → F⊤_end  ∧  F⊥_start → F⊥_end (without S_P)
//
// Inter-paired callbacks (probe/remove, open/release, ...) split acquire and
// release across functions bound by a driver-ops structure; a get kept by
// the acquire callback must be matched by a put in the release callback.
// Name-paired functions (register/unregister, init/exit, create/destroy)
// follow the same rule.
type InterPairedChecker struct{}

// ID returns P6.
func (*InterPairedChecker) ID() Pattern { return P6 }

// Check is unused; P6 is unit-scoped.
func (*InterPairedChecker) Check(ff *facts.FunctionFacts) []Report { return nil }

// namePairSuffixes are recognized acquire→release name conventions.
var namePairSuffixes = [][2]string{
	{"_register", "_unregister"},
	{"_init", "_exit"},
	{"_init", "_uninit"},
	{"_create", "_destroy"},
	{"_probe", "_remove"},
	{"_open", "_release"},
	{"_connect", "_shutdown"},
}

// CheckUnit inspects callback bindings and name-paired functions.
func (c *InterPairedChecker) CheckUnit(uf *facts.UnitFacts) []Report {
	u := uf.Unit
	var out []Report
	seen := map[dedupKey]bool{}
	for _, cb := range u.CallbackBindings() {
		if cb.Acquire == nil {
			continue
		}
		out = append(out, c.checkPair(uf, cb.Acquire, cb.Release,
			fmt.Sprintf("%s.%s/%s", cb.Pair.Struct, cb.Pair.Acquire, cb.Pair.Release), seen)...)
	}
	// Name-paired conventions.
	for _, name := range u.FunctionNames() {
		for _, sfx := range namePairSuffixes {
			if !strings.HasSuffix(name, sfx[0]) {
				continue
			}
			base := strings.TrimSuffix(name, sfx[0])
			rel := u.Functions[base+sfx[1]]
			if rel == nil {
				continue // no release counterpart defined here: skip (cross-TU)
			}
			out = append(out, c.checkPair(uf, u.Functions[name], rel,
				name+"/"+rel.Def.Name, seen)...)
		}
	}
	return out
}

// checkPair reports acquire-side increments kept past acquire with no
// family-matching decrement in release. Smartloop iteration increments are
// emitted as tagged candidates (P3 owns them) rather than skipped inline.
func (*InterPairedChecker) checkPair(uf *facts.UnitFacts, acq, rel *cpg.Function, pairDesc string, seen map[dedupKey]bool) []Report {
	ffAcq := uf.Function(acq.Def.Name)
	if ffAcq == nil {
		return nil // prototype: no body to analyze
	}
	// Collect unbalanced increments in acquire (whole-function view).
	all := ffAcq.All()
	type keptInc struct {
		ev  semantics.Event
		why DeferralReason
	}
	var kept []keptInc
	for _, ev := range all {
		if ev.Op != semantics.OpInc || ev.Info == nil {
			continue
		}
		var why DeferralReason
		if uf.SmartLoop(ev) {
			why = DeferSmartLoop
		}
		balanced := false
		for _, other := range all {
			if other.Op == semantics.OpDec && decBalances(other, ev) {
				balanced = true
			}
		}
		if !balanced {
			kept = append(kept, keptInc{ev: ev, why: why})
		}
	}
	var out []Report
	for _, ki := range kept {
		ev := ki.ev
		if releaseHasFamilyDec(uf, rel, ev) {
			continue
		}
		key := dk(ev.Pos, ev.Obj, string(ki.why))
		if seen[key] {
			continue
		}
		seen[key] = true
		relName := "<missing>"
		if rel != nil {
			relName = rel.Def.Name
		}
		pair := "the paired put"
		if ev.Info.Pair != "" {
			pair = ev.Info.Pair
		}
		out = append(out, Report{
			Pattern: P6, Impact: Leak,
			Function: acq.Def.Name, File: acq.File, Pos: ev.Pos,
			Object: ev.Obj, API: ev.API,
			Message:    fmt.Sprintf("%s keeps a reference (%s) but the paired callback %s (%s) never puts it", acq.Def.Name, ev.API, relName, pairDesc),
			Suggestion: fmt.Sprintf("call %s in %s", pair, relName),
			Witness:    all,
			Deferred:   ki.why,
		})
	}
	return out
}

// releaseHasFamilyDec reports whether rel calls the decrement family that
// balances inc (the pair API, or any dec on the same counted struct).
func releaseHasFamilyDec(uf *facts.UnitFacts, rel *cpg.Function, inc semantics.Event) bool {
	if rel == nil {
		return false
	}
	ffRel := uf.Function(rel.Def.Name)
	if ffRel == nil {
		return false
	}
	for _, ev := range ffRel.Decs() {
		if inc.Info.Pair != "" && ev.API == inc.Info.Pair {
			return true
		}
		if ev.Info != nil && inc.Info.Struct != "" && ev.Info.Struct == inc.Info.Struct {
			return true
		}
	}
	return false
}

// DirectFreeChecker implements anti-pattern P7 (§5.3.3):
//
//	F_start → S_G → S_free → F_end
//
// kfree-ing a refcounted object bypasses its release callback, leaking every
// resource the decrement API would have cleaned up.
type DirectFreeChecker struct{}

// ID returns P7.
func (*DirectFreeChecker) ID() Pattern { return P7 }

// Check flags kfree-family calls whose operand is a refcounted object —
// either by declared type or because a get was observed earlier on the path.
func (*DirectFreeChecker) Check(ff *facts.FunctionFacts) []Report {
	fn := ff.Fn
	types := ff.VarTypes
	var out []Report
	reported := map[dedupKey]bool{}
	// got collects bases incremented earlier on the trace; a handful of
	// entries at most, so a reused linear-scanned slice replaces the
	// per-trace map.
	var got []string
	for ti := range ff.Data.Traces {
		evs := ff.Data.Traces[ti].Events
		got = got[:0]
		for _, ev := range evs {
			switch ev.Op {
			case semantics.OpInc:
				if ev.Obj != "" {
					base := semantics.BaseOf(ev.Obj)
					seen := false
					for _, g := range got {
						if g == base {
							seen = true
							break
						}
					}
					if !seen {
						got = append(got, base)
					}
				}
			case semantics.OpFree:
				base := semantics.BaseOf(ev.Obj)
				if base == "" {
					continue
				}
				counted := isRefStructVar(ff.Unit.DB, types, base)
				for _, g := range got {
					if g == base {
						counted = true
						break
					}
				}
				if !counted {
					continue
				}
				if reported[dk(ev.Pos, "", "")] {
					continue
				}
				reported[dk(ev.Pos, "", "")] = true
				put := putExprFor(ff.Unit, types, base)
				out = append(out, Report{
					Pattern: P7, Impact: Leak,
					Function: fn.Def.Name, File: fn.File, Pos: ev.Pos,
					Object: ev.Obj, API: ev.API,
					Message:    fmt.Sprintf("%s(%s) frees a refcounted object directly, skipping its release callback", ev.API, ev.Obj),
					Suggestion: fmt.Sprintf("replace %s(%s) with %s", ev.API, ev.Obj, put),
					Witness:    evs,
				})
			}
		}
	}
	return out
}

// putExprFor renders the decrement call that should replace a direct free of
// the named variable: the struct's specific put API when one is registered,
// else a general put through the embedded counted member (kref/kobject).
func putExprFor(u *cpg.Unit, types map[string]castType, name string) string {
	t, ok := types[name]
	if !ok {
		return "the put API for " + name
	}
	s := t.StructName()
	for _, a := range u.DB.APIs() {
		if a.Op == apidb.OpDec && a.Struct == s && a.Class != apidb.General {
			return fmt.Sprintf("%s(%s)", a.Name, name)
		}
	}
	if sd := u.Structs[s]; sd != nil {
		for _, f := range sd.Fields {
			switch f.Type.StructName() {
			case "kref":
				return fmt.Sprintf("kref_put(&%s->%s)", name, f.Name)
			case "kobject":
				return fmt.Sprintf("kobject_put(&%s->%s)", name, f.Name)
			}
		}
	}
	return "the put API for " + name
}
