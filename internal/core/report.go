// Package core is the paper's primary contribution: nine anti-pattern static
// checkers for refcounting bugs (§5–§6), driven by the semantic-template
// layer over code property graphs.
//
// The checkers are:
//
//	P1  return-error deviation      F_start → S_{G_E} → B_error → F_end      (leak)
//	P2  return-NULL deviation       F_start → S_{G_N} → S_{D_N} → F_end      (NPD)
//	P3  smartloop break             F_start → M_SL → S_break → F_end         (leak)
//	P4  hidden get/put              F_start → S_{G_H|P_H} → F_end            (leak / UAF)
//	P5  error-handle location       F_start → S_G → S_P|B_error → F_end      (leak)
//	P6  inter-paired callbacks      F⊤: S_G … ∧ F⊥ without S_P               (leak)
//	P7  direct-free                 F_start → S_G → S_free → F_end           (leak)
//	P8  use-after-decrease (UAD)    F_start → S_{P(p0)} → S_{D(p0)} → F_end  (UAF)
//	P9  reference escape            F_start → S_{A_{G|O}} → F_end            (UAF)
package core

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/clex"
	"repro/internal/semantics"
)

// Impact is the security impact class of a report (§4.1, §6.3).
type Impact int

// Impacts.
const (
	Leak Impact = iota
	UAF
	NPD
)

// String names the impact as in Table 4.
func (i Impact) String() string {
	switch i {
	case Leak:
		return "Leak"
	case UAF:
		return "UAF"
	default:
		return "NPD"
	}
}

// Pattern identifies an anti-pattern checker.
type Pattern string

// The nine anti-patterns.
const (
	P1 Pattern = "P1"
	P2 Pattern = "P2"
	P3 Pattern = "P3"
	P4 Pattern = "P4"
	P5 Pattern = "P5"
	P6 Pattern = "P6"
	P7 Pattern = "P7"
	P8 Pattern = "P8"
	P9 Pattern = "P9"
)

// Report is one detected anti-pattern instance.
type Report struct {
	Pattern  Pattern
	Impact   Impact
	Function string
	File     string
	Pos      clex.Pos

	// Object is the leaked/misused reference's canonical key.
	Object string
	// API is the bug-caused API (Table 5's "Bug-Caused API" column).
	API string

	Message    string
	Suggestion string // suggested patch, one line of C

	// Witness is the event trace of the buggy path, consumed by
	// internal/refsim for dynamic confirmation.
	Witness []semantics.Event

	// Confirmed is set by dynamic confirmation (refsim replay).
	Confirmed bool

	// Deferred, when non-empty, marks this report as a candidate another
	// pattern owns (see the deferral table in precedence.go); the engine
	// drops tagged candidates after collection, so reports that reach
	// callers always have it empty.
	Deferred DeferralReason
}

// Subsystem returns the top-level tree ("drivers", "net", "arch", ...) the
// report's file belongs to.
func (r *Report) Subsystem() string {
	parts := strings.Split(r.File, "/")
	if len(parts) > 0 {
		return parts[0]
	}
	return r.File
}

// Module returns the second-level directory ("clk" for drivers/clk/...), or
// "" when the path is flat.
func (r *Report) Module() string {
	parts := strings.Split(r.File, "/")
	if len(parts) > 1 {
		return parts[1]
	}
	return ""
}

// String renders the report in compiler-diagnostic style.
func (r *Report) String() string {
	return fmt.Sprintf("%s: [%s/%s] %s in %s: %s",
		r.Pos, r.Pattern, r.Impact, r.API, r.Function, r.Message)
}

// Key identifies a report for deduplication: same place, same pattern, same
// object. Built with a sized append rather than Sprintf — dedup calls this
// for every candidate report, which made it one of the hottest allocation
// sites in the checking phase.
func (r *Report) Key() string {
	b := make([]byte, 0, len(r.File)+len(r.Pattern)+len(r.Object)+16)
	b = append(b, r.File...)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(r.Pos.Line), 10)
	b = append(b, '|')
	b = append(b, r.Pattern...)
	b = append(b, '|')
	b = append(b, r.Object...)
	return string(b)
}

// dedupKey is the comparable position+object form of the checkers'
// report-dedup keys. Building one allocates nothing, unlike the
// pos.String()+"|"+obj concatenation it replaced on the checking hot path.
type dedupKey struct {
	pos clex.Pos
	obj string
	tag string
}

func dk(pos clex.Pos, obj, tag string) dedupKey {
	return dedupKey{pos: pos, obj: obj, tag: tag}
}
