package core

import (
	"context"
	"reflect"
	"testing"
)

// TestDeprecatedEntryPointsMatchAnalyze is the one compatibility test for the
// pre-Analyze API surface. CheckSources, CheckSourcesOpts, and
// CheckSourcesRun are kept as thin wrappers for out-of-tree callers; this
// pins that they keep producing exactly what Analyze produces, so the
// wrappers can never drift from the real entry point.
func TestDeprecatedEntryPointsMatchAnalyze(t *testing.T) {
	sources, headers := parallelSources()
	opt := Options{Workers: 2, Confirm: true}

	want, err := Analyze(context.Background(), Request{Sources: sources, Headers: headers, Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Reports) == 0 {
		t.Fatal("baseline Analyze produced no reports")
	}

	run := CheckSourcesRun(sources, headers, opt)
	if !reflect.DeepEqual(run.Reports, want.Reports) {
		t.Error("CheckSourcesRun reports differ from Analyze")
	}
	if run.Summary != want.Summary {
		t.Errorf("CheckSourcesRun summary %+v, want %+v", run.Summary, want.Summary)
	}

	u, reports := CheckSourcesOpts(sources, headers, opt)
	if !reflect.DeepEqual(reports, want.Reports) {
		t.Error("CheckSourcesOpts reports differ from Analyze")
	}
	if len(u.Functions) != len(want.Unit.Functions) {
		t.Errorf("CheckSourcesOpts unit has %d functions, Analyze %d",
			len(u.Functions), len(want.Unit.Functions))
	}

	// CheckSources uses default options (no confirmation), so compare
	// against an unconfirmed Analyze run.
	plain, err := Analyze(context.Background(), Request{Sources: sources, Headers: headers})
	if err != nil {
		t.Fatal(err)
	}
	_, reports = CheckSources(sources, headers)
	if !reflect.DeepEqual(reports, plain.Reports) {
		t.Error("CheckSources reports differ from Analyze with default options")
	}
}
