package core

import (
	"fmt"

	"repro/internal/facts"
	"repro/internal/semantics"
)

func init() {
	Register(P8, func() Checker { return &UADChecker{} })
	Register(P9, func() Checker { return &EscapeChecker{} })
}

// UADChecker implements anti-pattern P8 (§5.4.1, use-after-decrease):
//
//	F_start → S_{P(p0)} → S_{D(p0)} → F_end
//
// Accessing an object after dropping the reference is safe only while some
// other reference provably pins it; if the dropped reference was the last
// one, the decrement freed the object and the access is a UAF. The paper
// found 94 historical bugs of this shape (and two of its new reports were
// rejected by developers who "firmly believe" the count cannot reach zero —
// exactly the future-risk the pattern warns about).
type UADChecker struct{}

// ID returns P8.
func (*UADChecker) ID() Pattern { return P8 }

// Check reports dereferences of an object after a may-free decrement on the
// same path, with no intervening reassignment or re-acquisition.
func (*UADChecker) Check(ff *facts.FunctionFacts) []Report {
	fn := ff.Fn
	var out []Report
	reported := map[dedupKey]bool{}
	// putAt tracks may-free decrements as (base name, event index) pairs; a
	// reused linear-scanned slice replaces the per-trace map (see the P2
	// checker for the rationale).
	type decTrack struct {
		base string
		idx  int
	}
	var putAt []decTrack
	drop := func(name string) {
		for k := range putAt {
			if putAt[k].base == name {
				putAt[k] = putAt[len(putAt)-1]
				putAt = putAt[:len(putAt)-1]
				return
			}
		}
	}
	for ti := range ff.Data.Traces {
		evs := ff.Data.Traces[ti].Events
		putAt = putAt[:0]
		for i, ev := range evs {
			switch ev.Op {
			case semantics.OpDec:
				if ev.Info != nil && ev.Info.MayFree && ev.Obj != "" {
					base := semantics.BaseOf(ev.Obj)
					drop(base)
					putAt = append(putAt, decTrack{base, i})
				}
			case semantics.OpInc:
				if ev.Obj != "" {
					drop(semantics.BaseOf(ev.Obj))
				}
			case semantics.OpAssign:
				if ev.AssignTarget != "" {
					drop(semantics.BaseOf(ev.AssignTarget))
				}
			case semantics.OpDeref:
				decIdx := -1
				for _, t := range putAt {
					if t.base == ev.Obj {
						decIdx = t.idx
						break
					}
				}
				if decIdx < 0 {
					continue
				}
				dec := evs[decIdx]
				key := dk(dec.Pos, ev.Obj, "")
				if reported[key] {
					continue
				}
				reported[key] = true
				out = append(out, Report{
					Pattern: P8, Impact: UAF,
					Function: fn.Def.Name, File: fn.File, Pos: ev.Pos,
					Object: ev.Obj, API: dec.API,
					Message:    fmt.Sprintf("%s is dereferenced after %s dropped its reference (use-after-decrease)", ev.Obj, dec.API),
					Suggestion: fmt.Sprintf("move the %s(%s) call after the last use of %s", dec.API, dec.Obj, ev.Obj),
					Witness:    evs,
				})
			}
		}
	}
	return out
}

// EscapeChecker implements anti-pattern P9 (§5.4.2, reference escape):
//
//	F_start → S_{A_{G|O}} → F_end
//
// Storing a counted reference into a global or an out-parameter creates a
// reference that outlives the function; without an increment around the
// escape point the refcounter undercounts the live references and a later
// put elsewhere frees the object early.
type EscapeChecker struct{}

// ID returns P9.
func (*EscapeChecker) ID() Pattern { return P9 }

// Check reports escaping assignments of refcounted pointers with no
// balancing increment anywhere in the function. The whole-function views —
// the block-ordered event stream, the incremented-base and locally-owned
// sets — come precomputed from the facts layer.
func (*EscapeChecker) Check(ff *facts.FunctionFacts) []Report {
	fn := ff.Fn
	types := ff.VarTypes
	// An inc anywhere (before or after the escape point — "around", per the
	// paper) forgives the escape.
	incsOf := ff.Data.IncBases
	ownedRef := ff.Data.OwnedBases // locally acquired references (hidden gets)
	all := ff.All()
	var out []Report
	reported := map[dedupKey]bool{}
	for _, ev := range ff.Escapes() {
		src := semantics.BaseOf(ev.Obj)
		// The escaping value must be a counted pointer: declared as a
		// pointer to a refcounted struct and NOT a locally owned reference
		// (escaping a locally acquired reference transfers ownership).
		if !isRefStructVar(ff.Unit.DB, types, src) || ownedRef[src] {
			continue
		}
		if incsOf[src] {
			continue
		}
		key := dk(ev.Pos, ev.Obj, "")
		if reported[key] {
			continue
		}
		reported[key] = true
		out = append(out, Report{
			Pattern: P9, Impact: UAF,
			Function: fn.Def.Name, File: fn.File, Pos: ev.Pos,
			Object: ev.Obj, API: "",
			Message:    fmt.Sprintf("reference %s escapes via %s (%s) without an increment around the escape point", ev.Obj, ev.AssignTarget, ev.EscapesVia),
			Suggestion: fmt.Sprintf("take a reference on %s before the assignment to %s", ev.Obj, ev.AssignTarget),
			Witness:    all,
		})
	}
	return out
}
