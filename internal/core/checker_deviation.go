package core

import (
	"fmt"

	"repro/internal/facts"
	"repro/internal/semantics"
)

func init() {
	Register(P1, func() Checker { return &ReturnErrorChecker{} })
	Register(P2, func() Checker { return &ReturnNullChecker{} })
}

// ReturnErrorChecker implements anti-pattern P1 (§5.1.1):
//
//	F_start → S_{G_E} → B_error → F_end
//
// A deviated API (pm_runtime_get_sync, kobject_init_and_add) increments the
// refcounter even when it reports failure, so a path that bails into error
// handling without the balancing put leaks the reference.
type ReturnErrorChecker struct{}

// ID returns P1.
func (*ReturnErrorChecker) ID() Pattern { return P1 }

// Check scans every bounded path for an increments-on-error call followed by
// an error block with no balancing decrement.
func (*ReturnErrorChecker) Check(ff *facts.FunctionFacts) []Report {
	fn := ff.Fn
	var out []Report
	reported := map[dedupKey]bool{}
	for ti := range ff.Data.Traces {
		tr := &ff.Data.Traces[ti]
		evs := tr.Events
		for i, ev := range evs {
			if ev.Op != semantics.OpInc || ev.Info == nil || !ev.Info.IncOnError {
				continue
			}
			if reported[dk(ev.Pos, "", "")] {
				continue
			}
			// Does this path enter an error block after the call?
			if !tr.ErrorAtOrAfter(i) {
				continue
			}
			// Any balancing put later on the path forgives it.
			balanced := false
			for j := i + 1; j < len(evs); j++ {
				if evs[j].Op == semantics.OpDec && decBalances(evs[j], ev) {
					balanced = true
					break
				}
			}
			if balanced {
				continue
			}
			reported[dk(ev.Pos, "", "")] = true
			pair := ev.Info.Pair
			if pair == "" {
				pair = "the paired put"
			}
			out = append(out, Report{
				Pattern: P1, Impact: Leak,
				Function: fn.Def.Name, File: fn.File, Pos: ev.Pos,
				Object: ev.Obj, API: ev.API,
				Message:    fmt.Sprintf("%s increments the refcount even on failure, but the error path returns without %s", ev.API, pair),
				Suggestion: fmt.Sprintf("call %s(%s) in the error path before returning", pair, ev.Obj),
				Witness:    evs,
			})
		}
	}
	return out
}

// decBalances reports whether dec plausibly balances inc: same object key,
// or the dec is the registered pair API of the inc.
func decBalances(dec, inc semantics.Event) bool {
	if sameObj(dec.Obj, inc.Obj) {
		return true
	}
	return inc.Info != nil && inc.Info.Pair != "" && dec.API == inc.Info.Pair
}

// ReturnNullChecker implements anti-pattern P2 (§5.1.2):
//
//	F_start → S_{G_N} → S_{D_N} → F_end
//
// A deviated increment API returns the counted object pointer — which may be
// NULL — and the caller dereferences it without a NULL check.
type ReturnNullChecker struct{}

// ID returns P2.
func (*ReturnNullChecker) ID() Pattern { return P2 }

// Check tracks may-be-NULL references along each path, discharging them at
// NULL tests (branch-direction aware) and reporting unchecked dereferences.
func (*ReturnNullChecker) Check(ff *facts.FunctionFacts) []Report {
	fn := ff.Fn
	var out []Report
	reported := map[dedupKey]bool{}
	// unchecked tracks may-be-NULL references as (base name, producing-event
	// index) pairs. A trace carries at most a handful, so a linear-scanned
	// slice with its backing reused across traces replaces the per-trace
	// map — buckets sized for semantics.Event values were a visible slice
	// of the checking phase's allocations.
	type nullTrack struct {
		base string
		idx  int
	}
	var unchecked []nullTrack
	drop := func(name string) {
		for k := range unchecked {
			if unchecked[k].base == name {
				unchecked[k] = unchecked[len(unchecked)-1]
				unchecked = unchecked[:len(unchecked)-1]
				return
			}
		}
	}
	for ti := range ff.Data.Traces {
		tr := &ff.Data.Traces[ti]
		evs := tr.Events
		unchecked = unchecked[:0]
		for i, ev := range evs {
			switch ev.Op {
			case semantics.OpInc:
				if ev.Info != nil && ev.Info.MayReturnNull && ev.Obj != "" {
					base := semantics.BaseOf(ev.Obj)
					drop(base)
					unchecked = append(unchecked, nullTrack{base, i})
				}
			case semantics.OpCond:
				// Which branch does this path take?
				for _, name := range tr.BranchNonNull(i) {
					drop(name)
				}
			case semantics.OpAssign:
				// Reassignment invalidates tracking.
				drop(semantics.BaseOf(ev.AssignTarget))
			case semantics.OpDeref:
				srcIdx := -1
				for _, t := range unchecked {
					if t.base == ev.Obj {
						srcIdx = t.idx
						break
					}
				}
				if srcIdx < 0 {
					continue
				}
				src := evs[srcIdx]
				key := dk(src.Pos, ev.Obj, "")
				if reported[key] {
					continue
				}
				reported[key] = true
				out = append(out, Report{
					Pattern: P2, Impact: NPD,
					Function: fn.Def.Name, File: fn.File, Pos: ev.Pos,
					Object: ev.Obj, API: src.API,
					Message:    fmt.Sprintf("%s may return NULL but %s is dereferenced without a check", src.API, ev.Obj),
					Suggestion: fmt.Sprintf("if (!%s)\n\t\treturn -ENODEV;", ev.Obj),
					Witness:    evs,
				})
			}
		}
	}
	return out
}
