package core

import (
	"crypto/sha256"
	"encoding/hex"
	"sort"

	"repro/internal/analysiscache"
	"repro/internal/cpg"
	"repro/internal/facts"
	"repro/internal/semantics"
)

// UnitSummary carries the unit-level counts tools print, decoupled from the
// Unit itself so a cache hit can report them without rebuilding the unit.
type UnitSummary struct {
	Files                int
	Functions            int
	DiscoveredStructs    int
	DiscoveredAPIs       int
	DiscoveredLoops      int
	DiscoveredDeviations int
}

// CacheStats describes what the incremental cache contributed to one run.
type CacheStats struct {
	// UnitHit is true when the whole run was served from the unit-level
	// report cache (no preprocessing, parsing, or checking happened).
	UnitHit bool
	// FactsHit is true when a unit-level miss reused the per-function
	// facts entry: path enumeration and event normalization were decoded
	// from disk instead of recomputed, and only the per-pattern queries
	// ran. This is what makes a -checkers subset run cheap against a cache
	// warmed by a full run (the two have different unit keys by design).
	FactsHit bool
	// FileHits / FileMisses count per-file front-end cache reuse during a
	// unit-level miss.
	FileHits   int
	FileMisses int
	// FilesSkipped is the number of source files whose analysis was fully
	// or partially skipped (all of them on a unit hit, the front-end hits
	// otherwise).
	FilesSkipped int
}

// Run is the result of CheckSourcesRun: the reports plus everything a CLI
// prints about the run. Unit is nil when the unit-level cache hit.
type Run struct {
	Unit    *cpg.Unit
	Reports []Report
	Summary UnitSummary
	Cache   CacheStats
}

// unitEntry is the persisted whole-run result. Reports are stored before
// refsim confirmation (Confirmed is recomputed on load — it is a pure
// function of the witness, so this keeps one entry valid for both -confirm
// modes) and with witness CFG block pointers stripped (see
// stripWitnessBlocks).
type unitEntry struct {
	Summary UnitSummary
	Reports []Report
}

// corpusFP fingerprints the full sorted corpus content (sources and
// headers). Analysis has cross-file dependencies — API discovery, the
// inter-paired checker, and the facts layer read the whole unit — so every
// unit-scoped cache key must cover every file; per-file keys would be
// unsound.
func corpusFP(sources []cpg.Source, headers map[string]string) string {
	h := sha256.New()
	add := func(s string) {
		var n [8]byte
		ln := len(s)
		for i := 0; i < 8; i++ {
			n[i] = byte(ln >> (8 * i))
		}
		h.Write(n[:])
		h.Write([]byte(s))
	}
	sorted := append([]cpg.Source(nil), sources...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, s := range sorted {
		add(s.Path)
		add(s.Content)
	}
	hpaths := make([]string, 0, len(headers))
	for p := range headers {
		hpaths = append(hpaths, p)
	}
	sort.Strings(hpaths)
	for _, p := range hpaths {
		add(p)
		add(headers[p])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// unitCacheKey fingerprints everything that can influence the report list:
// a format version, the caller's checker-config fingerprint, the engine's
// checker selection (so -checkers subset runs never collide with full
// runs), and the full corpus content.
func unitCacheKey(configFP, checkersFP, corpus string) string {
	return analysiscache.KeyOf("unit-v2", configFP, checkersFP, corpus)
}

// factsCacheKey fingerprints the per-function facts entry. The checker
// selection is deliberately absent: facts are checker-independent, which is
// exactly why a subset run can reuse the facts a full run computed (and vice
// versa) even though their unit-level keys differ.
func factsCacheKey(configFP, corpus string) string {
	return analysiscache.KeyOf("facts-v1", configFP, corpus)
}

// stripWitnessBlocks deep-copies reports with each witness event's CFG block
// pointer cleared. Blocks form cycles (Succs/Preds), which gob cannot
// encode, and nothing downstream of finalize reads them — refsim replays on
// Op/Obj/API/Info, patch generation on Pos — so cached reports round-trip to
// the same rendered output. The facts layer already strips blocks from its
// normalized traces; this remains as a guard for checkers that attach events
// from elsewhere.
func stripWitnessBlocks(reports []Report) []Report {
	out := append([]Report(nil), reports...)
	for i := range out {
		if len(out[i].Witness) == 0 {
			continue
		}
		w := append([]semantics.Event(nil), out[i].Witness...)
		for j := range w {
			w[j].Block = nil
		}
		out[i].Witness = w
	}
	return out
}

func summarize(u *cpg.Unit) UnitSummary {
	return UnitSummary{
		Files:                len(u.Files),
		Functions:            len(u.Functions),
		DiscoveredStructs:    len(u.DiscoveredStructs),
		DiscoveredAPIs:       len(u.DiscoveredAPIs),
		DiscoveredLoops:      len(u.DiscoveredLoops),
		DiscoveredDeviations: len(u.DiscoveredDeviations),
	}
}

// CheckSourcesRun is the cache-aware pipeline entry point. With no cache in
// opt it behaves exactly like CheckSourcesOpts. With opt.Cache set it first
// consults the unit-level report cache (an unchanged corpus skips the whole
// pipeline); on a miss it threads the per-file front-end cache through the
// CPG builder so only changed files are re-preprocessed, and preloads the
// per-function facts entry so checking skips path enumeration and event
// normalization. Reports are byte-identical across {no cache, cold cache,
// warm cache, facts-only hit, partial hit} at any worker count.
func CheckSourcesRun(sources []cpg.Source, headers map[string]string, opt Options) *Run {
	engine, err := NewEngineFor(opt.Checkers)
	if err != nil {
		// Programmer error: library callers pass validated selections (CLI
		// input goes through ParsePatterns first).
		panic("core: " + err.Error())
	}
	engine.Workers = opt.Workers

	run := &Run{}
	var key, fKey string
	if opt.Cache != nil {
		corpus := corpusFP(sources, headers)
		key = unitCacheKey(opt.ConfigFP, engine.patternsFP(), corpus)
		fKey = factsCacheKey(opt.ConfigFP, corpus)
		var ent unitEntry
		if opt.Cache.Get(key, &ent) {
			run.Reports = ent.Reports
			run.Summary = ent.Summary
			run.Cache = CacheStats{UnitHit: true, FilesSkipped: len(sources)}
			if opt.Confirm {
				ConfirmReports(run.Reports, opt.Workers)
			}
			return run
		}
	}

	b := &cpg.Builder{DB: opt.DB, Workers: opt.Workers, Cache: opt.Cache}
	if headers != nil {
		b.Headers = newHeaderProvider(headers)
	}
	u := b.Build(sources)

	uf := facts.NewUnit(u)
	factsHit := false
	if opt.Cache != nil {
		var snap map[string]*facts.Data
		if opt.Cache.Get(fKey, &snap) {
			factsHit = uf.Preload(snap)
		}
	}
	reports := engine.CheckUnitFacts(uf)

	run.Unit = u
	run.Reports = reports
	run.Summary = summarize(u)
	run.Cache = CacheStats{
		FactsHit:     factsHit,
		FileHits:     u.FrontEndCacheHits,
		FileMisses:   u.FrontEndCacheMisses,
		FilesSkipped: u.FrontEndCacheHits,
	}
	if opt.Cache != nil {
		// Store before confirmation so the entry is confirmation-agnostic; a
		// Put failure only costs the next run a recompute.
		_ = opt.Cache.Put(key, unitEntry{Summary: run.Summary, Reports: stripWitnessBlocks(reports)})
		if !factsHit {
			// Snapshot forces any still-uncomputed functions (a subset run
			// with only unit-scoped checkers may not have touched them all)
			// so the facts entry always covers the whole unit.
			_ = opt.Cache.Put(fKey, uf.Snapshot())
		}
	}
	if opt.Confirm {
		ConfirmReports(run.Reports, opt.Workers)
	}
	return run
}
