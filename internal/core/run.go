package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"sort"

	"repro/internal/analysiscache"
	"repro/internal/cpg"
	"repro/internal/facts"
	"repro/internal/obs"
	"repro/internal/semantics"
)

// UnitSummary carries the unit-level counts tools print, decoupled from the
// Unit itself so a cache hit can report them without rebuilding the unit.
type UnitSummary struct {
	Files                int
	Functions            int
	DiscoveredStructs    int
	DiscoveredAPIs       int
	DiscoveredLoops      int
	DiscoveredDeviations int
}

// Request bundles one analysis run's inputs for Analyze.
type Request struct {
	// Sources are the translation units to analyze.
	Sources []cpg.Source
	// Headers maps include paths to content; nil skips unresolvable
	// includes.
	Headers map[string]string
	// Options carries the pipeline knobs (workers, cache, checker
	// selection, confirmation) unchanged from the historical entry points.
	Options Options
	// Trace, when non-nil, receives the run's observability data: phase
	// and per-unit spans plus the counter/histogram registry (see package
	// obs). obs.Nop() — or simply leaving it nil — disables observability
	// at effectively zero cost; reports are byte-identical either way.
	Trace *obs.Trace
}

// Run is the result of one analysis: the reports plus everything a CLI
// prints about the run. Unit is nil when the unit-level cache hit. Trace
// aliases the request's trace so callers holding only the Run can reach the
// metrics.
type Run struct {
	Unit    *cpg.Unit
	Reports []Report
	Summary UnitSummary
	Trace   *obs.Trace
}

// Metric returns a counter from the run's trace registry (0 when the run
// was untraced). It is the cache-visibility API that replaced the old
// CacheStats struct: cache.unit.hit, cache.facts.hit, frontend.cache.hit,
// frontend.cache.miss, pipeline.files_skipped, and every other counter in
// the catalog (see internal/obs).
func (r *Run) Metric(name string) int64 {
	return r.Trace.Reg().Counter(name)
}

// unitEntry is the persisted whole-run result. Reports are stored before
// refsim confirmation (Confirmed is recomputed on load — it is a pure
// function of the witness, so this keeps one entry valid for both -confirm
// modes) and with witness CFG block pointers stripped (see
// stripWitnessBlocks).
type unitEntry struct {
	Summary UnitSummary
	Reports []Report
}

// corpusFP fingerprints the full sorted corpus content (sources and
// headers). Analysis has cross-file dependencies — API discovery, the
// inter-paired checker, and the facts layer read the whole unit — so every
// unit-scoped cache key must cover every file; per-file keys would be
// unsound.
func corpusFP(sources []cpg.Source, headers map[string]string) string {
	h := sha256.New()
	add := func(s string) {
		var n [8]byte
		ln := len(s)
		for i := 0; i < 8; i++ {
			n[i] = byte(ln >> (8 * i))
		}
		h.Write(n[:])
		h.Write([]byte(s))
	}
	sorted := append([]cpg.Source(nil), sources...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })
	for _, s := range sorted {
		add(s.Path)
		add(s.Content)
	}
	hpaths := make([]string, 0, len(headers))
	for p := range headers {
		hpaths = append(hpaths, p)
	}
	sort.Strings(hpaths)
	for _, p := range hpaths {
		add(p)
		add(headers[p])
	}
	return hex.EncodeToString(h.Sum(nil))
}

// unitCacheKey fingerprints everything that can influence the report list:
// a format version, the caller's checker-config fingerprint, the engine's
// checker selection (so -checkers subset runs never collide with full
// runs), and the full corpus content.
func unitCacheKey(configFP, checkersFP, corpus string) string {
	return analysiscache.KeyOf("unit-v4", configFP, checkersFP, corpus)
}

// factsCacheKey fingerprints the per-function facts entry. The checker
// selection is deliberately absent: facts are checker-independent, which is
// exactly why a subset run can reuse the facts a full run computed (and vice
// versa) even though their unit-level keys differ.
func factsCacheKey(configFP, corpus string) string {
	return analysiscache.KeyOf("facts-v3", configFP, corpus)
}

// stripWitnessBlocks deep-copies reports with each witness event's CFG block
// pointer cleared. Blocks form cycles (Succs/Preds) that no flat encoding
// can represent — the report codec simply never writes them — and nothing
// downstream of finalize reads them: refsim replays on Op/Obj/API/Info,
// patch generation on Pos, so cached reports round-trip to the same
// rendered output. The facts layer already strips blocks from its
// normalized traces; this remains as a guard for checkers that attach events
// from elsewhere.
func stripWitnessBlocks(reports []Report) []Report {
	out := append([]Report(nil), reports...)
	for i := range out {
		if len(out[i].Witness) == 0 {
			continue
		}
		w := append([]semantics.Event(nil), out[i].Witness...)
		for j := range w {
			w[j].Block = nil
		}
		out[i].Witness = w
	}
	return out
}

// admit acquires a compute slot from the options' admission gate; with no
// gate configured it admits immediately with a no-op release.
func admit(ctx context.Context, opt Options) (func(), error) {
	if opt.Admit == nil {
		return func() {}, nil
	}
	return opt.Admit.Acquire(ctx)
}

func summarize(u *cpg.Unit) UnitSummary {
	return UnitSummary{
		Files:                len(u.Files),
		Functions:            len(u.Functions),
		DiscoveredStructs:    len(u.DiscoveredStructs),
		DiscoveredAPIs:       len(u.DiscoveredAPIs),
		DiscoveredLoops:      len(u.DiscoveredLoops),
		DiscoveredDeviations: len(u.DiscoveredDeviations),
	}
}

// lookupUnit consults the tiered cache for a decoded unit entry. The value
// may live in the cache's L1 and be shared with concurrent runs, so callers
// must copy before mutating (serveCached does).
func lookupUnit(cache *analysiscache.Cache, key string) (*unitEntry, bool) {
	v, ok := cache.GetValue(key, func(data []byte) (any, error) {
		ent := new(unitEntry)
		if err := decodeUnitEntry(data, ent); err != nil {
			return nil, err
		}
		return ent, nil
	})
	if !ok {
		return nil, false
	}
	return v.(*unitEntry), true
}

func decodeFactsValue(data []byte) (any, error) {
	snap, err := facts.DecodeSnapshot(data)
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// serveCached fills run from a cached (or flight-shared) unit entry. The
// report slice is copied because confirmation writes Confirmed per report
// while the entry stays shared via L1; the witnesses underneath are
// replayed read-only, so they can stay shared.
func serveCached(run *Run, ent *unitEntry, req Request, root *obs.Span, reg *obs.Registry) {
	reg.Add("pipeline.files_skipped", int64(len(req.Sources)))
	run.Reports = append([]Report(nil), ent.Reports...)
	run.Summary = ent.Summary
	if req.Options.Confirm {
		csp := root.Child("phase:confirm")
		ConfirmReportsSpan(run.Reports, req.Options.Workers, csp)
		csp.End()
	}
}

// analyzePipeline is the full build→facts→check→store pipeline shared by
// the uncached path and the single-flight leader. It mutates run in place
// (so a cancelled call still leaves the partial Run visible to the caller)
// and returns the stored unit entry when a cache is present. Confirmation
// is the caller's job — the entry must stay confirmation-agnostic.
func analyzePipeline(ctx context.Context, req Request, engine *Engine, cache *analysiscache.Cache, key, fKey string, run *Run, root *obs.Span, reg *obs.Registry) (*unitEntry, error) {
	opt := req.Options
	bsp := root.Child("phase:build")
	b := &cpg.Builder{DB: opt.DB, Workers: opt.Workers, Cache: cache, Obs: bsp}
	if req.Headers != nil {
		b.Headers = newHeaderProvider(req.Headers)
	}
	u := b.BuildContext(ctx, req.Sources)
	bsp.End()
	run.Unit = u
	run.Summary = summarize(u)
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	uf := facts.NewUnit(u)
	factsHit := false
	if cache != nil {
		if v, ok := cache.GetValue(fKey, decodeFactsValue); ok {
			// The snapshot may be L1-shared across runs; Preload only reads
			// it, and checkers treat facts as immutable.
			factsHit = uf.Preload(v.(map[string]*facts.Data))
		}
		if factsHit {
			reg.Add("cache.facts.hit", 1)
		} else {
			reg.Add("cache.facts.miss", 1)
		}
	}
	csp := root.Child("phase:check")
	engine.Obs = csp
	reports := engine.CheckUnitFactsContext(ctx, uf)
	csp.End()
	uf.Observe(reg)
	run.Reports = reports
	if err := ctx.Err(); err != nil {
		// A cancelled check may have skipped functions; the partial report
		// list must never be cached under the full corpus key.
		return nil, err
	}

	var ent *unitEntry
	if cache != nil {
		ssp := root.Child("phase:cache-store")
		// Store before confirmation so the entry is confirmation-agnostic; a
		// write failure only costs the next run a recompute. PutValue lands
		// the decoded entry in L1 and queues the bytes for the disk tier's
		// batch; the explicit Flush makes this run's entries durable and
		// visible to other processes without waiting for thresholds.
		ent = &unitEntry{Summary: run.Summary, Reports: stripWitnessBlocks(reports)}
		_ = cache.PutValue(key, ent, encodeUnitEntry(ent))
		if !factsHit {
			// Snapshot forces any still-uncomputed functions (a subset run
			// with only unit-scoped checkers may not have touched them all)
			// so the facts entry always covers the whole unit.
			snap := uf.Snapshot()
			_ = cache.PutValue(fKey, snap, facts.EncodeSnapshot(snap))
		}
		_ = cache.Flush()
		ssp.End()
	}
	return ent, nil
}

// Analyze is the pipeline entry point: it builds a unit from the request's
// sources, checks it, and optionally confirms the reports, honoring ctx at
// every phase and work-queue boundary.
//
// With no cache in the options it runs the full pipeline. With a cache set
// it first consults the tiered unit-level report cache — the in-memory L1
// serves a decoded entry with no I/O at all, the disk tier decodes one pack
// payload — and an unchanged corpus skips the whole pipeline. On a miss the
// computation runs under single-flight: N concurrent Analyze calls for the
// same unit key on one cache perform one computation, the leader's stored
// entry is shared with the waiters (counted as cache.singleflight.wait, and
// served exactly like a cache hit: Unit stays nil). On a miss it also
// threads the per-file front-end cache through the CPG builder so only
// changed files are re-preprocessed, and preloads the per-function facts
// entry so checking skips path enumeration and event normalization.
// Reports are byte-identical across {no cache, cold cache, warm cache,
// L1-warm, facts-only hit, partial hit} at any worker count, with or
// without a trace attached.
//
// With Options.Admit set, every real pipeline computation — the uncached
// path and the single-flight leader — first acquires an admission slot;
// cache hits and flight waiters bypass the gate entirely. An Acquire error
// (overload, cancelled wait) aborts the run and is returned verbatim.
//
// An invalid checker selection returns an error wrapping ErrUnknownPattern.
// Cancellation drains the work queues cleanly and returns the partial Run
// alongside ctx.Err(); nothing partial is ever written to the cache, and a
// cancelled or failed single-flight leader never feeds its waiters — they
// retry leadership with their own ctx.
func Analyze(ctx context.Context, req Request) (*Run, error) {
	opt := req.Options
	engine, err := NewEngineFor(opt.Checkers)
	if err != nil {
		return nil, err
	}
	engine.Workers = opt.Workers

	tr := req.Trace
	root := tr.Root()
	reg := tr.Reg()
	cache := opt.Cache
	if cache != nil && reg != nil {
		cache = cache.WithRegistry(reg)
	}

	run := &Run{Trace: tr}
	if cache == nil {
		if err := ctx.Err(); err != nil {
			return run, err
		}
		release, err := admit(ctx, opt)
		if err != nil {
			return run, err
		}
		_, perr := analyzePipeline(ctx, req, engine, nil, "", "", run, root, reg)
		release()
		if perr != nil {
			return run, perr
		}
		if opt.Confirm {
			fsp := root.Child("phase:confirm")
			ConfirmReportsSpan(run.Reports, opt.Workers, fsp)
			fsp.End()
		}
		return run, ctx.Err()
	}

	sp := root.Child("phase:cache-lookup")
	corpus := corpusFP(req.Sources, req.Headers)
	key := unitCacheKey(opt.ConfigFP, engine.patternsFP(), corpus)
	fKey := factsCacheKey(opt.ConfigFP, corpus)
	ent, hit := lookupUnit(cache, key)
	sp.End()
	if hit {
		reg.Add("cache.unit.hit", 1)
		serveCached(run, ent, req, root, reg)
		return run, ctx.Err()
	}
	reg.Add("cache.unit.miss", 1)
	if err := ctx.Err(); err != nil {
		return run, err
	}

	computed := false
	v, _, err := cache.Flight(ctx, key, func() (any, error) {
		// Second-chance lookup: a leader that finished between our miss and
		// this flight already populated L1 — serve that instead of leading
		// a redundant computation.
		if ent, ok := lookupUnit(cache, key); ok {
			return ent, nil
		}
		release, err := admit(ctx, opt)
		if err != nil {
			return nil, err
		}
		defer release()
		reg.Add("cache.singleflight.leader", 1)
		computed = true
		ent, err := analyzePipeline(ctx, req, engine, cache, key, fKey, run, root, reg)
		if err != nil {
			return nil, err
		}
		return ent, nil
	})
	if err != nil {
		// Either our own (leader) pipeline was cancelled — run carries the
		// partial result — or our ctx died while waiting on another leader.
		return run, err
	}
	if !computed {
		reg.Add("cache.singleflight.wait", 1)
		serveCached(run, v.(*unitEntry), req, root, reg)
		return run, ctx.Err()
	}
	if opt.Confirm {
		fsp := root.Child("phase:confirm")
		ConfirmReportsSpan(run.Reports, opt.Workers, fsp)
		fsp.End()
	}
	return run, ctx.Err()
}
