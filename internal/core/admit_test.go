package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/analysiscache"
	"repro/internal/obs"
)

// countingGate is an Admission that counts acquire/release pairs and can
// reject every acquire with a fixed error.
type countingGate struct {
	acquires atomic.Int64
	releases atomic.Int64
	reject   error
}

func (g *countingGate) Acquire(ctx context.Context) (func(), error) {
	if g.reject != nil {
		return nil, g.reject
	}
	g.acquires.Add(1)
	var once sync.Once
	return func() { once.Do(func() { g.releases.Add(1) }) }, nil
}

func (g *countingGate) balanced(t *testing.T) {
	t.Helper()
	if a, r := g.acquires.Load(), g.releases.Load(); a != r {
		t.Fatalf("admission gate unbalanced: %d acquires, %d releases", a, r)
	}
}

func TestAdmitUncachedAcquiresOnce(t *testing.T) {
	sources, headers := parallelSources()
	gate := &countingGate{}
	run, err := Analyze(context.Background(), Request{
		Sources: sources, Headers: headers,
		Options: Options{Workers: 1, Admit: gate},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Reports) == 0 {
		t.Fatal("admitted run produced no reports")
	}
	if got := gate.acquires.Load(); got != 1 {
		t.Fatalf("uncached Analyze acquired %d slots, want 1", got)
	}
	gate.balanced(t)
}

func TestAdmitCacheHitBypassesGate(t *testing.T) {
	sources, headers := parallelSources()
	cache, err := analysiscache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	gate := &countingGate{}
	opt := Options{Workers: 1, Cache: cache, Admit: gate}

	if _, err := Analyze(context.Background(), Request{Sources: sources, Headers: headers, Options: opt}); err != nil {
		t.Fatal(err)
	}
	if got := gate.acquires.Load(); got != 1 {
		t.Fatalf("cold run acquired %d slots, want 1", got)
	}

	warm, err := Analyze(context.Background(), Request{
		Sources: sources, Headers: headers, Options: opt, Trace: obs.New("admit"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Metric("cache.unit.hit") != 1 {
		t.Fatalf("second run missed the unit cache (hit=%d)", warm.Metric("cache.unit.hit"))
	}
	if got := gate.acquires.Load(); got != 1 {
		t.Fatalf("cache hit consumed an admission slot (total acquires %d, want 1)", got)
	}
	gate.balanced(t)
}

func TestAdmitRejectionAborts(t *testing.T) {
	sources, headers := parallelSources()
	sentinel := errors.New("overloaded")
	for _, withCache := range []bool{false, true} {
		t.Run(fmt.Sprintf("cache=%v", withCache), func(t *testing.T) {
			opt := Options{Workers: 1, Admit: &countingGate{reject: sentinel}}
			if withCache {
				cache, err := analysiscache.Open(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				defer cache.Close()
				opt.Cache = cache
			}
			run, err := Analyze(context.Background(), Request{
				Sources: sources, Headers: headers, Options: opt,
			})
			if !errors.Is(err, sentinel) {
				t.Fatalf("err = %v, want the gate's sentinel", err)
			}
			if run == nil || len(run.Reports) != 0 || run.Unit != nil {
				t.Fatalf("rejected run leaked pipeline work: %+v", run)
			}
		})
	}
}

func TestAdmitSingleFlightLeaderOnly(t *testing.T) {
	sources, headers := parallelSources()
	cache, err := analysiscache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	gate := &countingGate{}

	const callers = 6
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = Analyze(context.Background(), Request{
				Sources: sources, Headers: headers,
				Options: Options{Workers: 1, Cache: cache, Admit: gate},
			})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	// Exactly the computations pay admission: concurrent identical requests
	// dedup through single-flight, so acquires == leader elections (>= 1,
	// and far fewer than callers; with one shared cache handle it is 1
	// unless a caller raced in after the leader finished).
	if got := gate.acquires.Load(); got < 1 || got >= callers {
		t.Fatalf("%d concurrent identical requests acquired %d slots", callers, got)
	}
	gate.balanced(t)
}

func TestAdmitReleasedOnCancellation(t *testing.T) {
	sources, headers := parallelSources()
	gate := &countingGate{}
	// ctx is checked before admission on the uncached path, so use a live
	// ctx that dies inside the pipeline instead: cancel the moment the gate
	// admits, forcing the error return path to exercise release.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	run, err := Analyze(ctx, Request{
		Sources: sources, Headers: headers,
		Options: Options{Workers: 2, Admit: &cancelOnAcquire{inner: gate, cancel: cancel}},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if run == nil {
		t.Fatal("cancelled Analyze must return the partial Run")
	}
	gate.balanced(t)
}

// cancelOnAcquire wraps a gate and cancels the run's context the moment the
// pipeline is admitted, forcing the cancellation path to exercise release.
type cancelOnAcquire struct {
	inner  *countingGate
	cancel context.CancelFunc
}

func (g *cancelOnAcquire) Acquire(ctx context.Context) (func(), error) {
	release, err := g.inner.Acquire(ctx)
	if err == nil {
		g.cancel()
	}
	return release, err
}
