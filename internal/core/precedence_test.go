package core

import (
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestDeferralTableContents pins the declarative precedence table to exactly
// the rules hoisted out of the checkers; adding or dropping a deference is a
// deliberate, visible diff here.
func TestDeferralTableContents(t *testing.T) {
	want := []DeferralRule{
		{From: P4, Reason: DeferSmartLoop, To: P3},
		{From: P4, Reason: DeferLongLivedStore, To: P6},
		{From: P4, Reason: DeferPairedErrorPath, To: P5},
		{From: P5, Reason: DeferIncOnError, To: P1},
		{From: P5, Reason: DeferSmartLoop, To: P3},
		{From: P6, Reason: DeferSmartLoop, To: P3},
	}
	if got := DeferralTable(); !reflect.DeepEqual(got, want) {
		t.Fatalf("DeferralTable = %+v, want %+v", got, want)
	}
}

// TestApplyDeferrals covers the filter itself: every tabled (pattern, reason)
// pair drops, an unmapped tag survives (an unknown deferral must be visible,
// not silently eaten), and untagged reports pass through untouched.
func TestApplyDeferrals(t *testing.T) {
	var tabled []Report
	for _, r := range DeferralTable() {
		tabled = append(tabled, Report{Pattern: r.From, Deferred: r.Reason, Message: "tabled"})
	}
	kept := []Report{
		{Pattern: P1, Deferred: DeferSmartLoop, Message: "unmapped tag survives"},
		{Pattern: P4, Message: "untagged survives"},
	}
	reg := obs.NewRegistry()
	out := applyDeferrals(append(tabled, kept...), reg)
	if !reflect.DeepEqual(out, kept) {
		t.Fatalf("applyDeferrals = %+v, want only %+v", out, kept)
	}
	for _, r := range DeferralTable() {
		name := "deferrals." + string(r.From) + "." + string(r.Reason)
		if reg.Counter(name) != 1 {
			t.Errorf("counter %s = %d, want 1", name, reg.Counter(name))
		}
	}
	if applyDeferrals(nil, nil) != nil {
		t.Fatal("applyDeferrals(nil) should be nil")
	}
}

// The four tests below re-prove, end to end, each inline early-continue the
// table replaced: the deferring checker stays silent while the owning
// checker reports.

// P4 → P3 (DeferSmartLoop): the smartloop macro owns its iteration
// reference; the hidden-get API it expands to must not double-report.
func TestDeferralSmartLoopOwnedByP3(t *testing.T) {
	src := smartLoopHeader + `
static int scan(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (of_device_is_available(dn))
			break;
	}
	return 0;
}`
	rs := check(t, "drivers/soc/scan.c", src)
	if len(withPattern(rs, P3)) != 1 {
		t.Fatalf("want exactly one P3 report: %+v", rs)
	}
	if got := withPattern(rs, P4); len(got) != 0 {
		t.Fatalf("P4 smartloop candidate not deferred to P3: %+v", got)
	}
}

// P4 → P6 (DeferLongLivedStore): a reference stored into long-lived state is
// the inter-paired checker's business — the put belongs in the release
// callback, not at the end of the acquiring function.
func TestDeferralLongLivedStoreOwnedByP6(t *testing.T) {
	src := `
struct platform_driver { int (*probe)(void); int (*remove)(void); };
static struct device_node *state_np;
static int d_probe(void)
{
	struct device_node *np = of_find_node_by_path("/soc");
	state_np = np;
	return 0;
}
static int d_remove(void)
{
	return 0;
}
static struct platform_driver d_driver = {
	.probe = d_probe,
	.remove = d_remove,
};`
	rs := check(t, "drivers/soc/d.c", src)
	if len(withPattern(rs, P6)) != 1 {
		t.Fatalf("want exactly one P6 report: %+v", rs)
	}
	if got := withPattern(rs, P4); len(got) != 0 {
		t.Fatalf("P4 long-lived-store candidate not deferred to P6: %+v", got)
	}
}

// P4 → P5 (DeferPairedErrorPath): the developer paired the put on the normal
// path, so the put-free error path is an overlooked location (P5), not an
// overlooked API (P4).
func TestDeferralPairedErrorPathOwnedByP5(t *testing.T) {
	src := `
static int attach(void)
{
	int err;
	struct device_node *np = of_find_node_by_path("/soc");
	err = register_thing(np);
	if (err)
		goto fail;
	of_node_put(np);
	return 0;
fail:
	return err;
}`
	rs := check(t, "drivers/dma/attach.c", src)
	if len(withPattern(rs, P5)) != 1 {
		t.Fatalf("want exactly one P5 report: %+v", rs)
	}
	if got := withPattern(rs, P4); len(got) != 0 {
		t.Fatalf("P4 paired-error-path candidate not deferred to P5: %+v", got)
	}
}

// P5 → P1 (DeferIncOnError): an increments-on-error API leaking through its
// error path is P1's return-error deviation.
func TestDeferralIncOnErrorOwnedByP1(t *testing.T) {
	src := `
static int f(struct my_dev *crc)
{
	int ret = pm_runtime_get_sync(crc->dev);
	if (ret < 0)
		return ret;
	pm_runtime_put_noidle(crc->dev);
	return 0;
}`
	rs := check(t, "drivers/crc/f.c", src)
	if len(withPattern(rs, P1)) != 1 {
		t.Fatalf("want exactly one P1 report: %+v", rs)
	}
	if got := withPattern(rs, P5); len(got) != 0 {
		t.Fatalf("P5 inc-on-error candidate not deferred to P1: %+v", got)
	}
}
