package core

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/analysiscache"
	"repro/internal/obs"
)

// TestAnalyzePreCancelled pins the degenerate case: a context cancelled
// before Analyze is even called returns immediately with an empty partial
// Run and context.Canceled, and stores nothing in the cache.
func TestAnalyzePreCancelled(t *testing.T) {
	sources, headers := parallelSources()
	cache, err := analysiscache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	run, err := Analyze(ctx, Request{
		Sources: sources, Headers: headers,
		Options: Options{Workers: 4, Confirm: true, Cache: cache},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if run == nil {
		t.Fatal("cancelled Analyze must still return the partial Run")
	}
	if len(run.Reports) != 0 {
		t.Fatalf("pre-cancelled run produced %d reports", len(run.Reports))
	}

	// The aborted run must not have populated the unit cache.
	after, err := Analyze(context.Background(), Request{
		Sources: sources, Headers: headers,
		Options: Options{Workers: 1, Cache: cache},
		Trace:   obs.New("cancel-test"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Metric("cache.unit.hit") != 0 {
		t.Error("cancelled run left a unit cache entry behind")
	}
}

// TestAnalyzeCancellationMidPipeline races cancellation against the pipeline
// at a sweep of deadlines, from "expires during build" to "never expires".
// Whatever the timing, the invariants hold: Analyze always returns a non-nil
// Run, the error is nil or the context's error, and an error-free run is
// byte-identical to the uncancelled baseline. Under `go test -race` this
// also proves the worker pools drain cleanly (no send on closed channel, no
// writes to merged results after return).
func TestAnalyzeCancellationMidPipeline(t *testing.T) {
	sources, headers := parallelSources()
	opt := Options{Workers: 4, Confirm: true}

	want, err := Analyze(context.Background(), Request{Sources: sources, Headers: headers, Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Reports) == 0 {
		t.Fatal("baseline produced no reports")
	}

	before := runtime.NumGoroutine()
	for _, delay := range []time.Duration{
		0,
		50 * time.Microsecond,
		200 * time.Microsecond,
		time.Millisecond,
		5 * time.Millisecond,
		time.Second, // effectively uncancelled
	} {
		ctx, cancel := context.WithTimeout(context.Background(), delay)
		run, err := Analyze(ctx, Request{Sources: sources, Headers: headers, Options: opt})
		cancel()
		if run == nil {
			t.Fatalf("delay=%v: Analyze returned a nil Run", delay)
		}
		switch {
		case err == nil:
			if !reflect.DeepEqual(run.Reports, want.Reports) {
				t.Errorf("delay=%v: uncancelled run differs from baseline", delay)
			}
		case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
			// Partial result; nothing further to assert about its contents.
		default:
			t.Errorf("delay=%v: unexpected error %v", delay, err)
		}
	}

	// The drained worker pools must not leak goroutines. Allow the runtime a
	// moment to retire exiting workers before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after cancelled runs", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
