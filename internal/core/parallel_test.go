package core

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/cpg"
)

// analyzeReports runs Analyze and returns just the report list; test shorthand
// for the many determinism cross-checks below.
func analyzeReports(t testing.TB, sources []cpg.Source, headers map[string]string, opt Options) []Report {
	t.Helper()
	run, err := Analyze(context.Background(), Request{Sources: sources, Headers: headers, Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	return run.Reports
}

// parallelSources is a small multi-file tree with at least one instance of
// several patterns, so the parallel engine has real work to interleave.
func parallelSources() ([]cpg.Source, map[string]string) {
	sources := []cpg.Source{
		{Path: "drivers/a/leak.c", Content: `
static int a_probe(void)
{
	struct device_node *np = of_find_node_by_path("/soc");
	if (!np)
		return -ENODEV;
	use_node(np);
	return 0;
}`},
		{Path: "drivers/b/uad.c", Content: `
static void b_release(struct sock *sk)
{
	sock_put(sk);
	sk->sk_err = 0;
}`},
		{Path: "drivers/c/errpath.c", Content: `
static int c_attach(struct device_node *np)
{
	int err;
	of_node_get(np);
	err = register_thing(np);
	if (err)
		goto fail;
	of_node_put(np);
	return 0;
fail:
	return err;
}`},
		{Path: "include/shared.c", Content: `
#include "defs.h"
static int d_check(void)
{
	return SHARED_OK;
}`},
	}
	headers := map[string]string{"include/defs.h": "#define SHARED_OK 1\n"}
	return sources, headers
}

// TestPipelineParallelMatchesSequentialSmall runs the one-call pipeline
// (parse → check → confirm) sequentially and with several worker counts on
// an in-package tree; the report lists must be deeply equal. Running under
// `go test -race ./internal/core` also exercises the worker pools for data
// races at awkward small worker counts.
func TestPipelineParallelMatchesSequentialSmall(t *testing.T) {
	sources, headers := parallelSources()
	want := analyzeReports(t, sources, headers, Options{Workers: 1, Confirm: true})
	if len(want) == 0 {
		t.Fatal("no reports from sequential run")
	}
	for _, workers := range []int{2, 3, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got := analyzeReports(t, sources, headers, Options{Workers: workers, Confirm: true})
			if !reflect.DeepEqual(got, want) {
				t.Errorf("reports differ from sequential:\n  got  %+v\n  want %+v", got, want)
			}
		})
	}
}

// TestConfirmReports pins the confirmation stage: confirmed verdicts are set
// in place, identically at any worker count.
func TestConfirmReports(t *testing.T) {
	sources, headers := parallelSources()
	seq := analyzeReports(t, sources, headers, Options{Workers: 1})
	par := analyzeReports(t, sources, headers, Options{Workers: 1})
	nSeq := ConfirmReports(seq, 1)
	nPar := ConfirmReports(par, 4)
	if nSeq != nPar {
		t.Fatalf("confirmed counts differ: sequential %d, parallel %d", nSeq, nPar)
	}
	if nSeq == 0 {
		t.Fatal("expected at least one confirmed report")
	}
	for i := range seq {
		if seq[i].Confirmed != par[i].Confirmed {
			t.Errorf("report %d: Confirmed differs (%v vs %v)", i, seq[i].Confirmed, par[i].Confirmed)
		}
	}
}

// TestHeaderProviderSuffixDeterministic pins the suffix-resolution rule:
// when two header paths share a suffix, the lexicographically smallest path
// wins regardless of map iteration order.
func TestHeaderProviderSuffixDeterministic(t *testing.T) {
	m := newHeaderProvider(map[string]string{
		"b/sub/defs.h": "#define WHICH 2\n",
		"a/sub/defs.h": "#define WHICH 1\n",
		"c/sub/defs.h": "#define WHICH 3\n",
	})
	for i := 0; i < 50; i++ {
		s, ok := m.ReadFile("sub/defs.h")
		if !ok || s != "#define WHICH 1\n" {
			t.Fatalf("iteration %d: got %q, %v; want the lexicographically smallest match", i, s, ok)
		}
	}
	if s, ok := m.ReadFile("a/sub/defs.h"); !ok || s != "#define WHICH 1\n" {
		t.Fatalf("exact match broken: %q, %v", s, ok)
	}
	if _, ok := m.ReadFile("nope.h"); ok {
		t.Fatal("nonexistent header resolved")
	}
}
