package core

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/facts"
)

// toyChecker is the out-of-tree "P10" pass used to prove the registry
// contract: registration without touching the engine, numeric pattern
// ordering, and deterministic interleave with the built-ins.
type toyChecker struct{}

func (*toyChecker) ID() Pattern { return "P10" }

func (*toyChecker) Check(ff *facts.FunctionFacts) []Report {
	fn := ff.Fn
	return []Report{{
		Pattern: "P10", Impact: Leak,
		Function: fn.Def.Name, File: fn.File, Pos: fn.Def.Pos(),
		Message: "toy pass saw " + fn.Def.Name,
	}}
}

func TestRegistryToyCheckerRoundTrip(t *testing.T) {
	Register("P10", func() Checker { return &toyChecker{} })
	defer Unregister("P10")

	pats := RegisteredPatterns()
	if n := len(pats); n < 10 || pats[n-2] != P9 || pats[n-1] != "P10" {
		t.Fatalf("RegisteredPatterns = %v, want numeric order ending P9, P10", pats)
	}
	if c, ok := NewChecker("P10"); !ok || c.ID() != "P10" {
		t.Fatalf("NewChecker(P10) = %v, %v", c, ok)
	}
	if fp := NewEngine().patternsFP(); !strings.HasSuffix(fp, "P9,P10") {
		t.Fatalf("patternsFP = %q, want suffix P9,P10", fp)
	}

	// With the toy pass in the suite, reports must still be deterministic
	// across worker counts, and the toy pass must have run per function.
	sources, headers := parallelSources()
	seq := analyzeReports(t, sources, headers, Options{Workers: 1})
	if len(withPattern(seq, "P10")) == 0 {
		t.Fatal("toy checker produced no reports")
	}
	for _, w := range []int{2, 8} {
		par := analyzeReports(t, sources, headers, Options{Workers: w})
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("workers=%d reports differ from sequential with toy checker registered", w)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register should panic")
		}
	}()
	Register(P1, func() Checker { return &toyChecker{} })
}

func TestNewEngineForSelection(t *testing.T) {
	e, err := NewEngineFor([]Pattern{P4, P1, P4})
	if err != nil {
		t.Fatal(err)
	}
	var ids []Pattern
	for _, c := range e.Checkers {
		ids = append(ids, c.ID())
	}
	if !reflect.DeepEqual(ids, []Pattern{P1, P4}) {
		t.Fatalf("selection = %v, want deduplicated stable order [P1 P4]", ids)
	}
	if _, err := NewEngineFor([]Pattern{"P77"}); err == nil ||
		!strings.Contains(err.Error(), `unknown checker pattern "P77"`) {
		t.Fatalf("unknown pattern error = %v", err)
	} else if !errors.Is(err, ErrUnknownPattern) {
		t.Fatalf("NewEngineFor error %v does not wrap ErrUnknownPattern", err)
	}
	if e := NewEngine(); len(e.Checkers) != 9 {
		t.Fatalf("NewEngine has %d checkers, want the 9 built-ins", len(e.Checkers))
	}
}

func TestParsePatterns(t *testing.T) {
	got, err := ParsePatterns(" P4 , P1 ,")
	if err != nil || !reflect.DeepEqual(got, []Pattern{P4, P1}) {
		t.Fatalf("ParsePatterns = %v, %v", got, err)
	}
	if got, err := ParsePatterns(""); got != nil || err != nil {
		t.Fatalf("empty selection = %v, %v; want nil, nil", got, err)
	}
	_, err = ParsePatterns("P1,PX")
	if err == nil {
		t.Fatal("unknown pattern should be an error")
	}
	if !errors.Is(err, ErrUnknownPattern) {
		t.Fatalf("ParsePatterns error %v does not wrap ErrUnknownPattern", err)
	}
	// The usage error must name every registered ID so the CLI message is
	// self-explanatory.
	for _, p := range RegisteredPatterns() {
		if !strings.Contains(err.Error(), string(p)) {
			t.Fatalf("error %q does not list registered pattern %s", err, p)
		}
	}
}

// TestEngineFactsComputedOnce asserts the facts layer memoizes across the
// whole checker suite: one compute per defined function regardless of
// worker count or how many checkers consume the facts.
func TestEngineFactsComputedOnce(t *testing.T) {
	sources, headers := parallelSources()
	run, err := Analyze(context.Background(), Request{Sources: sources, Headers: headers})
	if err != nil {
		t.Fatal(err)
	}
	u := run.Unit
	for _, workers := range []int{1, 8} {
		uf := facts.NewUnit(u)
		e := NewEngine()
		e.Workers = workers
		e.CheckUnitFacts(uf)
		if got, want := uf.Computes(), int64(len(uf.FunctionNames())); got != want {
			t.Fatalf("workers=%d: facts computed %d times, want %d (once per function)", workers, got, want)
		}
		// A second pass over the same UnitFacts recomputes nothing.
		e.CheckUnitFacts(uf)
		if got, want := uf.Computes(), int64(len(uf.FunctionNames())); got != want {
			t.Fatalf("re-check recomputed facts: %d != %d", got, want)
		}
	}
}
