package core

import (
	"fmt"

	"repro/internal/apidb"
	"repro/internal/facts"
	"repro/internal/semantics"
)

func init() {
	Register(P3, func() Checker { return &SmartLoopChecker{} })
	Register(P4, func() Checker { return &HiddenRefChecker{} })
}

// SmartLoopChecker implements anti-pattern P3 (§5.2.1):
//
//	F_start → M_SL → S_break → F_end
//
// Macro-defined smartloops (for_each_matching_node, ...) take a reference on
// the iteration variable at the top of each iteration and drop it when the
// iterator advances; breaking out of the loop leaves the current element's
// reference held, so the user must put it before the break.
type SmartLoopChecker struct{}

// ID returns P3.
func (*SmartLoopChecker) ID() Pattern { return P3 }

// Check computes, along each path, the reference balance of every smartloop
// iteration variable at user-written break/goto/return exits from the loop.
func (*SmartLoopChecker) Check(ff *facts.FunctionFacts) []Report {
	fn := ff.Fn
	db := ff.Unit.DB
	var out []Report
	reported := map[dedupKey]bool{}
	for ti := range ff.Data.Traces {
		tr := &ff.Data.Traces[ti]
		evs := tr.Events
		// balance per loop-injected object; loopOf remembers which macro and
		// lastInc the most recent acquisition (innermost-loop attribution).
		balance := map[string]int{}
		loopOf := map[string]string{}
		lastInc := map[string]int{}
		pathReported := map[string]bool{}
		var lastEv *semantics.Event
		for i := range evs {
			ev := &evs[i]
			lastEv = ev
			switch ev.Op {
			case semantics.OpInc:
				if ff.SmartLoop(*ev) && ev.Obj != "" {
					balance[ev.Obj]++
					loopOf[ev.Obj] = ev.FromMacro
					lastInc[ev.Obj] = i
				}
			case semantics.OpDec:
				for obj := range balance {
					if sameObj(ev.Obj, obj) {
						balance[obj]--
					}
				}
			case semantics.OpCond:
				// A smartloop exits when the iteration variable goes NULL:
				// on the NULL branch nothing is held any more.
				for _, name := range tr.BranchNull(i) {
					for obj := range balance {
						if semantics.BaseOf(obj) == name {
							balance[obj] = 0
						}
					}
				}
			case semantics.OpReturn:
				// Returning the element transfers ownership: not a leak.
				for obj := range balance {
					if ev.Obj != "" && sameObj(ev.Obj, obj) {
						balance[obj] = 0
					}
				}
			case semantics.OpBreak:
				if ev.FromMacro != "" {
					continue // macro-internal break is loop mechanics
				}
				// A break exits only the innermost loop: attribute it to
				// the most recently acquired loop variable.
				obj, best := "", -1
				for cand, bal := range balance {
					if bal > 0 && lastInc[cand] > best {
						obj, best = cand, lastInc[cand]
					}
				}
				if obj == "" {
					continue
				}
				pathReported[obj] = true
				macro := loopOf[obj]
				key := dk(ev.Pos, obj, "")
				if reported[key] {
					continue
				}
				reported[key] = true
				put := db.Loop(macro).PutAPI
				out = append(out, Report{
					Pattern: P3, Impact: Leak,
					Function: fn.Def.Name, File: fn.File, Pos: ev.Pos,
					Object: obj, API: macro,
					Message:    fmt.Sprintf("break out of %s leaks the reference %s holds on %s", macro, macro, obj),
					Suggestion: fmt.Sprintf("%s(%s); /* before the break */", put, obj),
					Witness:    evs,
				})
			}
		}
		// Premature exits that are not breaks (return inside the loop, goto
		// out of it): the path ends with a positive balance that no break
		// report covered. Loop exhaustion is excluded above by the NULL
		// discharge at the loop condition.
		for obj, bal := range balance {
			if bal <= 0 || pathReported[obj] {
				continue
			}
			macro := loopOf[obj]
			pos := fn.Def.Pos()
			if lastEv != nil {
				pos = lastEv.Pos
			}
			key := dk(pos, obj, "exit")
			if reported[key] {
				continue
			}
			reported[key] = true
			put := db.Loop(macro).PutAPI
			out = append(out, Report{
				Pattern: P3, Impact: Leak,
				Function: fn.Def.Name, File: fn.File, Pos: pos,
				Object: obj, API: macro,
				Message:    fmt.Sprintf("premature exit from %s leaks the reference it holds on %s", macro, obj),
				Suggestion: fmt.Sprintf("%s(%s); /* before leaving the loop */", put, obj),
				Witness:    evs,
			})
		}
	}
	return out
}

// HiddenRefChecker implements anti-pattern P4 (§5.2.2):
//
//	F_start → S_{G_H|P_H} → F_end
//
// Find-like refcounting-embedded APIs hide a get in their return value (and
// sometimes a put of their cursor argument). Two bug classes follow:
//
//   - missing-put (leak): the returned reference is never put on some path,
//     never returned to the caller, and never escapes the function;
//   - missing-get (UAF): the hidden put of a cursor argument drops a
//     reference the caller still owns, with no prior local get.
type HiddenRefChecker struct{}

// ID returns P4.
func (*HiddenRefChecker) ID() Pattern { return P4 }

// Check runs both directions of the hidden-refcounting analysis.
func (c *HiddenRefChecker) Check(ff *facts.FunctionFacts) []Report {
	out := c.missingPut(ff)
	out = append(out, c.missingGet(ff)...)
	return out
}

// missingPut flags hidden-get references with a put-free path to exit.
// Increments another pattern owns — smartloop iterations (P3), stores into
// long-lived state (P6), paired-but-error-path leaks (P5) — are emitted as
// tagged candidates for the engine's deferral table instead of being
// tracked; the live-state analysis below sees exactly the untagged stream.
func (*HiddenRefChecker) missingPut(ff *facts.FunctionFacts) []Report {
	fn := ff.Fn
	var out []Report
	reported := map[dedupKey]bool{}
	// Whole-function decrement view: when the developer did pair the put
	// somewhere, a put-free path is an overlooked *location* (P5), not an
	// overlooked *API*.
	fnDecs := ff.Decs()
	pairedSomewhere := func(inc semantics.Event) bool {
		for _, d := range fnDecs {
			if decBalances(d, inc) {
				return true
			}
		}
		return false
	}
	for ti := range ff.Data.Traces {
		tr := &ff.Data.Traces[ti]
		evs := tr.Events
		type tracked struct {
			ev      semantics.Event
			balance int
			dead    bool // returned, escaped, or reassigned away
		}
		live := map[string]*tracked{}
		var dropped []semantics.Event // refs discarded at the call site
		for i, ev := range evs {
			switch ev.Op {
			case semantics.OpInc:
				if ev.Info == nil || !ev.Info.ReturnsRef || ev.Info.Class != apidb.Embedded {
					continue
				}
				var why DeferralReason
				switch {
				case ff.SmartLoop(ev):
					why = DeferSmartLoop
				case ev.Obj == "":
					// handled below as a discarded reference
				case ev.EscapesVia != "":
					why = DeferLongLivedStore
				case pairedSomewhere(ev) && tr.ErrorAtOrAfter(i):
					why = DeferPairedErrorPath
				}
				if why != "" {
					// Deferred candidate: emit it tagged so the engine's
					// table owns the drop, without perturbing the live
					// tracking the untagged analysis sees. The tag is part
					// of the dedup key so tagged candidates never shadow a
					// genuine report at the same position.
					key := dk(ev.Pos, ev.Obj, string(why))
					if reported[key] {
						continue
					}
					reported[key] = true
					rep := Report{
						Pattern: P4, Impact: Leak,
						Function: fn.Def.Name, File: fn.File, Pos: ev.Pos,
						Object: ev.Obj, API: ev.API,
						Witness:  evs,
						Deferred: why,
					}
					// Candidates the deferral table is guaranteed to drop
					// never surface their message; skip building it.
					if !deferralSet[P4][why] {
						rep.Message = fmt.Sprintf("%s returns a reference hidden in %s that is never put on this path", ev.API, ev.Obj)
						rep.Suggestion = fmt.Sprintf("%s(%s); /* before every exit on this path */", putNameFor(ff.Unit.DB, ev), ev.Obj)
					}
					out = append(out, rep)
					continue
				}
				if ev.Obj == "" {
					dropped = append(dropped, ev)
					continue
				}
				live[ev.Obj] = &tracked{ev: ev, balance: 1}
			case semantics.OpCond:
				// The branch where the pointer is known NULL holds no
				// reference — the find failed, nothing to put.
				for _, name := range tr.BranchNull(i) {
					for obj, t := range live {
						if semantics.BaseOf(obj) == name {
							t.dead = true
						}
					}
				}
			case semantics.OpDec:
				for obj, t := range live {
					if sameObj(ev.Obj, obj) {
						t.balance--
					}
				}
			case semantics.OpAssign:
				// Escape or aliasing forgives the leak conservatively.
				for obj, t := range live {
					if sameObj(ev.Obj, obj) && (ev.EscapesVia != "" || ev.AssignTarget != "") {
						t.dead = true
					}
					if sameObj(ev.AssignTarget, obj) {
						t.dead = true // overwritten; alias analysis out of scope
					}
				}
			case semantics.OpReturn:
				for obj, t := range live {
					if ev.Obj != "" && sameObj(ev.Obj, obj) {
						t.dead = true // ownership transferred to caller
					}
				}
			}
		}
		for obj, t := range live {
			if t.dead || t.balance <= 0 {
				continue
			}
			key := dk(t.ev.Pos, obj, "")
			if reported[key] {
				continue
			}
			reported[key] = true
			out = append(out, Report{
				Pattern: P4, Impact: Leak,
				Function: fn.Def.Name, File: fn.File, Pos: t.ev.Pos,
				Object: obj, API: t.ev.API,
				Message:    fmt.Sprintf("%s returns a reference hidden in %s that is never put on this path", t.ev.API, obj),
				Suggestion: fmt.Sprintf("%s(%s); /* before every exit on this path */", putNameFor(ff.Unit.DB, t.ev), obj),
				Witness:    evs,
			})
		}
		for _, ev := range dropped {
			key := dk(ev.Pos, "<dropped>", "")
			if reported[key] {
				continue
			}
			reported[key] = true
			out = append(out, Report{
				Pattern: P4, Impact: Leak,
				Function: fn.Def.Name, File: fn.File, Pos: ev.Pos,
				Object: "", API: ev.API,
				Message:    fmt.Sprintf("the reference returned by %s is discarded at the call site", ev.API),
				Suggestion: fmt.Sprintf("capture the result and %s it when done", putNameFor(ff.Unit.DB, ev)),
				Witness:    evs,
			})
		}
	}
	return out
}

// missingGet flags hidden cursor puts of caller-owned parameters with no
// prior local get (the of_node_get-on-from lesson from Listing 4).
func (*HiddenRefChecker) missingGet(ff *facts.FunctionFacts) []Report {
	fn := ff.Fn
	var out []Report
	reported := map[dedupKey]bool{}
	for ti := range ff.Data.Traces {
		evs := ff.Data.Traces[ti].Events
		got := map[string]bool{}
		for _, ev := range evs {
			switch ev.Op {
			case semantics.OpInc:
				if ev.Obj != "" {
					got[semantics.BaseOf(ev.Obj)] = true
				}
			case semantics.OpDec:
				if ev.Info == nil || !ev.Info.HasDecArg || ev.FromMacro != "" {
					continue
				}
				base := semantics.BaseOf(ev.Obj)
				if !ff.IsParam(base) || got[base] {
					continue
				}
				key := dk(ev.Pos, ev.Obj, "")
				if reported[key] {
					continue
				}
				reported[key] = true
				get := "of_node_get"
				out = append(out, Report{
					Pattern: P4, Impact: UAF,
					Function: fn.Def.Name, File: fn.File, Pos: ev.Pos,
					Object: ev.Obj, API: ev.API,
					Message:    fmt.Sprintf("%s drops the caller's reference on %s (hidden put of its cursor) without a prior get", ev.API, ev.Obj),
					Suggestion: fmt.Sprintf("%s(%s); /* before calling %s */", get, ev.Obj, ev.API),
					Witness:    evs,
				})
			}
		}
	}
	return out
}

func putNameFor(db *apidb.DB, ev semantics.Event) string {
	if ev.Info != nil && ev.Info.Pair != "" {
		return ev.Info.Pair
	}
	_ = db
	return "put"
}
