package core

import (
	"sort"

	"repro/internal/obs"
)

// This file is the single home of cross-pattern precedence: which pattern
// owns a diagnosis when several checkers can describe the same underlying
// bug. It has two layers, both applied by the engine after collection:
//
//  1. The deferral table: checkers emit candidates tagged with a
//     DeferralReason instead of silently skipping "some other checker's
//     business" inline; applyDeferrals drops every tagged candidate whose
//     (pattern, reason) pair appears in the table. This replaces the
//     early-continue special cases that used to live inside
//     checker_hidden.go and checker_location.go.
//  2. The rank map: among surviving reports on the same (file, function,
//     object), the most specific diagnosis wins (P1/P2/P3/P7/P8/P9 over P4
//     over P5/P6), enforced by finalize.

// DeferralReason tags a candidate report that a more specific checker owns.
// Tagged candidates are collected normally (so tests can assert the table
// reproduces each historical inline skip) and dropped by applyDeferrals
// before deduplication; they never reach the engine's output.
type DeferralReason string

// The deference rules hoisted out of the checkers.
const (
	// DeferIncOnError: increments-on-error APIs are P1's specialty — a
	// leak through their error path is a return-error deviation.
	DeferIncOnError DeferralReason = "inc-on-error"
	// DeferSmartLoop: smartloop iteration references are P3's business —
	// the loop macro, not the hidden-get API it expands to, owns the
	// diagnosis.
	DeferSmartLoop DeferralReason = "smartloop"
	// DeferLongLivedStore: references stored into long-lived state are
	// P6's business — the put belongs in the paired release callback.
	DeferLongLivedStore DeferralReason = "long-lived-store"
	// DeferPairedErrorPath: an increment paired somewhere but leaking
	// through an error block is exactly P5's overlooked-location
	// diagnosis, not P4's overlooked-API one.
	DeferPairedErrorPath DeferralReason = "paired-error-path"
)

// DeferralRule says: a From-pattern candidate tagged with Reason is owned by
// the To pattern, so the engine drops the candidate.
type DeferralRule struct {
	From   Pattern
	Reason DeferralReason
	To     Pattern
}

// deferralRules is the declarative precedence/suppression table. To is
// documentation (the owning pattern runs independently and produces its own
// report); From+Reason decide the drop.
var deferralRules = []DeferralRule{
	{From: P4, Reason: DeferSmartLoop, To: P3},
	{From: P4, Reason: DeferLongLivedStore, To: P6},
	{From: P4, Reason: DeferPairedErrorPath, To: P5},
	{From: P5, Reason: DeferIncOnError, To: P1},
	{From: P5, Reason: DeferSmartLoop, To: P3},
	{From: P6, Reason: DeferSmartLoop, To: P3},
}

// DeferralTable returns a copy of the precedence/suppression table (for
// tests and documentation tooling).
func DeferralTable() []DeferralRule {
	return append([]DeferralRule(nil), deferralRules...)
}

// deferralSet indexes the table for the engine's filter.
var deferralSet = func() map[Pattern]map[DeferralReason]bool {
	m := map[Pattern]map[DeferralReason]bool{}
	for _, r := range deferralRules {
		if m[r.From] == nil {
			m[r.From] = map[DeferralReason]bool{}
		}
		m[r.From][r.Reason] = true
	}
	return m
}()

// applyDeferrals drops candidates whose (pattern, reason) tag appears in the
// deferral table, counting each drop into reg (nil-safe) as
// deferrals.<pattern>.<reason>. Candidates tagged with a reason the table
// does not map for their pattern survive untouched — an unknown tag must be
// visible, not silently eaten.
func applyDeferrals(reports []Report, reg *obs.Registry) []Report {
	var out []Report
	for _, r := range reports {
		if r.Deferred != "" && deferralSet[r.Pattern][r.Deferred] {
			reg.Add("deferrals."+string(r.Pattern)+"."+string(r.Deferred), 1)
			continue
		}
		out = append(out, r)
	}
	return out
}

// precedence ranks patterns for same-object suppression among surviving
// reports: lower value wins on the same (file, function, object).
var precedence = map[Pattern]int{
	P1: 0, P2: 0, P3: 0, P7: 0, P8: 0, P9: 0, // specific diagnoses
	P4: 1,
	P5: 2,
	P6: 2,
}

// finalize deduplicates, applies same-object rank suppression, and sorts
// reports into the stable output order.
func finalize(reports []Report) []Report {
	// Exact-duplicate removal. The keys mirror Report.Key but are comparable
	// structs, so deduplicating candidates allocates nothing.
	type rkey struct {
		file    string
		line    int
		pattern Pattern
		object  string
	}
	seen := map[rkey]bool{}
	var uniq []Report
	for _, r := range reports {
		k := rkey{r.File, r.Pos.Line, r.Pattern, r.Object}
		if seen[k] {
			continue
		}
		seen[k] = true
		uniq = append(uniq, r)
	}
	// Cross-pattern suppression on (function, object, impact-family).
	type okey struct{ file, function, object string }
	best := map[okey]int{}
	objKey := func(r Report) okey { return okey{r.File, r.Function, r.Object} }
	for _, r := range uniq {
		k := objKey(r)
		p := precedence[r.Pattern]
		if cur, ok := best[k]; !ok || p < cur {
			best[k] = p
		}
	}
	var out []Report
	for _, r := range uniq {
		if r.Object != "" && precedence[r.Pattern] > best[objKey(r)] {
			continue
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pattern != b.Pattern {
			return a.Pattern < b.Pattern
		}
		return a.Object < b.Object
	})
	return out
}
