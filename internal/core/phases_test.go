package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/apidb"
	"repro/internal/corpus"
	"repro/internal/cpg"
)

// phasesSpec is a compact corpus covering every anti-pattern family plus a
// bait, so the phased pipeline is exercised across cross-file discovery
// (loops, wrappers, callback pairs) — the parts a partitioned run could
// plausibly get wrong.
func phasesSpec() corpus.Spec {
	return corpus.Spec{
		Seed:           11,
		CleanPerModule: 2,
		FPBaits:        2,
		Plan: []corpus.ModulePlan{
			{Subsystem: "arch", Module: "arm",
				Patterns:   map[corpus.PatternID]int{"P4": 2, "P6": 1, "P7": 1, "P9": 1},
				TopAPIs:    []string{"of_find_compatible_node", "of_find_matching_node"},
				MissingGet: 1},
			{Subsystem: "drivers", Module: "mfd",
				Patterns: map[corpus.PatternID]int{"P1": 1},
				TopAPIs:  []string{"pm_runtime_get_sync"}},
			{Subsystem: "drivers", Module: "gpu",
				Patterns: map[corpus.PatternID]int{"P3": 1, "P5": 1, "P8": 1},
				TopAPIs:  []string{"of_graph_get_port_by_id", "for_each_child_of_node"}},
			{Subsystem: "net", Module: "ipv4",
				Patterns:  map[corpus.PatternID]int{"P2": 1, "P8": 1},
				TopAPIs:   []string{"sock_put"},
				PinnedUAD: 1},
		},
	}
}

func phasesCorpus() ([]cpg.Source, map[string]string) {
	c := corpus.Generate(phasesSpec())
	srcs := make([]cpg.Source, len(c.Files))
	for i, f := range c.Files {
		srcs[i] = cpg.Source{Path: f.Path, Content: f.Content}
	}
	return srcs, c.Headers
}

// runPhased drives the four-phase pipeline in-process at a given shard count,
// exactly as the multi-process manager does (minus the wire, which
// cpg's codec tests pin separately).
func runPhased(t *testing.T, srcs []cpg.Source, headers map[string]string, shards int, opt Options) *Run {
	t.Helper()
	ctx := context.Background()
	db := apidb.New()
	opt.DB = db
	req := Request{Sources: srcs, Headers: headers, Options: opt}

	var arts []*cpg.ShardArtifact
	for _, shard := range Partition(srcs, shards) {
		art, err := LocalPass(ctx, req, shard)
		if err != nil {
			t.Fatalf("shards=%d: LocalPass: %v", shards, err)
		}
		arts = append(arts, art)
	}
	merged, disc := Exchange(db, arts)
	run, err := GlobalPass(ctx, req, merged, disc)
	if err != nil {
		t.Fatalf("shards=%d: GlobalPass: %v", shards, err)
	}
	return run
}

// TestPhasedPipelineMatchesAnalyze is the core-layer determinism pin:
// Partition → LocalPass per shard → Exchange → GlobalPass must reproduce
// Analyze's reports and summary exactly at every shard count, including
// shard counts exceeding the file count.
func TestPhasedPipelineMatchesAnalyze(t *testing.T) {
	srcs, headers := phasesCorpus()
	opt := Options{Workers: 2, Confirm: true}
	want, err := Analyze(context.Background(), Request{Sources: srcs, Headers: headers, Options: opt})
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Reports) == 0 {
		t.Fatal("reference run produced no reports")
	}

	for _, shards := range []int{1, 2, 3, 7, len(srcs) + 5} {
		run := runPhased(t, srcs, headers, shards, opt)
		if !reflect.DeepEqual(run.Reports, want.Reports) {
			t.Errorf("shards=%d: reports differ from Analyze (%d vs %d)",
				shards, len(run.Reports), len(want.Reports))
		}
		if run.Summary != want.Summary {
			t.Errorf("shards=%d: summary %+v != %+v", shards, run.Summary, want.Summary)
		}
		if run.Unit == nil || len(run.Unit.Errors) != len(want.Unit.Errors) {
			t.Errorf("shards=%d: unit errors differ", shards)
		}
	}
}

// TestPartition pins the partition function's contract: deterministic,
// disjoint, sorted round-robin, clamped shard count.
func TestPartition(t *testing.T) {
	srcs := []cpg.Source{
		{Path: "c.c"}, {Path: "a.c"}, {Path: "b.c"}, {Path: "d.c"},
	}
	parts := Partition(srcs, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d, want 3", len(parts))
	}
	got := [][]string{}
	for _, p := range parts {
		var paths []string
		for _, s := range p {
			paths = append(paths, s.Path)
		}
		got = append(got, paths)
	}
	want := [][]string{{"a.c", "d.c"}, {"b.c"}, {"c.c"}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("partition = %v, want %v", got, want)
	}

	if p := Partition(srcs, 99); len(p) != len(srcs) {
		t.Errorf("oversharded partition has %d shards, want %d", len(p), len(srcs))
	}
	if p := Partition(srcs, 0); len(p) != 1 {
		t.Errorf("shards=0 partition has %d shards, want 1", len(p))
	}
	if p := Partition(nil, 4); p != nil {
		t.Errorf("empty corpus partition = %v, want nil", p)
	}
}
