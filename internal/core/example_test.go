package core_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpg"
)

// ExampleAnalyze runs the nine checkers over the paper's Listing 1 shape and
// prints the report.
func ExampleAnalyze() {
	src := `
struct nvmem_device *__nvmem_device_get(void *data)
{
	struct device *dev = bus_find_device(nvmem_bus_type, data);
	if (!dev)
		return 0;
	if (nvmem_validate(dev))
		return 0;
	return to_nvmem_device(dev);
}
`
	run, err := core.Analyze(context.Background(), core.Request{
		Sources: []cpg.Source{{Path: "drivers/nvmem/core.c", Content: src}},
	})
	if err != nil {
		panic(err)
	}
	for _, r := range run.Reports {
		fmt.Printf("%s/%s in %s: object %s via %s\n",
			r.Pattern, r.Impact, r.Function, r.Object, r.API)
	}
	// Output:
	// P4/Leak in __nvmem_device_get: object dev via bus_find_device
}
