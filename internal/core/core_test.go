package core

import (
	"context"
	"strings"
	"testing"

	"repro/internal/cpg"
)

// check runs the full engine over one source file at the given path.
func check(t *testing.T, path, src string) []Report {
	t.Helper()
	run, err := Analyze(context.Background(), Request{
		Sources: []cpg.Source{{Path: path, Content: src}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return run.Reports
}

func withPattern(reports []Report, p Pattern) []Report {
	var out []Report
	for _, r := range reports {
		if r.Pattern == p {
			out = append(out, r)
		}
	}
	return out
}

func TestP1ReturnError(t *testing.T) {
	buggy := `
static int stm32_crc_remove(struct platform_device *pdev)
{
	struct stm32_crc *crc = platform_get_drvdata(pdev);
	int ret = pm_runtime_get_sync(crc->dev);
	if (ret < 0)
		return ret;
	pm_runtime_put_noidle(crc->dev);
	return 0;
}`
	rs := withPattern(check(t, "drivers/crypto/stm32/stm32-crc32.c", buggy), P1)
	if len(rs) != 1 {
		t.Fatalf("P1 reports = %+v", rs)
	}
	r := rs[0]
	if r.Impact != Leak || r.API != "pm_runtime_get_sync" || r.Function != "stm32_crc_remove" {
		t.Errorf("report = %+v", r)
	}
	if r.Subsystem() != "drivers" || r.Module() != "crypto" {
		t.Errorf("subsystem/module = %s/%s", r.Subsystem(), r.Module())
	}

	fixed := `
static int stm32_crc_remove(struct platform_device *pdev)
{
	struct stm32_crc *crc = platform_get_drvdata(pdev);
	int ret = pm_runtime_get_sync(crc->dev);
	if (ret < 0) {
		pm_runtime_put_noidle(crc->dev);
		return ret;
	}
	pm_runtime_put_noidle(crc->dev);
	return 0;
}`
	if rs := withPattern(check(t, "d.c", fixed), P1); len(rs) != 0 {
		t.Fatalf("fixed still reported: %+v", rs)
	}
}

func TestP2ReturnNull(t *testing.T) {
	buggy := `
static int mdesc_user(void)
{
	struct mdesc_handle *hp = mdesc_grab();
	int num = hp->num_nodes;
	mdesc_release(hp);
	return num;
}`
	rs := withPattern(check(t, "drivers/tty/vcc.c", buggy), P2)
	if len(rs) != 1 {
		t.Fatalf("P2 reports = %+v", rs)
	}
	if rs[0].Impact != NPD || rs[0].API != "mdesc_grab" {
		t.Errorf("report = %+v", rs[0])
	}

	fixed := `
static int mdesc_user(void)
{
	struct mdesc_handle *hp = mdesc_grab();
	int num;
	if (!hp)
		return -ENODEV;
	num = hp->num_nodes;
	mdesc_release(hp);
	return num;
}`
	if rs := withPattern(check(t, "d.c", fixed), P2); len(rs) != 0 {
		t.Fatalf("fixed still reported: %+v", rs)
	}
}

const smartLoopHeader = `
#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
`

func TestP3SmartLoopBreak(t *testing.T) {
	buggy := smartLoopHeader + `
static int brcmstb_pm_probe(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (of_device_is_available(dn))
			break;
	}
	return 0;
}`
	rs := withPattern(check(t, "drivers/soc/bcm/pm-arm.c", buggy), P3)
	if len(rs) != 1 {
		t.Fatalf("P3 reports = %+v", rs)
	}
	if rs[0].Impact != Leak || rs[0].API != "for_each_matching_node" || rs[0].Object != "dn" {
		t.Errorf("report = %+v", rs[0])
	}
	if !strings.Contains(rs[0].Suggestion, "of_node_put(dn)") {
		t.Errorf("suggestion = %q", rs[0].Suggestion)
	}

	fixed := smartLoopHeader + `
static int brcmstb_pm_probe(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (of_device_is_available(dn)) {
			of_node_put(dn);
			break;
		}
	}
	return 0;
}`
	if rs := withPattern(check(t, "d.c", fixed), P3); len(rs) != 0 {
		t.Fatalf("fixed still reported: %+v", rs)
	}
}

func TestP3ReturnOfElementIsOwnershipTransfer(t *testing.T) {
	src := smartLoopHeader + `
static struct device_node *find_first(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (of_device_is_available(dn))
			return dn;
	}
	return 0;
}`
	if rs := withPattern(check(t, "d.c", src), P3); len(rs) != 0 {
		t.Fatalf("ownership transfer misreported: %+v", rs)
	}
}

func TestP4MissingPut(t *testing.T) {
	buggy := `
static int parse_clk(void)
{
	struct device_node *np = of_find_compatible_node(0, 0, "fixed-clock");
	if (!np)
		return -ENODEV;
	setup_clock(np);
	return 0;
}`
	rs := withPattern(check(t, "drivers/clk/clk-fixed.c", buggy), P4)
	if len(rs) != 1 {
		t.Fatalf("P4 reports = %+v", rs)
	}
	if rs[0].Impact != Leak || rs[0].API != "of_find_compatible_node" {
		t.Errorf("report = %+v", rs[0])
	}

	fixed := `
static int parse_clk(void)
{
	struct device_node *np = of_find_compatible_node(0, 0, "fixed-clock");
	if (!np)
		return -ENODEV;
	setup_clock(np);
	of_node_put(np);
	return 0;
}`
	if rs := withPattern(check(t, "d.c", fixed), P4); len(rs) != 0 {
		t.Fatalf("fixed still reported: %+v", rs)
	}
}

func TestP4ReturnTransfersOwnership(t *testing.T) {
	src := `
static struct device_node *lookup(void)
{
	struct device_node *np = of_find_node_by_path("/soc");
	return np;
}`
	if rs := withPattern(check(t, "d.c", src), P4); len(rs) != 0 {
		t.Fatalf("transfer misreported: %+v", rs)
	}
}

func TestP4EscapeForgiven(t *testing.T) {
	src := `
static int probe(struct my_priv *priv)
{
	struct device_node *np = of_find_node_by_path("/soc");
	priv->np = np;
	return 0;
}`
	if rs := withPattern(check(t, "d.c", src), P4); len(rs) != 0 {
		t.Fatalf("escaped ref misreported: %+v", rs)
	}
}

func TestP4DroppedRef(t *testing.T) {
	src := `
static void poke(void)
{
	of_find_node_by_path("/soc");
}`
	rs := withPattern(check(t, "d.c", src), P4)
	if len(rs) != 1 || rs[0].Object != "" {
		t.Fatalf("dropped-ref reports = %+v", rs)
	}
}

func TestP4MissingGetOnCursor(t *testing.T) {
	// Passing a caller-owned node as the from cursor: the hidden put drops
	// the caller's reference (§5.2.2: "the of_node_get should be added if
	// the from parameter is not NULL").
	buggy := `
static struct device_node *next_of(struct device_node *from)
{
	struct device_node *np = of_find_matching_node(from, matches);
	return np;
}`
	rs := withPattern(check(t, "d.c", buggy), P4)
	found := false
	for _, r := range rs {
		if r.Impact == UAF && r.Object == "from" {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing-get not reported: %+v", rs)
	}

	fixed := `
static struct device_node *next_of(struct device_node *from)
{
	struct device_node *np;
	of_node_get(from);
	np = of_find_matching_node(from, matches);
	return np;
}`
	for _, r := range withPattern(check(t, "d.c", fixed), P4) {
		if r.Impact == UAF {
			t.Fatalf("fixed still reported: %+v", r)
		}
	}
}

func TestP5ErrorHandleLeak(t *testing.T) {
	buggy := `
static int setup(struct device_node *np)
{
	int err;
	of_node_get(np);
	err = register_thing(np);
	if (err)
		goto fail;
	of_node_put(np);
	return 0;
fail:
	return err;
}`
	rs := withPattern(check(t, "drivers/dma/x.c", buggy), P5)
	if len(rs) != 1 {
		t.Fatalf("P5 reports = %+v", rs)
	}
	if rs[0].Impact != Leak || rs[0].API != "of_node_get" {
		t.Errorf("report = %+v", rs[0])
	}

	fixed := `
static int setup(struct device_node *np)
{
	int err;
	of_node_get(np);
	err = register_thing(np);
	if (err)
		goto fail;
	of_node_put(np);
	return 0;
fail:
	of_node_put(np);
	return err;
}`
	if rs := withPattern(check(t, "d.c", fixed), P5); len(rs) != 0 {
		t.Fatalf("fixed still reported: %+v", rs)
	}
}

func TestP6InterPairedCallbacks(t *testing.T) {
	buggy := `
struct platform_driver { int (*probe)(void); int (*remove)(void); };
static struct device_node *state_np;
static int d_probe(void)
{
	struct device_node *np = of_find_node_by_path("/soc");
	state_np = np;
	return 0;
}
static int d_remove(void)
{
	return 0;
}
static struct platform_driver d_driver = {
	.probe = d_probe,
	.remove = d_remove,
};`
	rs := withPattern(check(t, "drivers/soc/d.c", buggy), P6)
	if len(rs) != 1 {
		t.Fatalf("P6 reports = %+v", rs)
	}
	if rs[0].Function != "d_probe" || rs[0].Impact != Leak {
		t.Errorf("report = %+v", rs[0])
	}

	fixed := strings.Replace(buggy, `static int d_remove(void)
{
	return 0;
}`, `static int d_remove(void)
{
	of_node_put(state_np);
	return 0;
}`, 1)
	if rs := withPattern(check(t, "d.c", fixed), P6); len(rs) != 0 {
		t.Fatalf("fixed still reported: %+v", rs)
	}
}

func TestP6NamePairedFunctions(t *testing.T) {
	buggy := `
static struct device_node *cached;
static int foo_register(void)
{
	cached = of_find_node_by_path("/foo");
	return 0;
}
static void foo_unregister(void)
{
}`
	rs := withPattern(check(t, "drivers/misc/foo.c", buggy), P6)
	if len(rs) != 1 {
		t.Fatalf("P6 name-pair reports = %+v", rs)
	}
}

func TestP7DirectFree(t *testing.T) {
	buggy := `
struct widget { struct kref ref; char *name; };
static void drop_widget(struct widget *w)
{
	kfree(w);
}`
	rs := withPattern(check(t, "drivers/base/widget.c", buggy), P7)
	if len(rs) != 1 {
		t.Fatalf("P7 reports = %+v", rs)
	}
	if rs[0].Impact != Leak || rs[0].API != "kfree" {
		t.Errorf("report = %+v", rs[0])
	}

	ok := `
struct plain { int x; };
static void drop_plain(struct plain *p)
{
	kfree(p);
}`
	if rs := withPattern(check(t, "d.c", ok), P7); len(rs) != 0 {
		t.Fatalf("plain struct misreported: %+v", rs)
	}
}

func TestP8UseAfterDecrease(t *testing.T) {
	// Listing 6 (ping_unhash): sock_put then dereference.
	buggy := `
void ping_unhash(struct sock *sk)
{
	struct inet_sock *isk = inet_sk(sk);
	sock_put(sk);
	isk->inet_num = 0;
	sock_prot_inuse_add(net, sk->sk_prot, -1);
}`
	rs := withPattern(check(t, "net/ipv4/ping.c", buggy), P8)
	if len(rs) != 1 {
		t.Fatalf("P8 reports = %+v", rs)
	}
	if rs[0].Impact != UAF || rs[0].API != "sock_put" || rs[0].Object != "sk" {
		t.Errorf("report = %+v", rs[0])
	}

	fixed := `
void ping_unhash(struct sock *sk)
{
	struct inet_sock *isk = inet_sk(sk);
	isk->inet_num = 0;
	sock_prot_inuse_add(net, sk->sk_prot, -1);
	sock_put(sk);
}`
	if rs := withPattern(check(t, "d.c", fixed), P8); len(rs) != 0 {
		t.Fatalf("fixed still reported: %+v", rs)
	}
}

func TestP8Listing2USBSerial(t *testing.T) {
	buggy := `
static int usb_console_setup(struct usb_serial *serial)
{
	usb_serial_put(serial);
	mutex_unlock(&serial->disc_mutex);
	return 0;
}`
	rs := withPattern(check(t, "drivers/usb/serial/console.c", buggy), P8)
	if len(rs) != 1 {
		t.Fatalf("P8 reports = %+v", rs)
	}
}

func TestP8NonFreeingDecIgnored(t *testing.T) {
	// pm_runtime_put does not free the device; dereference after is fine.
	src := `
static void f(struct my_dev *crc)
{
	pm_runtime_put(crc->dev);
	crc->count = 0;
}`
	if rs := withPattern(check(t, "d.c", src), P8); len(rs) != 0 {
		t.Fatalf("non-freeing dec misreported: %+v", rs)
	}
}

func TestP9ReferenceEscape(t *testing.T) {
	buggy := `
static struct sock *monitor_sk;
static void attach(struct sock *sk)
{
	monitor_sk = sk;
}`
	rs := withPattern(check(t, "net/core/mon.c", buggy), P9)
	if len(rs) != 1 {
		t.Fatalf("P9 reports = %+v", rs)
	}
	if rs[0].Impact != UAF {
		t.Errorf("report = %+v", rs[0])
	}

	fixed := `
static struct sock *monitor_sk;
static void attach(struct sock *sk)
{
	sock_hold(sk);
	monitor_sk = sk;
}`
	if rs := withPattern(check(t, "d.c", fixed), P9); len(rs) != 0 {
		t.Fatalf("fixed still reported: %+v", rs)
	}
}

func TestP9OutParam(t *testing.T) {
	buggy := `
static void lookup_into(struct holder *out, struct sock *sk)
{
	out->sk = sk;
}`
	rs := withPattern(check(t, "net/core/x.c", buggy), P9)
	if len(rs) != 1 {
		t.Fatalf("P9 outparam reports = %+v", rs)
	}
}

func TestP9LocalOwnedEscapeIsTransfer(t *testing.T) {
	// Escaping a locally acquired hidden ref transfers ownership — P4/P9
	// must both stay quiet.
	src := `
static void stash(struct holder *out)
{
	struct device_node *np = of_find_node_by_path("/soc");
	out->np = np;
}`
	rs := check(t, "d.c", src)
	if len(withPattern(rs, P9)) != 0 || len(withPattern(rs, P4)) != 0 {
		t.Fatalf("transfer misreported: %+v", rs)
	}
}

func TestListing5FalsePositiveShape(t *testing.T) {
	// The paper's own false positive (lpfc): the checkers report it — the
	// semantics of the list iteration guard is beyond static scope — and
	// the study records it as FP via refsim; here we just pin the current
	// behaviour so regressions are visible.
	src := `
static void lpfc_shape(struct evt_list *phba, int match)
{
	struct lpfc_bsg_event *evt = list_first(phba);
	if (match)
		lpfc_bsg_event_ref(evt);
	use(evt);
}`
	rs := check(t, "drivers/scsi/lpfc/lpfc_bsg.c", src)
	// No crash, deterministic output.
	_ = rs
}

func TestEngineSuppression(t *testing.T) {
	// A P1-eligible bug must not additionally surface as P5.
	src := `
static int f(struct my_dev *crc)
{
	int ret = pm_runtime_get_sync(crc->dev);
	if (ret < 0)
		return ret;
	pm_runtime_put_noidle(crc->dev);
	return 0;
}`
	rs := check(t, "d.c", src)
	if len(withPattern(rs, P1)) != 1 {
		t.Fatalf("want P1: %+v", rs)
	}
	if len(withPattern(rs, P5)) != 0 {
		t.Fatalf("P5 not suppressed: %+v", rs)
	}
}

func TestReportsSortedAndDeduped(t *testing.T) {
	src := `
static void a(void)
{
	of_find_node_by_path("/a");
}
static void b(void)
{
	of_find_node_by_path("/b");
}`
	rs := check(t, "drivers/x/y.c", src)
	if len(rs) != 2 {
		t.Fatalf("reports = %+v", rs)
	}
	if rs[0].Pos.Line > rs[1].Pos.Line {
		t.Error("reports not sorted by line")
	}
	keys := map[string]bool{}
	for _, r := range rs {
		if keys[r.Key()] {
			t.Error("duplicate report keys")
		}
		keys[r.Key()] = true
	}
}

func TestCleanDriverNoReports(t *testing.T) {
	src := smartLoopHeader + `
static int good_probe(struct platform_device *pdev)
{
	struct device_node *dn;
	struct device_node *np = of_find_node_by_path("/soc");
	int err;
	if (!np)
		return -ENODEV;
	err = init_hw(np);
	if (err) {
		of_node_put(np);
		return err;
	}
	for_each_matching_node(dn, matches) {
		if (want(dn)) {
			of_node_put(dn);
			break;
		}
	}
	of_node_put(np);
	return 0;
}`
	rs := check(t, "drivers/good/clean.c", src)
	if len(rs) != 0 {
		t.Fatalf("clean driver reported: %+v", rs)
	}
}

// TestP1OnDiscoveredDeviation exercises the §5.1.3 future-work path: the
// deviated API is custom (absent from the seed table), its implementation is
// analyzed, the IncOnError deviation is discovered, and a caller with an
// unbalanced error path earns a P1 report.
func TestP1OnDiscoveredDeviation(t *testing.T) {
	src := `
struct my_pm_dev { atomic_t usage; };
static int __my_pm_suspend(struct my_pm_dev *dev)
{
	int retval;
	atomic_inc(&dev->usage);
	retval = rpm_resume(dev);
	return retval;
}
int my_pm_get_sync(struct my_pm_dev *dev)
{
	return __my_pm_suspend(dev);
}
void my_pm_put(struct my_pm_dev *dev)
{
	atomic_dec(&dev->usage);
}
static int driver_start(struct my_pm_dev *dev)
{
	int ret = my_pm_get_sync(dev);
	if (ret < 0)
		return ret;
	start_hw(dev);
	my_pm_put(dev);
	return 0;
}`
	rs := withPattern(check(t, "drivers/misc/custom.c", src), P1)
	found := false
	for _, r := range rs {
		if r.Function == "driver_start" && r.API == "my_pm_get_sync" {
			found = true
		}
	}
	if !found {
		t.Fatalf("discovered deviation did not produce P1: %+v", rs)
	}

	fixed := strings.Replace(src, `	if (ret < 0)
		return ret;`, `	if (ret < 0) {
		my_pm_put(dev);
		return ret;
	}`, 1)
	for _, r := range withPattern(check(t, "d.c", fixed), P1) {
		if r.Function == "driver_start" {
			t.Fatalf("fixed caller still reported: %+v", r)
		}
	}
}
