package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// ErrUnknownPattern is the sentinel wrapped by every checker-selection error
// (NewEngineFor, ParsePatterns, Analyze). CLIs match it with errors.Is to
// print a usage error instead of a stack trace.
var ErrUnknownPattern = errors.New("unknown checker pattern")

// registry maps pattern IDs to checker constructors. Each NewEngine call
// instantiates fresh checkers, so registered implementations may carry
// per-run state even though the built-in nine are stateless.
var registry = map[Pattern]func() Checker{}

// Register adds a checker constructor under its pattern ID. The nine
// built-in checkers register themselves from their file's init; external or
// experimental checkers (P10, ...) plug in the same way without touching the
// engine. Registering an already-registered pattern panics — replacing a
// checker is done explicitly via Unregister first.
func Register(p Pattern, mk func() Checker) {
	if p == "" || mk == nil {
		panic("core: Register requires a pattern ID and a constructor")
	}
	if _, dup := registry[p]; dup {
		panic("core: duplicate checker registration for " + string(p))
	}
	registry[p] = mk
}

// Unregister removes a registered checker (no-op for unknown patterns).
// Tests registering toy checkers use it for cleanup.
func Unregister(p Pattern) { delete(registry, p) }

// NewChecker instantiates the registered checker for a pattern.
func NewChecker(p Pattern) (Checker, bool) {
	mk, ok := registry[p]
	if !ok {
		return nil, false
	}
	return mk(), true
}

// RegisteredPatterns returns every registered pattern ID in stable pattern
// order: canonical "P<n>" IDs numerically (P2 before P10), anything else
// lexically after them.
func RegisteredPatterns() []Pattern {
	out := make([]Pattern, 0, len(registry))
	for p := range registry {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return patternLess(out[i], out[j]) })
	return out
}

// patternLess orders canonical "P<number>" IDs numerically and falls back to
// lexical order for exotic names (which sort after all canonical IDs).
func patternLess(a, b Pattern) bool {
	na, oka := patternNum(a)
	nb, okb := patternNum(b)
	if oka && okb {
		if na != nb {
			return na < nb
		}
		return a < b
	}
	if oka != okb {
		return oka
	}
	return a < b
}

func patternNum(p Pattern) (int, bool) {
	s := string(p)
	if len(s) < 2 || s[0] != 'P' {
		return 0, false
	}
	n := 0
	for i := 1; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return 0, false
		}
		n = n*10 + int(s[i]-'0')
	}
	return n, true
}

// NewEngine returns an engine with every registered checker in stable
// pattern order (the nine built-ins by default).
func NewEngine() *Engine {
	e, err := NewEngineFor(nil)
	if err != nil {
		panic("core: " + err.Error()) // unreachable: nil selects all registered
	}
	return e
}

// NewEngineFor returns an engine running the selected patterns, deduplicated
// and iterated in stable pattern order regardless of how the selection was
// spelled. A nil or empty selection runs every registered checker. Unknown
// patterns are an error naming the registered IDs — CLI callers surface it
// as a usage error (see ParsePatterns).
func NewEngineFor(patterns []Pattern) (*Engine, error) {
	if len(patterns) == 0 {
		patterns = RegisteredPatterns()
	}
	seen := map[Pattern]bool{}
	sel := make([]Pattern, 0, len(patterns))
	for _, p := range patterns {
		if registry[p] == nil {
			return nil, fmt.Errorf("%w %q (registered: %s)", ErrUnknownPattern, p, registeredIDs())
		}
		if !seen[p] {
			seen[p] = true
			sel = append(sel, p)
		}
	}
	sort.Slice(sel, func(i, j int) bool { return patternLess(sel[i], sel[j]) })
	checkers := make([]Checker, len(sel))
	for i, p := range sel {
		checkers[i] = registry[p]()
	}
	return &Engine{Checkers: checkers}, nil
}

// ParsePatterns parses a comma-separated checker selection ("P1,P4"). An
// empty string selects nil (= every registered checker); unknown patterns
// are an error naming the registered IDs, so CLIs can reject bad -checkers
// values as usage errors before running anything.
func ParsePatterns(s string) ([]Pattern, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []Pattern
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		p := Pattern(f)
		if registry[p] == nil {
			return nil, fmt.Errorf("%w %q (registered: %s)", ErrUnknownPattern, f, registeredIDs())
		}
		out = append(out, p)
	}
	return out, nil
}

func registeredIDs() string {
	ids := RegisteredPatterns()
	parts := make([]string, len(ids))
	for i, p := range ids {
		parts[i] = string(p)
	}
	return strings.Join(parts, ", ")
}

// patternsFP fingerprints an engine's checker selection for cache keys, so
// subset runs and full runs never share unit-level cache entries.
func (e *Engine) patternsFP() string {
	parts := make([]string, len(e.Checkers))
	for i, c := range e.Checkers {
		parts[i] = string(c.ID())
	}
	return strings.Join(parts, ",")
}
