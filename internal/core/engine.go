package core

import (
	"sort"

	"repro/internal/apidb"
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/cpg"
	"repro/internal/semantics"
)

// Checker is one anti-pattern detector. Function-scoped checkers receive one
// function at a time; unit-scoped checkers (P6) receive the whole unit via
// CheckUnit and return nil from Check.
type Checker interface {
	ID() Pattern
	Check(u *cpg.Unit, fn *cpg.Function) []Report
}

// UnitChecker is implemented by checkers that need whole-unit context.
type UnitChecker interface {
	CheckUnit(u *cpg.Unit) []Report
}

// Engine runs a checker suite over units.
type Engine struct {
	Checkers []Checker
}

// NewEngine returns an engine with all nine checkers in pattern order.
func NewEngine() *Engine {
	return &Engine{Checkers: []Checker{
		&ReturnErrorChecker{}, // P1
		&ReturnNullChecker{},  // P2
		&SmartLoopChecker{},   // P3
		&HiddenRefChecker{},   // P4
		&ErrorHandleChecker{}, // P5
		&InterPairedChecker{}, // P6
		&DirectFreeChecker{},  // P7
		&UADChecker{},         // P8
		&EscapeChecker{},      // P9
	}}
}

// CheckUnit runs every checker over the unit and returns deduplicated,
// position-sorted reports. Cross-pattern suppression keeps the most specific
// diagnosis: P1 (deviation) beats P5/P4 on the same (function, object), and
// P4 beats P5.
func (e *Engine) CheckUnit(u *cpg.Unit) []Report {
	var all []Report
	for _, c := range e.Checkers {
		if uc, ok := c.(UnitChecker); ok {
			all = append(all, uc.CheckUnit(u)...)
			continue
		}
		for _, name := range u.FunctionNames() {
			fn := u.Functions[name]
			if fn.Graph == nil {
				continue
			}
			all = append(all, c.Check(u, fn)...)
		}
	}
	return finalize(all)
}

// suppression precedence: lower value wins on the same (function, object).
var precedence = map[Pattern]int{
	P1: 0, P2: 0, P3: 0, P7: 0, P8: 0, P9: 0, // specific diagnoses
	P4: 1,
	P5: 2,
	P6: 2,
}

func finalize(reports []Report) []Report {
	// Exact-duplicate removal.
	seen := map[string]bool{}
	var uniq []Report
	for _, r := range reports {
		if seen[r.Key()] {
			continue
		}
		seen[r.Key()] = true
		uniq = append(uniq, r)
	}
	// Cross-pattern suppression on (function, object, impact-family).
	best := map[string]int{}
	objKey := func(r Report) string { return r.File + "|" + r.Function + "|" + r.Object }
	for _, r := range uniq {
		k := objKey(r)
		p := precedence[r.Pattern]
		if cur, ok := best[k]; !ok || p < cur {
			best[k] = p
		}
	}
	var out []Report
	for _, r := range uniq {
		if r.Object != "" && precedence[r.Pattern] > best[objKey(r)] {
			continue
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pattern != b.Pattern {
			return a.Pattern < b.Pattern
		}
		return a.Object < b.Object
	})
	return out
}

// CheckSources is the one-call entry point: build a unit from sources and
// check it.
func CheckSources(sources []cpg.Source, headers map[string]string) (*cpg.Unit, []Report) {
	b := &cpg.Builder{}
	if headers != nil {
		b.Headers = cpgHeaderProvider(headers)
	}
	u := b.Build(sources)
	return u, NewEngine().CheckUnit(u)
}

type cpgHeaderProvider map[string]string

func (m cpgHeaderProvider) ReadFile(path string) (string, bool) {
	if s, ok := m[path]; ok {
		return s, true
	}
	for p, s := range m {
		if len(p) > len(path) && p[len(p)-len(path)-1] == '/' && p[len(p)-len(path):] == path {
			return s, true
		}
	}
	return "", false
}

// --- shared helpers for checkers ---

// blockT and castType abbreviate cfg.Block / cast.Type in checker
// signatures.
type (
	blockT   = cfg.Block
	castType = cast.Type
)

// eventsOnPath flattens a path's events in block order, also returning the
// path index of each event's block (for branch-direction queries).
func eventsOnPath(fe *semantics.FuncEvents, p cfg.Path) (evs []semantics.Event, blockAt []int) {
	for i, b := range p {
		for _, ev := range fe.ByBlok[b] {
			evs = append(evs, ev)
			blockAt = append(blockAt, i)
		}
	}
	return evs, blockAt
}

// varTypes resolves local and parameter declared types for a function.
func varTypes(fn *cpg.Function) map[string]cast.Type {
	out := map[string]cast.Type{}
	for _, p := range fn.Def.Params {
		out[p.Name] = p.Type
	}
	if fn.Def.Body != nil {
		cast.Walk(fn.Def.Body, func(n cast.Node) bool {
			if d, ok := n.(*cast.DeclStmt); ok {
				out[d.Name] = d.Type
			}
			return true
		})
	}
	return out
}

// isRefStructVar reports whether the named variable's declared type is a
// pointer to a refcounted structure.
func isRefStructVar(db *apidb.DB, types map[string]cast.Type, name string) bool {
	t, ok := types[name]
	if !ok || !t.IsPointer() {
		return false
	}
	s := t.StructName()
	return s != "" && db.IsRefStruct(s)
}

// sameObj compares two object keys, tolerating base-vs-full-key mismatches
// (kref_put(&d->ref) balances kref_get(&d->ref); of_node_put(np) balances
// np).
func sameObj(a, b string) bool {
	if a == "" || b == "" {
		return a == b
	}
	return a == b || semantics.BaseOf(a) == semantics.BaseOf(b)
}
