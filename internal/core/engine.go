package core

import (
	"runtime"
	"sort"
	"sync"

	"repro/internal/analysiscache"
	"repro/internal/apidb"
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/cpg"
	"repro/internal/cpp"
	"repro/internal/refsim"
	"repro/internal/semantics"
)

// Checker is one anti-pattern detector. Function-scoped checkers receive one
// function at a time; unit-scoped checkers (P6) receive the whole unit via
// CheckUnit and return nil from Check.
type Checker interface {
	ID() Pattern
	Check(u *cpg.Unit, fn *cpg.Function) []Report
}

// UnitChecker is implemented by checkers that need whole-unit context.
type UnitChecker interface {
	CheckUnit(u *cpg.Unit) []Report
}

// Engine runs a checker suite over units.
type Engine struct {
	Checkers []Checker
	// Workers bounds the per-function checking concurrency: 0 means
	// GOMAXPROCS, 1 forces sequential checking. The checkers are stateless
	// and the unit is read-only during checking, so the function work queue
	// fans out safely; per-worker report buffers are merged in the
	// sequential (checker-major, function-name) order before finalize, so
	// the report list is byte-identical at any worker count.
	Workers int
}

// NewEngine returns an engine with all nine checkers in pattern order.
func NewEngine() *Engine {
	return &Engine{Checkers: []Checker{
		&ReturnErrorChecker{}, // P1
		&ReturnNullChecker{},  // P2
		&SmartLoopChecker{},   // P3
		&HiddenRefChecker{},   // P4
		&ErrorHandleChecker{}, // P5
		&InterPairedChecker{}, // P6
		&DirectFreeChecker{},  // P7
		&UADChecker{},         // P8
		&EscapeChecker{},      // P9
	}}
}

// CheckUnit runs every checker over the unit and returns deduplicated,
// position-sorted reports. Cross-pattern suppression keeps the most specific
// diagnosis: P1 (deviation) beats P5/P4 on the same (function, object), and
// P4 beats P5.
func (e *Engine) CheckUnit(u *cpg.Unit) []Report {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Functions with bodies, in name order — the unit of work.
	var fns []*cpg.Function
	for _, name := range u.FunctionNames() {
		if fn := u.Functions[name]; fn.Graph != nil {
			fns = append(fns, fn)
		}
	}

	// fnResults[fi][ci] holds checker ci's reports for function fi; each
	// (function, checker) cell is written by exactly one worker.
	fnResults := make([][][]Report, len(fns))
	checkFn := func(fi int) {
		cell := make([][]Report, len(e.Checkers))
		for ci, c := range e.Checkers {
			if _, unit := c.(UnitChecker); unit {
				continue
			}
			cell[ci] = c.Check(u, fns[fi])
		}
		fnResults[fi] = cell
	}

	// Unit-scoped checkers (P6) stay on the coordinating goroutine while
	// the function queue drains on workers.
	unitResults := make([][]Report, len(e.Checkers))
	runUnitScoped := func() {
		for ci, c := range e.Checkers {
			if uc, ok := c.(UnitChecker); ok {
				unitResults[ci] = uc.CheckUnit(u)
			}
		}
	}

	if workers > 1 && len(fns) > 1 {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for fi := range jobs {
					checkFn(fi)
				}
			}()
		}
		runUnitScoped()
		for fi := range fns {
			jobs <- fi
		}
		close(jobs)
		wg.Wait()
	} else {
		runUnitScoped()
		for fi := range fns {
			checkFn(fi)
		}
	}

	// Merge in checker-major, function-name order — exactly the order the
	// sequential loop produced, so finalize sees an identical input stream
	// (duplicate survival and tie-breaks match byte for byte).
	var all []Report
	for ci, c := range e.Checkers {
		if _, unit := c.(UnitChecker); unit {
			all = append(all, unitResults[ci]...)
			continue
		}
		for fi := range fns {
			all = append(all, fnResults[fi][ci]...)
		}
	}
	return finalize(all)
}

// suppression precedence: lower value wins on the same (function, object).
var precedence = map[Pattern]int{
	P1: 0, P2: 0, P3: 0, P7: 0, P8: 0, P9: 0, // specific diagnoses
	P4: 1,
	P5: 2,
	P6: 2,
}

func finalize(reports []Report) []Report {
	// Exact-duplicate removal.
	seen := map[string]bool{}
	var uniq []Report
	for _, r := range reports {
		if seen[r.Key()] {
			continue
		}
		seen[r.Key()] = true
		uniq = append(uniq, r)
	}
	// Cross-pattern suppression on (function, object, impact-family).
	best := map[string]int{}
	objKey := func(r Report) string { return r.File + "|" + r.Function + "|" + r.Object }
	for _, r := range uniq {
		k := objKey(r)
		p := precedence[r.Pattern]
		if cur, ok := best[k]; !ok || p < cur {
			best[k] = p
		}
	}
	var out []Report
	for _, r := range uniq {
		if r.Object != "" && precedence[r.Pattern] > best[objKey(r)] {
			continue
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pattern != b.Pattern {
			return a.Pattern < b.Pattern
		}
		return a.Object < b.Object
	})
	return out
}

// Options configures the one-call pipeline.
type Options struct {
	// Workers is the single parallelism knob, threaded through the CPG
	// builder (file-sharded phase 1, per-function phase 3), the checker
	// engine, and — when Confirm is set — the refsim confirmation stage.
	// 0 means GOMAXPROCS; 1 forces a fully sequential run. Output is
	// byte-identical at any worker count.
	Workers int
	// Confirm replays every report's witness through refsim and sets
	// Report.Confirmed.
	Confirm bool
	// DB is the API knowledge base, extended in place by discovery; nil
	// means a fresh apidb.New().
	DB *apidb.DB
	// Cache enables the incremental analysis cache (unit-level report
	// reuse plus per-file front-end reuse); nil disables caching.
	Cache *analysiscache.Cache
	// ConfigFP fingerprints checker configuration that is not derivable
	// from the sources — e.g. the content of an -apidb extension file. It
	// is folded into every cache key; callers with differing configs must
	// pass differing fingerprints (or distinct cache directories).
	ConfigFP string
}

// CheckSources is the one-call entry point: build a unit from sources and
// check it with default options.
func CheckSources(sources []cpg.Source, headers map[string]string) (*cpg.Unit, []Report) {
	return CheckSourcesOpts(sources, headers, Options{})
}

// CheckSourcesOpts builds a unit from sources, checks it, and optionally
// confirms the reports, with opt.Workers threaded through every stage. It is
// CheckSourcesRun without the run metadata; note that on a unit-level cache
// hit the returned Unit is nil.
func CheckSourcesOpts(sources []cpg.Source, headers map[string]string, opt Options) (*cpg.Unit, []Report) {
	run := CheckSourcesRun(sources, headers, opt)
	return run.Unit, run.Reports
}

// newHeaderProvider wraps a header map in the suffix-indexed provider so
// kernel-style <linux/of.h> resolution costs one map probe per #include.
func newHeaderProvider(headers map[string]string) cpp.FileProvider {
	return cpp.NewIndexedFiles(headers)
}

// ConfirmReports replays each report's witness through the refsim oracle in
// a batch (each replay is independent, so they fan out across workers) and
// sets Report.Confirmed in place. It returns the number confirmed. Verdicts
// are a pure function of (witness, claim), so the worker count cannot change
// the outcome.
func ConfirmReports(reports []Report, workers int) int {
	jobs := make([]refsim.Job, len(reports))
	for i, r := range reports {
		jobs[i] = refsim.Job{
			Witness: r.Witness,
			Claim: refsim.Claim{
				Impact:       r.Impact.String(),
				Object:       r.Object,
				AllowEscaped: r.Pattern == P6,
			},
		}
	}
	verdicts := refsim.ReplayAll(jobs, workers)
	n := 0
	for i := range reports {
		reports[i].Confirmed = verdicts[i].Confirmed
		if verdicts[i].Confirmed {
			n++
		}
	}
	return n
}

// --- shared helpers for checkers ---

// blockT and castType abbreviate cfg.Block / cast.Type in checker
// signatures.
type (
	blockT   = cfg.Block
	castType = cast.Type
)

// eventsOnPath flattens a path's events in block order, also returning the
// path index of each event's block (for branch-direction queries).
func eventsOnPath(fe *semantics.FuncEvents, p cfg.Path) (evs []semantics.Event, blockAt []int) {
	for i, b := range p {
		for _, ev := range fe.ByBlok[b] {
			evs = append(evs, ev)
			blockAt = append(blockAt, i)
		}
	}
	return evs, blockAt
}

// varTypes resolves local and parameter declared types for a function.
func varTypes(fn *cpg.Function) map[string]cast.Type {
	out := map[string]cast.Type{}
	for _, p := range fn.Def.Params {
		out[p.Name] = p.Type
	}
	if fn.Def.Body != nil {
		cast.Walk(fn.Def.Body, func(n cast.Node) bool {
			if d, ok := n.(*cast.DeclStmt); ok {
				out[d.Name] = d.Type
			}
			return true
		})
	}
	return out
}

// isRefStructVar reports whether the named variable's declared type is a
// pointer to a refcounted structure.
func isRefStructVar(db *apidb.DB, types map[string]cast.Type, name string) bool {
	t, ok := types[name]
	if !ok || !t.IsPointer() {
		return false
	}
	s := t.StructName()
	return s != "" && db.IsRefStruct(s)
}

// sameObj compares two object keys, tolerating base-vs-full-key mismatches
// (kref_put(&d->ref) balances kref_get(&d->ref); of_node_put(np) balances
// np).
func sameObj(a, b string) bool {
	if a == "" || b == "" {
		return a == b
	}
	return a == b || semantics.BaseOf(a) == semantics.BaseOf(b)
}
