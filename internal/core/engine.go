package core

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/analysiscache"
	"repro/internal/apidb"
	"repro/internal/cast"
	"repro/internal/cpg"
	"repro/internal/cpp"
	"repro/internal/facts"
	"repro/internal/obs"
	"repro/internal/refsim"
	"repro/internal/semantics"
)

// Checker is one anti-pattern detector, written as a query over the shared
// facts layer. Function-scoped checkers receive one function's immutable
// FunctionFacts at a time; unit-scoped checkers (P6) receive the whole unit
// via CheckUnit and return nil from Check.
//
// Checkers that own only part of a diagnosis emit candidates tagged with a
// DeferralReason instead of skipping them inline — the engine's precedence
// table (precedence.go) drops deferred candidates after collection.
type Checker interface {
	ID() Pattern
	Check(ff *facts.FunctionFacts) []Report
}

// UnitChecker is implemented by checkers that need whole-unit context.
type UnitChecker interface {
	CheckUnit(uf *facts.UnitFacts) []Report
}

// Engine runs a checker suite over units. Engines are built from the pass
// registry — NewEngine (all registered checkers) or NewEngineFor (a subset)
// in registry.go.
type Engine struct {
	Checkers []Checker
	// Workers bounds the per-function checking concurrency: 0 means
	// GOMAXPROCS, 1 forces sequential checking. The checkers are stateless
	// and the unit is read-only during checking, so the function work queue
	// fans out safely; per-worker report buffers are merged in the
	// sequential (checker-major, function-name) order before finalize, so
	// the report list is byte-identical at any worker count.
	Workers int
	// Obs, when non-nil, is the parent span the engine hangs per-function
	// "fn" spans and checker counters off (checker.functions, reports.total,
	// reports.<pattern>, deferrals.<pattern>.<reason>). Nil disables at
	// effectively zero cost; reports are byte-identical either way.
	Obs *obs.Span
}

// CheckUnit computes the unit's facts and runs every checker over them; see
// CheckUnitFacts for the engine proper.
func (e *Engine) CheckUnit(u *cpg.Unit) []Report {
	return e.CheckUnitFacts(facts.NewUnit(u))
}

// CheckUnitFacts runs every checker over the shared facts layer and returns
// deduplicated, position-sorted reports. It is CheckUnitFactsContext with a
// background context.
func (e *Engine) CheckUnitFacts(uf *facts.UnitFacts) []Report {
	return e.CheckUnitFactsContext(context.Background(), uf)
}

// CheckUnitFactsContext runs every checker over the shared facts layer and
// returns deduplicated, position-sorted reports. Each function's facts are
// computed exactly once (UnitFacts memoizes under sync.Once) no matter how
// many checkers or workers consume them. After collection the engine applies
// the deferral table, then cross-pattern rank suppression: P1 (deviation)
// beats P5/P4 on the same (function, object), and P4 beats P5.
//
// When ctx is cancelled mid-check the work queue drains cleanly and the
// return covers only the functions checked before cancellation; callers that
// must distinguish a partial result check ctx.Err().
func (e *Engine) CheckUnitFactsContext(ctx context.Context, uf *facts.UnitFacts) []Report {
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reg := e.Obs.Reg()

	// Defined functions in name order — the unit of work.
	fns := uf.FunctionNames()

	// fnResults[fi][ci] holds checker ci's reports for function fi; each
	// (function, checker) cell is written by exactly one worker. A nil cell
	// marks a function skipped by cancellation.
	fnResults := make([][][]Report, len(fns))
	// One backing array serves every function's checker cell; each worker
	// writes only its own function's window, so the windows never overlap.
	nc := len(e.Checkers)
	cellBacking := make([][]Report, len(fns)*nc)
	checkFn := func(fi int) {
		ff := uf.Function(fns[fi])
		cell := cellBacking[fi*nc : (fi+1)*nc : (fi+1)*nc]
		found := 0
		for ci, c := range e.Checkers {
			if _, unit := c.(UnitChecker); unit {
				continue
			}
			cell[ci] = c.Check(ff)
			found += len(cell[ci])
		}
		fnResults[fi] = cell
		// Only candidate-bearing functions get a span: at thousands of
		// functions per unit, the all-functions span list dominated trace
		// memory (several allocations apiece) while carrying no signal.
		if found > 0 {
			e.Obs.Child("fn").Str("name", fns[fi]).Int("candidates", found).End()
		}
	}

	// Unit-scoped checkers (P6) stay on the coordinating goroutine while
	// the function queue drains on workers; concurrent facts access is
	// safe because UnitFacts memoizes per function.
	unitResults := make([][]Report, len(e.Checkers))
	runUnitScoped := func() {
		for ci, c := range e.Checkers {
			if uc, ok := c.(UnitChecker); ok {
				sp := e.Obs.Child("pass").Str("pattern", string(c.ID()))
				unitResults[ci] = uc.CheckUnit(uf)
				sp.Int("candidates", len(unitResults[ci])).End()
			}
		}
	}

	checked := 0
	if workers > 1 && len(fns) > 1 {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for fi := range jobs {
					checkFn(fi)
				}
			}()
		}
		runUnitScoped()
	feed:
		for fi := range fns {
			select {
			case jobs <- fi:
				checked++
			case <-ctx.Done():
				break feed
			}
		}
		close(jobs)
		wg.Wait()
	} else {
		runUnitScoped()
		for fi := range fns {
			if ctx.Err() != nil {
				break
			}
			checkFn(fi)
			checked++
		}
	}

	// Merge in checker-major, function-name order — exactly the order the
	// sequential loop produced, so finalize sees an identical input stream
	// (duplicate survival and tie-breaks match byte for byte).
	var all []Report
	for ci, c := range e.Checkers {
		if _, unit := c.(UnitChecker); unit {
			all = append(all, unitResults[ci]...)
			continue
		}
		for fi := range fns {
			if fnResults[fi] == nil {
				continue
			}
			all = append(all, fnResults[fi][ci]...)
		}
	}
	out := finalize(applyDeferrals(all, reg))
	if reg != nil {
		reg.Add("checker.functions", int64(checked))
		reg.Add("reports.total", int64(len(out)))
		for _, r := range out {
			reg.Add("reports."+string(r.Pattern), 1)
		}
	}
	return out
}

// Options configures the one-call pipeline.
type Options struct {
	// Workers is the single parallelism knob, threaded through the CPG
	// builder (file-sharded phase 1, per-function phase 3), the checker
	// engine, and — when Confirm is set — the refsim confirmation stage.
	// 0 means GOMAXPROCS; 1 forces a fully sequential run. Output is
	// byte-identical at any worker count.
	Workers int
	// Confirm replays every report's witness through refsim and sets
	// Report.Confirmed.
	Confirm bool
	// DB is the API knowledge base, extended in place by discovery; nil
	// means a fresh apidb.New().
	DB *apidb.DB
	// Cache enables the incremental analysis cache (unit-level report
	// reuse, per-function facts reuse, per-file front-end reuse); nil
	// disables caching.
	Cache *analysiscache.Cache
	// ConfigFP fingerprints checker configuration that is not derivable
	// from the sources — e.g. the content of an -apidb extension file. It
	// is folded into every cache key; callers with differing configs must
	// pass differing fingerprints (or distinct cache directories).
	ConfigFP string
	// Checkers selects a subset of registered checkers by pattern ID; nil
	// or empty runs every registered checker. The selection is folded into
	// the unit-level cache key, so subset runs never poison full-run
	// entries. Unknown patterns panic — CLI callers validate user input
	// with ParsePatterns first.
	Checkers []Pattern
	// Admit, when non-nil, gates admission into the heavy compute phases:
	// Analyze acquires a slot before running the build→facts→check pipeline
	// and releases it when the pipeline (but not confirmation of a cached
	// result) finishes. Cache hits and single-flight waiters never touch the
	// gate — only real computations consume capacity, which is what lets a
	// serving layer bound concurrent pipelines while hits stay unqueued.
	// An Acquire error aborts the run and is returned from Analyze verbatim.
	Admit Admission
}

// Admission is the request-admission hook a serving layer plugs into
// Options.Admit: Acquire blocks until a compute slot is free (honoring ctx)
// or fails fast — e.g. with a sentinel the server maps to backpressure.
// The returned release must be called exactly once when the admitted
// computation ends.
type Admission interface {
	Acquire(ctx context.Context) (release func(), err error)
}

// newHeaderProvider wraps a header map in the suffix-indexed provider so
// kernel-style <linux/of.h> resolution costs one map probe per #include.
func newHeaderProvider(headers map[string]string) cpp.FileProvider {
	return cpp.NewIndexedFiles(headers)
}

// ConfirmReports replays each report's witness through the refsim oracle in
// a batch (each replay is independent, so they fan out across workers) and
// sets Report.Confirmed in place. It returns the number confirmed. Verdicts
// are a pure function of (witness, claim), so the worker count cannot change
// the outcome.
func ConfirmReports(reports []Report, workers int) int {
	return ConfirmReportsSpan(reports, workers, nil)
}

// ConfirmReportsSpan is ConfirmReports under an observability span: when
// parent is non-nil the replay batch appears as a "refsim" child span and
// counts refsim.replays / refsim.confirmed into the span's registry.
func ConfirmReportsSpan(reports []Report, workers int, parent *obs.Span) int {
	jobs := make([]refsim.Job, len(reports))
	for i, r := range reports {
		jobs[i] = refsim.Job{
			Witness: r.Witness,
			Claim: refsim.Claim{
				Impact:       r.Impact.String(),
				Object:       r.Object,
				AllowEscaped: r.Pattern == P6,
			},
		}
	}
	verdicts := refsim.ReplayAllSpan(jobs, workers, parent)
	n := 0
	for i := range reports {
		reports[i].Confirmed = verdicts[i].Confirmed
		if verdicts[i].Confirmed {
			n++
		}
	}
	return n
}

// --- shared helpers for checkers ---

// castType abbreviates cast.Type in checker signatures.
type castType = cast.Type

// isRefStructVar reports whether the named variable's declared type is a
// pointer to a refcounted structure.
func isRefStructVar(db *apidb.DB, types map[string]cast.Type, name string) bool {
	t, ok := types[name]
	if !ok || !t.IsPointer() {
		return false
	}
	s := t.StructName()
	return s != "" && db.IsRefStruct(s)
}

// sameObj compares two object keys, tolerating base-vs-full-key mismatches
// (kref_put(&d->ref) balances kref_get(&d->ref); of_node_put(np) balances
// np).
func sameObj(a, b string) bool {
	if a == "" || b == "" {
		return a == b
	}
	return a == b || semantics.BaseOf(a) == semantics.BaseOf(b)
}
