package core

import (
	"testing"
)

// Scenario tests: harder control-flow shapes than the per-checker basics.

func TestMultipleObjectsIndependentlyTracked(t *testing.T) {
	// Two references in one function: one leaked, one balanced. Only the
	// leaked one may be reported.
	src := `
static int pair(void)
{
	struct device_node *good = of_find_node_by_path("/a");
	struct device_node *bad = of_find_node_by_path("/b");
	if (!good)
		return -ENODEV;
	if (!bad) {
		of_node_put(good);
		return -ENODEV;
	}
	use_both(good, bad);
	of_node_put(good);
	return 0;
}`
	rs := check(t, "d.c", src)
	if len(rs) != 1 {
		t.Fatalf("reports = %+v", rs)
	}
	if rs[0].Object != "bad" {
		t.Errorf("object = %q, want bad", rs[0].Object)
	}
}

func TestGotoChainErrorHandling(t *testing.T) {
	// Kernel-style unwinding ladder: each label undoes one step. The put
	// on only some labels leaks from the earlier ones.
	buggy := `
static int ladder(struct device_node *np)
{
	int err;
	of_node_get(np);
	err = step_a(np);
	if (err)
		goto fail_a;
	err = step_b(np);
	if (err)
		goto fail_b;
	of_node_put(np);
	return 0;
fail_b:
	undo_a(np);
fail_a:
	return err;
}`
	rs := withPattern(check(t, "d.c", buggy), P5)
	if len(rs) != 1 {
		t.Fatalf("P5 reports = %+v", rs)
	}

	fixed := `
static int ladder(struct device_node *np)
{
	int err;
	of_node_get(np);
	err = step_a(np);
	if (err)
		goto fail_a;
	err = step_b(np);
	if (err)
		goto fail_b;
	of_node_put(np);
	return 0;
fail_b:
	undo_a(np);
fail_a:
	of_node_put(np);
	return err;
}`
	if rs := withPattern(check(t, "d.c", fixed), P5); len(rs) != 0 {
		t.Fatalf("fixed ladder reported: %+v", rs)
	}
}

func TestSwitchBasedErrorHandling(t *testing.T) {
	// The put lives in one switch arm only; other arms leak.
	src := `
static int by_mode(int mode)
{
	struct device_node *np = of_find_node_by_path("/m");
	if (!np)
		return -ENODEV;
	switch (mode) {
	case 0:
		of_node_put(np);
		return 0;
	case 1:
		configure(np);
		return 0;
	default:
		of_node_put(np);
		return -EINVAL;
	}
}`
	rs := withPattern(check(t, "d.c", src), P4)
	// The mode==1 arm leaks; P4 yields to P5 only when an error block is
	// involved, and case arms are not error blocks, so this is P4 or P5
	// depending on classification — require at least one leak report.
	all := check(t, "d.c", src)
	leaks := 0
	for _, r := range all {
		if r.Impact == Leak && r.Object == "np" {
			leaks++
		}
	}
	if leaks == 0 {
		t.Fatalf("switch-arm leak not reported: %+v (P4: %+v)", all, rs)
	}
}

func TestLoopCarriedReferenceBalanced(t *testing.T) {
	// Acquire + release inside a plain loop body: balanced, no report.
	src := `
static int scan(int n)
{
	int i;
	for (i = 0; i < n; i++) {
		struct device_node *np = of_find_node_by_path("/x");
		if (!np)
			continue;
		inspect(np);
		of_node_put(np);
	}
	return 0;
}`
	if rs := check(t, "d.c", src); len(rs) != 0 {
		t.Fatalf("balanced loop reported: %+v", rs)
	}
}

func TestLoopCarriedReferenceLeak(t *testing.T) {
	// The continue path skips the put.
	src := `
static int scan(int n)
{
	int i;
	for (i = 0; i < n; i++) {
		struct device_node *np = of_find_node_by_path("/x");
		if (!np)
			continue;
		if (skip_this(np))
			continue;
		inspect(np);
		of_node_put(np);
	}
	return 0;
}`
	rs := check(t, "d.c", src)
	found := false
	for _, r := range rs {
		if r.Impact == Leak && r.Object == "np" {
			found = true
		}
	}
	if !found {
		t.Fatalf("continue-path leak not reported: %+v", rs)
	}
}

func TestNestedSmartLoops(t *testing.T) {
	src := `
#define for_each_child_of_node(parent, child) \
	for (child = of_get_next_child(parent, 0); child; \
	     child = of_get_next_child(parent, child))
static int walk(struct device_node *root)
{
	struct device_node *bus;
	struct device_node *dev;
	for_each_child_of_node(root, bus) {
		for_each_child_of_node(bus, dev) {
			if (bad(dev))
				break;
		}
	}
	return 0;
}`
	rs := withPattern(check(t, "d.c", src), P3)
	// The inner break leaks dev (the inner iteration variable); bus keeps
	// iterating normally.
	foundDev := false
	for _, r := range rs {
		if r.Object == "dev" {
			foundDev = true
		}
		if r.Object == "bus" {
			t.Errorf("outer loop variable misreported: %+v", r)
		}
	}
	if !foundDev {
		t.Fatalf("inner smartloop break not reported: %+v", rs)
	}
}

func TestConditionalPutBothBranches(t *testing.T) {
	// Put present in both branches of an if: balanced.
	src := `
static int branchy(int flag)
{
	struct device_node *np = of_find_node_by_path("/x");
	if (!np)
		return -ENODEV;
	if (flag) {
		fast_path(np);
		of_node_put(np);
	} else {
		slow_path(np);
		of_node_put(np);
	}
	return 0;
}`
	if rs := check(t, "d.c", src); len(rs) != 0 {
		t.Fatalf("balanced branches reported: %+v", rs)
	}
}

func TestDoublePutNotMasked(t *testing.T) {
	// A second put after the first is a use-after-decrease of the freed
	// object (the P8 family catches the re-put's dereference semantics via
	// the replay; statically we at least must not crash and must keep the
	// first report set deterministic).
	src := `
static void twice(struct device_node *np)
{
	of_node_put(np);
	of_node_put(np);
}`
	_ = check(t, "d.c", src) // determinism + no panic
}

func TestReacquireAfterPutIsClean(t *testing.T) {
	src := `
static void cycle(struct sock *sk)
{
	sock_put(sk);
	sock_hold(sk);
	sk->sk_err = 0;
	sock_put(sk);
}`
	// After re-acquisition the dereference is safe; the final put ends the
	// function, so no P8.
	if rs := withPattern(check(t, "d.c", src), P8); len(rs) != 0 {
		t.Fatalf("reacquired object misreported: %+v", rs)
	}
}

func TestUnrelatedDerefAfterPut(t *testing.T) {
	src := `
static void other(struct sock *a, struct sock *b)
{
	sock_put(a);
	b->sk_err = 0;
}`
	if rs := withPattern(check(t, "d.c", src), P8); len(rs) != 0 {
		t.Fatalf("unrelated deref misreported: %+v", rs)
	}
}

func TestEarlyReturnBeforeAcquire(t *testing.T) {
	// Returns before the find: nothing to balance on that path.
	src := `
static int guard(int enabled)
{
	struct device_node *np;
	if (!enabled)
		return 0;
	np = of_find_node_by_path("/x");
	if (!np)
		return -ENODEV;
	use_node(np);
	of_node_put(np);
	return 0;
}`
	if rs := check(t, "d.c", src); len(rs) != 0 {
		t.Fatalf("guarded function reported: %+v", rs)
	}
}

func TestWitnessAttached(t *testing.T) {
	src := `
static void poke(void)
{
	of_find_node_by_path("/soc");
}`
	rs := check(t, "d.c", src)
	if len(rs) != 1 || len(rs[0].Witness) == 0 {
		t.Fatalf("witness missing: %+v", rs)
	}
}

func TestSmartLoopPrematureReturn(t *testing.T) {
	buggy := `
#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
static int f(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (broken(dn))
			return -EIO;
	}
	return 0;
}`
	rs := withPattern(check(t, "d.c", buggy), P3)
	if len(rs) != 1 || rs[0].Object != "dn" {
		t.Fatalf("premature return not reported: %+v", rs)
	}

	fixed := `
#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
static int f(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (broken(dn)) {
			of_node_put(dn);
			return -EIO;
		}
	}
	return 0;
}`
	if rs := withPattern(check(t, "d.c", fixed), P3); len(rs) != 0 {
		t.Fatalf("fixed premature return reported: %+v", rs)
	}
}

func TestSmartLoopGotoOut(t *testing.T) {
	buggy := `
#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
static int f(void)
{
	struct device_node *dn;
	int err = 0;
	for_each_matching_node(dn, matches) {
		if (broken(dn)) {
			err = -EIO;
			goto out;
		}
	}
out:
	return err;
}`
	rs := withPattern(check(t, "d.c", buggy), P3)
	if len(rs) != 1 {
		t.Fatalf("goto-out leak not reported: %+v", rs)
	}
}

func TestSmartLoopNormalExhaustionClean(t *testing.T) {
	src := `
#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
static int f(void)
{
	struct device_node *dn;
	int n = 0;
	for_each_matching_node(dn, matches)
		n++;
	return n;
}`
	if rs := withPattern(check(t, "d.c", src), P3); len(rs) != 0 {
		t.Fatalf("exhausted loop reported: %+v", rs)
	}
}
