package serve

// This file is the black-box harness from the PR's test brief: it builds the
// real refcheck and refcheckd binaries, boots the daemon on a random port,
// and drives it with plain HTTP clients — no in-process shortcuts — proving
// the serving layer end to end: responses byte-identical to the CLI, the
// full golden gate (352/352 planned bugs, 5/5 baits) reproduced over the
// wire, concurrency, the observability endpoints, and the SIGTERM drain.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/difftest"
)

var binaries struct {
	once                sync.Once
	dir                 string
	refcheck, refcheckd string
	err                 error
}

// buildBinaries compiles cmd/refcheck and cmd/refcheckd once per test
// process into a shared temp dir.
func buildBinaries(t *testing.T) (string, string) {
	t.Helper()
	binaries.once.Do(func() {
		dir, err := os.MkdirTemp("", "refcheckd-harness-")
		if err != nil {
			binaries.err = err
			return
		}
		binaries.dir = dir
		binaries.refcheck = filepath.Join(dir, "refcheck")
		binaries.refcheckd = filepath.Join(dir, "refcheckd")
		for bin, pkg := range map[string]string{
			binaries.refcheck:  "./cmd/refcheck",
			binaries.refcheckd: "./cmd/refcheckd",
		} {
			cmd := exec.Command("go", "build", "-o", bin, pkg)
			cmd.Dir = repoRoot()
			if out, err := cmd.CombinedOutput(); err != nil {
				binaries.err = fmt.Errorf("go build %s: %v\n%s", pkg, err, out)
				return
			}
		}
	})
	if binaries.err != nil {
		t.Fatal(binaries.err)
	}
	return binaries.refcheck, binaries.refcheckd
}

func repoRoot() string {
	abs, err := filepath.Abs("../..")
	if err != nil {
		return "../.."
	}
	return abs
}

// syncBuffer guards the daemon's stderr, which the child process writes
// while test failure paths read it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// daemon is one running refcheckd process.
type daemon struct {
	cmd    *exec.Cmd
	addr   string
	stderr *syncBuffer
}

func (d *daemon) url(path string) string { return "http://" + d.addr + path }

// startDaemon boots refcheckd on a random port with a fresh cache dir and
// waits for it to publish its bound address.
func startDaemon(t *testing.T, extraArgs ...string) *daemon {
	t.Helper()
	_, refcheckd := buildBinaries(t)
	dir := t.TempDir()
	addrFile := filepath.Join(dir, "addr")
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-cache", filepath.Join(dir, "cache"),
	}, extraArgs...)
	d := &daemon{cmd: exec.Command(refcheckd, args...), stderr: &syncBuffer{}}
	d.cmd.Stderr = d.stderr
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if d.cmd.ProcessState == nil {
			d.cmd.Process.Kill()
			d.cmd.Wait()
		}
	})
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(addrFile); err == nil && len(b) > 0 {
			d.addr = string(b)
			return d
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("refcheckd did not publish an address; stderr:\n%s", d.stderr)
	return nil
}

// cliDemo runs `refcheck -demo [args...]` and returns its stdout.
func cliDemo(t *testing.T, extra ...string) string {
	t.Helper()
	refcheck, _ := buildBinaries(t)
	cmd := exec.Command(refcheck, append([]string{"-demo"}, extra...)...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("refcheck -demo: %v\n%s", err, errb.String())
	}
	return out.String()
}

func wireDemo(t *testing.T, d *daemon, req AnalyzeRequest) AnalyzeResponse {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(d.url("/v1/analyze"), "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/analyze: %s: %s", resp.Status, body)
	}
	var out AnalyzeResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("binary harness skipped in -short mode")
	}
	d := startDaemon(t)

	t.Run("ServerMatchesCLI", func(t *testing.T) {
		want := cliDemo(t)
		got := wireDemo(t, d, AnalyzeRequest{Demo: true})
		if got.Output != want {
			t.Fatalf("served output is not byte-identical to refcheck -demo:\nserved %d bytes, CLI %d bytes",
				len(got.Output), len(want))
		}
		if got.Reports == 0 || got.Metrics["checker.functions"] == 0 {
			t.Fatalf("response missing reports/metrics: %+v", got)
		}
	})

	t.Run("ClientModeMatchesCLI", func(t *testing.T) {
		_, refcheckd := buildBinaries(t)
		cmd := exec.Command(refcheckd, "-post", d.url("/v1/analyze"), "-demo")
		var out, errb bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &errb
		if err := cmd.Run(); err != nil {
			t.Fatalf("refcheckd -post: %v\n%s", err, errb.String())
		}
		if want := cliDemo(t); out.String() != want {
			t.Fatal("refcheckd -post stdout is not byte-identical to refcheck -demo")
		}
	})

	t.Run("JSONMatchesCLI", func(t *testing.T) {
		want := cliDemo(t, "-json")
		got := wireDemo(t, d, AnalyzeRequest{Demo: true, JSON: true})
		if got.Output != want {
			t.Fatal("served -json output is not byte-identical to refcheck -demo -json")
		}
	})

	t.Run("GoldenGateOverTheWire", func(t *testing.T) {
		got := wireDemo(t, d, AnalyzeRequest{Demo: true, Seed: difftest.GoldenSeed, JSON: true})
		var wire []struct {
			Pattern, Function string
		}
		if err := json.Unmarshal([]byte(got.Output), &wire); err != nil {
			t.Fatalf("served JSON did not parse: %v", err)
		}
		reports := make([]core.Report, 0, len(wire))
		for _, w := range wire {
			reports = append(reports, core.Report{
				Pattern: core.Pattern(w.Pattern), Function: w.Function,
			})
		}
		if err := difftest.GoldenGate(reports); err != nil {
			t.Fatal(err)
		}
	})

	t.Run("ConcurrentRequestsIdentical", func(t *testing.T) {
		want := cliDemo(t)
		const n = 8
		var wg sync.WaitGroup
		outputs := make([]string, n)
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				outputs[i] = wireDemo(t, d, AnalyzeRequest{Demo: true}).Output
			}(i)
		}
		wg.Wait()
		for i, out := range outputs {
			if out != want {
				t.Fatalf("concurrent request %d diverged from the CLI output", i)
			}
		}
	})

	t.Run("StatsAndTrace", func(t *testing.T) {
		run := wireDemo(t, d, AnalyzeRequest{Demo: true})

		resp, err := http.Get(d.url("/stats"))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var stats StatsResponse
		if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
			t.Fatal(err)
		}
		if stats.Counters["serve.ok"] < 1 || stats.Counters["cache.singleflight.leader"] < 1 {
			t.Fatalf("stats missing serving/cache counters: %+v", stats.Counters)
		}
		if stats.Cache == nil || stats.Cache.L1Entries == 0 {
			t.Fatalf("stats missing warm L1 tier: %+v", stats.Cache)
		}

		tresp, err := http.Get(d.url("/trace/" + run.ID))
		if err != nil {
			t.Fatal(err)
		}
		defer tresp.Body.Close()
		trace, err := io.ReadAll(tresp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if tresp.StatusCode != http.StatusOK || !strings.Contains(string(trace), `"ph":`) {
			t.Fatalf("GET /trace/%s: %s (%d bytes)", run.ID, tresp.Status, len(trace))
		}

		if gone, err := http.Get(d.url("/trace/never-ran")); err == nil {
			gone.Body.Close()
			if gone.StatusCode != http.StatusNotFound {
				t.Fatalf("unknown trace id: status %d, want 404", gone.StatusCode)
			}
		}
	})

	t.Run("Healthz", func(t *testing.T) {
		resp, err := http.Get(d.url("/healthz"))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
			t.Fatalf("GET /healthz: %s %q", resp.Status, body)
		}
	})
}

// TestHarnessSIGTERMDrain boots its own daemon, serves one request, then
// delivers SIGTERM and requires a clean exit-0 drain.
func TestHarnessSIGTERMDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("binary harness skipped in -short mode")
	}
	d := startDaemon(t)
	wireDemo(t, d, AnalyzeRequest{Demo: true})

	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("refcheckd exited non-zero after SIGTERM: %v\nstderr:\n%s", err, d.stderr)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("refcheckd did not drain within 30s; stderr:\n%s", d.stderr)
	}
	if !strings.Contains(d.stderr.String(), "drained") {
		t.Fatalf("drain log missing; stderr:\n%s", d.stderr)
	}
}
