package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// TestCancelDeadlineNeverCachesPartial runs the demo corpus with a 1ms
// deadline — far too tight for a real computation — and proves the two
// halves of the deadline contract: the request fails with 504, and the
// interrupted run left nothing behind in the shared cache (the follow-up
// full-length request computes from scratch, then a third hits the cache).
func TestCancelDeadlineNeverCachesPartial(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	demo := AnalyzeRequest{Demo: true}

	tight := demo
	tight.TimeoutMS = 1
	resp, body := postAnalyze(t, ts.URL, tight)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("deadline request: status %d (%s), want 504", resp.StatusCode, body)
	}

	resp, body = postAnalyze(t, ts.URL, demo)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follow-up: status %d: %s", resp.StatusCode, body)
	}
	var full AnalyzeResponse
	if err := json.Unmarshal(body, &full); err != nil {
		t.Fatal(err)
	}
	if hits := full.Metrics["cache.unit.hit"]; hits != 0 {
		t.Fatalf("follow-up hit the unit cache %d times — the cancelled run cached a partial result", hits)
	}

	resp, body = postAnalyze(t, ts.URL, demo)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm request: status %d: %s", resp.StatusCode, body)
	}
	var warm AnalyzeResponse
	if err := json.Unmarshal(body, &warm); err != nil {
		t.Fatal(err)
	}
	if hits := warm.Metrics["cache.unit.hit"]; hits != 1 {
		t.Fatalf("warm request cache.unit.hit = %d, want 1", hits)
	}
	if warm.Output != full.Output {
		t.Fatal("warm output differs from computed output")
	}
}

// TestCancelClientDisconnect proves a dropped connection propagates into the
// run's context: the in-flight analysis observes context.Canceled, the
// server accounts the request as cancelled, and the admission slot drains.
func TestCancelClientDisconnect(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1})
	var sawErr atomic.Value
	stub := &blockingStub{started: make(chan string, 1), gate: make(chan struct{})}
	srv.analyze = func(ctx context.Context, req core.Request) (*core.Run, error) {
		run, err := stub.analyze(ctx, req)
		if err != nil {
			sawErr.Store(err)
		}
		return run, err
	}

	payload, err := json.Marshal(AnalyzeRequest{Sources: testSources()})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/analyze", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	clientDone := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(httpReq)
		if err == nil {
			resp.Body.Close()
		}
		clientDone <- err
	}()

	<-stub.started // the run holds the slot
	cancel()       // client walks away mid-analysis
	if err := <-clientDone; err == nil {
		t.Fatal("client Do succeeded despite cancellation")
	}

	waitFor(t, func() bool {
		err, _ := sawErr.Load().(error)
		return err == context.Canceled
	})
	waitFor(t, func() bool { return srv.Registry().Counter("serve.cancelled") == 1 })
	waitFor(t, func() bool { return srv.gate.Running() == 0 && srv.gate.Queued() == 0 })
}

// TestCancelQueuedWaiterDisconnect proves a client that gives up while its
// computation is still queued surrenders the queue position without ever
// computing.
func TestCancelQueuedWaiterDisconnect(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1, Queue: 1})
	var computations atomic.Int64
	stub := &blockingStub{started: make(chan string, 2), gate: make(chan struct{})}
	srv.analyze = func(ctx context.Context, req core.Request) (*core.Run, error) {
		run, err := stub.analyze(ctx, req)
		if err == nil {
			computations.Add(1)
		}
		return run, err
	}
	payload, err := json.Marshal(AnalyzeRequest{Sources: testSources()})
	if err != nil {
		t.Fatal(err)
	}

	// First request parks in the only slot.
	first := make(chan int, 1)
	go func() {
		resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Sources: testSources()})
		first <- resp.StatusCode
	}()
	<-stub.started

	// Second request queues, then its client disconnects.
	ctx, cancel := context.WithCancel(context.Background())
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/analyze", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	queuedDone := make(chan struct{})
	go func() {
		resp, err := http.DefaultClient.Do(httpReq)
		if err == nil {
			resp.Body.Close()
		}
		close(queuedDone)
	}()
	waitFor(t, func() bool { return srv.gate.Queued() == 1 })
	cancel()
	<-queuedDone
	waitFor(t, func() bool { return srv.gate.Queued() == 0 })
	waitFor(t, func() bool { return srv.Registry().Counter("serve.cancelled") == 1 })

	// Let the first request finish; the abandoned one must never compute.
	close(stub.gate)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("first request: status %d", code)
	}
	if got := computations.Load(); got != 1 {
		t.Fatalf("%d computations ran, want 1 (the abandoned request must not compute)", got)
	}
}

// TestCancelNoGoroutineLeaks runs a burst of cancelled and completed
// requests and checks the goroutine count settles back to its baseline —
// abandoned waits must not strand server goroutines.
func TestCancelNoGoroutineLeaks(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 2, Queue: 2})
	stub := &blockingStub{started: make(chan string, 32), gate: make(chan struct{})}
	srv.analyze = stub.analyze

	baseline := runtime.NumGoroutine()
	payload, err := json.Marshal(AnalyzeRequest{Sources: testSources()})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 8; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
			ts.URL+"/v1/analyze", bytes.NewReader(payload))
		if err != nil {
			cancel()
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(httpReq)
		if err == nil {
			resp.Body.Close()
		}
		cancel()
	}
	close(stub.gate)

	// Idle HTTP conns and handler teardown settle asynchronously; poll with
	// tolerance rather than demanding an instant exact match.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline+3 {
			return
		}
		runtime.Gosched()
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	stacks := string(buf[:n])
	if strings.Contains(stacks, "serve.(*gate).Acquire") {
		t.Fatalf("goroutines stuck in gate.Acquire after cancellation:\n%s", stacks)
	}
	t.Fatalf("goroutine count did not settle: baseline %d, now %d\n%s",
		baseline, runtime.NumGoroutine(), stacks)
}
