// Package serve is refcheckd's HTTP layer: a long-running analysis server
// over core.Analyze and one shared, warm analysiscache handle.
//
// The serving shape follows the paper's pitch — refcounting checkers should
// run continuously over every release, not as one-shot CLI invocations — so
// the daemon keeps the expensive state alive between requests: the tiered
// cache's in-memory L1 stays hot, the disk packs accumulate, and N
// concurrent requests for the same corpus collapse to one computation via
// the cache's single-flight layer.
//
// Endpoints:
//
//	POST /v1/analyze   sources (or the demo corpus) + options in, the exact
//	                   refcheck stdout bytes + per-run metrics out
//	GET  /stats        server counters plus the cache tier gauges
//	GET  /trace/{id}   Chrome trace-event export of a recent run
//	GET  /healthz      liveness ("ok", or 503 while draining)
//
// Admission control: requests that hit the cache (or join an in-flight
// computation) are served unconditionally; a request that needs a real
// pipeline computation must win a slot from a bounded queue (Config
// MaxConcurrent running + Queue waiting). When the queue is full the server
// answers 429 with a Retry-After estimate instead of building an unbounded
// backlog — reject fast, keep latency bounded for accepted work.
//
// Cancellation: the request context (which the net/http server cancels on
// client disconnect) is the run's context, optionally bounded by a
// per-request deadline. Either way a dead request cancels core.Analyze at
// its next phase or work-queue boundary, partial results are never cached,
// and a queued request that dies surrenders its queue position.
//
// Shutdown: Drain marks the server draining (healthz and analyze answer
// 503), the caller's http.Server.Shutdown stops accepting and waits out
// in-flight requests, then Close releases the server's reference on the
// shared cache — flushing the disk tier via the refcount/owner model in
// internal/analysiscache.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysiscache"
	"repro/internal/core"
	"repro/internal/obs"
)

// Defaults for Config fields left zero.
const (
	DefaultQueue      = 16
	DefaultMaxTimeout = 5 * time.Minute
	DefaultTraceRing  = 32
	maxRequestBody    = 256 << 20
)

// Config parameterizes New.
type Config struct {
	// Workers is the default per-request parallelism (0 = GOMAXPROCS),
	// overridable per request.
	Workers int
	// MaxConcurrent bounds simultaneously *computing* requests; 0 means
	// GOMAXPROCS. Cache hits are never bounded.
	MaxConcurrent int
	// Queue bounds computations waiting for a slot; beyond it requests are
	// rejected with 429. Negative means 0 (no waiting); 0 means
	// DefaultQueue.
	Queue int
	// DefaultTimeout is applied to requests that set no timeout_ms; 0 means
	// no default deadline.
	DefaultTimeout time.Duration
	// MaxTimeout caps every request deadline; 0 means DefaultMaxTimeout.
	MaxTimeout time.Duration
	// Cache, when non-nil, is the shared tiered cache. The server retains
	// its own reference (released by Close), so a caller's Close cannot
	// tear the tiers down under in-flight requests.
	Cache *analysiscache.Cache
	// TraceRing is how many recent run traces /trace/{id} can serve; 0
	// means DefaultTraceRing.
	TraceRing int
}

// Server is the refcheckd HTTP server state. Create with New; it is safe
// for concurrent use by the net/http machinery.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	gate  *gate
	cache *analysiscache.Cache
	start time.Time

	draining atomic.Bool
	ids      atomic.Int64
	wallEWMA atomic.Int64 // microseconds; feeds the Retry-After estimate

	// analyze is the pipeline seam; tests substitute a stub that honors the
	// same admission/cancellation contract as core.Analyze.
	analyze func(ctx context.Context, req core.Request) (*core.Run, error)

	mu     sync.Mutex
	traces map[string]*obs.Trace
	order  []string // trace ids, oldest first
}

// New builds a Server from cfg, retaining cfg.Cache.
func New(cfg Config) *Server {
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue == 0 {
		cfg.Queue = DefaultQueue
	}
	if cfg.Queue < 0 {
		cfg.Queue = 0
	}
	if cfg.MaxTimeout == 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}
	if cfg.TraceRing <= 0 {
		cfg.TraceRing = DefaultTraceRing
	}
	s := &Server{
		cfg:     cfg,
		reg:     obs.NewRegistry(),
		gate:    newGate(cfg.MaxConcurrent, cfg.Queue),
		cache:   cfg.Cache,
		start:   time.Now(),
		analyze: core.Analyze,
		traces:  map[string]*obs.Trace{},
	}
	if s.cache != nil {
		s.cache.Retain()
	}
	return s
}

// Registry exposes the server-lifetime metric registry (every request's
// counters are merged into it; /stats snapshots it).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return mux
}

// Drain flips the server into draining mode: /healthz turns 503 (so load
// balancers stop routing here) and new analyze requests are refused. Already
// accepted requests are unaffected — the caller's http.Server.Shutdown waits
// them out.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports drain mode.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close releases the server's reference on the shared cache, flushing the
// disk tier. Call after the HTTP listener has fully shut down.
func (s *Server) Close() error {
	if s.cache != nil {
		return s.cache.Close()
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// retryAfterSeconds estimates when a rejected client should come back: the
// queue ahead of it, priced at the recent average computation wall time.
func (s *Server) retryAfterSeconds() int {
	avg := time.Duration(s.wallEWMA.Load()) * time.Microsecond
	if avg <= 0 {
		return 1
	}
	wait := avg * time.Duration(1+s.gate.Queued())
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// observeWall folds one computation's wall time into the EWMA (alpha 1/4).
func (s *Server) observeWall(d time.Duration) {
	us := d.Microseconds()
	for {
		old := s.wallEWMA.Load()
		var next int64
		if old == 0 {
			next = us
		} else {
			next = old + (us-old)/4
		}
		if s.wallEWMA.CompareAndSwap(old, next) {
			return
		}
	}
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req AnalyzeRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.reg.Add("serve.badrequest", 1)
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	sources, headers, err := req.sources()
	if err != nil {
		s.reg.Add("serve.badrequest", 1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	selected, err := core.ParsePatterns(req.Checkers)
	if err != nil {
		s.reg.Add("serve.badrequest", 1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	ctx := r.Context()
	if d := req.timeout(s.cfg.DefaultTimeout, s.cfg.MaxTimeout); d > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}

	workers := req.Workers
	if workers == 0 {
		workers = s.cfg.Workers
	}
	id := fmt.Sprintf("r%06d", s.ids.Add(1))
	tr := obs.New("refcheckd:" + id)
	s.reg.Add("serve.requests", 1)
	s.reg.SetGauge("serve.inflight", float64(s.gate.Running()))

	start := time.Now()
	run, err := s.analyze(ctx, core.Request{
		Sources: sources,
		Headers: headers,
		Options: core.Options{
			Workers:  workers,
			Confirm:  req.Confirm,
			Cache:    s.cache,
			Checkers: selected,
			Admit:    s.gate,
		},
		Trace: tr,
	})
	wall := time.Since(start)
	tr.Done()
	s.remember(id, tr)
	s.mergeCounters(tr)

	switch {
	case err == nil:
	case errors.Is(err, ErrOverloaded):
		s.reg.Add("serve.rejected", 1)
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		writeError(w, http.StatusTooManyRequests, "server overloaded; retry later")
		return
	case errors.Is(err, context.DeadlineExceeded):
		s.reg.Add("serve.deadline", 1)
		writeError(w, http.StatusGatewayTimeout, "analysis deadline exceeded")
		return
	case errors.Is(err, context.Canceled):
		// Client went away; the run was cancelled at the next pipeline
		// boundary and nothing partial was cached. There is nobody to
		// answer, but write a response anyway for proxies that linger.
		s.reg.Add("serve.cancelled", 1)
		writeError(w, statusClientClosedRequest, "request cancelled")
		return
	case errors.Is(err, core.ErrUnknownPattern):
		s.reg.Add("serve.badrequest", 1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	default:
		s.reg.Add("serve.errors", 1)
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	s.observeWall(wall)
	output, nreports, err := renderOutput(run, &req)
	if err != nil {
		s.reg.Add("serve.errors", 1)
		writeError(w, http.StatusInternalServerError, "render: %v", err)
		return
	}
	s.reg.Add("serve.ok", 1)
	s.reg.Observe("serve.wall_ms", float64(wall)/1e6)
	w.Header().Set("X-Refcheckd-Run", id)
	writeJSON(w, http.StatusOK, AnalyzeResponse{
		ID:      id,
		Output:  output,
		Reports: nreports,
		WallMS:  float64(wall) / 1e6,
		Metrics: tr.Reg().Counters(),
	})
}

// statusClientClosedRequest is nginx's non-standard 499, the conventional
// code for "client closed the connection before the response".
const statusClientClosedRequest = 499

// mergeCounters folds one finished request's counters into the server
// registry, so /stats aggregates cache and pipeline behavior across the
// daemon's lifetime.
func (s *Server) mergeCounters(tr *obs.Trace) {
	for name, v := range tr.Reg().Counters() {
		s.reg.Add(name, v)
	}
}

// remember inserts a finished run's trace into the recent-run ring.
func (s *Server) remember(id string, tr *obs.Trace) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.traces[id] = tr
	s.order = append(s.order, id)
	for len(s.order) > s.cfg.TraceRing {
		delete(s.traces, s.order[0])
		s.order = s.order[1:]
	}
}

// StatsResponse is the GET /stats body: server-level request accounting,
// the queue state, the cache tier gauges, and the merged metric registry.
type StatsResponse struct {
	UptimeMS float64 `json:"uptime_ms"`
	Draining bool    `json:"draining"`
	Running  int     `json:"running"`
	Queued   int     `json:"queued"`

	// Cache is nil when the server runs uncached.
	Cache *CacheStats `json:"cache,omitempty"`

	obs.RegistryStats
}

// CacheStats mirrors analysiscache.Stats for the wire.
type CacheStats struct {
	L1Entries int64 `json:"l1_entries"`
	L1Bytes   int64 `json:"l1_bytes"`
	Pending   int64 `json:"pending"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := StatsResponse{
		UptimeMS:      float64(time.Since(s.start)) / 1e6,
		Draining:      s.draining.Load(),
		Running:       s.gate.Running(),
		Queued:        s.gate.Queued(),
		RegistryStats: s.reg.Snapshot(),
	}
	if s.cache != nil {
		st := s.cache.Stats()
		resp.Cache = &CacheStats{L1Entries: st.L1Entries, L1Bytes: st.L1Bytes, Pending: st.Pending}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	tr := s.traces[id]
	s.mu.Unlock()
	if tr == nil {
		writeError(w, http.StatusNotFound, "no recent run %q (ring keeps the last %d)", id, s.cfg.TraceRing)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := obs.WriteChromeTrace(w, tr); err != nil {
		s.reg.Add("serve.errors", 1)
	}
}
