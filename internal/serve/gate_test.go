package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func mustAcquire(t *testing.T, g *gate) func() {
	t.Helper()
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	return release
}

func TestGateSlotsAndQueue(t *testing.T) {
	g := newGate(2, 1)

	r1 := mustAcquire(t, g)
	r2 := mustAcquire(t, g)
	if got := g.Running(); got != 2 {
		t.Fatalf("Running = %d, want 2", got)
	}

	// Third caller fits the queue but not a slot: it must block.
	got3 := make(chan func(), 1)
	go func() {
		release, err := g.Acquire(context.Background())
		if err != nil {
			t.Error(err)
			return
		}
		got3 <- release
	}()
	waitFor(t, func() bool { return g.Queued() == 1 })

	// Fourth caller fits nothing: immediate rejection, no blocking.
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("4th Acquire err = %v, want ErrOverloaded", err)
	}

	// Releasing a slot promotes the waiter.
	r1()
	var r3 func()
	select {
	case r3 = <-got3:
	case <-time.After(5 * time.Second):
		t.Fatal("queued caller was not promoted after a release")
	}
	if got := g.Queued(); got != 0 {
		t.Fatalf("Queued = %d after promotion, want 0", got)
	}

	r2()
	r3()
	if g.Running() != 0 || g.Queued() != 0 {
		t.Fatalf("gate not drained: running=%d queued=%d", g.Running(), g.Queued())
	}
}

func TestGateCancelledWaiterSurrendersQueue(t *testing.T) {
	g := newGate(1, 1)
	release := mustAcquire(t, g)

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := g.Acquire(ctx)
		errCh <- err
	}()
	waitFor(t, func() bool { return g.Queued() == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}
	// The abandoned wait must not strand capacity: with the queue position
	// surrendered, a new caller queues (and is promoted once the slot frees).
	waitFor(t, func() bool { return g.Queued() == 0 })
	done := make(chan struct{})
	go func() {
		r, err := g.Acquire(context.Background())
		if err != nil {
			t.Error(err)
		} else {
			r()
		}
		close(done)
	}()
	waitFor(t, func() bool { return g.Queued() == 1 })
	release()
	<-done
}

// waitFor polls cond for up to 5s; the tests use it to pin down states that
// a goroutine reaches asynchronously.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
