package serve

import (
	"context"
	"errors"
)

// ErrOverloaded is returned by the gate when both the compute slots and the
// wait queue are full. The HTTP layer maps it to 429 with a Retry-After
// hint; nothing about the request was started.
var ErrOverloaded = errors.New("serve: server overloaded")

// gate is the bounded request queue behind POST /v1/analyze, plugged into
// core.Options.Admit so only real pipeline computations consume capacity
// (cache hits and single-flight waiters never reach it; see core.Admission).
//
// Capacity has two levels: up to cap(slots) computations run concurrently,
// and up to cap(queue)-cap(slots) more may wait for a slot. A caller that
// fits neither level is rejected immediately — admission never blocks the
// full queue behind an unbounded backlog, which is the backpressure
// contract: reject fast, let the client retry, keep latency bounded for the
// work already accepted.
type gate struct {
	slots chan struct{} // running computations
	queue chan struct{} // running + waiting
}

func newGate(maxConcurrent, queueDepth int) *gate {
	if maxConcurrent < 1 {
		maxConcurrent = 1
	}
	if queueDepth < 0 {
		queueDepth = 0
	}
	return &gate{
		slots: make(chan struct{}, maxConcurrent),
		queue: make(chan struct{}, maxConcurrent+queueDepth),
	}
}

// Acquire implements core.Admission. It fails fast with ErrOverloaded when
// the queue is full, otherwise blocks for a compute slot until ctx dies
// (the queue position is surrendered on cancellation, so an abandoned wait
// never strands capacity).
func (g *gate) Acquire(ctx context.Context) (func(), error) {
	select {
	case g.queue <- struct{}{}:
	default:
		return nil, ErrOverloaded
	}
	select {
	case g.slots <- struct{}{}:
		return func() {
			<-g.slots
			<-g.queue
		}, nil
	case <-ctx.Done():
		<-g.queue
		return nil, ctx.Err()
	}
}

// Running reports how many computations currently hold a slot.
func (g *gate) Running() int { return len(g.slots) }

// Queued reports how many admitted requests are waiting for a slot.
func (g *gate) Queued() int {
	q := len(g.queue) - len(g.slots)
	if q < 0 {
		q = 0
	}
	return q
}
