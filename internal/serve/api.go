package serve

import (
	"bytes"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cpg"
	"repro/internal/render"
)

// This file defines the /v1/analyze wire schema. The response's Output field
// carries the exact bytes the refcheck CLI would print to stdout for the
// same inputs and flags — the server and the CLI share one formatter
// (internal/render), so the byte-identity contract is structural, and the
// difftest determinism machinery (identical reports at any worker count and
// cache state) extends to the served path unchanged.

// SourceFile is one translation unit or header in an analyze request.
type SourceFile struct {
	Path    string `json:"path"`
	Content string `json:"content"`
}

// AnalyzeRequest is the POST /v1/analyze body. Exactly one input form is
// used: Demo (the built-in synthetic kernel corpus, mirroring
// `refcheck -demo -seed N`) or explicit Sources+Headers.
type AnalyzeRequest struct {
	// Demo analyzes the generated corpus instead of explicit sources.
	Demo bool `json:"demo,omitempty"`
	// Seed selects the demo corpus seed; 0 means 1, the CLI default.
	Seed int64 `json:"seed,omitempty"`

	// Sources are the translation units to analyze.
	Sources []SourceFile `json:"sources,omitempty"`
	// Headers maps include paths to content.
	Headers map[string]string `json:"headers,omitempty"`

	// Workers is the per-request parallelism knob (0 = server default).
	Workers int `json:"workers,omitempty"`
	// Checkers is a comma-separated checker subset ("P1,P4"); empty runs
	// every registered checker.
	Checkers string `json:"checkers,omitempty"`
	// Pattern filters the rendered output to one anti-pattern, like
	// refcheck -pattern.
	Pattern string `json:"pattern,omitempty"`
	// Confirm replays witnesses through refsim, like refcheck would with
	// confirmation enabled.
	Confirm bool `json:"confirm,omitempty"`
	// JSON renders Output as the refcheck -json report array instead of the
	// default text listing.
	JSON bool `json:"json,omitempty"`

	// TimeoutMS is the per-request deadline in milliseconds; 0 uses the
	// server default, and the server-wide maximum always caps it. On expiry
	// the run is cancelled at the next pipeline boundary, nothing partial is
	// cached, and the request fails with 504.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// sources materializes the request's input set.
func (req *AnalyzeRequest) sources() ([]cpg.Source, map[string]string, error) {
	if req.Demo {
		seed := req.Seed
		if seed == 0 {
			seed = 1
		}
		c := corpus.Generate(corpus.Spec{Seed: seed})
		var sources []cpg.Source
		headers := map[string]string{}
		for _, f := range c.Files {
			sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
		}
		for p, s := range c.Headers {
			headers[p] = s
		}
		return sources, headers, nil
	}
	if len(req.Sources) == 0 {
		return nil, nil, fmt.Errorf("request has no sources (set demo or sources)")
	}
	sources := make([]cpg.Source, 0, len(req.Sources))
	for _, s := range req.Sources {
		if s.Path == "" {
			return nil, nil, fmt.Errorf("source with empty path")
		}
		sources = append(sources, cpg.Source{Path: s.Path, Content: s.Content})
	}
	headers := map[string]string{}
	for p, s := range req.Headers {
		headers[p] = s
	}
	return sources, headers, nil
}

// timeout resolves the request's effective deadline against the server
// bounds; 0 means no deadline.
func (req *AnalyzeRequest) timeout(def, max time.Duration) time.Duration {
	d := def
	if req.TimeoutMS > 0 {
		d = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if max > 0 && (d == 0 || d > max) {
		d = max
	}
	return d
}

// AnalyzeResponse is the POST /v1/analyze success body.
type AnalyzeResponse struct {
	// ID names the run; GET /trace/{id} exports its Chrome trace while it
	// remains in the server's recent-run ring.
	ID string `json:"id"`
	// Output is byte-identical to refcheck's stdout for the same inputs.
	Output string `json:"output"`
	// Reports counts the (filtered) reports rendered into Output.
	Reports int `json:"reports"`
	// WallMS is the server-side wall time of the run.
	WallMS float64 `json:"wall_ms"`
	// Metrics are the run's observability counters (cache.unit.hit,
	// frontend.cache.miss, reports.*, ... — the Run.Metric catalog).
	Metrics map[string]int64 `json:"metrics"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
}

// renderOutput produces the CLI-identical stdout bytes for a finished run.
func renderOutput(run *core.Run, req *AnalyzeRequest) (string, int, error) {
	reports := render.FilterPattern(run.Reports, req.Pattern)
	var buf bytes.Buffer
	if req.JSON {
		if err := render.WriteJSON(&buf, reports); err != nil {
			return "", 0, err
		}
	} else {
		render.WriteText(&buf, reports, run.Summary)
	}
	return buf.String(), len(reports), nil
}
