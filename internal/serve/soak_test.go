package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/analysiscache"
	"repro/internal/core"
)

// testSources is a small fixture with one planted bug per file, enough to
// exercise the full pipeline (frontend, facts, checkers) in milliseconds.
func testSources() []SourceFile {
	return []SourceFile{
		{Path: "drivers/a/leak.c", Content: `
static int a_probe(void)
{
	struct device_node *np = of_find_node_by_path("/soc");
	if (!np)
		return -ENODEV;
	use_node(np);
	return 0;
}`},
		{Path: "drivers/b/uad.c", Content: `
static void b_release(struct sock *sk)
{
	sock_put(sk);
	sk->sk_err = 0;
}`},
		{Path: "drivers/c/errpath.c", Content: `
static int c_attach(struct device_node *np)
{
	int err;
	of_node_get(np);
	err = register_thing(np);
	if (err)
		goto fail;
	of_node_put(np);
	return 0;
fail:
	return err;
}`},
	}
}

// newTestServer stands up an in-process refcheckd over a temp cache and
// returns the Server (for registry and seam access) plus its HTTP front.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Cache == nil {
		cache, err := analysiscache.Open(t.TempDir())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Cache = cache
		t.Cleanup(func() { cache.Close() })
	}
	srv := New(cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postAnalyze(t *testing.T, url string, req AnalyzeRequest) (*http.Response, []byte) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// TestSoakIdenticalRequestsSingleFlight drives N identical concurrent
// requests through the server and proves the dedup ledger balances: every
// request is answered identically, but only single-flight leaders (almost
// always exactly one) actually computed.
func TestSoakIdenticalRequestsSingleFlight(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	req := AnalyzeRequest{Sources: testSources()}

	const n = 8
	var wg sync.WaitGroup
	outputs := make([]string, n)
	statuses := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postAnalyze(t, ts.URL, req)
			statuses[i] = resp.StatusCode
			var out AnalyzeResponse
			if err := json.Unmarshal(body, &out); err == nil {
				outputs[i] = out.Output
			}
		}(i)
	}
	wg.Wait()

	for i, code := range statuses {
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	for i := 1; i < n; i++ {
		if outputs[i] != outputs[0] {
			t.Fatalf("request %d output differs from request 0:\n%q\nvs\n%q", i, outputs[i], outputs[0])
		}
	}
	if outputs[0] == "" {
		t.Fatal("empty output")
	}

	reg := srv.Registry()
	leaders := reg.Counter("cache.singleflight.leader")
	waiters := reg.Counter("cache.singleflight.wait")
	hits := reg.Counter("cache.unit.hit")
	if leaders < 1 || leaders >= n {
		t.Fatalf("%d identical requests elected %d single-flight leaders", n, leaders)
	}
	// Every request is accounted for exactly once: it led, waited on the
	// leader, or arrived after the result was cached.
	if leaders+waiters+hits != n {
		t.Fatalf("dedup ledger unbalanced: leaders=%d waiters=%d hits=%d, want sum %d",
			leaders, waiters, hits, n)
	}
}

// blockingStub is an analyze seam stand-in that honors the admission
// contract like core.Analyze does — acquire before computing, release after
// — but parks inside the computation until the test says go.
type blockingStub struct {
	started chan string   // receives the request's ctx-less marker on slot entry
	gate    chan struct{} // closed to let computations finish
}

func (b *blockingStub) analyze(ctx context.Context, req core.Request) (*core.Run, error) {
	release, err := req.Options.Admit.Acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	b.started <- ""
	select {
	case <-b.gate:
		return &core.Run{Trace: req.Trace}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestSoakDistinctRequestsBackpressure pins the queue semantics: with one
// compute slot and one queue position, a third concurrent computation is
// rejected with 429 + Retry-After while the first two eventually succeed.
func TestSoakDistinctRequestsBackpressure(t *testing.T) {
	srv, ts := newTestServer(t, Config{MaxConcurrent: 1, Queue: 1})
	stub := &blockingStub{started: make(chan string, 4), gate: make(chan struct{})}
	srv.analyze = stub.analyze

	req := AnalyzeRequest{Sources: testSources()}
	type result struct {
		status int
		retry  string
	}
	results := make(chan result, 2)
	post := func() {
		resp, _ := postAnalyze(t, ts.URL, req)
		results <- result{resp.StatusCode, resp.Header.Get("Retry-After")}
	}

	// First request takes the slot and parks inside the stub.
	go post()
	<-stub.started
	// Second request is admitted to the queue and blocks for the slot.
	go post()
	waitFor(t, func() bool { return srv.gate.Queued() == 1 })

	// Third request fits neither level: immediate 429 with a retry hint.
	resp, _ := postAnalyze(t, ts.URL, req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if got := srv.Registry().Counter("serve.rejected"); got != 1 {
		t.Fatalf("serve.rejected = %d, want 1", got)
	}

	// Unparking the stub drains the slot and the queue; both accepted
	// requests complete normally.
	close(stub.gate)
	for i := 0; i < 2; i++ {
		r := <-results
		if r.status != http.StatusOK {
			t.Fatalf("accepted request finished with status %d", r.status)
		}
	}
	<-stub.started // the queued request's slot entry
	waitFor(t, func() bool { return srv.gate.Running() == 0 && srv.gate.Queued() == 0 })
}

// TestSoakWarmCacheUnbounded shows cache hits bypass admission entirely:
// with zero queue and a stub that rejects every computation, a warmed-up
// request still succeeds.
func TestSoakWarmCacheUnbounded(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 1, MaxConcurrent: 1, Queue: -1})
	req := AnalyzeRequest{Sources: testSources()}

	// Warm the cache with a real computation.
	if resp, body := postAnalyze(t, ts.URL, req); resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: status %d: %s", resp.StatusCode, body)
	}

	// Now hold the only slot hostage forever.
	release, err := srv.gate.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()

	for i := 0; i < 4; i++ {
		resp, body := postAnalyze(t, ts.URL, req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}
	if got := srv.Registry().Counter("cache.unit.hit"); got != 4 {
		t.Fatalf("cache.unit.hit = %d, want 4", got)
	}
}
