package loader

import (
	"path/filepath"
	"testing"

	"repro/internal/cpg"
)

func TestWriteAndLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sources := []cpg.Source{
		{Path: "drivers/clk/a.c", Content: "int a;\n"},
		{Path: "arch/arm/b.c", Content: "int b;\n"},
	}
	headers := map[string]string{
		"include/linux/of.h": "#define X 1\n",
	}
	if err := WriteTree(dir, sources, headers); err != nil {
		t.Fatal(err)
	}
	tree, err := LoadDirs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Sources) != 2 {
		t.Fatalf("sources = %+v", tree.Sources)
	}
	// Sorted by path, relative to the root.
	if tree.Sources[0].Path != "arch/arm/b.c" || tree.Sources[1].Path != "drivers/clk/a.c" {
		t.Errorf("paths = %q, %q", tree.Sources[0].Path, tree.Sources[1].Path)
	}
	if tree.Sources[1].Content != "int a;\n" {
		t.Errorf("content = %q", tree.Sources[1].Content)
	}
	if tree.Headers["include/linux/of.h"] != "#define X 1\n" {
		t.Errorf("headers = %+v", tree.Headers)
	}
}

func TestLoadIgnoresOtherExtensions(t *testing.T) {
	dir := t.TempDir()
	if err := WriteTree(dir, []cpg.Source{{Path: "a.c", Content: "int a;"}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteTree(dir, []cpg.Source{{Path: "notes.txt", Content: "hi"}}, nil); err != nil {
		t.Fatal(err)
	}
	tree, err := LoadDirs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Sources) != 0 { // "a.c" loaded as source; notes.txt skipped
		// a.c IS a source; adjust expectation
	}
	found := false
	for _, s := range tree.Sources {
		if s.Path == "notes.txt" {
			t.Error("txt loaded")
		}
		if s.Path == "a.c" {
			found = true
		}
	}
	if !found {
		t.Error("a.c missing")
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := LoadDirs(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing dir should error")
	}
}

func TestMultipleRoots(t *testing.T) {
	d1, d2 := t.TempDir(), t.TempDir()
	if err := WriteTree(d1, []cpg.Source{{Path: "x.c", Content: "int x;"}}, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteTree(d2, []cpg.Source{{Path: "y.c", Content: "int y;"}}, nil); err != nil {
		t.Fatal(err)
	}
	tree, err := LoadDirs(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Sources) != 2 {
		t.Fatalf("sources = %+v", tree.Sources)
	}
}
