package loader

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readFileString must agree byte-for-byte with a plain read across the
// size boundary where the Linux implementation switches to mmap.
func TestReadFileStringMatchesPlainRead(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"empty.c": "",
		"tiny.c":  "int x;\n",
		"page.c":  strings.Repeat("/* filler line for one page */\n", 140),
		"big.c":   strings.Repeat("int f(void) { return 0; }\n", 4000),
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := readFileString(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got != content {
			t.Errorf("%s: content mismatch (len got=%d want=%d)", name, len(got), len(content))
		}
	}
}

func TestReadFileStringMissing(t *testing.T) {
	if _, err := readFileString(filepath.Join(t.TempDir(), "nope.c")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestLoadDirsUsesMappedReads(t *testing.T) {
	dir := t.TempDir()
	src := strings.Repeat("int g(void) { return 1; }\n", 1000)
	if err := os.WriteFile(filepath.Join(dir, "a.c"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "a.h"), []byte("#define A 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	tree, err := LoadDirs(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Sources) != 1 || tree.Sources[0].Content != src {
		t.Fatalf("source content mismatch")
	}
	if tree.Headers["a.h"] != "#define A 1\n" {
		t.Fatalf("header content mismatch")
	}
}
