//go:build linux

package loader

import (
	"os"
	"syscall"
	"unsafe"
)

// mmapMin is the smallest file worth mapping: below one page the mapping
// wastes most of the page and a heap read is already a single small
// allocation.
const mmapMin = 4096

// readFileString returns the file's content, memory-mapping large files.
//
// Sources and headers are retained for the whole run (the corpus fingerprint,
// the preprocessor, and re-lexing on cache misses all read them), so the
// mapping is deliberately never unmapped: the returned string aliases pages
// that live until process exit. Mapped content stays out of the Go heap —
// the GC never scans or copies it, and unmodified pages are served straight
// from the page cache. Any mmap failure (and every small or empty file)
// falls back to a plain read, so callers see identical behavior everywhere.
func readFileString(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return "", err
	}
	size := st.Size()
	if size < mmapMin || int64(int(size)) != size {
		return readFallback(f)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return readFallback(f)
	}
	return unsafe.String(&data[0], len(data)), nil
}

func readFallback(f *os.File) (string, error) {
	data, err := os.ReadFile(f.Name())
	if err != nil {
		return "", err
	}
	return string(data), nil
}
