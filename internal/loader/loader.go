// Package loader collects C sources and headers from directories for the
// analysis tools, with deterministic ordering.
package loader

import (
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/cpg"
)

// Tree is a loaded source tree.
type Tree struct {
	Sources []cpg.Source
	Headers map[string]string
}

// LoadDirs walks the roots recursively, loading .c files as sources and .h
// files as headers. Paths in the result are relative to the respective root
// when the file lies underneath it (keeping subsystem/module structure
// intact for reporting), else absolute.
func LoadDirs(roots ...string) (*Tree, error) {
	t := &Tree{Headers: map[string]string{}}
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil || d.IsDir() {
				return err
			}
			ext := filepath.Ext(path)
			if ext != ".c" && ext != ".h" {
				return nil
			}
			content, rerr := readFileString(path)
			if rerr != nil {
				return rerr
			}
			rel := path
			if r, e := filepath.Rel(root, path); e == nil && !strings.HasPrefix(r, "..") {
				rel = filepath.ToSlash(r)
			}
			if ext == ".c" {
				t.Sources = append(t.Sources, cpg.Source{Path: rel, Content: content})
			} else {
				t.Headers[rel] = content
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(t.Sources, func(i, j int) bool { return t.Sources[i].Path < t.Sources[j].Path })
	return t, nil
}

// WriteTree writes sources and headers under dir, creating directories as
// needed (the refgen output path).
func WriteTree(dir string, sources []cpg.Source, headers map[string]string) error {
	write := func(rel, content string) error {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return err
		}
		return os.WriteFile(path, []byte(content), 0o644)
	}
	for _, s := range sources {
		if err := write(s.Path, s.Content); err != nil {
			return err
		}
	}
	for p, s := range headers {
		if err := write(p, s); err != nil {
			return err
		}
	}
	return nil
}
