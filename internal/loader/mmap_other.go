//go:build !linux

package loader

import "os"

// readFileString is the portable fallback: a plain heap read.
func readFileString(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	return string(data), nil
}
