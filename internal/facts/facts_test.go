package facts_test

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"

	"repro/internal/cpg"
	"repro/internal/facts"
)

// fixture has a hidden-get leak, a paired-error-path function, and a
// refcount-free function, so traces exercise conditions, error blocks, and
// the empty case.
const fixtureSrc = `
static int f_leak(void)
{
	struct device_node *np = of_find_node_by_path("/soc");
	if (!np)
		return -ENODEV;
	use_node(np);
	return 0;
}

static int f_err(struct device_node *np)
{
	int err;
	of_node_get(np);
	err = register_thing(np);
	if (err)
		goto fail;
	of_node_put(np);
	return 0;
fail:
	return err;
}

static void f_plain(int x)
{
	use(x);
}
`

func buildFixture(t *testing.T) *cpg.Unit {
	t.Helper()
	b := &cpg.Builder{}
	return b.Build([]cpg.Source{{Path: "drivers/x/fixture.c", Content: fixtureSrc}})
}

// TestMemoizedExactlyOnce hammers every function slot from many goroutines
// and asserts each function's facts were computed exactly once and every
// caller saw the same value. Run with -race this is the engine's
// exactly-once guarantee at any worker count.
func TestMemoizedExactlyOnce(t *testing.T) {
	uf := facts.NewUnit(buildFixture(t))
	names := uf.FunctionNames()
	if len(names) != 3 {
		t.Fatalf("FunctionNames = %v, want 3 defined functions", names)
	}
	first := make([]*facts.FunctionFacts, len(names))
	for i, n := range names {
		first[i] = uf.Function(n)
		if first[i] == nil {
			t.Fatalf("Function(%q) = nil", n)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, n := range names {
				if ff := uf.Function(n); ff != first[i] {
					t.Errorf("Function(%q) returned a different value concurrently", n)
				}
			}
		}()
	}
	wg.Wait()
	if got := uf.Computes(); got != int64(len(names)) {
		t.Fatalf("Computes = %d, want exactly %d (one per defined function)", got, len(names))
	}
	if uf.Function("no_such_function") != nil {
		t.Fatal("unknown function should yield nil facts")
	}
}

// TestTraceSchema checks the structural invariants every checker relies on:
// parallel slices, stripped CFG blocks, monotone block positions, and the
// ErrFrom suffix property.
func TestTraceSchema(t *testing.T) {
	uf := facts.NewUnit(buildFixture(t))
	sawError := false
	for _, name := range uf.FunctionNames() {
		ff := uf.Function(name)
		for ti, tr := range ff.Traces() {
			if len(tr.Events) != len(tr.BlockAt) || len(tr.Events) != len(tr.Branch) {
				t.Fatalf("%s trace %d: slice lengths diverge (%d events, %d blockAt, %d branch)",
					name, ti, len(tr.Events), len(tr.BlockAt), len(tr.Branch))
			}
			for i, ev := range tr.Events {
				if ev.Block != nil {
					t.Fatalf("%s trace %d event %d: CFG block not stripped", name, ti, i)
				}
				if i > 0 && tr.BlockAt[i] < tr.BlockAt[i-1] {
					t.Fatalf("%s trace %d: BlockAt not monotone at %d", name, ti, i)
				}
				// ErrorAtOrAfter true whenever ErrorAfter is: the inclusive
				// query can only add the event's own block.
				if tr.ErrorAfter(i) && !tr.ErrorAtOrAfter(i) {
					t.Fatalf("%s trace %d event %d: ErrorAfter without ErrorAtOrAfter", name, ti, i)
				}
			}
			if n := len(tr.ErrFrom); n > 0 && tr.ErrFrom[n-1] {
				t.Fatalf("%s trace %d: ErrFrom sentinel must be false", name, ti)
			}
			for k := 0; k+1 < len(tr.ErrFrom); k++ {
				if tr.ErrFrom[k+1] && !tr.ErrFrom[k] {
					t.Fatalf("%s trace %d: ErrFrom not a suffix-or at %d", name, ti, k)
				}
				sawError = sawError || tr.ErrFrom[k]
			}
		}
		for _, ev := range ff.All() {
			if ev.Block != nil {
				t.Fatalf("%s: All() event carries a CFG block", name)
			}
		}
	}
	if !sawError {
		t.Fatal("fixture should produce at least one path through an error block")
	}
}

// TestSnapshotCodecRoundTrip proves the facts cache entry is faithful: a
// Snapshot survives the production binary codec (what the facts-v2 cache
// entry actually stores) and a fresh unit preloaded from it serves
// identical Data without computing anything.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	u := buildFixture(t)
	uf := facts.NewUnit(u)
	snap := uf.Snapshot()

	decoded, err := facts.DecodeSnapshot(facts.EncodeSnapshot(snap))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	for name, d := range snap {
		want, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(decoded[name])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s: decoded facts differ from computed:\nwant %s\ngot  %s", name, want, got)
		}
	}

	uf2 := facts.NewUnit(u)
	if !uf2.Preload(decoded) {
		t.Fatal("Preload of a complete snapshot should report true")
	}
	for _, name := range uf2.FunctionNames() {
		if uf2.Function(name).Data != decoded[name] {
			t.Fatalf("%s: preloaded slot did not adopt the snapshot Data", name)
		}
	}
	if got := uf2.Computes(); got != 0 {
		t.Fatalf("Computes after full preload = %d, want 0", got)
	}
}

// TestPreloadIncomplete: a snapshot missing any function must not count as a
// facts hit (the missing function would silently recompute and the cache
// stats would lie).
func TestPreloadIncomplete(t *testing.T) {
	u := buildFixture(t)
	snap := facts.NewUnit(u).Snapshot()
	delete(snap, "f_plain")

	uf := facts.NewUnit(u)
	if uf.Preload(snap) {
		t.Fatal("Preload of an incomplete snapshot should report false")
	}
	if uf.Function("f_plain") == nil {
		t.Fatal("missing function must still compute on demand")
	}
	if got := uf.Computes(); got != 1 {
		t.Fatalf("Computes = %d, want 1 (only the missing function)", got)
	}
	if uf2 := facts.NewUnit(u); uf2.Preload(nil) {
		t.Fatal("Preload(nil) should report false")
	}
}
