package facts

import (
	"sort"

	"repro/internal/bincodec"
	"repro/internal/semantics"
)

// Binary codec for the per-unit facts snapshot (the analysiscache facts
// entry). Function names are emitted in sorted order and empty collections
// as zero counts decoding back to nil, so encode∘decode is the identity on
// both the bytes and the structures — the determinism the cache matrix
// tests rely on.

// factsFormat versions the snapshot encoding; bump on any layout change.
const factsFormat = 1

func encodeInts(w *bincodec.Writer, v []int) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.U32(uint32(x))
	}
}

func decodeInts(r *bincodec.Reader) []int {
	n := r.Count()
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.U32())
	}
	return out
}

func encodeStringSet(w *bincodec.Writer, m map[string]bool) {
	keys := make([]string, 0, len(m))
	for k := range m {
		if m[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	w.Strings(keys)
}

func decodeStringSet(r *bincodec.Reader) map[string]bool {
	keys := r.Strings()
	if keys == nil {
		return nil
	}
	m := make(map[string]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}

func encodeTrace(w *bincodec.Writer, tr *Trace) {
	semantics.EncodeEvents(w, tr.Events)
	encodeInts(w, tr.BlockAt)
	w.U32(uint32(len(tr.ErrFrom)))
	for _, b := range tr.ErrFrom {
		w.Bool(b)
	}
	w.U32(uint32(len(tr.Branch)))
	for _, b := range tr.Branch {
		w.U8(uint8(b))
	}
}

func decodeTrace(r *bincodec.Reader) Trace {
	tr := Trace{
		Events:  semantics.DecodeEvents(r),
		BlockAt: decodeInts(r),
	}
	if n := r.Count(); n > 0 {
		tr.ErrFrom = make([]bool, n)
		for i := range tr.ErrFrom {
			tr.ErrFrom[i] = r.Bool()
		}
	}
	if n := r.Count(); n > 0 {
		tr.Branch = make([]int8, n)
		for i := range tr.Branch {
			v := r.U8()
			if v > uint8(TookFalse) {
				r.Fail()
				return tr
			}
			tr.Branch[i] = int8(v)
		}
	}
	return tr
}

func encodeData(w *bincodec.Writer, d *Data) {
	w.U32(uint32(len(d.Traces)))
	for i := range d.Traces {
		encodeTrace(w, &d.Traces[i])
	}
	semantics.EncodeEvents(w, d.All)
	encodeInts(w, d.DecIdx)
	encodeInts(w, d.EscapeIdx)
	encodeStringSet(w, d.IncBases)
	encodeStringSet(w, d.OwnedBases)
}

func decodeData(r *bincodec.Reader) *Data {
	d := &Data{}
	if n := r.Count(); n > 0 {
		d.Traces = make([]Trace, n)
		for i := range d.Traces {
			d.Traces[i] = decodeTrace(r)
		}
	}
	d.All = semantics.DecodeEvents(r)
	d.DecIdx = decodeInts(r)
	d.EscapeIdx = decodeInts(r)
	d.IncBases = decodeStringSet(r)
	d.OwnedBases = decodeStringSet(r)
	return d
}

// EncodeSnapshot serializes a facts snapshot (UnitFacts.Snapshot) for the
// analysis cache.
func EncodeSnapshot(snap map[string]*Data) []byte {
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	w := bincodec.NewWriter(1 << 12)
	w.U8(factsFormat)
	w.U32(uint32(len(names)))
	for _, n := range names {
		w.String(n)
		encodeData(w, snap[n])
	}
	return w.Bytes()
}

// DecodeSnapshot reads a snapshot written by EncodeSnapshot; any malformed
// input returns bincodec.ErrCorrupt.
func DecodeSnapshot(data []byte) (map[string]*Data, error) {
	r := bincodec.NewReader(data)
	if r.U8() != factsFormat {
		r.Fail()
	}
	n := r.Count()
	snap := make(map[string]*Data, n)
	for i := 0; i < n; i++ {
		name := r.String()
		d := decodeData(r)
		if r.Err() != nil {
			break
		}
		snap[name] = d
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return snap, nil
}
