package facts

import (
	"sort"

	"repro/internal/bincodec"
	"repro/internal/semantics"
)

// Binary codec for the per-unit facts snapshot (the analysiscache facts
// entry). Function names are emitted in sorted order and empty collections
// as zero counts decoding back to nil, so encode∘decode is the identity on
// both the bytes and the structures — the determinism the cache matrix
// tests rely on.
//
// Format 2 mirrors computeData's memory layout on the wire: each Data opens
// with its grand totals (trace count, total trace events, total error-flag
// slots, whole-function event count) so the decoder can allocate four
// backing arrays once and carve every trace's Events/BlockAt/Branch/ErrFrom
// as windows out of them — the same O(1)-allocations-per-function shape the
// compute path has, where format 1 paid four allocations per *trace*. Index
// arrays (BlockAt, DecIdx, EscapeIdx) are int32 on the wire and in memory.
const factsFormat = 2

func encodeInt32s(w *bincodec.Writer, v []int32) {
	w.U32(uint32(len(v)))
	for _, x := range v {
		w.U32(uint32(x))
	}
}

func decodeInt32s(r *bincodec.Reader) []int32 {
	n := r.Count()
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.U32())
	}
	return out
}

func encodeStringSet(w *bincodec.Writer, m map[string]bool) {
	keys := make([]string, 0, len(m))
	for k := range m {
		if m[k] {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	w.Strings(keys)
}

func decodeStringSet(r *bincodec.Reader) map[string]bool {
	keys := r.Strings()
	if keys == nil {
		return nil
	}
	m := make(map[string]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}

func encodeData(w *bincodec.Writer, d *Data) {
	grand, errLen := 0, 0
	for i := range d.Traces {
		grand += len(d.Traces[i].Events)
		errLen += len(d.Traces[i].ErrFrom)
	}
	w.U32(uint32(len(d.Traces)))
	w.U32(uint32(grand))
	w.U32(uint32(errLen))
	w.U32(uint32(len(d.All)))
	for i := range d.Traces {
		tr := &d.Traces[i]
		w.U32(uint32(len(tr.Events)))
		w.U32(uint32(len(tr.ErrFrom)))
		for j := range tr.Events {
			semantics.EncodeEvent(w, &tr.Events[j])
		}
		for _, at := range tr.BlockAt {
			w.U32(uint32(at))
		}
		for _, b := range tr.ErrFrom {
			w.Bool(b)
		}
		for _, b := range tr.Branch {
			w.U8(uint8(b))
		}
	}
	for i := range d.All {
		semantics.EncodeEvent(w, &d.All[i])
	}
	encodeInt32s(w, d.DecIdx)
	encodeInt32s(w, d.EscapeIdx)
	encodeStringSet(w, d.IncBases)
	encodeStringSet(w, d.OwnedBases)
}

func decodeData(r *bincodec.Reader) *Data {
	d := &Data{}
	nTraces := r.Count()
	grand := r.Count()
	errLen := r.Count()
	nAll := r.Count()
	if r.Err() != nil {
		return d
	}
	// Shared backing arrays, exactly like computeData: per-trace slices are
	// capacity-bounded windows, so decoding costs O(1) allocations per
	// function, not O(traces). Count() already bounded each total by the
	// remaining input, so a hostile header cannot force a huge allocation.
	var (
		evBack []semantics.Event
		atBack []int32
		brBack []int8
	)
	if grand+nAll > 0 {
		evBack = make([]semantics.Event, 0, grand+nAll)
	}
	if grand > 0 {
		atBack = make([]int32, 0, grand)
		brBack = make([]int8, 0, grand)
	}
	efBack := make([]bool, 0, errLen)
	if nTraces > 0 {
		d.Traces = make([]Trace, nTraces)
	}
	for i := 0; i < nTraces; i++ {
		tr := &d.Traces[i]
		n := r.Count()
		ne := r.Count()
		if len(evBack)+n > grand || len(efBack)+ne > errLen {
			r.Fail()
			return d
		}
		start := len(evBack)
		for j := 0; j < n; j++ {
			evBack = append(evBack, semantics.DecodeEvent(r))
		}
		for j := 0; j < n; j++ {
			atBack = append(atBack, int32(r.U32()))
		}
		efStart := len(efBack)
		for j := 0; j < ne; j++ {
			efBack = append(efBack, r.Bool())
		}
		for j := 0; j < n; j++ {
			v := r.U8()
			if v > uint8(TookFalse) {
				r.Fail()
				return d
			}
			brBack = append(brBack, int8(v))
		}
		if r.Err() != nil {
			return d
		}
		if end := len(evBack); end > start {
			tr.Events = evBack[start:end:end]
			tr.BlockAt = atBack[start:end:end]
			tr.Branch = brBack[start:end:end]
		}
		if efEnd := len(efBack); efEnd > efStart {
			tr.ErrFrom = efBack[efStart:efEnd:efEnd]
		}
	}
	if len(evBack) != grand || len(efBack) != errLen {
		// The per-trace counts must consume the headers exactly, or the
		// windows no longer mean what the encoder meant.
		r.Fail()
		return d
	}
	allStart := len(evBack)
	for j := 0; j < nAll; j++ {
		evBack = append(evBack, semantics.DecodeEvent(r))
	}
	if r.Err() != nil {
		return d
	}
	if end := len(evBack); end > allStart {
		d.All = evBack[allStart:end:end]
	}
	d.DecIdx = decodeInt32s(r)
	d.EscapeIdx = decodeInt32s(r)
	d.IncBases = decodeStringSet(r)
	d.OwnedBases = decodeStringSet(r)
	return d
}

// EncodeSnapshot serializes a facts snapshot (UnitFacts.Snapshot) for the
// analysis cache.
func EncodeSnapshot(snap map[string]*Data) []byte {
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	w := bincodec.NewWriter(1 << 12)
	w.U8(factsFormat)
	w.U32(uint32(len(names)))
	for _, n := range names {
		w.String(n)
		encodeData(w, snap[n])
	}
	return w.Bytes()
}

// DecodeSnapshot reads a snapshot written by EncodeSnapshot; any malformed
// input returns bincodec.ErrCorrupt.
func DecodeSnapshot(data []byte) (map[string]*Data, error) {
	r := bincodec.NewReader(data)
	if r.U8() != factsFormat {
		r.Fail()
	}
	n := r.Count()
	snap := make(map[string]*Data, n)
	for i := 0; i < n; i++ {
		name := r.String()
		d := decodeData(r)
		if r.Err() != nil {
			break
		}
		snap[name] = d
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return snap, nil
}
