// Package facts is the shared analysis-facts layer between the code property
// graph and the anti-pattern checkers.
//
// The nine checkers in internal/core all consume the same underlying facts —
// per-function refcount event traces, acyclic path enumerations, escape/store
// sets, and apidb classifications of call sites — but historically each
// re-derived them with a private CPG walk. This package computes them exactly
// once per function (UnitFacts memoizes with sync.Once, so the parallel
// engine gets exactly-once semantics at any worker count) and hands the same
// immutable FunctionFacts value to every checker.
//
// The serializable portion (Data) is fully self-contained: CFG block pointers
// are stripped, branch directions and error-block reachability are resolved
// at compute time, so a Data round-trips through gob (the analysiscache
// facts-entry kind) and reproduces byte-identical reports. Checkers must
// treat every slice and map reachable from FunctionFacts as read-only.
package facts

import (
	"sync"
	"sync/atomic"

	"repro/internal/cast"
	"repro/internal/cpg"
	"repro/internal/obs"
	"repro/internal/semantics"
)

// Branch direction of an event along one concrete path (Trace.Branch).
const (
	TookUnknown int8 = iota // path ends at the block, or no successors
	TookTrue
	TookFalse
)

// Trace is one acyclic path's normalized event stream: the path's events in
// block order with every path-dependent question — which branch was taken,
// whether error handling lies ahead — pre-resolved, so no consumer needs the
// CFG blocks themselves.
type Trace struct {
	// Events holds the path's events in block order, with CFG block
	// pointers stripped (blocks form cycles gob cannot encode, and the
	// resolved fields below replace every query that needed them).
	Events []semantics.Event
	// BlockAt is the path position of each event's block. Positions are
	// path indices (bounded far below 2^31), stored as int32 so the cache
	// codec and the in-memory footprint halve.
	BlockAt []int32
	// ErrFrom[k] reports whether the path visits an error-handling block
	// at or after path position k; the extra index len(path) is always
	// false, so BlockAt[i]+1 is always a valid strict-after query.
	ErrFrom []bool
	// Branch is the branch direction the path takes at each event's block
	// (meaningful for OpCond events; TookUnknown at path end).
	Branch []int8
}

// ErrorAtOrAfter reports whether the path visits an error block at or after
// event i's block (inclusive).
func (tr *Trace) ErrorAtOrAfter(i int) bool { return tr.ErrFrom[tr.BlockAt[i]] }

// ErrorAfter reports whether the path visits an error block strictly after
// event i's block.
func (tr *Trace) ErrorAfter(i int) bool { return tr.ErrFrom[tr.BlockAt[i]+1] }

// BranchNonNull returns the names known non-NULL after event i's branch on
// this path (OpCond events; nil otherwise).
func (tr *Trace) BranchNonNull(i int) []string {
	switch tr.Branch[i] {
	case TookTrue:
		return tr.Events[i].NonNullTrue
	case TookFalse:
		return tr.Events[i].NonNullFalse
	}
	return nil
}

// BranchNull returns the names known NULL after event i's branch on this
// path — the duality of BranchNonNull.
func (tr *Trace) BranchNull(i int) []string {
	switch tr.Branch[i] {
	case TookTrue:
		return tr.Events[i].NonNullFalse
	case TookFalse:
		return tr.Events[i].NonNullTrue
	}
	return nil
}

// Data is the serializable per-function fact set: everything derived from
// the function's CFG and events that checkers query, in a form that survives
// a gob round-trip through the analysis cache. Maps and slices are left nil
// when empty so computed and decoded values are indistinguishable.
type Data struct {
	// Traces enumerates the function's bounded acyclic paths
	// (cfg.Graph.Paths semantics), normalized per Trace.
	Traces []Trace
	// All is the whole-function event view in CFG block order, blocks
	// stripped — the order checkers historically built by walking
	// Graph.Blocks.
	All []semantics.Event
	// DecIdx and EscapeIdx index All: decrement events, and escaping
	// assignments (OpAssign with EscapesVia set). int32 for the same
	// reason as Trace.BlockAt.
	DecIdx    []int32
	EscapeIdx []int32
	// IncBases are base names incremented anywhere in the function;
	// OwnedBases is the subset whose increment came from a returns-ref API
	// (a locally acquired reference).
	IncBases   map[string]bool
	OwnedBases map[string]bool
}

// FunctionFacts is the immutable per-function value handed to every checker:
// the serializable Data plus cheap recomputed views (declared variable types,
// parameter set) and back-references into the unit.
type FunctionFacts struct {
	Unit *cpg.Unit
	Fn   *cpg.Function
	Data *Data

	// VarTypes maps local and parameter names to their declared types.
	VarTypes map[string]cast.Type
}

// IsParam reports whether name is one of the function's parameters. The
// parameter list is a handful of entries, so a linear scan beats building a
// set per function.
func (ff *FunctionFacts) IsParam(name string) bool {
	for _, p := range ff.Fn.Def.Params {
		if p.Name == name {
			return true
		}
	}
	return false
}

// Traces returns the normalized path traces.
func (ff *FunctionFacts) Traces() []Trace { return ff.Data.Traces }

// All returns the whole-function event view in block order.
func (ff *FunctionFacts) All() []semantics.Event { return ff.Data.All }

// Decs returns the function's decrement events in block order.
func (ff *FunctionFacts) Decs() []semantics.Event {
	out := make([]semantics.Event, len(ff.Data.DecIdx))
	for i, di := range ff.Data.DecIdx {
		out[i] = ff.Data.All[di]
	}
	return out
}

// Escapes returns the function's escaping assignments in block order.
func (ff *FunctionFacts) Escapes() []semantics.Event {
	out := make([]semantics.Event, len(ff.Data.EscapeIdx))
	for i, ei := range ff.Data.EscapeIdx {
		out[i] = ff.Data.All[ei]
	}
	return out
}

// SmartLoop reports whether the event was injected by a registered smartloop
// macro (for_each_*-style iterators that hold a reference per iteration).
func (ff *FunctionFacts) SmartLoop(ev semantics.Event) bool {
	return ev.FromMacro != "" && ff.Unit.DB.Loop(ev.FromMacro) != nil
}

// slot memoizes one function's facts; pre holds a cache-preloaded Data that
// the first Function call adopts instead of computing.
type slot struct {
	once sync.Once
	ff   *FunctionFacts
	pre  *Data
}

// UnitFacts owns the lazily computed facts of every defined function in a
// unit. It is safe for concurrent use: each function's facts are computed
// exactly once no matter how many checkers or workers ask.
type UnitFacts struct {
	Unit *cpg.Unit

	names    []string
	slots    map[string]*slot
	computes atomic.Int64
}

// NewUnit prepares (but does not compute) facts for every defined function.
func NewUnit(u *cpg.Unit) *UnitFacts {
	uf := &UnitFacts{Unit: u, slots: map[string]*slot{}}
	for _, fn := range u.DefinedFunctions() {
		uf.names = append(uf.names, fn.Def.Name)
		uf.slots[fn.Def.Name] = &slot{}
	}
	return uf
}

// FunctionNames returns the defined (body-carrying) function names in sorted
// order — the engine's unit of work.
func (uf *UnitFacts) FunctionNames() []string { return uf.names }

// Function returns the named function's facts, computing them on first use.
// It returns nil for prototypes and unknown names.
func (uf *UnitFacts) Function(name string) *FunctionFacts {
	s := uf.slots[name]
	if s == nil {
		return nil
	}
	s.once.Do(func() {
		fn := uf.Unit.Functions[name]
		d := s.pre
		if d == nil {
			d = computeData(fn)
			uf.computes.Add(1)
		}
		s.ff = &FunctionFacts{
			Unit:     uf.Unit,
			Fn:       fn,
			Data:     d,
			VarTypes: varTypes(fn),
		}
	})
	return s.ff
}

// Computes returns how many functions' facts were computed (as opposed to
// preloaded) so far — the memoization tests assert it equals the defined
// function count exactly once per unit at any worker count.
func (uf *UnitFacts) Computes() int64 { return uf.computes.Load() }

// Observe records the facts layer's work into reg: facts.computed counts
// functions whose facts were derived from the CPG this run, facts.preloaded
// counts functions served from a cache snapshot. Call after checking
// completes; both totals are deterministic at any worker count because the
// memoization is exactly-once.
func (uf *UnitFacts) Observe(reg *obs.Registry) {
	if reg == nil {
		return
	}
	computed := uf.computes.Load()
	reg.Add("facts.computed", computed)
	preloaded := int64(0)
	for _, s := range uf.slots {
		if s.pre != nil && s.ff != nil && s.ff.Data == s.pre {
			preloaded++
		}
	}
	reg.Add("facts.preloaded", preloaded)
}

// SmartLoop is FunctionFacts.SmartLoop for unit-scoped checkers.
func (uf *UnitFacts) SmartLoop(ev semantics.Event) bool {
	return ev.FromMacro != "" && uf.Unit.DB.Loop(ev.FromMacro) != nil
}

// Preload seeds not-yet-computed slots from a cached snapshot, returning
// true only when the snapshot covered every defined function. It must be
// called before checking starts; slots already computed keep their value.
func (uf *UnitFacts) Preload(snap map[string]*Data) bool {
	if len(snap) == 0 {
		return false
	}
	complete := true
	for name, s := range uf.slots {
		if d := snap[name]; d != nil {
			s.pre = d
		} else {
			complete = false
		}
	}
	return complete
}

// Snapshot returns every defined function's serializable facts (forcing any
// not yet computed), keyed by function name — the analysiscache facts entry.
func (uf *UnitFacts) Snapshot() map[string]*Data {
	out := make(map[string]*Data, len(uf.names))
	for _, name := range uf.names {
		out[name] = uf.Function(name).Data
	}
	return out
}

// computeData derives one function's serializable facts. The trace
// flattening mirrors the engine's historical per-checker walk exactly: for
// each path, events in block order with their path positions, branch
// directions resolved against the successor actually taken, and error-block
// reachability precomputed as a suffix scan.
func computeData(fn *cpg.Function) *Data {
	d := &Data{}
	paths := fn.Graph.Paths(0)
	d.Traces = make([]Trace, 0, len(paths))
	// The traces' parallel slices are carved as capacity-bounded windows out
	// of four function-lifetime backing arrays, so the whole flattening costs
	// O(1) allocations per function rather than O(paths).
	grand, errLen := 0, 0
	for _, p := range paths {
		for _, b := range p {
			grand += len(fn.Events.ByBlok[b])
		}
		errLen += len(p) + 1
	}
	total, nDec, nEsc := 0, 0, 0
	for _, b := range fn.Graph.Blocks {
		evs := fn.Events.ByBlok[b]
		total += len(evs)
		for i := range evs {
			switch {
			case evs[i].Op == semantics.OpDec:
				nDec++
			case evs[i].Op == semantics.OpAssign && evs[i].EscapesVia != "":
				nEsc++
			}
		}
	}
	if nDec > 0 {
		d.DecIdx = make([]int32, 0, nDec)
	}
	if nEsc > 0 {
		d.EscapeIdx = make([]int32, 0, nEsc)
	}
	var (
		evBack []semantics.Event
		atBack []int32
		brBack []int8
	)
	if grand+total > 0 {
		// One event array backs both the per-trace windows and d.All.
		evBack = make([]semantics.Event, 0, grand+total)
	}
	if grand > 0 {
		atBack = make([]int32, 0, grand)
		brBack = make([]int8, 0, grand)
	}
	efBack := make([]bool, errLen)
	efOff := 0
	for _, p := range paths {
		tr := Trace{}
		start := len(evBack)
		for bi, b := range p {
			for _, ev := range fn.Events.ByBlok[b] {
				br := TookUnknown
				if bi+1 < len(p) {
					switch semantics.BranchTaken(ev, p[bi+1]) {
					case 1:
						br = TookTrue
					case -1:
						br = TookFalse
					}
				}
				ev.Block = nil
				evBack = append(evBack, ev)
				atBack = append(atBack, int32(bi))
				brBack = append(brBack, br)
			}
		}
		if end := len(evBack); end > start {
			tr.Events = evBack[start:end:end]
			tr.BlockAt = atBack[start:end:end]
			tr.Branch = brBack[start:end:end]
		}
		tr.ErrFrom = efBack[efOff : efOff+len(p)+1 : efOff+len(p)+1]
		efOff += len(p) + 1
		for k := len(p) - 1; k >= 0; k-- {
			tr.ErrFrom[k] = tr.ErrFrom[k+1] || p[k].IsError
		}
		d.Traces = append(d.Traces, tr)
	}
	allStart := len(evBack)
	for _, b := range fn.Graph.Blocks {
		for _, ev := range fn.Events.ByBlok[b] {
			ev.Block = nil
			i := int32(len(evBack) - allStart)
			switch {
			case ev.Op == semantics.OpDec:
				d.DecIdx = append(d.DecIdx, i)
			case ev.Op == semantics.OpAssign && ev.EscapesVia != "":
				d.EscapeIdx = append(d.EscapeIdx, i)
			case ev.Op == semantics.OpInc && ev.Obj != "":
				base := semantics.BaseOf(ev.Obj)
				if d.IncBases == nil {
					d.IncBases = map[string]bool{}
				}
				d.IncBases[base] = true
				if ev.Info != nil && ev.Info.ReturnsRef {
					if d.OwnedBases == nil {
						d.OwnedBases = map[string]bool{}
					}
					d.OwnedBases[base] = true
				}
			}
			evBack = append(evBack, ev)
		}
	}
	if len(evBack) > allStart {
		d.All = evBack[allStart:len(evBack):len(evBack)]
	}
	return d
}

func varTypes(fn *cpg.Function) map[string]cast.Type {
	out := map[string]cast.Type{}
	for _, p := range fn.Def.Params {
		out[p.Name] = p.Type
	}
	if fn.Def.Body != nil {
		cast.Walk(fn.Def.Body, func(n cast.Node) bool {
			if d, ok := n.(*cast.DeclStmt); ok {
				out[d.Name] = d.Type
			}
			return true
		})
	}
	return out
}
