// Package word2vec implements CBOW word embeddings with negative sampling,
// from scratch on the standard library.
//
// The paper (§5.2.2, Table 3) trains gensim's CBOW model on >1M kernel
// commit logs to measure the semantic similarity between refcounting API
// keywords (get/put/hold/…) and bug-caused API keywords (find/parse/foreach/
// …), explaining why developers miss hidden refcounting: the bug-caused
// names simply do not smell like refcounting. This package reproduces the
// method; internal/study/table3.go applies it to the synthetic history.
package word2vec

import (
	"math"
	"sort"
	"strings"
)

// Config holds training hyperparameters.
type Config struct {
	Dim          int     // embedding dimensionality (default 48)
	Window       int     // context window radius (default 4)
	Negative     int     // negative samples per position (default 5)
	Epochs       int     // passes over the corpus (default 3)
	LearningRate float64 // initial alpha (default 0.05)
	MinCount     int     // discard rarer words (default 2)
	Seed         uint64
}

func (c *Config) defaults() {
	if c.Dim == 0 {
		c.Dim = 48
	}
	if c.Window == 0 {
		c.Window = 4
	}
	if c.Negative == 0 {
		c.Negative = 5
	}
	if c.Epochs == 0 {
		c.Epochs = 3
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.MinCount == 0 {
		c.MinCount = 2
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Model is a trained embedding table.
type Model struct {
	vocab  map[string]int
	words  []string
	counts []int
	in     [][]float64 // input (context) vectors — the embeddings
	out    [][]float64 // output vectors
}

type rng uint64

func (s *rng) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *rng) float() float64 { return float64(s.next()>>11) / (1 << 53) }

func (s *rng) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.next() % uint64(n))
}

// Tokenize lowercases text and splits it into words, breaking identifiers on
// underscores. The "for_each" prefix collapses into the single token
// "foreach" so Table 3's iterator keyword is measurable.
func Tokenize(text string) []string {
	var out []string
	var cur strings.Builder
	flushWord := func() {
		if cur.Len() == 0 {
			return
		}
		out = append(out, cur.String())
		cur.Reset()
	}
	for _, r := range strings.ToLower(text) {
		switch {
		case r >= 'a' && r <= 'z':
			cur.WriteRune(r)
		case r == '_', r == '-':
			flushWord()
		default:
			flushWord()
		}
	}
	flushWord()
	// Collapse "for each" pairs into "foreach".
	var merged []string
	for i := 0; i < len(out); i++ {
		if out[i] == "for" && i+1 < len(out) && out[i+1] == "each" {
			merged = append(merged, "foreach")
			i++
			continue
		}
		merged = append(merged, out[i])
	}
	return merged
}

// Train fits a CBOW model over the sentences.
func Train(sentences [][]string, cfg Config) *Model {
	cfg.defaults()
	r := rng(cfg.Seed | 1)

	// Vocabulary.
	freq := map[string]int{}
	for _, s := range sentences {
		for _, w := range s {
			freq[w]++
		}
	}
	m := &Model{vocab: map[string]int{}}
	var words []string
	for w, n := range freq {
		if n >= cfg.MinCount {
			words = append(words, w)
		}
	}
	sort.Strings(words) // deterministic indexing
	for _, w := range words {
		m.vocab[w] = len(m.words)
		m.words = append(m.words, w)
		m.counts = append(m.counts, freq[w])
	}
	v := len(m.words)
	if v == 0 {
		return m
	}

	// Init vectors.
	m.in = make([][]float64, v)
	m.out = make([][]float64, v)
	for i := 0; i < v; i++ {
		m.in[i] = make([]float64, cfg.Dim)
		m.out[i] = make([]float64, cfg.Dim)
		for d := 0; d < cfg.Dim; d++ {
			m.in[i][d] = (r.float() - 0.5) / float64(cfg.Dim)
		}
	}

	// Unigram table for negative sampling (freq^0.75 weighting).
	const tableSize = 1 << 16
	table := make([]int, tableSize)
	var total float64
	pows := make([]float64, v)
	for i := 0; i < v; i++ {
		pows[i] = math.Pow(float64(m.counts[i]), 0.75)
		total += pows[i]
	}
	idx, acc := 0, pows[0]/total
	for t := 0; t < tableSize; t++ {
		table[t] = idx
		if float64(t)/tableSize > acc && idx < v-1 {
			idx++
			acc += pows[idx] / total
		}
	}

	// Encode sentences.
	enc := make([][]int, 0, len(sentences))
	for _, s := range sentences {
		var row []int
		for _, w := range s {
			if id, ok := m.vocab[w]; ok {
				row = append(row, id)
			}
		}
		if len(row) > 1 {
			enc = append(enc, row)
		}
	}

	h := make([]float64, cfg.Dim)
	grad := make([]float64, cfg.Dim)
	alpha := cfg.LearningRate
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, sent := range enc {
			for pos, target := range sent {
				lo := pos - cfg.Window
				if lo < 0 {
					lo = 0
				}
				hi := pos + cfg.Window
				if hi >= len(sent) {
					hi = len(sent) - 1
				}
				n := 0
				for d := range h {
					h[d] = 0
					grad[d] = 0
				}
				for j := lo; j <= hi; j++ {
					if j == pos {
						continue
					}
					for d, x := range m.in[sent[j]] {
						h[d] += x
					}
					n++
				}
				if n == 0 {
					continue
				}
				inv := 1 / float64(n)
				for d := range h {
					h[d] *= inv
				}
				// One positive + Negative negatives.
				for k := 0; k <= cfg.Negative; k++ {
					var label float64
					var w int
					if k == 0 {
						label, w = 1, target
					} else {
						label, w = 0, table[r.intn(tableSize)]
						if w == target {
							continue
						}
					}
					var dot float64
					for d := range h {
						dot += h[d] * m.out[w][d]
					}
					g := alpha * (label - sigmoid(dot))
					for d := range h {
						grad[d] += g * m.out[w][d]
						m.out[w][d] += g * h[d]
					}
				}
				for j := lo; j <= hi; j++ {
					if j == pos {
						continue
					}
					vec := m.in[sent[j]]
					for d := range vec {
						vec[d] += grad[d] * inv
					}
				}
			}
		}
		alpha *= 0.7 // simple decay
	}
	return m
}

func sigmoid(x float64) float64 {
	if x > 8 {
		return 1
	}
	if x < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-x))
}

// Has reports whether the word is in the vocabulary.
func (m *Model) Has(word string) bool {
	_, ok := m.vocab[word]
	return ok
}

// Vector returns the embedding for a word (nil if unknown).
func (m *Model) Vector(word string) []float64 {
	id, ok := m.vocab[word]
	if !ok {
		return nil
	}
	return m.in[id]
}

// Similarity returns the cosine similarity of two words; words missing from
// the vocabulary yield 0 (Table 3's "unhold" case — the word barely occurs
// in kernel history at all).
func (m *Model) Similarity(a, b string) float64 {
	va, vb := m.Vector(a), m.Vector(b)
	if va == nil || vb == nil {
		return 0
	}
	var dot, na, nb float64
	for d := range va {
		dot += va[d] * vb[d]
		na += va[d] * va[d]
		nb += vb[d] * vb[d]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// VocabSize returns the number of trained words.
func (m *Model) VocabSize() int { return len(m.words) }
