package word2vec

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"of_find_compatible_node", "of find compatible node"},
		{"for_each_child_of_node", "foreach child of node"},
		{"Fix refcount leak in foo_probe()", "fix refcount leak in foo probe"},
		{"dev_hold/dev_put must pair", "dev hold dev put must pair"},
		{"x += 42;", "x"},
	}
	for _, c := range cases {
		got := strings.Join(Tokenize(c.in), " ")
		if got != c.want {
			t.Errorf("Tokenize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// synth builds a tiny corpus with controlled co-occurrence: "find" appears
// with "get"/"put"; "alpha" appears with "beta"; the two groups never mix.
func synth(n int) [][]string {
	var out [][]string
	for i := 0; i < n; i++ {
		out = append(out,
			[]string{"use", "find", "to", "get", "the", "node", "and", "put", "it"},
			[]string{"the", "find", "helper", "will", "get", "a", "reference"},
			[]string{"alpha", "beta", "gamma", "delta", "run", "fast"},
			[]string{"beta", "alpha", "loops", "over", "gamma", "delta"},
		)
	}
	return out
}

func TestCooccurrenceDrivesSimilarity(t *testing.T) {
	m := Train(synth(80), Config{Dim: 24, Epochs: 4, Seed: 7})
	sameGroup := m.Similarity("find", "get")
	crossGroup := m.Similarity("find", "beta")
	if sameGroup <= crossGroup {
		t.Errorf("find~get %.3f <= find~beta %.3f", sameGroup, crossGroup)
	}
	if sameGroup < 0.2 {
		t.Errorf("find~get = %.3f, too weak", sameGroup)
	}
}

func TestUnknownWordsSimilarityZero(t *testing.T) {
	m := Train(synth(5), Config{Dim: 8, Epochs: 1, Seed: 1})
	if s := m.Similarity("unhold", "find"); s != 0 {
		t.Errorf("unknown word similarity = %v", s)
	}
	if m.Vector("unhold") != nil {
		t.Error("unknown word has a vector")
	}
	if m.Has("unhold") {
		t.Error("Has(unhold) true")
	}
}

func TestDeterministicTraining(t *testing.T) {
	a := Train(synth(10), Config{Dim: 16, Epochs: 2, Seed: 3})
	b := Train(synth(10), Config{Dim: 16, Epochs: 2, Seed: 3})
	if a.Similarity("find", "get") != b.Similarity("find", "get") {
		t.Error("training not deterministic")
	}
}

func TestMinCount(t *testing.T) {
	sentences := [][]string{
		{"common", "words", "common", "words"},
		{"common", "rare"},
	}
	m := Train(sentences, Config{Dim: 8, Epochs: 1, MinCount: 2, Seed: 1})
	if m.Has("rare") {
		t.Error("rare word survived MinCount")
	}
	if !m.Has("common") {
		t.Error("common word missing")
	}
}

func TestEmptyCorpus(t *testing.T) {
	m := Train(nil, Config{})
	if m.VocabSize() != 0 {
		t.Error("empty corpus has vocab")
	}
	if m.Similarity("a", "b") != 0 {
		t.Error("similarity on empty model")
	}
}

// Property: cosine similarity is symmetric and bounded.
func TestQuickSimilarityProperties(t *testing.T) {
	m := Train(synth(20), Config{Dim: 16, Epochs: 2, Seed: 9})
	vocab := []string{"find", "get", "put", "alpha", "beta", "gamma", "node"}
	f := func(ai, bi uint8) bool {
		a := vocab[int(ai)%len(vocab)]
		b := vocab[int(bi)%len(vocab)]
		sab := m.Similarity(a, b)
		sba := m.Similarity(b, a)
		if sab != sba {
			return false
		}
		return sab >= -1.0001 && sab <= 1.0001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSelfSimilarityIsOne(t *testing.T) {
	m := Train(synth(10), Config{Dim: 16, Epochs: 2, Seed: 2})
	if s := m.Similarity("find", "find"); s < 0.999 {
		t.Errorf("self similarity = %v", s)
	}
}
