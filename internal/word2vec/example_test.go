package word2vec_test

import (
	"fmt"

	"repro/internal/word2vec"
)

// ExampleTokenize shows identifier splitting with the for_each collapse that
// makes Table 3's iterator keyword measurable.
func ExampleTokenize() {
	fmt.Println(word2vec.Tokenize("Use for_each_child_of_node and of_node_put(np);"))
	// Output:
	// [use foreach child of node and of node put np]
}
