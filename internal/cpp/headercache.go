package cpp

import (
	"crypto/sha256"
	"encoding/hex"
	"sync"
	"sync/atomic"

	"repro/internal/clex"
)

// HeaderCache shares the lexed form of header files across translation
// units. Kernel TUs include the same headers over and over — without the
// cache every worker re-lexes linux/of.h (and everything it pulls in) once
// per source file. With it, each header is lexed and split into logical
// lines exactly once per run, keyed by path and validated against the exact
// content served, and the immutable token lines are shared read-only by all
// preprocessors on all workers.
//
// Only lexing is shared; directive evaluation and macro expansion still run
// per translation unit (they depend on the TU's macro state), so output is
// byte-identical with and without the cache.
type HeaderCache struct {
	mu sync.Mutex
	m  map[string]*headerTokens

	// Observational counters: hits/misses of the per-path slot table, and
	// lexer work for the headers this cache lexed. Misses equal the number
	// of distinct (path, content) headers, so both totals are deterministic
	// at any worker count.
	hits, misses atomic.Int64
	lexStats     clex.Stats
}

// CacheStats is a point-in-time snapshot of a HeaderCache's counters.
type CacheStats struct {
	Hits, Misses int64
	TokensLexed  int64
}

// Stats returns the cache's counters so far. For a Builder-owned per-run
// cache this is the run's header-lexing work; a cache shared across builds
// accumulates (callers snapshot before/after and subtract).
func (hc *HeaderCache) Stats() CacheStats {
	return CacheStats{
		Hits:        hc.hits.Load(),
		Misses:      hc.misses.Load(),
		TokensLexed: hc.lexStats.Tokens.Load(),
	}
}

// headerTokens is one header's lexed form. The fields below once are never
// mutated after ensure completes; consumers copy tokens out of the lines.
type headerTokens struct {
	path    string
	content string
	once    sync.Once
	lines   *clex.Lines
	errs    []error
	hash    string // hex sha256 of content (include-closure fingerprinting)
}

// ensure lexes the header exactly once. The caller that triggers the lex is
// charged a miss; every later (or concurrently blocked) caller is a hit.
// Which caller lands the miss is scheduling-dependent, but the totals are
// not: misses = distinct headers lexed, hits = ensure calls − misses.
func (e *headerTokens) ensure(hc *HeaderCache) {
	fresh := false
	e.once.Do(func() {
		fresh = true
		var st *clex.Stats
		if hc != nil {
			st = &hc.lexStats
		}
		lines, errs := clex.TokenizeLines(e.path, e.content, st)
		e.lines = lines
		e.errs = errs
		e.hash = hashContent(e.content)
	})
	if hc == nil {
		return
	}
	if fresh {
		hc.misses.Add(1)
	} else {
		hc.hits.Add(1)
	}
}

// NewHeaderCache returns an empty cache, safe for concurrent use.
func NewHeaderCache() *HeaderCache {
	return &HeaderCache{m: map[string]*headerTokens{}}
}

// entry returns the cache slot for (file, src), creating it on first use.
func (hc *HeaderCache) entry(file, src string) *headerTokens {
	hc.mu.Lock()
	e, ok := hc.m[file]
	if !ok {
		e = &headerTokens{path: file, content: src}
		hc.m[file] = e
	}
	hc.mu.Unlock()
	return e
}

// lex returns the cached lexed form of (file, src), lexing at most once per
// distinct path. A path served with different content (possible only if the
// file provider is inconsistent within a run) bypasses the cache.
func (hc *HeaderCache) lex(file, src string) *headerTokens {
	e := hc.entry(file, src)
	if e.content != src {
		u := &headerTokens{path: file, content: src}
		u.ensure(hc)
		return u
	}
	e.ensure(hc)
	return e
}

// HashOf returns the hex SHA-256 of content, memoized per path so the
// include-closure recorder hashes each header at most once per run.
func (hc *HeaderCache) HashOf(path, content string) string {
	e := hc.entry(path, content)
	if e.content != content {
		return hashContent(content)
	}
	e.ensure(hc)
	return e.hash
}

// hashContent is the content fingerprint used throughout the caching
// layers: hex SHA-256.
func hashContent(s string) string {
	sum := sha256.Sum256([]byte(s))
	return hex.EncodeToString(sum[:])
}
