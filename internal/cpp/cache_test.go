package cpp

import (
	"fmt"
	"testing"

	"repro/internal/clex"
)

func renderToks(toks []clex.Token) string {
	out := ""
	for _, t := range toks {
		out += fmt.Sprintf("%v %q %s %v %v\n", t.Kind, t.Text, t.Pos, t.Origin, t.LeadingSpace)
	}
	return out
}

// TestMapFilesSuffixDeterministic pins the fixed resolution rule: with
// several paths sharing a suffix, the lexicographically smallest wins on
// every lookup, independent of map iteration order.
func TestMapFilesSuffixDeterministic(t *testing.T) {
	m := MapFiles{
		"b/linux/of.h": "#define WHICH 2\n",
		"a/linux/of.h": "#define WHICH 1\n",
		"c/linux/of.h": "#define WHICH 3\n",
	}
	for i := 0; i < 50; i++ {
		s, ok := m.ReadFile("linux/of.h")
		if !ok || s != "#define WHICH 1\n" {
			t.Fatalf("iteration %d: got %q, %v; want smallest-path content", i, s, ok)
		}
	}
}

// TestIndexedFilesMatchesMapFiles proves the O(1) suffix index resolves
// exactly like the scanning provider on exact hits, suffix hits, ambiguous
// suffixes, and misses.
func TestIndexedFilesMatchesMapFiles(t *testing.T) {
	files := map[string]string{
		"include/linux/of.h":     "of",
		"arch/arm/linux/of.h":    "arm-of",
		"include/linux/kref.h":   "kref",
		"drivers/base/core.c":    "core",
		"include/linux/sub/x.h":  "x",
		"include2/linux/sub/x.h": "x2",
	}
	m := MapFiles(files)
	ix := NewIndexedFiles(files)
	queries := []string{
		"include/linux/of.h", // exact
		"linux/of.h",         // ambiguous suffix → smallest path (arch/arm...)
		"of.h",
		"kref.h",
		"sub/x.h",
		"linux/sub/x.h",
		"x.h",
		"missing.h",
		"core.c",
	}
	for _, q := range queries {
		ms, mok := m.ReadFile(q)
		is, iok := ix.ReadFile(q)
		if ms != is || mok != iok {
			t.Errorf("query %q: MapFiles=(%q,%v) IndexedFiles=(%q,%v)", q, ms, mok, is, iok)
		}
	}
}

// TestHeaderCachePreservesOutput runs the same two-TU preprocess with and
// without a shared header cache; the expanded token streams (kinds, texts,
// positions, provenance) must be identical, and the cached run must serve
// the header from one lexing.
func TestHeaderCachePreservesOutput(t *testing.T) {
	headers := MapFiles{
		"linux/of.h": "#define of_node_get(n) __of_node_get(n)\nstruct device_node;\n",
	}
	srcs := map[string]string{
		"a.c": "#include <linux/of.h>\nvoid a(void) { of_node_get(np); }\n",
		"b.c": "#include <linux/of.h>\nvoid b(void) { of_node_get(np); }\n",
	}
	hc := NewHeaderCache()
	for file, src := range srcs {
		plain := New(headers).Process(file, src)
		cached := New(headers).WithHeaderCache(hc).Process(file, src)
		if got, want := renderToks(cached.Tokens), renderToks(plain.Tokens); got != want {
			t.Errorf("%s: cached output differs:\n got:\n%s want:\n%s", file, got, want)
		}
		if len(cached.Errors) != len(plain.Errors) {
			t.Errorf("%s: error counts differ: %d vs %d", file, len(cached.Errors), len(plain.Errors))
		}
	}
	if n := len(hc.m); n != 1 {
		t.Errorf("header cache holds %d entries, want 1", n)
	}
}

// TestHeaderCacheContentMismatch: a path served with different content within
// one run must bypass the stale cached form.
func TestHeaderCacheContentMismatch(t *testing.T) {
	hc := NewHeaderCache()
	a := hc.lex("h.h", "#define A 1\n")
	b := hc.lex("h.h", "#define A 2\n")
	if renderToks(a.lines.Line(0)) == renderToks(b.lines.Line(0)) {
		t.Fatal("mismatched content served stale tokens")
	}
	if got := hc.HashOf("h.h", "#define A 2\n"); got == a.hash {
		t.Fatal("HashOf returned the stale content hash")
	}
}

// TestTrackIncludes pins the include-closure recording: resolved headers
// carry their content hash, transitive includes appear, and unresolved paths
// are recorded with an empty hash.
func TestTrackIncludes(t *testing.T) {
	headers := MapFiles{
		"linux/outer.h": "#include <linux/inner.h>\n#define OUT 1\n",
		"linux/inner.h": "#define IN 1\n",
	}
	p := New(headers).TrackIncludes()
	res := p.Process("a.c", "#include <linux/outer.h>\n#include <linux/gone.h>\nint x = OUT + IN;\n")
	want := map[string]bool{"linux/outer.h": true, "linux/inner.h": true, "linux/gone.h": false}
	if len(res.Includes) != len(want) {
		t.Fatalf("recorded %d deps, want %d: %+v", len(res.Includes), len(want), res.Includes)
	}
	for _, d := range res.Includes {
		resolved, known := want[d.Path]
		if !known {
			t.Errorf("unexpected dep %q", d.Path)
			continue
		}
		if resolved && d.Hash == "" {
			t.Errorf("%s: resolved include recorded without hash", d.Path)
		}
		if !resolved && d.Hash != "" {
			t.Errorf("%s: missing include recorded with hash %q", d.Path, d.Hash)
		}
		if resolved {
			content, _ := headers.ReadFile(d.Path)
			if d.Hash != hashContent(content) {
				t.Errorf("%s: hash mismatch", d.Path)
			}
		}
	}
}
