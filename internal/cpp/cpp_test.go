package cpp

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/clex"
)

func expand(t *testing.T, files MapFiles, src string) *Result {
	t.Helper()
	p := New(files)
	res := p.Process("test.c", src)
	for _, e := range res.Errors {
		t.Fatalf("cpp error: %v", e)
	}
	return res
}

func text(toks []clex.Token) string {
	parts := make([]string, len(toks))
	for i, t := range toks {
		parts[i] = t.Text
	}
	return strings.Join(parts, " ")
}

func TestObjectLikeMacro(t *testing.T) {
	res := expand(t, nil, "#define N 10\nint a[N];")
	if got := text(res.Tokens); got != "int a [ 10 ] ;" {
		t.Fatalf("got %q", got)
	}
}

func TestFuncLikeMacro(t *testing.T) {
	res := expand(t, nil, "#define SQ(x) ((x)*(x))\nint y = SQ(a+1);")
	if got := text(res.Tokens); got != "int y = ( ( a + 1 ) * ( a + 1 ) ) ;" {
		t.Fatalf("got %q", got)
	}
}

func TestMacroNotCalledIsNotExpanded(t *testing.T) {
	res := expand(t, nil, "#define F(x) x\nint a = F;\n")
	if got := text(res.Tokens); got != "int a = F ;" {
		t.Fatalf("got %q", got)
	}
}

func TestNestedExpansionProvenance(t *testing.T) {
	src := `
#define of_find_matching_node(from) __of_find_matching_node(from)
#define for_each_matching_node(dn) \
	for (dn = of_find_matching_node(0); dn; dn = of_find_matching_node(dn))
void f(void) { for_each_matching_node(np) { } }
`
	res := expand(t, nil, src)
	// Find the expanded __of_find_matching_node token and check provenance.
	var found bool
	for _, tok := range res.Tokens {
		if tok.Text == "__of_find_matching_node" {
			found = true
			if !tok.FromMacro("for_each_matching_node") {
				t.Errorf("missing outer provenance: %v", tok.Origin)
			}
			if !tok.FromMacro("of_find_matching_node") {
				t.Errorf("missing inner provenance: %v", tok.Origin)
			}
			if tok.OutermostMacro() != "for_each_matching_node" {
				t.Errorf("outermost = %q", tok.OutermostMacro())
			}
		}
	}
	if !found {
		t.Fatalf("expansion lost the call: %s", text(res.Tokens))
	}
}

func TestRecursionGuard(t *testing.T) {
	res := expand(t, nil, "#define X X\nint X;")
	if got := text(res.Tokens); got != "int X ;" {
		t.Fatalf("got %q", got)
	}
	res = expand(t, nil, "#define A B\n#define B A\nint A;")
	if got := text(res.Tokens); got != "int A ;" && got != "int B ;" {
		t.Fatalf("got %q", got)
	}
}

func TestStringize(t *testing.T) {
	res := expand(t, nil, "#define S(x) #x\nconst char *s = S(hello world);")
	joined := text(res.Tokens)
	if !strings.Contains(joined, `"hello world"`) {
		t.Fatalf("got %q", joined)
	}
}

func TestPaste(t *testing.T) {
	res := expand(t, nil, "#define GLUE(a,b) a##b\nint GLUE(foo,bar) = 1;")
	if got := text(res.Tokens); got != "int foobar = 1 ;" {
		t.Fatalf("got %q", got)
	}
}

func TestVariadic(t *testing.T) {
	res := expand(t, nil, "#define CALL(f, ...) f(__VA_ARGS__)\nCALL(g, 1, 2);")
	if got := text(res.Tokens); got != "g ( 1 , 2 ) ;" {
		t.Fatalf("got %q", got)
	}
}

func TestUndef(t *testing.T) {
	res := expand(t, nil, "#define N 1\n#undef N\nint a = N;")
	if got := text(res.Tokens); got != "int a = N ;" {
		t.Fatalf("got %q", got)
	}
}

func TestInclude(t *testing.T) {
	files := MapFiles{
		"include/linux/of.h": "#define of_node_get(n) __of_node_get(n)\n",
	}
	res := expand(t, files, "#include <linux/of.h>\nvoid f(void){ of_node_get(np); }")
	if !strings.Contains(text(res.Tokens), "__of_node_get ( np )") {
		t.Fatalf("got %q", text(res.Tokens))
	}
	if len(res.MissingIncludes) != 0 {
		t.Fatalf("missing includes: %v", res.MissingIncludes)
	}
}

func TestMissingIncludeRecorded(t *testing.T) {
	res := expand(t, nil, "#include <linux/slab.h>\nint x;")
	if len(res.MissingIncludes) != 1 || res.MissingIncludes[0] != "linux/slab.h" {
		t.Fatalf("missing = %v", res.MissingIncludes)
	}
	if got := text(res.Tokens); got != "int x ;" {
		t.Fatalf("got %q", got)
	}
}

func TestIncludeIdempotent(t *testing.T) {
	files := MapFiles{"a.h": "int once;\n"}
	res := expand(t, files, "#include \"a.h\"\n#include \"a.h\"\n")
	if got := text(res.Tokens); got != "int once ;" {
		t.Fatalf("got %q", got)
	}
}

func TestConditionals(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{"#ifdef A\nint yes;\n#else\nint no;\n#endif", "int no ;"},
		{"#define A 1\n#ifdef A\nint yes;\n#endif", "int yes ;"},
		{"#ifndef A\nint yes;\n#endif", "int yes ;"},
		{"#if 1+1==2\nint yes;\n#endif", "int yes ;"},
		{"#if 0\nint a;\n#elif 1\nint b;\n#else\nint c;\n#endif", "int b ;"},
		{"#if defined(A)\nint a;\n#else\nint b;\n#endif", "int b ;"},
		{"#define A 2\n#if defined A && A > 1\nint a;\n#endif", "int a ;"},
		{"#if 0\n#if 1\nint a;\n#endif\nint b;\n#endif\nint c;", "int c ;"},
		{"#if (3*4)%5 == 2\nint a;\n#endif", "int a ;"},
		{"#if 1 ? 0 : 1\nint a;\n#else\nint b;\n#endif", "int b ;"},
		{"#if UNDEFINED\nint a;\n#else\nint b;\n#endif", "int b ;"},
		{"#if 0x10 == 16\nint a;\n#endif", "int a ;"},
		{"#if !0\nint a;\n#endif", "int a ;"},
	}
	for _, c := range cases {
		res := expand(t, nil, c.src)
		if got := text(res.Tokens); got != c.want {
			t.Errorf("%q: got %q, want %q", c.src, got, c.want)
		}
	}
}

func TestUnterminatedConditionalReported(t *testing.T) {
	p := New(nil)
	res := p.Process("t.c", "#if 1\nint a;")
	if len(res.Errors) == 0 {
		t.Fatal("want error for unterminated #if")
	}
}

func TestElifAfterElseReported(t *testing.T) {
	p := New(nil)
	res := p.Process("t.c", "#if 0\n#else\n#elif 1\n#endif\n")
	if len(res.Errors) == 0 {
		t.Fatal("want error for #elif after #else")
	}
}

func TestPredefine(t *testing.T) {
	p := New(nil)
	p.Define("__KERNEL__", "1")
	res := p.Process("t.c", "#ifdef __KERNEL__\nint k;\n#endif")
	if got := text(res.Tokens); got != "int k ;" {
		t.Fatalf("got %q", got)
	}
}

func TestIsLoopMacro(t *testing.T) {
	p := New(nil)
	res := p.Process("t.c", `
#define for_each_child_of_node(parent, child) \
	for (child = of_get_next_child(parent, 0); child; \
	     child = of_get_next_child(parent, child))
#define MAX(a,b) ((a)>(b)?(a):(b))
`)
	if m := res.Macros["for_each_child_of_node"]; m == nil || !m.IsLoopMacro() {
		t.Error("for_each_child_of_node should be a loop macro")
	}
	if m := res.Macros["MAX"]; m == nil || m.IsLoopMacro() {
		t.Error("MAX should not be a loop macro")
	}
}

func TestSmartLoopExpansionShape(t *testing.T) {
	// The full Listing 4 shape: expansion must yield a parseable for loop
	// with provenance on the embedded refcounting calls.
	src := `
#define for_each_matching_node(dn, matches) \
	for (dn = of_find_matching_node(0, matches); dn; \
	     dn = of_find_matching_node(dn, matches))
static int brcmstb_pm_probe(void)
{
	for_each_matching_node(dn, matches) {
		if (cond)
			break;
	}
	return 0;
}
`
	res := expand(t, nil, src)
	joined := text(res.Tokens)
	if !strings.Contains(joined, "for ( dn = of_find_matching_node ( 0 , matches )") {
		t.Fatalf("bad expansion: %q", joined)
	}
	// The break must NOT carry smartloop provenance (it is user-written).
	for _, tok := range res.Tokens {
		if tok.Kind == clex.Keyword && tok.Text == "break" && len(tok.Origin) != 0 {
			t.Errorf("break has provenance %v", tok.Origin)
		}
		if tok.Text == "of_find_matching_node" && !tok.FromMacro("for_each_matching_node") {
			t.Errorf("of_find_matching_node missing provenance")
		}
	}
}

func TestParseCInt(t *testing.T) {
	cases := map[string]int64{
		"0": 0, "42": 42, "0x10": 16, "010": 8, "7UL": 7, "0xffU": 255,
	}
	for s, want := range cases {
		if got := parseCInt(s); got != want {
			t.Errorf("parseCInt(%q) = %d, want %d", s, got, want)
		}
	}
}

// Property: object-like macros substituting pure identifier bodies always
// produce the body, regardless of name.
func TestQuickObjectSubstitution(t *testing.T) {
	f := func(a, b uint8) bool {
		name := "M" + string(rune('A'+a%26))
		body := "v" + string(rune('a'+b%26))
		p := New(nil)
		res := p.Process("q.c", "#define "+name+" "+body+"\nint x = "+name+";")
		return text(res.Tokens) == "int x = "+body+" ;"
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: expansion terminates for mutually recursive macro chains of
// arbitrary depth.
func TestQuickRecursionTerminates(t *testing.T) {
	f := func(n uint8) bool {
		depth := int(n%9) + 2
		var b strings.Builder
		for i := 0; i < depth; i++ {
			next := (i + 1) % depth
			b.WriteString("#define M")
			b.WriteString(string(rune('0' + i)))
			b.WriteString(" M")
			b.WriteString(string(rune('0' + next)))
			b.WriteString("\n")
		}
		b.WriteString("int x = M0;")
		p := New(nil)
		res := p.Process("q.c", b.String())
		return len(res.Tokens) == 5 // int x = M? ;
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
