// Package cpp implements the C preprocessor stage of the checker pipeline.
//
// It supports the directives that matter for kernel analysis: #define /
// #undef for object- and function-like macros (with # stringize and ##
// paste), #include against a pluggable file provider, and the conditional
// family (#if/#ifdef/#ifndef/#elif/#else/#endif with defined() and integer
// expressions).
//
// Its distinguishing feature, required by anti-pattern P3 (smartloop break),
// is provenance: every token produced by macro expansion carries the chain of
// macro names it came from (clex.Token.Origin), so later stages can tell that
// an of_find_matching_node call was injected by the for_each_matching_node
// smartloop rather than written by the developer.
package cpp

import (
	"errors"
	"fmt"
	"repro/internal/arena"
	"strconv"
	"strings"
	"sync"

	"repro/internal/clex"
)

// ErrBudgetExceeded is the sentinel wrapped by the diagnostics the expansion
// guards produce: the per-Process token budget (a doubling macro chain) and
// the expansion depth cap (a deep linear chain). The preprocessor degrades
// to a truncated but well-formed token stream either way; callers that need
// to distinguish "pathological input" from ordinary diagnostics test with
// errors.Is(err, cpp.ErrBudgetExceeded).
var ErrBudgetExceeded = errors.New("cpp: macro expansion budget exceeded")

// FileProvider resolves #include paths. Includes are resolved by exact path
// first, then by suffix match (kernel-style <linux/of.h> names).
type FileProvider interface {
	// ReadFile returns the contents of path, or false if unknown.
	ReadFile(path string) (string, bool)
}

// MapFiles is an in-memory FileProvider.
//
// Lookups scan every stored path on a suffix match; prefer NewIndexedFiles
// for providers consulted once per #include per translation unit.
type MapFiles map[string]string

// ReadFile implements FileProvider. Several stored paths can share the
// requested suffix; the lexicographically smallest path wins, so resolution
// never depends on map iteration order.
func (m MapFiles) ReadFile(path string) (string, bool) {
	if s, ok := m[path]; ok {
		return s, true
	}
	best, found := "", false
	for p := range m {
		if strings.HasSuffix(p, "/"+path) && (!found || p < best) {
			best, found = p, true
		}
	}
	if found {
		return m[best], true
	}
	return "", false
}

// IndexedFiles is an in-memory FileProvider with a precomputed suffix index:
// every directory-boundary suffix of every stored path maps to the
// lexicographically smallest path carrying it, so kernel-style
// <linux/of.h> lookups cost one map probe instead of a scan over all files.
// The index is immutable after construction and safe for concurrent reads.
type IndexedFiles struct {
	files    map[string]string
	bySuffix map[string]string // suffix → smallest full path
}

// NewIndexedFiles builds the suffix index over files. The map is retained
// (not copied); callers must not mutate it afterwards.
func NewIndexedFiles(files map[string]string) *IndexedFiles {
	ix := &IndexedFiles{files: files, bySuffix: map[string]string{}}
	for p := range files {
		for i := 0; i < len(p); i++ {
			if p[i] != '/' {
				continue
			}
			sfx := p[i+1:]
			if cur, ok := ix.bySuffix[sfx]; !ok || p < cur {
				ix.bySuffix[sfx] = p
			}
		}
	}
	return ix
}

// ReadFile implements FileProvider: exact path first, then the
// directory-boundary suffix index (smallest path wins — the same resolution
// rule as MapFiles, at O(1) per lookup).
func (ix *IndexedFiles) ReadFile(path string) (string, bool) {
	if s, ok := ix.files[path]; ok {
		return s, true
	}
	if p, ok := ix.bySuffix[path]; ok {
		return ix.files[p], true
	}
	return "", false
}

// Macro is a single #define.
type Macro struct {
	Name       string
	Params     []string // nil for object-like macros
	Variadic   bool
	Body       []clex.Token
	FuncLike   bool
	DefinedAt  clex.Pos
	Predefined bool
}

// IsLoopMacro heuristically reports whether the macro expands to a for(...)
// header — the shape of kernel "smartloops" such as for_each_child_of_node.
// The smartloop registry in internal/apidb is authoritative; this is used to
// discover new smartloops during lexer parsing (§6.1).
func (m *Macro) IsLoopMacro() bool {
	for _, t := range m.Body {
		if t.Kind == clex.Keyword && t.Text == "for" {
			return true
		}
	}
	return false
}

// IncludeDep records one #include resolution for content-hash cache keys:
// the path as requested by the directive and the hex SHA-256 of the content
// served, or "" when the provider could not resolve it. A cached
// preprocessing result is valid only while every recorded dep resolves to
// the same content (and every miss still misses).
type IncludeDep struct {
	Path string
	Hash string
}

// Result is the output of preprocessing one translation unit.
type Result struct {
	Tokens []clex.Token
	// Macros is the macro table at end of file (includes macros picked up
	// from headers); used by the smartloop lexer parser.
	Macros map[string]*Macro
	// MissingIncludes lists include paths the provider could not resolve.
	// Unresolved includes are skipped (kernel code includes far more than
	// our analysis needs), but recorded for diagnostics.
	MissingIncludes []string
	Errors          []error
	// Includes is the transitive include closure (populated only when
	// TrackIncludes was set), in first-touch order.
	Includes []IncludeDep
	// Stats counts the preprocessing work this translation unit cost;
	// purely observational (the obs layer aggregates it per run).
	Stats Stats
}

// Stats counts one translation unit's preprocessing work. All quantities
// are deterministic functions of the input, so per-run aggregates compare
// equal across worker counts.
type Stats struct {
	// Expansions is the number of macro expansions performed (object- and
	// function-like uses that actually expanded).
	Expansions int
	// ExpandedTokens is the total token count charged to the expansion
	// budget — every token that passed through the expansion machinery.
	ExpandedTokens int
	// IncludesResolved / IncludesMissing count #include resolutions.
	IncludesResolved int
	IncludesMissing  int
}

// Preprocessor expands one translation unit.
type Preprocessor struct {
	files  FileProvider
	macros map[string]*Macro

	// hcache, when set, shares lexed header token lines across the
	// translation units of a run (see HeaderCache).
	hcache *HeaderCache
	// lexStats, when set, accumulates lexer counters for buffers this
	// preprocessor lexes inline (the TU itself, and headers when no header
	// cache is attached).
	lexStats *clex.Stats
	// stats counts this Process call's work (copied into Result.Stats).
	stats Stats
	// trackIncludes records the include closure into Result.Includes.
	trackIncludes bool

	out      []clex.Token
	missing  []string
	errs     []error
	depth    int // include depth guard
	included map[string]bool
	deps     []IncludeDep
	depSeen  map[string]bool

	// Expansion guards. Hide sets stop self-recursion but not pathological
	// non-recursive inputs: a chain of distinct macros that each double the
	// token stream is exponential in the chain length, and a linear chain of
	// thousands of one-token macros nests the expansion recursion as deep as
	// the chain. The budget bounds total emitted tokens per Process; the
	// depth cap bounds stack growth. Real kernel headers sit orders of
	// magnitude below both limits.
	expBudget   int
	expOverflow bool
	expDepth    int
	expDepthErr bool

	// macroSlab backs #define's Macro values. Macros are retained by the
	// Unit, so the chunks ride along with it; slab allocation just collapses
	// the per-define pointer allocation (one of the front end's hottest)
	// into one per chunk.
	macroSlab arena.Slab[Macro]

	// paramBuf backs Macro.Params: parameter lists are tiny and immutable
	// after define, so they are carved as full-cap windows of a chunked
	// buffer instead of one allocation per function-like macro.
	paramBuf []string
}

const paramChunkLen = 64

const (
	maxIncludeDepth = 32
	maxExpandTokens = 1 << 21
	maxExpandDepth  = 256
)

// New returns a preprocessor using the given file provider (may be nil if the
// unit has no resolvable includes).
func New(files FileProvider) *Preprocessor {
	return &Preprocessor{
		files:     files,
		macros:    map[string]*Macro{},
		included:  map[string]bool{},
		expBudget: maxExpandTokens,
	}
}

// WithHeaderCache shares header lexing through hc (see HeaderCache) and
// returns p.
func (p *Preprocessor) WithHeaderCache(hc *HeaderCache) *Preprocessor {
	p.hcache = hc
	return p
}

// WithLexStats accumulates lexer counters for inline-lexed buffers into st
// and returns p (see clex.Stats).
func (p *Preprocessor) WithLexStats(st *clex.Stats) *Preprocessor {
	p.lexStats = st
	return p
}

// WithOutBuffer makes p emit expanded tokens into buf's backing array
// (starting empty) and returns p. The caller owns the buffer's lifecycle:
// after the parse consumes Result.Tokens the array can be recycled, which
// is how the front end pools per-TU token storage. Without this option the
// output array is freshly allocated.
func (p *Preprocessor) WithOutBuffer(buf []clex.Token) *Preprocessor {
	p.out = buf[:0]
	return p
}

// TrackIncludes enables include-closure recording (Result.Includes) and
// returns p.
func (p *Preprocessor) TrackIncludes() *Preprocessor {
	p.trackIncludes = true
	p.depSeen = map[string]bool{}
	return p
}

// Define installs a predefined macro (e.g. __KERNEL__) before processing.
func (p *Preprocessor) Define(name, body string) {
	toks, _ := clex.Tokenize("<predef>", body, clex.Config{})
	p.macros[name] = &Macro{Name: name, Body: toks, Predefined: true}
}

// Process preprocesses the named source buffer and returns the expanded token
// stream.
func (p *Preprocessor) Process(file, src string) *Result {
	p.processFile(file, src)
	p.stats.ExpandedTokens = maxExpandTokens - p.expBudget
	return &Result{
		Tokens:          p.out,
		Macros:          p.macros,
		MissingIncludes: p.missing,
		Errors:          p.errs,
		Includes:        p.deps,
		Stats:           p.stats,
	}
}

func (p *Preprocessor) errorf(pos clex.Pos, format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// condState tracks one level of #if nesting.
type condState struct {
	active      bool // this branch is being emitted
	everActive  bool // some branch at this level was emitted
	parentLive  bool
	sawElse     bool
	openedAtPos clex.Pos
}

func (p *Preprocessor) processFile(file, src string) {
	if p.depth >= maxIncludeDepth {
		p.errs = append(p.errs, fmt.Errorf("%s: include depth exceeds %d", file, maxIncludeDepth))
		return
	}
	p.depth++
	defer func() { p.depth-- }()

	// Lexing is macro-independent, so included headers (depth > 1 after the
	// increment above) come pre-lexed from the shared cache when one is
	// attached; the top-level TU source is unique per file and lexed inline.
	var lines *clex.Lines
	if p.hcache != nil && p.depth > 1 {
		h := p.hcache.lex(file, src)
		lines = h.lines
		p.errs = append(p.errs, h.errs...)
	} else {
		var lexErrs []error
		lines, lexErrs = clex.TokenizeLines(file, src, p.lexStats)
		p.errs = append(p.errs, lexErrs...)
	}

	var conds []condState
	live := func() bool {
		for _, c := range conds {
			if !c.active {
				return false
			}
		}
		return true
	}

	for li := 0; li < lines.Len(); li++ {
		line := lines.Line(li)
		if len(line) == 0 {
			continue
		}
		if line[0].Kind == clex.Hash {
			p.directive(line, &conds, live)
			continue
		}
		if !live() {
			continue
		}
		// Expand into a pooled scratch buffer, then copy into the output:
		// the per-line expansion result is transient, so its backing array
		// is recycled instead of re-allocated for every line of every TU.
		bp := expandBufPool.Get().(*[]clex.Token)
		buf := p.expandInto((*bp)[:0], line, nil)
		p.out = append(p.out, buf...)
		*bp = buf[:0]
		expandBufPool.Put(bp)
	}
	for _, c := range conds {
		p.errorf(c.openedAtPos, "unterminated conditional")
	}
}

// expandBufPool recycles the scratch buffers used for per-line macro
// expansion. Buffer contents never survive a Put: the expansion result is
// copied into the preprocessor output before the buffer is recycled, so the
// pool cannot affect results — only allocation rate.
var expandBufPool = sync.Pool{
	New: func() any {
		b := make([]clex.Token, 0, 128)
		return &b
	},
}

func (p *Preprocessor) directive(line []clex.Token, conds *[]condState, live func() bool) {
	if len(line) < 2 {
		return // lone '#' is a null directive
	}
	name := line[1].Text
	rest := line[2:]
	switch name {
	case "if", "ifdef", "ifndef":
		parentLive := live()
		active := false
		if parentLive {
			switch name {
			case "ifdef":
				active = len(rest) > 0 && p.macros[rest[0].Text] != nil
			case "ifndef":
				active = len(rest) > 0 && p.macros[rest[0].Text] == nil
			default:
				active = p.evalCondition(rest, line[0].Pos)
			}
		}
		*conds = append(*conds, condState{
			active: active, everActive: active,
			parentLive: parentLive, openedAtPos: line[0].Pos,
		})
	case "elif":
		if len(*conds) == 0 {
			p.errorf(line[0].Pos, "#elif without #if")
			return
		}
		c := &(*conds)[len(*conds)-1]
		if c.sawElse {
			p.errorf(line[0].Pos, "#elif after #else")
			return
		}
		if c.parentLive && !c.everActive && p.evalCondition(rest, line[0].Pos) {
			c.active = true
			c.everActive = true
		} else {
			c.active = false
		}
	case "else":
		if len(*conds) == 0 {
			p.errorf(line[0].Pos, "#else without #if")
			return
		}
		c := &(*conds)[len(*conds)-1]
		c.sawElse = true
		c.active = c.parentLive && !c.everActive
		if c.active {
			c.everActive = true
		}
	case "endif":
		if len(*conds) == 0 {
			p.errorf(line[0].Pos, "#endif without #if")
			return
		}
		*conds = (*conds)[:len(*conds)-1]
	case "define":
		if live() {
			p.define(rest, line[0].Pos)
		}
	case "undef":
		if live() && len(rest) > 0 {
			delete(p.macros, rest[0].Text)
		}
	case "include":
		if live() {
			p.include(rest, line[0].Pos)
		}
	case "pragma", "error", "warning", "line":
		// Ignored: irrelevant to the analysis.
	default:
		p.errorf(line[0].Pos, "unknown directive #%s", name)
	}
}

func (p *Preprocessor) define(rest []clex.Token, pos clex.Pos) {
	if len(rest) == 0 || rest[0].Kind != clex.Ident && rest[0].Kind != clex.Keyword {
		p.errorf(pos, "malformed #define")
		return
	}
	m := p.macroSlab.New(Macro{Name: rest[0].Text, DefinedAt: rest[0].Pos})
	i := 1
	// Function-like only when '(' immediately follows the name.
	if i < len(rest) && rest[i].Kind == clex.LParen && !rest[i].LeadingSpace {
		m.FuncLike = true
		nParams := 0
		for j := i + 1; j < len(rest) && rest[j].Kind != clex.RParen; j++ {
			if rest[j].Kind == clex.Ident {
				nParams++
			}
		}
		m.Params = p.paramWindow(nParams)
		i++
		for i < len(rest) && rest[i].Kind != clex.RParen {
			switch rest[i].Kind {
			case clex.Ident:
				m.Params = append(m.Params, rest[i].Text)
			case clex.Ellipsis:
				m.Variadic = true
			case clex.Comma:
			default:
				p.errorf(rest[i].Pos, "malformed macro parameter list")
			}
			i++
		}
		if i < len(rest) {
			i++ // ')'
		}
	}
	// The body aliases the (immutable) lexed line rather than copying it.
	// For header-defined macros the line belongs to the run-shared header
	// cache, so the alias is free; a full-slice cap keeps any append by a
	// consumer from spilling into neighboring line storage.
	m.Body = rest[i:len(rest):len(rest)]
	p.macros[m.Name] = m
}

// paramWindow carves a zero-length, capacity-n window for a macro parameter
// list from the chunked parameter buffer. A window never grows past its own
// cap in place, so neighboring windows cannot clobber each other.
func (p *Preprocessor) paramWindow(n int) []string {
	if cap(p.paramBuf)-len(p.paramBuf) < n {
		c := paramChunkLen
		if n > c {
			c = n
		}
		p.paramBuf = make([]string, 0, c)
	}
	off := len(p.paramBuf)
	p.paramBuf = p.paramBuf[:off+n]
	return p.paramBuf[off : off : off+n]
}

func (p *Preprocessor) include(rest []clex.Token, pos clex.Pos) {
	path := includePath(rest)
	if path == "" {
		p.errorf(pos, "malformed #include")
		return
	}
	if p.included[path] {
		return // headers are idempotent in our corpus; treat as #pragma once
	}
	if p.files == nil {
		p.missing = append(p.missing, path)
		p.stats.IncludesMissing++
		p.recordDep(path, "", false)
		return
	}
	src, ok := p.files.ReadFile(path)
	if !ok {
		p.missing = append(p.missing, path)
		p.stats.IncludesMissing++
		p.recordDep(path, "", false)
		return
	}
	p.stats.IncludesResolved++
	p.recordDep(path, src, true)
	p.included[path] = true
	p.processFile(path, src)
}

// recordDep notes one include resolution for the closure fingerprint. A
// missing include is recorded with an empty hash — the cached result is
// valid only while that path still fails to resolve.
func (p *Preprocessor) recordDep(path, content string, resolved bool) {
	if !p.trackIncludes || p.depSeen[path] {
		return
	}
	p.depSeen[path] = true
	h := ""
	if resolved {
		if p.hcache != nil {
			h = p.hcache.HashOf(path, content)
		} else {
			h = hashContent(content)
		}
	}
	p.deps = append(p.deps, IncludeDep{Path: path, Hash: h})
}

// includePath reassembles the include operand: either a string literal or a
// <...> token sequence.
func includePath(rest []clex.Token) string {
	if len(rest) == 0 {
		return ""
	}
	if rest[0].Kind == clex.StringLit {
		return strings.Trim(rest[0].Text, `"`)
	}
	if rest[0].Kind == clex.Lt {
		var b strings.Builder
		for _, t := range rest[1:] {
			if t.Kind == clex.Gt {
				return b.String()
			}
			b.WriteString(t.Text)
		}
	}
	return ""
}

// --- expansion ---

// hideSet is the set of macro names currently being expanded (recursion
// guard, painted-blue rule). It is an immutable linked list threaded down
// the expansion recursion — pushing a name is one small allocation instead
// of cloning a map at every nesting level.
type hideSet struct {
	name string
	up   *hideSet
}

func (h *hideSet) has(name string) bool {
	for ; h != nil; h = h.up {
		if h.name == name {
			return true
		}
	}
	return false
}

// expandInto macro-expands toks, appending the result to dst and returning
// the extended slice. Appending into a caller-owned destination lets the
// whole expansion recursion share buffers instead of allocating and copying
// an intermediate slice per macro level.
func (p *Preprocessor) expandInto(dst []clex.Token, toks []clex.Token, hide *hideSet) []clex.Token {
	for i := 0; i < len(toks); i++ {
		if p.expOverflow {
			return dst
		}
		t := toks[i]
		if t.Kind != clex.Ident || t.Text == "defined" {
			if !p.spend(1, t.Pos) {
				return dst
			}
			dst = append(dst, t)
			continue
		}
		m := p.macros[t.Text]
		if m == nil || hide.has(t.Text) {
			if !p.spend(1, t.Pos) {
				return dst
			}
			dst = append(dst, t)
			continue
		}
		if m.FuncLike {
			args, consumed, ok := parseArgs(toks[i+1:])
			if !ok {
				if !p.spend(1, t.Pos) {
					return dst
				}
				dst = append(dst, t) // name not followed by '(': not a call
				continue
			}
			i += consumed
			dst = p.expandFuncLikeInto(dst, m, args, t, hide)
		} else {
			dst = p.expandObjectLikeInto(dst, m, t, hide)
		}
	}
	return dst
}

// spend debits n tokens from the per-Process expansion budget. On exhaustion
// it records one diagnostic, flips expOverflow, and every expansion loop
// drains promptly, leaving a truncated but well-formed token stream.
func (p *Preprocessor) spend(n int, pos clex.Pos) bool {
	if p.expOverflow {
		return false
	}
	if n > p.expBudget {
		p.expOverflow = true
		p.errs = append(p.errs, fmt.Errorf("%s: macro expansion exceeds %d tokens; output truncated: %w",
			pos, maxExpandTokens, ErrBudgetExceeded))
		return false
	}
	p.expBudget -= n
	return true
}

// enterExpansion guards recursion depth; when the cap is hit the macro use is
// left unexpanded (emitted verbatim by the caller) with one diagnostic.
func (p *Preprocessor) enterExpansion(use clex.Token) bool {
	if p.expDepth >= maxExpandDepth {
		if !p.expDepthErr {
			p.expDepthErr = true
			p.errs = append(p.errs, fmt.Errorf("%s: macro expansion nests deeper than %d; %s left unexpanded: %w",
				use.Pos, maxExpandDepth, use.Text, ErrBudgetExceeded))
		}
		return false
	}
	p.expDepth++
	p.stats.Expansions++
	return true
}

// finishExpansion rewrites the freshly produced expansion range: every token
// is retargeted to the expansion site (diagnostics point at the use, not the
// definition) and has the expanding macro prepended to its provenance chain.
// Tokens arriving with no prior provenance — the common case — share one
// origin slice instead of allocating one each.
func finishExpansion(out []clex.Token, macro string, pos clex.Pos) {
	var shared []string
	for i := range out {
		out[i].Pos = pos
		if len(out[i].Origin) == 0 {
			if shared == nil {
				shared = []string{macro}
			}
			out[i].Origin = shared
		} else {
			out[i].Origin = append([]string{macro}, out[i].Origin...)
		}
	}
}

// parseArgs parses a macro argument list starting at a '(' token. Returns the
// raw (unexpanded) argument token slices, the number of tokens consumed
// (including both parens), and whether a call was present.
func parseArgs(toks []clex.Token) (args [][]clex.Token, consumed int, ok bool) {
	if len(toks) == 0 || toks[0].Kind != clex.LParen {
		return nil, 0, false
	}
	depth := 0
	var cur []clex.Token
	for i, t := range toks {
		switch t.Kind {
		case clex.LParen:
			depth++
			if depth > 1 {
				cur = append(cur, t)
			}
		case clex.RParen:
			depth--
			if depth == 0 {
				args = append(args, cur)
				return args, i + 1, true
			}
			cur = append(cur, t)
		case clex.Comma:
			if depth == 1 {
				args = append(args, cur)
				cur = nil
			} else {
				cur = append(cur, t)
			}
		default:
			cur = append(cur, t)
		}
	}
	return nil, 0, false // unterminated; treat as non-call
}

func (p *Preprocessor) expandObjectLikeInto(dst []clex.Token, m *Macro, use clex.Token, hide *hideSet) []clex.Token {
	if !p.enterExpansion(use) {
		if p.spend(1, use.Pos) {
			dst = append(dst, use)
		}
		return dst
	}
	mark := len(dst)
	dst = p.expandInto(dst, m.Body, &hideSet{name: m.Name, up: hide})
	// The provenance retarget below re-walks the freshly expanded range, so
	// every enclosing macro level pays it again: without charging it to the
	// budget, a doubling chain does output×depth work after the token budget
	// is long gone. On overflow the truncated range keeps raw provenance.
	if p.spend(len(dst)-mark, use.Pos) {
		finishExpansion(dst[mark:], m.Name, use.Pos)
	}
	p.expDepth--
	return dst
}

func (p *Preprocessor) expandFuncLikeInto(dst []clex.Token, m *Macro, args [][]clex.Token, use clex.Token, hide *hideSet) []clex.Token {
	if !p.enterExpansion(use) {
		if p.spend(1, use.Pos) {
			dst = append(dst, use)
		}
		return dst
	}
	defer func() { p.expDepth-- }()
	// paramIndex resolves a body identifier to its parameter slot; the
	// __VA_ARGS__ pseudo-parameter of a variadic macro gets the slot after
	// the named ones. Parameter lists are tiny, so a linear scan beats a
	// per-expansion map.
	paramIndex := func(name string) int {
		for i, pn := range m.Params {
			if pn == name {
				return i
			}
		}
		if m.Variadic && name == "__VA_ARGS__" {
			return len(m.Params)
		}
		return -1
	}
	rawFor := func(name string) ([]clex.Token, bool) {
		idx := paramIndex(name)
		if idx < 0 {
			return nil, false
		}
		if idx == len(m.Params) && m.Variadic && name == "__VA_ARGS__" {
			var va []clex.Token
			for i := len(m.Params); i < len(args); i++ {
				if i > len(m.Params) {
					va = append(va, clex.Token{Kind: clex.Comma, Text: ",", Pos: use.Pos})
				}
				va = append(va, args[i]...)
			}
			return va, true
		}
		if idx < len(args) {
			return args[idx], true
		}
		return nil, true // missing arg expands to nothing
	}
	// Standard prescan: arguments are macro-expanded before substitution
	// (with the caller's hide set — the macro being expanded is not yet
	// painted blue for its own arguments), except where the parameter is an
	// operand of # or ##, which see the raw spelling. Expansions are
	// memoized per parameter slot.
	expCache := make([][]clex.Token, len(m.Params)+1)
	expDone := make([]bool, len(m.Params)+1)
	expandedFor := func(name string) ([]clex.Token, bool) {
		idx := paramIndex(name)
		if idx < 0 {
			return nil, false
		}
		if !expDone[idx] {
			raw, _ := rawFor(name)
			expCache[idx] = p.expandInto(nil, raw, hide)
			expDone[idx] = true
		}
		return expCache[idx], true
	}

	// Substitute parameters, handling # and ##, into a pooled scratch
	// buffer (discarded once expanded below).
	sp := expandBufPool.Get().(*[]clex.Token)
	subst := (*sp)[:0]
	body := m.Body
	for i := 0; i < len(body); i++ {
		if p.expOverflow {
			break
		}
		t := body[i]
		// Stringize: # param
		if t.Kind == clex.Hash && i+1 < len(body) && body[i+1].Kind == clex.Ident {
			if arg, ok := rawFor(body[i+1].Text); ok {
				if !p.spend(1, use.Pos) {
					break
				}
				subst = append(subst, clex.Token{
					Kind: clex.StringLit, Text: strconv.Quote(tokensText(arg)), Pos: use.Pos,
				})
				i++
				continue
			}
		}
		// Paste: A ## B (raw operands).
		if i+2 < len(body) && body[i+1].Kind == clex.HashHash {
			left := substituteOne(t, rawFor)
			right := substituteOne(body[i+2], rawFor)
			pasted := pasteTokens(left, right, use.Pos)
			if !p.spend(len(pasted), use.Pos) {
				break
			}
			subst = append(subst, pasted...)
			i += 2
			continue
		}
		if t.Kind == clex.Ident {
			if arg, ok := expandedFor(t.Text); ok {
				if !p.spend(len(arg), use.Pos) {
					break
				}
				subst = append(subst, arg...)
				continue
			}
		}
		if !p.spend(1, use.Pos) {
			break
		}
		subst = append(subst, t)
	}
	mark := len(dst)
	dst = p.expandInto(dst, subst, &hideSet{name: m.Name, up: hide})
	// Charge the provenance retarget like expandObjectLikeInto does.
	if p.spend(len(dst)-mark, use.Pos) {
		finishExpansion(dst[mark:], m.Name, use.Pos)
	}
	*sp = subst[:0]
	expandBufPool.Put(sp)
	return dst
}

// substituteOne replaces a single body token with its argument tokens when it
// names a parameter; otherwise returns the token unchanged.
func substituteOne(t clex.Token, argFor func(string) ([]clex.Token, bool)) []clex.Token {
	if t.Kind == clex.Ident {
		if arg, ok := argFor(t.Text); ok {
			return append([]clex.Token(nil), arg...)
		}
	}
	return []clex.Token{t}
}

// pasteTokens implements ##: the last token of left is concatenated with the
// first token of right and relexed.
func pasteTokens(left, right []clex.Token, pos clex.Pos) []clex.Token {
	if len(left) == 0 {
		return right
	}
	if len(right) == 0 {
		return left
	}
	glued := left[len(left)-1].Text + right[0].Text
	relexed, errs := clex.Tokenize(pos.File, glued, clex.Config{})
	var out []clex.Token
	out = append(out, left[:len(left)-1]...)
	if len(errs) == 0 && len(relexed) > 0 {
		for i := range relexed {
			relexed[i].Pos = pos
		}
		out = append(out, relexed...)
	} else {
		out = append(out, left[len(left)-1], right[0])
	}
	out = append(out, right[1:]...)
	return out
}

func tokensText(toks []clex.Token) string {
	var b strings.Builder
	for i, t := range toks {
		if i > 0 && t.LeadingSpace {
			b.WriteByte(' ')
		}
		b.WriteString(t.Text)
	}
	return b.String()
}

// --- conditional expression evaluation ---

// evalCondition evaluates a #if expression. Supported: integer literals,
// defined(X) / defined X, identifiers (0 if undefined, else their expansion),
// unary ! - ~, binary || && == != < > <= >= + - * / % | & ^ << >>, parens,
// ternary. Undefined behaviour collapses to 0, matching cpp semantics.
func (p *Preprocessor) evalCondition(toks []clex.Token, pos clex.Pos) bool {
	// Replace defined(X) before expansion.
	var pre []clex.Token
	for i := 0; i < len(toks); i++ {
		t := toks[i]
		if t.Kind == clex.Ident && t.Text == "defined" {
			name := ""
			if i+1 < len(toks) && toks[i+1].Kind == clex.LParen {
				if i+2 < len(toks) && (toks[i+2].Kind == clex.Ident || toks[i+2].Kind == clex.Keyword) {
					name = toks[i+2].Text
				}
				for i+1 < len(toks) && toks[i+1].Kind != clex.RParen {
					i++
				}
				i++ // ')'
			} else if i+1 < len(toks) {
				name = toks[i+1].Text
				i++
			}
			val := "0"
			if p.macros[name] != nil {
				val = "1"
			}
			pre = append(pre, clex.Token{Kind: clex.IntLit, Text: val, Pos: t.Pos})
			continue
		}
		pre = append(pre, t)
	}
	expanded := p.expandInto(nil, pre, nil)
	ev := condEval{toks: expanded}
	v := ev.ternary()
	if ev.bad {
		// Malformed condition: conservatively false.
		return false
	}
	return v != 0
}

type condEval struct {
	toks []clex.Token
	pos  int
	bad  bool
}

func (e *condEval) peek() clex.Token {
	if e.pos < len(e.toks) {
		return e.toks[e.pos]
	}
	return clex.Token{Kind: clex.EOF}
}

func (e *condEval) next() clex.Token {
	t := e.peek()
	e.pos++
	return t
}

func (e *condEval) ternary() int64 {
	c := e.or()
	if e.peek().Kind == clex.Question {
		e.next()
		a := e.ternary()
		if e.peek().Kind != clex.Colon {
			e.bad = true
			return 0
		}
		e.next()
		b := e.ternary()
		if c != 0 {
			return a
		}
		return b
	}
	return c
}

func (e *condEval) or() int64 {
	v := e.and()
	for e.peek().Kind == clex.OrOr {
		e.next()
		r := e.and()
		if v != 0 || r != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v
}

func (e *condEval) and() int64 {
	v := e.cmp()
	for e.peek().Kind == clex.AndAnd {
		e.next()
		r := e.cmp()
		if v != 0 && r != 0 {
			v = 1
		} else {
			v = 0
		}
	}
	return v
}

func (e *condEval) cmp() int64 {
	v := e.add()
	for {
		b2i := func(b bool) int64 {
			if b {
				return 1
			}
			return 0
		}
		switch e.peek().Kind {
		case clex.Eq:
			e.next()
			v = b2i(v == e.add())
		case clex.Ne:
			e.next()
			v = b2i(v != e.add())
		case clex.Lt:
			e.next()
			v = b2i(v < e.add())
		case clex.Gt:
			e.next()
			v = b2i(v > e.add())
		case clex.Le:
			e.next()
			v = b2i(v <= e.add())
		case clex.Ge:
			e.next()
			v = b2i(v >= e.add())
		default:
			return v
		}
	}
}

func (e *condEval) add() int64 {
	v := e.mul()
	for {
		switch e.peek().Kind {
		case clex.Plus:
			e.next()
			v += e.mul()
		case clex.Minus:
			e.next()
			v -= e.mul()
		case clex.Shl:
			e.next()
			v <<= uint(e.mul()) & 63
		case clex.Shr:
			e.next()
			v >>= uint(e.mul()) & 63
		case clex.Amp:
			e.next()
			v &= e.mul()
		case clex.Pipe:
			e.next()
			v |= e.mul()
		case clex.Caret:
			e.next()
			v ^= e.mul()
		default:
			return v
		}
	}
}

func (e *condEval) mul() int64 {
	v := e.unary()
	for {
		switch e.peek().Kind {
		case clex.Star:
			e.next()
			v *= e.unary()
		case clex.Slash:
			e.next()
			d := e.unary()
			if d == 0 {
				e.bad = true
				return 0
			}
			v /= d
		case clex.Percent:
			e.next()
			d := e.unary()
			if d == 0 {
				e.bad = true
				return 0
			}
			v %= d
		default:
			return v
		}
	}
}

func (e *condEval) unary() int64 {
	switch t := e.peek(); t.Kind {
	case clex.Not:
		e.next()
		if e.unary() == 0 {
			return 1
		}
		return 0
	case clex.Minus:
		e.next()
		return -e.unary()
	case clex.Tilde:
		e.next()
		return ^e.unary()
	case clex.Plus:
		e.next()
		return e.unary()
	case clex.LParen:
		e.next()
		v := e.ternary()
		if e.peek().Kind != clex.RParen {
			e.bad = true
			return 0
		}
		e.next()
		return v
	case clex.IntLit:
		e.next()
		return parseCInt(t.Text)
	case clex.CharLit:
		e.next()
		if len(t.Text) >= 3 {
			return int64(t.Text[1])
		}
		return 0
	case clex.Ident, clex.Keyword:
		e.next()
		return 0 // undefined identifier in #if is 0
	default:
		e.bad = true
		return 0
	}
}

// parseCInt parses a C integer literal, stripping suffixes.
func parseCInt(s string) int64 {
	s = strings.TrimRight(s, "uUlL")
	if s == "" {
		return 0
	}
	var v int64
	var err error
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		v, err = strconv.ParseInt(s[2:], 16, 64)
	case len(s) > 1 && s[0] == '0':
		v, err = strconv.ParseInt(s[1:], 8, 64)
	default:
		v, err = strconv.ParseInt(s, 10, 64)
	}
	if err != nil {
		return 0
	}
	return v
}
