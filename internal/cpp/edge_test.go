package cpp

import (
	"strings"
	"testing"
)

func TestNestedFunctionMacroArguments(t *testing.T) {
	res := expand(t, nil, `
#define A(x) ((x)+1)
#define B(x) A(A(x))
int v = B(2);`)
	if got := text(res.Tokens); got != "int v = ( ( ( ( 2 ) + 1 ) ) + 1 ) ;" {
		t.Fatalf("got %q", got)
	}
}

func TestMacroArgumentWithCommasInParens(t *testing.T) {
	res := expand(t, nil, `
#define ID(x) x
int v = ID(f(a, b));`)
	if got := text(res.Tokens); got != "int v = f ( a , b ) ;" {
		t.Fatalf("got %q", got)
	}
}

func TestEmptyMacroArgument(t *testing.T) {
	res := expand(t, nil, `
#define PAIR(a, b) { a, b }
int v[] = PAIR(, 2);`)
	if got := text(res.Tokens); !strings.Contains(got, "{ , 2 }") {
		t.Fatalf("got %q", got)
	}
}

func TestEmptyVariadic(t *testing.T) {
	res := expand(t, nil, `
#define LOG(fmt, ...) printk(fmt, __VA_ARGS__)
LOG("x");`)
	if got := text(res.Tokens); got != `printk ( "x" , ) ;` {
		// Accept the GNU-comma-swallow alternative too.
		if got != `printk ( "x" ) ;` {
			t.Fatalf("got %q", got)
		}
	}
}

func TestConditionalInsideMacroBodyNotInterpreted(t *testing.T) {
	// Directives inside macro bodies are not re-interpreted.
	res := expand(t, nil, `
#define M 1
#if M
int live;
#endif`)
	if got := text(res.Tokens); got != "int live ;" {
		t.Fatalf("got %q", got)
	}
}

func TestDeeplyNestedConditionals(t *testing.T) {
	src := `
#define A 1
#if A
# if defined(B)
int b;
# else
#  if A > 0
int deep;
#  endif
# endif
#endif`
	res := expand(t, nil, src)
	if got := text(res.Tokens); got != "int deep ;" {
		t.Fatalf("got %q", got)
	}
}

func TestStringizeExpression(t *testing.T) {
	res := expand(t, nil, `
#define STR(x) #x
const char *s = STR(a + b(c));`)
	joined := text(res.Tokens)
	if !strings.Contains(joined, `"a + b(c)"`) && !strings.Contains(joined, `"a + b( c )"`) {
		t.Fatalf("got %q", joined)
	}
}

func TestRedefinitionWins(t *testing.T) {
	res := expand(t, nil, `
#define N 1
#define N 2
int v = N;`)
	if got := text(res.Tokens); got != "int v = 2 ;" {
		t.Fatalf("got %q", got)
	}
}

func TestIncludeChain(t *testing.T) {
	files := MapFiles{
		"a.h": "#include \"b.h\"\n#define FROM_A 1\n",
		"b.h": "#define FROM_B 2\n",
	}
	res := expand(t, files, "#include \"a.h\"\nint v = FROM_A + FROM_B;")
	if got := text(res.Tokens); got != "int v = 1 + 2 ;" {
		t.Fatalf("got %q", got)
	}
}

func TestIncludeCycleTerminates(t *testing.T) {
	files := MapFiles{
		"a.h": "#include \"b.h\"\nint a;\n",
		"b.h": "#include \"a.h\"\nint b;\n",
	}
	p := New(files)
	res := p.Process("t.c", "#include \"a.h\"\n")
	// Idempotent include handling breaks the cycle; both decls appear once.
	if got := text(res.Tokens); got != "int b ; int a ;" {
		t.Fatalf("got %q", got)
	}
}

func TestProvenanceDepthThroughThreeMacros(t *testing.T) {
	res := expand(t, nil, `
#define INNER(x) leaf(x)
#define MID(x) INNER(x)
#define OUTER(x) MID(x)
OUTER(v);`)
	for _, tok := range res.Tokens {
		if tok.Text == "leaf" {
			want := []string{"OUTER", "MID", "INNER"}
			if len(tok.Origin) != 3 {
				t.Fatalf("origin = %v", tok.Origin)
			}
			for i, m := range want {
				if tok.Origin[i] != m {
					t.Fatalf("origin = %v, want %v", tok.Origin, want)
				}
			}
			return
		}
	}
	t.Fatal("leaf token lost")
}
