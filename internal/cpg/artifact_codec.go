package cpg

import (
	"errors"
	"sort"

	"repro/internal/apidb"
	"repro/internal/bincodec"
	"repro/internal/cpp"
)

// Binary codec for ShardArtifact — the payload workers stream back to the
// manager. It shares the front-entry codec's machinery: one per-artifact
// string/origin-chain table pair deduplicates spellings across every file in
// the shard (headers expand into each TU, so cross-file repetition is even
// heavier than within one entry), and tokens are the same 21-byte
// fixed-width records.
//
// Like the front-entry codec, encoding is a deterministic function of the
// artifact (macro tables walk in sorted name order, observation lists are
// already ordered), so encode∘decode is the identity on encoded bytes.
// FuzzShardArtifactCodec pins that plus the corruption contract: arbitrary
// input either decodes cleanly or fails with bincodec.ErrCorrupt, never a
// panic or huge alloc.

// saMagic identifies a shard-artifact payload; the last byte is the version.
const saMagic uint32 = 'S' | 'H'<<8 | 'A'<<16 | 1<<24

// EncodeShardArtifact serializes an artifact built with token retention
// (BuildArtifactContext with retain=true, or one that itself came out of
// DecodeShardArtifact). It panics if a file carries an AST but no retained
// token stream — such an artifact was built for in-process use and cannot be
// exported.
func EncodeShardArtifact(a *ShardArtifact) []byte {
	in := newInterner()
	nTok := 0
	for _, af := range a.Files {
		nTok += len(af.Tokens)
	}
	body := bincodec.NewWriter(64 + nTok*21)
	body.U32(uint32(len(a.Files)))
	for _, af := range a.Files {
		if af.file != nil && af.Tokens == nil {
			panic("cpg: EncodeShardArtifact on an artifact built without token retention")
		}
		encodeArtFile(body, in, af)
	}

	w := bincodec.NewWriter(16 + body.Len())
	w.U32(saMagic)
	w.Strings(in.strs)
	w.U32(uint32(len(in.chains)))
	for _, ch := range in.chains {
		w.U32(uint32(len(ch)))
		for _, id := range ch {
			w.U32(id)
		}
	}
	w.Raw(body.Bytes())
	return w.Bytes()
}

func encodeArtFile(w *bincodec.Writer, in *interner, af *ArtFile) {
	w.U32(in.str(af.Path))
	encodeTokens(w, in, af.Tokens)
	names := make([]string, 0, len(af.Macros))
	for n := range af.Macros {
		names = append(names, n)
	}
	sort.Strings(names)
	w.U32(uint32(len(names)))
	for _, n := range names {
		encodeMacro(w, in, af.Macros[n])
	}
	// Only preprocessor errors travel; parse errors regenerate on reparse.
	w.U32(uint32(af.cppN))
	for _, e := range af.errs[:af.cppN] {
		w.U32(in.str(e.Error()))
	}
	encodeFileObs(w, in, &af.Obs)
}

func encodeFileObs(w *bincodec.Writer, in *interner, o *apidb.FileObs) {
	w.U32(in.str(o.Path))
	w.U32(uint32(len(o.Structs)))
	for i := range o.Structs {
		s := &o.Structs[i]
		w.U32(in.str(s.Name))
		w.U32(uint32(len(s.Fields)))
		for _, f := range s.Fields {
			w.U32(in.str(f.Base))
			w.U32(in.str(f.Struct))
		}
	}
	w.U32(uint32(len(o.Funcs)))
	for i := range o.Funcs {
		fn := &o.Funcs[i]
		w.U32(in.str(fn.Name))
		w.U32(uint32(len(fn.Params)))
		for _, p := range fn.Params {
			w.U32(in.str(p))
		}
		w.Bool(fn.RetPointer)
		w.Bool(fn.ReturnsNull)
		w.Bool(fn.ErrorCode)
		w.U32(uint32(len(fn.Calls)))
		for ci := range fn.Calls {
			c := &fn.Calls[ci]
			w.U32(in.str(c.Callee))
			w.U32(uint32(len(c.ArgBases)))
			for _, b := range c.ArgBases {
				w.U32(in.str(b))
			}
		}
		w.U32(uint32(len(fn.CounterOps)))
		for _, c := range fn.CounterOps {
			w.U32(in.str(c.Base))
			w.Bool(c.Inc)
		}
		w.U32(uint32(len(fn.TailCallees)))
		for _, t := range fn.TailCallees {
			w.U32(in.str(t))
		}
	}
	w.U32(uint32(len(o.Macros)))
	for i := range o.Macros {
		m := &o.Macros[i]
		w.U32(in.str(m.Name))
		w.Bool(m.Loop)
		if !m.Loop {
			continue
		}
		w.U32(uint32(len(m.Params)))
		for _, p := range m.Params {
			w.U32(in.str(p))
		}
		w.U32(uint32(len(m.Idents)))
		for _, id := range m.Idents {
			w.U32(in.str(id.Name))
			w.Bool(id.NextAssign)
		}
	}
}

// DecodeShardArtifact parses data into a ShardArtifact whose files carry
// token streams but no ASTs (assembly reparses them). It returns
// bincodec.ErrCorrupt on any malformed input.
func DecodeShardArtifact(data []byte) (*ShardArtifact, error) {
	r := bincodec.NewReader(data)
	if r.U32() != saMagic {
		r.Fail()
		return nil, r.Err()
	}
	dt := &decTables{strs: r.Strings()}
	nChains := r.Count()
	if r.Err() != nil {
		return nil, r.Err()
	}
	dt.chains = make([][]string, nChains)
	for i := 0; i < nChains; i++ {
		cn := r.Count()
		if cn == 0 {
			continue
		}
		ch := make([]string, cn)
		for j := range ch {
			ch[j] = dt.str(r)
		}
		dt.chains[i] = ch
	}
	if nChains == 0 || dt.chains[0] != nil {
		// Chain 0 must exist and be the empty chain.
		r.Fail()
		return nil, r.Err()
	}

	nFiles := r.Count()
	a := &ShardArtifact{}
	for i := 0; i < nFiles && r.Err() == nil; i++ {
		a.Files = append(a.Files, decodeArtFile(r, dt))
	}
	if err := r.Done(); err != nil {
		return nil, err
	}
	return a, nil
}

func decodeArtFile(r *bincodec.Reader, dt *decTables) *ArtFile {
	af := &ArtFile{Path: dt.str(r)}
	af.Tokens = decodeTokens(r, dt, nil)
	nMacros := r.Count()
	if nMacros > 0 {
		af.Macros = make(map[string]*cpp.Macro, nMacros)
	}
	for i := 0; i < nMacros; i++ {
		m := decodeMacro(r, dt)
		if r.Err() != nil {
			break
		}
		af.Macros[m.Name] = m
	}
	nErrs := r.Count()
	for i := 0; i < nErrs && r.Err() == nil; i++ {
		af.errs = append(af.errs, errors.New(dt.str(r)))
	}
	af.cppN = len(af.errs)
	af.Obs = decodeFileObs(r, dt)
	return af
}

func decodeFileObs(r *bincodec.Reader, dt *decTables) apidb.FileObs {
	o := apidb.FileObs{Path: dt.str(r)}
	nStructs := r.Count()
	for i := 0; i < nStructs && r.Err() == nil; i++ {
		s := apidb.StructObs{Name: dt.str(r)}
		nFields := r.Count()
		for j := 0; j < nFields && r.Err() == nil; j++ {
			s.Fields = append(s.Fields, apidb.FieldObs{
				Base: dt.str(r), Struct: dt.str(r),
			})
		}
		o.Structs = append(o.Structs, s)
	}
	nFuncs := r.Count()
	for i := 0; i < nFuncs && r.Err() == nil; i++ {
		fn := apidb.FuncObs{Name: dt.str(r)}
		nParams := r.Count()
		for j := 0; j < nParams; j++ {
			fn.Params = append(fn.Params, dt.str(r))
		}
		fn.RetPointer = r.Bool()
		fn.ReturnsNull = r.Bool()
		fn.ErrorCode = r.Bool()
		nCalls := r.Count()
		for j := 0; j < nCalls && r.Err() == nil; j++ {
			c := apidb.CallObs{Callee: dt.str(r)}
			nArgs := r.Count()
			for k := 0; k < nArgs; k++ {
				c.ArgBases = append(c.ArgBases, dt.str(r))
			}
			fn.Calls = append(fn.Calls, c)
		}
		nOps := r.Count()
		for j := 0; j < nOps; j++ {
			fn.CounterOps = append(fn.CounterOps, apidb.CounterOpObs{
				Base: dt.str(r), Inc: r.Bool(),
			})
		}
		nTails := r.Count()
		for j := 0; j < nTails; j++ {
			fn.TailCallees = append(fn.TailCallees, dt.str(r))
		}
		o.Funcs = append(o.Funcs, fn)
	}
	nMacros := r.Count()
	for i := 0; i < nMacros && r.Err() == nil; i++ {
		m := apidb.MacroObs{Name: dt.str(r), Loop: r.Bool()}
		if m.Loop {
			nParams := r.Count()
			for j := 0; j < nParams; j++ {
				m.Params = append(m.Params, dt.str(r))
			}
			nIdents := r.Count()
			for j := 0; j < nIdents; j++ {
				m.Idents = append(m.Idents, apidb.LoopIdentObs{
					Name: dt.str(r), NextAssign: r.Bool(),
				})
			}
		}
		o.Macros = append(o.Macros, m)
	}
	return o
}
