package cpg

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/apidb"
	"repro/internal/bincodec"
)

// artifactSources is a small corpus exercising everything a shard artifact
// carries: macros (including a loop macro), structs, wrapper functions,
// cross-file calls, and a preprocessor error.
func artifactSources() []Source {
	return []Source{
		{Path: "drv/core.c", Content: `
#define for_each_node(n) \
	for (n = node_next(0); n; n = node_next(n))
struct node { refcount_t refcount; struct node *next; };
struct node *node_next(struct node *n)
{
	if (!n)
		return 0;
	n->refcount++;
	return n;
}
void node_put(struct node *n) { n->refcount--; }
`},
		{Path: "drv/user.c", Content: `
void use_all(struct node *head)
{
	struct node *n;
	for_each_node(n) {
		consume(n);
		node_put(n);
	}
}
int grab_err(struct node *n) { node_next(n); return -EBUSY; }
`},
		{Path: "drv/broken.c", Content: `
#if 1
int unbalanced_if(void) { return 0; }
`},
	}
}

func buildSampleArtifact(t *testing.T) *ShardArtifact {
	t.Helper()
	b := &Builder{Workers: 1}
	art := b.BuildArtifactContext(context.Background(), artifactSources(), true)
	if len(art.Files) != 3 {
		t.Fatalf("artifact files = %d, want 3", len(art.Files))
	}
	return art
}

func TestShardArtifactRoundTrip(t *testing.T) {
	art := buildSampleArtifact(t)
	enc := EncodeShardArtifact(art)
	dec, err := DecodeShardArtifact(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec.Files) != len(art.Files) {
		t.Fatalf("decoded files = %d, want %d", len(dec.Files), len(art.Files))
	}
	for i, af := range dec.Files {
		want := art.Files[i]
		if af.Path != want.Path {
			t.Errorf("file %d path %q != %q", i, af.Path, want.Path)
		}
		if !reflect.DeepEqual(af.Tokens, want.Tokens) {
			t.Errorf("%s: tokens differ after round trip", af.Path)
		}
		if !reflect.DeepEqual(af.Obs, want.Obs) {
			t.Errorf("%s: observations differ:\nwant %+v\ngot  %+v", af.Path, want.Obs, af.Obs)
		}
		if len(af.Macros) != len(want.Macros) {
			t.Errorf("%s: macro count %d != %d", af.Path, len(af.Macros), len(want.Macros))
		}
		if af.cppN != want.cppN {
			t.Errorf("%s: cppN %d != %d", af.Path, af.cppN, want.cppN)
		}
		if af.file != nil {
			t.Errorf("%s: decoded file must carry no AST", af.Path)
		}
	}
	// Re-encoding the decoded artifact must reproduce identical bytes.
	if enc2 := EncodeShardArtifact(dec); !bytes.Equal(enc, enc2) {
		t.Fatal("re-encode of decoded artifact is not byte-identical")
	}
	// The broken TU's preprocessor error must have traveled.
	var sawCppErr bool
	for _, af := range dec.Files {
		if af.Path == "drv/broken.c" && af.cppN > 0 {
			sawCppErr = true
		}
	}
	if !sawCppErr {
		t.Error("expected drv/broken.c to carry a preprocessor error")
	}
}

func TestShardArtifactCorruptInputs(t *testing.T) {
	enc := EncodeShardArtifact(buildSampleArtifact(t))
	for cut := 0; cut < len(enc); cut++ {
		if _, err := DecodeShardArtifact(enc[:cut]); !errors.Is(err, bincodec.ErrCorrupt) {
			t.Fatalf("cut=%d: err=%v, want ErrCorrupt", cut, err)
		}
	}
	long := append(bytes.Clone(enc), 0)
	if _, err := DecodeShardArtifact(long); !errors.Is(err, bincodec.ErrCorrupt) {
		t.Fatalf("trailing byte: err=%v, want ErrCorrupt", err)
	}
}

func TestEncodeWithoutRetentionPanics(t *testing.T) {
	b := &Builder{Workers: 1}
	art := b.BuildArtifactContext(context.Background(), artifactSources(), false)
	defer func() {
		if recover() == nil {
			t.Fatal("encoding a non-retained artifact should panic")
		}
	}()
	EncodeShardArtifact(art)
}

// unitFingerprint summarizes every unit property downstream consumers read,
// canonically, so two build routes can be compared for equivalence.
func unitFingerprint(u *Unit) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "files=%d\n", len(u.Files))
	for _, e := range u.Errors {
		fmt.Fprintf(&b, "err %s\n", e.Error())
	}
	for _, name := range u.FunctionNames() {
		fn := u.Functions[name]
		fmt.Fprintf(&b, "fn %s file=%s defined=%v events=%v\n",
			name, fn.File, fn.Graph != nil, fn.Events != nil)
	}
	fmt.Fprintf(&b, "structs=%d globals=%d macros=%d\n",
		len(u.Structs), len(u.Globals), len(u.Macros))
	fmt.Fprintf(&b, "disc=%v/%v/%v/%v\n", u.DiscoveredStructs,
		u.DiscoveredAPIs, u.DiscoveredLoops, u.DiscoveredDeviations)
	for _, cb := range u.CallbackBindings() {
		fmt.Fprintf(&b, "cb %s %v %v\n", cb.Pair.Struct, cb.Acquire != nil, cb.Release != nil)
	}
	for _, callee := range []string{"node_next", "node_put", "consume"} {
		fmt.Fprintf(&b, "calls %s=%d\n", callee, len(u.Calls[callee]))
	}
	return b.String()
}

// TestShardedAssembleMatchesBuild is the cpg-layer determinism pin: sources
// partitioned across N shard-local passes, serialized over the wire, merged
// and assembled must reproduce the single-process BuildContext unit — same
// functions, errors in the same order, same discovery, same DB behavior.
func TestShardedAssembleMatchesBuild(t *testing.T) {
	ctx := context.Background()
	srcs := artifactSources()
	whole := (&Builder{Workers: 1}).BuildContext(ctx, srcs)
	want := unitFingerprint(whole)

	for shards := 1; shards <= 3; shards++ {
		parts := make([][]Source, shards)
		for i, s := range srcs {
			parts[i%shards] = append(parts[i%shards], s)
		}
		var arts []*ShardArtifact
		for _, part := range parts {
			wb := &Builder{Workers: 1}
			art := wb.BuildArtifactContext(ctx, part, true)
			dec, err := DecodeShardArtifact(EncodeShardArtifact(art))
			if err != nil {
				t.Fatalf("shards=%d: wire round trip: %v", shards, err)
			}
			arts = append(arts, dec)
		}
		merged := MergeShardArtifacts(arts...)
		db := apidb.New()
		disc := db.Apply(merged.Observations())
		u := (&Builder{DB: db, Workers: 1}).AssembleContext(ctx, merged, &disc)
		if got := unitFingerprint(u); got != want {
			t.Errorf("shards=%d: unit differs from single-process build:\n--- want ---\n%s--- got ---\n%s",
				shards, want, got)
		}
	}
}

// FuzzShardArtifactCodec pins the artifact codec's two contracts, mirroring
// FuzzCacheCodec: arbitrary input either decodes cleanly or fails with
// bincodec.ErrCorrupt (never a panic), and anything that decodes re-encodes
// to a canonical form that is a fixed point — enc(dec(enc(dec(x)))) ==
// enc(dec(x)).
func FuzzShardArtifactCodec(f *testing.F) {
	b := &Builder{Workers: 1}
	f.Add(EncodeShardArtifact(b.BuildArtifactContext(context.Background(), artifactSources(), true)))
	f.Add(EncodeShardArtifact(&ShardArtifact{}))
	f.Add([]byte{})
	f.Add([]byte{'S', 'H', 'A', 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := DecodeShardArtifact(data)
		if err != nil {
			if !errors.Is(err, bincodec.ErrCorrupt) {
				t.Fatalf("decode error %v is not ErrCorrupt", err)
			}
			return
		}
		enc := EncodeShardArtifact(a)
		a2, err := DecodeShardArtifact(enc)
		if err != nil {
			t.Fatalf("canonical form failed to decode: %v", err)
		}
		if enc2 := EncodeShardArtifact(a2); !bytes.Equal(enc, enc2) {
			t.Fatal("canonical form is not a re-encode fixed point")
		}
	})
}
