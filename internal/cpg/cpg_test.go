package cpg

import (
	"testing"

	"repro/internal/cpp"
)

func build(t *testing.T, sources ...Source) *Unit {
	t.Helper()
	b := &Builder{}
	u := b.Build(sources)
	for _, e := range u.Errors {
		t.Fatalf("build error: %v", e)
	}
	return u
}

func TestUnitBasics(t *testing.T) {
	u := build(t,
		Source{Path: "drivers/foo/a.c", Content: `
struct foo_dev { struct kref ref; int id; };
static void helper(struct foo_dev *d) { kref_get(&d->ref); }
int foo_probe(struct foo_dev *d)
{
	helper(d);
	return 0;
}
`})
	if len(u.Files) != 1 {
		t.Fatalf("files = %d", len(u.Files))
	}
	if u.Functions["foo_probe"] == nil || u.Functions["helper"] == nil {
		t.Fatalf("functions = %v", u.FunctionNames())
	}
	if u.Structs["foo_dev"] == nil {
		t.Error("struct table missing foo_dev")
	}
	fn := u.Functions["foo_probe"]
	if fn.Graph == nil || fn.Events == nil {
		t.Error("analysis artifacts missing")
	}
	sites := u.Calls["helper"]
	if len(sites) != 1 || sites[0].Caller.Def.Name != "foo_probe" {
		t.Errorf("call sites = %+v", sites)
	}
}

func TestDiscoveryRuns(t *testing.T) {
	u := build(t, Source{Path: "a.c", Content: `
struct foo_dev { struct kref ref; };
void foo_get(struct foo_dev *d) { kref_get(&d->ref); }
void foo_put(struct foo_dev *d) { kref_put(&d->ref); }
void user(struct foo_dev *d)
{
	foo_get(d);
	foo_put(d);
}
`})
	if len(u.DiscoveredStructs) != 1 || u.DiscoveredStructs[0] != "foo_dev" {
		t.Errorf("discovered structs = %v", u.DiscoveredStructs)
	}
	if len(u.DiscoveredAPIs) != 2 {
		t.Errorf("discovered APIs = %v", u.DiscoveredAPIs)
	}
	// Events in `user` must classify foo_get as Inc (DB extended before
	// extraction).
	fn := u.Functions["user"]
	found := false
	for _, evs := range fn.Events.ByBlok {
		for _, ev := range evs {
			if ev.API == "foo_get" && ev.Op.String() == "G" {
				found = true
			}
		}
	}
	if !found {
		t.Error("discovered API not reflected in events")
	}
}

func TestHeadersResolved(t *testing.T) {
	headers := cpp.MapFiles{
		"include/linux/of.h": `
#define for_each_child_of_node(parent, child) \
	for (child = of_get_next_child(parent, 0); child; \
	     child = of_get_next_child(parent, child))
`,
	}
	b := &Builder{Headers: headers}
	u := b.Build([]Source{{Path: "drivers/x.c", Content: `
#include <linux/of.h>
int walk(struct device_node *parent)
{
	struct device_node *child;
	for_each_child_of_node(parent, child) {
		use(child);
	}
	return 0;
}
`}})
	for _, e := range u.Errors {
		t.Fatalf("err: %v", e)
	}
	if u.Macros["for_each_child_of_node"] == nil {
		t.Error("macro from header missing")
	}
	if u.Functions["walk"].Graph == nil {
		t.Error("walk not analyzed")
	}
}

func TestCallbackBindings(t *testing.T) {
	u := build(t, Source{Path: "drivers/d.c", Content: `
struct platform_driver { int (*probe)(void); int (*remove)(void); };
static int d_probe(void) { return 0; }
static int d_remove(void) { return 0; }
static struct platform_driver d_driver = {
	.probe = d_probe,
	.remove = d_remove,
};
`})
	cbs := u.CallbackBindings()
	if len(cbs) != 1 {
		t.Fatalf("bindings = %+v", cbs)
	}
	cb := cbs[0]
	if cb.Acquire == nil || cb.Acquire.Def.Name != "d_probe" {
		t.Errorf("acquire = %+v", cb.Acquire)
	}
	if cb.Release == nil || cb.Release.Def.Name != "d_remove" {
		t.Errorf("release = %+v", cb.Release)
	}
	if cb.Pair.Struct != "platform_driver" {
		t.Errorf("pair = %+v", cb.Pair)
	}
}

func TestCallbackBindingMissingRelease(t *testing.T) {
	u := build(t, Source{Path: "drivers/d.c", Content: `
struct usb_driver { int (*probe)(void); int (*disconnect)(void); };
static int u_probe(void) { return 0; }
static struct usb_driver u_driver = {
	.probe = u_probe,
};
`})
	cbs := u.CallbackBindings()
	if len(cbs) != 1 {
		t.Fatalf("bindings = %+v", cbs)
	}
	if cbs[0].Acquire == nil || cbs[0].Release != nil {
		t.Errorf("binding = %+v", cbs[0])
	}
}

func TestDeterministicOrder(t *testing.T) {
	srcs := []Source{
		{Path: "b.c", Content: "int fb(void) { return 2; }"},
		{Path: "a.c", Content: "int fa(void) { return 1; }"},
	}
	u1 := build(t, srcs...)
	u2 := build(t, srcs[1], srcs[0])
	if u1.Files[0].Name != "a.c" || u2.Files[0].Name != "a.c" {
		t.Error("files not sorted by path")
	}
	n1, n2 := u1.FunctionNames(), u2.FunctionNames()
	for i := range n1 {
		if n1[i] != n2[i] {
			t.Fatalf("order differs: %v vs %v", n1, n2)
		}
	}
}

func TestParseErrorsSurfaced(t *testing.T) {
	b := &Builder{}
	u := b.Build([]Source{{Path: "bad.c", Content: "@@@;\nint ok(void) { return 0; }"}})
	if len(u.Errors) == 0 {
		t.Error("expected surfaced errors")
	}
	if u.Functions["ok"] == nil {
		t.Error("recovery failed")
	}
}

// TestParallelMatchesSequential builds the same sources with one worker and
// with many; every analysis artifact must agree.
func TestParallelMatchesSequential(t *testing.T) {
	srcs := []Source{
		{Path: "a.c", Content: `
struct a_dev { struct kref ref; };
void a_get(struct a_dev *d) { kref_get(&d->ref); }
void a_put(struct a_dev *d) { kref_put(&d->ref); }
int a_user(struct a_dev *d) { a_get(d); a_put(d); return 0; }
`},
		{Path: "b.c", Content: `
int b_probe(void)
{
	struct device_node *np = of_find_node_by_path("/b");
	if (!np)
		return -ENODEV;
	of_node_put(np);
	return 0;
}
`},
	}
	seq := (&Builder{Workers: 1}).Build(srcs)
	par := (&Builder{Workers: 8}).Build(srcs)
	if len(seq.Functions) != len(par.Functions) {
		t.Fatalf("function counts differ")
	}
	for name, sf := range seq.Functions {
		pf := par.Functions[name]
		if (sf.Graph == nil) != (pf.Graph == nil) {
			t.Fatalf("%s: graph presence differs", name)
		}
		if sf.Graph == nil {
			continue
		}
		if len(sf.Graph.Blocks) != len(pf.Graph.Blocks) {
			t.Errorf("%s: block counts differ", name)
		}
		sevs, pevs := 0, 0
		for _, b := range sf.Graph.Blocks {
			sevs += len(sf.Events.ByBlok[b])
		}
		for _, b := range pf.Graph.Blocks {
			pevs += len(pf.Events.ByBlok[b])
		}
		if sevs != pevs {
			t.Errorf("%s: event counts differ (%d vs %d)", name, sevs, pevs)
		}
	}
	for name := range seq.Calls {
		if len(seq.Calls[name]) != len(par.Calls[name]) {
			t.Errorf("call sites for %s differ", name)
		}
	}
	// Phase 1 is sharded too: merged declarations, macros, and errors must
	// agree between the sequential and parallel front ends.
	if len(seq.Files) != len(par.Files) {
		t.Errorf("file counts differ (%d vs %d)", len(seq.Files), len(par.Files))
	}
	for i := range seq.Files {
		if seq.Files[i].Name != par.Files[i].Name {
			t.Errorf("file %d: %s vs %s", i, seq.Files[i].Name, par.Files[i].Name)
		}
	}
	if len(seq.Macros) != len(par.Macros) {
		t.Errorf("macro counts differ (%d vs %d)", len(seq.Macros), len(par.Macros))
	}
	for name := range seq.Macros {
		if par.Macros[name] == nil {
			t.Errorf("macro %s missing from parallel build", name)
		}
	}
	if len(seq.Structs) != len(par.Structs) || len(seq.Globals) != len(par.Globals) {
		t.Errorf("declaration tables differ")
	}
	if len(seq.Errors) != len(par.Errors) {
		t.Errorf("error counts differ (%d vs %d)", len(seq.Errors), len(par.Errors))
	}
	for i := range seq.Errors {
		if seq.Errors[i].Error() != par.Errors[i].Error() {
			t.Errorf("error %d differs: %v vs %v", i, seq.Errors[i], par.Errors[i])
		}
	}
}

// TestParallelErrorOrderDeterministic shards files with parse errors across
// many workers and checks the merged error list keeps sorted-path order.
func TestParallelErrorOrderDeterministic(t *testing.T) {
	srcs := []Source{
		{Path: "z.c", Content: "@@@;\nint fz(void) { return 0; }"},
		{Path: "a.c", Content: "###;\nint fa(void) { return 0; }"},
		{Path: "m.c", Content: "int fm(void) { return 0; }"},
	}
	want := (&Builder{Workers: 1}).Build(srcs)
	if len(want.Errors) == 0 {
		t.Fatal("expected parse errors")
	}
	for i := 0; i < 10; i++ {
		got := (&Builder{Workers: 8}).Build(srcs)
		if len(got.Errors) != len(want.Errors) {
			t.Fatalf("error counts differ (%d vs %d)", len(got.Errors), len(want.Errors))
		}
		for j := range want.Errors {
			if got.Errors[j].Error() != want.Errors[j].Error() {
				t.Fatalf("error %d differs: %v vs %v", j, got.Errors[j], want.Errors[j])
			}
		}
	}
}
