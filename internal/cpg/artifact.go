package cpg

import (
	"context"
	"runtime"
	"sort"
	"sync"

	"repro/internal/apidb"
	"repro/internal/arena"
	"repro/internal/cast"
	"repro/internal/clex"
	"repro/internal/cparse"
	"repro/internal/cpp"
)

// ArtFile is one translation unit's shard-local result: the expanded token
// stream, the macro table, preprocessor errors, and the file's discovery
// observation. It is the serializable projection of phase 1 — parse trees
// deliberately stay out (the same trade the front-end cache makes: the
// parser is cheap relative to preprocessing, and reparsing identical tokens
// yields an identical AST), so a decoded ArtFile is reparsed during
// assembly.
type ArtFile struct {
	Path   string
	Tokens []clex.Token
	Macros map[string]*cpp.Macro
	Obs    apidb.FileObs

	// file/errs are the in-memory fast path: a locally built artifact keeps
	// its AST and full error list (cpp + parse) so the single-process build
	// never reparses. After decode, file is nil and errs holds only the
	// reconstituted preprocessor errors; assembleWith reparses and appends
	// the parse errors, restoring the exact error order the monolithic build
	// produced.
	file *cast.File
	errs []error
	// cppN is how many leading errs entries are preprocessor errors — the
	// serialization split point.
	cppN int
}

// ShardArtifact is the serializable output of a shard-local pass: the files
// of the shard in sorted path order.
type ShardArtifact struct {
	Files []*ArtFile
}

// Observations projects the artifact onto its per-file discovery
// observations, in file order — the input to apidb's exchange replay.
func (a *ShardArtifact) Observations() []apidb.FileObs {
	out := make([]apidb.FileObs, len(a.Files))
	for i, af := range a.Files {
		out[i] = af.Obs
	}
	return out
}

// MergeShardArtifacts concatenates shard outputs and restores global sorted
// path order, so the merged artifact is indistinguishable from one produced
// by a single whole-corpus local pass regardless of how sources were
// partitioned. The merge is stable, though shards produced by Partition
// never overlap in paths.
func MergeShardArtifacts(arts ...*ShardArtifact) *ShardArtifact {
	m := &ShardArtifact{}
	for _, a := range arts {
		if a != nil {
			m.Files = append(m.Files, a.Files...)
		}
	}
	sort.SliceStable(m.Files, func(i, j int) bool { return m.Files[i].Path < m.Files[j].Path })
	return m
}

// BuildArtifactContext runs only the shard-local half of a build: the
// per-file front end plus discovery observation extraction. With retain set,
// each file's expanded token stream is copied into fresh storage so the
// artifact can outlive the build's pooled buffers and be serialized
// (EncodeShardArtifact requires it); without retain the artifact is only
// usable in-process, which is how BuildContext itself consumes it.
//
// The builder's DB is not consulted: a shard-local pass is DB-independent by
// design, so stateless workers need no discovery state at all.
func (b *Builder) BuildArtifactContext(ctx context.Context, sources []Source, retain bool) *ShardArtifact {
	fe := b.newFrontEnd()
	fe.retain = retain
	return b.buildArtifact(ctx, fe, sources)
}

// Hydrate parses every wire-format file (af.file == nil) into its AST and
// releases the token stream, appending parse errors after the preprocessor
// errors exactly as assembleWith's reparse would. Calling it as each shard
// artifact arrives makes manager-side memory scale with per-shard AST size
// instead of whole-corpus retained token streams; assembly then finds
// nothing left to reparse. Files that already carry an AST only have their
// token streams dropped. workers bounds the parse parallelism (0 =
// GOMAXPROCS).
func (a *ShardArtifact) Hydrate(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var toParse []*ArtFile
	for _, af := range a.Files {
		if af.file == nil {
			toParse = append(toParse, af)
		} else {
			af.Tokens = nil
		}
	}
	if len(toParse) == 0 {
		return
	}
	stats := &arena.Stats{}
	hydrate := func(af *ArtFile) {
		file, perrs := cparse.ParseFileArena(af.Path, af.Tokens, stats)
		af.file = file
		af.errs = append(af.errs, perrs...)
		af.Tokens = nil
	}
	if workers > 1 && len(toParse) > 1 {
		var wg sync.WaitGroup
		jobs := make(chan *ArtFile)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for af := range jobs {
					hydrate(af)
				}
			}()
		}
		for _, af := range toParse {
			jobs <- af
		}
		close(jobs)
		wg.Wait()
	} else {
		for _, af := range toParse {
			hydrate(af)
		}
	}
}

// AssembleContext runs the global half of a build over a (possibly merged,
// possibly decoded) artifact: reparse wire-format files, merge declarations
// in sorted path order, apply discovery, and run per-function analysis.
//
// disc carries the result of an exchange already applied to b.DB (the
// manager path, where the same DB must then be shared with the checker
// engine); nil means no exchange has happened and the artifact's own
// observations are applied here.
func (b *Builder) AssembleContext(ctx context.Context, art *ShardArtifact, disc *apidb.Discovery) *Unit {
	return b.assembleWith(ctx, b.newFrontEnd(), art, disc)
}
