package cpg

import (
	"context"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestRegenArtifactFuzzSeedCorpus rewrites the checked-in seed corpus for
// FuzzShardArtifactCodec (testdata/fuzz/FuzzShardArtifactCodec) when
// REGEN_FUZZ_CORPUS=1 is set — run it after any encoding change so the
// corpus keeps a valid artifact of the current format (encoded from a real
// shard-local build) alongside the malformed probes. Without the variable it
// only verifies the corpus directory exists and is non-empty.
func TestRegenArtifactFuzzSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzShardArtifactCodec")
	b := &Builder{Workers: 1}
	real := EncodeShardArtifact(b.BuildArtifactContext(context.Background(), artifactSources(), true))
	seeds := map[string][]byte{
		"seed_valid_real":  real,
		"seed_valid_empty": EncodeShardArtifact(&ShardArtifact{}),
		"seed_magic_only":  {'S', 'H', 'A', 1},
		"seed_truncated":   real[:10],
		"seed_garbage":     {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
	}
	if os.Getenv("REGEN_FUZZ_CORPUS") == "" {
		ents, err := os.ReadDir(dir)
		if err != nil || len(ents) == 0 {
			t.Fatalf("seed corpus missing at %s (regenerate with REGEN_FUZZ_CORPUS=1): %v", dir, err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
