package cpg

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// TestRegenFuzzSeedCorpus rewrites the checked-in seed corpus for
// FuzzCacheCodec (testdata/fuzz/FuzzCacheCodec) when REGEN_FUZZ_CORPUS=1 is
// set — run it after any encoding change so the corpus keeps one valid entry
// of the current format alongside the malformed probes. Without the variable
// it only verifies the corpus directory exists and is non-empty.
func TestRegenFuzzSeedCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzCacheCodec")
	seeds := map[string][]byte{
		"seed_valid_full":  encodeFrontEntry(sampleEntry()),
		"seed_valid_empty": encodeFrontEntry(&frontEntry{}),
		"seed_magic_only":  {'F', 'E', 'C', 1},
		"seed_truncated":   encodeFrontEntry(sampleEntry())[:10],
		"seed_garbage":     {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
	}
	if os.Getenv("REGEN_FUZZ_CORPUS") == "" {
		ents, err := os.ReadDir(dir)
		if err != nil || len(ents) == 0 {
			t.Fatalf("seed corpus missing at %s (regenerate with REGEN_FUZZ_CORPUS=1): %v", dir, err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, data := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(data)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
