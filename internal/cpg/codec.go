package cpg

import (
	"sort"

	"repro/internal/bincodec"
	"repro/internal/clex"
	"repro/internal/cpp"
)

// Binary codec for the per-file front-end cache entry (frontEntry). The
// entry is dominated by tokens, and token fields repeat massively — the same
// identifier spelling, file name, and macro-origin chain appear thousands of
// times — so the encoding deduplicates through two per-entry tables:
//
//   - a string table holding every distinct spelling/file/origin component,
//     built in first-use order during encoding;
//   - an origin-chain table holding every distinct provenance chain as
//     string-table indices (chain 0 is the empty chain).
//
// A token is then six fixed-width fields (21 bytes) referencing the tables.
// Decoding materializes each table entry once and shares it across every
// referencing token, so a decoded entry also deduplicates in memory.
//
// Both table constructions are deterministic functions of the entry (maps
// are walked in sorted order), so encoding the same entry — including one
// that just came out of decode — reproduces identical bytes. FuzzCacheCodec
// pins that, plus the corruption contract: arbitrary input either decodes
// cleanly or fails with bincodec.ErrCorrupt, never a panic or huge alloc.

// feMagic identifies a front-entry payload; the last byte is the version.
const feMagic uint32 = 'F' | 'E'<<8 | 'C'<<16 | 1<<24

// interner assigns dense ids to strings and origin chains in first-use
// order.
type interner struct {
	strIdx   map[string]uint32
	strs     []string
	chainIdx map[string]uint32
	chains   [][]uint32

	// scratch buffers reused across chain() calls; the chain-key bytes and
	// id list only outlive a call when the chain is new.
	keyBuf []byte
	idBuf  []uint32
}

func newInterner() *interner {
	in := &interner{strIdx: map[string]uint32{}, chainIdx: map[string]uint32{}}
	// Chain 0 is the empty origin chain, so literal tokens cost no lookup.
	in.chainIdx[""] = 0
	in.chains = append(in.chains, nil)
	return in
}

func (in *interner) str(s string) uint32 {
	if id, ok := in.strIdx[s]; ok {
		return id
	}
	id := uint32(len(in.strs))
	in.strIdx[s] = id
	in.strs = append(in.strs, s)
	return id
}

func (in *interner) chain(origin []string) uint32 {
	if len(origin) == 0 {
		return 0
	}
	in.keyBuf = in.keyBuf[:0]
	in.idBuf = in.idBuf[:0]
	for _, s := range origin {
		id := in.str(s)
		in.idBuf = append(in.idBuf, id)
		in.keyBuf = append(in.keyBuf, byte(id), byte(id>>8), byte(id>>16), byte(id>>24), 0)
	}
	if id, ok := in.chainIdx[string(in.keyBuf)]; ok {
		return id
	}
	id := uint32(len(in.chains))
	in.chainIdx[string(in.keyBuf)] = id
	in.chains = append(in.chains, append([]uint32(nil), in.idBuf...))
	return id
}

const leadingSpaceBit = 0x80

func encodeToken(w *bincodec.Writer, in *interner, t *clex.Token) {
	kb := uint8(t.Kind)
	if t.LeadingSpace {
		kb |= leadingSpaceBit
	}
	w.U8(kb)
	w.U32(in.str(t.Text))
	w.U32(in.str(t.Pos.File))
	w.U32(uint32(t.Pos.Line))
	w.U32(uint32(t.Pos.Col))
	w.U32(in.chain(t.Origin))
}

// decTables is the decoded table pair; token decoding resolves against it.
type decTables struct {
	strs   []string
	chains [][]string
}

func (dt *decTables) str(r *bincodec.Reader) string {
	id := r.U32()
	if int(id) >= len(dt.strs) {
		r.Fail()
		return ""
	}
	return dt.strs[id]
}

func decodeToken(r *bincodec.Reader, dt *decTables) clex.Token {
	kb := r.U8()
	t := clex.Token{
		Kind:         clex.Kind(kb &^ leadingSpaceBit),
		LeadingSpace: kb&leadingSpaceBit != 0,
		Text:         dt.str(r),
	}
	t.Pos.File = dt.str(r)
	t.Pos.Line = int(r.U32())
	t.Pos.Col = int(r.U32())
	cid := r.U32()
	if int(cid) >= len(dt.chains) {
		r.Fail()
		return t
	}
	t.Origin = dt.chains[cid]
	if t.Kind > clex.KindMax {
		r.Fail()
	}
	return t
}

func encodeTokens(w *bincodec.Writer, in *interner, toks []clex.Token) {
	w.U32(uint32(len(toks)))
	for i := range toks {
		encodeToken(w, in, &toks[i])
	}
}

func decodeTokens(r *bincodec.Reader, dt *decTables, dst []clex.Token) []clex.Token {
	n := r.Count()
	if cap(dst) < n {
		dst = make([]clex.Token, 0, n)
	}
	dst = dst[:0]
	for i := 0; i < n; i++ {
		dst = append(dst, decodeToken(r, dt))
		if r.Err() != nil {
			return dst
		}
	}
	return dst
}

func encodePosInterned(w *bincodec.Writer, in *interner, p clex.Pos) {
	w.U32(in.str(p.File))
	w.U32(uint32(p.Line))
	w.U32(uint32(p.Col))
}

func decodePosInterned(r *bincodec.Reader, dt *decTables) clex.Pos {
	return clex.Pos{File: dt.str(r), Line: int(r.U32()), Col: int(r.U32())}
}

func encodeMacro(w *bincodec.Writer, in *interner, m *cpp.Macro) {
	w.U32(in.str(m.Name))
	w.U32(uint32(len(m.Params)))
	for _, p := range m.Params {
		w.U32(in.str(p))
	}
	w.Bool(m.Params != nil)
	w.Bool(m.Variadic)
	w.Bool(m.FuncLike)
	w.Bool(m.Predefined)
	encodePosInterned(w, in, m.DefinedAt)
	encodeTokens(w, in, m.Body)
}

func decodeMacro(r *bincodec.Reader, dt *decTables) *cpp.Macro {
	m := &cpp.Macro{Name: dt.str(r)}
	nParams := r.Count()
	for i := 0; i < nParams; i++ {
		m.Params = append(m.Params, dt.str(r))
	}
	if r.Bool() && m.Params == nil {
		// Function-like with zero params: Params is non-nil but empty.
		m.Params = []string{}
	}
	m.Variadic = r.Bool()
	m.FuncLike = r.Bool()
	m.Predefined = r.Bool()
	m.DefinedAt = decodePosInterned(r, dt)
	m.Body = decodeTokens(r, dt, nil)
	if len(m.Body) == 0 {
		m.Body = nil
	}
	return m
}

// encodeFrontEntry serializes ent: magic, string/chain tables, then the body
// (closure, tokens, macros in sorted name order, errors).
func encodeFrontEntry(ent *frontEntry) []byte {
	in := newInterner()
	body := bincodec.NewWriter(32 + len(ent.Tokens)*21)

	body.U32(uint32(len(ent.Closure)))
	for _, d := range ent.Closure {
		body.String(d.Path)
		body.String(d.Hash)
	}
	encodeTokens(body, in, ent.Tokens)
	names := make([]string, 0, len(ent.Macros))
	for n := range ent.Macros {
		names = append(names, n)
	}
	sort.Strings(names)
	body.U32(uint32(len(names)))
	for _, n := range names {
		encodeMacro(body, in, ent.Macros[n])
	}
	body.Strings(ent.CppErrors)

	w := bincodec.NewWriter(16 + body.Len())
	w.U32(feMagic)
	w.Strings(in.strs)
	w.U32(uint32(len(in.chains)))
	for _, ch := range in.chains {
		w.U32(uint32(len(ch)))
		for _, id := range ch {
			w.U32(id)
		}
	}
	w.Raw(body.Bytes())
	return w.Bytes()
}

// decodeFrontEntry parses data into ent, reusing tokBuf (when large enough)
// for the main token stream so a pooled buffer can back it. It returns
// bincodec.ErrCorrupt on any malformed input.
func decodeFrontEntry(data []byte, ent *frontEntry, tokBuf []clex.Token) error {
	r := bincodec.NewReader(data)
	if r.U32() != feMagic {
		r.Fail()
		return r.Err()
	}
	dt := &decTables{strs: r.Strings()}
	nChains := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	dt.chains = make([][]string, nChains)
	for i := 0; i < nChains; i++ {
		cn := r.Count()
		if cn == 0 {
			continue
		}
		ch := make([]string, cn)
		for j := range ch {
			ch[j] = dt.str(r)
		}
		dt.chains[i] = ch
	}
	if nChains == 0 || dt.chains[0] != nil {
		// Chain 0 must exist and be the empty chain.
		r.Fail()
		return r.Err()
	}

	nDeps := r.Count()
	for i := 0; i < nDeps; i++ {
		ent.Closure = append(ent.Closure, cpp.IncludeDep{Path: r.String(), Hash: r.String()})
	}
	ent.Tokens = decodeTokens(r, dt, tokBuf)
	nMacros := r.Count()
	ent.Macros = make(map[string]*cpp.Macro, nMacros)
	for i := 0; i < nMacros; i++ {
		m := decodeMacro(r, dt)
		if r.Err() != nil {
			break
		}
		ent.Macros[m.Name] = m
	}
	ent.CppErrors = r.Strings()
	return r.Done()
}

// decodeFrontValue is the value-tier decode callback: it builds a frontEntry
// in fresh storage (no pooled buffers) suitable for retention in the cache's
// in-memory tier and sharing across builds. The Macros map is normalized to
// non-nil here, eagerly, because the shared entry must never be mutated by a
// reader.
func decodeFrontValue(data []byte) (any, error) {
	ent := new(frontEntry)
	if err := decodeFrontEntry(data, ent, nil); err != nil {
		return nil, err
	}
	if ent.Macros == nil {
		ent.Macros = map[string]*cpp.Macro{}
	}
	return ent, nil
}
