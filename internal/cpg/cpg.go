// Package cpg assembles whole-translation-unit code property graphs: the
// paper's "Graph Generation" stage (§6.1, built there with JOERN).
//
// A Unit combines, for a set of C sources, the ASTs, per-function CFGs,
// semantic event streams, struct/global tables, the preprocessor macro
// table, and a call graph — everything the nine checkers query. Building a
// Unit also runs the "Lexer Parsing" stage: refcounted-structure discovery,
// refcounting-API wrapper discovery, and smartloop discovery extend the API
// knowledge base before events are extracted.
package cpg

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/analysiscache"
	"repro/internal/apidb"
	"repro/internal/arena"
	"repro/internal/cast"
	"repro/internal/cfg"
	"repro/internal/clex"
	"repro/internal/cparse"
	"repro/internal/cpp"
	"repro/internal/obs"
	"repro/internal/semantics"
)

// Function is one function definition with its analysis artifacts.
type Function struct {
	Def    *cast.FuncDef
	File   string
	Graph  *cfg.Graph            // nil for prototypes
	Events *semantics.FuncEvents // nil for prototypes
}

// CallSite is one static call to a named function.
type CallSite struct {
	Caller *Function
	Call   *cast.CallExpr
}

// CallbackBinding records a designated-initializer binding like
// `.probe = foo_probe` inside a driver-ops structure (P6 input).
type CallbackBinding struct {
	Pair    apidb.CallbackPair
	Var     *cast.VarDecl
	Acquire *Function // may be nil when the bound name is not defined here
	Release *Function
	File    string
}

// Unit is the code property graph of a source tree.
type Unit struct {
	DB        *apidb.DB
	Files     []*cast.File
	Functions map[string]*Function
	Structs   map[string]*cast.StructDecl
	Globals   map[string]*cast.VarDecl
	Macros    map[string]*cpp.Macro
	Calls     map[string][]CallSite // callee name → sites
	Errors    []error

	// Discovered names from the lexer-parsing stage (reported by tools).
	DiscoveredStructs    []string
	DiscoveredAPIs       []string
	DiscoveredLoops      []string
	DiscoveredDeviations []string
}

// Source is one input file.
type Source struct {
	Path    string
	Content string
}

// Builder configures unit construction.
type Builder struct {
	// DB is extended in place by discovery; nil means a fresh apidb.New().
	DB *apidb.DB
	// Headers resolves #include; nil skips unresolvable includes. The
	// provider must be safe for concurrent reads (plain maps are: the
	// parallel front end only ever calls ReadFile).
	Headers cpp.FileProvider
	// Predefines are macros defined before each file (e.g. __KERNEL__).
	Predefines map[string]string
	// Workers bounds the file-sharded preprocess+parse concurrency
	// (phase 1) and the per-function analysis concurrency (phase 3);
	// 0 means GOMAXPROCS, 1 forces sequential building. Results are
	// byte-identical either way — files and functions are processed
	// independently and merged in deterministic order.
	Workers int
	// HeaderCache shares lexed header token lines across the unit's files
	// (and, if the caller reuses it, across builds); nil means a fresh
	// per-build cache, so headers are still lexed only once per Build.
	HeaderCache *cpp.HeaderCache
	// Cache, when non-nil, persists each file's preprocessed form
	// (tokens + macros + include closure) keyed by content hash, so an
	// unchanged file skips preprocessing on the next build. Parsing and
	// everything downstream still run — discovery and the checkers have
	// cross-file dependencies — which keeps cached and uncached builds
	// byte-identical by construction.
	Cache *analysiscache.Cache
	// Obs, when non-nil, is the parent span the build hangs its spans and
	// counters off: a child span per translation unit plus front-end
	// counters (frontend.cache.hit/miss, frontend.tokens,
	// frontend.macro_expansions, headercache.hit/miss, lex.tokens) and the
	// frontend.tu_ms histogram. Nil (or a span from obs.Nop()) disables all
	// of it at effectively zero cost; the Unit is byte-identical either way.
	Obs *obs.Span
}

// parsed is one file's phase-1 output, produced by any worker and merged on
// the coordinating goroutine in sorted path order.
type parsed struct {
	file   *cast.File
	macros map[string]*cpp.Macro
	errs   []error
	// cppN is how many leading errs entries came from the preprocessor; the
	// artifact codec serializes those as strings (parse errors regenerate on
	// reparse, so they are never serialized).
	cppN int
	// tokens is the retained expanded token stream in fresh storage, set
	// only when the front end runs in retain mode for artifact export. The
	// pooled per-TU buffer must never escape parseOne, so this is always a
	// copy.
	tokens []clex.Token
}

// frontEntry is the persisted per-file front-end result: everything the
// preprocessor produced for one source, plus the include closure that must
// still resolve identically for the entry to be reused. Parse trees are NOT
// cached — the parser is cheap relative to preprocessing, and reparsing from
// cached tokens sidesteps serializing the AST.
type frontEntry struct {
	Closure   []cpp.IncludeDep
	Tokens    []clex.Token
	Macros    map[string]*cpp.Macro
	CppErrors []string
}

// frontEnd is the per-Build front-end state shared by all phase-1 workers.
type frontEnd struct {
	b        *Builder
	hc       *cpp.HeaderCache
	cache    *analysiscache.Cache
	predefFP string
	// l1hold marks a cache with an active in-memory value tier: front-entry
	// reads then go through GetValue, which retains the decoded entry, so
	// decoding must not target the pooled token buffer (see parseOne).
	l1hold bool
	// retain makes parseOne copy each TU's expanded token stream into fresh
	// storage (parsed.tokens) so the artifact can be serialized after the
	// pooled buffers are released.
	retain bool
	// workers is the resolved phase 1/3 concurrency (Builder.Workers with
	// the GOMAXPROCS default applied).
	workers int

	// stats aggregates the build's arena counters (slab chunks in the parser
	// and CFG builder, pooled token buffers here); atomic, shared by all
	// workers.
	stats *arena.Stats
	// tokPool recycles the per-TU expanded-token buffers across files of the
	// build. A buffer is borrowed in parseOne and returned when that TU's
	// arena releases — see the lifetime argument on parseOne.
	tokPool arena.Pool[clex.Token]

	// reg receives the front-end counters; nil-safe, so the uninstrumented
	// path pays only a nil check per event. Counter totals are deterministic
	// at any worker count for a given cache state: which worker processes a
	// file varies, but the set of files (and which of them hit) does not.
	reg      *obs.Registry
	lexStats clex.Stats
}

// predefFingerprint canonicalizes the predefine table for cache keys.
func predefFingerprint(predefs map[string]string) string {
	keys := make([]string, 0, len(predefs))
	for k := range predefs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for _, k := range keys {
		sb.WriteString(k)
		sb.WriteByte('=')
		sb.WriteString(predefs[k])
		sb.WriteByte(0)
	}
	return sb.String()
}

// closureValid reports whether every include recorded when the entry was
// cached still resolves to byte-identical content (and every miss still
// misses). Preprocessing is deterministic, so identical inputs guarantee an
// identical result.
func (fe *frontEnd) closureValid(deps []cpp.IncludeDep) bool {
	for _, d := range deps {
		var content string
		ok := false
		if fe.b.Headers != nil {
			content, ok = fe.b.Headers.ReadFile(d.Path)
		}
		if d.Hash == "" {
			if ok {
				return false
			}
			continue
		}
		if !ok || fe.hc.HashOf(d.Path, content) != d.Hash {
			return false
		}
	}
	return true
}

// preprocess runs the preprocessor for one source, emitting expanded tokens
// into buf's backing array and recording the include closure when an on-disk
// cache will store the result.
func (fe *frontEnd) preprocess(src Source, buf []clex.Token) *cpp.Result {
	pp := cpp.New(fe.b.Headers).WithHeaderCache(fe.hc).WithOutBuffer(buf)
	if fe.reg != nil {
		pp.WithLexStats(&fe.lexStats)
	}
	if fe.cache != nil {
		pp.TrackIncludes()
	}
	for k, v := range fe.b.Predefines {
		pp.Define(k, v)
	}
	res := pp.Process(src.Path, src.Content)
	fe.reg.Add("frontend.tokens", int64(len(res.Tokens)))
	fe.reg.Add("frontend.macro_expansions", int64(res.Stats.Expansions))
	return res
}

// parseOne runs the per-file front end: preprocess (or reuse the cached
// preprocessed form) then parse. It touches no builder-mutable state, so
// shards may run concurrently.
//
// Each call owns one per-TU arena. The expanded-token stream (the largest
// per-TU scratch allocation) is borrowed from the build's pool and returned
// when the arena releases at the end of the call. That is safe because
// nothing retains the stream past the parse: the parser copies Token values
// into AST nodes, and macro bodies alias the lexed *line* storage (the TU's
// Lines or the shared header cache), never the expanded stream. AST nodes
// themselves come from slabs inside the parser and are retained by the
// returned file — slab chunks are never recycled, so the release only
// touches the pooled buffer.
func (fe *frontEnd) parseOne(src Source) parsed {
	a := arena.New(fe.stats)
	buf := fe.tokPool.Get(len(src.Content)/6 + 8)
	a.OnRelease(func() { fe.tokPool.Put(buf) })
	defer a.Release()

	if fe.cache == nil {
		res := fe.preprocess(src, buf)
		buf = res.Tokens
		file, perrs := cparse.ParseFileArena(src.Path, res.Tokens, fe.stats)
		errs := make([]error, 0, len(res.Errors)+len(perrs))
		errs = append(errs, res.Errors...)
		errs = append(errs, perrs...)
		return parsed{file: file, macros: res.Macros, errs: errs,
			cppN: len(res.Errors), tokens: fe.retainToks(res.Tokens)}
	}
	key := analysiscache.KeyOf("fe-v3", fe.predefFP, src.Path, src.Content)
	if fe.l1hold {
		// Value-tier path: the decoded entry lands in the cache's L1 and is
		// shared with every later build, so it must live in fresh storage —
		// never the pooled buffer — and be treated as immutable from here.
		// The pooled buf stays untouched and returns to the pool unused.
		if v, ok := fe.cache.GetValue(key, decodeFrontValue); ok {
			ent := v.(*frontEntry)
			if fe.closureValid(ent.Closure) {
				fe.reg.Add("frontend.cache.hit", 1)
				file, perrs := cparse.ParseFileArena(src.Path, ent.Tokens, fe.stats)
				errs := make([]error, 0, len(ent.CppErrors)+len(perrs))
				for _, s := range ent.CppErrors {
					errs = append(errs, errors.New(s))
				}
				errs = append(errs, perrs...)
				return parsed{file: file, macros: ent.Macros, errs: errs,
					cppN: len(ent.CppErrors), tokens: fe.retainToks(ent.Tokens)}
			}
		}
	} else {
		var ent frontEntry
		if fe.cache.Get(key, func(data []byte) error { return decodeFrontEntry(data, &ent, buf) }) &&
			fe.closureValid(ent.Closure) {
			fe.reg.Add("frontend.cache.hit", 1)
			buf = ent.Tokens
			file, perrs := cparse.ParseFileArena(src.Path, ent.Tokens, fe.stats)
			errs := make([]error, 0, len(ent.CppErrors)+len(perrs))
			for _, s := range ent.CppErrors {
				errs = append(errs, errors.New(s))
			}
			errs = append(errs, perrs...)
			if ent.Macros == nil {
				ent.Macros = map[string]*cpp.Macro{}
			}
			return parsed{file: file, macros: ent.Macros, errs: errs,
				cppN: len(ent.CppErrors), tokens: fe.retainToks(ent.Tokens)}
		}
	}
	fe.reg.Add("frontend.cache.miss", 1)
	res := fe.preprocess(src, buf)
	buf = res.Tokens
	cppErrs := make([]string, len(res.Errors))
	for i, e := range res.Errors {
		cppErrs[i] = e.Error()
	}
	// A Put failure (full disk, unwritable dir) only costs the next run a
	// recompute; the current result is served from memory either way.
	_ = fe.cache.Put(key, encodeFrontEntry(&frontEntry{
		Closure: res.Includes, Tokens: res.Tokens,
		Macros: res.Macros, CppErrors: cppErrs,
	}))
	file, perrs := cparse.ParseFileArena(src.Path, res.Tokens, fe.stats)
	errs := make([]error, 0, len(res.Errors)+len(perrs))
	errs = append(errs, res.Errors...)
	errs = append(errs, perrs...)
	return parsed{file: file, macros: res.Macros, errs: errs,
		cppN: len(res.Errors), tokens: fe.retainToks(res.Tokens)}
}

// retainToks copies a token stream into fresh storage when the build runs in
// retain mode, and returns nil otherwise. The copy is never backed by the
// pooled per-TU buffer (which is recycled when the TU's arena releases) nor
// by an L1-shared cache entry (which must stay immutable), so the caller may
// keep and serialize it freely. The result is non-nil even for an empty
// stream, marking the file as export-ready.
func (fe *frontEnd) retainToks(toks []clex.Token) []clex.Token {
	if !fe.retain {
		return nil
	}
	out := make([]clex.Token, len(toks))
	copy(out, toks)
	return out
}

// Build preprocesses, parses and analyzes the sources into a Unit. Inputs
// are merged in path order so results are deterministic regardless of the
// worker count. It is BuildContext with a background context.
func (b *Builder) Build(sources []Source) *Unit {
	return b.BuildContext(context.Background(), sources)
}

// parseTU runs the per-file front end under a "tu" span, feeding the per-TU
// wall time into the frontend.tu_ms histogram.
func (fe *frontEnd) parseTU(src Source) parsed {
	sp := fe.b.Obs.Child("tu").Str("path", src.Path)
	var t0 time.Time
	if sp != nil {
		t0 = time.Now()
	}
	p := fe.parseOne(src)
	if sp != nil {
		fe.reg.Observe("frontend.tu_ms", float64(time.Since(t0).Microseconds())/1e3)
	}
	sp.End()
	return p
}

// BuildContext is Build with cancellation. When ctx is cancelled mid-build,
// the work queues drain cleanly (no goroutine leaks) and the returned Unit
// holds whatever completed: unfed files are simply absent, unfed functions
// keep nil Graph/Events and are excluded by DefinedFunctions. Callers that
// care about partial results check ctx.Err() themselves.
//
// The build runs in two halves that are also available separately for
// distributed analysis (see artifact.go): buildArtifact (per-file front end
// + discovery observation, the shard-local pass) and assembleWith (exchange
// + merge + per-function analysis, the global pass). Running them back to
// back on one front-end state is exactly the old monolithic build, so
// single-process results are unchanged, and the distributed path shares
// every line of the phase logic.
func (b *Builder) BuildContext(ctx context.Context, sources []Source) *Unit {
	fe := b.newFrontEnd()
	return b.assembleWith(ctx, fe, b.buildArtifact(ctx, fe, sources), nil)
}

// newFrontEnd resolves the builder's knobs into the per-build front-end
// state shared by the phase workers.
func (b *Builder) newFrontEnd() *frontEnd {
	workers := b.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	hc := b.HeaderCache
	if hc == nil {
		hc = cpp.NewHeaderCache()
	}
	fe := &frontEnd{b: b, hc: hc, cache: b.Cache,
		predefFP: predefFingerprint(b.Predefines),
		reg:      b.Obs.Reg(), stats: &arena.Stats{}, workers: workers}
	fe.l1hold = b.Cache != nil && b.Cache.MemoryEnabled()
	fe.tokPool.Stats = fe.stats
	return fe
}

// buildArtifact is phase 1: preprocess + parse, sharded per file (each
// file's front end is independent), with the file's discovery observation
// extracted in the same worker pass. The returned artifact lists files in
// sorted path order; TUs skipped by cancellation are absent, exactly like
// the nil-file slots the monolithic loop skipped.
func (b *Builder) buildArtifact(ctx context.Context, fe *frontEnd, sources []Source) *ShardArtifact {
	sorted := append([]Source(nil), sources...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Path < sorted[j].Path })

	// The header cache may be shared across builds, so charge this build the
	// delta of its counters, not their absolute values.
	hc0 := fe.hc.Stats()
	results := make([]*ArtFile, len(sorted))
	work := func(i int) {
		p := fe.parseTU(sorted[i])
		if p.file == nil {
			return
		}
		results[i] = &ArtFile{
			Path: sorted[i].Path, Tokens: p.tokens, Macros: p.macros,
			Obs:  apidb.ObserveFile(sorted[i].Path, p.file, p.macros),
			file: p.file, errs: p.errs, cppN: p.cppN,
		}
	}
	if fe.workers > 1 && len(sorted) > 1 {
		var wg sync.WaitGroup
		jobs := make(chan int)
		for w := 0; w < fe.workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					work(i)
				}
			}()
		}
	feedFiles:
		for i := range sorted {
			select {
			case jobs <- i:
			case <-ctx.Done():
				break feedFiles
			}
		}
		close(jobs)
		wg.Wait()
	} else {
		for i := range sorted {
			if ctx.Err() != nil {
				break
			}
			work(i)
		}
	}
	if fe.reg != nil {
		hc1 := fe.hc.Stats()
		fe.reg.Add("headercache.hit", hc1.Hits-hc0.Hits)
		fe.reg.Add("headercache.miss", hc1.Misses-hc0.Misses)
		fe.reg.Add("lex.tokens", (hc1.TokensLexed-hc0.TokensLexed)+fe.lexStats.Tokens.Load())
	}
	art := &ShardArtifact{}
	for _, af := range results {
		if af != nil {
			art.Files = append(art.Files, af)
		}
	}
	return art
}

// assembleWith merges artifact files into a Unit — reparsing any that
// arrived over the wire as decoded token streams — applies discovery, and
// runs the per-function phase. A nil disc means the exchange has not
// happened yet: the artifact's own observations are applied to the DB here
// (the single-process path). A non-nil disc asserts the builder's DB already
// absorbed the exchange and carries the added-name lists for the unit.
func (b *Builder) assembleWith(ctx context.Context, fe *frontEnd, art *ShardArtifact, disc *apidb.Discovery) *Unit {
	db := b.DB
	if db == nil {
		db = apidb.New()
	}
	u := &Unit{
		DB:        db,
		Functions: map[string]*Function{},
		Structs:   map[string]*cast.StructDecl{},
		Globals:   map[string]*cast.VarDecl{},
		Macros:    map[string]*cpp.Macro{},
		Calls:     map[string][]CallSite{},
	}
	reg := fe.reg

	// Decoded artifacts carry token streams, not ASTs (same trade the
	// front-end cache makes: the parser is cheap, and reparsing identical
	// tokens yields an identical AST). Reparse them file-sharded.
	var toParse []*ArtFile
	for _, af := range art.Files {
		if af.file == nil {
			toParse = append(toParse, af)
		}
	}
	if len(toParse) > 0 {
		rsp := b.Obs.Child("reparse").Int("files", len(toParse))
		reparse := func(af *ArtFile) {
			file, perrs := cparse.ParseFileArena(af.Path, af.Tokens, fe.stats)
			af.file = file
			af.errs = append(af.errs, perrs...)
			// The AST replaces the token stream; dropping it here keeps
			// peak memory per-TU-streaming rather than whole-corpus (the
			// tokens of a large corpus dwarf its ASTs).
			af.Tokens = nil
		}
		if fe.workers > 1 && len(toParse) > 1 {
			var wg sync.WaitGroup
			jobs := make(chan *ArtFile)
			for w := 0; w < fe.workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for af := range jobs {
						reparse(af)
					}
				}()
			}
		feedReparse:
			for _, af := range toParse {
				select {
				case jobs <- af:
				case <-ctx.Done():
					break feedReparse
				}
			}
			close(jobs)
			wg.Wait()
		} else {
			for _, af := range toParse {
				if ctx.Err() != nil {
					break
				}
				reparse(af)
			}
		}
		rsp.End()
	}

	// Merge declarations, macros and errors in sorted path order — the exact
	// order the sequential loop used, so the unit is deterministic. A nil
	// file marks a TU whose reparse was skipped by cancellation.
	for _, af := range art.Files {
		if af.file == nil {
			continue
		}
		u.Errors = append(u.Errors, af.errs...)
		for name, m := range af.Macros {
			u.Macros[name] = m
		}
		u.Files = append(u.Files, af.file)
		for _, d := range af.file.Decls {
			switch x := d.(type) {
			case *cast.FuncDef:
				if x.Body != nil || u.Functions[x.Name] == nil {
					u.Functions[x.Name] = &Function{Def: x, File: af.Path}
				}
			case *cast.StructDecl:
				u.Structs[x.Name] = x
			case *cast.VarDecl:
				u.Globals[x.Name] = x
			}
		}
	}

	// Phase 2: lexer-parsing discovery (§6.1) — structures, wrapper APIs,
	// smartloops — before event extraction so events see the full DB. The
	// observations replay in sorted path order, reproducing exactly what a
	// whole-corpus scan of u.Files would have registered.
	dsp := b.Obs.Child("discovery")
	if disc == nil {
		d := db.Apply(art.Observations())
		disc = &d
	}
	u.DiscoveredStructs = disc.Structs
	u.DiscoveredAPIs = disc.APIs
	u.DiscoveredLoops = disc.Loops
	u.DiscoveredDeviations = disc.Deviations
	dsp.Int("structs", len(u.DiscoveredStructs)).
		Int("apis", len(u.DiscoveredAPIs)).
		Int("loops", len(u.DiscoveredLoops)).
		End()

	// Phase 3: CFGs, events, call graph.
	workers := fe.workers
	sem := b.Obs.Child("semantics")
	globals := make(map[string]bool, len(u.Globals))
	for name := range u.Globals {
		globals[name] = true
	}
	ext := &semantics.Extractor{DB: db, GlobalNames: globals}
	names := u.FunctionNames()
	analyzed := 0
	if workers > 1 && len(names) > 1 {
		var wg sync.WaitGroup
		jobs := make(chan *Function)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for fn := range jobs {
					fn.Graph = cfg.BuildArena(fn.Def, fe.stats)
					fn.Events = ext.Extract(fn.Graph)
				}
			}()
		}
	feedFuncs:
		for _, name := range names {
			fn := u.Functions[name]
			if fn.Def.Body == nil {
				continue
			}
			select {
			case jobs <- fn:
				analyzed++
			case <-ctx.Done():
				break feedFuncs
			}
		}
		close(jobs)
		wg.Wait()
	} else {
		for _, name := range names {
			fn := u.Functions[name]
			if fn.Def.Body == nil {
				continue
			}
			if ctx.Err() != nil {
				break
			}
			fn.Graph = cfg.BuildArena(fn.Def, fe.stats)
			fn.Events = ext.Extract(fn.Graph)
			analyzed++
		}
	}
	sem.Int("functions", analyzed).End()
	// The call graph is assembled sequentially in name order so Calls slices
	// are deterministic.
	cg := b.Obs.Child("callgraph")
	var callBuf []*cast.CallExpr
	for _, name := range names {
		fn := u.Functions[name]
		if fn.Def.Body == nil {
			continue
		}
		callBuf = cast.CallsInto(callBuf[:0], fn.Def.Body)
		for _, call := range callBuf {
			if cn := call.Callee(); cn != "" {
				u.Calls[cn] = append(u.Calls[cn], CallSite{Caller: fn, Call: call})
			}
		}
	}
	cg.End()
	if reg != nil {
		// Gauges, not counters: pool hit/miss (and therefore fresh-chunk)
		// counts depend on goroutine scheduling, and the difftest matrix
		// requires counters to be identical across worker counts.
		reg.SetGauge("arena.bytes", float64(fe.stats.Bytes.Load()))
		reg.SetGauge("arena.chunks", float64(fe.stats.Chunks.Load()))
		reg.SetGauge("arena.reused", float64(fe.stats.Reused.Load()))
		reg.SetGauge("arena.released", float64(fe.stats.Released.Load()))
	}
	return u
}

// FunctionNames returns defined function names in sorted order.
func (u *Unit) FunctionNames() []string {
	names := make([]string, 0, len(u.Functions))
	for n := range u.Functions {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefinedFunctions returns the functions that have bodies (and therefore
// graphs and event streams), in sorted name order — the unit of work for the
// facts layer and the checker engine. Prototypes are excluded.
func (u *Unit) DefinedFunctions() []*Function {
	var out []*Function
	for _, name := range u.FunctionNames() {
		if fn := u.Functions[name]; fn.Graph != nil {
			out = append(out, fn)
		}
	}
	return out
}

// CallbackBindings resolves driver-ops designated initializers against the
// DB's inter-paired callback table.
func (u *Unit) CallbackBindings() []CallbackBinding {
	var out []CallbackBinding
	var names []string
	for n := range u.Globals {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		vd := u.Globals[n]
		if len(vd.Inits) == 0 {
			continue
		}
		structName := vd.Type.StructName()
		for _, pair := range u.DB.Callbacks() {
			if pair.Struct != structName {
				continue
			}
			cb := CallbackBinding{Pair: pair, Var: vd, File: vd.Pos().File}
			for _, fi := range vd.Inits {
				id, ok := fi.Value.(*cast.Ident)
				if !ok {
					continue
				}
				switch fi.Field {
				case pair.Acquire:
					cb.Acquire = u.Functions[id.Name]
				case pair.Release:
					cb.Release = u.Functions[id.Name]
				}
			}
			if cb.Acquire != nil || cb.Release != nil {
				out = append(out, cb)
			}
		}
	}
	return out
}
