package cpg

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/bincodec"
	"repro/internal/clex"
	"repro/internal/cpp"
)

// sampleEntry exercises every field of the encoding: multi-token origin
// chains, macro variants (object-like, function-like with zero and several
// params, variadic, predefined), include closure entries with and without
// hashes, and preprocessor errors.
func sampleEntry() *frontEntry {
	pos := func(l, c int) clex.Pos { return clex.Pos{File: "drv/a.c", Line: l, Col: c} }
	return &frontEntry{
		Closure: []cpp.IncludeDep{
			{Path: "linux/kref.h", Hash: "abc123"},
			{Path: "missing.h", Hash: ""},
		},
		Tokens: []clex.Token{
			{Kind: clex.Ident, Text: "kref_get", Pos: pos(3, 1)},
			{Kind: clex.LParen, Text: "(", Pos: pos(3, 9)},
			{Kind: clex.Ident, Text: "obj", Pos: pos(3, 10), LeadingSpace: true,
				Origin: []string{"GET_OBJ", "WRAP"}},
			{Kind: clex.RParen, Text: ")", Pos: pos(3, 13), Origin: []string{"GET_OBJ", "WRAP"}},
			{Kind: clex.Semi, Text: ";", Pos: pos(3, 14)},
		},
		Macros: map[string]*cpp.Macro{
			"OBJLIKE": {Name: "OBJLIKE", DefinedAt: pos(1, 1),
				Body: []clex.Token{{Kind: clex.IntLit, Text: "1", Pos: pos(1, 17)}}},
			"ZEROP": {Name: "ZEROP", FuncLike: true, Params: []string{}, DefinedAt: pos(2, 1)},
			"WRAP": {Name: "WRAP", FuncLike: true, Params: []string{"x", "y"},
				DefinedAt: pos(2, 9),
				Body: []clex.Token{
					{Kind: clex.Ident, Text: "x", Pos: pos(2, 20)},
					{Kind: clex.Comma, Text: ",", Pos: pos(2, 21)},
					{Kind: clex.Ident, Text: "y", Pos: pos(2, 22), LeadingSpace: true},
				}},
			"VAR": {Name: "VAR", FuncLike: true, Variadic: true, Params: []string{"fmt"},
				DefinedAt: pos(4, 1)},
			"__KERNEL__": {Name: "__KERNEL__", Predefined: true},
		},
		CppErrors: []string{"a.c:9: unterminated #if"},
	}
}

func TestFrontEntryRoundTrip(t *testing.T) {
	want := sampleEntry()
	enc := encodeFrontEntry(want)
	var got frontEntry
	if err := decodeFrontEntry(enc, &got, nil); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(*want, got) {
		t.Fatalf("round-trip mismatch:\nwant %+v\ngot  %+v", *want, got)
	}
	// Re-encoding the decoded entry must reproduce identical bytes — the
	// table construction is a deterministic function of the entry.
	if enc2 := encodeFrontEntry(&got); !bytes.Equal(enc, enc2) {
		t.Fatal("re-encode of decoded entry is not byte-identical")
	}
}

func TestFrontEntryDecodeReusesBuffer(t *testing.T) {
	want := sampleEntry()
	enc := encodeFrontEntry(want)
	buf := make([]clex.Token, 0, 64)
	var got frontEntry
	if err := decodeFrontEntry(enc, &got, buf); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got.Tokens) == 0 || &got.Tokens[0] != &buf[:1][0] {
		t.Fatal("decode did not reuse the provided token buffer")
	}
}

func TestFrontEntryCorruptInputs(t *testing.T) {
	enc := encodeFrontEntry(sampleEntry())
	// Every truncation must fail cleanly.
	for cut := 0; cut < len(enc); cut++ {
		var ent frontEntry
		if err := decodeFrontEntry(enc[:cut], &ent, nil); !errors.Is(err, bincodec.ErrCorrupt) {
			t.Fatalf("cut=%d: err=%v, want ErrCorrupt", cut, err)
		}
	}
	// Trailing garbage is corrupt: a valid entry consumes its input exactly.
	var ent frontEntry
	long := append(bytes.Clone(enc), 0)
	if err := decodeFrontEntry(long, &ent, nil); !errors.Is(err, bincodec.ErrCorrupt) {
		t.Fatalf("trailing byte: err=%v, want ErrCorrupt", err)
	}
}

// FuzzCacheCodec pins the codec's two contracts: arbitrary input either
// decodes cleanly or fails with bincodec.ErrCorrupt (never a panic), and
// anything that decodes re-encodes to a canonical form that is a fixed point
// — enc(dec(enc(dec(x)))) == enc(dec(x)).
func FuzzCacheCodec(f *testing.F) {
	f.Add(encodeFrontEntry(sampleEntry()))
	f.Add(encodeFrontEntry(&frontEntry{}))
	f.Add([]byte{})
	f.Add([]byte{'F', 'E', 'C', 1})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		var ent frontEntry
		if err := decodeFrontEntry(data, &ent, nil); err != nil {
			if !errors.Is(err, bincodec.ErrCorrupt) {
				t.Fatalf("decode error %v is not ErrCorrupt", err)
			}
			return
		}
		enc := encodeFrontEntry(&ent)
		var ent2 frontEntry
		if err := decodeFrontEntry(enc, &ent2, nil); err != nil {
			t.Fatalf("canonical form failed to decode: %v", err)
		}
		if enc2 := encodeFrontEntry(&ent2); !bytes.Equal(enc, enc2) {
			t.Fatal("canonical form is not a re-encode fixed point")
		}
	})
}
