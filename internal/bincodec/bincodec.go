// Package bincodec provides the hand-rolled binary encoding primitives the
// analysis cache entries are built from: little-endian fixed-width fields
// with length-prefixed variable data, written by an append-only Writer and
// read by a sticky-error Reader.
//
// The codec replaces encoding/gob on the cache hot path. gob decodes
// through reflection and re-transmits type descriptors per stream; a warm
// run spends most of its time there. The fixed-offset encoding here decodes
// with straight-line field reads and no reflection, and the Reader's
// sticky-error design keeps per-field code branch-free: decode functions
// read every field unconditionally and check Err once at the end.
//
// Robustness contract (enforced by the FuzzCacheCodec target): any
// truncated, bit-flipped, or otherwise malformed input must surface as
// ErrCorrupt from Err/Done — never a panic, never a huge allocation. Count
// reads are bounded by the remaining input length before any allocation
// happens, so a flipped length byte cannot demand gigabytes.
package bincodec

import (
	"encoding/binary"
	"errors"
)

// ErrCorrupt is returned by Reader.Err/Done for any malformed input. The
// analysis cache maps it to a counted miss.
var ErrCorrupt = errors.New("bincodec: corrupt data")

// Writer accumulates an encoded entry. The zero value is ready to use.
type Writer struct {
	b []byte
}

// NewWriter returns a writer with capHint bytes of initial capacity.
func NewWriter(capHint int) *Writer {
	return &Writer{b: make([]byte, 0, capHint)}
}

// Bytes returns the encoded form (aliases the writer's buffer).
func (w *Writer) Bytes() []byte { return w.b }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.b) }

// U8 writes one byte.
func (w *Writer) U8(v uint8) { w.b = append(w.b, v) }

// Bool writes a bool as one byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

// U32 writes a fixed-width little-endian uint32.
func (w *Writer) U32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }

// U64 writes a fixed-width little-endian uint64.
func (w *Writer) U64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }

// Int writes an int as its two's-complement 64-bit image.
func (w *Writer) Int(v int) { w.U64(uint64(v)) }

// Raw appends pre-encoded bytes verbatim (no length prefix) — used to join
// independently built sections (e.g. a body encoded before its string table).
func (w *Writer) Raw(b []byte) { w.b = append(w.b, b...) }

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.U32(uint32(len(s)))
	w.b = append(w.b, s...)
}

// Strings writes a count-prefixed string slice.
func (w *Writer) Strings(ss []string) {
	w.U32(uint32(len(ss)))
	for _, s := range ss {
		w.String(s)
	}
}

// Reader decodes an entry produced by Writer. Any out-of-bounds read flips
// the sticky error; subsequent reads return zero values, so decoders can
// read every field linearly and check Err once.
type Reader struct {
	b   []byte
	off int
	bad bool

	// interned caches strings decoded via InternString so repeated payload
	// values (object keys, file paths, API names) share one backing string.
	interned map[string]string
}

// NewReader returns a reader over b (which is aliased, not copied; decoded
// strings are copied out so they never alias b).
func NewReader(b []byte) *Reader { return &Reader{b: b} }

func (r *Reader) fail() {
	r.bad = true
}

// Remaining returns the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.b) - r.off }

// Fail marks the input corrupt. Decoders call it when a structurally valid
// field carries a semantically impossible value (an enum out of range, a
// version tag from the future), folding domain validation into the same
// sticky-error path as framing errors.
func (r *Reader) Fail() { r.fail() }

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if r.bad || r.off+1 > len(r.b) {
		r.fail()
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

// Bool reads a bool; any byte other than 0 or 1 is corrupt.
func (r *Reader) Bool() bool {
	switch r.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		r.fail()
		return false
	}
}

// U32 reads a fixed-width little-endian uint32.
func (r *Reader) U32() uint32 {
	if r.bad || r.off+4 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

// U64 reads a fixed-width little-endian uint64.
func (r *Reader) U64() uint64 {
	if r.bad || r.off+8 > len(r.b) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

// Int reads an int written by Writer.Int.
func (r *Reader) Int() int { return int(r.U64()) }

// Count reads an element count and validates it against the remaining
// input: every encoded element occupies at least one byte, so a count
// exceeding Remaining is corrupt. This bounds slice preallocation on
// malformed input.
func (r *Reader) Count() int {
	n := int(r.U32())
	if n < 0 || n > r.Remaining() {
		r.fail()
		return 0
	}
	return n
}

// String reads a length-prefixed string.
func (r *Reader) String() string {
	n := r.Count()
	if r.bad || n == 0 {
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// InternString reads a length-prefixed string like String, but deduplicates
// the result against every string this reader previously interned. Decoders
// use it for fields whose values repeat heavily across records (event object
// keys, positions' file names); the returned string never aliases the input
// buffer.
func (r *Reader) InternString() string {
	n := r.Count()
	if r.bad || n == 0 {
		return ""
	}
	view := r.b[r.off : r.off+n]
	r.off += n
	if s, ok := r.interned[string(view)]; ok {
		return s
	}
	s := string(view)
	if r.interned == nil {
		r.interned = make(map[string]string, 16)
	}
	r.interned[s] = s
	return s
}

// Strings reads a count-prefixed string slice, returning nil for an empty
// one (matching the "empty and absent are indistinguishable" convention of
// the cached structures).
func (r *Reader) Strings() []string {
	n := r.Count()
	if r.bad || n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.String()
	}
	if r.bad {
		return nil
	}
	return out
}

// Err returns ErrCorrupt if any read failed.
func (r *Reader) Err() error {
	if r.bad {
		return ErrCorrupt
	}
	return nil
}

// Done returns ErrCorrupt if any read failed or input remains — a valid
// entry is consumed exactly.
func (r *Reader) Done() error {
	if r.bad || r.off != len(r.b) {
		return ErrCorrupt
	}
	return nil
}
