package bincodec

import (
	"bytes"
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter(0)
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U32(0xDEADBEEF)
	w.U64(1 << 60)
	w.Int(-42)
	w.String("hello")
	w.String("")
	w.Strings([]string{"a", "bb", ""})
	w.Strings(nil)

	r := NewReader(w.Bytes())
	if v := r.U8(); v != 7 {
		t.Errorf("U8=%d", v)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip")
	}
	if v := r.U32(); v != 0xDEADBEEF {
		t.Errorf("U32=%x", v)
	}
	if v := r.U64(); v != 1<<60 {
		t.Errorf("U64=%x", v)
	}
	if v := r.Int(); v != -42 {
		t.Errorf("Int=%d", v)
	}
	if v := r.String(); v != "hello" {
		t.Errorf("String=%q", v)
	}
	if v := r.String(); v != "" {
		t.Errorf("empty String=%q", v)
	}
	ss := r.Strings()
	if len(ss) != 3 || ss[0] != "a" || ss[1] != "bb" || ss[2] != "" {
		t.Errorf("Strings=%v", ss)
	}
	if r.Strings() != nil {
		t.Error("empty Strings must decode to nil")
	}
	if err := r.Done(); err != nil {
		t.Errorf("Done=%v", err)
	}
}

func TestTruncationIsCorrupt(t *testing.T) {
	w := NewWriter(0)
	w.String("payload")
	w.U64(99)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.String()
		_ = r.U64()
		if err := r.Done(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: err=%v, want ErrCorrupt", cut, err)
		}
	}
}

func TestTrailingBytesAreCorrupt(t *testing.T) {
	w := NewWriter(0)
	w.U8(1)
	r := NewReader(append(bytes.Clone(w.Bytes()), 0xFF))
	r.U8()
	if err := r.Done(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing byte: err=%v, want ErrCorrupt", err)
	}
	if err := r.Err(); err != nil {
		t.Errorf("Err must stay nil when only Done's exact-consumption check fails, got %v", err)
	}
}

// TestHugeCountDoesNotAllocate flips a length prefix to a huge value: the
// reader must report corruption without attempting the allocation.
func TestHugeCountDoesNotAllocate(t *testing.T) {
	w := NewWriter(0)
	w.U32(0xFFFFFFF0) // absurd count with no payload behind it
	r := NewReader(w.Bytes())
	if n := r.Count(); n != 0 {
		t.Errorf("Count=%d, want 0 on corrupt input", n)
	}
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Err=%v, want ErrCorrupt", err)
	}
}

func TestBadBoolIsCorrupt(t *testing.T) {
	r := NewReader([]byte{2})
	r.Bool()
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Err=%v, want ErrCorrupt", err)
	}
}

// TestStickyError: after one failure every later read is inert and Err
// still reports the first failure.
func TestStickyError(t *testing.T) {
	r := NewReader([]byte{1})
	r.U64() // fails
	if v := r.U8(); v != 0 {
		t.Errorf("read after failure returned %d", v)
	}
	if r.String() != "" || r.Strings() != nil {
		t.Error("reads after failure must return zero values")
	}
	if err := r.Err(); !errors.Is(err, ErrCorrupt) {
		t.Errorf("Err=%v, want ErrCorrupt", err)
	}
}
