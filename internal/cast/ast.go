// Package cast defines the abstract syntax tree for the kernel-C subset
// parsed by internal/cparse.
//
// Every node records its source position; statements additionally record the
// macro-origin chain of the token that opened them, so smartloop-injected
// code (anti-pattern P3) remains distinguishable after expansion.
package cast

import (
	"strings"

	"repro/internal/clex"
)

// Node is implemented by every AST node.
type Node interface {
	Pos() clex.Pos
}

// ---- types ----

// Type is a (deliberately shallow) C type: a base name, pointer depth, and
// flags. The checkers only need to recognize which struct a pointer refers
// to; full type checking is out of scope.
type Type struct {
	Base    string // "int", "void", "struct device_node", typedef name
	Stars   int    // pointer depth
	IsConst bool
	// FuncPtr is set for function-pointer declarators; Params holds the
	// parameter types (used for inter-paired callback matching, P6).
	FuncPtr bool
	Params  []Type
}

// String renders the type in C-ish syntax.
func (t Type) String() string {
	var b strings.Builder
	if t.IsConst {
		b.WriteString("const ")
	}
	b.WriteString(t.Base)
	for i := 0; i < t.Stars; i++ {
		b.WriteString("*")
	}
	if t.FuncPtr {
		b.WriteString("(*)()")
	}
	return b.String()
}

// IsPointer reports whether the type is a pointer.
func (t Type) IsPointer() bool { return t.Stars > 0 || t.FuncPtr }

// StructName returns "foo" for "struct foo" base types, else "".
func (t Type) StructName() string {
	if rest, ok := strings.CutPrefix(t.Base, "struct "); ok {
		return rest
	}
	return ""
}

// ---- declarations ----

// File is one parsed translation unit.
type File struct {
	Name  string
	Decls []Decl
}

// Pos returns a position naming the file (line 1).
func (f *File) Pos() clex.Pos { return clex.Pos{File: f.Name, Line: 1, Col: 1} }

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// FuncDef is a function definition (or bodyless prototype when Body is nil).
type FuncDef struct {
	Name    string
	Ret     Type
	Params  []Param
	Body    *CompoundStmt // nil for prototypes
	Static  bool
	Inline  bool
	NamePos clex.Pos
}

// Param is one function parameter.
type Param struct {
	Name string
	Type Type
	Pos  clex.Pos
}

func (d *FuncDef) Pos() clex.Pos { return d.NamePos }
func (d *FuncDef) declNode()     {}

// StructDecl declares a struct (or union) type.
type StructDecl struct {
	Name    string
	Union   bool
	Fields  []Field
	NamePos clex.Pos
}

// Field is one struct member.
type Field struct {
	Name string
	Type Type
	Pos  clex.Pos
}

func (d *StructDecl) Pos() clex.Pos { return d.NamePos }
func (d *StructDecl) declNode()     {}

// FieldType returns the type of the named field and whether it exists.
func (d *StructDecl) FieldType(name string) (Type, bool) {
	for _, f := range d.Fields {
		if f.Name == name {
			return f.Type, true
		}
	}
	return Type{}, false
}

// TypedefDecl records a typedef alias.
type TypedefDecl struct {
	Name    string
	Type    Type
	NamePos clex.Pos
}

func (d *TypedefDecl) Pos() clex.Pos { return d.NamePos }
func (d *TypedefDecl) declNode()     {}

// VarDecl is a global variable definition. Init is nil when absent;
// InitList holds designated initializers for struct initialization (needed
// to bind function-pointer callbacks, P6).
type VarDecl struct {
	Name    string
	Type    Type
	Init    Expr
	Inits   []FieldInit // designated initializer entries, if any
	Static  bool
	NamePos clex.Pos
}

// FieldInit is one `.field = value` designated-initializer entry.
type FieldInit struct {
	Field string
	Value Expr
	Pos   clex.Pos
}

func (d *VarDecl) Pos() clex.Pos { return d.NamePos }
func (d *VarDecl) declNode()     {}

// EnumDecl records an enum; only the constant names matter to us.
type EnumDecl struct {
	Name    string
	Consts  []string
	NamePos clex.Pos
}

func (d *EnumDecl) Pos() clex.Pos { return d.NamePos }
func (d *EnumDecl) declNode()     {}

// ---- statements ----

// Stmt is a statement node. Origin carries the macro-provenance chain of the
// statement's first token (empty for literal source).
type Stmt interface {
	Node
	stmtNode()
	// MacroOrigin returns the provenance chain (outermost first).
	MacroOrigin() []string
}

type stmtBase struct {
	StartPos clex.Pos
	Origin   []string
}

func (s *stmtBase) Pos() clex.Pos         { return s.StartPos }
func (s *stmtBase) MacroOrigin() []string { return s.Origin }
func (s *stmtBase) stmtNode()             {}

// CompoundStmt is a `{ ... }` block.
type CompoundStmt struct {
	stmtBase
	Stmts []Stmt
}

// DeclStmt is a local variable declaration, possibly with an initializer.
type DeclStmt struct {
	stmtBase
	Name string
	Type Type
	Init Expr // nil if absent
}

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	stmtBase
	X Expr
}

// IfStmt is if/else.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // nil if absent
}

// ForStmt covers C for loops. Init may be a DeclStmt or ExprStmt or nil.
type ForStmt struct {
	stmtBase
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// WhileStmt is a while loop.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// SwitchStmt is a switch; cases appear as CaseStmt labels in the body.
type SwitchStmt struct {
	stmtBase
	Tag  Expr
	Body Stmt
}

// CaseStmt is a `case X:` or `default:` label.
type CaseStmt struct {
	stmtBase
	Value     Expr // nil for default
	IsDefault bool
}

// ReturnStmt is a return, with optional value.
type ReturnStmt struct {
	stmtBase
	Value Expr // nil for bare return
}

// BreakStmt is a break.
type BreakStmt struct{ stmtBase }

// ContinueStmt is a continue.
type ContinueStmt struct{ stmtBase }

// GotoStmt is a goto.
type GotoStmt struct {
	stmtBase
	Label string
}

// LabelStmt is `name:` followed by a statement.
type LabelStmt struct {
	stmtBase
	Name string
	Stmt Stmt
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ stmtBase }

// CondStmt is a synthetic statement used by the CFG builder to place branch
// and loop conditions into basic-block statement order. It never appears in
// parser output.
type CondStmt struct {
	stmtBase
	X Expr
}

// NewCondStmt builds a condition pseudo-statement at pos with the given
// macro-origin chain.
func NewCondStmt(x Expr, pos clex.Pos, origin []string) *CondStmt {
	c := &CondStmt{X: x}
	c.StartPos = pos
	c.Origin = origin
	return c
}

// ---- expressions ----

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

type exprBase struct{ StartPos clex.Pos }

func (e *exprBase) Pos() clex.Pos { return e.StartPos }
func (e *exprBase) exprNode()     {}

// Ident is an identifier use. TokenOrigin carries the macro-provenance chain
// of the underlying token (outermost first); CallExpr copies it so smartloop
// injected calls stay recognizable.
type Ident struct {
	exprBase
	Name        string
	TokenOrigin []string
}

// Lit is an integer, float, char, or string literal.
type Lit struct {
	exprBase
	Kind clex.Kind // IntLit, FloatLit, CharLit, StringLit
	Text string
}

// CallExpr is a function call. Origin carries the macro provenance of the
// callee token (smartloop detection).
type CallExpr struct {
	exprBase
	Fun    Expr
	Args   []Expr
	Origin []string
}

// Callee returns the called function name when the callee is a simple
// identifier, else "".
func (c *CallExpr) Callee() string {
	if id, ok := c.Fun.(*Ident); ok {
		return id.Name
	}
	return ""
}

// FromMacro reports whether the call was injected by the named macro.
func (c *CallExpr) FromMacro(name string) bool {
	for _, m := range c.Origin {
		if m == name {
			return true
		}
	}
	return false
}

// BinaryExpr is a binary operation.
type BinaryExpr struct {
	exprBase
	Op   clex.Kind
	X, Y Expr
}

// UnaryExpr is a prefix or postfix unary operation.
type UnaryExpr struct {
	exprBase
	Op      clex.Kind
	X       Expr
	Postfix bool
}

// AssignExpr is assignment (possibly compound: +=, etc.).
type AssignExpr struct {
	exprBase
	Op  clex.Kind // Assign, PlusAssign, ...
	LHS Expr
	RHS Expr
}

// MemberExpr is x.name or x->name.
type MemberExpr struct {
	exprBase
	X     Expr
	Name  string
	Arrow bool
}

// IndexExpr is x[i].
type IndexExpr struct {
	exprBase
	X, Index Expr
}

// ParenExpr is a parenthesized expression.
type ParenExpr struct {
	exprBase
	X Expr
}

// CondExpr is the ternary operator.
type CondExpr struct {
	exprBase
	Cond, Then, Else Expr
}

// CastExpr is (type)x.
type CastExpr struct {
	exprBase
	Type Type
	X    Expr
}

// SizeofExpr is sizeof(x) or sizeof(type).
type SizeofExpr struct {
	exprBase
	X    Expr // nil when Type used
	Type Type
}

// CommaExpr is `a, b`.
type CommaExpr struct {
	exprBase
	X, Y Expr
}

// InitListExpr is `{ ... }` in expression position.
type InitListExpr struct {
	exprBase
	Elems  []Expr
	Fields []FieldInit // designated entries, if present
}
