package cast

import (
	"fmt"
	"strings"

	"repro/internal/clex"
)

// ExprString renders an expression back to C-like text; used in diagnostics
// and suggested patches. It is not a full pretty-printer: precedence is made
// explicit with the parentheses the source carried.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *Ident:
		return x.Name
	case *Lit:
		return x.Text
	case *CallExpr:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", ExprString(x.Fun), strings.Join(args, ", "))
	case *BinaryExpr:
		return fmt.Sprintf("%s %s %s", ExprString(x.X), opText(x.Op), ExprString(x.Y))
	case *UnaryExpr:
		if x.Postfix {
			return ExprString(x.X) + opText(x.Op)
		}
		return opText(x.Op) + ExprString(x.X)
	case *AssignExpr:
		return fmt.Sprintf("%s %s %s", ExprString(x.LHS), opText(x.Op), ExprString(x.RHS))
	case *MemberExpr:
		sep := "."
		if x.Arrow {
			sep = "->"
		}
		return ExprString(x.X) + sep + x.Name
	case *IndexExpr:
		return fmt.Sprintf("%s[%s]", ExprString(x.X), ExprString(x.Index))
	case *ParenExpr:
		return "(" + ExprString(x.X) + ")"
	case *CondExpr:
		return fmt.Sprintf("%s ? %s : %s", ExprString(x.Cond), ExprString(x.Then), ExprString(x.Else))
	case *CastExpr:
		return fmt.Sprintf("(%s)%s", x.Type, ExprString(x.X))
	case *SizeofExpr:
		if x.X != nil {
			return fmt.Sprintf("sizeof(%s)", ExprString(x.X))
		}
		return fmt.Sprintf("sizeof(%s)", x.Type)
	case *CommaExpr:
		return ExprString(x.X) + ", " + ExprString(x.Y)
	case *InitListExpr:
		var parts []string
		for _, fi := range x.Fields {
			parts = append(parts, fmt.Sprintf(".%s = %s", fi.Field, ExprString(fi.Value)))
		}
		for _, e := range x.Elems {
			parts = append(parts, ExprString(e))
		}
		return "{ " + strings.Join(parts, ", ") + " }"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

func opText(k clex.Kind) string { return k.String() }
