package cast

// Visit is called for every node during a Walk. Returning false prunes the
// subtree below the node.
type Visit func(Node) bool

// Walk performs a pre-order traversal of the tree rooted at n, calling v for
// each node. Nil children are skipped.
func Walk(n Node, v Visit) {
	if n == nil || isNilNode(n) {
		return
	}
	if !v(n) {
		return
	}
	switch x := n.(type) {
	case *File:
		for _, d := range x.Decls {
			Walk(d, v)
		}
	case *FuncDef:
		if x.Body != nil {
			Walk(x.Body, v)
		}
	case *VarDecl:
		Walk(x.Init, v)
		for _, fi := range x.Inits {
			Walk(fi.Value, v)
		}
	case *StructDecl, *TypedefDecl, *EnumDecl:
		// leaves

	case *CompoundStmt:
		for _, s := range x.Stmts {
			Walk(s, v)
		}
	case *DeclStmt:
		Walk(x.Init, v)
	case *ExprStmt:
		Walk(x.X, v)
	case *IfStmt:
		Walk(x.Cond, v)
		Walk(x.Then, v)
		Walk(x.Else, v)
	case *ForStmt:
		Walk(x.Init, v)
		Walk(x.Cond, v)
		Walk(x.Post, v)
		Walk(x.Body, v)
	case *WhileStmt:
		Walk(x.Cond, v)
		Walk(x.Body, v)
	case *DoWhileStmt:
		Walk(x.Body, v)
		Walk(x.Cond, v)
	case *SwitchStmt:
		Walk(x.Tag, v)
		Walk(x.Body, v)
	case *CaseStmt:
		Walk(x.Value, v)
	case *ReturnStmt:
		Walk(x.Value, v)
	case *CondStmt:
		Walk(x.X, v)
	case *LabelStmt:
		Walk(x.Stmt, v)
	case *BreakStmt, *ContinueStmt, *GotoStmt, *EmptyStmt:
		// leaves

	case *Ident, *Lit:
		// leaves
	case *CallExpr:
		Walk(x.Fun, v)
		for _, a := range x.Args {
			Walk(a, v)
		}
	case *BinaryExpr:
		Walk(x.X, v)
		Walk(x.Y, v)
	case *UnaryExpr:
		Walk(x.X, v)
	case *AssignExpr:
		Walk(x.LHS, v)
		Walk(x.RHS, v)
	case *MemberExpr:
		Walk(x.X, v)
	case *IndexExpr:
		Walk(x.X, v)
		Walk(x.Index, v)
	case *ParenExpr:
		Walk(x.X, v)
	case *CondExpr:
		Walk(x.Cond, v)
		Walk(x.Then, v)
		Walk(x.Else, v)
	case *CastExpr:
		Walk(x.X, v)
	case *SizeofExpr:
		Walk(x.X, v)
	case *CommaExpr:
		Walk(x.X, v)
		Walk(x.Y, v)
	case *InitListExpr:
		for _, e := range x.Elems {
			Walk(e, v)
		}
		for _, fi := range x.Fields {
			Walk(fi.Value, v)
		}
	}
}

// isNilNode guards against typed-nil interface values (e.g. Expr(nil) stored
// as (*Ident)(nil) never happens in our parser, but Stmt fields may hold a
// nil concrete pointer after error recovery).
func isNilNode(n Node) bool {
	switch x := n.(type) {
	case *CompoundStmt:
		return x == nil
	case *IfStmt:
		return x == nil
	case *ExprStmt:
		return x == nil
	}
	return false
}

// Calls returns all call expressions under n, in pre-order.
func Calls(n Node) []*CallExpr {
	return CallsInto(nil, n)
}

// CallsInto appends all call expressions under n to dst, in pre-order, and
// returns the extended slice. Callers that scan many functions pass the
// previous result re-sliced to zero length so one buffer amortizes across
// the whole sweep. It recurses directly rather than going through Walk: the
// dst-capturing closure Walk would need costs one heap allocation per call,
// and this runs once per function in the callgraph sweep. The child
// enumeration below must mirror Walk's.
func CallsInto(dst []*CallExpr, n Node) []*CallExpr {
	if n == nil || isNilNode(n) {
		return dst
	}
	switch x := n.(type) {
	case *File:
		for _, d := range x.Decls {
			dst = CallsInto(dst, d)
		}
	case *FuncDef:
		if x.Body != nil {
			dst = CallsInto(dst, x.Body)
		}
	case *VarDecl:
		dst = CallsInto(dst, x.Init)
		for _, fi := range x.Inits {
			dst = CallsInto(dst, fi.Value)
		}
	case *CompoundStmt:
		for _, s := range x.Stmts {
			dst = CallsInto(dst, s)
		}
	case *DeclStmt:
		dst = CallsInto(dst, x.Init)
	case *ExprStmt:
		dst = CallsInto(dst, x.X)
	case *IfStmt:
		dst = CallsInto(dst, x.Cond)
		dst = CallsInto(dst, x.Then)
		dst = CallsInto(dst, x.Else)
	case *ForStmt:
		dst = CallsInto(dst, x.Init)
		dst = CallsInto(dst, x.Cond)
		dst = CallsInto(dst, x.Post)
		dst = CallsInto(dst, x.Body)
	case *WhileStmt:
		dst = CallsInto(dst, x.Cond)
		dst = CallsInto(dst, x.Body)
	case *DoWhileStmt:
		dst = CallsInto(dst, x.Body)
		dst = CallsInto(dst, x.Cond)
	case *SwitchStmt:
		dst = CallsInto(dst, x.Tag)
		dst = CallsInto(dst, x.Body)
	case *CaseStmt:
		dst = CallsInto(dst, x.Value)
	case *ReturnStmt:
		dst = CallsInto(dst, x.Value)
	case *CondStmt:
		dst = CallsInto(dst, x.X)
	case *LabelStmt:
		dst = CallsInto(dst, x.Stmt)
	case *CallExpr:
		dst = append(dst, x)
		dst = CallsInto(dst, x.Fun)
		for _, a := range x.Args {
			dst = CallsInto(dst, a)
		}
	case *BinaryExpr:
		dst = CallsInto(dst, x.X)
		dst = CallsInto(dst, x.Y)
	case *UnaryExpr:
		dst = CallsInto(dst, x.X)
	case *AssignExpr:
		dst = CallsInto(dst, x.LHS)
		dst = CallsInto(dst, x.RHS)
	case *MemberExpr:
		dst = CallsInto(dst, x.X)
	case *IndexExpr:
		dst = CallsInto(dst, x.X)
		dst = CallsInto(dst, x.Index)
	case *ParenExpr:
		dst = CallsInto(dst, x.X)
	case *CondExpr:
		dst = CallsInto(dst, x.Cond)
		dst = CallsInto(dst, x.Then)
		dst = CallsInto(dst, x.Else)
	case *CastExpr:
		dst = CallsInto(dst, x.X)
	case *SizeofExpr:
		dst = CallsInto(dst, x.X)
	case *CommaExpr:
		dst = CallsInto(dst, x.X)
		dst = CallsInto(dst, x.Y)
	case *InitListExpr:
		for _, e := range x.Elems {
			dst = CallsInto(dst, e)
		}
		for _, fi := range x.Fields {
			dst = CallsInto(dst, fi.Value)
		}
	}
	return dst
}

// Idents returns all identifier uses under n, in pre-order.
func Idents(n Node) []*Ident {
	var out []*Ident
	Walk(n, func(m Node) bool {
		if id, ok := m.(*Ident); ok {
			out = append(out, id)
		}
		return true
	})
	return out
}

// BaseIdent returns the root identifier of an lvalue-ish chain:
// a->b.c[i] yields a; (*p).x yields p. Returns nil when the expression has
// no identifier root (e.g. a call result).
func BaseIdent(e Expr) *Ident {
	for {
		switch x := e.(type) {
		case *Ident:
			return x
		case *MemberExpr:
			e = x.X
		case *IndexExpr:
			e = x.X
		case *ParenExpr:
			e = x.X
		case *UnaryExpr:
			e = x.X
		case *CastExpr:
			e = x.X
		default:
			return nil
		}
	}
}
