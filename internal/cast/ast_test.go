package cast

import (
	"testing"

	"repro/internal/clex"
)

func TestTypeString(t *testing.T) {
	cases := []struct {
		ty   Type
		want string
	}{
		{Type{Base: "int"}, "int"},
		{Type{Base: "struct device_node", Stars: 1}, "struct device_node*"},
		{Type{Base: "char", Stars: 2, IsConst: true}, "const char**"},
		{Type{Base: "int", FuncPtr: true}, "int(*)()"},
	}
	for _, c := range cases {
		if got := c.ty.String(); got != c.want {
			t.Errorf("Type%+v.String() = %q, want %q", c.ty, got, c.want)
		}
	}
}

func TestTypeStructName(t *testing.T) {
	if got := (Type{Base: "struct kref", Stars: 1}).StructName(); got != "kref" {
		t.Errorf("StructName = %q", got)
	}
	if got := (Type{Base: "int"}).StructName(); got != "" {
		t.Errorf("StructName = %q", got)
	}
}

func TestTypeIsPointer(t *testing.T) {
	if (Type{Base: "int"}).IsPointer() {
		t.Error("int is not a pointer")
	}
	if !(Type{Base: "int", Stars: 1}).IsPointer() {
		t.Error("int* is a pointer")
	}
	if !(Type{Base: "int", FuncPtr: true}).IsPointer() {
		t.Error("func ptr is a pointer")
	}
}

func TestStructFieldType(t *testing.T) {
	sd := &StructDecl{Name: "s", Fields: []Field{
		{Name: "a", Type: Type{Base: "int"}},
		{Name: "b", Type: Type{Base: "struct kref"}},
	}}
	if ft, ok := sd.FieldType("b"); !ok || ft.Base != "struct kref" {
		t.Errorf("FieldType(b) = %v %v", ft, ok)
	}
	if _, ok := sd.FieldType("zz"); ok {
		t.Error("FieldType(zz) should be missing")
	}
}

func TestWalkPrune(t *testing.T) {
	inner := &CallExpr{Fun: &Ident{Name: "g"}}
	outer := &CallExpr{Fun: &Ident{Name: "f"}, Args: []Expr{inner}}
	var seen []string
	Walk(outer, func(n Node) bool {
		if c, ok := n.(*CallExpr); ok {
			seen = append(seen, c.Callee())
			return c.Callee() != "f" // prune below f
		}
		return true
	})
	if len(seen) != 1 || seen[0] != "f" {
		t.Errorf("seen = %v", seen)
	}
}

func TestCallExprHelpers(t *testing.T) {
	c := &CallExpr{Fun: &Ident{Name: "of_node_get"}, Origin: []string{"for_each_child_of_node"}}
	if c.Callee() != "of_node_get" {
		t.Errorf("Callee = %q", c.Callee())
	}
	if !c.FromMacro("for_each_child_of_node") || c.FromMacro("nope") {
		t.Error("FromMacro wrong")
	}
	indirect := &CallExpr{Fun: &MemberExpr{X: &Ident{Name: "ops"}, Name: "probe", Arrow: true}}
	if indirect.Callee() != "" {
		t.Errorf("indirect Callee = %q", indirect.Callee())
	}
}

func TestExprStringCoverage(t *testing.T) {
	e := &CondExpr{
		Cond: &BinaryExpr{Op: clex.Lt, X: &Ident{Name: "a"}, Y: &Lit{Kind: clex.IntLit, Text: "0"}},
		Then: &UnaryExpr{Op: clex.Minus, X: &Ident{Name: "a"}},
		Else: &Ident{Name: "a"},
	}
	if got := ExprString(e); got != "a < 0 ? -a : a" {
		t.Errorf("got %q", got)
	}
	il := &InitListExpr{Fields: []FieldInit{{Field: "probe", Value: &Ident{Name: "p"}}}}
	if got := ExprString(il); got != "{ .probe = p }" {
		t.Errorf("got %q", got)
	}
	if got := ExprString(&SizeofExpr{Type: Type{Base: "int"}}); got != "sizeof(int)" {
		t.Errorf("got %q", got)
	}
	if got := ExprString(nil); got != "" {
		t.Errorf("nil expr = %q", got)
	}
}

func TestBaseIdentNonIdentRoot(t *testing.T) {
	// Call result has no identifier root.
	e := &MemberExpr{X: &CallExpr{Fun: &Ident{Name: "get_dev"}}, Name: "x"}
	if id := BaseIdent(e); id != nil {
		t.Errorf("BaseIdent = %v, want nil", id)
	}
}

func TestWalkNilSafety(t *testing.T) {
	// IfStmt with nil Else and nil-typed children must not panic.
	s := &IfStmt{Cond: &Ident{Name: "c"}, Then: &ExprStmt{X: &Ident{Name: "x"}}}
	count := 0
	Walk(s, func(Node) bool { count++; return true })
	if count != 4 { // if, cond, exprstmt, x
		t.Errorf("count = %d", count)
	}
	Walk(nil, func(Node) bool { t.Fatal("visited nil"); return true })
}

// TestWalkAndPrintAllNodeKinds round-trips every statement and expression
// kind through the parser-free constructors, exercising Walk and ExprString
// over the full node taxonomy.
func TestWalkAndPrintAllNodeKinds(t *testing.T) {
	x := &Ident{Name: "x"}
	lit := &Lit{Kind: clex.IntLit, Text: "1"}
	exprs := []Expr{
		x, lit,
		&CallExpr{Fun: &Ident{Name: "f"}, Args: []Expr{x, lit}},
		&BinaryExpr{Op: clex.Plus, X: x, Y: lit},
		&UnaryExpr{Op: clex.Star, X: x},
		&UnaryExpr{Op: clex.Inc, X: x, Postfix: true},
		&AssignExpr{Op: clex.PlusAssign, LHS: x, RHS: lit},
		&MemberExpr{X: x, Name: "m", Arrow: true},
		&MemberExpr{X: x, Name: "m"},
		&IndexExpr{X: x, Index: lit},
		&ParenExpr{X: x},
		&CondExpr{Cond: x, Then: lit, Else: x},
		&CastExpr{Type: Type{Base: "int", Stars: 1}, X: x},
		&SizeofExpr{X: x},
		&SizeofExpr{Type: Type{Base: "long"}},
		&CommaExpr{X: x, Y: lit},
		&InitListExpr{Elems: []Expr{lit}, Fields: []FieldInit{{Field: "a", Value: x}}},
	}
	for _, e := range exprs {
		if s := ExprString(e); s == "" {
			t.Errorf("%T renders empty", e)
		}
		n := 0
		Walk(e, func(Node) bool { n++; return true })
		if n == 0 {
			t.Errorf("%T not walked", e)
		}
	}

	body := &CompoundStmt{Stmts: []Stmt{
		&DeclStmt{Name: "v", Type: Type{Base: "int"}, Init: lit},
		&ExprStmt{X: x},
		&IfStmt{Cond: x, Then: &ExprStmt{X: lit}, Else: &EmptyStmt{}},
		&ForStmt{Init: &ExprStmt{X: x}, Cond: x, Post: lit, Body: &EmptyStmt{}},
		&WhileStmt{Cond: x, Body: &EmptyStmt{}},
		&DoWhileStmt{Body: &EmptyStmt{}, Cond: x},
		&SwitchStmt{Tag: x, Body: &CompoundStmt{Stmts: []Stmt{
			&CaseStmt{Value: lit},
			&CaseStmt{IsDefault: true},
			&BreakStmt{},
		}}},
		&ReturnStmt{Value: x},
		&ContinueStmt{},
		&GotoStmt{Label: "out"},
		&LabelStmt{Name: "out", Stmt: &EmptyStmt{}},
		NewCondStmt(x, clex.Pos{Line: 1, Col: 1}, []string{"m"}),
	}}
	count := 0
	Walk(body, func(Node) bool { count++; return true })
	if count < 25 {
		t.Errorf("walked only %d nodes", count)
	}

	file := &File{Name: "f.c", Decls: []Decl{
		&FuncDef{Name: "fn", Ret: Type{Base: "void"}, Body: body},
		&StructDecl{Name: "s", Fields: []Field{{Name: "a", Type: Type{Base: "int"}}}},
		&TypedefDecl{Name: "t", Type: Type{Base: "int"}},
		&VarDecl{Name: "g", Type: Type{Base: "int"}, Init: lit,
			Inits: []FieldInit{{Field: "a", Value: x}}},
		&EnumDecl{Name: "e", Consts: []string{"A"}},
	}}
	if !file.Pos().IsValid() {
		t.Error("file pos invalid")
	}
	fileNodes := 0
	Walk(file, func(Node) bool { fileNodes++; return true })
	if fileNodes < 30 {
		t.Errorf("file walked %d nodes", fileNodes)
	}
	// Positions and origins on statements.
	cs := NewCondStmt(x, clex.Pos{Line: 7, Col: 3}, []string{"mac"})
	if cs.Pos().Line != 7 || len(cs.MacroOrigin()) != 1 {
		t.Errorf("cond stmt base: %v %v", cs.Pos(), cs.MacroOrigin())
	}
	// Calls/Idents helpers over the file.
	if len(Calls(file)) == 0 {
		// body has one call? no CallExpr in body — add via expression check
		_ = Idents(file)
	}
}
