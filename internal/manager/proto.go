// Package manager runs the partition-then-exchange pipeline across worker
// processes, syz-manager style: the manager owns the corpus and the work
// queue, workers are stateless LocalPass executors fed over pipes, and a
// dead worker's in-flight shard is simply re-queued — any shard may run on
// any worker (or inline in the manager) because shard-local passes are
// DB-independent by construction (see core.LocalPass).
package manager

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"repro/internal/bincodec"
	"repro/internal/cpg"
)

// The wire protocol is deliberately minimal: length-prefixed frames over the
// worker's stdin/stdout, each framing one bincodec-encoded message. The
// conversation is lockstep per worker — init once, then shard/artifact
// pairs until stdin closes. There is no error message kind: a worker that
// cannot produce an artifact exits nonzero, and the manager treats any
// read/decode failure as a worker death (re-queue and move on), so protocol
// errors and crashes share one recovery path.
const (
	kInit     = 1 // manager→worker: workers knob + shared header map
	kShard    = 2 // manager→worker: shard id + sources
	kArtifact = 3 // worker→manager: shard id + encoded ShardArtifact
)

// maxFrame bounds a frame read so a corrupt length prefix cannot trigger a
// giant allocation. Artifacts carry whole token streams, so the bound is
// generous.
const maxFrame = 1 << 30

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame returns io.EOF only on a clean boundary (no partial header);
// a frame truncated mid-read surfaces as io.ErrUnexpectedEOF.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("manager: frame length %d exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

type initMsg struct {
	Workers int
	// CacheDir/CacheMem, when CacheDir is non-empty, tell the worker to
	// open its own handle on the shared tiered cache so per-file front-end
	// entries are reused across shards and runs. Every worker (and the
	// manager, for the inline drain) opens the same directory; the cache's
	// pack-file layout is multi-process safe.
	CacheDir string
	CacheMem int
	Headers  map[string]string
}

func encodeInit(m initMsg) []byte {
	w := bincodec.NewWriter(64)
	w.U8(kInit)
	w.U32(uint32(m.Workers))
	w.String(m.CacheDir)
	w.U32(uint32(m.CacheMem))
	keys := make([]string, 0, len(m.Headers))
	for k := range m.Headers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w.U32(uint32(len(keys)))
	for _, k := range keys {
		w.String(k)
		w.String(m.Headers[k])
	}
	return w.Bytes()
}

func decodeInit(b []byte) (initMsg, error) {
	r := bincodec.NewReader(b)
	if r.U8() != kInit {
		r.Fail()
		return initMsg{}, r.Err()
	}
	m := initMsg{Workers: int(r.U32())}
	m.CacheDir = r.String()
	m.CacheMem = int(r.U32())
	n := r.Count()
	if n > 0 {
		m.Headers = make(map[string]string, n)
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.String()
		m.Headers[k] = r.String()
	}
	if err := r.Done(); err != nil {
		return initMsg{}, err
	}
	return m, nil
}

type shardMsg struct {
	ID      int
	Sources []cpg.Source
}

func encodeShard(m shardMsg) []byte {
	sz := 16
	for _, s := range m.Sources {
		sz += len(s.Path) + len(s.Content) + 16
	}
	w := bincodec.NewWriter(sz)
	w.U8(kShard)
	w.U32(uint32(m.ID))
	w.U32(uint32(len(m.Sources)))
	for _, s := range m.Sources {
		w.String(s.Path)
		w.String(s.Content)
	}
	return w.Bytes()
}

func decodeShard(b []byte) (shardMsg, error) {
	r := bincodec.NewReader(b)
	if r.U8() != kShard {
		r.Fail()
		return shardMsg{}, r.Err()
	}
	m := shardMsg{ID: int(r.U32())}
	n := r.Count()
	for i := 0; i < n && r.Err() == nil; i++ {
		m.Sources = append(m.Sources, cpg.Source{Path: r.String(), Content: r.String()})
	}
	if err := r.Done(); err != nil {
		return shardMsg{}, err
	}
	return m, nil
}

type artifactMsg struct {
	ID int
	// FEHits/FEMisses report the worker's front-end cache counters for this
	// shard, so the manager can aggregate cross-process cache effectiveness
	// (surfaced as manager.frontend.hit / manager.frontend.miss).
	FEHits   uint64
	FEMisses uint64
	Payload  []byte // EncodeShardArtifact bytes, decoded lazily by the manager
}

// artifactHdrLen is the fixed prefix before the artifact payload: kind byte,
// shard id, and the two front-end counters.
const artifactHdrLen = 1 + 4 + 8 + 8

func encodeArtifact(m artifactMsg) []byte {
	w := bincodec.NewWriter(artifactHdrLen + len(m.Payload))
	w.U8(kArtifact)
	w.U32(uint32(m.ID))
	w.U64(m.FEHits)
	w.U64(m.FEMisses)
	w.Raw(m.Payload)
	return w.Bytes()
}

func decodeArtifact(b []byte) (artifactMsg, error) {
	r := bincodec.NewReader(b)
	if r.U8() != kArtifact {
		r.Fail()
		return artifactMsg{}, r.Err()
	}
	m := artifactMsg{ID: int(r.U32())}
	m.FEHits = r.U64()
	m.FEMisses = r.U64()
	if r.Err() != nil {
		return artifactMsg{}, r.Err()
	}
	m.Payload = b[artifactHdrLen:]
	return m, nil
}
