package manager

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/cpg"
)

// WorkerOpts configures a worker loop.
type WorkerOpts struct {
	// ExitAfterShards, when positive, makes the worker call os.Exit(3)
	// immediately after receiving its Nth shard — before replying — so its
	// in-flight shard is lost mid-work. It is the crash-injection hook the
	// recovery tests (and verify gate) use to exercise the manager's
	// re-queue path with a real process death.
	ExitAfterShards int
}

// Worker runs the worker half of the pipe protocol until r reaches EOF: read
// the init frame, then serve shard→artifact exchanges in lockstep. Workers
// hold no state between shards beyond the shared header map and the
// front-end's internal caches, so the manager may hand any shard to any
// worker in any order.
func Worker(r io.Reader, w io.Writer, opts WorkerOpts) error {
	first, err := readFrame(r)
	if err != nil {
		return fmt.Errorf("manager worker: reading init: %w", err)
	}
	init, err := decodeInit(first)
	if err != nil {
		return fmt.Errorf("manager worker: decoding init: %w", err)
	}
	req := core.Request{
		Headers: init.Headers,
		Options: core.Options{Workers: init.Workers},
	}

	received := 0
	for {
		frame, err := readFrame(r)
		if err == io.EOF {
			return nil // clean shutdown: manager closed our stdin
		}
		if err != nil {
			return fmt.Errorf("manager worker: reading shard: %w", err)
		}
		sh, err := decodeShard(frame)
		if err != nil {
			return fmt.Errorf("manager worker: decoding shard: %w", err)
		}
		received++
		if opts.ExitAfterShards > 0 && received == opts.ExitAfterShards {
			os.Exit(3)
		}
		art, err := core.LocalPass(context.Background(), req, sh.Sources)
		if err != nil {
			return fmt.Errorf("manager worker: shard %d: %w", sh.ID, err)
		}
		reply := encodeArtifact(artifactMsg{ID: sh.ID, Payload: cpg.EncodeShardArtifact(art)})
		if err := writeFrame(w, reply); err != nil {
			return fmt.Errorf("manager worker: writing artifact %d: %w", sh.ID, err)
		}
	}
}
