package manager

import (
	"context"
	"fmt"
	"io"
	"os"

	"repro/internal/analysiscache"
	"repro/internal/core"
	"repro/internal/cpg"
	"repro/internal/obs"
)

// WorkerOpts configures a worker loop.
type WorkerOpts struct {
	// ExitAfterShards, when positive, makes the worker call os.Exit(3)
	// immediately after receiving its Nth shard — before replying — so its
	// in-flight shard is lost mid-work. It is the crash-injection hook the
	// recovery tests (and verify gate) use to exercise the manager's
	// re-queue path with a real process death.
	ExitAfterShards int
}

// Worker runs the worker half of the pipe protocol until r reaches EOF: read
// the init frame, then serve shard→artifact exchanges in lockstep. Workers
// hold no state between shards beyond the shared header map, the front-end's
// internal caches, and (when the init frame names a cache directory) a handle
// on the shared tiered cache — so the manager may hand any shard to any
// worker in any order, and per-file front-end entries computed by one run's
// workers are reused by the next run's.
func Worker(r io.Reader, w io.Writer, opts WorkerOpts) error {
	first, err := readFrame(r)
	if err != nil {
		return fmt.Errorf("manager worker: reading init: %w", err)
	}
	init, err := decodeInit(first)
	if err != nil {
		return fmt.Errorf("manager worker: decoding init: %w", err)
	}
	var cache *analysiscache.Cache
	if init.CacheDir != "" {
		// A worker that cannot open the cache degrades to computing — the
		// shard result is identical either way, so cache trouble must not
		// kill the run.
		if c, cerr := analysiscache.Open(init.CacheDir, analysiscache.WithMemory(int64(init.CacheMem)<<20)); cerr == nil {
			cache = c
		} else {
			fmt.Fprintf(os.Stderr, "manager worker: cache disabled: %v\n", cerr)
		}
	}
	defer func() {
		if cache != nil {
			if cerr := cache.Close(); cerr != nil {
				fmt.Fprintf(os.Stderr, "manager worker: cache flush: %v\n", cerr)
			}
		}
	}()

	received := 0
	for {
		frame, err := readFrame(r)
		if err == io.EOF {
			return nil // clean shutdown: manager closed our stdin
		}
		if err != nil {
			return fmt.Errorf("manager worker: reading shard: %w", err)
		}
		sh, err := decodeShard(frame)
		if err != nil {
			return fmt.Errorf("manager worker: decoding shard: %w", err)
		}
		received++
		if opts.ExitAfterShards > 0 && received == opts.ExitAfterShards {
			os.Exit(3)
		}
		// A fresh trace per shard isolates the front-end counters this
		// shard contributes, so the reply can carry exact hit/miss deltas.
		tr := obs.New("manager-worker")
		req := core.Request{
			Headers: init.Headers,
			Options: core.Options{Workers: init.Workers, Cache: cache},
			Trace:   tr,
		}
		art, err := core.LocalPass(context.Background(), req, sh.Sources)
		if err != nil {
			return fmt.Errorf("manager worker: shard %d: %w", sh.ID, err)
		}
		tr.Done()
		counters := tr.Reg().Snapshot().Counters
		reply := encodeArtifact(artifactMsg{
			ID:       sh.ID,
			FEHits:   uint64(counters["frontend.cache.hit"]),
			FEMisses: uint64(counters["frontend.cache.miss"]),
			Payload:  cpg.EncodeShardArtifact(art),
		})
		if err := writeFrame(w, reply); err != nil {
			return fmt.Errorf("manager worker: writing artifact %d: %w", sh.ID, err)
		}
	}
}
