package manager

import (
	"bytes"
	"io"
	"reflect"
	"testing"

	"repro/internal/cpg"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{{1, 2, 3}, {}, bytes.Repeat([]byte{0xAB}, 1000)}
	for _, p := range payloads {
		if err := writeFrame(&buf, p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		got, err := readFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("frame %d: %v != %v", i, got, p)
		}
	}
	if _, err := readFrame(&buf); err != io.EOF {
		t.Errorf("clean boundary: err = %v, want io.EOF", err)
	}

	// A frame truncated mid-body must not read as EOF.
	buf.Reset()
	if err := writeFrame(&buf, []byte{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf.Bytes()[:buf.Len()-2])
	if _, err := readFrame(trunc); err != io.ErrUnexpectedEOF {
		t.Errorf("truncated body: err = %v, want ErrUnexpectedEOF", err)
	}

	// A hostile length prefix must be rejected, not allocated.
	hostile := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := readFrame(bytes.NewReader(hostile)); err == nil || err == io.EOF {
		t.Errorf("hostile length: err = %v, want limit error", err)
	}
}

func TestInitMsgRoundTrip(t *testing.T) {
	for _, m := range []initMsg{
		{Workers: 4, Headers: map[string]string{"a.h": "x", "b.h": "y"}},
		{Workers: 0},
	} {
		got, err := decodeInit(encodeInit(m))
		if err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("round trip %+v -> %+v", m, got)
		}
	}
	if _, err := decodeInit([]byte{kShard}); err == nil {
		t.Error("wrong kind accepted as init")
	}
	if _, err := decodeInit(nil); err == nil {
		t.Error("empty payload accepted as init")
	}
}

func TestShardMsgRoundTrip(t *testing.T) {
	m := shardMsg{ID: 7, Sources: []cpg.Source{
		{Path: "a.c", Content: "int x;"},
		{Path: "b.c", Content: ""},
	}}
	got, err := decodeShard(encodeShard(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip %+v -> %+v", m, got)
	}
	enc := encodeShard(m)
	for cut := 0; cut < len(enc); cut++ {
		if _, err := decodeShard(enc[:cut]); err == nil {
			t.Fatalf("cut=%d decoded cleanly", cut)
		}
	}
}

func TestArtifactMsgRoundTrip(t *testing.T) {
	m := artifactMsg{ID: 3, Payload: []byte{9, 8, 7}}
	got, err := decodeArtifact(encodeArtifact(m))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Errorf("round trip %+v -> %+v", m, got)
	}
	if _, err := decodeArtifact([]byte{kArtifact, 1}); err == nil {
		t.Error("short artifact frame accepted")
	}
	if _, err := decodeArtifact([]byte{kInit, 0, 0, 0, 0}); err == nil {
		t.Error("wrong kind accepted as artifact")
	}
}
