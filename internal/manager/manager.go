package manager

import (
	"context"
	"fmt"
	"os"
	"os/exec"
	"sync"

	"repro/internal/analysiscache"
	"repro/internal/apidb"
	"repro/internal/core"
	"repro/internal/cpg"
	"repro/internal/obs"
)

// Config configures a multi-process run.
type Config struct {
	// Procs is the number of worker processes to drive (default 1). The
	// corpus is partitioned into Procs*ChunksPerProc shards so a slow or
	// dead worker only strands a fraction of the work.
	Procs int
	// WorkerCmd is the argv used to spawn each worker; the spawned process
	// must speak the pipe protocol on stdin/stdout (e.g. `refcheck -worker`,
	// or a test binary's argv shim). Required unless WorkerCmdFor is set.
	WorkerCmd []string
	// WorkerCmdFor, when non-nil, overrides WorkerCmd per worker slot —
	// the crash-recovery tests use it to give one slot a dying worker.
	WorkerCmdFor func(slot int) []string
	// Workers is the per-process build parallelism sent in the init frame
	// (0 means GOMAXPROCS in the worker).
	Workers int
	// CacheDir/CacheMem, when CacheDir is non-empty, are forwarded to every
	// worker's init frame: each worker opens its own handle on the shared
	// tiered cache and serves per-file front-end entries from it (hits are
	// aggregated as manager.frontend.hit / manager.frontend.miss). The
	// global pass still always computes — unit- and facts-level caching
	// remain single-process concerns.
	CacheDir string
	CacheMem int
	// Options configures the manager-side global pass (checkers, confirm,
	// workers). Options.DB is overwritten with the exchange DB; Cache and
	// Admit are ignored on the global pass (use CacheDir for the workers'
	// front-end cache).
	Options core.Options
	// Trace receives manager spans and counters (manager.worker.deaths,
	// manager.shard.requeues, manager.shard.inline, manager.frontend.hit,
	// manager.frontend.miss); nil disables.
	Trace *obs.Trace
	// ChunksPerProc is the work-queue granularity multiplier (default 4).
	ChunksPerProc int
}

// queue is the manager's shard work queue. Shards are handed out in index
// order; a shard lost to a worker death is pushed back and handed to
// whichever slot asks next. Remaining() after all slots exit is whatever no
// worker completed — the manager drains those inline.
type queue struct {
	mu      sync.Mutex
	pending []int
}

func (q *queue) next() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.pending) == 0 {
		return 0, false
	}
	id := q.pending[0]
	q.pending = q.pending[1:]
	return id, true
}

func (q *queue) requeue(id int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.pending = append(q.pending, id)
}

func (q *queue) remaining() []int {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := append([]int(nil), q.pending...)
	q.pending = nil
	return out
}

// Run drives sources through the partition-then-exchange pipeline across
// cfg.Procs worker processes and returns the same Run that core.Analyze
// would produce for the whole corpus — byte-identical reports and summary at
// any process count, with any workers dying mid-shard, because shard
// artifacts are merged back into global order before a single exchange
// (see core.Exchange).
//
// Fault model: a worker that dies (or writes garbage) forfeits its slot —
// its in-flight shard is re-queued for the surviving workers, and the slot
// is not respawned. If every worker dies, the manager itself drains the
// queue inline via core.LocalPass, so Run degrades to a single-process
// analysis rather than failing.
func Run(ctx context.Context, cfg Config, sources []cpg.Source, headers map[string]string) (*core.Run, error) {
	procs := cfg.Procs
	if procs < 1 {
		procs = 1
	}
	chunks := cfg.ChunksPerProc
	if chunks < 1 {
		chunks = 4
	}
	cmdFor := cfg.WorkerCmdFor
	if cmdFor == nil {
		if len(cfg.WorkerCmd) == 0 {
			return nil, fmt.Errorf("manager: no worker command configured")
		}
		cmdFor = func(int) []string { return cfg.WorkerCmd }
	}

	shards := core.Partition(sources, procs*chunks)
	reg := cfg.Trace.Reg()
	sp := cfg.Trace.Root().Child("phase:manager")
	sp.Int("procs", procs)
	sp.Int("shards", len(shards))

	q := &queue{pending: make([]int, len(shards))}
	for i := range shards {
		q.pending[i] = i
	}
	arts := make([]*cpg.ShardArtifact, len(shards))
	var artsMu sync.Mutex
	initFrame := encodeInit(initMsg{
		Workers: cfg.Workers, CacheDir: cfg.CacheDir, CacheMem: cfg.CacheMem,
		Headers: headers,
	})

	var wg sync.WaitGroup
	for slot := 0; slot < procs; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			runSlot(ctx, cmdFor(slot), initFrame, cfg.Workers, q, shards, arts, &artsMu, reg)
		}(slot)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		sp.End()
		return nil, err
	}

	// Worker-of-last-resort: anything still queued (all assigned workers
	// died, or there were more shards than worker appetite) runs inline,
	// against the same shared cache directory the workers use.
	if rest := q.remaining(); len(rest) > 0 {
		inlineOpt := core.Options{Workers: cfg.Workers}
		if cfg.CacheDir != "" {
			if c, err := analysiscache.Open(cfg.CacheDir, analysiscache.WithMemory(int64(cfg.CacheMem)<<20)); err == nil {
				inlineOpt.Cache = c
				defer c.Close()
			}
		}
		req := core.Request{Sources: sources, Headers: headers,
			Options: inlineOpt, Trace: cfg.Trace}
		for _, id := range rest {
			art, err := core.LocalPass(ctx, req, shards[id])
			if err != nil {
				sp.End()
				return nil, err
			}
			art.Hydrate(cfg.Workers)
			arts[id] = art
			reg.Add("manager.shard.inline", 1)
		}
	}
	sp.End()

	db := apidb.New()
	merged, disc := Exchange(db, arts)
	opt := cfg.Options
	opt.DB = db
	opt.Cache = nil
	opt.Admit = nil
	greq := core.Request{Sources: sources, Headers: headers, Options: opt, Trace: cfg.Trace}
	return core.GlobalPass(ctx, greq, merged, disc)
}

// Exchange merges the per-shard artifacts into db (thin re-export so callers
// of the manager package see the whole pipeline in one place).
func Exchange(db *apidb.DB, arts []*cpg.ShardArtifact) (*cpg.ShardArtifact, apidb.Discovery) {
	return core.Exchange(db, arts)
}

// runSlot owns one worker process: spawn, init, then lockstep shard serving
// until the queue drains or the worker dies. On death the in-flight shard is
// re-queued and the slot exits — surviving slots (or the inline drain)
// absorb the remaining work.
func runSlot(ctx context.Context, argv []string, initFrame []byte, workers int, q *queue,
	shards [][]cpg.Source, arts []*cpg.ShardArtifact, artsMu *sync.Mutex, reg *obs.Registry) {

	cmd := exec.CommandContext(ctx, argv[0], argv[1:]...)
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return
	}
	if err := cmd.Start(); err != nil {
		// Spawn failure is not a death — the work just stays queued for
		// the inline drain.
		return
	}
	died := func(inflight int) {
		reg.Add("manager.worker.deaths", 1)
		if inflight >= 0 {
			q.requeue(inflight)
			reg.Add("manager.shard.requeues", 1)
		}
		stdin.Close()
		cmd.Process.Kill()
		cmd.Wait()
	}
	if err := writeFrame(stdin, initFrame); err != nil {
		died(-1)
		return
	}
	for {
		id, ok := q.next()
		if !ok || ctx.Err() != nil {
			stdin.Close()
			cmd.Wait()
			return
		}
		if err := writeFrame(stdin, encodeShard(shardMsg{ID: id, Sources: shards[id]})); err != nil {
			died(id)
			return
		}
		frame, err := readFrame(stdout)
		if err != nil {
			died(id)
			return
		}
		msg, err := decodeArtifact(frame)
		if err != nil || msg.ID != id {
			died(id)
			return
		}
		art, err := cpg.DecodeShardArtifact(msg.Payload)
		if err != nil {
			died(id)
			return
		}
		reg.Add("manager.frontend.hit", int64(msg.FEHits))
		reg.Add("manager.frontend.miss", int64(msg.FEMisses))
		// Parse the shard's files as soon as the artifact lands and drop
		// their token streams: memory then scales with AST size per shard,
		// not with the whole corpus's retained token streams.
		art.Hydrate(workers)
		artsMu.Lock()
		arts[id] = art
		artsMu.Unlock()
	}
}
