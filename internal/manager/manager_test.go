package manager

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cpg"
	"repro/internal/obs"
	"repro/internal/render"
)

// TestMain doubles as the worker executable: when the manager re-executes
// the test binary with the "repro-worker" argv, the shim runs the worker
// loop instead of the test suite — no separately built binary needed. The
// "die=1" argument arms the crash-injection hook for the recovery tests.
func TestMain(m *testing.M) {
	if len(os.Args) > 1 && os.Args[1] == "repro-worker" {
		opts := WorkerOpts{}
		for _, a := range os.Args[2:] {
			if a == "die=1" {
				opts.ExitAfterShards = 1
			}
		}
		if err := Worker(os.Stdin, os.Stdout, opts); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func workerArgv(extra ...string) []string {
	return append([]string{os.Args[0], "repro-worker"}, extra...)
}

// managerCorpus is a compact synthetic kernel exercising cross-file
// discovery (loop macros, wrappers, callback pairs) plus baits — the shapes
// a partitioned run could plausibly get wrong.
func managerCorpus() ([]cpg.Source, map[string]string) {
	c := corpus.Generate(corpus.Spec{
		Seed:           23,
		CleanPerModule: 2,
		FPBaits:        2,
		Plan: []corpus.ModulePlan{
			{Subsystem: "arch", Module: "arm",
				Patterns:   map[corpus.PatternID]int{"P4": 2, "P6": 1, "P9": 1},
				TopAPIs:    []string{"of_find_compatible_node", "of_find_matching_node"},
				MissingGet: 1},
			{Subsystem: "drivers", Module: "gpu",
				Patterns: map[corpus.PatternID]int{"P3": 1, "P5": 1, "P8": 1},
				TopAPIs:  []string{"of_graph_get_port_by_id", "for_each_child_of_node"}},
			{Subsystem: "net", Module: "ipv4",
				Patterns: map[corpus.PatternID]int{"P2": 1, "P8": 1},
				TopAPIs:  []string{"sock_put"}},
		},
	})
	srcs := make([]cpg.Source, len(c.Files))
	for i, f := range c.Files {
		srcs[i] = cpg.Source{Path: f.Path, Content: f.Content}
	}
	return srcs, c.Headers
}

// renderOut renders a run exactly as the refcheck/refcheck-manager CLIs do,
// so equality here is byte-identity of what the user sees.
func renderOut(run *core.Run) string {
	var b bytes.Buffer
	render.WriteReports(&b, run.Reports)
	render.WriteSummary(&b, run.Reports, run.Summary)
	return b.String()
}

func analyzeRef(t *testing.T, srcs []cpg.Source, headers map[string]string) string {
	t.Helper()
	run, err := core.Analyze(context.Background(), core.Request{
		Sources: srcs, Headers: headers,
		Options: core.Options{Workers: 2, Confirm: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Reports) == 0 {
		t.Fatal("reference run produced no reports")
	}
	return renderOut(run)
}

// TestManagerMatchesAnalyze is the end-to-end determinism pin: real worker
// subprocesses at 1, 2, and 4 procs must render byte-identically to a
// single-process core.Analyze over the same corpus.
func TestManagerMatchesAnalyze(t *testing.T) {
	srcs, headers := managerCorpus()
	want := analyzeRef(t, srcs, headers)

	for _, procs := range []int{1, 2, 4} {
		tr := obs.New("manager-test")
		run, err := Run(context.Background(), Config{
			Procs:     procs,
			WorkerCmd: workerArgv(),
			Workers:   2,
			Options:   core.Options{Workers: 2, Confirm: true},
			Trace:     tr,
		}, srcs, headers)
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if got := renderOut(run); got != want {
			t.Errorf("procs=%d: output differs from single-process Analyze", procs)
		}
		stats := tr.Reg().Snapshot()
		if stats.Counters["manager.worker.deaths"] != 0 {
			t.Errorf("procs=%d: unexpected worker deaths: %d",
				procs, stats.Counters["manager.worker.deaths"])
		}
	}
}

// TestWorkerDeathRecovery kills one worker mid-shard (it exits after
// receiving work, before replying) and asserts the manager re-queues the
// lost shard onto the surviving worker and still renders byte-identically.
func TestWorkerDeathRecovery(t *testing.T) {
	srcs, headers := managerCorpus()
	want := analyzeRef(t, srcs, headers)

	tr := obs.New("manager-death-test")
	run, err := Run(context.Background(), Config{
		Procs: 2,
		WorkerCmdFor: func(slot int) []string {
			if slot == 0 {
				return workerArgv("die=1")
			}
			return workerArgv()
		},
		Workers: 2,
		Options: core.Options{Workers: 2, Confirm: true},
		Trace:   tr,
	}, srcs, headers)
	if err != nil {
		t.Fatal(err)
	}
	stats := tr.Reg().Snapshot()
	if stats.Counters["manager.worker.deaths"] < 1 {
		t.Error("expected at least one worker death")
	}
	if stats.Counters["manager.shard.requeues"] < 1 {
		t.Error("expected the dead worker's shard to be re-queued")
	}
	if got := renderOut(run); got != want {
		t.Error("output differs from single-process Analyze after worker death")
	}
}

// TestAllWorkersDieInlineDrain arms the crash hook on every slot: each
// worker dies on its first shard, so the manager must drain the whole queue
// inline and still produce identical output.
func TestAllWorkersDieInlineDrain(t *testing.T) {
	srcs, headers := managerCorpus()
	want := analyzeRef(t, srcs, headers)

	tr := obs.New("manager-drain-test")
	run, err := Run(context.Background(), Config{
		Procs:     2,
		WorkerCmd: workerArgv("die=1"),
		Workers:   2,
		Options:   core.Options{Workers: 2, Confirm: true},
		Trace:     tr,
	}, srcs, headers)
	if err != nil {
		t.Fatal(err)
	}
	stats := tr.Reg().Snapshot()
	if stats.Counters["manager.worker.deaths"] != 2 {
		t.Errorf("worker deaths = %d, want 2", stats.Counters["manager.worker.deaths"])
	}
	if stats.Counters["manager.shard.inline"] < 1 {
		t.Error("expected inline drain of stranded shards")
	}
	if got := renderOut(run); got != want {
		t.Error("output differs from single-process Analyze after total worker loss")
	}
}

// TestManagerNoWorkerCommand pins the config error path.
func TestManagerNoWorkerCommand(t *testing.T) {
	if _, err := Run(context.Background(), Config{}, nil, nil); err == nil {
		t.Fatal("expected an error with no worker command")
	}
}

// TestManagerFrontendCache un-disables -cache on the manager path: two runs
// sharing a cache directory at shards >= 2 must aggregate worker front-end
// hits on the second run (manager.frontend.hit > 0) while staying
// byte-identical to the uncached single-process reference.
func TestManagerFrontendCache(t *testing.T) {
	srcs, headers := managerCorpus()
	want := analyzeRef(t, srcs, headers)
	cacheDir := t.TempDir()

	runOnce := func(label string) (string, map[string]int64) {
		t.Helper()
		tr := obs.New("manager-cache-test")
		run, err := Run(context.Background(), Config{
			Procs:     2,
			WorkerCmd: workerArgv(),
			Workers:   2,
			CacheDir:  cacheDir,
			CacheMem:  16,
			Options:   core.Options{Workers: 2, Confirm: true},
			Trace:     tr,
		}, srcs, headers)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		return renderOut(run), tr.Reg().Snapshot().Counters
	}

	cold, coldStats := runOnce("cold")
	if cold != want {
		t.Error("cold cached run differs from single-process Analyze")
	}
	if coldStats["manager.frontend.miss"] == 0 {
		t.Error("cold run reported no front-end misses — workers not using the cache?")
	}

	warm, warmStats := runOnce("warm")
	if warm != want {
		t.Error("warm cached run differs from single-process Analyze")
	}
	if hits := warmStats["manager.frontend.hit"]; hits == 0 {
		t.Error("warm run aggregated no front-end hits across workers")
	} else if misses := warmStats["manager.frontend.miss"]; misses != 0 {
		t.Errorf("warm run still missed %d files (hits=%d)", misses, hits)
	}
}
