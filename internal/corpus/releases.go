package corpus

import "fmt"

// ReleaseBug is one seeded bug plus its lifetime inside the release window:
// the bug's function appears in its correct form before Intro, in its buggy
// form in releases [Intro, Fix), and back in a correct form from Fix on (the
// fix commit reverts the faulty rewrite). Fix == len(Tags) means the bug is
// never fixed inside the window. File/Function/paths are release-invariant.
type ReleaseBug struct {
	PlannedBug
	Intro int
	Fix   int
}

// ReleaseSet describes an evolving multi-release corpus without
// materializing every tree: At(r) regenerates the snapshot for one release
// on demand (deterministic, so a 100×-scaled 5-release corpus never needs
// all five trees resident at once).
type ReleaseSet struct {
	Spec Spec
	Tags []string
}

// GenerateReleases builds the release plan for the spec. tags names the
// release snapshots (gitlog.ReleaseTags supplies kernel-style tags); when
// empty, spec.Releases synthetic "rel-NN" tags are used. The underlying
// module/bug stream is exactly Generate's — release evolution draws from an
// independent RNG stream, so release 0 of a 1-release set is byte-identical
// to Generate(spec).
func GenerateReleases(spec Spec, tags []string) *ReleaseSet {
	spec = spec.withDefaults()
	if len(tags) == 0 {
		tags = make([]string, spec.Releases)
		for i := range tags {
			tags[i] = fmt.Sprintf("rel-%02d", i)
		}
	}
	return &ReleaseSet{Spec: spec, Tags: tags}
}

// relChunk is one generated chunk plus its evolution schedule.
type relChunk struct {
	chunk
	intro, fix int
	fixedText  string
}

// walkReleases replays the generation stream module by module, attaching an
// evolution schedule to every bug chunk. The schedule RNG is seeded
// independently of the generation RNG so the underlying corpus bytes match
// Generate(spec) exactly.
func (rs *ReleaseSet) walkReleases(emit func(mp ModulePlan, chunks []relChunk)) {
	n := len(rs.Tags)
	rng := splitmix64(rs.Spec.Seed)
	evo := splitmix64(uint64(rs.Spec.Seed) ^ 0x72656c6561736573) // "releases"
	baitAt := baitPlacement(rs.Spec.FPBaits)
	for _, mp := range rs.Spec.Plan {
		for rep := 0; rep < rs.Spec.Scale; rep++ {
			rmp := replicaPlan(mp, rep)
			raw := moduleChunks(rmp, rs.Spec, &rng, baitAt[rmp.Subsystem+"/"+rmp.Module])
			chunks := make([]relChunk, len(raw))
			for i, ch := range raw {
				rc := relChunk{chunk: ch, fix: n}
				if ch.bug != nil {
					rc.intro = evo.intn(n)
					// Half the bugs get a fix release drawn uniformly
					// from (intro, n]; landing on n means the fix falls
					// outside the window (still an open bug at the
					// final release).
					if evo.intn(100) < 50 {
						rc.fix = rc.intro + 1 + evo.intn(n-rc.intro)
					}
					rc.fixedText = genClean(ch.bug.Function, evo.intn(10))
				}
				chunks[i] = rc
			}
			emit(rmp, chunks)
		}
	}
}

// At materializes the corpus snapshot for release r: every bug chunk whose
// lifetime covers r keeps its buggy body; outside its lifetime the chunk is
// the function's correct twin (same name, no planned bug). Baits and clean
// functions are present in every release. File paths are identical across
// releases, so cross-release diffs are per-function body swaps — the shape
// an incremental cache sees from a real edit stream.
func (rs *ReleaseSet) At(r int) *Corpus {
	if r < 0 || r >= len(rs.Tags) {
		panic(fmt.Sprintf("corpus: release %d out of range [0,%d)", r, len(rs.Tags)))
	}
	c := &Corpus{
		Headers: map[string]string{"include/linux/of.h": ofHeader},
	}
	rs.walkReleases(func(mp ModulePlan, chunks []relChunk) {
		rel := make([]chunk, len(chunks))
		for i, rc := range chunks {
			ck := rc.chunk
			if ck.bug != nil && (r < rc.intro || r >= rc.fix) {
				ck = chunk{text: rc.fixedText}
			}
			rel[i] = ck
		}
		c.packChunks(mp, rel)
	})
	sortFiles(c)
	return c
}

// Truth returns the cross-release ground truth: every seeded bug with its
// stable file path and its [Intro, Fix) lifetime, in generation order.
func (rs *ReleaseSet) Truth() []ReleaseBug {
	var out []ReleaseBug
	rs.walkReleases(func(mp ModulePlan, chunks []relChunk) {
		scratch := &Corpus{}
		raw := make([]chunk, len(chunks))
		for i := range chunks {
			raw[i] = chunks[i].chunk
		}
		scratch.packChunks(mp, raw)
		j := 0
		for _, rc := range chunks {
			if rc.bug == nil {
				continue
			}
			out = append(out, ReleaseBug{
				PlannedBug: scratch.Planned[j],
				Intro:      rc.intro,
				Fix:        rc.fix,
			})
			j++
		}
	})
	return out
}

// LiveAt filters truth (as returned by Truth) down to the bugs present in
// release r.
func LiveAt(truth []ReleaseBug, r int) []ReleaseBug {
	var out []ReleaseBug
	for _, b := range truth {
		if b.Intro <= r && r < b.Fix {
			out = append(out, b)
		}
	}
	return out
}
