package corpus

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/cpg"
	"repro/internal/refsim"
)

// TestListingsBehaveAsPublished drives every paper listing through the full
// pipeline — checker plus dynamic oracle — and compares against the
// behaviour the paper reports for it (including the false-positive and
// patch-reject outcomes).
func TestListingsBehaveAsPublished(t *testing.T) {
	for _, l := range Listings() {
		l := l
		t.Run(l.Title, func(t *testing.T) {
			run, err := core.Analyze(context.Background(), core.Request{
				Sources: []cpg.Source{{Path: l.Path, Content: l.Source}},
			})
			if err != nil {
				t.Fatal(err)
			}
			reports := run.Reports
			var hit *core.Report
			for i := range reports {
				if string(reports[i].Pattern) == l.ExpectPattern &&
					reports[i].Function == l.ExpectFunction {
					hit = &reports[i]
				}
			}
			if l.ExpectPattern == "" {
				if len(reports) != 0 {
					t.Fatalf("expected clean, got %+v", reports)
				}
				return
			}
			if hit == nil {
				t.Fatalf("expected %s on %s, got %+v", l.ExpectPattern, l.ExpectFunction, reports)
			}
			v := refsim.Replay(hit.Witness, refsim.Claim{
				Impact: hit.Impact.String(), Object: hit.Object,
			})
			if v.Confirmed != l.ExpectConfirmed {
				t.Fatalf("oracle confirmed=%v, want %v (%s)", v.Confirmed, l.ExpectConfirmed, v.Detail)
			}
		})
	}
}

func TestListingsAreNumbered(t *testing.T) {
	ls := Listings()
	if len(ls) != 6 {
		t.Fatalf("listings = %d", len(ls))
	}
	for i, l := range ls {
		if l.Number != i+1 {
			t.Errorf("listing %d numbered %d", i+1, l.Number)
		}
		if l.Source == "" || l.Path == "" || l.Title == "" {
			t.Errorf("listing %d incomplete", l.Number)
		}
	}
}
