package corpus

import (
	"testing"
)

// sameCorpus asserts two corpora are byte-identical: same files (path and
// content), same headers, same planned bugs and baits.
func sameCorpus(t *testing.T, label string, a, b *Corpus) {
	t.Helper()
	if len(a.Files) != len(b.Files) {
		t.Fatalf("%s: file count %d != %d", label, len(a.Files), len(b.Files))
	}
	for i := range a.Files {
		if a.Files[i].Path != b.Files[i].Path {
			t.Fatalf("%s: file %d path %q != %q", label, i, a.Files[i].Path, b.Files[i].Path)
		}
		if a.Files[i].Content != b.Files[i].Content {
			t.Errorf("%s: file %s content differs", label, a.Files[i].Path)
		}
	}
	if len(a.Headers) != len(b.Headers) {
		t.Fatalf("%s: header count %d != %d", label, len(a.Headers), len(b.Headers))
	}
	for p, c := range a.Headers {
		if b.Headers[p] != c {
			t.Errorf("%s: header %s differs", label, p)
		}
	}
	if len(a.Planned) != len(b.Planned) {
		t.Errorf("%s: planned %d != %d", label, len(a.Planned), len(b.Planned))
	}
	if len(a.Baits) != len(b.Baits) {
		t.Errorf("%s: baits %d != %d", label, len(a.Baits), len(b.Baits))
	}
}

// TestScaleMultiplies pins the Scale contract: every plan module is emitted
// Scale times, so planned bugs multiply exactly while the bait count stays
// constant (baits are keyed to original module names, never replicas).
func TestScaleMultiplies(t *testing.T) {
	base := Generate(Spec{Seed: 1})
	for _, scale := range []int{2, 3} {
		c := Generate(Spec{Seed: 1, Scale: scale})
		if got, want := len(c.Planned), scale*len(base.Planned); got != want {
			t.Errorf("scale %d: planned bugs = %d, want %d", scale, got, want)
		}
		if got, want := len(c.Baits), len(base.Baits); got != want {
			t.Errorf("scale %d: baits = %d, want %d (constant across scales)", scale, got, want)
		}
		if len(c.Files) <= (scale-1)*len(base.Files) {
			t.Errorf("scale %d: only %d files (base %d) — replicas missing?",
				scale, len(c.Files), len(base.Files))
		}
		// Replica modules must live in distinct directories: no path collides
		// with the base corpus beyond the base's own files.
		seen := make(map[string]bool, len(c.Files))
		for _, f := range c.Files {
			if seen[f.Path] {
				t.Fatalf("scale %d: duplicate path %s", scale, f.Path)
			}
			seen[f.Path] = true
		}
	}
}

// TestScaleDeterministic: same spec, same bytes — the property every cache
// key and golden test downstream depends on.
func TestScaleDeterministic(t *testing.T) {
	spec := Spec{Seed: 7, Scale: 3}
	sameCorpus(t, "scale-3", Generate(spec), Generate(spec))
}

// TestScaleLarge generates the kernel-scale corpus (-scale 100) and pins its
// shape: generation must stay cheap enough to run ungated (it is pure string
// assembly, ~0.2s) and deterministic at size.
func TestScaleLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel-scale generation skipped in -short")
	}
	c := Generate(Spec{Seed: 1, Scale: 100})
	if got, want := len(c.Planned), 100*352; got != want {
		t.Errorf("planned bugs = %d, want %d", got, want)
	}
	if len(c.Files) < 10000 {
		t.Errorf("files = %d, want a kernel-scale tree (>= 10000)", len(c.Files))
	}
	if kloc := c.KLOC(); kloc < 500 {
		t.Errorf("KLOC = %.1f, want >= 500", kloc)
	}
}

// TestSingleReleaseMatchesGenerate pins the compatibility contract in
// GenerateReleases' doc: release 0 of a 1-release set is byte-identical to
// Generate(spec) — evolution draws come from an independent RNG stream and
// a 1-release window keeps every bug live.
func TestSingleReleaseMatchesGenerate(t *testing.T) {
	rs := GenerateReleases(Spec{Seed: 1}, nil)
	if len(rs.Tags) != 1 {
		t.Fatalf("default Releases gave %d tags, want 1", len(rs.Tags))
	}
	sameCorpus(t, "release-0", rs.At(0), Generate(Spec{Seed: 1}))
}

// TestReleaseEvolution pins the multi-release semantics for seed 1 over a
// 4-release window: lifetime invariants, the exact live-bug counts per
// release (a regression pin on the evolution RNG stream), path invariance
// across releases, and At() determinism.
func TestReleaseEvolution(t *testing.T) {
	rs := GenerateReleases(Spec{Seed: 1, Releases: 4}, nil)
	truth := rs.Truth()
	if len(truth) != 352 {
		t.Fatalf("seeded bugs = %d, want 352 (one per Generate planned bug)", len(truth))
	}
	n := len(rs.Tags)
	for i, b := range truth {
		if b.Intro < 0 || b.Intro >= n {
			t.Fatalf("bug %d: intro %d out of [0,%d)", i, b.Intro, n)
		}
		if b.Fix <= b.Intro || b.Fix > n {
			t.Fatalf("bug %d: fix %d not in (%d,%d]", i, b.Fix, b.Intro, n)
		}
		if b.File == "" || b.Function == "" {
			t.Fatalf("bug %d: missing file/function", i)
		}
	}

	// The pinned longitudinal curve: bugs accumulate (intros outpace fixes
	// early) — these counts change only if the evolution stream changes.
	wantLive := []int{86, 168, 227, 264}
	for r := 0; r < n; r++ {
		live := LiveAt(truth, r)
		if len(live) != wantLive[r] {
			t.Errorf("release %d: live bugs = %d, want %d", r, len(live), wantLive[r])
		}
		c := rs.At(r)
		if len(c.Planned) != len(live) {
			t.Errorf("release %d: At().Planned = %d, LiveAt = %d — snapshot and truth disagree",
				r, len(c.Planned), len(live))
		}
		if len(c.Baits) != 5 {
			t.Errorf("release %d: baits = %d, want 5 (baits present in every release)", r, len(c.Baits))
		}
	}

	// File paths are release-invariant: cross-release diffs are body swaps.
	first, last := rs.At(0), rs.At(n-1)
	if len(first.Files) != len(last.Files) {
		t.Fatalf("file counts differ across releases: %d vs %d", len(first.Files), len(last.Files))
	}
	changed := 0
	for i := range first.Files {
		if first.Files[i].Path != last.Files[i].Path {
			t.Fatalf("file %d path changed across releases: %s vs %s",
				i, first.Files[i].Path, last.Files[i].Path)
		}
		if first.Files[i].Content != last.Files[i].Content {
			changed++
		}
	}
	if changed == 0 {
		t.Error("no file content changed between first and last release")
	}

	sameCorpus(t, "At determinism", rs.At(2), rs.At(2))
}

// TestReleaseTruthMatchesSnapshot cross-checks Truth against the snapshots:
// every bug live at release r must appear in At(r).Planned with the same
// file and function.
func TestReleaseTruthMatchesSnapshot(t *testing.T) {
	rs := GenerateReleases(Spec{Seed: 3, Releases: 3}, []string{"a", "b", "c"})
	truth := rs.Truth()
	for r := range rs.Tags {
		inSnap := make(map[string]bool)
		for _, b := range rs.At(r).Planned {
			inSnap[b.File+"/"+b.Function] = true
		}
		for _, b := range LiveAt(truth, r) {
			if !inSnap[b.File+"/"+b.Function] {
				t.Errorf("release %d: truth bug %s/%s missing from snapshot", r, b.File, b.Function)
			}
		}
	}
}
