package corpus

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpg"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Spec{Seed: 7})
	b := Generate(Spec{Seed: 7})
	if len(a.Files) != len(b.Files) || len(a.Planned) != len(b.Planned) {
		t.Fatalf("sizes differ: %d/%d files, %d/%d bugs",
			len(a.Files), len(b.Files), len(a.Planned), len(b.Planned))
	}
	for i := range a.Files {
		if a.Files[i].Path != b.Files[i].Path || a.Files[i].Content != b.Files[i].Content {
			t.Fatalf("file %d differs", i)
		}
	}
	c := Generate(Spec{Seed: 8})
	same := true
	for i := range a.Files {
		if i < len(c.Files) && a.Files[i].Content != c.Files[i].Content {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestPlannedCountsMatchTable5(t *testing.T) {
	c := Generate(Spec{Seed: 1})
	perSubsystem := map[string]int{}
	perPattern := map[PatternID]int{}
	for _, b := range c.Planned {
		perSubsystem[b.Subsystem]++
		perPattern[b.Pattern]++
	}
	// Paper Table 4: arch 156, drivers 182, include 2, net 2, sound 9 (our
	// plan follows the per-row counts; arch rows sum to 157 in the paper's
	// own table).
	wantSub := map[string]int{"arch": 157, "drivers": 182, "include": 2, "net": 2, "sound": 9}
	for sub, want := range wantSub {
		if perSubsystem[sub] != want {
			t.Errorf("%s: planned %d, want %d", sub, perSubsystem[sub], want)
		}
	}
	total := 0
	for _, n := range perSubsystem {
		total += n
	}
	if total != 352 {
		t.Errorf("total planned = %d", total)
	}
	if perPattern["P4"] < 150 {
		t.Errorf("P4 instances = %d, expected the dominant share", perPattern["P4"])
	}
}

func TestImpactShape(t *testing.T) {
	c := Generate(Spec{Seed: 1})
	impacts := map[string]int{}
	for _, b := range c.Planned {
		impacts[b.Impact]++
	}
	if impacts["NPD"] != 7 {
		t.Errorf("NPD = %d, want 7 (Table 4)", impacts["NPD"])
	}
	if impacts["Leak"] < impacts["UAF"]*5 {
		t.Errorf("impact shape off: %+v (leak must dominate)", impacts)
	}
	if impacts["UAF"] < 20 {
		t.Errorf("UAF = %d, too few", impacts["UAF"])
	}
}

func TestCorpusParsesCleanly(t *testing.T) {
	c := Generate(Spec{Seed: 1})
	var sources []cpg.Source
	for _, f := range c.Files {
		sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
	}
	b := &cpg.Builder{Headers: headerProvider(c.Headers)}
	u := b.Build(sources)
	for _, e := range u.Errors {
		t.Errorf("corpus error: %v", e)
	}
}

type headerProvider map[string]string

func (m headerProvider) ReadFile(path string) (string, bool) {
	if s, ok := m[path]; ok {
		return s, true
	}
	for p, s := range m {
		if strings.HasSuffix(p, "/"+path) {
			return s, true
		}
	}
	return "", false
}

// TestDetectionRecallPrecision is the central integration check: the nine
// checkers must find every planned bug (matched by function + pattern) and
// report extras only at the seeded false-positive baits.
func TestDetectionRecallPrecision(t *testing.T) {
	c := Generate(Spec{Seed: 1})
	var sources []cpg.Source
	for _, f := range c.Files {
		sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
	}
	u := (&cpg.Builder{Headers: headerProvider(c.Headers)}).Build(sources)
	reports := core.NewEngine().CheckUnit(u)

	type key struct {
		fn      string
		pattern string
	}
	got := map[key][]core.Report{}
	for _, r := range reports {
		got[key{r.Function, string(r.Pattern)}] = append(got[key{r.Function, string(r.Pattern)}], r)
	}

	// Recall: every planned bug found.
	missed := 0
	for _, b := range c.Planned {
		if len(got[key{b.Function, string(b.Pattern)}]) == 0 {
			missed++
			if missed <= 10 {
				t.Errorf("missed: %s %s in %s (%s)", b.Pattern, b.Function, b.File, b.API)
			}
		}
	}
	if missed > 0 {
		t.Fatalf("missed %d of %d planned bugs", missed, len(c.Planned))
	}

	// Precision: every report maps to a planned bug or a bait.
	planned := map[string]bool{}
	for _, b := range c.Planned {
		planned[b.Function] = true
	}
	baited := map[string]bool{}
	for _, bb := range c.Baits {
		baited[bb.Function] = true
	}
	var unexpected []core.Report
	baitHits := map[string]bool{}
	for _, r := range reports {
		switch {
		case planned[r.Function]:
		case baited[r.Function]:
			baitHits[r.Function] = true
		default:
			unexpected = append(unexpected, r)
		}
	}
	for _, r := range unexpected {
		t.Errorf("unexpected report: %s", r.String())
	}
	if len(baitHits) != len(c.Baits) {
		t.Errorf("bait hits = %d, want %d (the seeded FP shape must trip the checkers)",
			len(baitHits), len(c.Baits))
	}
}

func TestKLOCPositive(t *testing.T) {
	c := Generate(Spec{Seed: 1})
	if c.KLOC() < 5 {
		t.Errorf("KLOC = %.1f, corpus suspiciously small", c.KLOC())
	}
}
