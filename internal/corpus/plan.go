// Package corpus generates the synthetic Linux-kernel source tree the
// checkers are evaluated on.
//
// The paper ran its checkers over real kernel releases; offline we substitute
// a deterministic generator that emits genuine C code — organized into the
// same subsystems and modules as the paper's Table 5, using the real kernel
// refcounting API surface — and seeds one bug per planned Table 5 instance
// with known ground truth. Clean functions and the paper's published
// false-positive / patch-reject cases (Listings 5 and 6) are woven in so
// precision is measured, not assumed.
package corpus

// PatternID names an anti-pattern in plan entries ("P1".."P9"). The corpus
// package deliberately does not import internal/core; tools compare these
// strings against core.Pattern values.
type PatternID string

// BugKind refines a pattern when one pattern covers several bug flavours.
type BugKind string

// Bug kinds.
const (
	KindDefault    BugKind = ""
	KindMissingGet BugKind = "missing-get" // P4's UAF flavour (§5.2.2)
	KindPinnedUAD  BugKind = "pinned-uad"  // P8 flavour rejected by developers (§6.4)
)

// ModulePlan is one row of Table 5: a module, its anti-pattern instance
// counts, and the bug-caused APIs observed there.
type ModulePlan struct {
	Subsystem string
	Module    string
	// Patterns maps anti-pattern → instance count.
	Patterns map[PatternID]int
	// TopAPIs are the module's "Bug-Caused API (Top-2)" from Table 5; the
	// generator uses them when the pattern is compatible.
	TopAPIs []string
	// MissingGet is how many of the module's P4 instances take the
	// missing-increase (UAF) flavour.
	MissingGet int
	// PinnedUAD is how many of the module's P8 instances are pinned by an
	// extra reference (developer patch-reject cases).
	PinnedUAD int
}

// Table5Plan reproduces the paper's Table 5 as generation calibration: one
// entry per buggy module, instance counts per anti-pattern, and the top
// bug-caused APIs. The 16 missing-increase P4 bugs (§5.2.2) and the pinned
// P8 patch-reject cases (§6.4) are distributed where the paper reports them.
func Table5Plan() []ModulePlan {
	return []ModulePlan{
		// --- arch ---
		{Subsystem: "arch", Module: "arm",
			Patterns:   map[PatternID]int{"P4": 42, "P6": 2, "P7": 2, "P9": 4},
			TopAPIs:    []string{"of_find_compatible_node", "of_find_matching_node"},
			MissingGet: 6},
		{Subsystem: "arch", Module: "microblaze",
			Patterns: map[PatternID]int{"P4": 1},
			TopAPIs:  []string{"of_find_matching_node"}},
		{Subsystem: "arch", Module: "mips",
			Patterns:   map[PatternID]int{"P4": 17},
			TopAPIs:    []string{"of_find_compatible_node", "of_find_matching_node"},
			MissingGet: 2},
		{Subsystem: "arch", Module: "powerpc",
			Patterns:   map[PatternID]int{"P3": 8, "P4": 48, "P5": 1, "P6": 2, "P8": 1, "P9": 5},
			TopAPIs:    []string{"of_find_compatible_node", "of_find_node_by_path"},
			MissingGet: 6},
		{Subsystem: "arch", Module: "sh",
			Patterns: map[PatternID]int{"P4": 1},
			TopAPIs:  []string{"of_find_compatible_node"}},
		{Subsystem: "arch", Module: "sparc",
			Patterns: map[PatternID]int{"P2": 3, "P3": 4, "P4": 10, "P7": 1, "P9": 1},
			TopAPIs:  []string{"of_find_node_by_name", "for_each_node_by_name"}},
		{Subsystem: "arch", Module: "x86",
			Patterns: map[PatternID]int{"P4": 2},
			TopAPIs:  []string{"of_find_compatible_node", "of_find_matching_node"}},
		{Subsystem: "arch", Module: "xtensa",
			Patterns: map[PatternID]int{"P4": 2},
			TopAPIs:  []string{"of_find_compatible_node"}},

		// --- drivers ---
		{Subsystem: "drivers", Module: "block",
			Patterns: map[PatternID]int{"P2": 1}, TopAPIs: []string{"mdesc_grab"}},
		{Subsystem: "drivers", Module: "bus",
			Patterns: map[PatternID]int{"P3": 1, "P4": 7},
			TopAPIs:  []string{"of_find_matching_node", "of_find_node_by_path"}},
		{Subsystem: "drivers", Module: "clk",
			Patterns:   map[PatternID]int{"P4": 37},
			TopAPIs:    []string{"of_get_node", "of_find_matching_node"},
			MissingGet: 2},
		{Subsystem: "drivers", Module: "clocksource",
			Patterns: map[PatternID]int{"P4": 1},
			TopAPIs:  []string{"of_find_compatible_node"}},
		{Subsystem: "drivers", Module: "cpufreq",
			Patterns: map[PatternID]int{"P4": 4},
			TopAPIs:  []string{"of_find_node_by_name", "of_find_matching_node"}},
		{Subsystem: "drivers", Module: "crypto",
			Patterns: map[PatternID]int{"P4": 4},
			TopAPIs:  []string{"of_find_compatible_node"}},
		{Subsystem: "drivers", Module: "dma",
			Patterns: map[PatternID]int{"P3": 1, "P5": 1},
			TopAPIs:  []string{"of_parse_phandle", "for_each_child_of_node"}},
		{Subsystem: "drivers", Module: "edac",
			Patterns: map[PatternID]int{"P4": 1}, TopAPIs: []string{"of_find_compatible_node"}},
		{Subsystem: "drivers", Module: "firmware",
			Patterns: map[PatternID]int{"P4": 1}, TopAPIs: []string{"of_find_compatible_node"}},
		{Subsystem: "drivers", Module: "gpio",
			Patterns: map[PatternID]int{"P4": 2, "P6": 1, "P9": 1},
			TopAPIs:  []string{"of_get_parent", "of_node_get"}},
		{Subsystem: "drivers", Module: "gpu",
			Patterns:  map[PatternID]int{"P3": 3, "P4": 5, "P5": 3, "P6": 2, "P8": 2, "P9": 2},
			TopAPIs:   []string{"of_graph_get_port_by_id", "of_get_node"},
			PinnedUAD: 1},
		{Subsystem: "drivers", Module: "hwmon",
			Patterns: map[PatternID]int{"P4": 2}, TopAPIs: []string{"of_find_compatible_node"}},
		{Subsystem: "drivers", Module: "i2c",
			Patterns: map[PatternID]int{"P3": 2},
			TopAPIs:  []string{"device_for_each_child_node", "for_each_child_of_node"}},
		{Subsystem: "drivers", Module: "iio",
			Patterns: map[PatternID]int{"P3": 1, "P4": 1},
			TopAPIs:  []string{"device_for_each_child_node", "of_find_node_by_name"}},
		{Subsystem: "drivers", Module: "input",
			Patterns: map[PatternID]int{"P4": 2}, TopAPIs: []string{"of_find_node_by_path"}},
		{Subsystem: "drivers", Module: "iommu",
			Patterns: map[PatternID]int{"P3": 1}, TopAPIs: []string{"for_each_child_of_node"}},
		{Subsystem: "drivers", Module: "irqchip",
			Patterns: map[PatternID]int{"P4": 3},
			TopAPIs:  []string{"of_find_matching_node", "of_find_node_by_phandle"}},
		{Subsystem: "drivers", Module: "leds",
			Patterns: map[PatternID]int{"P3": 1}, TopAPIs: []string{"fwnode_for_each_child_node"}},
		{Subsystem: "drivers", Module: "macintosh",
			Patterns: map[PatternID]int{"P4": 2, "P6": 1},
			TopAPIs:  []string{"of_find_compatible_node", "of_node_get"}},
		{Subsystem: "drivers", Module: "media",
			Patterns: map[PatternID]int{"P3": 2},
			TopAPIs:  []string{"for_each_compatible_node", "for_each_child_of_node"}},
		{Subsystem: "drivers", Module: "memory",
			Patterns: map[PatternID]int{"P3": 4, "P4": 2},
			TopAPIs:  []string{"of_find_node_by_name", "for_each_child_of_node"}},
		{Subsystem: "drivers", Module: "mfd",
			Patterns: map[PatternID]int{"P1": 1}, TopAPIs: []string{"pm_runtime_get_sync"}},
		{Subsystem: "drivers", Module: "mmc",
			Patterns: map[PatternID]int{"P3": 3, "P4": 1},
			TopAPIs:  []string{"for_each_child_of_node", "of_find_compatible_node"}},
		{Subsystem: "drivers", Module: "net",
			Patterns: map[PatternID]int{"P2": 2, "P3": 5, "P4": 12},
			TopAPIs:  []string{"for_each_child_of_node", "of_find_compatible_node"}},
		{Subsystem: "drivers", Module: "nvme",
			Patterns: map[PatternID]int{"P8": 1}, TopAPIs: []string{"nvmet_fc_tgt_q_put"},
			PinnedUAD: 1},
		{Subsystem: "drivers", Module: "of",
			Patterns: map[PatternID]int{"P4": 1}, TopAPIs: []string{"of_parse_phandle"}},
		{Subsystem: "drivers", Module: "opp",
			Patterns: map[PatternID]int{"P9": 2}, TopAPIs: []string{"of_node_get"}},
		{Subsystem: "drivers", Module: "pci",
			Patterns: map[PatternID]int{"P4": 2, "P5": 1},
			TopAPIs:  []string{"of_parse_phandle", "of_find_matching_node"}},
		{Subsystem: "drivers", Module: "perf",
			Patterns: map[PatternID]int{"P3": 1}, TopAPIs: []string{"for_each_cpu_node"}},
		{Subsystem: "drivers", Module: "phy",
			Patterns: map[PatternID]int{"P3": 1, "P4": 2},
			TopAPIs:  []string{"for_each_child_of_node", "of_parse_phandle"}},
		{Subsystem: "drivers", Module: "pinctrl",
			Patterns: map[PatternID]int{"P4": 1}, TopAPIs: []string{"of_find_node_by_phandle"}},
		{Subsystem: "drivers", Module: "platform",
			Patterns: map[PatternID]int{"P3": 3},
			TopAPIs:  []string{"device_for_each_child_node", "fwnode_for_each_child_node"}},
		{Subsystem: "drivers", Module: "powerpc",
			Patterns: map[PatternID]int{"P4": 1}, TopAPIs: []string{"of_find_compatible_node"}},
		{Subsystem: "drivers", Module: "regulator",
			Patterns: map[PatternID]int{"P4": 2},
			TopAPIs:  []string{"of_find_node_by_name", "of_get_child_by_name"}},
		{Subsystem: "drivers", Module: "sbus",
			Patterns: map[PatternID]int{"P4": 2}, TopAPIs: []string{"of_find_node_by_path"}},
		{Subsystem: "drivers", Module: "soc",
			Patterns: map[PatternID]int{"P3": 3, "P4": 7, "P5": 1, "P6": 1, "P9": 1},
			TopAPIs:  []string{"of_find_compatible_node", "of_get_parent"}},
		{Subsystem: "drivers", Module: "thermal",
			Patterns: map[PatternID]int{"P6": 1, "P9": 1}, TopAPIs: []string{"of_node_get"}},
		{Subsystem: "drivers", Module: "tty",
			Patterns: map[PatternID]int{"P2": 1, "P4": 2, "P6": 1},
			TopAPIs:  []string{"mdesc_grab", "of_find_node_by_type"}},
		{Subsystem: "drivers", Module: "ufs",
			Patterns: map[PatternID]int{"P4": 1}, TopAPIs: []string{"of_parse_phandle"}},
		{Subsystem: "drivers", Module: "usb",
			Patterns: map[PatternID]int{"P4": 6, "P8": 1},
			TopAPIs:  []string{"of_find_node_by_name", "usb_serial_put"}},
		{Subsystem: "drivers", Module: "video",
			Patterns: map[PatternID]int{"P4": 3}, TopAPIs: []string{"of_find_compatible_node"}},
		{Subsystem: "drivers", Module: "w1",
			Patterns: map[PatternID]int{"P4": 3, "P5": 1},
			TopAPIs:  []string{"of_find_matching_node"}},

		// --- include ---
		{Subsystem: "include", Module: "linux",
			Patterns: map[PatternID]int{"P4": 2}, TopAPIs: []string{"of_find_compatible_node"}},

		// --- net ---
		{Subsystem: "net", Module: "appletalk",
			Patterns: map[PatternID]int{"P4": 1}, TopAPIs: []string{"dev_hold"}},
		{Subsystem: "net", Module: "ipv4",
			Patterns: map[PatternID]int{"P8": 1}, TopAPIs: []string{"sock_put"},
			PinnedUAD: 1},

		// --- sound ---
		{Subsystem: "sound", Module: "soc",
			Patterns: map[PatternID]int{"P4": 8, "P5": 1},
			TopAPIs:  []string{"of_find_compatible_node", "of_graph_get_port_parent"}},
	}
}

// PlannedBug is one seeded ground-truth bug instance.
type PlannedBug struct {
	Pattern   PatternID
	Kind      BugKind
	Subsystem string
	Module    string
	API       string
	File      string
	Function  string
	Impact    string // "Leak", "UAF", "NPD"
}

// FalsePositiveBait describes a seeded clean function that the checkers are
// expected to misreport (the paper's 5 FPs, Listing 5's shape).
type FalsePositiveBait struct {
	Subsystem, Module, File, Function string
}
