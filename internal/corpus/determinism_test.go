package corpus

import (
	"reflect"
	"testing"
)

// TestGroundTruthDeterministic extends TestGenerateDeterministic (which
// checks file bytes) to the rest of the corpus: headers and the
// planned-bug/bait ground-truth tables must be identical across two runs of
// the same seed — the property the golden regression gate keys on.
func TestGroundTruthDeterministic(t *testing.T) {
	a := Generate(Spec{Seed: 1})
	b := Generate(Spec{Seed: 1})

	if !reflect.DeepEqual(a.Headers, b.Headers) {
		t.Error("headers differ between runs of the same seed")
	}
	if !reflect.DeepEqual(a.Planned, b.Planned) {
		t.Error("planned-bug tables differ between runs of the same seed")
	}
	if !reflect.DeepEqual(a.Baits, b.Baits) {
		t.Error("bait tables differ between runs of the same seed")
	}
	if len(a.Planned) == 0 || len(a.Baits) == 0 {
		t.Fatalf("ground truth suspiciously empty: %d planned, %d baits",
			len(a.Planned), len(a.Baits))
	}
}
