package corpus

import (
	"fmt"
	"sort"
	"strings"
)

// Spec is the one generation spec shared by every synthetic-workload
// generator: corpus.Generate / corpus.GenerateReleases build source trees
// from it, and gitlog.Generate builds the commit history from it, so a single
// {Seed, Scale, Releases} triple describes one coherent synthetic kernel.
type Spec struct {
	// Seed drives the deterministic pseudo-random choices (variant
	// selection); the same seed always yields the same corpus and history.
	Seed int64
	// Scale multiplies the workload (default 1): every plan module is
	// emitted Scale times (replica 0 under its original path, replica k
	// under "<module>-r<k>"), and gitlog multiplies its calibrated commit
	// counts by the same factor. Scale 1 output is byte-identical to the
	// historical single-kernel corpus.
	Scale int
	// Releases is how many release snapshots GenerateReleases spreads the
	// bug population over (default 1). corpus.Generate ignores it — a plain
	// Generate call is always the single-release tree.
	Releases int
	// CleanPerModule is the number of correct functions emitted per module
	// (default 6), drawn from a pool that includes hard negatives — the
	// correct twins of each bug pattern.
	CleanPerModule int
	// Plan is the bug plan; nil means Table5Plan().
	Plan []ModulePlan
	// FPBaits is the number of false-positive bait functions (default 5:
	// Table 4 reports 1 in arch + 4 in drivers). Baits are placed only in
	// replica 0, so the FP ground truth is scale-invariant.
	FPBaits int
	// Background overrides gitlog's calibrated background-commit count when
	// > 0 (tests use smaller histories). Ignored by the corpus generators.
	Background int
	// Shrink divides gitlog's calibrated counts (default 1), producing a
	// shape-preserving miniature history for tests. Ignored by the corpus
	// generators; it composes with Scale (counts are n*Scale/Shrink).
	Shrink int
}

// withDefaults resolves the spec's zero values to their documented defaults.
func (s Spec) withDefaults() Spec {
	if s.Plan == nil {
		s.Plan = Table5Plan()
	}
	if s.CleanPerModule == 0 {
		s.CleanPerModule = 6
	}
	if s.FPBaits == 0 {
		s.FPBaits = 5
	}
	if s.Scale < 1 {
		s.Scale = 1
	}
	if s.Releases < 1 {
		s.Releases = 1
	}
	if s.Shrink < 1 {
		s.Shrink = 1
	}
	return s
}

// File is one generated source file.
type File struct {
	Path    string
	Content string
}

// Corpus is a generated synthetic kernel tree.
type Corpus struct {
	Files   []File
	Headers map[string]string
	Planned []PlannedBug
	Baits   []FalsePositiveBait
}

// KLOC returns the corpus size in thousands of source lines.
func (c *Corpus) KLOC() float64 {
	lines := 0
	for _, f := range c.Files {
		lines += strings.Count(f.Content, "\n")
	}
	return float64(lines) / 1000.0
}

// splitmix64 is a tiny deterministic PRNG (no math/rand dependency keeps the
// corpus bit-stable across Go releases).
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(s.next() % uint64(n))
}

// baitPlacement mirrors Table 4: 1 bait in arch, the rest in drivers. Baits
// land only in replica 0 of each module, so the map keys never name replicas.
func baitPlacement(fpBaits int) map[string]int {
	baitSpots := []struct{ sub, mod string }{
		{"arch", "arm"}, {"drivers", "gpu"}, {"drivers", "net"},
		{"drivers", "usb"}, {"drivers", "clk"}, {"drivers", "soc"},
		{"drivers", "mmc"},
	}
	baitAt := map[string]int{}
	for i := 0; i < fpBaits && i < len(baitSpots); i++ {
		baitAt[baitSpots[i].sub+"/"+baitSpots[i].mod]++
	}
	return baitAt
}

// replicaPlan renames a plan module for scale replica rep. Replica 0 is the
// module itself, so Scale 1 reproduces the historical corpus byte for byte;
// higher replicas get "-r<k>" path/name suffixes (and therefore distinct
// function prefixes — the corpus stays collision-free at any scale).
func replicaPlan(mp ModulePlan, rep int) ModulePlan {
	if rep == 0 {
		return mp
	}
	r := mp
	r.Module = fmt.Sprintf("%s-r%d", mp.Module, rep)
	return r
}

// Generate builds the corpus for the spec: Scale replicas of every plan
// module, one tree. For multiple release snapshots use GenerateReleases.
func Generate(spec Spec) *Corpus {
	spec = spec.withDefaults()
	rng := splitmix64(spec.Seed)
	c := &Corpus{
		Headers: map[string]string{"include/linux/of.h": ofHeader},
	}
	baitAt := baitPlacement(spec.FPBaits)
	for _, mp := range spec.Plan {
		for rep := 0; rep < spec.Scale; rep++ {
			rmp := replicaPlan(mp, rep)
			c.genModule(rmp, spec, &rng, baitAt[rmp.Subsystem+"/"+rmp.Module])
		}
	}
	sortFiles(c)
	return c
}

func sortFiles(c *Corpus) {
	sort.Slice(c.Files, func(i, j int) bool { return c.Files[i].Path < c.Files[j].Path })
}

const filePrelude = `#include <linux/of.h>

struct stm32_crc { struct my_dev_ref *dev; int enabled; };
struct my_ctl { struct my_dev_ref *dev; u32 state; };
struct holder_state { struct sock *watched; };
`

// impactFor maps (pattern, kind) to the expected security impact.
func impactFor(p PatternID, kind BugKind) string {
	switch p {
	case "P2":
		return "NPD"
	case "P8", "P9":
		return "UAF"
	case "P4":
		if kind == KindMissingGet {
			return "UAF"
		}
		return "Leak"
	default:
		return "Leak"
	}
}

// chunk is one generated snippet: a buggy function (with its ground truth), a
// bait, or a clean function.
type chunk struct {
	text string
	bug  *PlannedBug
	bait *FalsePositiveBait
}

// genModule emits the module's source files: buggy functions per the plan,
// baits, and clean functions.
func (c *Corpus) genModule(mp ModulePlan, spec Spec, rng *splitmix64, baits int) {
	c.packChunks(mp, moduleChunks(mp, spec, rng, baits))
}

// moduleChunks builds the module's snippet sequence in plan order, consuming
// the generation RNG exactly as the historical monolithic generator did (the
// packing step is separate so GenerateReleases can swap chunk texts per
// release without disturbing the stream).
func moduleChunks(mp ModulePlan, spec Spec, rng *splitmix64, baits int) []chunk {
	prefix := strings.ReplaceAll(mp.Module, "-", "_") + "_" + mp.Subsystem

	var chunks []chunk
	add := func(text string, bug *PlannedBug, bait *FalsePositiveBait) {
		chunks = append(chunks, chunk{text: text, bug: bug, bait: bait})
	}

	patterns := make([]PatternID, 0, len(mp.Patterns))
	for p := range mp.Patterns {
		patterns = append(patterns, p)
	}
	sort.Slice(patterns, func(i, j int) bool { return patterns[i] < patterns[j] })

	seq := 0
	for _, p := range patterns {
		count := mp.Patterns[p]
		missingGetLeft := 0
		pinnedLeft := 0
		if p == "P4" {
			missingGetLeft = mp.MissingGet
		}
		if p == "P8" {
			pinnedLeft = mp.PinnedUAD
		}
		for i := 0; i < count; i++ {
			seq++
			fn := fmt.Sprintf("%s_%s_%d", prefix, strings.ToLower(string(p)), seq)
			bug := PlannedBug{
				Pattern: p, Subsystem: mp.Subsystem, Module: mp.Module,
				Function: fn, Impact: impactFor(p, KindDefault),
			}
			var text string
			switch p {
			case "P1":
				text = genP1(fn)
				bug.API = "pm_runtime_get_sync"
			case "P2":
				api := "mdesc_grab"
				for _, a := range mp.TopAPIs {
					if strings.HasPrefix(a, "of_find_") {
						api = a
					}
				}
				text = genP2(fn, api)
				bug.API = api
			case "P3":
				loop := pickLoopAPI(mp.TopAPIs)
				text = genP3(fn, loop)
				bug.API = loop
			case "P4":
				if missingGetLeft > 0 {
					missingGetLeft--
					bug.Kind = KindMissingGet
					bug.Impact = impactFor(p, KindMissingGet)
					bug.API = "of_find_matching_node"
					text = genP4MissingGet(fn)
				} else {
					api := pickFindAPI(mp.TopAPIs)
					if len(mp.TopAPIs) > 1 && i%2 == 1 {
						if alt := pickFindAPI(mp.TopAPIs[1:]); alt != "" {
							api = alt
						}
					}
					bug.API = api
					text = genP4Leak(fn, api, rng.intn(3))
				}
			case "P5":
				api := pickFindAPI(mp.TopAPIs)
				bug.API = api
				text = genP5(fn, api)
			case "P6":
				base := fmt.Sprintf("%s_dev%d", prefix, seq)
				useCb := rng.intn(2) == 0
				text = genP6(base, useCb)
				if useCb {
					bug.Function = base + "_probe"
				} else {
					bug.Function = base + "_register"
				}
				bug.API = "of_find_node_by_path"
			case "P7":
				structName := fmt.Sprintf("%s_obj%d", prefix, seq)
				text = genP7(fn, structName)
				bug.API = "kfree"
			case "P8":
				api := "sock_put"
				for _, a := range mp.TopAPIs {
					if strings.HasSuffix(a, "_put") {
						api = a
					}
				}
				pinned := false
				if pinnedLeft > 0 {
					pinnedLeft--
					pinned = true
					bug.Kind = KindPinnedUAD
				}
				text = genP8(fn, api, pinned)
				bug.API = api
			case "P9":
				global := fmt.Sprintf("%s_escape%d", prefix, seq)
				variant := rng.intn(2)
				text = genP9(fn, global, variant)
				bug.API = "assignment"
			default:
				continue
			}
			add(text, &bug, nil)
		}
	}

	for i := 0; i < baits; i++ {
		seq++
		fn := fmt.Sprintf("%s_bait_%d", prefix, seq)
		add(genFPBait(fn), nil, &FalsePositiveBait{
			Subsystem: mp.Subsystem, Module: mp.Module, Function: fn,
		})
	}

	for i := 0; i < spec.CleanPerModule; i++ {
		seq++
		fn := fmt.Sprintf("%s_ok_%d", prefix, seq)
		add(genClean(fn, rng.intn(10)+i), nil, nil)
	}
	return chunks
}

// packChunks packs the module's chunks into files of ~6 functions each and
// records the per-file ground truth (planned bugs and baits).
func (c *Corpus) packChunks(mp ModulePlan, chunks []chunk) {
	dir := mp.Subsystem + "/" + mp.Module
	const perFile = 6
	for fi := 0; fi*perFile < len(chunks); fi++ {
		lo := fi * perFile
		hi := lo + perFile
		if hi > len(chunks) {
			hi = len(chunks)
		}
		path := fmt.Sprintf("%s/%s-%02d.c", dir, mp.Module, fi)
		var b strings.Builder
		b.WriteString(filePrelude)
		for _, ch := range chunks[lo:hi] {
			b.WriteString(ch.text)
			if ch.bug != nil {
				bug := *ch.bug
				bug.File = path
				c.Planned = append(c.Planned, bug)
			}
			if ch.bait != nil {
				bait := *ch.bait
				bait.File = path
				c.Baits = append(c.Baits, bait)
			}
		}
		c.Files = append(c.Files, File{Path: path, Content: b.String()})
	}
}
