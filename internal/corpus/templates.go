package corpus

import (
	"fmt"
	"strings"
)

// ofHeader is the shared synthetic <linux/of.h>: the smartloop macros the
// P3 instances expand, matching the real kernel definitions' shape.
const ofHeader = `
#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
#define for_each_child_of_node(parent, child) \
	for (child = of_get_next_child(parent, 0); child; \
	     child = of_get_next_child(parent, child))
#define for_each_available_child_of_node(parent, child) \
	for (child = of_get_next_available_child(parent, 0); child; \
	     child = of_get_next_available_child(parent, child))
#define for_each_node_by_name(dn, name) \
	for (dn = of_find_node_by_name(0, name); dn; \
	     dn = of_find_node_by_name(dn, name))
#define for_each_node_by_type(dn, type) \
	for (dn = of_find_node_by_type(0, type); dn; \
	     dn = of_find_node_by_type(dn, type))
#define for_each_compatible_node(dn, type, compat) \
	for (dn = of_find_compatible_node(0, type, compat); dn; \
	     dn = of_find_compatible_node(dn, compat))
#define for_each_cpu_node(dn) \
	for (dn = of_get_next_cpu_node(0); dn; dn = of_get_next_cpu_node(dn))
#define device_for_each_child_node(dev, child) \
	for (child = device_get_next_child_node(dev, 0); child; \
	     child = device_get_next_child_node(dev, child))
#define fwnode_for_each_child_node(fwnode, child) \
	for (child = fwnode_get_next_child_node(fwnode, 0); child; \
	     child = fwnode_get_next_child_node(fwnode, child))
#define fwnode_for_each_parent_node(fwnode, parent) \
	for (parent = fwnode_get_parent(fwnode); parent; \
	     parent = fwnode_get_parent(parent))
`

// smartLoopIsFwnode reports whether a loop iterates fwnode handles rather
// than device nodes (affects variable types in the template).
func smartLoopIsFwnode(loop string) bool {
	return strings.Contains(loop, "fwnode") || strings.Contains(loop, "device_for_each")
}

// loopHasParentArg reports whether the smartloop takes (container, itervar)
// rather than (itervar, match-arg).
func loopHasParentArg(loop string) bool {
	switch loop {
	case "for_each_child_of_node", "for_each_available_child_of_node",
		"device_for_each_child_node", "fwnode_for_each_child_node",
		"fwnode_for_each_parent_node":
		return true
	}
	return false
}

// pickFindAPI selects a hidden-get (returns-ref) API from the module's
// bug-caused APIs, falling back to a default.
func pickFindAPI(apis []string) string {
	for _, a := range apis {
		if strings.HasPrefix(a, "of_find_") || strings.HasPrefix(a, "of_get_") ||
			strings.HasPrefix(a, "of_parse_") || strings.HasPrefix(a, "of_graph_") {
			return a
		}
	}
	return "of_find_compatible_node"
}

// pickLoopAPI selects a smartloop macro from the module's bug-caused APIs.
func pickLoopAPI(apis []string) string {
	for _, a := range apis {
		if strings.Contains(a, "for_each") {
			return a
		}
	}
	return "for_each_child_of_node"
}

// findCall renders a call to a find-like API with plausible arguments; the
// cursor argument (where one exists) is NULL.
func findCall(api string) string {
	switch api {
	case "of_find_compatible_node":
		return `of_find_compatible_node(0, 0, "vendor,ip-block")`
	case "of_find_matching_node":
		return "of_find_matching_node(0, match_table)"
	case "of_find_node_by_name":
		return `of_find_node_by_name(0, "port")`
	case "of_find_node_by_type":
		return `of_find_node_by_type(0, "cpu")`
	case "of_find_node_by_path":
		return `of_find_node_by_path("/soc/bus")`
	case "of_find_node_by_phandle":
		return "of_find_node_by_phandle(handle)"
	case "of_parse_phandle":
		return `of_parse_phandle(np, "clocks", 0)`
	case "of_get_parent":
		return "of_get_parent(np)"
	case "of_get_child_by_name":
		return `of_get_child_by_name(np, "regulator")`
	case "of_get_node":
		return "of_get_node(np)"
	case "of_graph_get_port_by_id":
		return "of_graph_get_port_by_id(np, 1)"
	case "of_graph_get_port_parent":
		return "of_graph_get_port_parent(np)"
	default:
		return api + "(np)"
	}
}

// needsNpParam reports whether the find call references a local `np`
// parameter node.
func needsNpParam(api string) bool {
	switch api {
	case "of_parse_phandle", "of_get_parent", "of_get_child_by_name",
		"of_get_node", "of_graph_get_port_by_id", "of_graph_get_port_parent":
		return true
	}
	return false
}

// genP1 emits a return-error deviation bug (Listing 3's shape).
func genP1(fn string) string {
	return fmt.Sprintf(`
static int %s(struct platform_device *pdev)
{
	struct stm32_crc *crc = platform_get_drvdata(pdev);
	int ret;

	ret = pm_runtime_get_sync(crc->dev);
	if (ret < 0)
		return ret;
	crc_disable_hw(crc);
	pm_runtime_put_noidle(crc->dev);
	return 0;
}
`, fn)
}

// genP2 emits a return-NULL deviation bug: the counted pointer is
// dereferenced before any NULL check. The reference itself is balanced so
// only P2 fires.
func genP2(fn, api string) string {
	if api == "mdesc_grab" {
		return fmt.Sprintf(`
static int %s(void)
{
	struct mdesc_handle *hp = mdesc_grab();
	int count = hp->num_nodes;

	mdesc_release(hp);
	return count;
}
`, fn)
	}
	param := ""
	if needsNpParam(api) {
		param = "struct device_node *np"
	}
	return fmt.Sprintf(`
static int %s(%s)
{
	struct device_node *target = %s;
	int reg = target->phandle;

	of_node_put(target);
	return reg;
}
`, fn, param, findCall(api))
}

// genP3 emits a smartloop break bug (Listing 4's shape).
func genP3(fn, loop string) string {
	iterType := "struct device_node *"
	if smartLoopIsFwnode(loop) {
		iterType = "struct fwnode_handle *"
	}
	if loopHasParentArg(loop) {
		parentType := "struct device_node *"
		if smartLoopIsFwnode(loop) {
			parentType = "struct fwnode_handle *"
		}
		return fmt.Sprintf(`
static int %s(%sparent)
{
	%schild;
	int found = 0;

	%s(parent, child) {
		if (node_matches(child)) {
			found = 1;
			break;
		}
	}
	return found;
}
`, fn, parentType, iterType, loop)
	}
	arg := `"match"`
	switch loop {
	case "for_each_matching_node":
		arg = "match_table"
	case "for_each_compatible_node":
		arg = `0, "vendor,ip"` // (dn, type, compat)
	case "for_each_cpu_node":
		arg = ""
	}
	extra := ""
	call := loop + "(dn"
	if arg != "" {
		call += ", " + arg
	}
	call += ")"
	return fmt.Sprintf(`
static int %s(void)
{
	%sdn;
	int hits = 0;
	%s
	%s {
		hits++;
		if (hits > 4)
			break;
	}
	return hits;
}
`, fn, iterType, extra, call)
}

// genP4Leak emits a hidden-get missing-put bug (Listing 1's shape).
func genP4Leak(fn, api string, variant int) string {
	param := "void"
	if needsNpParam(api) {
		param = "struct device_node *np"
	}
	switch variant % 3 {
	case 0: // plain fall-off leak
		return fmt.Sprintf(`
static int %s(%s)
{
	struct device_node *found = %s;

	if (!found)
		return -ENODEV;
	configure_block(found);
	return 0;
}
`, fn, param, findCall(api))
	case 1: // early-error leak (one path puts, the leak path predates it)
		return fmt.Sprintf(`
static int %s(%s)
{
	struct device_node *found = %s;
	u32 value;

	if (!found)
		return -ENODEV;
	if (read_property(found, &value))
		return -EINVAL;
	apply_value(value);
	return 0;
}
`, fn, param, findCall(api))
	default: // discarded reference at the call site
		return fmt.Sprintf(`
static void %s(%s)
{
	%s;
	mark_scanned();
}
`, fn, param, findCall(api))
	}
}

// genP4MissingGet emits the missing-increase flavour: the cursor parameter's
// caller-owned reference is consumed by the hidden put.
func genP4MissingGet(fn string) string {
	return fmt.Sprintf(`
static struct device_node *%s(struct device_node *from)
{
	struct device_node *next = of_find_matching_node(from, match_table);

	return next;
}
`, fn)
}

// genP5 emits an error-handling-path leak.
func genP5(fn, api string) string {
	if strings.Contains(api, "for_each") || !strings.HasPrefix(api, "of_") {
		api = "of_find_compatible_node"
	}
	param := ""
	if needsNpParam(api) {
		param = "struct device_node *np"
	}
	return fmt.Sprintf(`
static int %s(%s)
{
	struct device_node *port = %s;
	int err;

	if (!port)
		return -ENODEV;
	err = enable_port(port);
	if (err)
		goto fail;
	err = start_port(port);
	if (err)
		goto fail;
	of_node_put(port);
	return 0;
fail:
	disable_controller();
	return err;
}
`, fn, param, findCall(api))
}

// genP6 emits an inter-paired leak: the register side caches a reference
// that the unregister side never drops. Returns the whole snippet (two
// functions plus the state variable).
func genP6(base string, useCallbackStruct bool) string {
	if useCallbackStruct {
		return fmt.Sprintf(`
static struct device_node *%s_state;

static int %s_probe(void)
{
	struct device_node *np = of_find_node_by_path("/soc/%s");

	if (!np)
		return -ENODEV;
	%s_state = np;
	return 0;
}

static int %s_remove(void)
{
	%s_state = 0;
	return 0;
}

static struct platform_driver %s_driver = {
	.probe = %s_probe,
	.remove = %s_remove,
};
`, base, base, base, base, base, base, base, base, base)
	}
	return fmt.Sprintf(`
static struct device_node *%s_cached;

static int %s_register(void)
{
	%s_cached = of_find_node_by_path("/soc/%s");
	if (!%s_cached)
		return -ENODEV;
	return 0;
}

static void %s_unregister(void)
{
	%s_cached = 0;
}
`, base, base, base, base, base, base, base)
}

// genP7 emits a direct-free bug plus the refcounted struct it frees.
func genP7(fn, structName string) string {
	return fmt.Sprintf(`
struct %s {
	struct kref ref;
	char *label;
	int slot;
};

static void %s(struct %s *obj)
{
	unhook_slot(obj->slot);
	kfree(obj);
}
`, structName, fn, structName)
}

// genP8 emits a use-after-decrease bug (Listing 2 / Listing 6's shape).
// pinned adds an extra hold so the object provably survives the put — the
// developer patch-reject flavour.
func genP8(fn, api string, pinned bool) string {
	obj, typ, use := "sk", "struct sock *", "sk->sk_err = 0;"
	hold := "sock_hold(sk);"
	switch api {
	case "usb_serial_put":
		obj, typ, use = "serial", "struct usb_serial *", "mutex_unlock(&serial->disc_mutex);"
		hold = "usb_serial_get(serial);"
	case "nvmet_fc_tgt_q_put":
		obj, typ, use = "queue", "struct nvmet_fc_tgt_queue *", "queue->cpu = -1;"
		hold = "nvmet_fc_tgt_q_get(queue);"
	}
	pin := ""
	if pinned {
		pin = "\n\t" + hold
	}
	return fmt.Sprintf(`
static void %s(%s%s)
{%s
	%s(%s);
	%s
	log_detach(%s->refcnt_hint);
}
`, fn, typ, obj, pin, api, obj, use, obj)
}

// genP9 emits a reference-escape bug: a counted pointer stored into a global
// without an increment around the escape point.
func genP9(fn, global string, variant int) string {
	if variant%2 == 0 {
		return fmt.Sprintf(`
static struct device_node *%s;

static void %s(struct device_node *np)
{
	%s = np;
}
`, global, fn, global)
	}
	return fmt.Sprintf(`
static void %s(struct holder_state *out, struct sock *sk)
{
	out->watched = sk;
}
`, fn)
}

// genFPBait emits the paper's false-positive shape (Listing 5): the guard
// condition guarantees the reference is NULL on the unbalanced path, but the
// invariant lives outside the checker's reasoning.
func genFPBait(fn string) string {
	return fmt.Sprintf(`
static int %s(struct lpfc_host *phba)
{
	struct device_node *evt_node = of_find_node_by_name(0, "events");
	int err = event_list_empty(phba);

	if (err)
		return 0;
	consume_event(evt_node);
	of_node_put(evt_node);
	return 1;
}
`, fn)
}

// genClean emits correct code exercising the same APIs (fixed variants and
// neutral logic), used both as noise and as false-positive controls. The
// later variants are hard negatives: each is the correct twin of one bug
// pattern.
func genClean(fn string, variant int) string {
	switch variant % 10 {
	case 0:
		return fmt.Sprintf(`
static int %s(void)
{
	struct device_node *found = of_find_compatible_node(0, 0, "vendor,good");

	if (!found)
		return -ENODEV;
	configure_block(found);
	of_node_put(found);
	return 0;
}
`, fn)
	case 1:
		return fmt.Sprintf(`
static int %s(struct device_node *parent)
{
	struct device_node *child;
	int count = 0;

	for_each_child_of_node(parent, child) {
		if (!node_matches(child))
			continue;
		if (count > 8) {
			of_node_put(child);
			break;
		}
		count++;
	}
	return count;
}
`, fn)
	case 2:
		return fmt.Sprintf(`
static int %s(struct my_ctl *ctl, u32 mask)
{
	u32 state = ctl->state;
	int shift;

	for (shift = 0; shift < 32; shift++) {
		if (mask & (1 << shift))
			state ^= (1 << shift);
	}
	switch (state & 0x3) {
	case 0:
		return 0;
	case 1:
		return reprogram(ctl, state);
	default:
		return -EINVAL;
	}
}
`, fn)
	case 3:
		return fmt.Sprintf(`
static int %s(struct platform_device *pdev)
{
	struct my_ctl *ctl = platform_get_drvdata(pdev);
	int ret;

	ret = pm_runtime_get_sync(ctl->dev);
	if (ret < 0) {
		pm_runtime_put_noidle(ctl->dev);
		return ret;
	}
	refresh_hw(ctl);
	pm_runtime_put(ctl->dev);
	return 0;
}
`, fn)
	case 4:
		return fmt.Sprintf(`
static int %s(struct device_node *np, const char *name)
{
	struct device_node *child = of_get_child_by_name(np, name);
	int err;

	if (!child)
		return -ENODEV;
	err = validate_node(child);
	if (err) {
		of_node_put(child);
		return err;
	}
	register_node(child);
	of_node_put(child);
	return 0;
}
`, fn)
	case 5: // hard negative for P8: every use precedes the put
		return fmt.Sprintf(`
static void %s(struct sock *sk)
{
	sk->sk_err = 0;
	flush_backlog(sk->sk_receive_queue);
	sock_put(sk);
}
`, fn)
	case 6: // hard negative for P9: hold taken right at the escape point
		return fmt.Sprintf(`
static struct sock *%s_slot;

static void %s(struct sock *sk)
{
	sock_hold(sk);
	%s_slot = sk;
}
`, fn, fn, fn)
	case 7: // hard negative for P3: goto out with the put on the label
		return fmt.Sprintf(`
static int %s(struct device_node *parent)
{
	struct device_node *child;
	int err = 0;

	for_each_child_of_node(parent, child) {
		if (misconfigured(child)) {
			err = -EINVAL;
			goto out;
		}
	}
	return 0;
out:
	of_node_put(child);
	return err;
}
`, fn)
	case 8: // hard negative for P4: ownership transferred via out-parameter
		return fmt.Sprintf(`
static int %s(struct holder_state *out)
{
	struct device_node *np = of_find_node_by_path("/soc/xfer");

	if (!np)
		return -ENODEV;
	out->watched = np;
	return 0;
}
`, fn)
	default: // hard negative for P2: IS_ERR-style guard before use
		return fmt.Sprintf(`
static int %s(void)
{
	struct mdesc_handle *hp = mdesc_grab();
	int n;

	if (!hp)
		return -ENODEV;
	n = hp->num_nodes;
	mdesc_release(hp);
	return n;
}
`, fn)
	}
}
