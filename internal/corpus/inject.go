package corpus

// BugListing returns the canonical buggy listing for one anti-pattern,
// suitable for appending to an existing generated source file, plus the name
// of the function the checkers are expected to flag (for P6 that is the
// register-side function, not fn itself). It exists so test harnesses
// (internal/difftest's bug-injection transforms) can seed a known bug without
// re-deriving template shapes; the returned text is exactly what Generate
// would emit for the same pattern with default APIs.
func BugListing(p PatternID, fn string) (text, buggyFn string) {
	switch p {
	case "P1":
		return genP1(fn), fn
	case "P2":
		return genP2(fn, "mdesc_grab"), fn
	case "P3":
		return genP3(fn, "for_each_child_of_node"), fn
	case "P4":
		return genP4Leak(fn, "of_find_compatible_node", 0), fn
	case "P5":
		return genP5(fn, "of_find_compatible_node"), fn
	case "P6":
		return genP6(fn, false), fn + "_register"
	case "P7":
		return genP7(fn, fn+"_obj"), fn
	case "P8":
		return genP8(fn, "sock_put", false), fn
	case "P9":
		return genP9(fn, fn+"_slot", 0), fn
	}
	return "", ""
}

// CleanListing returns a correct function exercising the refcounting APIs
// (the same pool Generate draws clean functions from). Appending it to a
// file must never change any checker's report set.
func CleanListing(fn string, variant int) string {
	return genClean(fn, variant)
}
