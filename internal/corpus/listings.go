package corpus

// Listing is one of the paper's code listings as a compilable source with
// the expected checker behaviour attached.
type Listing struct {
	Number int
	Title  string
	Path   string
	Source string
	// ExpectPattern is the anti-pattern a checker should report ("" for
	// clean or out-of-scope listings); ExpectFunction the reported function.
	ExpectPattern  string
	ExpectFunction string
	// ExpectConfirmed says whether the dynamic oracle should confirm the
	// report (the pinned Listing 6 case is expected to be rejected).
	ExpectConfirmed bool
}

// Listings returns faithful reconstructions of the paper's Listings 1–6.
func Listings() []Listing {
	return []Listing{
		{
			Number: 1,
			Title:  "A Missing-Refcounting Bug (drivers/nvmem/core.c)",
			Path:   "drivers/nvmem/core.c",
			Source: `
struct nvmem_device *__nvmem_device_get(void *data)
{
	int err;
	struct device *dev = bus_find_device(nvmem_bus_type, data);
	if (!dev)
		return 0;
	err = nvmem_validate(dev);
	if (err)
		return 0;
	return to_nvmem_device(dev);
}
`,
			ExpectPattern: "P4", ExpectFunction: "__nvmem_device_get",
			ExpectConfirmed: true,
		},
		{
			Number: 2,
			Title:  "A Misplacing-Refcounting Bug (drivers/usb/serial/console.c)",
			Path:   "drivers/usb/serial/console.c",
			Source: `
static int usb_console_setup(struct usb_serial *serial)
{
	usb_serial_put(serial);
	mutex_unlock(&serial->disc_mutex);
	return 0;
}
`,
			ExpectPattern: "P8", ExpectFunction: "usb_console_setup",
			ExpectConfirmed: true,
		},
		{
			Number: 3,
			Title:  "An Intra-Missing Bug Caused By Return-Error (stm32-crc32.c)",
			Path:   "drivers/crypto/stm32/stm32-crc32.c",
			Source: `
static int stm32_crc_remove(struct platform_device *pdev)
{
	struct stm32_crc *crc = platform_get_drvdata(pdev);
	int ret = pm_runtime_get_sync(crc->dev);
	if (ret < 0)
		return ret;
	crc_teardown(crc);
	pm_runtime_put_noidle(crc->dev);
	return 0;
}
`,
			ExpectPattern: "P1", ExpectFunction: "stm32_crc_remove",
			ExpectConfirmed: true,
		},
		{
			Number: 4,
			Title:  "A SmartLoop and A Bug Caused by Loop Break (pm-arm.c)",
			Path:   "drivers/soc/bcm/brcmstb/pm/pm-arm.c",
			Source: `
#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
static int brcmstb_pm_probe(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (of_device_is_available(dn))
			break;
	}
	return 0;
}
`,
			ExpectPattern: "P3", ExpectFunction: "brcmstb_pm_probe",
			ExpectConfirmed: true,
		},
		{
			Number: 5,
			Title:  "A False Positive Example (drivers/scsi/lpfc/lpfc_bsg.c shape)",
			Path:   "drivers/scsi/lpfc/lpfc_bsg.c",
			Source: `
static int lpfc_bsg_collect(struct lpfc_host *phba)
{
	struct device_node *evt_node = of_find_node_by_name(0, "events");
	int err = event_list_empty(phba);
	if (err)
		return 0;
	consume_event(evt_node);
	of_node_put(evt_node);
	return 1;
}
`,
			// The checkers DO report this (the guarding invariant lives
			// outside static scope); ground truth says it is clean. That
			// is the paper's false positive.
			ExpectPattern: "P5", ExpectFunction: "lpfc_bsg_collect",
			ExpectConfirmed: true, // replay cannot see the invariant either
		},
		{
			Number: 6,
			Title:  "A Patch Reject Example (net/ipv4/ping.c)",
			Path:   "net/ipv4/ping.c",
			Source: `
void ping_unhash(struct sock *sk)
{
	sock_hold(sk);
	sock_put(sk);
	sk->inet_num = 0;
	sock_prot_inuse_add(net, sk->sk_prot, -1);
}
`,
			// Reported as UAD, but the extra hold pins the object: the
			// oracle (like the developers) declines to confirm.
			ExpectPattern: "P8", ExpectFunction: "ping_unhash",
			ExpectConfirmed: false,
		},
	}
}
