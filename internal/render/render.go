// Package render formats the study's tables and figures as aligned text,
// Markdown, or CSV, so the tools can feed both terminals and downstream
// plotting/reporting pipelines. It also owns the checker-report output
// format (report.go) shared by the refcheck CLI and the refcheckd server.
package render

import (
	"fmt"
	"strings"
)

// Format selects the output syntax.
type Format int

// Formats.
const (
	Text Format = iota
	Markdown
	CSV
)

// ParseFormat maps a flag value to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "", "text":
		return Text, nil
	case "markdown", "md":
		return Markdown, nil
	case "csv":
		return CSV, nil
	default:
		return Text, fmt.Errorf("unknown format %q (want text, markdown or csv)", s)
	}
}

// Table is a generic rendered table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row, stringifying each cell.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	s = strings.TrimRight(s, "0")
	return strings.TrimSuffix(s, ".")
}

// Render emits the table in the format.
func (t *Table) Render(f Format) string {
	switch f {
	case Markdown:
		return t.renderMarkdown()
	case CSV:
		return t.renderCSV()
	default:
		return t.renderText()
	}
}

func (t *Table) widths() []int {
	w := make([]int, len(t.Header))
	for i, h := range t.Header {
		w[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(w) && len(c) > w[i] {
				w[i] = len(c)
			}
		}
	}
	return w
}

func (t *Table) renderText() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	w := t.widths()
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i < len(w) {
				fmt.Fprintf(&b, "%-*s", w[i], c)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

func (t *Table) renderMarkdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, row := range t.Rows {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		b.WriteString("| " + strings.Join(cells, " | ") + " |\n")
	}
	return b.String()
}

func (t *Table) renderCSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a simple (x, y) figure series for CSV/plot export.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	X      []string
	Y      []float64
}

// Render emits the series: CSV as two columns, text/markdown as an ASCII
// bar chart.
func (s *Series) Render(f Format) string {
	if f == CSV {
		t := Table{Header: []string{s.XLabel, s.YLabel}}
		for i := range s.X {
			t.AddRow(s.X[i], s.Y[i])
		}
		return t.Render(CSV)
	}
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", s.Title)
	}
	maxY := 0.0
	for _, y := range s.Y {
		if y > maxY {
			maxY = y
		}
	}
	wx := len(s.XLabel)
	for _, x := range s.X {
		if len(x) > wx {
			wx = len(x)
		}
	}
	const barWidth = 48
	for i := range s.X {
		bar := 0
		if maxY > 0 {
			bar = int(s.Y[i] / maxY * barWidth)
		}
		fmt.Fprintf(&b, "%-*s  %8s  %s\n", wx, s.X[i], trimFloat(s.Y[i]),
			strings.Repeat("#", bar))
	}
	return b.String()
}
