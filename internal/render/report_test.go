package render

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/clex"
	"repro/internal/core"
)

func sampleReports() []core.Report {
	return []core.Report{
		{
			Pattern: core.P1, Impact: core.Leak, Function: "alpha",
			File: "drivers/a.c", Pos: clex.Pos{File: "drivers/a.c", Line: 10},
			Object: "dev", API: "kobject_get", Message: "missing put on error path",
			Suggestion: "kobject_put(dev);",
		},
		{
			Pattern: core.P8, Impact: core.UAF, Function: "beta",
			File: "net/b.c", Pos: clex.Pos{File: "net/b.c", Line: 42},
			Object: "sk", API: "sock_put", Message: "use after decrease",
		},
	}
}

func TestWriteTextShape(t *testing.T) {
	var b strings.Builder
	WriteText(&b, sampleReports(), core.UnitSummary{
		Files: 2, Functions: 2, DiscoveredStructs: 1, DiscoveredAPIs: 3, DiscoveredLoops: 0,
	})
	out := b.String()
	for _, want := range []string{
		"    suggestion: kobject_put(dev);\n",
		"\n2 reports (P1:1, P8:1) — Leak 1, UAF 1, NPD 0\n",
		"analyzed 2 files, 2 functions (discovered: 1 structs, 3 APIs, 0 smartloops)\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteText output missing %q:\n%s", want, out)
		}
	}
	// The per-report diagnostic lines must be the reports' own String form.
	r := sampleReports()[0]
	if !strings.Contains(out, r.String()+"\n") {
		t.Errorf("WriteText output missing report line %q", r.String())
	}
}

func TestWriteTextEmpty(t *testing.T) {
	var b strings.Builder
	WriteText(&b, nil, core.UnitSummary{})
	want := "\n0 reports — Leak 0, UAF 0, NPD 0\n" +
		"analyzed 0 files, 0 functions (discovered: 0 structs, 0 APIs, 0 smartloops)\n"
	if b.String() != want {
		t.Errorf("empty render:\n got %q\nwant %q", b.String(), want)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, sampleReports()); err != nil {
		t.Fatal(err)
	}
	var got []struct {
		Pattern, Impact, File, Function, Object, API string
		Line                                         int
		Message, Suggestion                          string
	}
	if err := json.Unmarshal([]byte(b.String()), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if len(got) != 2 || got[0].Pattern != "P1" || got[0].Line != 10 || got[1].Impact != "UAF" {
		t.Errorf("unexpected decoded reports: %+v", got)
	}
	// An empty report list must encode as [], not null — the CLI has always
	// allocated the slice before encoding.
	b.Reset()
	if err := WriteJSON(&b, nil); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(b.String()) != "[]" {
		t.Errorf("empty list encodes as %q, want []", b.String())
	}
}

func TestFilterPattern(t *testing.T) {
	rs := sampleReports()
	if got := FilterPattern(rs, ""); len(got) != 2 {
		t.Errorf("empty filter: got %d reports", len(got))
	}
	got := FilterPattern(rs, "P8")
	if len(got) != 1 || got[0].Function != "beta" {
		t.Errorf("P8 filter: got %+v", got)
	}
	if got := FilterPattern(rs, "P5"); len(got) != 0 {
		t.Errorf("P5 filter: got %d reports, want 0", len(got))
	}
}
