package render

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
)

// This file renders checker output the way cmd/refcheck prints it. It exists
// so every consumer of the pipeline — the refcheck CLI and the refcheckd
// analysis server — produces byte-identical bytes for the same run: the
// serving layer's "responses equal CLI output" contract is enforced by
// sharing the formatter, not by keeping two printers in sync by hand.

// FilterPattern returns the reports matching one anti-pattern ID ("P4");
// an empty pattern returns reports unchanged. This is refcheck's -pattern.
func FilterPattern(reports []core.Report, pattern string) []core.Report {
	if pattern == "" {
		return reports
	}
	var filtered []core.Report
	for _, r := range reports {
		if string(r.Pattern) == pattern {
			filtered = append(filtered, r)
		}
	}
	return filtered
}

// WriteReports writes one diagnostic line per report plus its suggestion
// line, exactly as refcheck prints them.
func WriteReports(w io.Writer, reports []core.Report) {
	for _, r := range reports {
		fmt.Fprintln(w, r.String())
		if r.Suggestion != "" {
			fmt.Fprintf(w, "    suggestion: %s\n", strings.ReplaceAll(r.Suggestion, "\n", " "))
		}
	}
}

// WriteSummary writes the trailing per-pattern/per-impact count block and the
// unit summary line, exactly as refcheck prints them.
func WriteSummary(w io.Writer, reports []core.Report, sum core.UnitSummary) {
	perPattern := map[core.Pattern]int{}
	perImpact := map[core.Impact]int{}
	for _, r := range reports {
		perPattern[r.Pattern]++
		perImpact[r.Impact]++
	}
	var pats []string
	for p := range perPattern {
		pats = append(pats, string(p))
	}
	sort.Strings(pats)
	fmt.Fprintf(w, "\n%d reports", len(reports))
	if len(pats) > 0 {
		fmt.Fprint(w, " (")
		for i, p := range pats {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%s:%d", p, perPattern[core.Pattern(p)])
		}
		fmt.Fprint(w, ")")
	}
	fmt.Fprintf(w, " — Leak %d, UAF %d, NPD %d\n",
		perImpact[core.Leak], perImpact[core.UAF], perImpact[core.NPD])
	fmt.Fprintf(w, "analyzed %d files, %d functions (discovered: %d structs, %d APIs, %d smartloops)\n",
		sum.Files, sum.Functions,
		sum.DiscoveredStructs, sum.DiscoveredAPIs, sum.DiscoveredLoops)
}

// WriteText writes the full default (non-JSON) refcheck output: the report
// listing followed by the summary block.
func WriteText(w io.Writer, reports []core.Report, sum core.UnitSummary) {
	WriteReports(w, reports)
	WriteSummary(w, reports, sum)
}

// jsonReport is the -json element shape. The field set (and its order) is
// part of the CLI's output contract.
type jsonReport struct {
	Pattern, Impact, File, Function, Object, API string
	Line                                         int
	Message, Suggestion                          string
}

// WriteJSON writes the reports as the indented JSON array refcheck -json
// prints (the JSON mode emits no summary block).
func WriteJSON(w io.Writer, reports []core.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	out := make([]jsonReport, 0, len(reports))
	for _, r := range reports {
		out = append(out, jsonReport{
			Pattern: string(r.Pattern), Impact: r.Impact.String(),
			File: r.File, Function: r.Function, Object: r.Object,
			API: r.API, Line: r.Pos.Line,
			Message: r.Message, Suggestion: r.Suggestion,
		})
	}
	return enc.Encode(out)
}
