package render

import (
	"strings"
	"testing"
)

func sample() *Table {
	t := &Table{
		Title:  "Table 4",
		Header: []string{"subsystem", "bugs", "share"},
	}
	t.AddRow("drivers", 182, 51.7)
	t.AddRow("arch", 157, 44.600)
	t.AddRow("net, misc", 2, 0.5)
	return t
}

func TestParseFormat(t *testing.T) {
	cases := map[string]Format{
		"": Text, "text": Text, "markdown": Markdown, "md": Markdown, "csv": CSV,
	}
	for in, want := range cases {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("xml should be rejected")
	}
}

func TestTextAlignment(t *testing.T) {
	out := sample().Render(Text)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + 3 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns align: "bugs" values start at the same offset.
	h := strings.Index(lines[1], "bugs")
	r := strings.Index(lines[2], "182")
	if h != r {
		t.Errorf("misaligned columns:\n%s", out)
	}
}

func TestMarkdown(t *testing.T) {
	out := sample().Render(Markdown)
	for _, want := range []string{
		"### Table 4",
		"| subsystem | bugs | share |",
		"| --- | --- | --- |",
		"| drivers | 182 | 51.7 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestCSVQuoting(t *testing.T) {
	out := sample().Render(CSV)
	if !strings.Contains(out, "\"net, misc\",2,0.5") {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.HasPrefix(out, "subsystem,bugs,share\n") {
		t.Errorf("header wrong:\n%s", out)
	}
	tbl := &Table{Header: []string{"a"}}
	tbl.AddRow(`say "hi"`)
	if got := tbl.Render(CSV); !strings.Contains(got, `"say ""hi"""`) {
		t.Errorf("quote escaping wrong: %s", got)
	}
}

func TestFloatTrimming(t *testing.T) {
	tbl := &Table{Header: []string{"v"}}
	tbl.AddRow(1.500)
	tbl.AddRow(2.0)
	tbl.AddRow(0.277)
	out := tbl.Render(CSV)
	for _, want := range []string{"1.5\n", "2\n", "0.277\n"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSeriesBarChart(t *testing.T) {
	s := &Series{
		Title: "Figure 1", XLabel: "year", YLabel: "bugs",
		X: []string{"2005", "2022"},
		Y: []float64{6, 134},
	}
	out := s.Render(Text)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines:\n%s", out)
	}
	if strings.Count(lines[2], "#") <= strings.Count(lines[1], "#") {
		t.Errorf("bar lengths not proportional:\n%s", out)
	}
	csv := s.Render(CSV)
	if !strings.HasPrefix(csv, "year,bugs\n2005,6\n") {
		t.Errorf("csv:\n%s", csv)
	}
}

func TestEmptySeries(t *testing.T) {
	s := &Series{XLabel: "x", YLabel: "y"}
	if out := s.Render(Text); out != "" && strings.Contains(out, "#") {
		t.Errorf("empty series rendered bars: %q", out)
	}
}
