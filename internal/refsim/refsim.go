// Package refsim is the dynamic-confirmation substrate: it replays the
// witness event trace attached to a checker report against a simulated
// refcounted heap and decides whether the claimed impact actually manifests.
//
// The paper's "confirmed" column records kernel developers accepting patches;
// offline we substitute a mechanical oracle with kernel-like semantics:
//
//   - every object carries a reference counter; a parameter object enters
//     the function with one caller-owned reference;
//   - increments/decrements follow the witness; a decrement to zero frees
//     the object (and MayFree APIs release attached resources);
//   - for NPD claims the simulator injects the failure case of
//     may-return-NULL APIs;
//   - at function exit the caller epilogue runs: the caller dereferences and
//     eventually drops its own references, and any reference that escaped to
//     long-lived state is dereferenced later.
//
// A leak is confirmed when a counted object remains live and unreachable; a
// UAF when a dereference touches freed memory (during replay or in the
// epilogue); an NPD when the injected NULL is dereferenced. Notably, the
// paper's developer-rejected UAD patches (the "pinned" cases where another
// reference provably keeps the object alive) come out as unconfirmed here
// for the same reason the developers gave.
package refsim

import (
	"fmt"

	"repro/internal/clex"
	"repro/internal/semantics"
)

// Claim is what a checker report asserts about a witness trace.
type Claim struct {
	Impact string // "Leak", "UAF", "NPD"
	Object string // canonical object key the report names ("" = any)
	// AllowEscaped treats escaped references as leak candidates too (used
	// for inter-paired (P6) claims where the release side was replayed and
	// still never dropped the stored reference).
	AllowEscaped bool
}

// Verdict is the replay outcome. Detail explains the outcome; for confirmed
// verdicts it is rendered only by ReplayTrace (alongside the transcript) —
// Replay leaves it empty, since bulk confirmation consumes only Confirmed.
type Verdict struct {
	Confirmed bool
	Detail    string
}

// object is one simulated kernel object.
type object struct {
	key        string
	count      int
	freed      bool
	null       bool // NPD injection: the producing API "failed"
	paramOwned bool // the caller holds one reference beyond ours
	escaped    int  // references stored into long-lived state
	returned   bool // ownership transferred to the caller
	everDecred bool
}

// heap tracks objects by the base name of their key.
type heap map[string]*object

func (h heap) get(key string) *object {
	base := semantics.BaseOf(key)
	if o, ok := h[base]; ok {
		return o
	}
	// First touch of an unknown name: model it as a caller-owned object
	// (function parameters and ambient state enter with one reference).
	o := &object{key: key, count: 1, paramOwned: true}
	h[base] = o
	return o
}

// Replay executes the witness and evaluates the claim. It skips transcript
// construction entirely — confirmation replays every report's witness, and
// the per-step Sprintf was a measurable slice of the checking phase.
func Replay(witness []semantics.Event, claim Claim) Verdict {
	v, _ := replay(witness, claim, false)
	return v
}

// ReplayTrace is Replay plus a human-readable transcript of every simulated
// step — the raw material for UAD proof-of-concept generation (§5.4.3 calls
// PoC generation for UAD bugs "an interesting research direction";
// internal/poc renders these transcripts into C harnesses).
func ReplayTrace(witness []semantics.Event, claim Claim) (Verdict, []string) {
	return replay(witness, claim, true)
}

func replay(witness []semantics.Event, claim Claim, wantLog bool) (Verdict, []string) {
	h := heap{}
	var log []string
	trace := func(format string, args ...any) {
		log = append(log, fmt.Sprintf(format, args...))
	}
	// Failure details are recorded as (object, position) pairs and formatted
	// only when the verdict actually needs them — replay runs once per
	// candidate report, and the eager per-event Sprintfs were a visible
	// slice of the checking phase's allocations.
	var (
		npdObj, uafObj, dfObj string
		npdPos, uafPos, dfPos clex.Pos
		dfCount               int
		npdSet, dfSet         bool
		uafKind               int // 0 none, 1 deref-after-free, 2 consumed by callee, 3 escaped
	)

	for _, ev := range witness {
		switch ev.Op {
		case semantics.OpInc:
			if ev.Obj == "" {
				// A reference produced and immediately dropped on the
				// floor: model it as an anonymous live object.
				base := fmt.Sprintf("<anon:%s>", ev.Pos)
				h[base] = &object{key: base, count: 1}
				if wantLog {
					trace("%s: %s produced a reference nobody captured (count=1, unreachable)", ev.Pos, ev.API)
				}
				continue
			}
			base := semantics.BaseOf(ev.Obj)
			if ev.Info != nil && ev.Info.ReturnsRef {
				o := &object{key: ev.Obj, count: 1}
				if claim.Impact == "NPD" && ev.Info.MayReturnNull &&
					(claim.Object == "" || semantics.BaseOf(claim.Object) == base) {
					o.null = true // failure injection
					o.count = 0
					if wantLog {
						trace("%s: %s FAILS (injected): %s = NULL", ev.Pos, ev.API, ev.Obj)
					}
				} else {
					if wantLog {
						trace("%s: %s returns %s with count=1", ev.Pos, ev.API, ev.Obj)
					}
				}
				if ev.EscapesVia != "" {
					o.escaped++
				}
				h[base] = o
			} else {
				o := h.get(ev.Obj)
				o.count++
				if wantLog {
					trace("%s: %s(%s) -> count=%d", ev.Pos, ev.API, ev.Obj, o.count)
				}
			}
		case semantics.OpDec:
			o := h.get(ev.Obj)
			if o.null {
				continue // kernel puts tolerate NULL
			}
			o.count--
			o.everDecred = true
			if o.count <= 0 {
				o.freed = true
				if wantLog {
					trace("%s: %s(%s) -> count=0, OBJECT FREED", ev.Pos, ev.API, ev.Obj)
				}
			} else {
				if wantLog {
					trace("%s: %s(%s) -> count=%d", ev.Pos, ev.API, ev.Obj, o.count)
				}
			}
		case semantics.OpFree:
			o := h.get(ev.Obj)
			if o.count > 0 {
				// Freeing a counted object directly bypasses its release
				// callback: attached resources never get cleaned up (P7).
				dfObj, dfCount, dfPos, dfSet = ev.Obj, o.count, ev.Pos, true
			}
			o.freed = true
			o.count = 0
		case semantics.OpDeref:
			o := h.get(ev.Obj)
			switch {
			case o.null:
				npdObj, npdPos, npdSet = ev.Obj, ev.Pos, true
				if wantLog {
					trace("%s: dereference of NULL %s -> CRASH (NPD)", ev.Pos, ev.Obj)
				}
			case o.freed:
				uafObj, uafPos, uafKind = ev.Obj, ev.Pos, 1
				if wantLog {
					trace("%s: dereference of freed %s -> USE-AFTER-FREE", ev.Pos, ev.Obj)
				}
			}
		case semantics.OpAssign:
			src := h.get(ev.Obj)
			if ev.EscapesVia != "" {
				src.escaped++
			}
			if ev.AssignTarget != "" {
				// Alias the target base to the same object.
				h[semantics.BaseOf(ev.AssignTarget)] = src
			}
		case semantics.OpReturn:
			if ev.Obj == "" {
				continue
			}
			base := semantics.BaseOf(ev.Obj)
			if o, ok := h[base]; ok {
				o.returned = true
			}
		}
	}

	// Caller epilogue: the caller accesses parameter-owned objects once
	// more (its reference is still logically live), eventually drops its
	// own reference, and any reference that escaped to long-lived state is
	// dereferenced later still.
	seen := map[*object]bool{}
	for _, o := range h {
		if o.null || seen[o] {
			continue
		}
		seen[o] = true
		if o.paramOwned {
			if o.everDecred && o.freed && uafKind == 0 {
				// The caller's next access of its own reference.
				uafObj, uafKind = o.key, 2
			}
			o.count--
			if o.count <= 0 {
				o.freed = true
			}
		}
		if o.escaped > 0 && o.freed && uafKind == 0 {
			uafObj, uafKind = o.key, 3
		}
	}

	match := func(o *object) bool {
		return claim.Object == "" ||
			semantics.BaseOf(claim.Object) == semantics.BaseOf(o.key)
	}

	// Confirmed-verdict details are rendered only alongside a transcript
	// (ReplayTrace): confirmation replays every candidate report and the
	// confirmed-leak Sprintf was one of the last per-replay allocations on
	// the checking phase's hot path. Unconfirmed details are static strings
	// and stay — they are what test failures print.
	switch claim.Impact {
	case "NPD":
		if npdSet {
			v := Verdict{Confirmed: true}
			if wantLog {
				v.Detail = fmt.Sprintf("NULL dereference of %s at %s", npdObj, npdPos)
			}
			return v, log
		}
		return Verdict{Detail: "no NULL dereference under failure injection"}, log
	case "UAF":
		if uafKind != 0 {
			v := Verdict{Confirmed: true}
			if wantLog {
				switch uafKind {
				case 1:
					v.Detail = fmt.Sprintf("use of freed %s at %s", uafObj, uafPos)
				case 2:
					v.Detail = fmt.Sprintf("caller's reference to %s was consumed (count hit zero inside the callee)", uafObj)
				case 3:
					v.Detail = fmt.Sprintf("escaped reference to %s outlives the object", uafObj)
				}
			}
			return v, log
		}
		return Verdict{Detail: "object provably alive at every access"}, log
	default: // Leak
		if dfSet {
			v := Verdict{Confirmed: true}
			if wantLog {
				v.Detail = fmt.Sprintf("%s freed directly with count %d; release callback skipped at %s",
					dfObj, dfCount, dfPos)
			}
			return v, log
		}
		for base, o := range h {
			if !match(o) || o.null || o.freed || o.returned {
				continue
			}
			if o.escaped > 0 && !claim.AllowEscaped {
				continue
			}
			// The epilogue already dropped the caller's own reference, so
			// anything left is unreachable.
			live := o.count
			if live > 0 {
				v := Verdict{Confirmed: true}
				if wantLog {
					v.Detail = fmt.Sprintf("%s still holds %d unreachable reference(s) at exit", base, live)
				}
				return v, log
			}
		}
		return Verdict{Detail: "all acquired references released or transferred"}, log
	}
}
