package refsim

import (
	"runtime"
	"sync"

	"repro/internal/obs"
	"repro/internal/semantics"
)

// Job is one confirmation request: a witness trace plus the claim to
// evaluate against it.
type Job struct {
	Witness []semantics.Event
	Claim   Claim
}

// ReplayAll replays a batch of jobs and returns the verdicts in job order.
// Each replay is independent (Replay touches no shared state), so jobs fan
// out across workers; 0 means GOMAXPROCS, 1 forces sequential replay. The
// verdict for a job is a pure function of its witness and claim, so the
// worker count cannot change the result.
func ReplayAll(jobs []Job, workers int) []Verdict {
	return ReplayAllSpan(jobs, workers, nil)
}

// ReplayAllSpan is ReplayAll under an observability span: when parent is
// non-nil a "refsim" child span covers the batch, refsim.replays counts jobs
// replayed and refsim.confirmed the verdicts that confirmed their claim.
func ReplayAllSpan(jobs []Job, workers int, parent *obs.Span) []Verdict {
	sp := parent.Child("refsim").Int("jobs", len(jobs))
	defer sp.End()
	out := replayAll(jobs, workers)
	if reg := sp.Reg(); reg != nil {
		confirmed := int64(0)
		for _, v := range out {
			if v.Confirmed {
				confirmed++
			}
		}
		reg.Add("refsim.replays", int64(len(jobs)))
		reg.Add("refsim.confirmed", confirmed)
	}
	return out
}

func replayAll(jobs []Job, workers int) []Verdict {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make([]Verdict, len(jobs))
	if workers > 1 && len(jobs) > 1 {
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					out[i] = Replay(jobs[i].Witness, jobs[i].Claim)
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	} else {
		for i := range jobs {
			out[i] = Replay(jobs[i].Witness, jobs[i].Claim)
		}
	}
	return out
}
