package refsim_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpg"
	"repro/internal/refsim"
)

// ExampleReplay confirms a use-after-decrease report dynamically.
func ExampleReplay() {
	src := `
void ping_unhash(struct sock *sk)
{
	sock_put(sk);
	sk->inet_num = 0;
}
`
	_, reports := core.CheckSources([]cpg.Source{{Path: "net/ipv4/ping.c", Content: src}}, nil)
	r := reports[0]
	v := refsim.Replay(r.Witness, refsim.Claim{Impact: r.Impact.String(), Object: r.Object})
	fmt.Println(v.Confirmed)
	// Output:
	// true
}
