package refsim_test

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/cpg"
	"repro/internal/refsim"
)

// ExampleReplay confirms a use-after-decrease report dynamically.
func ExampleReplay() {
	src := `
void ping_unhash(struct sock *sk)
{
	sock_put(sk);
	sk->inet_num = 0;
}
`
	run, _ := core.Analyze(context.Background(), core.Request{
		Sources: []cpg.Source{{Path: "net/ipv4/ping.c", Content: src}},
	})
	r := run.Reports[0]
	v := refsim.Replay(r.Witness, refsim.Claim{Impact: r.Impact.String(), Object: r.Object})
	fmt.Println(v.Confirmed)
	// Output:
	// true
}
