package refsim

import (
	"testing"
	"testing/quick"

	"repro/internal/apidb"
	"repro/internal/clex"
	"repro/internal/semantics"
)

// synthetic event builders for property tests.

func evInc(obj string) semantics.Event {
	return semantics.Event{Op: semantics.OpInc, Obj: obj,
		Pos: clex.Pos{File: "q.c", Line: 1, Col: 1}}
}

func evDec(obj string) semantics.Event {
	return semantics.Event{Op: semantics.OpDec, Obj: obj,
		Info: &apidb.API{Name: "put", Op: apidb.OpDec, MayFree: true},
		Pos:  clex.Pos{File: "q.c", Line: 2, Col: 1}}
}

func evDeref(obj string) semantics.Event {
	return semantics.Event{Op: semantics.OpDeref, Obj: obj,
		Pos: clex.Pos{File: "q.c", Line: 3, Col: 1}}
}

// Property: a balanced inc/dec sequence on one parameter object never
// confirms a leak, regardless of interleaving.
func TestQuickBalancedNeverLeaks(t *testing.T) {
	f := func(pattern []bool) bool {
		// Build a sequence of inc events, then exactly as many decs,
		// interleaved by the pattern (true = emit pending dec when legal).
		var evs []semantics.Event
		pendingDecs := 0
		for _, p := range pattern {
			if p && pendingDecs > 0 {
				evs = append(evs, evDec("o"))
				pendingDecs--
			} else {
				evs = append(evs, evInc("o"))
				pendingDecs++
			}
		}
		for i := 0; i < pendingDecs; i++ {
			evs = append(evs, evDec("o"))
		}
		v := Replay(evs, Claim{Impact: "Leak", Object: "o"})
		return !v.Confirmed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: N incs with fewer decs always confirms a leak for a non-param
// reference source.
func TestQuickUnbalancedAlwaysLeaks(t *testing.T) {
	f := func(n, short uint8) bool {
		incs := int(n%5) + 2
		decs := incs - 1 - int(short%2) // always at least one short
		if decs < 0 {
			decs = 0
		}
		var evs []semantics.Event
		// First inc creates the object via a returns-ref API.
		first := evInc("o")
		first.Info = &apidb.API{Name: "find", Op: apidb.OpInc, ReturnsRef: true}
		evs = append(evs, first)
		for i := 1; i < incs; i++ {
			evs = append(evs, evInc("o"))
		}
		for i := 0; i < decs; i++ {
			evs = append(evs, evDec("o"))
		}
		v := Replay(evs, Claim{Impact: "Leak", Object: "o"})
		return v.Confirmed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a dereference is a UAF exactly when the running count for a
// caller-owned object has reached zero at that point.
func TestQuickUADThreshold(t *testing.T) {
	f := func(extraHolds uint8) bool {
		holds := int(extraHolds % 4)
		var evs []semantics.Event
		for i := 0; i < holds; i++ {
			evs = append(evs, evInc("sk"))
		}
		evs = append(evs, evDec("sk"), evDeref("sk"))
		v := Replay(evs, Claim{Impact: "UAF", Object: "sk"})
		// Entry count 1 (caller) + holds − 1 dec: zero only when holds==0.
		return v.Confirmed == (holds == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: replay is deterministic — identical witnesses yield identical
// verdicts and transcripts.
func TestQuickReplayDeterministic(t *testing.T) {
	f := func(ops []uint8) bool {
		var evs []semantics.Event
		for _, op := range ops {
			switch op % 3 {
			case 0:
				evs = append(evs, evInc("x"))
			case 1:
				evs = append(evs, evDec("x"))
			default:
				evs = append(evs, evDeref("x"))
			}
		}
		v1, t1 := ReplayTrace(evs, Claim{Impact: "UAF", Object: "x"})
		v2, t2 := ReplayTrace(evs, Claim{Impact: "UAF", Object: "x"})
		if v1 != v2 || len(t1) != len(t2) {
			return false
		}
		for i := range t1 {
			if t1[i] != t2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
