package refsim_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/cpg"
	"repro/internal/refsim"
)

// analyze runs the checkers on a single source file.
func analyze(t *testing.T, src string) []core.Report {
	t.Helper()
	run, err := core.Analyze(context.Background(), core.Request{
		Sources: []cpg.Source{{Path: "d.c", Content: src}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return run.Reports
}

// reportFor runs the checkers on src and returns the single report with the
// wanted pattern.
func reportFor(t *testing.T, src string, pattern core.Pattern) core.Report {
	t.Helper()
	reports := analyze(t, src)
	for _, r := range reports {
		if r.Pattern == pattern {
			return r
		}
	}
	t.Fatalf("no %s report in %d reports", pattern, len(reports))
	return core.Report{}
}

func claimFor(r core.Report) refsim.Claim {
	return refsim.Claim{
		Impact:       r.Impact.String(),
		Object:       r.Object,
		AllowEscaped: r.Pattern == core.P6,
	}
}

func TestConfirmP1Leak(t *testing.T) {
	r := reportFor(t, `
static int f(struct my_dev *crc)
{
	int ret = pm_runtime_get_sync(crc->dev);
	if (ret < 0)
		return ret;
	pm_runtime_put_noidle(crc->dev);
	return 0;
}`, core.P1)
	v := refsim.Replay(r.Witness, claimFor(r))
	if !v.Confirmed {
		t.Fatalf("P1 not confirmed: %s", v.Detail)
	}
}

func TestConfirmP2NPD(t *testing.T) {
	r := reportFor(t, `
static int f(void)
{
	struct mdesc_handle *hp = mdesc_grab();
	int n = hp->num_nodes;
	mdesc_release(hp);
	return n;
}`, core.P2)
	v := refsim.Replay(r.Witness, claimFor(r))
	if !v.Confirmed {
		t.Fatalf("P2 not confirmed: %s", v.Detail)
	}
}

const loopHeader = `
#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
`

func TestConfirmP3Leak(t *testing.T) {
	r := reportFor(t, loopHeader+`
static int f(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (want(dn))
			break;
	}
	return 0;
}`, core.P3)
	v := refsim.Replay(r.Witness, claimFor(r))
	if !v.Confirmed {
		t.Fatalf("P3 not confirmed: %s", v.Detail)
	}
}

func TestConfirmP4Leak(t *testing.T) {
	r := reportFor(t, `
static int f(void)
{
	struct device_node *np = of_find_node_by_path("/soc");
	if (!np)
		return -ENODEV;
	use_node(np);
	return 0;
}`, core.P4)
	v := refsim.Replay(r.Witness, claimFor(r))
	if !v.Confirmed {
		t.Fatalf("P4 not confirmed: %s", v.Detail)
	}
}

func TestConfirmP4MissingGetUAF(t *testing.T) {
	r := reportFor(t, `
static struct device_node *f(struct device_node *from)
{
	struct device_node *np = of_find_matching_node(from, matches);
	return np;
}`, core.P4)
	v := refsim.Replay(r.Witness, claimFor(r))
	if !v.Confirmed {
		t.Fatalf("P4 missing-get not confirmed: %s", v.Detail)
	}
}

func TestConfirmP7DirectFree(t *testing.T) {
	r := reportFor(t, `
struct widget { struct kref ref; char *name; };
static void f(struct widget *w)
{
	kfree(w);
}`, core.P7)
	v := refsim.Replay(r.Witness, claimFor(r))
	if !v.Confirmed {
		t.Fatalf("P7 not confirmed: %s", v.Detail)
	}
}

func TestConfirmP8UAF(t *testing.T) {
	r := reportFor(t, `
static void f(struct sock *sk)
{
	sock_put(sk);
	sk->sk_err = 0;
}`, core.P8)
	v := refsim.Replay(r.Witness, claimFor(r))
	if !v.Confirmed {
		t.Fatalf("P8 not confirmed: %s", v.Detail)
	}
}

func TestPinnedP8NotConfirmed(t *testing.T) {
	// The developer patch-reject case: an extra hold pins the object, so
	// the dereference after the put is provably safe in this version.
	r := reportFor(t, `
static void f(struct sock *sk)
{
	sock_hold(sk);
	sock_put(sk);
	sk->sk_err = 0;
}`, core.P8)
	v := refsim.Replay(r.Witness, claimFor(r))
	if v.Confirmed {
		t.Fatalf("pinned P8 wrongly confirmed: %s", v.Detail)
	}
}

func TestConfirmP9EscapeUAF(t *testing.T) {
	r := reportFor(t, `
static struct sock *monitor_sk;
static void f(struct sock *sk)
{
	monitor_sk = sk;
}`, core.P9)
	v := refsim.Replay(r.Witness, claimFor(r))
	if !v.Confirmed {
		t.Fatalf("P9 not confirmed: %s", v.Detail)
	}
}

func TestConfirmP6InterPaired(t *testing.T) {
	r := reportFor(t, `
static struct device_node *cached;
static int foo_register(void)
{
	cached = of_find_node_by_path("/foo");
	return 0;
}
static void foo_unregister(void)
{
}`, core.P6)
	v := refsim.Replay(r.Witness, claimFor(r))
	if !v.Confirmed {
		t.Fatalf("P6 not confirmed: %s", v.Detail)
	}
}

func TestConfirmP5ErrorPathLeak(t *testing.T) {
	r := reportFor(t, `
static int f(struct device_node *np)
{
	int err;
	of_node_get(np);
	err = register_thing(np);
	if (err)
		goto fail;
	of_node_put(np);
	return 0;
fail:
	return err;
}`, core.P5)
	v := refsim.Replay(r.Witness, claimFor(r))
	if !v.Confirmed {
		t.Fatalf("P5 not confirmed: %s", v.Detail)
	}
}

func TestBaitNotConfirmedAsReal(t *testing.T) {
	// The Listing-5-shaped FP: replay cannot know the domain invariant, so
	// the oracle-level status comes from ground truth, but the leak claim
	// still replays consistently (this pins the behaviour).
	r := reportFor(t, `
static int f(struct lpfc_host *phba)
{
	struct device_node *evt_node = of_find_node_by_name(0, "events");
	int err = event_list_empty(phba);
	if (err)
		return 0;
	consume_event(evt_node);
	of_node_put(evt_node);
	return 1;
}`, core.P5)
	_ = refsim.Replay(r.Witness, claimFor(r)) // must not panic; verdict is advisory
}

func TestCleanCodeNoLeakVerdict(t *testing.T) {
	// Manufactured claim over balanced events must not confirm.
	reports := analyze(t, `
static int f(struct device_node *np)
{
	of_node_get(np);
	of_node_put(np);
	return 0;
}`)
	if len(reports) != 0 {
		t.Fatalf("unexpected reports: %+v", reports)
	}
}
