package clex

// Interning: the lexer produces token spellings by slicing the source buffer
// (zero-copy), and canonicalizes the spellings that dominate kernel code —
// keywords, common identifiers, and the refcounting API surface — through a
// fixed read-only table. The table is built once at init and never mutated
// afterwards, so lookups are lock-free and safe from any number of
// concurrent lexers (the parallel front end lexes files on every worker).
//
// Interning serves two purposes on the hot path:
//   - repeated spellings across millions of tokens collapse to one backing
//     string, so maps keyed by identifier text hash pointer-equal keys;
//   - keyword classification happens in the same lookup that canonicalizes
//     the spelling, instead of a second map probe per identifier.

// internEntry is one canonical spelling with its token kind.
type internEntry struct {
	text string
	kind Kind
}

var internTab map[string]internEntry

// commonIdents are non-keyword spellings frequent enough in kernel C to be
// worth canonicalizing: ubiquitous locals, the refcounting API families the
// checkers look for, and preprocessor-significant names.
var commonIdents = []string{
	// preprocessor / language
	"NULL", "defined", "__VA_ARGS__", "true", "false",
	"__KERNEL__", "__init", "__exit", "__user", "__iomem", "__must_check",
	"EXPORT_SYMBOL", "EXPORT_SYMBOL_GPL", "MODULE_LICENSE",
	// ubiquitous identifiers
	"ret", "err", "error", "rc", "i", "j", "n", "len", "size", "count",
	"dev", "np", "node", "child", "parent", "name", "data", "priv", "flags",
	"buf", "p", "ptr", "obj", "res", "out", "fail", "done", "retval",
	"struct", "dev_err", "dev_warn", "printk", "pr_err", "pr_warn",
	// refcounted structures (§6.1)
	"device_node", "kobject", "kref", "refcount_t", "atomic_t", "device",
	"platform_device", "net_device", "sk_buff", "usage", "refcnt", "refcount",
	// refcounting APIs (Appendix A inventory, heavily repeated in every TU)
	"of_node_get", "of_node_put", "of_find_node_by_name",
	"of_find_compatible_node", "of_find_matching_node", "of_get_parent",
	"of_get_next_child", "of_parse_phandle", "kref_get", "kref_put",
	"kref_init", "kobject_get", "kobject_put", "get_device", "put_device",
	"refcount_inc", "refcount_dec", "refcount_dec_and_test",
	"atomic_inc", "atomic_dec", "atomic_dec_and_test",
	"kfree", "kzalloc", "kmalloc", "kvfree",
	// smartloops
	"for_each_child_of_node", "for_each_available_child_of_node",
	"for_each_matching_node", "for_each_compatible_node",
	"for_each_node_by_name", "for_each_node_by_type",
}

func init() {
	internTab = make(map[string]internEntry, len(keywords)+len(commonIdents))
	for kw := range keywords {
		internTab[kw] = internEntry{text: kw, kind: Keyword}
	}
	for _, id := range commonIdents {
		if _, clash := internTab[id]; !clash {
			internTab[id] = internEntry{text: id, kind: Ident}
		}
	}
}

// Intern returns the canonical copy of s when one exists, else s itself.
// Useful for callers that build identifier-keyed tables.
func Intern(s string) string {
	if e, ok := internTab[s]; ok {
		return e.text
	}
	return s
}
