package clex

// Lines is struct-of-arrays storage for a token stream split into logical
// lines: one flat token array plus a parallel offset array, with lines
// exposed as zero-copy views. It replaces the [][]Token shape whose
// per-line backing arrays dominated the front end's allocation profile —
// splitting an N-line buffer now costs two allocations, not N.
//
// Views returned by Line are capped at the line boundary, so a consumer
// appending to a view can never clobber the next line; consumers must still
// treat the tokens themselves as immutable (header lines are shared by
// every translation unit of a run, and macro bodies alias them).
type Lines struct {
	// Toks is the flat token array, newline tokens excluded.
	Toks []Token
	// Off holds len+1 offsets into Toks: line i is Toks[Off[i]:Off[i+1]].
	Off []int32
}

// Len returns the number of lines.
func (ln *Lines) Len() int { return len(ln.Off) - 1 }

// Line returns line i as a zero-copy, capacity-capped view into Toks.
func (ln *Lines) Line(i int) []Token {
	lo, hi := ln.Off[i], ln.Off[i+1]
	return ln.Toks[lo:hi:hi]
}

// TokenizeLines lexes src directly into line-split SoA form: token and
// offset storage are presized from the source length, and newline tokens
// mark line boundaries without ever being stored. Semantics match
// Tokenize(KeepNewlines)+line splitting exactly — empty lines are present
// (and empty), a trailing partial line is kept, a trailing newline adds no
// empty line. Stats accounting matches the Tokenize path: every lexed token
// counts, including the discarded newlines.
func TokenizeLines(file, src string, stats *Stats) (*Lines, []error) {
	l := New(file, src, Config{KeepNewlines: true})
	ln := &Lines{
		Toks: make([]Token, 0, len(src)/6+8),
		Off:  make([]int32, 1, len(src)/32+8),
	}
	lexed := int64(0)
	for {
		t := l.Next()
		if t.Kind == EOF {
			break
		}
		lexed++
		if t.Kind == Newline {
			ln.Off = append(ln.Off, int32(len(ln.Toks)))
			continue
		}
		ln.Toks = append(ln.Toks, t)
	}
	if int(ln.Off[len(ln.Off)-1]) != len(ln.Toks) {
		ln.Off = append(ln.Off, int32(len(ln.Toks)))
	}
	if stats != nil {
		stats.Tokens.Add(lexed)
		stats.Errors.Add(int64(len(l.errs)))
	}
	return ln, l.errs
}
