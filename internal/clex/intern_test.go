package clex

import "testing"

// TestInternCanonicalizes: interned spellings share one backing string and
// keep their classification; unknown spellings pass through untouched.
func TestInternCanonicalizes(t *testing.T) {
	src := "of_node_put(np); custom_name(np);"
	toks, errs := Tokenize("t.c", src, Config{})
	if len(errs) != 0 {
		t.Fatalf("unexpected lex errors: %v", errs)
	}
	var put, np, custom *Token
	for i := range toks {
		switch toks[i].Text {
		case "of_node_put":
			put = &toks[i]
		case "np":
			np = &toks[i]
		case "custom_name":
			custom = &toks[i]
		}
	}
	if put == nil || np == nil || custom == nil {
		t.Fatalf("tokens missing from %v", toks)
	}
	if Intern("of_node_put") != put.Text || Intern("np") != np.Text {
		t.Error("interned spellings should round-trip through Intern")
	}
	if Intern("custom_name") != "custom_name" {
		t.Error("unknown spelling must pass through Intern unchanged")
	}
}

// TestInternKeywordsClassified: the intern table must preserve keyword
// classification — "if" is a Keyword, never a plain Ident.
func TestInternKeywordsClassified(t *testing.T) {
	toks, _ := Tokenize("t.c", "if (ret) return;", Config{})
	if toks[0].Kind != Keyword || toks[0].Text != "if" {
		t.Fatalf("keyword misclassified: %+v", toks[0])
	}
	if toks[2].Kind != Ident || toks[2].Text != "ret" {
		t.Fatalf("common ident misclassified: %+v", toks[2])
	}
}

// TestZeroCopySpellingPositions: sliced spellings must not disturb position
// bookkeeping across lines.
func TestZeroCopySpellingPositions(t *testing.T) {
	toks, _ := Tokenize("t.c", "abc def\nxyz 123 \"str\" 'c'", Config{})
	want := []struct {
		text      string
		line, col int
	}{
		{"abc", 1, 1}, {"def", 1, 5},
		{"xyz", 2, 1}, {"123", 2, 5}, {`"str"`, 2, 9}, {"'c'", 2, 15},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Text != w.text || toks[i].Pos.Line != w.line || toks[i].Pos.Col != w.col {
			t.Errorf("token %d: got %q at %d:%d, want %q at %d:%d",
				i, toks[i].Text, toks[i].Pos.Line, toks[i].Pos.Col, w.text, w.line, w.col)
		}
	}
}
