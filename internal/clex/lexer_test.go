package clex

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func lexAll(t *testing.T, src string) []Token {
	t.Helper()
	toks, errs := Tokenize("test.c", src, Config{})
	for _, e := range errs {
		t.Fatalf("unexpected lex error: %v", e)
	}
	return toks
}

func TestIdentifiersAndKeywords(t *testing.T) {
	toks := lexAll(t, "static int of_node_get(struct device_node *np)")
	want := []struct {
		kind Kind
		text string
	}{
		{Keyword, "static"}, {Keyword, "int"}, {Ident, "of_node_get"},
		{LParen, "("}, {Keyword, "struct"}, {Ident, "device_node"},
		{Star, "*"}, {Ident, "np"}, {RParen, ")"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(toks), toks, len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = %v, want %s(%q)", i, toks[i], w.kind, w.text)
		}
	}
}

func TestNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind Kind
	}{
		{"42", IntLit},
		{"0x1f", IntLit},
		{"0755", IntLit},
		{"42UL", IntLit},
		{"1u", IntLit},
		{"3.14", FloatLit},
		{"1e10", FloatLit},
		{"2.5f", FloatLit},
		{"1E-3", FloatLit},
	}
	for _, c := range cases {
		toks := lexAll(t, c.src)
		if len(toks) != 1 {
			t.Errorf("%q: got %d tokens %v, want 1", c.src, len(toks), toks)
			continue
		}
		if toks[0].Kind != c.kind || toks[0].Text != c.src {
			t.Errorf("%q: got %v, want %s(%q)", c.src, toks[0], c.kind, c.src)
		}
	}
}

func TestStringAndCharLiterals(t *testing.T) {
	toks := lexAll(t, `"hello \"world\"" 'a' '\n' '\''`)
	wantKinds := []Kind{StringLit, CharLit, CharLit, CharLit}
	got := kinds(toks)
	if len(got) != len(wantKinds) {
		t.Fatalf("got %v", toks)
	}
	for i := range wantKinds {
		if got[i] != wantKinds[i] {
			t.Errorf("token %d kind = %v, want %v", i, got[i], wantKinds[i])
		}
	}
	if toks[0].Text != `"hello \"world\""` {
		t.Errorf("string text = %q", toks[0].Text)
	}
}

func TestUnterminatedString(t *testing.T) {
	_, errs := Tokenize("t.c", "\"abc\n", Config{})
	if len(errs) == 0 {
		t.Fatal("want error for unterminated string")
	}
}

func TestCommentsDroppedByDefault(t *testing.T) {
	toks := lexAll(t, "a /* block */ b // line\nc")
	if len(toks) != 3 {
		t.Fatalf("got %v, want idents a b c", toks)
	}
	for i, name := range []string{"a", "b", "c"} {
		if toks[i].Text != name {
			t.Errorf("token %d = %v", i, toks[i])
		}
	}
}

func TestCommentsRetained(t *testing.T) {
	toks, _ := Tokenize("t.c", "a /* x */ b", Config{KeepComments: true})
	if len(toks) != 3 || toks[1].Kind != Comment {
		t.Fatalf("got %v", toks)
	}
}

func TestNewlinesRetained(t *testing.T) {
	toks, _ := Tokenize("t.c", "#define X 1\nint y;", Config{KeepNewlines: true})
	var sawNewline bool
	for _, tok := range toks {
		if tok.Kind == Newline {
			sawNewline = true
		}
	}
	if !sawNewline {
		t.Fatalf("no newline token in %v", toks)
	}
}

func TestLineContinuation(t *testing.T) {
	toks, _ := Tokenize("t.c", "#define M(x) \\\n  foo(x)", Config{KeepNewlines: true})
	// The backslash-newline must not produce a Newline token.
	for _, tok := range toks {
		if tok.Kind == Newline {
			t.Fatalf("line continuation produced a newline token: %v", toks)
		}
	}
}

func TestMultiBytePunctuation(t *testing.T) {
	toks := lexAll(t, "a->b <<= 1; c ... ## != >= ++")
	want := []Kind{Ident, Arrow, Ident, ShlAssign, IntLit, Semi, Ident, Ellipsis, HashHash, Ne, Ge, Inc}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPositions(t *testing.T) {
	toks := lexAll(t, "int x;\n  y = 1;")
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("int at %v", toks[0].Pos)
	}
	// 'y' is on line 2, col 3.
	var y Token
	for _, tok := range toks {
		if tok.Text == "y" {
			y = tok
		}
	}
	if y.Pos.Line != 2 || y.Pos.Col != 3 {
		t.Errorf("y at %v, want 2:3", y.Pos)
	}
	if y.Pos.File != "test.c" {
		t.Errorf("file = %q", y.Pos.File)
	}
}

func TestLeadingSpace(t *testing.T) {
	toks := lexAll(t, "a b(c)")
	// b has leading space, ( does not.
	if !toks[1].LeadingSpace {
		t.Error("b should have leading space")
	}
	if toks[2].LeadingSpace {
		t.Error("( should not have leading space")
	}
}

func TestHashToken(t *testing.T) {
	toks, _ := Tokenize("t.c", "#include <linux/of.h>", Config{KeepNewlines: true})
	if toks[0].Kind != Hash {
		t.Fatalf("got %v", toks)
	}
	if toks[1].Text != "include" {
		t.Fatalf("got %v", toks)
	}
}

func TestTokenFromMacro(t *testing.T) {
	tok := Token{Origin: []string{"for_each_child_of_node", "of_find_matching_node"}}
	if !tok.FromMacro("for_each_child_of_node") {
		t.Error("FromMacro outer failed")
	}
	if !tok.FromMacro("of_find_matching_node") {
		t.Error("FromMacro inner failed")
	}
	if tok.FromMacro("other") {
		t.Error("FromMacro false positive")
	}
	if tok.OutermostMacro() != "for_each_child_of_node" {
		t.Errorf("outermost = %q", tok.OutermostMacro())
	}
	if (Token{}).OutermostMacro() != "" {
		t.Error("empty origin should yield empty outermost")
	}
}

func TestKernelSnippetRoundTrip(t *testing.T) {
	src := `
static int stm32_crc_remove(struct platform_device *pdev)
{
	struct stm32_crc *crc = platform_get_drvdata(pdev);
	int ret = pm_runtime_get_sync(crc->dev);
	if (ret < 0)
		return ret;
	pm_runtime_put_noidle(crc->dev);
	return 0;
}
`
	toks := lexAll(t, src)
	if len(toks) < 30 {
		t.Fatalf("too few tokens: %d", len(toks))
	}
	// No token text should be empty.
	for _, tok := range toks {
		if tok.Text == "" {
			t.Errorf("empty token text for %v at %v", tok.Kind, tok.Pos)
		}
	}
}

// Property: lexing never loses identifier-like words — every whitespace
// separated identifier in a generated source appears in the token stream in
// order.
func TestQuickIdentPreservation(t *testing.T) {
	f := func(words []uint8) bool {
		var names []string
		var b strings.Builder
		for i, w := range words {
			name := "id" + string(rune('a'+int(w)%26))
			names = append(names, name)
			if i > 0 {
				b.WriteString(" ")
			}
			b.WriteString(name)
		}
		toks, errs := Tokenize("q.c", b.String(), Config{})
		if len(errs) != 0 {
			return false
		}
		if len(toks) != len(names) {
			return false
		}
		for i, n := range names {
			if toks[i].Text != n || toks[i].Kind != Ident {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: lexer terminates and positions are monotonically non-decreasing
// for arbitrary printable input.
func TestQuickMonotonicPositions(t *testing.T) {
	f := func(raw []byte) bool {
		// Map arbitrary bytes into printable ASCII + newline to avoid
		// degenerate inputs that are all errors.
		src := make([]byte, len(raw))
		for i, b := range raw {
			src[i] = byte(32 + int(b)%95)
			if b%17 == 0 {
				src[i] = '\n'
			}
		}
		toks, _ := Tokenize("q.c", string(src), Config{})
		prev := Pos{Line: 0, Col: 0}
		for _, tok := range toks {
			if tok.Pos.Line < prev.Line {
				return false
			}
			if tok.Pos.Line == prev.Line && tok.Pos.Col < prev.Col {
				return false
			}
			prev = tok.Pos
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
