package clex

import (
	"fmt"
	"sync/atomic"
)

// Config controls optional token retention. The preprocessor needs newlines
// (directives are line-oriented); the parser does not.
type Config struct {
	KeepComments bool
	KeepNewlines bool
	// Stats, when non-nil, accumulates lexer work counters (tokens and
	// diagnostics produced). Purely observational: it never changes the
	// token stream.
	Stats *Stats
}

// Stats counts lexer work across Tokenize calls. Fields are atomic so one
// Stats value can be shared by every worker of a parallel front end; the
// totals are deterministic at any worker count because the set of buffers
// lexed is.
type Stats struct {
	Tokens atomic.Int64
	Errors atomic.Int64
}

// Lexer tokenizes a single source buffer.
type Lexer struct {
	cfg  Config
	src  string
	file string

	off  int
	line int
	col  int

	sawSpace bool
	errs     []error
}

// New returns a lexer over src, reporting positions against the given file
// name.
func New(file, src string, cfg Config) *Lexer {
	return &Lexer{cfg: cfg, src: src, file: file, line: 1, col: 1}
}

// Errors returns all lexical errors encountered so far. Lexing is
// error-tolerant: malformed input yields an error and lexing continues.
func (l *Lexer) Errors() []error { return l.errs }

// Tokenize lexes the whole buffer, excluding the trailing EOF token.
func Tokenize(file, src string, cfg Config) ([]Token, []error) {
	l := New(file, src, cfg)
	// Presize from the source length: kernel C averages ~6 bytes per token,
	// so this usually lands within one growth step of the final size.
	toks := make([]Token, 0, len(src)/6+4)
	for {
		t := l.Next()
		if t.Kind == EOF {
			if cfg.Stats != nil {
				cfg.Stats.Tokens.Add(int64(len(toks)))
				cfg.Stats.Errors.Add(int64(len(l.errs)))
			}
			return toks, l.errs
		}
		toks = append(toks, t)
	}
}

func (l *Lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) errorf(p Pos, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpace consumes spaces, tabs, line continuations and (when not retained)
// comments. It stops at newlines so the caller can emit Newline tokens when
// configured.
func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			l.advance()
			l.sawSpace = true
		case c == '\\' && l.peekAt(1) == '\n':
			l.advance()
			l.advance()
			l.sawSpace = true
		case c == '\\' && l.peekAt(1) == '\r' && l.peekAt(2) == '\n':
			l.advance()
			l.advance()
			l.advance()
			l.sawSpace = true
		default:
			return
		}
	}
}

// Next returns the next token, or an EOF token at end of input.
func (l *Lexer) Next() Token {
	for {
		l.skipSpace()
		if l.off >= len(l.src) {
			return Token{Kind: EOF, Pos: l.pos(), LeadingSpace: l.sawSpace}
		}
		start := l.pos()
		c := l.peek()

		if c == '\n' {
			l.advance()
			l.sawSpace = true
			if l.cfg.KeepNewlines {
				return l.emit(Token{Kind: Newline, Pos: start})
			}
			continue
		}
		if c == '/' && l.peekAt(1) == '/' {
			text := l.lexLineComment()
			l.sawSpace = true
			if l.cfg.KeepComments {
				return l.emit(Token{Kind: Comment, Text: text, Pos: start})
			}
			continue
		}
		if c == '/' && l.peekAt(1) == '*' {
			text := l.lexBlockComment(start)
			l.sawSpace = true
			if l.cfg.KeepComments {
				return l.emit(Token{Kind: Comment, Text: text, Pos: start})
			}
			continue
		}

		switch {
		case isIdentStart(c):
			return l.emit(l.lexIdent(start))
		case c >= '0' && c <= '9':
			return l.emit(l.lexNumber(start))
		case c == '.' && isDigit(l.peekAt(1)):
			return l.emit(l.lexNumber(start))
		case c == '\'':
			return l.emit(l.lexCharLit(start))
		case c == '"':
			return l.emit(l.lexStringLit(start))
		default:
			if t, ok := l.lexPunct(start); ok {
				return l.emit(t)
			}
			// Invalid byte: reported and consumed by lexPunct; loop so a
			// long run of garbage is skipped iteratively, not recursively.
		}
	}
}

func (l *Lexer) emit(t Token) Token {
	t.LeadingSpace = l.sawSpace
	l.sawSpace = false
	return t
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *Lexer) lexIdent(start Pos) Token {
	// Identifier bytes never include newlines or continuations, so the
	// spelling is a contiguous slice of the source: zero-copy, and the
	// line/column bookkeeping reduces to a column bump.
	startOff := l.off
	for l.off < len(l.src) && isIdentCont(l.src[l.off]) {
		l.off++
	}
	l.col += l.off - startOff
	raw := l.src[startOff:l.off]
	if e, ok := internTab[raw]; ok {
		return Token{Kind: e.kind, Text: e.text, Pos: start}
	}
	return Token{Kind: Ident, Text: raw, Pos: start}
}

func (l *Lexer) lexNumber(start Pos) Token {
	// Numeric literals are newline-free, so the spelling is sliced from the
	// source rather than copied byte by byte.
	startOff := l.off
	isFloat := false
	// Hex / octal / binary prefixes.
	if l.peek() == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.off += 2
		for l.off < len(l.src) && isHexDigit(l.src[l.off]) {
			l.off++
		}
	} else {
		for l.off < len(l.src) {
			c := l.src[l.off]
			switch {
			case isDigit(c):
				l.off++
			case c == '.':
				isFloat = true
				l.off++
			case (c == 'e' || c == 'E') && (isDigit(l.peekAt(1)) || ((l.peekAt(1) == '+' || l.peekAt(1) == '-') && isDigit(l.peekAt(2)))):
				isFloat = true
				l.off += 2 // e, then sign or digit
			default:
				goto suffix
			}
		}
	}
suffix:
	for l.off < len(l.src) {
		c := l.src[l.off]
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' || (isFloat && (c == 'f' || c == 'F')) {
			l.off++
		} else {
			break
		}
	}
	l.col += l.off - startOff
	kind := IntLit
	if isFloat {
		kind = FloatLit
	}
	return Token{Kind: kind, Text: l.src[startOff:l.off], Pos: start}
}

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *Lexer) lexCharLit(start Pos) Token {
	// The consumed bytes are contiguous in the source; advance() keeps the
	// line bookkeeping (escaped newlines can appear inside), and the
	// spelling is sliced rather than rebuilt.
	startOff := l.off
	l.advance() // opening quote
	for l.off < len(l.src) {
		c := l.peek()
		if c == '\\' {
			l.advance()
			if l.off < len(l.src) {
				l.advance()
			}
			continue
		}
		l.advance()
		if c == '\'' {
			return Token{Kind: CharLit, Text: l.src[startOff:l.off], Pos: start}
		}
		if c == '\n' {
			break
		}
	}
	l.errorf(start, "unterminated character literal")
	return Token{Kind: CharLit, Text: l.src[startOff:l.off], Pos: start}
}

func (l *Lexer) lexStringLit(start Pos) Token {
	startOff := l.off
	l.advance() // opening quote
	for l.off < len(l.src) {
		c := l.peek()
		if c == '\\' {
			l.advance()
			if l.off < len(l.src) {
				l.advance()
			}
			continue
		}
		if c == '\n' {
			break
		}
		l.advance()
		if c == '"' {
			return Token{Kind: StringLit, Text: l.src[startOff:l.off], Pos: start}
		}
	}
	l.errorf(start, "unterminated string literal")
	return Token{Kind: StringLit, Text: l.src[startOff:l.off], Pos: start}
}

func (l *Lexer) lexLineComment() string {
	startOff := l.off
	for l.off < len(l.src) && l.src[l.off] != '\n' {
		l.off++
	}
	l.col += l.off - startOff
	return l.src[startOff:l.off]
}

func (l *Lexer) lexBlockComment(start Pos) string {
	startOff := l.off
	l.advance() // '/'
	l.advance() // '*'
	for l.off < len(l.src) {
		if l.peek() == '*' && l.peekAt(1) == '/' {
			l.advance()
			l.advance()
			return l.src[startOff:l.off]
		}
		l.advance()
	}
	l.errorf(start, "unterminated block comment")
	return l.src[startOff:l.off]
}

// punct2 and punct3 map multi-byte punctuation to kinds; longest match wins.
var punct3 = map[string]Kind{
	"<<=": ShlAssign, ">>=": ShrAssign, "...": Ellipsis,
}

var punct2 = map[string]Kind{
	"+=": PlusAssign, "-=": MinusAssign, "*=": StarAssign, "/=": SlashAssign,
	"%=": PercentAssign, "&=": AmpAssign, "|=": PipeAssign, "^=": CaretAssign,
	"++": Inc, "--": Dec, "==": Eq, "!=": Ne, "<=": Le, ">=": Ge,
	"&&": AndAnd, "||": OrOr, "<<": Shl, ">>": Shr, "->": Arrow, "##": HashHash,
}

var punct1 = map[byte]Kind{
	'(': LParen, ')': RParen, '{': LBrace, '}': RBrace,
	'[': LBracket, ']': RBracket, ';': Semi, ',': Comma, ':': Colon,
	'?': Question, '=': Assign, '+': Plus, '-': Minus, '*': Star,
	'/': Slash, '%': Percent, '<': Lt, '>': Gt, '!': Not, '&': Amp,
	'|': Pipe, '^': Caret, '~': Tilde, '.': Dot, '#': Hash,
}

func (l *Lexer) lexPunct(start Pos) (Token, bool) {
	if l.off+3 <= len(l.src) {
		if k, ok := punct3[l.src[l.off:l.off+3]]; ok {
			l.advance()
			l.advance()
			l.advance()
			return Token{Kind: k, Text: k.String(), Pos: start}, true
		}
	}
	if l.off+2 <= len(l.src) {
		if k, ok := punct2[l.src[l.off:l.off+2]]; ok {
			l.advance()
			l.advance()
			return Token{Kind: k, Text: k.String(), Pos: start}, true
		}
	}
	c := l.advance()
	if k, ok := punct1[c]; ok {
		return Token{Kind: k, Text: k.String(), Pos: start}, true
	}
	l.errorf(start, "unexpected character %q", c)
	// The bad byte is consumed; the caller's scan loop continues after it.
	return Token{}, false
}
