// Package clex implements a lexer for the C dialect used by the Linux
// kernel (C99 plus the GNU extensions that appear in kernel headers).
//
// The lexer is the first stage of the checker pipeline described in §6.1 of
// the paper: its token stream feeds the preprocessor (internal/cpp), which in
// turn feeds the parser (internal/cparse). Tokens carry precise source
// positions and, after macro expansion, an origin-macro provenance chain that
// later stages use to recognize "smartloop" contexts.
package clex

import (
	"fmt"
	"strconv"
)

// Kind classifies a token.
type Kind int

// Token kinds. Punctuation kinds are named after their spelling.
const (
	EOF Kind = iota
	Ident
	Keyword
	IntLit
	CharLit
	StringLit
	FloatLit
	Comment // retained only when Config.KeepComments is set
	Newline // retained only when Config.KeepNewlines is set (cpp needs them)
	Hash    // '#' at any position; cpp decides whether it starts a directive
	HashHash

	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Semi
	Comma
	Colon
	Question
	Ellipsis

	Assign     // =
	PlusAssign // +=
	MinusAssign
	StarAssign
	SlashAssign
	PercentAssign
	AmpAssign
	PipeAssign
	CaretAssign
	ShlAssign
	ShrAssign

	Plus
	Minus
	Star
	Slash
	Percent
	Inc // ++
	Dec // --

	Eq // ==
	Ne
	Lt
	Gt
	Le
	Ge

	AndAnd
	OrOr
	Not

	Amp
	Pipe
	Caret
	Tilde
	Shl
	Shr

	Dot
	Arrow // ->
)

// KindMax is the largest valid Kind value — the decode-side validity bound
// for serialized tokens (internal/cpg's cache codec).
const KindMax = Arrow

var kindNames = map[Kind]string{
	EOF: "EOF", Ident: "Ident", Keyword: "Keyword", IntLit: "IntLit",
	CharLit: "CharLit", StringLit: "StringLit", FloatLit: "FloatLit",
	Comment: "Comment", Newline: "Newline", Hash: "#", HashHash: "##",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semi: ";", Comma: ",", Colon: ":",
	Question: "?", Ellipsis: "...",
	Assign: "=", PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=", PercentAssign: "%=", AmpAssign: "&=",
	PipeAssign: "|=", CaretAssign: "^=", ShlAssign: "<<=", ShrAssign: ">>=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Inc: "++", Dec: "--",
	Eq: "==", Ne: "!=", Lt: "<", Gt: ">", Le: "<=", Ge: ">=",
	AndAnd: "&&", OrOr: "||", Not: "!",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Shl: "<<", Shr: ">>",
	Dot: ".", Arrow: "->",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a source position.
type Pos struct {
	File string
	Line int // 1-based
	Col  int // 1-based, in bytes
}

// String renders the position in the conventional file:line:col form. It is
// on the checker hot path (report keys, per-event dedup), so it appends with
// strconv instead of going through fmt.
func (p Pos) String() string {
	b := make([]byte, 0, len(p.File)+12)
	if p.File != "" {
		b = append(b, p.File...)
		b = append(b, ':')
	}
	b = strconv.AppendInt(b, int64(p.Line), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, int64(p.Col), 10)
	return string(b)
}

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token.
type Token struct {
	Kind Kind
	Text string // exact source spelling (for Ident/Keyword/literals)
	Pos  Pos

	// Origin is the chain of macro names this token was expanded from,
	// outermost first. It is empty for tokens that appear literally in the
	// source and is populated by internal/cpp during expansion.
	Origin []string

	// LeadingSpace records whether whitespace preceded the token; the
	// preprocessor uses it when stringizing.
	LeadingSpace bool
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Ident, Keyword, IntLit, CharLit, StringLit, FloatLit, Comment:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// FromMacro reports whether the token was produced by expanding the named
// macro (at any nesting depth).
func (t Token) FromMacro(name string) bool {
	for _, m := range t.Origin {
		if m == name {
			return true
		}
	}
	return false
}

// OutermostMacro returns the outermost macro the token was expanded from, or
// "" if the token is literal source text.
func (t Token) OutermostMacro() string {
	if len(t.Origin) == 0 {
		return ""
	}
	return t.Origin[0]
}

// keywords is the C99 + kernel-GNU keyword set. Kernel-specific qualifiers
// that behave like no-ops for our analysis (e.g. __init) are handled by the
// parser, not the lexer.
var keywords = map[string]bool{
	"auto": true, "break": true, "case": true, "char": true, "const": true,
	"continue": true, "default": true, "do": true, "double": true,
	"else": true, "enum": true, "extern": true, "float": true, "for": true,
	"goto": true, "if": true, "inline": true, "int": true, "long": true,
	"register": true, "restrict": true, "return": true, "short": true,
	"signed": true, "sizeof": true, "static": true, "struct": true,
	"switch": true, "typedef": true, "union": true, "unsigned": true,
	"void": true, "volatile": true, "while": true,
	// GNU / kernel
	"__attribute__": true, "__inline__": true, "__asm__": true,
	"typeof": true, "__typeof__": true, "_Bool": true,
}

// IsKeyword reports whether s is lexed as a keyword.
func IsKeyword(s string) bool { return keywords[s] }
