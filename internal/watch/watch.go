// Package watch implements the refcheck -watch edit loop: a dependency-free
// mtime/size poller over source directories that triggers re-analysis when a
// .c or .h file appears, changes, or disappears. Polling (rather than
// platform file-event APIs) keeps the loop portable and deterministic to
// test; against the tiered analysis cache a one-file edit costs one file's
// front-end recompute, so even aggressive intervals stay cheap.
package watch

import (
	"context"
	"io/fs"
	"path/filepath"
	"time"
)

// Snapshot is the poll state: for every watched source file, the (size,
// mtime) pair that stands in for its content.
type Snapshot map[string]fileState

type fileState struct {
	size    int64
	modTime time.Time
}

// Scan walks the roots and records every .c/.h file's state. Walk errors on
// individual entries are skipped (a file deleted mid-walk is simply absent
// from the snapshot, which the differ reports as a change on the next tick).
func Scan(roots []string) Snapshot {
	snap := Snapshot{}
	for _, root := range roots {
		filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				if d != nil && d.IsDir() {
					return filepath.SkipDir
				}
				return nil
			}
			if d.IsDir() {
				return nil
			}
			if ext := filepath.Ext(path); ext != ".c" && ext != ".h" {
				return nil
			}
			info, ierr := d.Info()
			if ierr != nil {
				return nil
			}
			snap[path] = fileState{size: info.Size(), modTime: info.ModTime()}
			return nil
		})
	}
	return snap
}

// Diff returns the paths that changed between two snapshots — modified,
// added, or removed — in no particular order.
func Diff(old, cur Snapshot) []string {
	var changed []string
	for path, st := range cur {
		if prev, ok := old[path]; !ok || prev != st {
			changed = append(changed, path)
		}
	}
	for path := range old {
		if _, ok := cur[path]; !ok {
			changed = append(changed, path)
		}
	}
	return changed
}

// Config configures a watch loop.
type Config struct {
	// Roots are the directories to poll.
	Roots []string
	// Interval is the polling period (default 1s).
	Interval time.Duration
	// MaxRuns stops the loop after this many Run invocations (0 = no
	// limit; the loop runs until ctx is canceled). The initial run counts.
	MaxRuns int
	// Run is invoked for the initial state and then once per detected
	// change, with the paths that changed since the previous run (nil on
	// the initial run). A non-nil error stops the loop.
	Run func(changed []string) error
}

// Watch runs the poll loop: one initial Run, then a Run per change tick,
// until ctx is canceled, MaxRuns is reached, or Run fails. The error is
// ctx.Err() on cancellation, else whatever Run returned.
func Watch(ctx context.Context, cfg Config) error {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	snap := Scan(cfg.Roots)
	runs := 0
	if err := cfg.Run(nil); err != nil {
		return err
	}
	runs++
	if cfg.MaxRuns > 0 && runs >= cfg.MaxRuns {
		return nil
	}
	ticker := time.NewTicker(cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
		cur := Scan(cfg.Roots)
		changed := Diff(snap, cur)
		if len(changed) == 0 {
			continue
		}
		snap = cur
		if err := cfg.Run(changed); err != nil {
			return err
		}
		runs++
		if cfg.MaxRuns > 0 && runs >= cfg.MaxRuns {
			return nil
		}
	}
}
