package watch

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestScanFiltersSourceFiles(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.c"), "int a;")
	write(t, filepath.Join(dir, "sub", "b.h"), "#define B")
	write(t, filepath.Join(dir, "notes.txt"), "ignore me")
	write(t, filepath.Join(dir, "sub", "c.o"), "\x7fELF")

	snap := Scan([]string{dir})
	if len(snap) != 2 {
		t.Fatalf("snapshot has %d files, want 2 (.c and .h only): %v", len(snap), snap)
	}
	for _, p := range []string{filepath.Join(dir, "a.c"), filepath.Join(dir, "sub", "b.h")} {
		if _, ok := snap[p]; !ok {
			t.Errorf("missing %s", p)
		}
	}
}

func TestDiff(t *testing.T) {
	dir := t.TempDir()
	a := filepath.Join(dir, "a.c")
	b := filepath.Join(dir, "b.c")
	write(t, a, "int a;")
	write(t, b, "int b;")
	old := Scan([]string{dir})

	if changed := Diff(old, Scan([]string{dir})); len(changed) != 0 {
		t.Errorf("no-op diff reported changes: %v", changed)
	}

	// Same size, different mtime must still register (mtime is part of the
	// content proxy — an editor save that doesn't change length is an edit).
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(a, future, future); err != nil {
		t.Fatal(err)
	}
	c := filepath.Join(dir, "c.c")
	write(t, c, "int c;")
	if err := os.Remove(b); err != nil {
		t.Fatal(err)
	}

	changed := Diff(old, Scan([]string{dir}))
	sort.Strings(changed)
	want := []string{a, b, c}
	sort.Strings(want)
	if len(changed) != 3 || changed[0] != want[0] || changed[1] != want[1] || changed[2] != want[2] {
		t.Errorf("diff = %v, want modified+removed+added = %v", changed, want)
	}
}

func TestWatchLoop(t *testing.T) {
	dir := t.TempDir()
	target := filepath.Join(dir, "a.c")
	write(t, target, "int a;\n")

	var runs [][]string
	err := Watch(context.Background(), Config{
		Roots:    []string{dir},
		Interval: 10 * time.Millisecond,
		MaxRuns:  2,
		Run: func(changed []string) error {
			runs = append(runs, changed)
			if len(runs) == 1 {
				// Edit between runs: append without changing line structure.
				f, err := os.OpenFile(target, os.O_APPEND|os.O_WRONLY, 0)
				if err != nil {
					return err
				}
				f.WriteString("/* edited */\n")
				return f.Close()
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(runs))
	}
	if runs[0] != nil {
		t.Errorf("initial run changed = %v, want nil", runs[0])
	}
	if len(runs[1]) != 1 || runs[1][0] != target {
		t.Errorf("second run changed = %v, want exactly [%s]", runs[1], target)
	}
}

func TestWatchStopsOnRunError(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.c"), "int a;")
	boom := errors.New("boom")
	err := Watch(context.Background(), Config{
		Roots:    []string{dir},
		Interval: 10 * time.Millisecond,
		Run:      func([]string) error { return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the Run error", err)
	}
}

func TestWatchHonorsContext(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.c"), "int a;")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Watch(ctx, Config{
			Roots:    []string{dir},
			Interval: 10 * time.Millisecond,
			Run:      func([]string) error { return nil },
		})
	}()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch loop did not stop on cancellation")
	}
}
