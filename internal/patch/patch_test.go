package patch

import (
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/cpg"
)

// checkOne runs the engine on a single file and returns its reports.
func checkOne(t *testing.T, path, src string) []core.Report {
	t.Helper()
	run, err := core.Analyze(context.Background(), core.Request{
		Sources: []cpg.Source{{Path: path, Content: src}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return run.Reports
}

// fixAndVerify generates a patch for the first report with the pattern,
// applies it, re-runs the checkers, and asserts the report class vanished.
func fixAndVerify(t *testing.T, src string, pattern core.Pattern) Fix {
	t.Helper()
	reports := checkOne(t, "fix.c", src)
	var target *core.Report
	for i := range reports {
		if reports[i].Pattern == pattern {
			target = &reports[i]
			break
		}
	}
	if target == nil {
		t.Fatalf("no %s report to fix", pattern)
	}
	fix := Generate(src, *target)
	if !fix.OK {
		t.Fatalf("patch not generated: %s", fix.Reason)
	}
	if fix.Diff == "" || !strings.Contains(fix.Diff, "+++ b/fix.c") {
		t.Fatalf("bad diff:\n%s", fix.Diff)
	}
	after := checkOne(t, "fix.c", fix.NewContent)
	for _, r := range after {
		if r.Pattern == pattern && r.Function == target.Function {
			t.Fatalf("report survives the patch:\n%s\npatched source:\n%s", r.String(), fix.NewContent)
		}
	}
	return fix
}

func TestFixP1(t *testing.T) {
	fix := fixAndVerify(t, `
static int f(struct my_dev *crc)
{
	int ret = pm_runtime_get_sync(crc->dev);
	if (ret < 0)
		return ret;
	pm_runtime_put_noidle(crc->dev);
	return 0;
}`, core.P1)
	if !strings.Contains(fix.NewContent, "pm_runtime_put_noidle(crc->dev);\n\t\treturn ret;") &&
		!strings.Contains(fix.NewContent, "pm_runtime_put_noidle(crc->dev);\n\treturn ret;") {
		t.Errorf("patched:\n%s", fix.NewContent)
	}
}

func TestFixP2(t *testing.T) {
	fixAndVerify(t, `
static int f(void)
{
	struct mdesc_handle *hp = mdesc_grab();
	int n = hp->num_nodes;
	mdesc_release(hp);
	return n;
}`, core.P2)
}

func TestFixP3(t *testing.T) {
	fix := fixAndVerify(t, `
#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
static int f(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (want(dn))
			break;
	}
	return 0;
}`, core.P3)
	if !strings.Contains(fix.NewContent, "of_node_put(dn);") {
		t.Errorf("patched:\n%s", fix.NewContent)
	}
}

func TestFixP4(t *testing.T) {
	fixAndVerify(t, `
static int f(void)
{
	struct device_node *np = of_find_node_by_path("/soc");
	if (!np)
		return -ENODEV;
	use_node(np);
	return 0;
}`, core.P4)
}

func TestFixP5(t *testing.T) {
	fixAndVerify(t, `
static int f(struct device_node *np)
{
	int err;
	of_node_get(np);
	err = register_thing(np);
	if (err)
		goto fail;
	of_node_put(np);
	return 0;
fail:
	return err;
}`, core.P5)
}

func TestFixP7(t *testing.T) {
	fix := fixAndVerify(t, `
struct widget { struct kref ref; char *name; };
static void f(struct widget *w)
{
	kfree(w);
}`, core.P7)
	if strings.Contains(fix.NewContent, "kfree(w)") {
		t.Errorf("kfree survives:\n%s", fix.NewContent)
	}
}

func TestFixP8(t *testing.T) {
	fix := fixAndVerify(t, `
static void f(struct sock *sk)
{
	sock_put(sk);
	sk->sk_err = 0;
	log_detach(sk->hint);
}`, core.P8)
	// The put must now come after the final use.
	putIdx := strings.Index(fix.NewContent, "sock_put(sk);")
	useIdx := strings.Index(fix.NewContent, "log_detach")
	if putIdx < useIdx {
		t.Errorf("put not moved after use:\n%s", fix.NewContent)
	}
}

func TestFixP9(t *testing.T) {
	fix := fixAndVerify(t, `
static struct sock *monitor_sk;
static void f(struct sock *sk)
{
	monitor_sk = sk;
}`, core.P9)
	if !strings.Contains(fix.NewContent, "sock_hold(sk);") {
		t.Errorf("patched:\n%s", fix.NewContent)
	}
}

func TestP6NeedsManualFix(t *testing.T) {
	src := `
static struct device_node *cached;
static int foo_register(void)
{
	cached = of_find_node_by_path("/foo");
	return 0;
}
static void foo_unregister(void)
{
}`
	reports := checkOne(t, "fix.c", src)
	var p6 *core.Report
	for i := range reports {
		if reports[i].Pattern == core.P6 {
			p6 = &reports[i]
		}
	}
	if p6 == nil {
		t.Fatal("no P6 report")
	}
	fix := Generate(src, *p6)
	if fix.OK {
		t.Fatal("P6 should require a manual cross-function patch")
	}
	if fix.Reason == "" {
		t.Fatal("missing reason")
	}
}

func TestUnifiedDiffShape(t *testing.T) {
	oldL := []string{"a", "b", "c", "d"}
	newL := []string{"a", "b", "x", "c", "d"}
	d := UnifiedDiff("t.c", oldL, newL)
	for _, want := range []string{"--- a/t.c", "+++ b/t.c", "+x", "@@"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff missing %q:\n%s", want, d)
		}
	}
	if strings.Contains(d, "-a") || strings.Contains(d, "-d") {
		t.Errorf("context lines marked as deletions:\n%s", d)
	}
}

// TestCorpusPatchesFixEverythingFixable generates patches for the whole
// corpus report set and re-verifies: any report whose pattern supports
// mechanical fixing must vanish after its patch.
func TestCorpusPatchesFixEverythingFixable(t *testing.T) {
	// A small multi-bug file mixing fixable patterns.
	src := `
#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
static int leaky(void)
{
	struct device_node *np = of_find_compatible_node(0, 0, "x");
	if (!np)
		return -ENODEV;
	work(np);
	return 0;
}
static int breaky(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (want(dn))
			break;
	}
	return 0;
}`
	reports := checkOne(t, "multi.c", src)
	if len(reports) < 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	content := src
	for {
		rs := checkOne(t, "multi.c", content)
		if len(rs) == 0 {
			break
		}
		fix := Generate(content, rs[0])
		if !fix.OK {
			t.Fatalf("unfixable report: %s (%s)", rs[0].String(), fix.Reason)
		}
		if fix.NewContent == content {
			t.Fatal("patch made no change")
		}
		content = fix.NewContent
	}
}
