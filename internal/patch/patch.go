// Package patch turns checker reports into concrete fix patches, mirroring
// the paper's workflow of sending a patch for every detected bug (§6.4).
//
// Each anti-pattern has a mechanical fix shape:
//
//	P1/P4/P5  insert the balancing put before the leaking return
//	P2        insert a NULL check right after the producing call
//	P3        put the iteration variable before the early break
//	P7        replace kfree with the put API
//	P8        move the decrement after the last use
//	P9        take a reference just before the escape point
//
// P6 spans two functions (the put belongs in the paired release callback),
// so it is reported as requiring a manual patch.
//
// Patches are verified end to end in tests: applying a generated patch and
// re-running the checkers must eliminate the report.
package patch

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/semantics"
)

// Fix is one generated patch.
type Fix struct {
	Report core.Report
	// OK reports whether a patch could be generated mechanically.
	OK     bool
	Reason string // when !OK
	// NewContent is the patched file text; Diff is a unified diff.
	NewContent string
	Diff       string
}

// Generate builds a fix for the report against the file's current content.
func Generate(content string, r core.Report) Fix {
	lines := strings.Split(content, "\n")
	fix := Fix{Report: r}
	var patched []string
	var err error

	switch r.Pattern {
	case core.P1, core.P4, core.P5:
		if r.Pattern == core.P4 && r.Impact == core.UAF {
			// Missing-get flavour: the hold belongs before the call whose
			// hidden put consumes the caller's reference.
			patched, err = insertGetBeforeCursor(lines, r)
		} else {
			patched, err = insertPutBeforeLeakExit(lines, r)
		}
	case core.P2:
		patched, err = insertNullCheck(lines, r)
	case core.P3:
		patched, err = putBeforeBreak(lines, r)
	case core.P7:
		patched, err = replaceFree(lines, r)
	case core.P8:
		patched, err = moveDecAfterUse(lines, r)
	case core.P9:
		patched, err = holdBeforeEscape(lines, r)
	default:
		return Fix{Report: r, Reason: fmt.Sprintf("%s requires a cross-function patch; fix %s manually", r.Pattern, r.Suggestion)}
	}
	if err != nil {
		fix.Reason = err.Error()
		return fix
	}
	fix.OK = true
	fix.NewContent = strings.Join(patched, "\n")
	fix.Diff = UnifiedDiff(r.File, lines, patched)
	return fix
}

// indentOf extracts the leading whitespace of a line.
func indentOf(line string) string {
	for i := 0; i < len(line); i++ {
		if line[i] != ' ' && line[i] != '\t' {
			return line[:i]
		}
	}
	return line
}

// insertAt returns lines with extra inserted before index i (0-based).
func insertAt(lines []string, i int, extra ...string) []string {
	out := make([]string, 0, len(lines)+len(extra))
	out = append(out, lines[:i]...)
	out = append(out, extra...)
	out = append(out, lines[i:]...)
	return out
}

// putCallFor derives the balancing put call for a report.
func putCallFor(r core.Report) (string, error) {
	s := r.Suggestion
	// Suggestions lead with the concrete call where one is known
	// ("of_node_put(np); ..." or "call pm_runtime_put_noidle(...)").
	if i := strings.Index(s, "("); i > 0 {
		name := s[:i]
		name = strings.TrimPrefix(name, "call ")
		name = strings.TrimPrefix(name, "add ")
		if j := strings.LastIndexByte(name, ' '); j >= 0 {
			name = name[j+1:]
		}
		if isIdent(name) && r.Object != "" {
			return fmt.Sprintf("%s(%s);", name, r.Object), nil
		}
	}
	return "", fmt.Errorf("no concrete put API known for %s", r.Object)
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// leakExitLine finds the return statement the leaking witness path exits
// through: the last Return event of the witness.
func leakExitLine(r core.Report) (int, error) {
	for i := len(r.Witness) - 1; i >= 0; i-- {
		if r.Witness[i].Op == semantics.OpReturn {
			return r.Witness[i].Pos.Line, nil
		}
	}
	return 0, fmt.Errorf("witness has no return to patch before")
}

func insertPutBeforeLeakExit(lines []string, r core.Report) ([]string, error) {
	put, err := putCallFor(r)
	if err != nil {
		return nil, err
	}
	line, err := leakExitLine(r)
	if err != nil {
		return nil, err
	}
	if line < 1 || line > len(lines) {
		return nil, fmt.Errorf("return line %d out of range", line)
	}
	idx := line - 1
	indent := indentOf(lines[idx])
	return guardedInsert(lines, idx, indent+put)
}

// guardedInsert inserts stmt before lines[idx]; when lines[idx] is the
// braceless body of an if, the body gains braces so the insertion stays on
// the conditional path.
func guardedInsert(lines []string, idx int, stmt string) ([]string, error) {
	if idx > 0 {
		prev := strings.TrimSpace(lines[idx-1])
		if strings.HasPrefix(prev, "if ") && strings.HasSuffix(prev, ")") {
			head := strings.TrimRight(lines[idx-1], " \t") + " {"
			closing := indentOf(lines[idx-1]) + "}"
			out := make([]string, 0, len(lines)+3)
			out = append(out, lines[:idx-1]...)
			out = append(out, head, stmt, lines[idx], closing)
			out = append(out, lines[idx+1:]...)
			return out, nil
		}
	}
	return insertAt(lines, idx, stmt), nil
}

// insertGetBeforeCursor handles P4's missing-increase flavour: take a
// reference on the cursor argument before the find-like call whose hidden
// put consumes it.
func insertGetBeforeCursor(lines []string, r core.Report) ([]string, error) {
	get, err := putCallFor(r) // suggestion leads with the get call here
	if err != nil {
		return nil, err
	}
	var callLine int
	for _, ev := range r.Witness {
		if ev.Op == semantics.OpDec && ev.API == r.API &&
			semantics.BaseOf(ev.Obj) == semantics.BaseOf(r.Object) {
			callLine = ev.Pos.Line
			break
		}
	}
	if callLine < 1 || callLine > len(lines) {
		return nil, fmt.Errorf("consuming call not located")
	}
	idx := callLine - 1
	indent := indentOf(lines[idx])
	return guardedInsert(lines, idx, indent+get)
}

func insertNullCheck(lines []string, r core.Report) ([]string, error) {
	// Insert after the producing call (the first Inc in the witness with
	// a matching object).
	var prodLine int
	for _, ev := range r.Witness {
		if ev.Op == semantics.OpInc && ev.Obj != "" &&
			semantics.BaseOf(ev.Obj) == semantics.BaseOf(r.Object) {
			prodLine = ev.Pos.Line
			break
		}
	}
	if prodLine < 1 || prodLine > len(lines) {
		return nil, fmt.Errorf("producing call not located")
	}
	indent := indentOf(lines[prodLine-1])
	check := []string{
		indent + fmt.Sprintf("if (!%s)", r.Object),
		indent + "\treturn -ENODEV;",
	}
	return insertAt(lines, prodLine, check...), nil
}

func putBeforeBreak(lines []string, r core.Report) ([]string, error) {
	// r.Pos is the break statement; suggestion names the put API.
	put, err := putCallFor(r)
	if err != nil {
		return nil, err
	}
	idx := r.Pos.Line - 1
	if idx < 0 || idx >= len(lines) || !strings.Contains(lines[idx], "break") {
		return nil, fmt.Errorf("break not found at %s", r.Pos)
	}
	indent := indentOf(lines[idx])
	return guardedInsert(lines, idx, indent+put)
}

func replaceFree(lines []string, r core.Report) ([]string, error) {
	idx := r.Pos.Line - 1
	if idx < 0 || idx >= len(lines) {
		return nil, fmt.Errorf("free line out of range")
	}
	if !strings.Contains(lines[idx], r.API+"(") {
		return nil, fmt.Errorf("%s not found on line %d", r.API, r.Pos.Line)
	}
	// Suggestion: "replace kfree(w) with widget_put(w)" or with
	// "kref_put(&w->ref)".
	put := ""
	if i := strings.Index(r.Suggestion, "with "); i >= 0 {
		put = strings.TrimSuffix(strings.TrimSpace(r.Suggestion[i+5:]), ";")
	}
	if put == "" || strings.Contains(put, " ") {
		return nil, fmt.Errorf("no put API resolved for the freed object")
	}
	freeCall := fmt.Sprintf("%s(%s)", r.API, r.Object)
	out := append([]string(nil), lines...)
	if !strings.Contains(out[idx], freeCall) {
		return nil, fmt.Errorf("%s not found on line %d", freeCall, r.Pos.Line)
	}
	out[idx] = strings.Replace(out[idx], freeCall, put, 1)
	return out, nil
}

func moveDecAfterUse(lines []string, r core.Report) ([]string, error) {
	// Find the decrement line from the witness (the Dec event on the
	// object) and move it after the reported last-use line.
	var decLine int
	for _, ev := range r.Witness {
		if ev.Op == semantics.OpDec && ev.API == r.API &&
			semantics.BaseOf(ev.Obj) == semantics.BaseOf(r.Object) {
			decLine = ev.Pos.Line
		}
	}
	if decLine < 1 || decLine > len(lines) {
		return nil, fmt.Errorf("decrement line not located")
	}
	// Last use: the final witness deref of the object.
	useLine := r.Pos.Line
	for _, ev := range r.Witness {
		if ev.Op == semantics.OpDeref && ev.Obj == semantics.BaseOf(r.Object) &&
			ev.Pos.Line > useLine {
			useLine = ev.Pos.Line
		}
	}
	if useLine <= decLine || useLine > len(lines) {
		return nil, fmt.Errorf("no use after the decrement to move past")
	}
	decStmt := lines[decLine-1]
	out := make([]string, 0, len(lines))
	out = append(out, lines[:decLine-1]...)
	out = append(out, lines[decLine:useLine]...)
	out = append(out, decStmt)
	out = append(out, lines[useLine:]...)
	return out, nil
}

func holdBeforeEscape(lines []string, r core.Report) ([]string, error) {
	idx := r.Pos.Line - 1
	if idx < 0 || idx >= len(lines) {
		return nil, fmt.Errorf("escape line out of range")
	}
	// The hold API comes from the object's struct via the suggestion; the
	// engine's suggestion is prose here, so derive from common pairs.
	hold := holdAPIFor(lines[idx], r.Object)
	if hold == "" {
		return nil, fmt.Errorf("no hold API known for %s", r.Object)
	}
	indent := indentOf(lines[idx])
	return insertAt(lines, idx, fmt.Sprintf("%s%s(%s);", indent, hold, r.Object)), nil
}

// holdAPIFor guesses the increment API from the escaping variable's
// conventional type names.
func holdAPIFor(line, obj string) string {
	base := semantics.BaseOf(obj)
	switch {
	case strings.HasPrefix(base, "sk") || strings.Contains(line, "sock"):
		return "sock_hold"
	case strings.HasPrefix(base, "np") || strings.HasPrefix(base, "dn") ||
		strings.Contains(line, "node"):
		return "of_node_get"
	case strings.Contains(line, "dev"):
		return "get_device"
	default:
		return "of_node_get"
	}
}

// UnifiedDiff renders a minimal unified diff between two line slices.
func UnifiedDiff(path string, oldLines, newLines []string) string {
	// Simple LCS-free diff: find common prefix/suffix, emit one hunk.
	p := 0
	for p < len(oldLines) && p < len(newLines) && oldLines[p] == newLines[p] {
		p++
	}
	s := 0
	for s < len(oldLines)-p && s < len(newLines)-p &&
		oldLines[len(oldLines)-1-s] == newLines[len(newLines)-1-s] {
		s++
	}
	oldMid := oldLines[p : len(oldLines)-s]
	newMid := newLines[p : len(newLines)-s]

	const ctx = 2
	lo := p - ctx
	if lo < 0 {
		lo = 0
	}
	oldHi := len(oldLines) - s + ctx
	if oldHi > len(oldLines) {
		oldHi = len(oldLines)
	}
	newHi := len(newLines) - s + ctx
	if newHi > len(newLines) {
		newHi = len(newLines)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "--- a/%s\n+++ b/%s\n", path, path)
	fmt.Fprintf(&b, "@@ -%d,%d +%d,%d @@\n",
		lo+1, oldHi-lo, lo+1, newHi-lo)
	for _, l := range oldLines[lo:p] {
		b.WriteString(" " + l + "\n")
	}
	for _, l := range oldMid {
		b.WriteString("-" + l + "\n")
	}
	for _, l := range newMid {
		b.WriteString("+" + l + "\n")
	}
	for _, l := range oldLines[len(oldLines)-s : oldHi] {
		b.WriteString(" " + l + "\n")
	}
	return b.String()
}
