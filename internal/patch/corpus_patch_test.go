package patch

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cpg"
	"repro/internal/cpp"
)

func TestFixP4MissingGet(t *testing.T) {
	src := `
static struct device_node *next_of(struct device_node *from)
{
	struct device_node *np = of_find_matching_node(from, matches);
	return np;
}`
	reports := checkOne(t, "fix.c", src)
	var target *core.Report
	for i := range reports {
		if reports[i].Pattern == core.P4 && reports[i].Impact == core.UAF {
			target = &reports[i]
		}
	}
	if target == nil {
		t.Fatalf("no P4/UAF report: %+v", reports)
	}
	fix := Generate(src, *target)
	if !fix.OK {
		t.Fatalf("not generated: %s", fix.Reason)
	}
	// The hold must precede the consuming call.
	getIdx := strings.Index(fix.NewContent, "of_node_get(from);")
	callIdx := strings.Index(fix.NewContent, "of_find_matching_node(from")
	if getIdx < 0 || getIdx > callIdx {
		t.Fatalf("hold misplaced:\n%s", fix.NewContent)
	}
	after := checkOne(t, "fix.c", fix.NewContent)
	for _, r := range after {
		if r.Pattern == core.P4 && r.Impact == core.UAF {
			t.Fatalf("report survives:\n%s", fix.NewContent)
		}
	}
}

// TestCorpusFixCoverage generates patches for every checker report on the
// synthetic kernel and measures coverage: every report must either get a
// mechanical patch or carry a manual-fix reason (P6 cross-function cases and
// discarded-reference P4s). A sample of patched files is re-checked to show
// the patches actually silence their reports.
func TestCorpusFixCoverage(t *testing.T) {
	c := corpus.Generate(corpus.Spec{Seed: 1})
	var sources []cpg.Source
	contentOf := map[string]string{}
	for _, f := range c.Files {
		sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
		contentOf[f.Path] = f.Content
	}
	unit := (&cpg.Builder{Headers: cpp.MapFiles(c.Headers)}).Build(sources)
	reports := core.NewEngine().CheckUnit(unit)

	patched, manual := 0, 0
	patchedFiles := map[string]bool{}
	for _, r := range reports {
		fx := Generate(contentOf[r.File], r)
		switch {
		case fx.OK:
			patched++
			patchedFiles[r.File] = true
			if !strings.Contains(fx.Diff, "+++ b/"+r.File) {
				t.Fatalf("malformed diff for %s", r.File)
			}
		case r.Pattern == core.P6, r.Object == "":
			manual++ // expected manual classes
		default:
			manual++
			t.Errorf("unexpectedly unfixable: %s (%s)", r.String(), fx.Reason)
		}
	}
	if patched < len(reports)*2/3 {
		t.Errorf("patched %d of %d reports", patched, len(reports))
	}
	t.Logf("patched %d, manual %d of %d reports", patched, manual, len(reports))

	// Spot-verify: apply all patches for a few single-bug files and
	// re-check those files in isolation.
	verified := 0
	for _, f := range c.Files {
		if verified >= 8 || !patchedFiles[f.Path] {
			continue
		}
		content := f.Content
		for rounds := 0; rounds < 12; rounds++ {
			u := (&cpg.Builder{Headers: cpp.MapFiles(c.Headers)}).Build(
				[]cpg.Source{{Path: f.Path, Content: content}})
			rs := core.NewEngine().CheckUnit(u)
			var next *core.Report
			for i := range rs {
				fx := Generate(content, rs[i])
				if fx.OK {
					next = &rs[i]
					content = fx.NewContent
					break
				}
			}
			if next == nil {
				break
			}
		}
		u := (&cpg.Builder{Headers: cpp.MapFiles(c.Headers)}).Build(
			[]cpg.Source{{Path: f.Path, Content: content}})
		rs := core.NewEngine().CheckUnit(u)
		for _, r := range rs {
			fx := Generate(content, r)
			if fx.OK {
				t.Errorf("%s: fixable report survives the fixpoint: %s", f.Path, r.String())
			}
		}
		verified++
	}
	if verified == 0 {
		t.Fatal("no files verified")
	}
}
