package patch_test

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/cpg"
	"repro/internal/patch"
)

// ExampleGenerate turns a smartloop-break report into a unified-diff fix.
func ExampleGenerate() {
	src := `#define for_each_matching_node(dn, m) \
	for (dn = of_find_matching_node(0, m); dn; \
	     dn = of_find_matching_node(dn, m))
static int probe(void)
{
	struct device_node *dn;
	for_each_matching_node(dn, matches) {
		if (want(dn))
			break;
	}
	return 0;
}`
	run, _ := core.Analyze(context.Background(), core.Request{
		Sources: []cpg.Source{{Path: "probe.c", Content: src}},
	})
	fix := patch.Generate(src, run.Reports[0])
	for _, line := range strings.Split(fix.Diff, "\n") {
		if strings.HasPrefix(line, "+") && !strings.HasPrefix(line, "+++") {
			fmt.Println(strings.TrimSpace(line))
		}
	}
	// Output:
	// +		if (want(dn)) {
	// +			of_node_put(dn);
	// +			break;
	// +		}
}
