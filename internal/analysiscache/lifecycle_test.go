package analysiscache

import (
	"fmt"
	"sync"
	"testing"
)

// The refcount/owner model exists for one scenario: a daemon shares one
// warm cache handle across concurrent requests, and request-scoped code
// keeps the CLI habit of calling Close after each Analyze. Before the
// refcount, any such Close was "the" close; now a Close only releases one
// owner, and the handle stays fully usable until the last owner lets go.

func put(t *testing.T, c *Cache, key, val string) {
	t.Helper()
	if err := c.PutValue(key, val, []byte(val)); err != nil {
		t.Fatalf("PutValue(%s): %v", key, err)
	}
}

func mustGet(t *testing.T, c *Cache, key, want string) {
	t.Helper()
	v, ok := c.GetValue(key, func(data []byte) (any, error) { return string(data), nil })
	if !ok || v.(string) != want {
		t.Fatalf("GetValue(%s) = %v, %v; want %q", key, v, ok, want)
	}
}

func TestRetainKeepsHandleOpenAcrossClose(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k1, k2 := KeyOf("lifecycle", "one"), KeyOf("lifecycle", "two")

	// Second owner (a concurrent request) retains before the first closes.
	second := c.Retain()
	put(t, c, k1, "v1")
	if err := c.Close(); err != nil { // first owner's CLI-style release
		t.Fatalf("first Close: %v", err)
	}
	if c.Closed() {
		t.Fatal("handle closed while a second owner still holds it")
	}

	// The surviving owner must still be able to read the first owner's
	// entries and write new ones.
	mustGet(t, second, k1, "v1")
	put(t, second, k2, "v2")
	mustGet(t, second, k2, "v2")

	if err := second.Close(); err != nil {
		t.Fatalf("final Close: %v", err)
	}
	if !c.Closed() {
		t.Fatal("handle not closed after the last owner released it")
	}

	// A closed handle degrades: reads miss, writes are rejected, and a
	// redundant Close is a no-op — never a panic or a torn tier.
	if _, ok := c.GetValue(k1, func(data []byte) (any, error) { return string(data), nil }); ok {
		t.Error("GetValue on a closed handle returned a hit")
	}
	if err := c.PutValue(k1, "x", []byte("x")); err == nil {
		t.Error("PutValue on a closed handle did not error")
	}
	if err := c.Put(k1, []byte("x")); err == nil {
		t.Error("Put on a closed handle did not error")
	}
	if err := c.Flush(); err != nil {
		t.Errorf("Flush on a closed handle: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("redundant Close: %v", err)
	}

	// The disk tier survived the lifecycle: a fresh handle over the same
	// directory serves both owners' flushed entries.
	reopened, err := Open(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	mustGet(t, reopened, k1, "v1")
	mustGet(t, reopened, k2, "v2")
}

func TestLifecycleClosePerRequestConcurrent(t *testing.T) {
	// The daemon shape under -race: one long-lived owner, N request
	// goroutines that each Retain, work, and Close. No request's Close may
	// close the handle under the others, and every flushed entry must
	// survive to a reopened handle.
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const requests = 16
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := c.Retain()
			defer h.Close()
			key := KeyOf("lifecycle-conc", fmt.Sprint(i))
			val := fmt.Sprintf("value-%d", i)
			if err := h.PutValue(key, val, []byte(val)); err != nil {
				t.Errorf("request %d: PutValue: %v", i, err)
				return
			}
			mustGet(t, h, key, val)
		}(i)
	}
	wg.Wait()
	if c.Closed() {
		t.Fatal("request-scoped Closes closed the daemon's handle")
	}
	for i := 0; i < requests; i++ {
		mustGet(t, c, KeyOf("lifecycle-conc", fmt.Sprint(i)), fmt.Sprintf("value-%d", i))
	}
	if err := c.Close(); err != nil {
		t.Fatalf("daemon Close: %v", err)
	}
	if !c.Closed() {
		t.Fatal("daemon's final Close did not close the handle")
	}
	reopened, err := Open(c.Dir())
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	for i := 0; i < requests; i++ {
		mustGet(t, reopened, KeyOf("lifecycle-conc", fmt.Sprint(i)), fmt.Sprintf("value-%d", i))
	}
}
