package analysiscache

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestZeroByteEntryIsMiss covers the crash-landing shape a torn write could
// leave behind (an empty file in the right slot): it must read as a miss
// and a later Put+Flush must repair it with a fresh pack.
func TestZeroByteEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir)
	key := KeyOf("zero-byte")
	if err := c.Put(key, (&payload{Name: "ok"}).encode()); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	packs := packFiles(t, dir)
	if len(packs) != 1 {
		t.Fatalf("expected one pack, got %v", packs)
	}
	if err := os.WriteFile(packs[0], nil, 0o644); err != nil {
		t.Fatal(err)
	}
	var v payload
	if mustOpen(t, dir).Get(key, v.decode) {
		t.Fatal("zero-byte pack must be a miss")
	}
	c2 := mustOpen(t, dir)
	if err := c2.Put(key, (&payload{Name: "repaired"}).encode()); err != nil {
		t.Fatal(err)
	}
	if err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !mustOpen(t, dir).Get(key, v.decode) || v.Name != "repaired" {
		t.Fatal("Put+Flush must repair a zero-byte pack")
	}
}

// TestConcurrentWritersSameKey hammers one key from many writers while
// readers poll it, with interleaved flushes. A reader sees either a miss or
// one writer's entry in full — never a torn mix of two writers.
func TestConcurrentWritersSameKey(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir)
	key := KeyOf("contended")
	const writers, rounds = 8, 50

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := payload{Name: fmt.Sprintf("writer-%d", w), Lines: []int{w, w, w}}
			for r := 0; r < rounds; r++ {
				if err := c.Put(key, p.encode()); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if r%10 == 0 {
					if err := c.Flush(); err != nil {
						t.Errorf("Flush: %v", err)
						return
					}
				}
			}
		}(w)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	checkHit := func(v payload) {
		t.Helper()
		if len(v.Lines) != 3 || v.Lines[0] != v.Lines[1] || v.Lines[1] != v.Lines[2] ||
			v.Name != fmt.Sprintf("writer-%d", v.Lines[0]) {
			t.Errorf("torn entry observed: %+v", v)
		}
	}
	for polling := true; polling; {
		select {
		case <-done:
			polling = false
		default:
			var v payload
			if c.Get(key, v.decode) {
				checkHit(v)
			}
		}
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	var v payload
	if !c.Get(key, v.decode) {
		t.Fatal("expected a hit after all writers finished")
	}
	checkHit(v)
	// A fresh handle must decode the on-disk packs to one coherent entry.
	v = payload{}
	if !mustOpen(t, dir).Get(key, v.decode) {
		t.Fatal("expected a durable hit from a fresh handle")
	}
	checkHit(v)
}

// TestUnusableDirDegradesToMisses covers the cache root becoming unusable
// after Open: a flush fails loudly, the dropped batch reads as clean misses,
// and nothing panics or half-persists.
func TestUnusableDirDegradesToMisses(t *testing.T) {
	t.Run("dir-replaced-by-file", func(t *testing.T) {
		// Deterministic even for root, where chmod is not enforced: a
		// regular file where the root directory should be makes every
		// shard MkdirAll and pack write fail.
		root := filepath.Join(t.TempDir(), "cache")
		c := mustOpen(t, root)
		if err := os.RemoveAll(root); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(root, []byte("not a directory"), 0o644); err != nil {
			t.Fatal(err)
		}
		key := KeyOf("doomed")
		if err := c.Put(key, (&payload{Name: "doomed"}).encode()); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err == nil {
			t.Fatal("Flush through a non-directory root must error")
		}
		var v payload
		if c.Get(key, v.decode) {
			t.Fatal("a dropped batch must not leave a readable entry")
		}
	})

	t.Run("write-permission-revoked", func(t *testing.T) {
		if os.Geteuid() == 0 {
			t.Skip("chmod does not restrict root; the dir-replaced-by-file variant covers this")
		}
		root := filepath.Join(t.TempDir(), "cache")
		c := mustOpen(t, root)
		stored := KeyOf("kept")
		if err := c.Put(stored, (&payload{Name: "kept"}).encode()); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := os.Chmod(root, 0o500); err != nil {
			t.Fatal(err)
		}
		defer os.Chmod(root, 0o755)
		// A fresh key must land in a not-yet-created shard, or its flush
		// would bypass the read-only root via the existing shard dir.
		fresh := KeyOf("fresh")
		for i := 0; shardOf(fresh) == shardOf(stored); i++ {
			fresh = KeyOf(fmt.Sprintf("fresh-%d", i))
		}
		if err := c.Put(fresh, (&payload{Name: "fresh"}).encode()); err != nil {
			t.Fatal(err)
		}
		if err := c.Flush(); err == nil {
			t.Fatal("Flush into a read-only root must error")
		}
		var v payload
		if c.Get(fresh, v.decode) {
			t.Fatal("entry whose batch was dropped must miss")
		}
		if !c.Get(stored, v.decode) || v.Name != "kept" {
			t.Fatal("read-only root must still serve existing entries")
		}
	})
}
