package analysiscache

import (
	"context"
	"errors"
	"sync"
)

// errLeaderCrashed marks a flight whose leader panicked out of fn. Waiters
// never see it: they treat any leader failure as "retry for leadership".
// The panic itself propagates to the leader's own caller.
var errLeaderCrashed = errors.New("analysiscache: singleflight leader crashed")

// flightGroup deduplicates concurrent computations by key, stdlib-only (the
// x/sync singleflight shape, reduced to what the cache needs). Unlike
// x/sync, a waiter never inherits the leader's error: a failed or crashed
// leader releases its waiters to retry for leadership themselves, because
// in this cache an error is usually the leader's ctx being cancelled — the
// waiter's own ctx may be perfectly healthy.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when val/err are set
	val  any
	err  error
}

// do runs fn once per set of concurrent callers of key. leader reports
// whether this call ran fn; when false, val came from a concurrent leader.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (any, error)) (val any, leader bool, err error) {
	for {
		g.mu.Lock()
		if g.m == nil {
			g.m = make(map[string]*flightCall)
		}
		if c, ok := g.m[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
				if c.err == nil {
					return c.val, false, nil
				}
				// Leader failed (or crashed): loop back and race for
				// leadership. Each iteration either returns a success or
				// installs this goroutine as the leader, so the loop
				// terminates.
				continue
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
		}
		c := &flightCall{done: make(chan struct{})}
		g.m[key] = c
		g.mu.Unlock()
		return g.lead(key, c, fn)
	}
}

// lead runs fn as the leader of c, publishing the result (or a crash
// marker, when fn panics — the panic still propagates to the caller) and
// releasing waiters.
func (g *flightGroup) lead(key string, c *flightCall, fn func() (any, error)) (val any, leader bool, err error) {
	completed := false
	defer func() {
		if !completed {
			c.err = errLeaderCrashed
		}
		// Remove before releasing waiters so a late arrival starts a fresh
		// flight instead of adopting a finished one.
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	completed = true
	return c.val, true, c.err
}
