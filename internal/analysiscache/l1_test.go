package analysiscache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// sameShardKeys returns n distinct full-length keys that all land in one L1
// shard, so byte-pressure tests control exactly one budget.
func sameShardKeys(n int) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		k := KeyOf("shard-key", fmt.Sprint(i))
		if shardOf(k) == 0 {
			out = append(out, k)
		}
	}
	return out
}

// TestL1EvictionUnderBytePressure fills one shard past its byte budget and
// checks LRU order: the least recently used entries leave first, the
// recently touched survive, and the byte charge tracks what remains.
func TestL1EvictionUnderBytePressure(t *testing.T) {
	// 16 shards share the budget evenly: 1600 total → 100 per shard.
	l1 := newL1Cache(1600, 0)
	keys := sameShardKeys(4)

	// Three 30-byte entries fit in 90/100.
	for _, k := range keys[:3] {
		if ev := l1.put(k, k, 30); ev != 0 {
			t.Fatalf("no eviction expected while under budget, got %d", ev)
		}
	}
	// Touch keys[0] so keys[1] is now the LRU victim.
	if _, ok, _ := l1.get(keys[0]); !ok {
		t.Fatal("expected hit for resident entry")
	}
	// A fourth 30-byte entry pushes the shard to 120 → one eviction.
	if ev := l1.put(keys[3], keys[3], 30); ev != 1 {
		t.Fatalf("expected exactly one eviction, got %d", ev)
	}
	if _, ok, _ := l1.get(keys[1]); ok {
		t.Fatal("LRU entry must have been evicted")
	}
	for _, k := range []string{keys[0], keys[2], keys[3]} {
		if _, ok, _ := l1.get(k); !ok {
			t.Fatalf("recently used entry %s… must survive", k[:8])
		}
	}
	if entries, bytes := l1.stats(); entries != 3 || bytes != 90 {
		t.Fatalf("stats after eviction: entries=%d bytes=%d, want 3/90", entries, bytes)
	}

	// An entry larger than the whole shard budget is never admitted (it
	// would evict everything for a value that cannot stay).
	if ev := l1.put(keys[1], keys[1], 101); ev != 0 {
		t.Fatalf("oversized entry must be rejected without evictions, got %d", ev)
	}
	if _, ok, _ := l1.get(keys[1]); ok {
		t.Fatal("oversized entry must not be cached")
	}
}

// TestL1TTLExpiry checks that entries die on access after their TTL and are
// counted as evictions, not plain misses.
func TestL1TTLExpiry(t *testing.T) {
	l1 := newL1Cache(1<<20, 30*time.Millisecond)
	key := KeyOf("ttl")
	l1.put(key, "v", 8)
	if _, ok, _ := l1.get(key); !ok {
		t.Fatal("expected hit before TTL")
	}
	time.Sleep(50 * time.Millisecond)
	v, ok, evicted := l1.get(key)
	if ok || v != nil {
		t.Fatal("expected expiry after TTL")
	}
	if evicted != 1 {
		t.Fatalf("expiry must count as one eviction, got %d", evicted)
	}
	if entries, bytes := l1.stats(); entries != 0 || bytes != 0 {
		t.Fatalf("expired entry must release its charge, got entries=%d bytes=%d", entries, bytes)
	}
}

// TestGetValueTiered walks one entry through the tiers: PutValue serves
// from L1, a fresh handle decodes from disk and re-fills its own L1, and
// the counters tell the two paths apart.
func TestGetValueTiered(t *testing.T) {
	dir := t.TempDir()
	decode := func(data []byte) (any, error) {
		p := new(payload)
		if err := p.decode(data); err != nil {
			return nil, err
		}
		return p, nil
	}

	reg := obs.NewRegistry()
	c := mustOpen(t, dir).WithRegistry(reg)
	key := KeyOf("tiered")
	want := &payload{Name: "v", Lines: []int{7}}
	if err := c.PutValue(key, want, want.encode()); err != nil {
		t.Fatal(err)
	}
	v, ok := c.GetValue(key, decode)
	if !ok || v.(*payload) != want {
		t.Fatal("same-handle GetValue must return the exact L1 value")
	}
	if reg.Counter("cache.l1.hit") != 1 || reg.Counter("cache.read.hit") != 0 {
		t.Fatalf("L1 hit must not touch the disk tier: l1.hit=%d read.hit=%d",
			reg.Counter("cache.l1.hit"), reg.Counter("cache.read.hit"))
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	reg2 := obs.NewRegistry()
	c2 := mustOpen(t, dir).WithRegistry(reg2)
	v, ok = c2.GetValue(key, decode)
	if !ok || v.(*payload).Name != "v" {
		t.Fatal("fresh handle must decode the entry from disk")
	}
	if reg2.Counter("cache.l1.miss") != 1 || reg2.Counter("cache.read.hit") != 1 {
		t.Fatalf("disk path counters wrong: l1.miss=%d read.hit=%d",
			reg2.Counter("cache.l1.miss"), reg2.Counter("cache.read.hit"))
	}
	// The disk hit seeded L1: the next lookup stays in memory.
	if _, ok = c2.GetValue(key, decode); !ok || reg2.Counter("cache.l1.hit") != 1 {
		t.Fatalf("second lookup must hit L1, l1.hit=%d", reg2.Counter("cache.l1.hit"))
	}

	// With the memory tier disabled, GetValue decodes every time.
	reg3 := obs.NewRegistry()
	c3 := mustOpen(t, dir, WithMemory(0)).WithRegistry(reg3)
	if c3.MemoryEnabled() {
		t.Fatal("WithMemory(0) must disable L1")
	}
	for i := 0; i < 2; i++ {
		if _, ok := c3.GetValue(key, decode); !ok {
			t.Fatal("L1-disabled GetValue must still serve from disk")
		}
	}
	if reg3.Counter("cache.read.hit") != 2 || reg3.Counter("cache.l1.hit") != 0 {
		t.Fatalf("L1-disabled counters wrong: read.hit=%d l1.hit=%d",
			reg3.Counter("cache.read.hit"), reg3.Counter("cache.l1.hit"))
	}
}

// TestConcurrentSameKeyValueOps hammers a small key set with concurrent
// GetValue/PutValue at 1 and 8 workers (the -race run is the real assert),
// under byte pressure so eviction paths race too.
func TestConcurrentSameKeyValueOps(t *testing.T) {
	for _, workers := range []int{1, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c := mustOpen(t, t.TempDir(), WithMemory(4096), WithTTL(time.Hour))
			keys := make([]string, 8)
			vals := make([]*payload, len(keys))
			for i := range keys {
				keys[i] = KeyOf("conc", fmt.Sprint(i))
				vals[i] = &payload{Name: fmt.Sprintf("v-%d", i), Lines: []int{i, i}}
			}
			decode := func(data []byte) (any, error) {
				p := new(payload)
				if err := p.decode(data); err != nil {
					return nil, err
				}
				return p, nil
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for r := 0; r < 200; r++ {
						k := (w + r) % len(keys)
						if r%3 == 0 {
							if err := c.PutValue(keys[k], vals[k], vals[k].encode()); err != nil {
								t.Errorf("PutValue: %v", err)
								return
							}
						}
						if v, ok := c.GetValue(keys[k], decode); ok {
							if got := v.(*payload).Name; got != vals[k].Name {
								t.Errorf("key %d decoded %q, want %q", k, got, vals[k].Name)
								return
							}
						}
						if r%50 == 0 {
							_ = c.Flush()
						}
					}
				}(w)
			}
			wg.Wait()
			if err := c.Flush(); err != nil {
				t.Fatal(err)
			}
			// Every key must be durable and coherent afterwards.
			for i, k := range keys {
				var v payload
				if !c.Get(k, v.decode) || v.Name != vals[i].Name {
					t.Fatalf("key %d not durable after the storm", i)
				}
			}
		})
	}
}
