package analysiscache

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bincodec"
)

// payload is the test stand-in for a real cache entry: like the production
// entries it owns its binary encoding, built on internal/bincodec.
type payload struct {
	Name  string
	Lines []int
}

func (p *payload) encode() []byte {
	w := bincodec.NewWriter(32)
	w.String(p.Name)
	w.U32(uint32(len(p.Lines)))
	for _, n := range p.Lines {
		w.Int(n)
	}
	return w.Bytes()
}

func (p *payload) decode(data []byte) error {
	r := bincodec.NewReader(data)
	p.Name = r.String()
	n := r.Count()
	p.Lines = nil
	for i := 0; i < n; i++ {
		p.Lines = append(p.Lines, r.Int())
	}
	return r.Done()
}

func TestRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("test", "round-trip")
	want := payload{Name: "x", Lines: []int{1, 2, 3}}
	if err := c.Put(key, want.encode()); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !c.Get(key, got.decode) {
		t.Fatal("expected hit after Put")
	}
	if got.Name != want.Name || len(got.Lines) != 3 || got.Lines[2] != 3 {
		t.Fatalf("decoded %+v, want %+v", got, want)
	}
}

func TestMissingKey(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var v payload
	if c.Get(KeyOf("never", "stored"), v.decode) {
		t.Fatal("expected miss for unknown key")
	}
	if c.Get("", v.decode) || c.Get("a", v.decode) {
		t.Fatal("short keys must miss, not panic")
	}
}

func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("corrupt")
	if err := c.Put(key, (&payload{Name: "ok"}).encode()); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".bin")

	// Truncated entry → miss.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var v payload
	if c.Get(key, v.decode) {
		t.Fatal("truncated entry must be a miss")
	}

	// Garbage entry → miss.
	if err := os.WriteFile(path, []byte("not a valid entry"), 0o644); err != nil {
		t.Fatal(err)
	}
	if c.Get(key, v.decode) {
		t.Fatal("garbage entry must be a miss")
	}

	// Re-Put repairs the slot.
	if err := c.Put(key, (&payload{Name: "again"}).encode()); err != nil {
		t.Fatal(err)
	}
	if !c.Get(key, v.decode) || v.Name != "again" {
		t.Fatal("Put over a corrupt entry must restore the slot")
	}
}

// TestOldFormatDirIsCleanMisses pins the format-migration contract: a cache
// root populated by the retired gob-era layout (.gob files) serves clean
// misses — not errors, not corruption counts — and the current format
// repopulates alongside without touching the old files.
func TestOldFormatDirIsCleanMisses(t *testing.T) {
	dir := t.TempDir()
	key := KeyOf("migrated")
	oldPath := filepath.Join(dir, key[:2], key+".gob")
	if err := os.MkdirAll(filepath.Dir(oldPath), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(oldPath, []byte("gob-era bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var v payload
	if c.Get(key, v.decode) {
		t.Fatal("old-format entry must read as a miss")
	}
	if err := c.Put(key, (&payload{Name: "new"}).encode()); err != nil {
		t.Fatal(err)
	}
	if !c.Get(key, v.decode) || v.Name != "new" {
		t.Fatal("current format must repopulate alongside the old file")
	}
	if _, err := os.Stat(oldPath); err != nil {
		t.Fatal("migration must not delete old-format files")
	}
}

func TestKeyOfLengthPrefixing(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("KeyOf must not collide on concatenation boundaries")
	}
	if KeyOf("x") != KeyOf("x") {
		t.Fatal("KeyOf must be deterministic")
	}
}
