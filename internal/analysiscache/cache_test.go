package analysiscache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bincodec"
)

// payload is the test stand-in for a real cache entry: like the production
// entries it owns its binary encoding, built on internal/bincodec.
type payload struct {
	Name  string
	Lines []int
}

func (p *payload) encode() []byte {
	w := bincodec.NewWriter(32)
	w.String(p.Name)
	w.U32(uint32(len(p.Lines)))
	for _, n := range p.Lines {
		w.Int(n)
	}
	return w.Bytes()
}

func (p *payload) decode(data []byte) error {
	r := bincodec.NewReader(data)
	p.Name = r.String()
	n := r.Count()
	p.Lines = nil
	for i := 0; i < n; i++ {
		p.Lines = append(p.Lines, r.Int())
	}
	return r.Done()
}

func mustOpen(t *testing.T, dir string, opts ...Option) *Cache {
	t.Helper()
	c, err := Open(dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// packFiles lists every pack file under the cache root.
func packFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, packExt) {
			out = append(out, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir)
	key := KeyOf("test", "round-trip")
	want := payload{Name: "x", Lines: []int{1, 2, 3}}
	if err := c.Put(key, want.encode()); err != nil {
		t.Fatal(err)
	}
	// Pre-flush: the entry is served from the pending batch.
	var got payload
	if !c.Get(key, got.decode) {
		t.Fatal("expected hit from the pending batch after Put")
	}
	if got.Name != want.Name || len(got.Lines) != 3 || got.Lines[2] != 3 {
		t.Fatalf("decoded %+v, want %+v", got, want)
	}
	if len(packFiles(t, dir)) != 0 {
		t.Fatal("Put must not write before a flush")
	}

	// Post-flush: a fresh handle reads the pack from disk.
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(packFiles(t, dir)) != 1 {
		t.Fatalf("one pending shard must flush as one pack, got %v", packFiles(t, dir))
	}
	got = payload{}
	if !mustOpen(t, dir).Get(key, got.decode) || got.Name != "x" {
		t.Fatal("expected hit from disk after Flush")
	}
}

func TestMissingKey(t *testing.T) {
	c := mustOpen(t, t.TempDir())
	var v payload
	if c.Get(KeyOf("never", "stored"), v.decode) {
		t.Fatal("expected miss for unknown key")
	}
	if c.Get("", v.decode) || c.Get("a", v.decode) {
		t.Fatal("short keys must miss, not panic")
	}
}

func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir)
	key := KeyOf("corrupt")
	if err := c.Put(key, (&payload{Name: "ok"}).encode()); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	packs := packFiles(t, dir)
	if len(packs) != 1 {
		t.Fatalf("expected one pack, got %v", packs)
	}

	// Truncated pack → its name no longer matches its hash → every entry
	// in it is a miss (a fresh handle sees the disk state; the writing
	// handle legitimately still serves from its in-memory index).
	data, err := os.ReadFile(packs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(packs[0], data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var v payload
	if mustOpen(t, dir).Get(key, v.decode) {
		t.Fatal("truncated pack must be a miss")
	}

	// Garbage pack → miss.
	if err := os.WriteFile(packs[0], []byte("not a valid pack"), 0o644); err != nil {
		t.Fatal(err)
	}
	if mustOpen(t, dir).Get(key, v.decode) {
		t.Fatal("garbage pack must be a miss")
	}

	// Re-Put + Flush repairs by writing a new, valid pack alongside.
	c2 := mustOpen(t, dir)
	if err := c2.Put(key, (&payload{Name: "again"}).encode()); err != nil {
		t.Fatal(err)
	}
	if err := c2.Flush(); err != nil {
		t.Fatal(err)
	}
	if !mustOpen(t, dir).Get(key, v.decode) || v.Name != "again" {
		t.Fatal("Put+Flush over a corrupt pack must restore the entry")
	}
}

// TestOldFormatDirIsCleanMisses pins the format-migration contract: a cache
// root populated by a retired layout (two-hex-char shard dirs of .gob or
// .bin files) serves clean misses — not errors, not corruption counts — and
// the current format repopulates alongside without touching the old files.
func TestOldFormatDirIsCleanMisses(t *testing.T) {
	dir := t.TempDir()
	key := KeyOf("migrated")
	oldPaths := []string{
		filepath.Join(dir, key[:2], key+".gob"),
		filepath.Join(dir, key[:2], key+".bin"),
	}
	for _, p := range oldPaths {
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte("old-era bytes"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	c := mustOpen(t, dir)
	var v payload
	if c.Get(key, v.decode) {
		t.Fatal("old-format entry must read as a miss")
	}
	if err := c.Put(key, (&payload{Name: "new"}).encode()); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if !mustOpen(t, dir).Get(key, v.decode) || v.Name != "new" {
		t.Fatal("current format must repopulate alongside the old files")
	}
	for _, p := range oldPaths {
		if _, err := os.Stat(p); err != nil {
			t.Fatal("migration must not delete old-format files")
		}
	}
}

// TestShardDirDeletedMidRun is the regression test for the stale shard-dir
// bitmap: after a flush marks a shard directory as existing, deleting the
// whole cache root must not make later flushes fail silently — the stale
// bit is cleared, the directory re-probed, and the batch written.
func TestShardDirDeletedMidRun(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir)
	k1 := KeyOf("first")
	if err := c.Put(k1, (&payload{Name: "first"}).encode()); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// The cache root vanishes mid-run (a cleanup job, a tmpfs wipe).
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}

	// A second key in the same shard hits the now-stale bitmap bit.
	k2 := k1
	for i := 0; k2 == k1 || shardOf(k2) != shardOf(k1); i++ {
		k2 = KeyOf("second", string(rune('a'+i)))
	}
	if err := c.Put(k2, (&payload{Name: "second"}).encode()); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatalf("flush after cache-dir deletion must recreate the shard dir, got %v", err)
	}
	var v payload
	if !c.Get(k2, v.decode) || v.Name != "second" {
		t.Fatal("same-handle read must hit after the repaired flush")
	}
	if !mustOpen(t, dir).Get(k2, v.decode) || v.Name != "second" {
		t.Fatal("the repaired flush must be durable on disk")
	}
}

func TestKeyOfLengthPrefixing(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("KeyOf must not collide on concatenation boundaries")
	}
	if KeyOf("x") != KeyOf("x") {
		t.Fatal("KeyOf must be deterministic")
	}
}
