package analysiscache

import (
	"os"
	"path/filepath"
	"testing"
)

type payload struct {
	Name  string
	Lines []int
}

func TestRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("test", "round-trip")
	want := payload{Name: "x", Lines: []int{1, 2, 3}}
	if err := c.Put(key, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	if !c.Get(key, &got) {
		t.Fatal("expected hit after Put")
	}
	if got.Name != want.Name || len(got.Lines) != 3 || got.Lines[2] != 3 {
		t.Fatalf("decoded %+v, want %+v", got, want)
	}
}

func TestMissingKey(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var v payload
	if c.Get(KeyOf("never", "stored"), &v) {
		t.Fatal("expected miss for unknown key")
	}
	if c.Get("", &v) || c.Get("a", &v) {
		t.Fatal("short keys must miss, not panic")
	}
}

func TestCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := KeyOf("corrupt")
	if err := c.Put(key, payload{Name: "ok"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".gob")

	// Truncated entry → miss.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	var v payload
	if c.Get(key, &v) {
		t.Fatal("truncated entry must be a miss")
	}

	// Garbage entry → miss.
	if err := os.WriteFile(path, []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}
	if c.Get(key, &v) {
		t.Fatal("garbage entry must be a miss")
	}

	// Re-Put repairs the slot.
	if err := c.Put(key, payload{Name: "again"}); err != nil {
		t.Fatal(err)
	}
	if !c.Get(key, &v) || v.Name != "again" {
		t.Fatal("Put over a corrupt entry must restore the slot")
	}
}

func TestKeyOfLengthPrefixing(t *testing.T) {
	if KeyOf("ab", "c") == KeyOf("a", "bc") {
		t.Fatal("KeyOf must not collide on concatenation boundaries")
	}
	if KeyOf("x") != KeyOf("x") {
		t.Fatal("KeyOf must be deterministic")
	}
}
