// Package analysiscache is the on-disk incremental analysis cache.
//
// Entries are keyed by content hash: the caller derives a key from everything
// that can influence the cached value (source bytes, the transitive include
// closure, the checker-config fingerprint, a format version tag), so a key
// either resolves to a value computed from identical inputs or does not
// resolve at all. There is no invalidation protocol — stale inputs simply
// hash to a different key, and orphaned entries are harmless dead files.
//
// Entry payloads are opaque byte slices: each caller owns its encoding
// (hand-rolled binary codecs built on internal/bincodec — see internal/cpg,
// internal/facts, internal/core). The cache only moves bytes; the decode
// callback passed to Load/Get interprets them, and any error it returns is
// treated as corruption. Entries use the .bin extension: directories written
// by the earlier gob-encoded format (.gob files) are simply never consulted,
// so a cache root surviving a format change degrades to clean misses.
//
// The cache is defensive by construction: any read error, decode error,
// truncated file, or corrupt payload is reported as a miss, and the caller
// falls back to full re-analysis. A broken cache can cost time, never
// correctness. Load distinguishes the failure modes for observability and
// error handling — a missing entry wraps fs.ErrNotExist, a present-but-
// undecodable entry wraps ErrCorrupt — while Get collapses both to a boolean
// miss.
package analysiscache

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/obs"
)

// ErrCorrupt is the sentinel wrapped by Load when an entry exists on disk
// but cannot be decoded (truncated write, bit rot, codec version drift).
// Callers distinguish it from a plain miss with errors.Is; the cache itself
// always degrades a corrupt entry to a miss.
var ErrCorrupt = errors.New("analysiscache: corrupt entry")

// Cache is a directory of binary-encoded entries, safe for concurrent use by
// multiple goroutines and by multiple processes sharing the directory: keys
// are content hashes, so concurrent writers of one key write identical
// bytes, and a reader that catches a write mid-flight sees a corrupt entry —
// which is just a counted miss.
type Cache struct {
	dir  string
	reg  *obs.Registry
	dirs *shardSet
}

// shardSet remembers which of the 256 shard directories are known to exist,
// so put pays the mkdir negotiation at most once per shard per process
// instead of once per write (mkdir syscalls dominated the cold-cache write
// path before this). A stale bit — someone deleted the directory mid-run —
// is repaired by put's ErrNotExist fallback, so bits are an optimization,
// never a correctness input. Shared by pointer across WithRegistry views.
type shardSet [4]atomic.Uint64

func (s *shardSet) has(i uint8) bool { return s[i>>6].Load()&(1<<(i&63)) != 0 }
func (s *shardSet) set(i uint8)      { s[i>>6].Or(1 << (i & 63)) }

// shardIndex maps the two-hex-char shard prefix of key to its bit index.
func shardIndex(key string) (uint8, bool) {
	hi, ok1 := hexVal(key[0])
	lo, ok2 := hexVal(key[1])
	return hi<<4 | lo, ok1 && ok2
}

func hexVal(c byte) (uint8, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// Open prepares dir as a cache root, creating it if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("analysiscache: %w", err)
	}
	return &Cache{dir: dir, dirs: &shardSet{}}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// WithRegistry returns a view of the cache that counts every read and write
// into reg (cache.read.hit / cache.read.miss / cache.read.corrupt /
// cache.write / cache.write.error). The receiver is not mutated, so one
// shared cache directory can serve traced and untraced runs concurrently.
func (c *Cache) WithRegistry(reg *obs.Registry) *Cache {
	return &Cache{dir: c.dir, reg: reg, dirs: c.dirs}
}

// path shards entries by the first key byte to keep directories small.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".bin")
}

// Load reads the entry for key and hands its payload to decode. A missing
// (or unreadable) entry returns an error wrapping fs.ErrNotExist; an entry
// whose payload decode rejects returns an error wrapping ErrCorrupt. Both
// are misses to Get. The payload slice is owned by the callback for the
// duration of the call only.
func (c *Cache) Load(key string, decode func(data []byte) error) error {
	if len(key) < 2 {
		c.reg.Add("cache.read.miss", 1)
		return fmt.Errorf("analysiscache: short key %q: %w", key, fs.ErrNotExist)
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.reg.Add("cache.read.miss", 1)
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("analysiscache: %w", err)
		}
		// Unreadable-but-present (permissions, I/O error) still reads as
		// not-found to callers: the entry cannot be served.
		return fmt.Errorf("analysiscache: %v: %w", err, fs.ErrNotExist)
	}
	if err := decode(data); err != nil {
		c.reg.Add("cache.read.corrupt", 1)
		return fmt.Errorf("%w: key %s…: %v", ErrCorrupt, key[:8], err)
	}
	c.reg.Add("cache.read.hit", 1)
	return nil
}

// Get reads the entry for key through decode. Any failure — missing file,
// short read, codec mismatch — is a miss. Unlike Load it never renders an
// error: on a cold run every lookup misses, and the discarded fmt.Errorf per
// miss was measurable.
func (c *Cache) Get(key string, decode func(data []byte) error) bool {
	if len(key) < 2 {
		c.reg.Add("cache.read.miss", 1)
		return false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.reg.Add("cache.read.miss", 1)
		return false
	}
	if err := decode(data); err != nil {
		c.reg.Add("cache.read.corrupt", 1)
		return false
	}
	c.reg.Add("cache.read.hit", 1)
	return true
}

// Put stores the encoded payload under key. The write is a plain truncating
// write, not an atomic rename: the key is a content hash, so any concurrent
// writer of the same key writes the same bytes, and a torn write is
// indistinguishable from bit rot — the reader counts a corrupt miss and
// recomputes. Dropping the temp-file dance roughly halves the syscalls on
// the cold path, which file writes dominate.
func (c *Cache) Put(key string, data []byte) error {
	if err := c.put(key, data); err != nil {
		c.reg.Add("cache.write.error", 1)
		return err
	}
	c.reg.Add("cache.write", 1)
	return nil
}

func (c *Cache) put(key string, data []byte) error {
	if len(key) < 2 {
		return fmt.Errorf("analysiscache: short key %q", key)
	}
	dst := c.path(key)
	if idx, hexKey := shardIndex(key); hexKey && !c.dirs.has(idx) {
		// First entry in this shard: create the directory up front rather
		// than paying a guaranteed-failing open first.
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			return err
		}
		c.dirs.set(idx)
	}
	err := os.WriteFile(dst, data, 0o644)
	if errors.Is(err, fs.ErrNotExist) {
		// The shard directory vanished (or the key is non-hex): recreate it
		// and retry once.
		if err = os.MkdirAll(filepath.Dir(dst), 0o755); err == nil {
			err = os.WriteFile(dst, data, 0o644)
		}
	}
	return err
}

// KeyOf derives a cache key from its parts: each part is length-prefixed
// before hashing so distinct part lists can never collide by concatenation.
func KeyOf(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}
