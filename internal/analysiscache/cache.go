// Package analysiscache is the tiered incremental analysis cache: a sharded
// in-memory L1 of decoded values in front of an on-disk L2 of batched,
// content-hash-named pack files.
//
// Entries are keyed by content hash: the caller derives a key from everything
// that can influence the cached value (source bytes, the transitive include
// closure, the checker-config fingerprint, a format version tag), so a key
// either resolves to a value computed from identical inputs or does not
// resolve at all. There is no invalidation protocol — stale inputs simply
// hash to a different key, and orphaned entries are harmless dead bytes.
//
// The tiers:
//
//   - L1 holds already-decoded values (any), sharded into 16 char buckets by
//     the first hex digit of the key, each bucket an LRU list with a byte
//     budget (charged at the encoded size, a stable proxy for the decoded
//     footprint) and a TTL. A warm same-process re-run skips open, read, and
//     codec decode entirely. Values stored in L1 are shared between every
//     future getter, so callers must treat them as immutable.
//   - L2 is the disk tier. Writes are batched: Put and PutValue only append
//     to a per-shard pending buffer; a shard is flushed — one pack file
//     holding every pending entry, named by the content hash of the pack
//     bytes — when its buffer crosses a size threshold, when it has been
//     dirty longer than the flush interval, or explicitly via Flush/Close.
//     Batching collapses the ~3 entry kinds per unit (front-end, facts,
//     reports) into one file write per shard instead of one per entry.
//
// Because a pack's name commits to its content hash, a torn or bit-rotted
// pack is detected by hashing the whole file on load; any mismatch discards
// the entire pack as corrupt. That is the integrity contract that lets the
// writer skip per-entry fsync/rename dances: a torn batch write degrades to
// clean misses for every entry in the batch, never to a wrong answer.
//
// Entry payloads are opaque byte slices: each caller owns its encoding
// (hand-rolled binary codecs built on internal/bincodec — see internal/cpg,
// internal/facts, internal/core). The cache only moves bytes; the decode
// callback passed to Load/Get/GetValue interprets them, and any error it
// returns is treated as corruption. Directories written by earlier formats
// (two-hex-char shard dirs of .gob or .bin files) are simply never
// consulted, so a cache root surviving a format change degrades to clean
// misses.
//
// The cache is defensive by construction: any read error, decode error,
// truncated pack, or corrupt payload is reported as a miss, and the caller
// falls back to full re-analysis. A broken cache can cost time, never
// correctness.
package analysiscache

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrCorrupt is the sentinel wrapped by Load when an entry exists on disk
// but cannot be decoded (truncated pack, bit rot, codec version drift).
// Callers distinguish it from a plain miss with errors.Is; the cache itself
// always degrades a corrupt entry to a miss.
var ErrCorrupt = errors.New("analysiscache: corrupt entry")

// Defaults for Open. WithMemory(0) disables L1 entirely.
const (
	DefaultMemory        = 64 << 20
	DefaultTTL           = 10 * time.Minute
	defaultFlushBytes    = 8 << 20
	defaultFlushInterval = 30 * time.Second
)

// config collects the Open options.
type config struct {
	mem        int64
	ttl        time.Duration
	flushBytes int64
	flushEvery time.Duration
}

// Option configures Open.
type Option func(*config)

// WithMemory sets the L1 byte budget (split evenly across the 16 shards).
// Zero (or negative) disables the in-memory tier: GetValue then decodes from
// disk on every call and PutValue only queues the encoded bytes.
func WithMemory(bytes int64) Option { return func(c *config) { c.mem = bytes } }

// WithTTL sets the L1 entry lifetime; zero means no expiry. Expiry is
// checked on access (there is no background sweeper).
func WithTTL(d time.Duration) Option { return func(c *config) { c.ttl = d } }

// WithFlushThreshold sets the per-shard pending-byte level that triggers an
// inline flush on Put.
func WithFlushThreshold(bytes int64) Option {
	return func(c *config) { c.flushBytes = bytes }
}

// WithFlushInterval sets how long a shard may sit dirty before the next Put
// to it flushes inline. There is no timer goroutine: a process that stops
// writing must call Flush (or Close) to make its last batch durable.
func WithFlushInterval(d time.Duration) Option {
	return func(c *config) { c.flushEvery = d }
}

// Cache is the tiered cache handle, safe for concurrent use by multiple
// goroutines and (for the disk tier) by multiple processes sharing the
// directory: keys are content hashes, so concurrent writers of one key
// write identical bytes, and pack files are named by their own content
// hash, so concurrent flushes of identical batches converge on one file.
type Cache struct {
	dir string
	reg *obs.Registry
	st  *state
}

// state is the tier state shared by pointer across WithRegistry views.
type state struct {
	l1     *l1Cache // nil when the memory tier is disabled
	l2     *l2Tier
	flight flightGroup

	// refs counts the handle's owners (see Retain/Close). Open starts at 1;
	// the transition to 0 performs the final flush and latches closed.
	refs   atomic.Int64
	closed atomic.Bool
}

// Open prepares dir as a cache root, creating it if needed.
func Open(dir string, opts ...Option) (*Cache, error) {
	cfg := config{
		mem:        DefaultMemory,
		ttl:        DefaultTTL,
		flushBytes: defaultFlushBytes,
		flushEvery: defaultFlushInterval,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("analysiscache: %w", err)
	}
	st := &state{l2: newL2Tier(dir, cfg.flushBytes, cfg.flushEvery)}
	st.refs.Store(1)
	if cfg.mem > 0 {
		st.l1 = newL1Cache(cfg.mem, cfg.ttl)
	}
	return &Cache{dir: dir, st: st}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// MemoryEnabled reports whether the L1 value tier is active. Callers use it
// to choose between the value API (values land in L1 and are shared, so
// they must be freshly allocated and immutable) and the byte API (decode
// into caller-owned — possibly pooled — storage).
func (c *Cache) MemoryEnabled() bool { return c.st.l1 != nil }

// WithRegistry returns a view of the cache that counts every tier event
// into reg (cache.read.*, cache.write*, cache.l1.*, cache.l2.batch.*,
// cache.singleflight.*). The receiver is not mutated and all views share
// the tier state, so one cache can serve traced and untraced runs
// concurrently.
func (c *Cache) WithRegistry(reg *obs.Registry) *Cache {
	return &Cache{dir: c.dir, reg: reg, st: c.st}
}

// Load reads the entry for key from the disk tier and hands its payload to
// decode. A missing entry returns an error wrapping fs.ErrNotExist; a
// present-but-undecodable entry wraps ErrCorrupt. Both are misses to Get.
// The payload slice is owned by the callback for the duration of the call
// only.
func (c *Cache) Load(key string, decode func(data []byte) error) error {
	if len(key) < 2 || c.st.closed.Load() {
		c.reg.Add("cache.read.miss", 1)
		return fmt.Errorf("analysiscache: short key or closed handle: %w", fs.ErrNotExist)
	}
	data, corrupt, ok := c.st.l2.lookup(key)
	if corrupt > 0 {
		c.reg.Add("cache.read.corrupt", int64(corrupt))
	}
	if !ok {
		c.reg.Add("cache.read.miss", 1)
		return fmt.Errorf("analysiscache: no entry for key: %w", fs.ErrNotExist)
	}
	if err := decode(data); err != nil {
		c.reg.Add("cache.read.corrupt", 1)
		return fmt.Errorf("%w: key %s…: %v", ErrCorrupt, key[:8], err)
	}
	c.reg.Add("cache.read.hit", 1)
	return nil
}

// Get reads the entry for key through decode, bypassing L1 (the decoded
// result stays caller-owned, so decode may target pooled storage). Any
// failure — missing entry, torn pack, codec mismatch — is a miss.
func (c *Cache) Get(key string, decode func(data []byte) error) bool {
	if len(key) < 2 || c.st.closed.Load() {
		c.reg.Add("cache.read.miss", 1)
		return false
	}
	data, corrupt, ok := c.st.l2.lookup(key)
	if corrupt > 0 {
		c.reg.Add("cache.read.corrupt", int64(corrupt))
	}
	if !ok {
		c.reg.Add("cache.read.miss", 1)
		return false
	}
	if err := decode(data); err != nil {
		c.reg.Add("cache.read.corrupt", 1)
		return false
	}
	c.reg.Add("cache.read.hit", 1)
	return true
}

// GetValue reads the decoded value for key through the tiers: L1 first,
// then the disk tier via decode, inserting a disk hit into L1 so the next
// same-process lookup skips the decode. The returned value is shared with
// every other getter of the key — callers must treat it (and everything
// reachable from it) as immutable, and decode must build it in fresh
// storage, never in pooled buffers.
func (c *Cache) GetValue(key string, decode func(data []byte) (any, error)) (any, bool) {
	if len(key) < 2 || c.st.closed.Load() {
		c.reg.Add("cache.read.miss", 1)
		return nil, false
	}
	l1 := c.st.l1
	if l1 != nil {
		v, ok, evicted := l1.get(key)
		if evicted > 0 {
			c.reg.Add("cache.l1.evict", int64(evicted))
		}
		if ok {
			c.reg.Add("cache.l1.hit", 1)
			return v, true
		}
		c.reg.Add("cache.l1.miss", 1)
	}
	data, corrupt, ok := c.st.l2.lookup(key)
	if corrupt > 0 {
		c.reg.Add("cache.read.corrupt", int64(corrupt))
	}
	if !ok {
		c.reg.Add("cache.read.miss", 1)
		return nil, false
	}
	v, err := decode(data)
	if err != nil {
		c.reg.Add("cache.read.corrupt", 1)
		return nil, false
	}
	c.reg.Add("cache.read.hit", 1)
	if l1 != nil {
		if evicted := l1.put(key, v, int64(len(data))); evicted > 0 {
			c.reg.Add("cache.l1.evict", int64(evicted))
		}
		c.reg.SetGauge("cache.l1.bytes", float64(l1.bytes.Load()))
	}
	return v, true
}

// Put queues the encoded payload for key in the disk tier's pending batch.
// The bytes reach disk at the next flush (threshold, interval, Flush, or
// Close); until then same-process reads are served from the pending buffer.
// The data slice is retained until flushed and must not be mutated after
// the call. An error means the entry was accepted but an inline flush it
// triggered failed — the batch is dropped and its entries become misses.
func (c *Cache) Put(key string, data []byte) error {
	if len(key) < 2 {
		c.reg.Add("cache.write.error", 1)
		return fmt.Errorf("analysiscache: short key %q", key)
	}
	if c.st.closed.Load() {
		c.reg.Add("cache.write.error", 1)
		return fmt.Errorf("analysiscache: write to closed handle")
	}
	c.reg.Add("cache.write", 1)
	return c.maybeFlush(c.st.l2.put(key, data))
}

// PutValue stores the decoded value in L1 and queues its encoding for the
// disk tier. The value is shared with every future GetValue of the key and
// must be immutable; encoded is retained until flushed.
func (c *Cache) PutValue(key string, val any, encoded []byte) error {
	if len(key) < 2 {
		c.reg.Add("cache.write.error", 1)
		return fmt.Errorf("analysiscache: short key %q", key)
	}
	if c.st.closed.Load() {
		c.reg.Add("cache.write.error", 1)
		return fmt.Errorf("analysiscache: write to closed handle")
	}
	if l1 := c.st.l1; l1 != nil {
		if evicted := l1.put(key, val, int64(len(encoded))); evicted > 0 {
			c.reg.Add("cache.l1.evict", int64(evicted))
		}
		c.reg.SetGauge("cache.l1.bytes", float64(l1.bytes.Load()))
	}
	c.reg.Add("cache.write", 1)
	return c.maybeFlush(c.st.l2.put(key, encoded))
}

// maybeFlush flushes one shard when put reported its threshold or interval
// crossed, charging the flush counters to this view's registry.
func (c *Cache) maybeFlush(sh *l2Shard) error {
	if sh == nil {
		return nil
	}
	return c.chargeFlush(c.st.l2.flushShard(sh))
}

// chargeFlush translates one shard flush result into counters.
func (c *Cache) chargeFlush(res flushResult) error {
	if res.packs > 0 {
		c.reg.Add("cache.l2.batch.flushes", int64(res.packs))
		c.reg.Add("cache.l2.batch.entries", int64(res.entries))
	}
	if res.dropped > 0 {
		c.reg.Add("cache.write.error", int64(res.dropped))
	}
	return res.err
}

// Flush writes every shard's pending batch to disk. Analyze calls it at the
// end of its cache-store phase so a run's entries are durable (and visible
// to other processes) without waiting for thresholds; CLI tools call Close.
// The first error is returned; failed batches are dropped, so a flush error
// costs future runs recomputes, never correctness. Flushing a closed handle
// is a no-op.
func (c *Cache) Flush() error {
	if c.st.closed.Load() {
		return nil
	}
	return c.flushAll()
}

func (c *Cache) flushAll() error {
	var first error
	for i := range c.st.l2.shards {
		if err := c.chargeFlush(c.st.l2.flushShard(&c.st.l2.shards[i])); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Retain adds an owner to the shared cache handle and returns c for
// chaining. Every Retain must be balanced by one Close; the handle only
// closes for real when the last owner releases it.
//
// This is the lifecycle model a long-lived server needs: the daemon Opens
// (one ref) and Retains once per component that holds the handle, so a
// request path calling Close — the CLI habit of "Close after Analyze" —
// can never tear the warm tiers down under concurrent requests.
func (c *Cache) Retain() *Cache {
	c.st.refs.Add(1)
	return c
}

// Close releases one owner reference, flushing pending batches either way
// (an intermediate release keeps the historical "Close is Flush" behavior,
// so a CLI's single Open→Analyze→Close sequence is unchanged). When the last
// owner releases, the handle latches closed: subsequent reads degrade to
// misses and writes are rejected, so a stale holder can cost recomputes but
// never corrupt a newer owner's view. Closing an already-closed handle is a
// harmless no-op.
func (c *Cache) Close() error {
	for {
		n := c.st.refs.Load()
		if n <= 0 {
			return nil
		}
		if !c.st.refs.CompareAndSwap(n, n-1) {
			continue
		}
		if n > 1 {
			return c.Flush()
		}
		// Last owner: make pending writes durable, then latch closed.
		err := c.flushAll()
		c.st.closed.Store(true)
		return err
	}
}

// Closed reports whether the last owner has released the handle.
func (c *Cache) Closed() bool { return c.st.closed.Load() }

// Flight deduplicates concurrent computations of key: the first caller
// (the leader) runs fn while every concurrent caller with the same key
// blocks and shares the leader's result. leader reports whether this call
// ran fn. A leader that fails or panics releases its waiters, who retry for
// leadership rather than inheriting the failure; ctx cancellation while
// waiting returns ctx.Err(). The cache does not count singleflight events
// itself — callers charge cache.singleflight.{leader,wait} where they can
// tell a real computation from a fallback cache hit.
func (c *Cache) Flight(ctx context.Context, key string, fn func() (any, error)) (v any, leader bool, err error) {
	return c.st.flight.do(ctx, key, fn)
}

// Stats is a point-in-time snapshot of the in-memory tier (counters live in
// the obs registry; this covers the gauges a CLI wants to print at exit).
type Stats struct {
	L1Entries int64 // values currently held by the memory tier
	L1Bytes   int64 // their encoded-size charge against the budget
	Pending   int64 // disk-tier entries buffered but not yet flushed
}

// Stats snapshots the tier gauges.
func (c *Cache) Stats() Stats {
	var s Stats
	if l1 := c.st.l1; l1 != nil {
		s.L1Entries, s.L1Bytes = l1.stats()
	}
	s.Pending = c.st.l2.pendingEntries()
	return s
}

// KeyOf derives a cache key from its parts: each part is length-prefixed
// before hashing so distinct part lists can never collide by concatenation.
func KeyOf(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}
