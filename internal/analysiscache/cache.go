// Package analysiscache is the on-disk incremental analysis cache.
//
// Entries are keyed by content hash: the caller derives a key from everything
// that can influence the cached value (source bytes, the transitive include
// closure, the checker-config fingerprint, a format version tag), so a key
// either resolves to a value computed from identical inputs or does not
// resolve at all. There is no invalidation protocol — stale inputs simply
// hash to a different key, and orphaned entries are harmless dead files.
//
// The cache is defensive by construction: any read error, decode error,
// truncated file, or corrupt payload is reported as a miss, and the caller
// falls back to full re-analysis. A broken cache can cost time, never
// correctness.
package analysiscache

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// Cache is a directory of gob-encoded entries, safe for concurrent use by
// multiple goroutines (and, because writes are atomic renames, by multiple
// processes sharing the directory).
type Cache struct {
	dir string
}

// Open prepares dir as a cache root, creating it if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("analysiscache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// path shards entries by the first key byte to keep directories small.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".gob")
}

// Get decodes the entry for key into v. Any failure — missing file, short
// read, gob mismatch — is a miss.
func (c *Cache) Get(key string, v any) bool {
	if len(key) < 2 {
		return false
	}
	f, err := os.Open(c.path(key))
	if err != nil {
		return false
	}
	defer f.Close()
	return gob.NewDecoder(f).Decode(v) == nil
}

// Put stores v under key. The entry is written to a temp file and renamed
// into place, so concurrent readers never observe a partial entry.
func (c *Cache) Put(key string, v any) error {
	if len(key) < 2 {
		return fmt.Errorf("analysiscache: short key %q", key)
	}
	dst := c.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "put-*")
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(tmp).Encode(v); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), dst)
}

// KeyOf derives a cache key from its parts: each part is length-prefixed
// before hashing so distinct part lists can never collide by concatenation.
func KeyOf(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}
