// Package analysiscache is the on-disk incremental analysis cache.
//
// Entries are keyed by content hash: the caller derives a key from everything
// that can influence the cached value (source bytes, the transitive include
// closure, the checker-config fingerprint, a format version tag), so a key
// either resolves to a value computed from identical inputs or does not
// resolve at all. There is no invalidation protocol — stale inputs simply
// hash to a different key, and orphaned entries are harmless dead files.
//
// The cache is defensive by construction: any read error, decode error,
// truncated file, or corrupt payload is reported as a miss, and the caller
// falls back to full re-analysis. A broken cache can cost time, never
// correctness. Load distinguishes the failure modes for observability and
// error handling — a missing entry wraps fs.ErrNotExist, a present-but-
// undecodable entry wraps ErrCorrupt — while Get collapses both to a boolean
// miss.
package analysiscache

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/obs"
)

// ErrCorrupt is the sentinel wrapped by Load when an entry exists on disk
// but cannot be decoded (truncated write, bit rot, gob schema drift).
// Callers distinguish it from a plain miss with errors.Is; the cache itself
// always degrades a corrupt entry to a miss.
var ErrCorrupt = errors.New("analysiscache: corrupt entry")

// Cache is a directory of gob-encoded entries, safe for concurrent use by
// multiple goroutines (and, because writes are atomic renames, by multiple
// processes sharing the directory).
type Cache struct {
	dir string
	reg *obs.Registry
}

// Open prepares dir as a cache root, creating it if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("analysiscache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// WithRegistry returns a view of the cache that counts every read and write
// into reg (cache.read.hit / cache.read.miss / cache.read.corrupt /
// cache.write / cache.write.error). The receiver is not mutated, so one
// shared cache directory can serve traced and untraced runs concurrently.
func (c *Cache) WithRegistry(reg *obs.Registry) *Cache {
	return &Cache{dir: c.dir, reg: reg}
}

// path shards entries by the first key byte to keep directories small.
func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".gob")
}

// Load decodes the entry for key into v. A missing (or unreadable) entry
// returns an error wrapping fs.ErrNotExist; an entry that exists but fails
// to decode returns an error wrapping ErrCorrupt. Both are misses to Get.
func (c *Cache) Load(key string, v any) error {
	if len(key) < 2 {
		c.reg.Add("cache.read.miss", 1)
		return fmt.Errorf("analysiscache: short key %q: %w", key, fs.ErrNotExist)
	}
	f, err := os.Open(c.path(key))
	if err != nil {
		c.reg.Add("cache.read.miss", 1)
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("analysiscache: %w", err)
		}
		// Unreadable-but-present (permissions, I/O error) still reads as
		// not-found to callers: the entry cannot be served.
		return fmt.Errorf("analysiscache: %v: %w", err, fs.ErrNotExist)
	}
	defer f.Close()
	if err := gob.NewDecoder(f).Decode(v); err != nil {
		c.reg.Add("cache.read.corrupt", 1)
		return fmt.Errorf("%w: key %s…: %v", ErrCorrupt, key[:8], err)
	}
	c.reg.Add("cache.read.hit", 1)
	return nil
}

// Get decodes the entry for key into v. Any failure — missing file, short
// read, gob mismatch — is a miss.
func (c *Cache) Get(key string, v any) bool {
	return c.Load(key, v) == nil
}

// Put stores v under key. The entry is written to a temp file and renamed
// into place, so concurrent readers never observe a partial entry.
func (c *Cache) Put(key string, v any) error {
	if err := c.put(key, v); err != nil {
		c.reg.Add("cache.write.error", 1)
		return err
	}
	c.reg.Add("cache.write", 1)
	return nil
}

func (c *Cache) put(key string, v any) error {
	if len(key) < 2 {
		return fmt.Errorf("analysiscache: short key %q", key)
	}
	dst := c.path(key)
	if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(dst), "put-*")
	if err != nil {
		return err
	}
	if err := gob.NewEncoder(tmp).Encode(v); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), dst)
}

// KeyOf derives a cache key from its parts: each part is length-prefixed
// before hashing so distinct part lists can never collide by concatenation.
func KeyOf(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:", len(p))
		h.Write([]byte(p))
	}
	return hex.EncodeToString(h.Sum(nil))
}
