package analysiscache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightDedup checks the core contract: N concurrent callers of one key
// run fn exactly once, exactly one of them reports leader, and everyone
// gets the leader's value.
func TestFlightDedup(t *testing.T) {
	var g flightGroup
	var calls atomic.Int64
	gate := make(chan struct{})
	entered := make(chan struct{})

	const callers = 8
	type result struct {
		v      any
		leader bool
		err    error
	}
	results := make(chan result, callers)
	run := func(first bool) {
		v, leader, err := g.do(context.Background(), "k", func() (any, error) {
			if first {
				close(entered)
			}
			calls.Add(1)
			<-gate
			return "shared", nil
		})
		results <- result{v, leader, err}
	}
	go run(true)
	<-entered
	for i := 1; i < callers; i++ {
		go run(false)
	}
	// Give the waiters a moment to reach the flight before releasing the
	// leader; a too-early release only weakens the test, never breaks it.
	time.Sleep(20 * time.Millisecond)
	close(gate)

	leaders := 0
	for i := 0; i < callers; i++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("unexpected error: %v", r.err)
		}
		if r.v != "shared" {
			t.Fatalf("caller got %v, want shared value", r.v)
		}
		if r.leader {
			leaders++
		}
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if leaders != 1 {
		t.Fatalf("%d callers claimed leadership, want 1", leaders)
	}
}

// TestFlightLeaderCrashFallback is the leader-crash contract: when fn
// panics, the panic propagates to the leader's caller while every waiter is
// released to retry for leadership instead of inheriting the crash.
func TestFlightLeaderCrashFallback(t *testing.T) {
	var g flightGroup
	entered := make(chan struct{})
	gate := make(chan struct{})
	crashed := make(chan any, 1)

	go func() {
		defer func() { crashed <- recover() }()
		g.do(context.Background(), "k", func() (any, error) {
			close(entered)
			<-gate
			panic("leader dies")
		})
	}()
	<-entered

	done := make(chan struct{})
	var v any
	var leader bool
	var err error
	go func() {
		defer close(done)
		v, leader, err = g.do(context.Background(), "k", func() (any, error) {
			return "recovered", nil
		})
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter block on the flight
	close(gate)

	if r := <-crashed; r != "leader dies" {
		t.Fatalf("leader's panic must propagate to its caller, got %v", r)
	}
	<-done
	if err != nil || v != "recovered" || !leader {
		t.Fatalf("waiter must retake leadership after a crash: v=%v leader=%v err=%v", v, leader, err)
	}
}

// TestFlightLeaderErrorRetry: a leader returning an error keeps the error
// for itself; waiters retry and compute their own result.
func TestFlightLeaderErrorRetry(t *testing.T) {
	var g flightGroup
	entered := make(chan struct{})
	gate := make(chan struct{})
	boom := errors.New("boom")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, leader, err := g.do(context.Background(), "k", func() (any, error) {
			close(entered)
			<-gate
			return nil, boom
		})
		if !leader || !errors.Is(err, boom) {
			t.Errorf("leader must keep its own error, leader=%v err=%v", leader, err)
		}
	}()
	<-entered

	wg.Add(1)
	go func() {
		defer wg.Done()
		v, leader, err := g.do(context.Background(), "k", func() (any, error) {
			return "second try", nil
		})
		if err != nil || v != "second try" || !leader {
			t.Errorf("waiter must retry after leader error: v=%v leader=%v err=%v", v, leader, err)
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
}

// TestFlightWaiterCancellation: a waiter whose ctx dies stops waiting with
// ctx's error; the leader is unaffected.
func TestFlightWaiterCancellation(t *testing.T) {
	var g flightGroup
	entered := make(chan struct{})
	gate := make(chan struct{})

	go func() {
		g.do(context.Background(), "k", func() (any, error) {
			close(entered)
			<-gate
			return "late", nil
		})
	}()
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := g.do(ctx, "k", func() (any, error) { return "never", nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter must return ctx.Err(), got %v", err)
	}
	close(gate)
}
