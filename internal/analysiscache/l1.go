package analysiscache

import (
	"sync"
	"sync/atomic"
	"time"
)

// numShards is the char-bucket fanout of both tiers: entries map to a shard
// by the first hex digit of their key. Keys are sha256 hex, so the spread
// is uniform; a non-hex first byte (impossible for KeyOf output) lands in
// shard 0.
const numShards = 16

func shardOf(key string) int {
	if v, ok := hexVal(key[0]); ok {
		return int(v)
	}
	return 0
}

func hexVal(c byte) (uint8, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}

// l1Cache is the in-memory value tier: 16 independently locked shards, each
// an LRU list over a map, bounded by bytes (the entry's encoded size is the
// charge — a stable, already-known proxy for the decoded footprint) and by
// a TTL checked on access.
type l1Cache struct {
	shardBudget int64
	ttl         time.Duration
	bytes       atomic.Int64 // total charge across shards, for the gauge
	entries     atomic.Int64
	shards      [numShards]l1Shard
}

type l1Shard struct {
	mu    sync.Mutex
	m     map[string]*l1Entry
	bytes int64
	// LRU list: head is most recently used, tail is the eviction victim.
	head, tail *l1Entry
}

type l1Entry struct {
	key        string
	val        any
	size       int64
	exp        int64 // unix nanos; 0 = never expires
	prev, next *l1Entry
}

func newL1Cache(budget int64, ttl time.Duration) *l1Cache {
	b := budget / numShards
	if b < 1 {
		b = 1
	}
	c := &l1Cache{shardBudget: b, ttl: ttl}
	for i := range c.shards {
		c.shards[i].m = make(map[string]*l1Entry)
	}
	return c
}

// get returns the live value for key, expiring it instead when its TTL has
// passed (evicted counts entries removed by this call — 0 or 1).
func (c *l1Cache) get(key string) (v any, ok bool, evicted int) {
	s := &c.shards[shardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.m[key]
	if e == nil {
		return nil, false, 0
	}
	if e.exp != 0 && time.Now().UnixNano() > e.exp {
		s.remove(e)
		c.bytes.Add(-e.size)
		c.entries.Add(-1)
		return nil, false, 1
	}
	s.moveFront(e)
	return e.val, true, 0
}

// put inserts (or refreshes) key and evicts LRU entries until the shard is
// back under budget, returning how many were evicted. A value larger than
// the whole shard budget is not cached at all — admitting it would evict
// everything else for a value that can never stay.
func (c *l1Cache) put(key string, val any, size int64) (evicted int) {
	if size > c.shardBudget {
		return 0
	}
	s := &c.shards[shardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if e := s.m[key]; e != nil {
		c.bytes.Add(size - e.size)
		s.bytes += size - e.size
		e.val, e.size = val, size
		if c.ttl > 0 {
			e.exp = time.Now().Add(c.ttl).UnixNano()
		}
		s.moveFront(e)
	} else {
		e := &l1Entry{key: key, val: val, size: size}
		if c.ttl > 0 {
			e.exp = time.Now().Add(c.ttl).UnixNano()
		}
		s.m[key] = e
		s.pushFront(e)
		s.bytes += size
		c.bytes.Add(size)
		c.entries.Add(1)
	}
	for s.bytes > c.shardBudget && s.tail != nil {
		victim := s.tail
		s.remove(victim)
		c.bytes.Add(-victim.size)
		c.entries.Add(-1)
		evicted++
	}
	return evicted
}

func (c *l1Cache) stats() (entries, bytes int64) {
	return c.entries.Load(), c.bytes.Load()
}

func (s *l1Shard) pushFront(e *l1Entry) {
	e.prev = nil
	e.next = s.head
	if s.head != nil {
		s.head.prev = e
	}
	s.head = e
	if s.tail == nil {
		s.tail = e
	}
}

func (s *l1Shard) moveFront(e *l1Entry) {
	if s.head == e {
		return
	}
	s.unlink(e)
	s.pushFront(e)
}

func (s *l1Shard) remove(e *l1Entry) {
	s.unlink(e)
	s.bytes -= e.size
	delete(s.m, e.key)
}

func (s *l1Shard) unlink(e *l1Entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		s.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
