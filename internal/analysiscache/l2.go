package analysiscache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// packMagic heads every pack file; the trailing digit is the pack format
// version. The file name is the first 32 hex chars of the sha256 of the
// whole file (magic included), so integrity and identity are one check.
const packMagic = "rcpk1\n"

// packNameLen is 32 hash chars + ".pack".
const (
	packHashLen = 32
	packExt     = ".pack"
)

// l2Tier is the disk tier: 16 single-hex-char shard directories of pack
// files plus, per shard, a pending write batch and a lazily loaded index of
// every valid pack's entries. The index retains pack bytes in memory for
// the life of the handle — bounded by what this process actually reads, and
// the payloads the callers decode would otherwise be read again per lookup.
type l2Tier struct {
	dir        string
	flushBytes int64
	flushEvery time.Duration

	// dirs remembers which shard directories are known to exist so a flush
	// pays the mkdir probe at most once per shard per process. A stale bit
	// (the cache dir was deleted mid-run) is cleared and re-probed by the
	// flush path's ErrNotExist fallback, so bits are an optimization, never
	// a correctness input.
	dirs atomic.Uint32

	shards [numShards]l2Shard
}

type l2Shard struct {
	n  int // shard number; names the directory
	mu sync.Mutex

	// pending is the write batch: queued by put, cleared by flush. Reads
	// consult it first so a process always sees its own writes.
	pending      map[string][]byte
	pendingBytes int64
	dirtySince   time.Time

	// packs indexes every entry of every valid pack seen so far: loaded
	// from disk on the shard's first read, extended in place on every
	// successful flush.
	packs  map[string][]byte
	loaded bool
}

func newL2Tier(dir string, flushBytes int64, flushEvery time.Duration) *l2Tier {
	t := &l2Tier{dir: dir, flushBytes: flushBytes, flushEvery: flushEvery}
	for i := range t.shards {
		t.shards[i].n = i
	}
	return t
}

func (t *l2Tier) shardDir(n int) string {
	return filepath.Join(t.dir, string("0123456789abcdef"[n]))
}

// lookup returns the payload for key from the pending batch or the pack
// index, loading the shard's packs from disk on first use. corrupt counts
// packs discarded by this call (hash mismatch, unreadable, malformed).
func (t *l2Tier) lookup(key string) (data []byte, corrupt int, ok bool) {
	s := &t.shards[shardOf(key)]
	s.mu.Lock()
	defer s.mu.Unlock()
	if d, ok := s.pending[key]; ok {
		return d, 0, true
	}
	corrupt = t.ensureLoaded(s)
	d, ok := s.packs[key]
	return d, corrupt, ok
}

// ensureLoaded reads and verifies every pack in the shard directory once
// per handle. Caller holds s.mu.
func (t *l2Tier) ensureLoaded(s *l2Shard) (corrupt int) {
	if s.loaded {
		return 0
	}
	s.loaded = true
	if s.packs == nil {
		s.packs = make(map[string][]byte)
	}
	ents, err := os.ReadDir(t.shardDir(s.n))
	if err != nil {
		return 0 // no shard dir yet: nothing stored, nothing corrupt
	}
	// ReadDir returns sorted names, so duplicate keys across packs resolve
	// deterministically (identical bytes anyway: keys are content hashes).
	for _, de := range ents {
		name := de.Name()
		if !strings.HasSuffix(name, packExt) || len(name) != packHashLen+len(packExt) {
			continue
		}
		data, err := os.ReadFile(filepath.Join(t.shardDir(s.n), name))
		if err != nil {
			corrupt++
			continue
		}
		sum := sha256.Sum256(data)
		if hex.EncodeToString(sum[:])[:packHashLen] != name[:packHashLen] {
			// Torn write or bit rot: the whole pack is untrusted. Every
			// entry it held degrades to a miss.
			corrupt++
			continue
		}
		if !parsePack(data, s.packs) {
			corrupt++
			continue
		}
	}
	return corrupt
}

// put queues one entry and reports the shard to flush inline when its batch
// crossed the size threshold or has been dirty past the flush interval
// (nil otherwise). The data slice is retained until flushed.
func (t *l2Tier) put(key string, data []byte) *l2Shard {
	s := &t.shards[shardOf(key)]
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.pending[key]; !dup {
		if s.pending == nil {
			s.pending = make(map[string][]byte)
		}
		if len(s.pending) == 0 {
			s.dirtySince = now
		}
		s.pending[key] = data
		s.pendingBytes += int64(len(data))
	}
	if s.pendingBytes >= t.flushBytes || now.Sub(s.dirtySince) >= t.flushEvery {
		return s
	}
	return nil
}

// flushResult is one shard flush's accounting: packs/entries written, or
// entries dropped with the error that dropped them.
type flushResult struct {
	packs   int
	entries int
	dropped int
	err     error
}

// flushShard writes the shard's pending batch as one pack file. Entries are
// packed in sorted key order, so a given batch always produces identical
// bytes — and therefore an identical file name — no matter which worker
// queued what first; concurrent identical flushes converge on one file. On
// a write failure the batch is dropped: the entries become misses, which is
// the cache's one failure mode.
func (t *l2Tier) flushShard(s *l2Shard) flushResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.pending)
	if n == 0 {
		return flushResult{}
	}
	keys := make([]string, 0, n)
	for k := range s.pending {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	pack := buildPack(keys, s.pending)
	sum := sha256.Sum256(pack)
	name := hex.EncodeToString(sum[:])[:packHashLen] + packExt
	err := t.writePack(s.n, name, pack)

	pending := s.pending
	s.pending = nil
	s.pendingBytes = 0
	s.dirtySince = time.Time{}
	if err != nil {
		return flushResult{dropped: n, err: err}
	}
	// Fold the flushed entries into the index so same-handle reads keep
	// hitting without re-reading the pack.
	if s.packs == nil {
		s.packs = make(map[string][]byte, n)
	}
	for k, v := range pending {
		s.packs[k] = v
	}
	return flushResult{packs: 1, entries: n}
}

// writePack writes one pack file, negotiating the shard directory through
// the dirs bitmap: probe with mkdir only on the first write per shard, and
// when the directory vanished underneath a set bit (ErrNotExist on a shard
// the bitmap swears exists), clear the stale bit, recreate, and retry once.
func (t *l2Tier) writePack(shard int, name string, pack []byte) error {
	dir := t.shardDir(shard)
	bit := uint32(1) << shard
	if t.dirs.Load()&bit == 0 {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
		t.dirs.Or(bit)
	}
	err := os.WriteFile(filepath.Join(dir, name), pack, 0o644)
	if errors.Is(err, fs.ErrNotExist) {
		t.dirs.And(^bit)
		if err = os.MkdirAll(dir, 0o755); err == nil {
			t.dirs.Or(bit)
			err = os.WriteFile(filepath.Join(dir, name), pack, 0o644)
		}
	}
	return err
}

func (t *l2Tier) pendingEntries() int64 {
	var n int64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += int64(len(s.pending))
		s.mu.Unlock()
	}
	return n
}

// buildPack serializes the batch: magic, then per entry a length-prefixed
// key and payload. No per-entry checksum — the file name commits to the
// hash of the whole pack.
func buildPack(keys []string, pending map[string][]byte) []byte {
	size := len(packMagic)
	for _, k := range keys {
		size += 8 + len(k) + len(pending[k])
	}
	out := make([]byte, 0, size)
	out = append(out, packMagic...)
	var u [4]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint32(u[:], uint32(len(k)))
		out = append(out, u[:]...)
		out = append(out, k...)
		binary.LittleEndian.PutUint32(u[:], uint32(len(pending[k])))
		out = append(out, u[:]...)
		out = append(out, pending[k]...)
	}
	return out
}

// parsePack decodes a hash-verified pack into the index, payloads aliasing
// the pack buffer. A structural failure (possible only through format
// drift, since the hash already matched) rejects the whole pack without
// touching the index.
func parsePack(data []byte, into map[string][]byte) bool {
	if len(data) < len(packMagic) || string(data[:len(packMagic)]) != packMagic {
		return false
	}
	type rec struct {
		key string
		val []byte
	}
	var recs []rec
	off := len(packMagic)
	for off < len(data) {
		if off+4 > len(data) {
			return false
		}
		klen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if klen <= 0 || off+klen > len(data) {
			return false
		}
		key := string(data[off : off+klen])
		off += klen
		if off+4 > len(data) {
			return false
		}
		vlen := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if vlen < 0 || off+vlen > len(data) {
			return false
		}
		recs = append(recs, rec{key, data[off : off+vlen : off+vlen]})
		off += vlen
	}
	for _, r := range recs {
		into[r.key] = r.val
	}
	return true
}
