package cliopts

import (
	"flag"
	"strings"
	"testing"
)

func flagNames(fs *flag.FlagSet) map[string]bool {
	names := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { names[f.Name] = true })
	return names
}

// TestRegisterMasks pins the bitmask registration contract: each Set
// constant contributes exactly its flags, so a CLI's surface is the union
// of the masks it asks for and nothing else.
func TestRegisterMasks(t *testing.T) {
	cases := []struct {
		mask    Set
		want    []string
		notWant []string
	}{
		{Demo, []string{"demo", "seed"}, []string{"scale", "workers", "cache", "json"}},
		{Scale, []string{"scale", "releases"}, []string{"demo", "cache"}},
		{Render, []string{"json", "pattern"}, []string{"demo", "workers"}},
		{Workers, []string{"workers"}, []string{"checkers"}},
		{Checkers, []string{"checkers"}, []string{"workers"}},
		{Cache, []string{"cache", "cache-mem"}, []string{"stats-json"}},
		{Stats, []string{"stats-json", "trace-out"}, []string{"v"}},
		{Verbose, []string{"v"}, []string{"stats-json"}},
		{Analysis, []string{"demo", "seed", "json", "pattern", "workers", "checkers",
			"cache", "cache-mem", "stats-json", "trace-out", "v"}, []string{"scale", "releases"}},
	}
	for _, c := range cases {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		var o Opts
		o.Register(fs, c.mask)
		names := flagNames(fs)
		for _, w := range c.want {
			if !names[w] {
				t.Errorf("mask %b: flag -%s not registered", c.mask, w)
			}
		}
		for _, nw := range c.notWant {
			if names[nw] {
				t.Errorf("mask %b: flag -%s registered but not requested", c.mask, nw)
			}
		}
	}
}

// TestDefaults pins the canonical defaults every CLI now shares.
func TestDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var o Opts
	o.Register(fs, Analysis|Scale)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o.Seed != 1 || o.ScaleN != 1 || o.Releases != 1 {
		t.Errorf("seed/scale/releases = %d/%d/%d, want 1/1/1", o.Seed, o.ScaleN, o.Releases)
	}
	if o.CacheMem != 64 {
		t.Errorf("cache-mem default = %d, want 64", o.CacheMem)
	}
	if o.Demo || o.JSON || o.Verbose || o.CacheDir != "" {
		t.Error("boolean/path defaults not zero")
	}
}

// TestSelected pins checker-selection parsing, including the error path
// for unknown pattern IDs.
func TestSelected(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	var o Opts
	o.Register(fs, Checkers)
	if err := fs.Parse([]string{"-checkers", "P1,P4"}); err != nil {
		t.Fatal(err)
	}
	sel, err := o.Selected()
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 {
		t.Fatalf("selected %d checkers, want 2", len(sel))
	}

	o.Checkers = "P99"
	if _, err := o.Selected(); err == nil || !strings.Contains(err.Error(), "P99") {
		t.Errorf("unknown pattern error = %v, want mention of P99", err)
	}
}

// TestSourcesDemo pins the shared demo-corpus path: -demo (or the
// demo-default with no args) yields the seeded corpus, scaled by -scale.
func TestSourcesDemo(t *testing.T) {
	o := Opts{Demo: true, Seed: 1, ScaleN: 1}
	sources, headers, err := o.Sources(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) == 0 || len(headers) == 0 {
		t.Fatal("demo corpus empty")
	}
	o2 := Opts{Demo: true, Seed: 1, ScaleN: 2}
	s2, _, err := o2.Sources(nil, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(s2) <= len(sources) {
		t.Errorf("scale 2 gave %d files, scale 1 gave %d — -scale not applied", len(s2), len(sources))
	}

	// No args, no -demo, demoDefault off: a usage error, not a silent demo.
	o3 := Opts{Seed: 1}
	if _, _, err := o3.Sources(nil, false); err == nil {
		t.Error("expected an error with no sources and no demo default")
	}
}
