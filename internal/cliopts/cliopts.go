// Package cliopts is the single definition of the flag surface shared by the
// analysis binaries (refcheck, refcheckd, refcheck-manager, reproduce,
// refgen). Each binary registers the subset it supports via a Set mask, so
// -workers / -checkers / -cache / -cache-mem / -stats-json / -trace-out are
// defined once — same names, same help text, same semantics everywhere — and
// the mapping onto core.Options / core.Request lives in one place.
package cliopts

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysiscache"
	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/cpg"
	"repro/internal/loader"
	"repro/internal/obs"
)

// Set selects which flag groups a binary registers.
type Set uint

const (
	// Demo registers -demo and -seed (the built-in synthetic corpus).
	Demo Set = 1 << iota
	// Scale registers -scale and -releases (workload sizing for refgen).
	Scale
	// Render registers -json and -pattern (report output shaping).
	Render
	// Workers registers -workers.
	Workers
	// Checkers registers -checkers.
	Checkers
	// Cache registers -cache and -cache-mem.
	Cache
	// Stats registers -stats-json and -trace-out.
	Stats
	// Verbose registers -v.
	Verbose

	// Analysis is the full single-binary analysis surface.
	Analysis = Demo | Render | Workers | Checkers | Cache | Stats | Verbose
)

// Opts holds every shared flag value; only the groups named in Register's
// mask are bound to flags (the rest keep their zero values / defaults).
type Opts struct {
	Demo     bool
	Seed     int64
	ScaleN   int
	Releases int

	JSON    bool
	Pattern string

	Workers   int
	Checkers  string
	CacheDir  string
	CacheMem  int
	StatsJSON string
	TraceOut  string
	Verbose   bool
}

// Register binds the selected flag groups onto fs with the canonical names,
// defaults, and help text.
func (o *Opts) Register(fs *flag.FlagSet, include Set) {
	if include&Demo != 0 {
		fs.BoolVar(&o.Demo, "demo", false, "check the built-in synthetic kernel corpus")
		fs.Int64Var(&o.Seed, "seed", 1, "corpus seed for -demo")
	}
	if include&Scale != 0 {
		fs.IntVar(&o.ScaleN, "scale", 1, "workload multiplier: emit N replicas of every plan module (1 = the historical corpus)")
		fs.IntVar(&o.Releases, "releases", 1, "number of release snapshots to generate (bug population evolves across them)")
	}
	if include&Render != 0 {
		fs.BoolVar(&o.JSON, "json", false, "emit reports as JSON")
		fs.StringVar(&o.Pattern, "pattern", "", "only report this anti-pattern (P1..P9)")
	}
	if include&Workers != 0 {
		fs.IntVar(&o.Workers, "workers", 0, "pipeline parallelism (0 = GOMAXPROCS, 1 = sequential); output is identical at any setting")
	}
	if include&Checkers != 0 {
		fs.StringVar(&o.Checkers, "checkers", "", "comma-separated checker subset to run (e.g. P1,P4); default: all registered checkers")
	}
	if include&Cache != 0 {
		fs.StringVar(&o.CacheDir, "cache", "", "incremental analysis cache directory (reports are identical with or without it)")
		fs.IntVar(&o.CacheMem, "cache-mem", 64, "in-memory cache tier budget in MB for -cache (0 disables the memory tier)")
	}
	if include&Stats != 0 {
		fs.StringVar(&o.StatsJSON, "stats-json", "", "write the run's span/counter statistics as JSON to this file")
		fs.StringVar(&o.TraceOut, "trace-out", "", "write a Chrome trace-event JSON of the run to this file (load in Perfetto or chrome://tracing)")
	}
	if include&Verbose != 0 {
		fs.BoolVar(&o.Verbose, "v", false, "print elapsed wall time, throughput and run statistics to stderr")
	}
}

// Selected parses -checkers into the registered pattern subset.
func (o *Opts) Selected() ([]core.Pattern, error) {
	return core.ParsePatterns(o.Checkers)
}

// OpenCache opens the tiered cache per -cache / -cache-mem; it returns nil
// when caching is disabled. The caller owns the handle and must Close it
// after the run.
func (o *Opts) OpenCache() (*analysiscache.Cache, error) {
	if o.CacheDir == "" {
		return nil, nil
	}
	return analysiscache.Open(o.CacheDir, analysiscache.WithMemory(int64(o.CacheMem)<<20))
}

// ToOptions maps the flag values onto core.Options: parallelism, the checker
// subset, and a freshly opened cache handle (also returned so the caller can
// Close it).
func (o *Opts) ToOptions() (core.Options, *analysiscache.Cache, error) {
	selected, err := o.Selected()
	if err != nil {
		return core.Options{}, nil, err
	}
	cache, err := o.OpenCache()
	if err != nil {
		return core.Options{}, nil, err
	}
	return core.Options{Workers: o.Workers, Checkers: selected, Cache: cache}, cache, nil
}

// Sources materializes the analysis inputs: the -demo corpus at -seed (also
// when args is empty and demoDefault is set), or the named directories
// loaded recursively.
func (o *Opts) Sources(args []string, demoDefault bool) ([]cpg.Source, map[string]string, error) {
	if o.Demo || (demoDefault && len(args) == 0) {
		c := corpus.Generate(corpus.Spec{Seed: o.Seed, Scale: o.ScaleN})
		sources := make([]cpg.Source, 0, len(c.Files))
		for _, f := range c.Files {
			sources = append(sources, cpg.Source{Path: f.Path, Content: f.Content})
		}
		headers := map[string]string{}
		for p, s := range c.Headers {
			headers[p] = s
		}
		return sources, headers, nil
	}
	if len(args) == 0 {
		return nil, nil, fmt.Errorf("no input: pass DIR arguments or -demo")
	}
	tree, err := loader.LoadDirs(args...)
	if err != nil {
		return nil, nil, err
	}
	return tree.Sources, tree.Headers, nil
}

// Trace returns a recording trace when some sink (-v, -stats-json,
// -trace-out) wants one, else the free no-op trace.
func (o *Opts) Trace(name string) *obs.Trace {
	if o.Verbose || o.StatsJSON != "" || o.TraceOut != "" {
		return obs.New(name)
	}
	return obs.Nop()
}

// ToRequest assembles a core.Request from the flag values: sources (demo or
// dirs), options, and a trace. The returned cache handle (nil without
// -cache) must be Closed by the caller after the run.
func (o *Opts) ToRequest(name string, args []string, demoDefault bool) (core.Request, *analysiscache.Cache, error) {
	sources, headers, err := o.Sources(args, demoDefault)
	if err != nil {
		return core.Request{}, nil, err
	}
	opt, cache, err := o.ToOptions()
	if err != nil {
		return core.Request{}, nil, err
	}
	return core.Request{
		Sources: sources, Headers: headers, Options: opt, Trace: o.Trace(name),
	}, cache, nil
}

// Export drains a finished trace to the configured sinks: a human phase +
// metric summary on stderr (-v), span/counter statistics as JSON
// (-stats-json), and a Chrome trace-event file (-trace-out). All three are
// no-ops on an obs.Nop() trace; sink I/O errors exit the process (prefixed
// with prog).
func (o *Opts) Export(prog string, tr *obs.Trace) {
	tr.Done()
	if o.Verbose {
		obs.WriteSummary(os.Stderr, tr)
	}
	writeTo := func(path, what string, write func(*os.File) error) {
		if path == "" {
			return
		}
		f, err := os.Create(path)
		if err == nil {
			err = write(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %s: %v\n", prog, what, err)
			os.Exit(1)
		}
	}
	writeTo(o.StatsJSON, "stats-json", func(f *os.File) error { return obs.WriteStatsJSON(f, tr) })
	writeTo(o.TraceOut, "trace-out", func(f *os.File) error { return obs.WriteChromeTrace(f, tr) })
}
