package cfg

import (
	"testing"
	"testing/quick"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/cpp"
)

func buildFn(t *testing.T, src, name string) *Graph {
	t.Helper()
	pp := cpp.New(nil)
	res := pp.Process("t.c", src)
	for _, e := range res.Errors {
		t.Fatalf("cpp: %v", e)
	}
	f, errs := cparse.ParseFile("t.c", res.Tokens)
	for _, e := range errs {
		t.Fatalf("parse: %v", e)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*cast.FuncDef); ok && fd.Name == name {
			g := Build(fd)
			if g == nil {
				t.Fatalf("nil graph for %s", name)
			}
			return g
		}
	}
	t.Fatalf("function %s not found", name)
	return nil
}

func TestStraightLine(t *testing.T) {
	g := buildFn(t, "int f(void) { a(); b(); return 0; }", "f")
	// Entry holds all three statements, linked to exit.
	if len(g.Entry.Stmts) != 3 {
		t.Fatalf("entry stmts = %d", len(g.Entry.Stmts))
	}
	if len(g.Entry.Succs) != 1 || g.Entry.Succs[0] != g.Exit {
		t.Fatalf("entry succs = %v", g.Entry.Succs)
	}
}

func TestIfElseShape(t *testing.T) {
	g := buildFn(t, `
int f(int x) {
	if (x) { a(); } else { b(); }
	c();
	return 0;
}`, "f")
	if len(g.Entry.Succs) != 2 {
		t.Fatalf("cond succs = %d", len(g.Entry.Succs))
	}
	// Both branches must rejoin before c().
	paths := g.Paths(0)
	if len(paths) != 2 {
		t.Fatalf("paths = %d", len(paths))
	}
}

func TestErrorBranchClassification(t *testing.T) {
	cases := []struct {
		cond      string
		thenIsErr bool
	}{
		{"ret < 0", true},
		{"err", true},
		{"!ptr", true},
		{"IS_ERR(ptr)", true},
		{"ptr == NULL", true},
		{"unlikely(!ptr)", true},
		{"x > y", false},
		{"ptr", false},
	}
	for _, c := range cases {
		g := buildFn(t, "int f(void) { if ("+c.cond+") { a(); } b(); return 0; }", "f")
		var found *Block
		for _, blk := range g.Blocks {
			for _, s := range blk.Stmts {
				if es, ok := s.(*cast.ExprStmt); ok {
					if ce, ok := es.X.(*cast.CallExpr); ok && ce.Callee() == "a" {
						found = blk
					}
				}
			}
		}
		if found == nil {
			t.Fatalf("%q: a() block not found", c.cond)
		}
		if found.IsError != c.thenIsErr {
			t.Errorf("cond %q: then.IsError = %v, want %v", c.cond, found.IsError, c.thenIsErr)
		}
	}
}

func TestErrorLabel(t *testing.T) {
	g := buildFn(t, `
int f(void) {
	if (bad)
		goto err_free;
	return 0;
err_free:
	cleanup();
	return -1;
}`, "f")
	var errBlk *Block
	for _, blk := range g.Blocks {
		if blk.Label == "err_free" {
			errBlk = blk
		}
	}
	if errBlk == nil || !errBlk.IsError {
		t.Fatalf("err_free block = %v", errBlk)
	}
	if len(errBlk.Preds) == 0 {
		t.Error("goto edge missing")
	}
}

func TestLoopShape(t *testing.T) {
	g := buildFn(t, `
int f(void) {
	int i;
	for (i = 0; i < 10; i++) {
		if (i == 5)
			break;
		work(i);
	}
	return 0;
}`, "f")
	var head *Block
	for _, blk := range g.Blocks {
		if blk.LoopHead {
			head = blk
		}
	}
	if head == nil {
		t.Fatal("no loop head")
	}
	// Back edge: some block inside the loop links to head.
	hasBack := false
	for _, p := range head.Preds {
		if p != g.Entry && p.ID > head.ID {
			hasBack = true
		}
	}
	if !hasBack {
		t.Error("no back edge to loop head")
	}
}

func TestBreakLeavesLoop(t *testing.T) {
	g := buildFn(t, `
int f(void) {
	while (cond()) {
		if (done)
			break;
	}
	after();
	return 0;
}`, "f")
	// There must be a path entry→…→break→after→exit.
	paths := g.Paths(0)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	foundBreakPath := false
	for _, p := range paths {
		hasBreak, hasAfter := false, false
		for _, blk := range p {
			for _, s := range blk.Stmts {
				if _, ok := s.(*cast.BreakStmt); ok {
					hasBreak = true
				}
				if es, ok := s.(*cast.ExprStmt); ok {
					if ce, ok := es.X.(*cast.CallExpr); ok && ce.Callee() == "after" {
						hasAfter = true
					}
				}
			}
		}
		if hasBreak && hasAfter {
			foundBreakPath = true
		}
	}
	if !foundBreakPath {
		t.Error("no path through break to after()")
	}
}

func TestSwitchShape(t *testing.T) {
	g := buildFn(t, `
int f(int x) {
	switch (x) {
	case 0:
		a();
		break;
	case 1:
		b();
	default:
		c();
	}
	return 0;
}`, "f")
	paths := g.Paths(0)
	// case0→after, case1→default (fallthrough)→after, default→after.
	if len(paths) != 3 {
		t.Errorf("paths = %d, want 3", len(paths))
	}
}

func TestSwitchNoDefaultSkips(t *testing.T) {
	g := buildFn(t, `
int f(int x) {
	switch (x) {
	case 0:
		a();
		break;
	}
	return 0;
}`, "f")
	paths := g.Paths(0)
	if len(paths) != 2 { // through case, and skipping it
		t.Errorf("paths = %d, want 2", len(paths))
	}
}

func TestDoWhile(t *testing.T) {
	g := buildFn(t, "int f(void) { do { a(); } while (c); return 0; }", "f")
	paths := g.Paths(0)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	// Body must execute at least once on every path.
	for _, p := range paths {
		found := false
		for _, blk := range p {
			for _, s := range blk.Stmts {
				if es, ok := s.(*cast.ExprStmt); ok {
					if ce, ok := es.X.(*cast.CallExpr); ok && ce.Callee() == "a" {
						found = true
					}
				}
			}
		}
		if !found {
			t.Error("path skips do-while body")
		}
	}
}

func TestReturnTerminatesBlock(t *testing.T) {
	g := buildFn(t, `
int f(int x) {
	if (x < 0)
		return -1;
	work();
	return 0;
}`, "f")
	paths := g.Paths(0)
	if len(paths) != 2 {
		t.Fatalf("paths = %d", len(paths))
	}
}

func TestCondStmtPlacement(t *testing.T) {
	g := buildFn(t, "int f(int x) { if (x) a(); return 0; }", "f")
	var conds int
	for _, blk := range g.Blocks {
		for _, s := range blk.Stmts {
			if _, ok := s.(*cast.CondStmt); ok {
				conds++
			}
		}
	}
	if conds != 1 {
		t.Errorf("cond stmts = %d", conds)
	}
}

func TestSmartLoopMacroOnHead(t *testing.T) {
	g := buildFn(t, `
#define for_each_node(dn) \
	for (dn = first_node(); dn; dn = next_node(dn))
int f(void) {
	struct device_node *dn;
	for_each_node(dn) {
		use(dn);
	}
	return 0;
}`, "f")
	var head *Block
	for _, blk := range g.Blocks {
		if blk.LoopHead {
			head = blk
		}
	}
	if head == nil {
		t.Fatal("no loop head")
	}
	if head.FromMacro != "for_each_node" {
		t.Errorf("head.FromMacro = %q", head.FromMacro)
	}
}

func TestNullCheckedIdents(t *testing.T) {
	parseCond := func(src string) cast.Expr {
		pp := cpp.New(nil)
		res := pp.Process("t.c", "int f(void){ if ("+src+") a(); return 0; }")
		f, _ := cparse.ParseFile("t.c", res.Tokens)
		var cond cast.Expr
		cast.Walk(f, func(n cast.Node) bool {
			if is, ok := n.(*cast.IfStmt); ok {
				cond = is.Cond
			}
			return true
		})
		return cond
	}
	cases := []struct {
		src         string
		trueSide    []string
		falseSide   []string
		description string
	}{
		{"p", []string{"p"}, nil, "bare ident"},
		{"!p", nil, []string{"p"}, "negated"},
		{"p != NULL", []string{"p"}, nil, "ne null"},
		{"p == NULL", nil, []string{"p"}, "eq null"},
		{"p && q", []string{"p", "q"}, nil, "conjunction"},
		{"unlikely(!p)", nil, []string{"p"}, "unlikely wrapper"},
	}
	for _, c := range cases {
		tr, fa := NullCheckedIdents(parseCond(c.src))
		if !sameStrings(tr, c.trueSide) || !sameStrings(fa, c.falseSide) {
			t.Errorf("%s (%q): got %v/%v want %v/%v", c.description, c.src, tr, fa, c.trueSide, c.falseSide)
		}
	}
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReachesWithout(t *testing.T) {
	g := buildFn(t, `
int f(int x) {
	get(p);
	if (x) {
		put(p);
		return 0;
	}
	return 1;
}`, "f")
	hasPut := func(b *Block) bool {
		for _, s := range b.Stmts {
			if es, ok := s.(*cast.ExprStmt); ok {
				if ce, ok := es.X.(*cast.CallExpr); ok && ce.Callee() == "put" {
					return true
				}
			}
		}
		return false
	}
	// Exit is reachable from entry while avoiding the put block (the x==0
	// path) — exactly the leak query shape.
	if !ReachesWithout(g.Entry, g.Exit, hasPut) {
		t.Error("expected a put-free path to exit")
	}
}

func TestNestedLoops(t *testing.T) {
	g := buildFn(t, `
int f(void) {
	int i, j;
	for (i = 0; i < 2; i++) {
		for (j = 0; j < 2; j++) {
			if (stop())
				break;
		}
		if (bad())
			continue;
		work();
	}
	return 0;
}`, "f")
	heads := 0
	for _, blk := range g.Blocks {
		if blk.LoopHead {
			heads++
		}
	}
	if heads != 2 {
		t.Errorf("loop heads = %d", heads)
	}
	if len(g.Paths(0)) == 0 {
		t.Error("no paths through nested loops")
	}
}

// Property: every graph has entry and exit, exit is reachable from entry
// whenever Paths finds any path, and edges are symmetric (succ/pred).
func TestQuickGraphWellFormed(t *testing.T) {
	templates := []string{
		"int f(int x){ if(x) a(); else b(); return 0; }",
		"int f(int x){ while(x--) w(); return 0; }",
		"int f(int x){ for(;;) { if (x) break; } return 0; }",
		"int f(int x){ do { x--; } while (x); return 0; }",
		"int f(int x){ switch(x){case 1: a(); break; default: b();} return 0; }",
		"int f(int x){ if (x) goto out; w(); out: return 0; }",
	}
	f := func(pick uint8) bool {
		src := templates[int(pick)%len(templates)]
		pp := cpp.New(nil)
		res := pp.Process("q.c", src)
		file, errs := cparse.ParseFile("q.c", res.Tokens)
		if len(errs) != 0 {
			return false
		}
		fd := file.Decls[0].(*cast.FuncDef)
		g := Build(fd)
		if g.Entry == nil || g.Exit == nil {
			return false
		}
		for _, b := range g.Blocks {
			for _, s := range b.Succs {
				found := false
				for _, pr := range s.Preds {
					if pr == b {
						found = true
					}
				}
				if !found {
					return false
				}
			}
		}
		return Reachable(g.Entry)[g.Exit]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
