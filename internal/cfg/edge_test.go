package cfg

import (
	"testing"

	"repro/internal/cast"
	"repro/internal/cparse"
	"repro/internal/cpp"
)

func TestGotoWeb(t *testing.T) {
	// Criss-crossing gotos (irreducible control flow) must still build a
	// well-formed graph and terminate path enumeration.
	g := buildFn(t, `
int weave(int x)
{
	if (x == 1)
		goto one;
	if (x == 2)
		goto two;
	return 0;
one:
	if (x > 10)
		goto two;
	return 1;
two:
	if (x < -10)
		goto one;
	return 2;
}`, "weave")
	paths := g.Paths(0)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, pr := range s.Preds {
				if pr == b {
					found = true
				}
			}
			if !found {
				t.Fatal("asymmetric edge")
			}
		}
	}
}

func TestUnreachableCodeStillInGraph(t *testing.T) {
	g := buildFn(t, `
int f(void)
{
	return 1;
	dead_call();
	return 2;
}`, "f")
	// The dead statement exists in some block even though no path reaches
	// it.
	var found bool
	for _, b := range g.Blocks {
		for _, s := range b.Stmts {
			if es, ok := s.(*cast.ExprStmt); ok {
				if ce, ok := es.X.(*cast.CallExpr); ok && ce.Callee() == "dead_call" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Error("unreachable statement dropped from the graph")
	}
}

func TestBackwardGotoLoop(t *testing.T) {
	g := buildFn(t, `
int f(void)
{
	int n = 0;
again:
	n++;
	if (n < 3)
		goto again;
	return n;
}`, "f")
	paths := g.Paths(0)
	if len(paths) == 0 {
		t.Fatal("backward goto killed path enumeration")
	}
}

func TestInfiniteLoopWithBreak(t *testing.T) {
	g := buildFn(t, `
int f(void)
{
	for (;;) {
		if (done())
			break;
		work();
	}
	return 0;
}`, "f")
	if !Reachable(g.Entry)[g.Exit] {
		t.Fatal("exit unreachable through break")
	}
}

func TestEmptyFunction(t *testing.T) {
	g := buildFn(t, "void f(void) { }", "f")
	paths := g.Paths(0)
	if len(paths) != 1 {
		t.Fatalf("paths = %d", len(paths))
	}
}

func TestPathCapRespected(t *testing.T) {
	// 12 sequential ifs = 4096 paths; the cap must bound enumeration.
	src := "int f(int x) {\n"
	for i := 0; i < 12; i++ {
		src += "\tif (x) a();\n"
	}
	src += "\treturn 0;\n}"
	g := buildFn(t, src, "f")
	if got := len(g.Paths(100)); got > 100 {
		t.Fatalf("paths = %d, cap 100", got)
	}
	if got := len(g.Paths(0)); got > DefaultMaxPaths {
		t.Fatalf("paths = %d exceeds default cap", got)
	}
}

func TestBuildNilForPrototype(t *testing.T) {
	pp := cpp.New(nil)
	res := pp.Process("t.c", "int proto(int x);")
	f, _ := cparse.ParseFile("t.c", res.Tokens)
	fd := f.Decls[0].(*cast.FuncDef)
	if Build(fd) != nil {
		t.Fatal("prototype should build nil graph")
	}
}

func TestElseIfChainClassification(t *testing.T) {
	g := buildFn(t, `
int f(int err, int mode)
{
	if (err < 0) {
		bail();
	} else if (mode == 2) {
		two();
	} else {
		other();
	}
	return 0;
}`, "f")
	// Exactly the first branch is an error block.
	errBlocks := 0
	for _, b := range g.Blocks {
		if b.IsError {
			errBlocks++
		}
	}
	if errBlocks != 1 {
		t.Errorf("error blocks = %d, want 1", errBlocks)
	}
}
