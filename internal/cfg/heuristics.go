package cfg

import (
	"strings"

	"repro/internal/cast"
	"repro/internal/clex"
)

// errorLabelPrefixes mark labels that head error-handling code in kernel
// style (§5.3.1: "one is the premature exit (return) under a specific
// if-condition block, another one is located by the error-labels").
var errorLabelPrefixes = []string{
	"err", "fail", "out", "cleanup", "exit", "bail", "abort", "free",
	"unlock", "put", "release", "undo", "drop",
}

func isErrorLabel(name string) bool {
	lower := strings.ToLower(name)
	for _, p := range errorLabelPrefixes {
		if strings.HasPrefix(lower, p) {
			return true
		}
	}
	return false
}

// classifyErrorBranches decides whether the then / else branch of an if is an
// error-handling branch, based on the condition shape:
//
//	if (ret < 0) ...        → then is error
//	if (err) ...            → then is error
//	if (!ptr) ...           → then is error
//	if (IS_ERR(p)) ...      → then is error
//	if (ptr) ... else ...   → else is error
func classifyErrorBranches(x *cast.IfStmt) (thenErr, elseErr bool) {
	pol := condPolarity(x.Cond)
	switch pol {
	case polErrorWhenTrue:
		return true, false
	case polErrorWhenFalse:
		return false, x.Else != nil
	default:
		return false, false
	}
}

type polarity int

const (
	polUnknown polarity = iota
	polErrorWhenTrue
	polErrorWhenFalse
)

// errIdentNames are variable names conventionally holding error codes.
var errIdentNames = map[string]bool{
	"err": true, "error": true, "ret": true, "retval": true, "rc": true,
	"res": true, "result": true, "status": true, "r": true, "rv": true,
}

// IsErrIdent reports whether name conventionally holds an error code.
func IsErrIdent(name string) bool { return errIdentNames[name] }

func condPolarity(e cast.Expr) polarity {
	switch x := e.(type) {
	case *cast.ParenExpr:
		return condPolarity(x.X)
	case *cast.UnaryExpr:
		if x.Op == clex.Not {
			switch condPolarity(x.X) {
			case polErrorWhenTrue:
				return polErrorWhenFalse
			case polErrorWhenFalse:
				return polErrorWhenTrue
			}
			// !ptr → error when true (NULL check).
			if isPointerish(x.X) {
				return polErrorWhenTrue
			}
			return polUnknown
		}
	case *cast.BinaryExpr:
		switch x.Op {
		case clex.Lt: // ret < 0
			if isErrValue(x.X) && isZero(x.Y) {
				return polErrorWhenTrue
			}
		case clex.Ne: // err != 0, ptr != NULL
			if isErrValue(x.X) && isZero(x.Y) {
				return polErrorWhenTrue
			}
			if isPointerish(x.X) && isNullish(x.Y) {
				return polErrorWhenFalse
			}
		case clex.Eq: // ptr == NULL, err == 0
			if isPointerish(x.X) && isNullish(x.Y) {
				return polErrorWhenTrue
			}
			if isErrValue(x.X) && isZero(x.Y) {
				return polErrorWhenFalse
			}
		case clex.AndAnd, clex.OrOr:
			// If either side clearly signals error-when-true, the branch
			// handles errors.
			if condPolarity(x.X) == polErrorWhenTrue || condPolarity(x.Y) == polErrorWhenTrue {
				return polErrorWhenTrue
			}
		}
	case *cast.CallExpr:
		switch x.Callee() {
		case "IS_ERR", "IS_ERR_OR_NULL", "unlikely":
			if x.Callee() == "unlikely" && len(x.Args) == 1 {
				return condPolarity(x.Args[0])
			}
			return polErrorWhenTrue
		}
	case *cast.Ident:
		if IsErrIdent(x.Name) {
			return polErrorWhenTrue
		}
	}
	return polUnknown
}

func isErrValue(e cast.Expr) bool {
	switch x := e.(type) {
	case *cast.Ident:
		return IsErrIdent(x.Name)
	case *cast.ParenExpr:
		return isErrValue(x.X)
	case *cast.CallExpr:
		return true // `if (do_thing() < 0)` — call result compared to 0
	case *cast.MemberExpr:
		return IsErrIdent(x.Name)
	}
	return false
}

func isZero(e cast.Expr) bool {
	if l, ok := e.(*cast.Lit); ok {
		return l.Text == "0"
	}
	return false
}

func isNullish(e cast.Expr) bool {
	switch x := e.(type) {
	case *cast.Lit:
		return x.Text == "0"
	case *cast.Ident:
		return x.Name == "NULL"
	}
	return false
}

// isPointerish is a syntactic guess that the expression denotes a pointer:
// identifiers that are not error-code names, member accesses, calls.
func isPointerish(e cast.Expr) bool {
	switch x := e.(type) {
	case *cast.Ident:
		return !IsErrIdent(x.Name)
	case *cast.MemberExpr, *cast.CallExpr, *cast.IndexExpr:
		return true
	case *cast.ParenExpr:
		return isPointerish(x.X)
	}
	return false
}

// NullCheckedIdents returns the names the condition tests against NULL, with
// the branch (true/false) on which they are known non-NULL. Used by the P2
// (return-NULL) checker.
//
//	if (p) {...}        → p non-NULL in then
//	if (!p) return;     → p non-NULL after (in else/fallthrough)
//	if (p == NULL) ...  → p non-NULL in else
//	if (p != NULL) ...  → p non-NULL in then
func NullCheckedIdents(cond cast.Expr) (nonNullWhenTrue, nonNullWhenFalse []string) {
	switch x := cond.(type) {
	case *cast.ParenExpr:
		return NullCheckedIdents(x.X)
	case *cast.Ident:
		return []string{x.Name}, nil
	case *cast.UnaryExpr:
		if x.Op == clex.Not {
			t, f := NullCheckedIdents(x.X)
			return f, t
		}
	case *cast.BinaryExpr:
		switch x.Op {
		case clex.Eq:
			if id, ok := unwrapIdent(x.X); ok && isNullish(x.Y) {
				return nil, []string{id}
			}
		case clex.Ne:
			if id, ok := unwrapIdent(x.X); ok && isNullish(x.Y) {
				return []string{id}, nil
			}
		case clex.AndAnd:
			t1, _ := NullCheckedIdents(x.X)
			t2, _ := NullCheckedIdents(x.Y)
			return append(t1, t2...), nil
		}
	case *cast.CallExpr:
		if x.Callee() == "unlikely" || x.Callee() == "likely" {
			if len(x.Args) == 1 {
				return NullCheckedIdents(x.Args[0])
			}
		}
	}
	return nil, nil
}

func unwrapIdent(e cast.Expr) (string, bool) {
	switch x := e.(type) {
	case *cast.Ident:
		return x.Name, true
	case *cast.ParenExpr:
		return unwrapIdent(x.X)
	}
	return "", false
}
