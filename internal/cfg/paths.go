package cfg

// Path is one entry-to-exit block sequence.
type Path []*Block

// Paths enumerates acyclic-ish execution paths from Entry to Exit: each block
// may appear at most twice on a path (so loop bodies are taken at most once,
// which is what the paper's templates need — a smartloop bug shows up on the
// first iteration). Enumeration stops after max paths to bound cost on
// branch-heavy functions; max <= 0 means DefaultMaxPaths.
func (g *Graph) Paths(max int) []Path {
	if max <= 0 {
		max = DefaultMaxPaths
	}
	var out []Path
	visits := map[*Block]int{}
	var cur Path
	var walk func(b *Block)
	walk = func(b *Block) {
		if len(out) >= max {
			return
		}
		if visits[b] >= 2 {
			return
		}
		visits[b]++
		cur = append(cur, b)
		if b == g.Exit {
			out = append(out, append(Path(nil), cur...))
		} else {
			for _, s := range b.Succs {
				walk(s)
			}
		}
		cur = cur[:len(cur)-1]
		visits[b]--
	}
	walk(g.Entry)
	return out
}

// DefaultMaxPaths bounds path enumeration per function.
const DefaultMaxPaths = 4096

// Reachable returns the set of blocks reachable from b (including b).
func Reachable(b *Block) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(x *Block)
	walk = func(x *Block) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, s := range x.Succs {
			walk(s)
		}
	}
	walk(b)
	return seen
}

// ReachesWithout reports whether dst is reachable from src along edges that
// avoid blocks rejected by the filter. src itself is not filtered.
func ReachesWithout(src, dst *Block, blocked func(*Block) bool) bool {
	seen := map[*Block]bool{}
	var walk func(x *Block) bool
	walk = func(x *Block) bool {
		if x == dst {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for _, s := range x.Succs {
			if s != dst && blocked(s) {
				continue
			}
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(src)
}
