package cfg

// Path is one entry-to-exit block sequence.
type Path []*Block

// Paths enumerates acyclic-ish execution paths from Entry to Exit: each block
// may appear at most twice on a path (so loop bodies are taken at most once,
// which is what the paper's templates need — a smartloop bug shows up on the
// first iteration). Enumeration stops after max paths to bound cost on
// branch-heavy functions; max <= 0 means DefaultMaxPaths.
func (g *Graph) Paths(max int) []Path {
	if max <= 0 {
		max = DefaultMaxPaths
	}
	// A method-based walker instead of recursive closures: the closure pair
	// (walk capturing itself plus its shared state) cost several heap
	// allocations per function, and Paths runs once per function. Visit
	// counts index by Block.ID, which BuildArena assigns densely.
	w := pathWalker{
		g:      g,
		max:    max,
		visits: make([]int8, len(g.Blocks)),
		cur:    make(Path, 0, 64),
	}
	w.walk(g.Entry)
	return w.out
}

type pathWalker struct {
	g      *Graph
	max    int
	out    []Path
	visits []int8
	cur    Path
	// Completed paths are copied into chunked backing storage and returned
	// as capacity-bounded windows of it — one allocation per ~1024 blocks
	// of path data instead of one per path.
	back Path
}

func (w *pathWalker) emit() {
	if cap(w.back)-len(w.back) < len(w.cur) {
		n := 1024
		if len(w.cur) > n {
			n = len(w.cur)
		}
		w.back = make(Path, 0, n)
	}
	start := len(w.back)
	w.back = append(w.back, w.cur...)
	w.out = append(w.out, w.back[start:len(w.back):len(w.back)])
}

func (w *pathWalker) walk(b *Block) {
	if len(w.out) >= w.max {
		return
	}
	if w.visits[b.ID] >= 2 {
		return
	}
	w.visits[b.ID]++
	w.cur = append(w.cur, b)
	if b == w.g.Exit {
		w.emit()
	} else {
		for _, s := range b.Succs {
			w.walk(s)
		}
	}
	w.cur = w.cur[:len(w.cur)-1]
	w.visits[b.ID]--
}

// DefaultMaxPaths bounds path enumeration per function.
const DefaultMaxPaths = 4096

// Reachable returns the set of blocks reachable from b (including b).
func Reachable(b *Block) map[*Block]bool {
	seen := map[*Block]bool{}
	var walk func(x *Block)
	walk = func(x *Block) {
		if seen[x] {
			return
		}
		seen[x] = true
		for _, s := range x.Succs {
			walk(s)
		}
	}
	walk(b)
	return seen
}

// ReachesWithout reports whether dst is reachable from src along edges that
// avoid blocks rejected by the filter. src itself is not filtered.
func ReachesWithout(src, dst *Block, blocked func(*Block) bool) bool {
	seen := map[*Block]bool{}
	var walk func(x *Block) bool
	walk = func(x *Block) bool {
		if x == dst {
			return true
		}
		if seen[x] {
			return false
		}
		seen[x] = true
		for _, s := range x.Succs {
			if s != dst && blocked(s) {
				continue
			}
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(src)
}
