// Package cfg builds per-function control-flow graphs from internal/cast
// trees.
//
// A Graph is the substrate for anti-pattern matching: the paper's semantic
// templates (§3.2) are path templates like
// F_start → S_G → B_error → F_end, so the graph exposes basic blocks, an
// error-handling classification per block (B_error), and bounded path
// enumeration with loops taken at most once.
package cfg

import (
	"fmt"
	"strings"

	"repro/internal/arena"
	"repro/internal/cast"
	"repro/internal/clex"
)

// Block is a basic block: a maximal straight-line statement sequence.
type Block struct {
	ID    int
	Stmts []cast.Stmt

	Succs []*Block
	Preds []*Block

	// Label is set when the block begins at a C label.
	Label string

	// IsError marks error-handling blocks: branches taken on a failed
	// error test, and blocks headed by error-ish labels (err/fail/out/...).
	IsError bool

	// LoopHead marks loop condition blocks (back-edge targets).
	LoopHead bool

	// FromMacro is the outermost macro that generated the block's opening
	// statement, or "" (smartloop body detection).
	FromMacro string
}

// String renders the block for diagnostics.
func (b *Block) String() string {
	var tags []string
	if b.Label != "" {
		tags = append(tags, "label="+b.Label)
	}
	if b.IsError {
		tags = append(tags, "error")
	}
	if b.LoopHead {
		tags = append(tags, "loop")
	}
	return fmt.Sprintf("B%d[%s]", b.ID, strings.Join(tags, ","))
}

// Graph is the control-flow graph of one function.
type Graph struct {
	Fn     *cast.FuncDef
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// builder state
type builder struct {
	g      *Graph
	cur    *Block
	breaks []*Block // innermost-last break targets
	conts  []*Block // innermost-last continue targets
	labels map[string]*Block
	gotos  []pendingGoto

	// Blocks and condition pseudo-statements are the builder's two hot
	// allocations; both live exactly as long as the Graph, so they come from
	// slabs (see internal/arena) and the chunks ride along with it.
	blocks    arena.Slab[Block]
	condStmts arena.Slab[cast.CondStmt]

	// edges backs the Succs/Preds slices: every block gets a disjoint
	// zero-length, capacity-2 window of the current chunk (most blocks have
	// at most two edges; one that grows past its window migrates to the heap
	// via ordinary append reallocation). Like the slabs, chunks are retained
	// by the Graph's blocks and never recycled.
	edges []*Block
	// stmtBuf backs the blocks' Stmts slices the same way, with capacity-4
	// windows.
	stmtBuf []cast.Stmt
	stats   *arena.Stats
}

type pendingGoto struct {
	from  *Block
	label string
}

// Build constructs the CFG of fn. It returns nil for bodyless functions.
func Build(fn *cast.FuncDef) *Graph {
	return BuildArena(fn, nil)
}

// BuildArena is Build with slab-allocation counters reported into st (which
// may be nil). The Graph owns its slab chunks for its whole lifetime.
func BuildArena(fn *cast.FuncDef, st *arena.Stats) *Graph {
	if fn.Body == nil {
		return nil
	}
	g := &Graph{Fn: fn, Blocks: make([]*Block, 0, 16)}
	b := &builder{g: g, labels: map[string]*Block{}, stats: st}
	b.blocks.Stats = st
	b.condStmts.Stats = st
	g.Entry = b.newBlock()
	g.Exit = b.newBlock()
	b.cur = g.Entry
	b.stmts(fn.Body.Stmts)
	if b.cur != nil {
		b.link(b.cur, g.Exit)
	}
	for _, pg := range b.gotos {
		if target, ok := b.labels[pg.label]; ok {
			b.link(pg.from, target)
		} else {
			// Unknown label (parse recovery): fall to exit.
			b.link(pg.from, g.Exit)
		}
	}
	// Exit must be last in Blocks for readable dumps; rebuild IDs stably.
	return g
}

func (b *builder) newBlock() *Block {
	blk := b.blocks.New(Block{ID: len(b.g.Blocks)})
	blk.Succs = b.edgeWindow()
	blk.Preds = b.edgeWindow()
	blk.Stmts = b.stmtWindow()
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

const stmtChunk = 256

// stmtWindow reserves a zero-length, capacity-4 view of the statement chunk;
// most blocks hold at most a handful of leaf statements, and the ones that
// overflow migrate to the heap on the fifth append.
func (b *builder) stmtWindow() []cast.Stmt {
	if cap(b.stmtBuf)-len(b.stmtBuf) < 4 {
		b.stmtBuf = make([]cast.Stmt, 0, stmtChunk)
		if b.stats != nil {
			b.stats.Bytes.Add(stmtChunk * 16)
			b.stats.Chunks.Add(1)
		}
	}
	n := len(b.stmtBuf)
	b.stmtBuf = b.stmtBuf[:n+4]
	return b.stmtBuf[n : n : n+4]
}

const edgeChunk = 128

// edgeWindow reserves a zero-length, capacity-2 view of the edge chunk.
// Appending up to two elements fills the reserved slots; a third append
// reallocates onto the heap without touching neighboring windows.
func (b *builder) edgeWindow() []*Block {
	if cap(b.edges)-len(b.edges) < 2 {
		b.edges = make([]*Block, 0, edgeChunk)
		if b.stats != nil {
			b.stats.Bytes.Add(edgeChunk * 8)
			b.stats.Chunks.Add(1)
		}
	}
	n := len(b.edges)
	b.edges = b.edges[:n+2]
	return b.edges[n : n : n+2]
}

// cond slab-allocates the condition pseudo-statement cast.NewCondStmt would
// otherwise heap-allocate.
func (b *builder) cond(x cast.Expr, pos clex.Pos, origin []string) *cast.CondStmt {
	c := b.condStmts.New(cast.CondStmt{X: x})
	c.StartPos = pos
	c.Origin = origin
	return c
}

func (b *builder) link(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a leaf statement to the current block, opening a new one if
// control already left.
func (b *builder) add(s cast.Stmt) {
	if b.cur == nil {
		b.cur = b.newBlock() // unreachable code still gets a block
	}
	if len(b.cur.Stmts) == 0 && b.cur.FromMacro == "" {
		if o := s.MacroOrigin(); len(o) > 0 {
			b.cur.FromMacro = o[0]
		}
	}
	b.cur.Stmts = append(b.cur.Stmts, s)
}

func (b *builder) stmts(list []cast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s cast.Stmt) {
	switch x := s.(type) {
	case nil:
	case *cast.CompoundStmt:
		b.stmts(x.Stmts)
	case *cast.ExprStmt, *cast.DeclStmt, *cast.EmptyStmt:
		b.add(s)
	case *cast.ReturnStmt:
		b.add(s)
		b.link(b.cur, b.g.Exit)
		b.cur = nil
	case *cast.IfStmt:
		b.ifStmt(x)
	case *cast.ForStmt:
		b.forStmt(x)
	case *cast.WhileStmt:
		b.whileStmt(x)
	case *cast.DoWhileStmt:
		b.doWhileStmt(x)
	case *cast.SwitchStmt:
		b.switchStmt(x)
	case *cast.BreakStmt:
		b.add(s)
		if n := len(b.breaks); n > 0 {
			b.link(b.cur, b.breaks[n-1])
		} else {
			b.link(b.cur, b.g.Exit)
		}
		b.cur = nil
	case *cast.ContinueStmt:
		b.add(s)
		if n := len(b.conts); n > 0 {
			b.link(b.cur, b.conts[n-1])
		} else {
			b.link(b.cur, b.g.Exit)
		}
		b.cur = nil
	case *cast.GotoStmt:
		b.add(s)
		if b.cur != nil {
			b.gotos = append(b.gotos, pendingGoto{from: b.cur, label: x.Label})
		}
		b.cur = nil
	case *cast.LabelStmt:
		target := b.labelBlock(x.Name)
		if b.cur != nil {
			b.link(b.cur, target)
		}
		b.cur = target
		if x.Stmt != nil {
			b.stmt(x.Stmt)
		}
	case *cast.CaseStmt:
		// Cases outside switch context (shouldn't happen); treat as label.
		b.add(s)
	default:
		b.add(s)
	}
}

func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock()
	blk.Label = name
	blk.IsError = isErrorLabel(name)
	b.labels[name] = blk
	return blk
}

func (b *builder) ifStmt(x *cast.IfStmt) {
	condBlk := b.cur
	if condBlk == nil {
		condBlk = b.newBlock()
		b.cur = condBlk
	}
	// Record the condition as a pseudo-statement so checkers can see null
	// tests and error tests in block order.
	b.add(b.cond(x.Cond, x.Pos(), x.MacroOrigin()))
	condBlk = b.cur

	thenBlk := b.newBlock()
	thenErr, elseErr := classifyErrorBranches(x)
	thenBlk.IsError = thenErr
	b.link(condBlk, thenBlk)
	b.cur = thenBlk
	b.stmt(x.Then)
	thenEnd := b.cur

	var elseEnd *Block
	var elseBlk *Block
	if x.Else != nil {
		elseBlk = b.newBlock()
		elseBlk.IsError = elseErr
		b.link(condBlk, elseBlk)
		b.cur = elseBlk
		b.stmt(x.Else)
		elseEnd = b.cur
	}

	join := b.newBlock()
	if thenEnd != nil {
		b.link(thenEnd, join)
	}
	if x.Else != nil {
		if elseEnd != nil {
			b.link(elseEnd, join)
		}
	} else {
		b.link(condBlk, join)
	}
	b.cur = join
}

func (b *builder) forStmt(x *cast.ForStmt) {
	if x.Init != nil {
		b.stmt(x.Init)
	}
	head := b.newBlock()
	head.LoopHead = true
	if o := x.MacroOrigin(); len(o) > 0 {
		head.FromMacro = o[0]
	}
	b.link(b.cur, head)
	if x.Cond != nil {
		head.Stmts = append(head.Stmts, b.cond(x.Cond, x.Pos(), x.MacroOrigin()))
	}
	after := b.newBlock()
	body := b.newBlock()
	b.link(head, body)
	b.link(head, after) // loop may not execute (or exits)

	b.breaks = append(b.breaks, after)
	b.conts = append(b.conts, head)
	b.cur = body
	b.stmt(x.Body)
	if x.Post != nil {
		post := &cast.ExprStmt{X: x.Post}
		post.StartPos = x.Post.Pos()
		post.Origin = x.MacroOrigin()
		b.add(post)
	}
	if b.cur != nil {
		b.link(b.cur, head) // back edge
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
	b.cur = after
}

func (b *builder) whileStmt(x *cast.WhileStmt) {
	head := b.newBlock()
	head.LoopHead = true
	if o := x.MacroOrigin(); len(o) > 0 {
		head.FromMacro = o[0]
	}
	b.link(b.cur, head)
	head.Stmts = append(head.Stmts, b.cond(x.Cond, x.Pos(), x.MacroOrigin()))

	after := b.newBlock()
	body := b.newBlock()
	b.link(head, body)
	b.link(head, after)

	b.breaks = append(b.breaks, after)
	b.conts = append(b.conts, head)
	b.cur = body
	b.stmt(x.Body)
	if b.cur != nil {
		b.link(b.cur, head)
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
	b.cur = after
}

func (b *builder) doWhileStmt(x *cast.DoWhileStmt) {
	body := b.newBlock()
	b.link(b.cur, body)
	after := b.newBlock()
	head := b.newBlock()
	head.LoopHead = true

	b.breaks = append(b.breaks, after)
	b.conts = append(b.conts, head)
	b.cur = body
	b.stmt(x.Body)
	if b.cur != nil {
		b.link(b.cur, head)
	}
	head.Stmts = append(head.Stmts, b.cond(x.Cond, x.Pos(), nil))
	b.link(head, body)
	b.link(head, after)
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.conts = b.conts[:len(b.conts)-1]
	b.cur = after
}

func (b *builder) switchStmt(x *cast.SwitchStmt) {
	b.add(b.cond(x.Tag, x.Pos(), x.MacroOrigin()))
	head := b.cur
	after := b.newBlock()
	b.breaks = append(b.breaks, after)

	// Each CaseStmt starts a new block linked from the head; fallthrough is
	// modelled by linking the previous case's end into the next case block.
	body, ok := x.Body.(*cast.CompoundStmt)
	if !ok {
		// Degenerate switch; treat body as one arm.
		arm := b.newBlock()
		b.link(head, arm)
		b.cur = arm
		b.stmt(x.Body)
		if b.cur != nil {
			b.link(b.cur, after)
		}
	} else {
		b.cur = nil
		sawDefault := false
		for _, s := range body.Stmts {
			if cs, isCase := s.(*cast.CaseStmt); isCase {
				arm := b.newBlock()
				if cs.IsDefault {
					sawDefault = true
				}
				b.link(head, arm)
				if b.cur != nil {
					b.link(b.cur, arm) // fallthrough
				}
				b.cur = arm
				continue
			}
			if b.cur == nil {
				b.cur = b.newBlock() // stmts before first case: unreachable
			}
			b.stmt(s)
		}
		if b.cur != nil {
			b.link(b.cur, after)
		}
		if !sawDefault {
			b.link(head, after)
		}
	}
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.cur = after
}
