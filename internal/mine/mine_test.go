package mine

import (
	"testing"

	"repro/internal/corpus"

	"repro/internal/apidb"
	"repro/internal/gitlog"
)

func mineFull(t *testing.T) (*gitlog.History, *Result) {
	t.Helper()
	h := gitlog.Generate(corpus.Spec{Seed: 1, Background: 2000})
	res := Mine(h, apidb.New())
	return h, res
}

func TestStageCounts(t *testing.T) {
	_, res := mineFull(t)
	if len(res.Candidates) != gitlog.TotalCandidates {
		t.Errorf("candidates = %d, want %d", len(res.Candidates), gitlog.TotalCandidates)
	}
	if len(res.RemovedWrongPatches) != gitlog.WrongPatchCount {
		t.Errorf("wrong patches removed = %d, want %d",
			len(res.RemovedWrongPatches), gitlog.WrongPatchCount)
	}
	if len(res.Dataset) != gitlog.TotalBugs {
		t.Errorf("dataset = %d, want %d", len(res.Dataset), gitlog.TotalBugs)
	}
}

func TestClassificationAgainstTruth(t *testing.T) {
	h, res := mineFull(t)
	correct, total := 0, 0
	uadCorrect, uadTotal := 0, 0
	for _, rec := range res.Dataset {
		bt := h.Truth[rec.Commit.ID]
		if bt == nil {
			t.Fatalf("mined commit %s not in truth", rec.Commit.ID)
		}
		total++
		if rec.Category == bt.Category {
			correct++
		} else if total-correct <= 5 {
			t.Logf("misclassified %s: got %s want %s", rec.Commit.ID, rec.Category, bt.Category)
		}
		if bt.Category == gitlog.MisplacingDec {
			uadTotal++
			if rec.IsUAD == bt.IsUAD {
				uadCorrect++
			}
		}
	}
	if correct != total {
		t.Errorf("classification accuracy = %d/%d", correct, total)
	}
	if uadCorrect != uadTotal {
		t.Errorf("UAD accuracy = %d/%d", uadCorrect, uadTotal)
	}
}

func TestImpactKeywords(t *testing.T) {
	h, res := mineFull(t)
	leaks, uafs := 0, 0
	for _, rec := range res.Dataset {
		bt := h.Truth[rec.Commit.ID]
		if rec.Impact != bt.Category.Impact() {
			t.Fatalf("impact %s for %s, want %s", rec.Impact, bt.Category, bt.Category.Impact())
		}
		if rec.Impact == "Leak" {
			leaks++
		} else {
			uafs++
		}
	}
	// Finding 1/2 shape: ~71.7% leak, ~28.3% UAF.
	if leaks < uafs*2 {
		t.Errorf("impact shape off: %d leak vs %d uaf", leaks, uafs)
	}
}

func TestLifetimesResolved(t *testing.T) {
	_, res := mineFull(t)
	tagged, withLifetime := 0, 0
	for _, rec := range res.Dataset {
		if rec.HasFixesTag {
			tagged++
			if rec.LifetimeDays >= 0 {
				withLifetime++
			}
		} else if rec.LifetimeDays != -1 {
			t.Fatal("untagged record has a lifetime")
		}
	}
	if tagged != gitlog.FixesTagged {
		t.Errorf("tagged = %d, want %d", tagged, gitlog.FixesTagged)
	}
	if withLifetime != tagged {
		t.Errorf("lifetimes resolved = %d of %d", withLifetime, tagged)
	}
}

func TestSubsystemsPropagate(t *testing.T) {
	h, res := mineFull(t)
	for _, rec := range res.Dataset {
		bt := h.Truth[rec.Commit.ID]
		if rec.Subsystem != bt.Subsystem {
			t.Fatalf("subsystem %q, want %q", rec.Subsystem, bt.Subsystem)
		}
	}
}

func TestClassifyShapes(t *testing.T) {
	mk := func(subject, body string, diff []gitlog.DiffLine) *gitlog.Commit {
		return &gitlog.Commit{Subject: subject, Body: body, Diff: diff}
	}
	cases := []struct {
		name   string
		commit *gitlog.Commit
		want   gitlog.Category
		uad    bool
	}{
		{
			"intra missing dec",
			mk("fix refcount leak", "memory leak\n", []gitlog.DiffLine{
				{File: "a.c", Func: "f", Op: ' ', Text: "\tof_node_get(np);"},
				{File: "a.c", Func: "f", Op: '+', Text: "\tof_node_put(np);"},
			}),
			gitlog.MissingDecIntra, false,
		},
		{
			"inter missing dec",
			mk("fix refcount leak", "memory leak\n", []gitlog.DiffLine{
				{File: "a.c", Func: "g_release", Op: '+', Text: "\tof_node_put(np);"},
			}),
			gitlog.MissingDecInter, false,
		},
		{
			"uad move",
			mk("fix use-after-free", "object accessed after drop\n", []gitlog.DiffLine{
				{File: "a.c", Func: "f", Op: '-', Text: "\tsock_put(sk);"},
				{File: "a.c", Func: "f", Op: ' ', Text: "\tsk->state = 0;"},
				{File: "a.c", Func: "f", Op: '+', Text: "\tsock_put(sk);"},
			}),
			gitlog.MisplacingDec, true,
		},
		{
			"benign move",
			mk("fix use-after-free window", "lock scope\n", []gitlog.DiffLine{
				{File: "a.c", Func: "f", Op: '-', Text: "\tsock_put(sk);"},
				{File: "a.c", Func: "f", Op: ' ', Text: "\ttrace_event(ctx);"},
				{File: "a.c", Func: "f", Op: '+', Text: "\tsock_put(sk);"},
			}),
			gitlog.MisplacingDec, false,
		},
		{
			"missing inc intra",
			mk("fix premature free", "use-after-free\n", []gitlog.DiffLine{
				{File: "a.c", Func: "f", Op: ' ', Text: "\tsock_put(sk);"},
				{File: "a.c", Func: "f", Op: '+', Text: "\tsock_hold(sk);"},
			}),
			gitlog.MissingIncIntra, false,
		},
		{
			"wrong object other",
			mk("drop correct object", "memory leak\n", []gitlog.DiffLine{
				{File: "a.c", Func: "f", Op: '-', Text: "\tof_node_put(parent);"},
				{File: "a.c", Func: "f", Op: '+', Text: "\tof_node_put(np);"},
			}),
			gitlog.LeakOther, false,
		},
	}
	for _, c := range cases {
		rec := Classify(c.commit)
		if rec.Category != c.want || rec.IsUAD != c.uad {
			t.Errorf("%s: got %s/uad=%v, want %s/uad=%v",
				c.name, rec.Category, rec.IsUAD, c.want, c.uad)
		}
	}
}

func TestAblationStageSizes(t *testing.T) {
	// Keyword-only mining overcounts; the implementation check prunes the
	// decoys (paper: 1,825 → 1,033).
	_, res := mineFull(t)
	if len(res.Candidates) <= len(res.Confirmed) {
		t.Errorf("stage sizes: candidates %d, confirmed %d",
			len(res.Candidates), len(res.Confirmed))
	}
	pruned := len(res.Candidates) - len(res.Confirmed)
	if pruned < 700 {
		t.Errorf("decoys pruned = %d, want ~780", pruned)
	}
}

func TestClassifyRobustOnDegenerateCommits(t *testing.T) {
	cases := []*gitlog.Commit{
		{},                            // empty everything
		{Subject: "fix leak"},         // no diff
		{Diff: []gitlog.DiffLine{{}}}, // empty diff line
		{Subject: "weird", Body: "text only", Diff: []gitlog.DiffLine{
			{Op: '+', Text: "((("},
			{Op: '-', Text: "of_node_put("}, // unterminated call
		}},
	}
	for i, c := range cases {
		rec := Classify(c) // must not panic
		if rec.Impact == "" {
			t.Errorf("case %d: empty impact", i)
		}
	}
}
