// Package mine implements the paper's dataset-construction methodology
// (§3.1) over a gitlog history:
//
//  1. a first-level keyword filter selects commits whose diffs add, delete
//     or move calls to APIs named with refcounting keywords (get/take/hold/
//     grab vs put/drop/unhold/release);
//  2. a second-level implementation check confirms that at least one of the
//     touched APIs really is a refcounting API (against the apidb knowledge
//     base, which the lexer-parsing stage populates from source);
//  3. a Fixes-tag false-positive filter removes candidate patches that were
//     themselves later fixed (the wrong-patch case of §3.1);
//
// followed by the patch classifier that assigns each confirmed bug to the
// Table 2 taxonomy from the diff shape and the impact keywords.
package mine

import (
	"strings"

	"repro/internal/apidb"
	"repro/internal/clex"
	"repro/internal/gitlog"
)

// BugRecord is one bug in the mined dataset.
type BugRecord struct {
	Commit    *gitlog.Commit
	Category  gitlog.Category
	IsUAD     bool
	Impact    string // "Leak" or "UAF", from patch-description keywords
	Subsystem string
	FixYear   int

	HasFixesTag  bool
	IntroVersion string // "" when untagged
	FixVersion   string
	LifetimeDays int // -1 when untagged
}

// Result carries per-stage outputs so ablations can compare stage sizes.
type Result struct {
	// Candidates passed the first-level keyword filter.
	Candidates []*gitlog.Commit
	// Confirmed additionally passed the implementation check.
	Confirmed []*gitlog.Commit
	// RemovedWrongPatches were dropped by the Fixes-tag FP filter.
	RemovedWrongPatches []string
	// Dataset is the final classified bug set.
	Dataset []BugRecord
}

// call is one API call found on a diff line.
type call struct {
	api  string
	op   byte // '+', '-', ' '
	fn   string
	text string
	dir  apidb.Op
}

// callsOn tokenizes a diff line and extracts name(…) call sites.
func callsOn(d gitlog.DiffLine) []call {
	toks, _ := clex.Tokenize("diff", d.Text, clex.Config{})
	var out []call
	for i := 0; i+1 < len(toks); i++ {
		if toks[i].Kind == clex.Ident && toks[i+1].Kind == clex.LParen {
			out = append(out, call{
				api: toks[i].Text, op: d.Op, fn: d.Func,
				text: strings.TrimSpace(d.Text),
			})
		}
	}
	return out
}

// keywordCalls returns the diff's call sites whose names carry refcounting
// keywords, annotated with the keyword direction.
func keywordCalls(c *gitlog.Commit) []call {
	var out []call
	for _, d := range c.Diff {
		for _, cl := range callsOn(d) {
			if dir := apidb.KeywordOp(cl.api); dir != apidb.OpNone {
				cl.dir = dir
				out = append(out, cl)
			}
		}
	}
	return out
}

// Mine runs the full pipeline.
func Mine(h *gitlog.History, db *apidb.DB) *Result {
	res := &Result{}

	// Stage 1: keyword filter over added/deleted lines.
	for i := range h.Commits {
		c := &h.Commits[i]
		hit := false
		for _, cl := range keywordCalls(c) {
			if cl.op == '+' || cl.op == '-' {
				hit = true
				break
			}
		}
		if hit {
			res.Candidates = append(res.Candidates, c)
		}
	}

	// Stage 2: implementation check — some touched keyword API must be a
	// known refcounting API.
	for _, c := range res.Candidates {
		ok := false
		for _, cl := range keywordCalls(c) {
			if a := db.Lookup(cl.api); a != nil && a.Op != apidb.OpNone {
				ok = true
				break
			}
		}
		if ok {
			res.Confirmed = append(res.Confirmed, c)
		}
	}

	// Fixes-tag FP filter: drop confirmed commits later fixed themselves.
	fixedBy := map[string]bool{}
	for i := range h.Commits {
		if t := h.Commits[i].FixesTag; t != "" {
			fixedBy[t] = true
		}
	}
	var kept []*gitlog.Commit
	for _, c := range res.Confirmed {
		if fixedBy[c.ID] {
			res.RemovedWrongPatches = append(res.RemovedWrongPatches, c.ID)
			continue
		}
		kept = append(kept, c)
	}

	// Classification.
	versions := map[string]*gitlog.Version{}
	for i := range h.Versions {
		versions[h.Versions[i].Tag] = &h.Versions[i]
	}
	introVersionOf := map[string]string{}
	for i := range h.Commits {
		introVersionOf[h.Commits[i].ID] = h.Commits[i].Version
	}
	for _, c := range kept {
		rec := Classify(c)
		rec.Subsystem = c.Subsystem()
		rec.FixYear = c.Date.Year()
		rec.FixVersion = c.Version
		rec.LifetimeDays = -1
		if c.FixesTag != "" {
			rec.HasFixesTag = true
			if iv, ok := introVersionOf[c.FixesTag]; ok {
				rec.IntroVersion = iv
				if vi, vf := versions[iv], versions[c.Version]; vi != nil && vf != nil {
					rec.LifetimeDays = int(vf.Date.Sub(vi.Date).Hours() / 24)
					if rec.LifetimeDays < 0 {
						// Same-year stable releases can interleave by a few
						// weeks; a fix never predates its bug.
						rec.LifetimeDays = 0
					}
				}
			}
		}
		res.Dataset = append(res.Dataset, rec)
	}
	return res
}

// Classify derives the Table 2 taxonomy entry for one confirmed fix commit
// from its diff shape and description keywords.
func Classify(c *gitlog.Commit) BugRecord {
	rec := BugRecord{Commit: c, Impact: impactOf(c)}
	calls := keywordCalls(c)

	var addedInc, addedDec, delInc, delDec []call
	ctxHasInc, ctxHasDec := false, false
	for _, cl := range calls {
		switch {
		case cl.op == '+' && cl.dir == apidb.OpInc:
			addedInc = append(addedInc, cl)
		case cl.op == '+' && cl.dir == apidb.OpDec:
			addedDec = append(addedDec, cl)
		case cl.op == '-' && cl.dir == apidb.OpInc:
			delInc = append(delInc, cl)
		case cl.op == '-' && cl.dir == apidb.OpDec:
			delDec = append(delDec, cl)
		case cl.op == ' ' && cl.dir == apidb.OpInc:
			ctxHasInc = true
		case cl.op == ' ' && cl.dir == apidb.OpDec:
			ctxHasDec = true
		}
	}

	// Moves: the same call text deleted and re-added elsewhere.
	movedDec := matchMove(delDec, addedDec)
	movedInc := matchMove(delInc, addedInc)

	switch {
	case movedDec != nil:
		rec.Category = gitlog.MisplacingDec
		rec.IsUAD = moveCrossesAccess(c, *movedDec)
	case movedInc != nil:
		rec.Category = gitlog.MisplacingInc
	case len(addedDec) > 0 && len(delDec) == 0 && len(addedInc) == 0:
		if ctxHasInc {
			rec.Category = gitlog.MissingDecIntra
		} else {
			rec.Category = gitlog.MissingDecInter
		}
	case len(addedInc) > 0 && len(delInc) == 0 && len(addedDec) == 0:
		if ctxHasDec {
			rec.Category = gitlog.MissingIncIntra
		} else {
			rec.Category = gitlog.MissingIncInter
		}
	default:
		if rec.Impact == "UAF" {
			rec.Category = gitlog.UAFOther
		} else {
			rec.Category = gitlog.LeakOther
		}
	}
	return rec
}

// matchMove returns the moved call when a deleted call's exact text
// reappears added (same API, same spelling), else nil.
func matchMove(deleted, added []call) *call {
	for _, d := range deleted {
		for _, a := range added {
			if d.api == a.api && d.text == a.text {
				moved := d
				return &moved
			}
		}
	}
	return nil
}

// moveCrossesAccess reports whether the context lines between the deleted
// and re-added decrement access the decremented object — the UAD signature
// (§4.1: "checking if there is any reference access after the decreasing
// operations").
func moveCrossesAccess(c *gitlog.Commit, moved call) bool {
	obj := argOf(moved.text)
	if obj == "" {
		return false
	}
	inWindow := false
	for _, d := range c.Diff {
		line := strings.TrimSpace(d.Text)
		switch {
		case d.Op == '-' && line == moved.text:
			inWindow = true
		case d.Op == '+' && line == moved.text:
			inWindow = false
		case d.Op == ' ' && inWindow:
			if strings.Contains(d.Text, obj+"->") || strings.Contains(d.Text, obj+".") {
				return true
			}
		}
	}
	return false
}

// argOf extracts the first argument identifier of a call's source text.
func argOf(text string) string {
	open := strings.IndexByte(text, '(')
	if open < 0 {
		return ""
	}
	rest := text[open+1:]
	end := strings.IndexAny(rest, ",)")
	if end < 0 {
		return ""
	}
	return strings.TrimSpace(strings.Trim(rest[:end], "&*"))
}

// impactOf searches the patch description for the security-impact keywords
// of §4.1 ("leak", "use-after-free", "uaf", "crash", "out of memory").
func impactOf(c *gitlog.Commit) string {
	text := strings.ToLower(c.Subject + "\n" + c.Body)
	switch {
	case strings.Contains(text, "use-after-free"),
		strings.Contains(text, "use after free"),
		strings.Contains(text, "uaf"),
		strings.Contains(text, "premature free"),
		strings.Contains(text, "crash"):
		return "UAF"
	case strings.Contains(text, "leak"),
		strings.Contains(text, "out of memory"):
		return "Leak"
	default:
		return "Leak"
	}
}
