package difftest

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var update = flag.Bool("update", false,
	"rebless the golden artifacts under internal/difftest/golden")

// TestGoldenGate is the ground-truth regression gate: it re-analyzes the
// golden corpus, recomputes per-checker reports and precision/recall/F1, and
// diffs them against the committed golden files. Any checker regression —
// a lost detection, a new false positive, a changed confirmation — fails
// here. Rebless intentional changes with:
//
//	go test ./internal/difftest -run TestGoldenGate -update
func TestGoldenGate(t *testing.T) {
	got, sc := ComputeGolden()

	if *update {
		for name, content := range got {
			if err := os.WriteFile(filepath.Join("golden", name), []byte(content), 0o644); err != nil {
				t.Fatalf("update %s: %v", name, err)
			}
		}
	}

	var names []string
	for name := range got {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want, err := os.ReadFile(filepath.Join("golden", name))
		if err != nil {
			t.Fatalf("golden artifact missing (run with -update to bless): %v", err)
		}
		if string(want) != got[name] {
			t.Errorf("golden/%s drifted (rebless with -update if intended):\n%s",
				name, firstDiff(string(want), got[name]))
		}
	}

	// The committed scores must themselves satisfy the paper-shaped floor:
	// every planned bug found (recall 1.0) and exactly the seeded baits
	// misreported.
	if sc.Overall.Recall != 1.0 {
		t.Errorf("overall recall = %v, want 1.0 (missed planned bugs)", sc.Overall.Recall)
	}
	if sc.BaitsReported != sc.BaitsSeeded {
		t.Errorf("baits reported = %d, want %d", sc.BaitsReported, sc.BaitsSeeded)
	}
	for _, p := range Patterns {
		if s := sc.ByPattern[p]; s.TP == 0 {
			t.Errorf("pattern %s has no true positives in the golden corpus", p)
		}
	}
}

// TestGoldenGateCatchesRegression proves the gate actually fires: dropping
// one report from the recomputed set must change both a per-checker golden
// file and the scores.
func TestGoldenGateCatchesRegression(t *testing.T) {
	c := goldenCorpus()
	run := Run(FromCorpus(c), 0, nil)
	if len(run.Reports) == 0 {
		t.Fatal("no reports on golden corpus")
	}
	degraded := run.Reports[1:]
	sc := ComputeScores(c, GoldenSeed, degraded)
	full := ComputeScores(c, GoldenSeed, run.Reports)
	if sc.Overall.TP == full.Overall.TP && sc.Overall.FP == full.Overall.FP {
		t.Errorf("dropping a report left TP/FP unchanged: %+v", sc.Overall)
	}
	lost := run.Reports[0]
	want, err := os.ReadFile(filepath.Join("golden", "reports_"+string(lost.Pattern)+".txt"))
	if err != nil {
		t.Fatalf("read golden: %v", err)
	}
	if got := RenderReports(degraded, string(lost.Pattern)); got == string(want) {
		t.Errorf("dropping a %s report did not change its golden render", lost.Pattern)
	}
}

// TestSelftest runs the embedded-golden selftest the refcheck binary exposes
// and checks its JSON output parses back into the committed scores.
func TestSelftest(t *testing.T) {
	var buf jsonBuffer
	if err := Selftest(&buf, true); err != nil {
		t.Fatalf("selftest failed: %v", err)
	}
	var sc Scores
	if err := json.Unmarshal(buf.b, &sc); err != nil {
		t.Fatalf("selftest -json output does not parse: %v", err)
	}
	if sc.Seed != GoldenSeed {
		t.Errorf("selftest seed = %d, want %d", sc.Seed, GoldenSeed)
	}
	want, err := os.ReadFile(filepath.Join("golden", "scores.json"))
	if err != nil {
		t.Fatalf("read golden scores: %v", err)
	}
	if string(want) != string(buf.b) {
		t.Errorf("selftest scores differ from committed golden/scores.json")
	}
}

type jsonBuffer struct{ b []byte }

func (j *jsonBuffer) Write(p []byte) (int, error) {
	j.b = append(j.b, p...)
	return len(p), nil
}
