package difftest

import (
	"testing"

	"repro/internal/corpus"
)

// smallSpec is a compact corpus plan covering all nine anti-patterns, the
// missing-increase P4 flavour, a pinned P8, and both leading bait spots
// (arch/arm and drivers/gpu) — small enough that the full differential
// matrix can run once per transform.
func smallSpec() corpus.Spec {
	return corpus.Spec{
		Seed:           7,
		CleanPerModule: 3,
		FPBaits:        2,
		Plan: []corpus.ModulePlan{
			{Subsystem: "arch", Module: "arm",
				Patterns:   map[corpus.PatternID]int{"P4": 3, "P6": 1, "P7": 1, "P9": 1},
				TopAPIs:    []string{"of_find_compatible_node", "of_find_matching_node"},
				MissingGet: 1},
			{Subsystem: "drivers", Module: "mfd",
				Patterns: map[corpus.PatternID]int{"P1": 1},
				TopAPIs:  []string{"pm_runtime_get_sync"}},
			{Subsystem: "drivers", Module: "tty",
				Patterns: map[corpus.PatternID]int{"P2": 1, "P4": 1},
				TopAPIs:  []string{"mdesc_grab"}},
			{Subsystem: "drivers", Module: "gpu",
				Patterns: map[corpus.PatternID]int{"P3": 2, "P5": 1, "P8": 1},
				TopAPIs:  []string{"of_graph_get_port_by_id", "for_each_child_of_node"}},
			{Subsystem: "net", Module: "ipv4",
				Patterns:  map[corpus.PatternID]int{"P8": 1},
				TopAPIs:   []string{"sock_put"},
				PinnedUAD: 1},
		},
	}
}

func smallSet(t *testing.T) (*corpus.Corpus, SourceSet) {
	t.Helper()
	c := corpus.Generate(smallSpec())
	ss := FromCorpus(c)
	if len(ss.Sources) == 0 {
		t.Fatal("small corpus generated no sources")
	}
	return c, ss
}

// TestMetamorphicPreserving applies each semantics-preserving transform and
// asserts the report signature multiset is invariant (after MapSig). Every
// transformed input additionally runs through the full
// {workers 1,N} × {no cache, cold, warm} matrix, so a transform that trips a
// parallelism or caching bug fails here too.
func TestMetamorphicPreserving(t *testing.T) {
	c, ss := smallSet(t)
	base, err := Matrix(ss)
	if err != nil {
		t.Fatal(err)
	}
	baseSigs := SigsOf(base.Reports)
	if len(baseSigs) < len(c.Planned) {
		t.Fatalf("baseline found %d signatures for %d planned bugs", len(baseSigs), len(c.Planned))
	}

	for _, tr := range PreservingTransforms() {
		t.Run(tr.Name, func(t *testing.T) {
			mut := tr.Apply(ss)
			changed := len(mut.Sources) != len(ss.Sources) || len(mut.Headers) != len(ss.Headers)
			for i := 0; !changed && i < len(ss.Sources); i++ {
				changed = mut.Sources[i] != ss.Sources[i]
			}
			if !changed {
				t.Fatal("transform is a no-op: the invariance assertion would be vacuous")
			}
			run, err := Matrix(mut)
			if err != nil {
				t.Fatal(err)
			}
			want := append([]Sig(nil), baseSigs...)
			if tr.MapSig != nil {
				for i := range want {
					want[i] = tr.MapSig(want[i])
				}
				SortSigs(want)
			}
			lost, gained := DiffSigs(want, SigsOf(run.Reports))
			for _, s := range lost {
				t.Errorf("lost signature: %s", s)
			}
			for _, s := range gained {
				t.Errorf("gained signature: %s", s)
			}
		})
	}
}

// TestMetamorphicInjection appends each pattern's canonical buggy listing
// and asserts the checkers gain reports for exactly the injected function —
// including at least one of the injected pattern — and lose nothing.
func TestMetamorphicInjection(t *testing.T) {
	_, ss := smallSet(t)
	baseSigs := SigsOf(Run(ss, 0, nil).Reports)

	for _, p := range Patterns {
		t.Run(p, func(t *testing.T) {
			mut, fn := InjectBug(ss, corpus.PatternID(p))
			lost, gained := DiffSigs(baseSigs, SigsOf(Run(mut, 0, nil).Reports))
			for _, s := range lost {
				t.Errorf("injection removed unrelated signature: %s", s)
			}
			if len(gained) == 0 {
				t.Fatalf("injecting a %s bug produced no new reports", p)
			}
			sawPattern := false
			for _, s := range gained {
				if s.Function != fn {
					t.Errorf("injection gained a signature outside %s: %s", fn, s)
				}
				if s.Pattern == p {
					sawPattern = true
				}
			}
			if !sawPattern {
				t.Errorf("no %s signature among gains: %v", p, gained)
			}
		})
	}
}

// TestMetamorphicRemoval deletes a planned bug's function and asserts the
// checkers lose exactly that function's reports and gain nothing.
func TestMetamorphicRemoval(t *testing.T) {
	c, ss := smallSet(t)
	baseSigs := SigsOf(Run(ss, 0, nil).Reports)

	picked := map[corpus.PatternID]corpus.PlannedBug{}
	for _, pb := range c.Planned {
		switch pb.Pattern {
		case "P2", "P4", "P8":
			if _, ok := picked[pb.Pattern]; !ok {
				picked[pb.Pattern] = pb
			}
		}
	}
	if len(picked) != 3 {
		t.Fatalf("expected planned P2/P4/P8 bugs in the small corpus, got %v", picked)
	}
	for p, pb := range picked {
		t.Run(string(p), func(t *testing.T) {
			mut := RemoveFunction(ss, pb.File, pb.Function)
			lost, gained := DiffSigs(baseSigs, SigsOf(Run(mut, 0, nil).Reports))
			for _, s := range gained {
				t.Errorf("removal added signature: %s", s)
			}
			if len(lost) == 0 {
				t.Fatalf("removing %s did not remove its report", pb.Function)
			}
			for _, s := range lost {
				if s.Function != pb.Function {
					t.Errorf("removal lost unrelated signature: %s", s)
				}
			}
		})
	}
}
