package difftest

import (
	"fmt"
	"strings"

	"repro/internal/clex"
	"repro/internal/corpus"
	"repro/internal/cpg"
)

// Transform is one source-to-source rewrite used by the metamorphic tests.
// Preserving transforms keep program semantics, so the checker signature
// multiset must be invariant (after MapSig, which accounts for deliberate
// renames); bug-injecting/-removing transforms must change exactly the
// predicted signatures.
type Transform struct {
	Name  string
	Apply func(SourceSet) SourceSet
	// MapSig rewrites a baseline signature into the transformed namespace
	// (identity when nil). Only the identifier-rename transform needs it:
	// report Objects are variable keys, which that transform renames.
	MapSig func(Sig) Sig
}

// PreservingTransforms is the catalog of semantics-preserving rewrites.
func PreservingTransforms() []Transform {
	return []Transform{
		{Name: "comment-inject", Apply: commentInject},
		{Name: "whitespace-inject", Apply: whitespaceInject},
		{Name: "macro-wrap", Apply: macroWrap},
		{Name: "function-reorder", Apply: functionReorder},
		{Name: "file-relocate", Apply: fileRelocate},
		{Name: "include-restructure", Apply: includeRestructure},
		{Name: "identifier-rename", Apply: identifierRename, MapSig: renameSig},
	}
}

// commentInject interleaves line and trailing comments through every source
// file. Whole-line comments go before every third line; statement lines
// additionally get a trailing line comment.
func commentInject(ss SourceSet) SourceSet {
	out := ss.Clone()
	for i, f := range out.Sources {
		lines := strings.Split(f.Content, "\n")
		var b strings.Builder
		for j, ln := range lines {
			if j%3 == 0 {
				fmt.Fprintf(&b, "/* difftest comment %d */\n", j)
			}
			b.WriteString(ln)
			if strings.HasSuffix(strings.TrimRight(ln, " \t"), ";") {
				b.WriteString(" // difftest trailing")
			}
			if j < len(lines)-1 {
				b.WriteByte('\n')
			}
		}
		out.Sources[i] = cpg.Source{Path: f.Path, Content: b.String()}
	}
	return out
}

// whitespaceInject rewrites indentation (tabs to spaces), appends trailing
// blanks to statement lines, and doubles the blank line after every
// top-level close brace.
func whitespaceInject(ss SourceSet) SourceSet {
	out := ss.Clone()
	for i, f := range out.Sources {
		lines := strings.Split(f.Content, "\n")
		for j, ln := range lines {
			k := 0
			for k < len(ln) && ln[k] == '\t' {
				k++
			}
			ln = strings.Repeat("    ", k) + ln[k:]
			if strings.HasSuffix(ln, ";") {
				ln += "  "
			}
			if ln == "}" {
				ln = "}\n"
			}
			lines[j] = ln
		}
		out.Sources[i] = cpg.Source{Path: f.Path, Content: strings.Join(lines, "\n")}
	}
	return out
}

// macroWrap routes success-return literals through an object-like macro and
// wraps argument-free helper calls in a transparent function-like macro.
// Refcounting API calls are deliberately NOT wrapped: the checkers treat
// macro-injected get/put/break events differently on purpose (that is what
// provenance is for), so wrapping them is not semantics-preserving from the
// analysis's point of view.
func macroWrap(ss SourceSet) SourceSet {
	out := ss.Clone()
	const defs = "#define DT_OK 0\n#define DT_STMT(call) call\n"
	for i, f := range out.Sources {
		c := f.Content
		c = strings.Replace(c, "\n\n", "\n\n"+defs+"\n", 1) // after the include line
		c = strings.ReplaceAll(c, "return 0;", "return DT_OK;")
		c = strings.ReplaceAll(c, "mark_scanned();", "DT_STMT(mark_scanned());")
		c = strings.ReplaceAll(c, "disable_controller();", "DT_STMT(disable_controller());")
		out.Sources[i] = cpg.Source{Path: f.Path, Content: c}
	}
	return out
}

// functionReorder reverses the order of the movable top-level chunks of every
// file. Chunks holding preprocessor directives or type definitions stay
// anchored (in order) at the top; everything else — functions and globals —
// is emitted in reverse.
func functionReorder(ss SourceSet) SourceSet {
	out := ss.Clone()
	for i, f := range out.Sources {
		chunks := splitChunks(f.Content)
		var anchored, movable []string
		for _, ch := range chunks {
			t := strings.TrimSpace(ch)
			if strings.Contains(ch, "#") || strings.HasPrefix(t, "struct ") {
				anchored = append(anchored, ch)
			} else {
				movable = append(movable, ch)
			}
		}
		for l, r := 0, len(movable)-1; l < r; l, r = l+1, r-1 {
			movable[l], movable[r] = movable[r], movable[l]
		}
		out.Sources[i] = cpg.Source{
			Path:    f.Path,
			Content: strings.Join(append(anchored, movable...), "\n\n") + "\n",
		}
	}
	return out
}

// fileRelocate reverses the order sources are handed to the pipeline and
// moves every file under a new tree prefix. Reports carry the new paths, but
// signatures are path-free and must not change.
func fileRelocate(ss SourceSet) SourceSet {
	out := ss.Clone()
	n := len(out.Sources)
	rev := make([]cpg.Source, n)
	for i, f := range out.Sources {
		rev[n-1-i] = cpg.Source{Path: "relocated/" + f.Path, Content: f.Content}
	}
	out.Sources = rev
	return out
}

// includeRestructure reroutes <linux/of.h> through a new one-line wrapper
// header, exercising nested include resolution and the header cache without
// moving any line numbers in the sources.
func includeRestructure(ss SourceSet) SourceSet {
	out := ss.Clone()
	out.Headers["include/generated/ofwrap.h"] = "#include <linux/of.h>\n"
	for i, f := range out.Sources {
		out.Sources[i] = cpg.Source{
			Path:    f.Path,
			Content: strings.Replace(f.Content, "#include <linux/of.h>", "#include <generated/ofwrap.h>", 1),
		}
	}
	return out
}

// renamedIdents maps the corpus templates' local variable, parameter, and
// label names to fresh spellings. Function names, struct/field names, API
// names, and generated globals are left alone.
var renamedIdents = map[string]string{
	"found": "dt_found", "target": "dt_target", "child": "dt_child",
	"dn": "dt_dn", "port": "dt_port", "hp": "dt_hp", "sk": "dt_sk",
	"serial": "dt_serial", "queue": "dt_queue", "np": "dt_np",
	"next": "dt_next", "evt_node": "dt_evt_node", "crc": "dt_crc",
	"ctl": "dt_ctl", "parent": "dt_parent", "from": "dt_from",
	"out": "dt_out",
}

// identifierRename renames the known local identifiers token-wise (lex, map
// identifier spellings, print). String literals, field names, and every
// other token are untouched; line structure is preserved so preprocessor
// directives survive.
func identifierRename(ss SourceSet) SourceSet {
	out := ss.Clone()
	for i, f := range out.Sources {
		toks, _ := clex.Tokenize(f.Path, f.Content, clex.Config{KeepComments: true, KeepNewlines: true})
		for j, t := range toks {
			if t.Kind == clex.Ident {
				if to, ok := renamedIdents[t.Text]; ok {
					toks[j].Text = to
				}
			}
		}
		out.Sources[i] = cpg.Source{Path: f.Path, Content: PrintTokens(toks)}
	}
	return out
}

// renameSig maps a baseline signature through renamedIdents: report Objects
// are variable keys (possibly dotted/arrowed paths), so each identifier word
// inside them is remapped.
func renameSig(s Sig) Sig {
	s.Object = mapIdentWords(s.Object)
	return s
}

func mapIdentWords(s string) string {
	var b strings.Builder
	i := 0
	for i < len(s) {
		c := s[i]
		if isWordStart(c) {
			j := i + 1
			for j < len(s) && isWordCont(s[j]) {
				j++
			}
			word := s[i:j]
			if to, ok := renamedIdents[word]; ok {
				word = to
			}
			b.WriteString(word)
			i = j
			continue
		}
		b.WriteByte(c)
		i++
	}
	return b.String()
}

func isWordStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isWordCont(c byte) bool { return isWordStart(c) || (c >= '0' && c <= '9') }

// splitChunks splits a generated source file into its blank-line separated
// top-level chunks. Brace depth is tracked (string literals skipped) so a
// blank line inside a body never splits a chunk.
func splitChunks(content string) []string {
	var chunks []string
	var cur []string
	depth := 0
	flush := func() {
		for len(cur) > 0 && strings.TrimSpace(cur[len(cur)-1]) == "" {
			cur = cur[:len(cur)-1]
		}
		if len(cur) > 0 {
			chunks = append(chunks, strings.Join(cur, "\n"))
		}
		cur = nil
	}
	for _, ln := range strings.Split(content, "\n") {
		if depth == 0 && strings.TrimSpace(ln) == "" {
			flush()
			continue
		}
		cur = append(cur, ln)
		inStr := false
		for k := 0; k < len(ln); k++ {
			switch ln[k] {
			case '\\':
				k++
			case '"':
				inStr = !inStr
			case '{':
				if !inStr {
					depth++
				}
			case '}':
				if !inStr {
					depth--
				}
			}
		}
	}
	flush()
	return chunks
}

// InjectBug appends the canonical buggy listing for pattern p to the first
// source file and returns the new set plus the function name the checkers
// must newly flag (and nothing else may change).
func InjectBug(ss SourceSet, p corpus.PatternID) (SourceSet, string) {
	text, fn := corpus.BugListing(p, "dt_injected_"+strings.ToLower(string(p)))
	out := ss.Clone()
	out.Sources[0] = cpg.Source{
		Path:    out.Sources[0].Path,
		Content: out.Sources[0].Content + text,
	}
	return out, fn
}

// RemoveFunction deletes every chunk of the named file that mentions fn as a
// call or definition; removing a planned bug's function must remove exactly
// that function's signatures.
func RemoveFunction(ss SourceSet, file, fn string) SourceSet {
	out := ss.Clone()
	for i, f := range out.Sources {
		if f.Path != file {
			continue
		}
		var kept []string
		for _, ch := range splitChunks(f.Content) {
			if strings.Contains(ch, fn+"(") {
				continue
			}
			kept = append(kept, ch)
		}
		out.Sources[i] = cpg.Source{Path: f.Path, Content: strings.Join(kept, "\n\n") + "\n"}
	}
	return out
}
